// Command diag is a development diagnostic: it breaks one site's landing
// and internal page loads into timing components to support calibration.
// The -fault-* flags inject network/resolver faults so the failure model
// can be inspected too; a runstats report closes the run.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/browser"
	"repro/internal/cdn"
	"repro/internal/dnssim"
	"repro/internal/runstats"
	"repro/internal/simnet"
	"repro/internal/toplist"
	"repro/internal/webgen"
)

func main() {
	var (
		seed  = flag.Int64("seed", 42, "seed")
		nSite = flag.Int("n", 10, "sites to diagnose")
		rate  = flag.Float64("rate", 2.2, "cdn warmth rate")

		faultTimeout  = flag.Float64("fault-timeout", 0, "per-request timeout probability")
		faultTruncate = flag.Float64("fault-truncate", 0, "per-request truncation probability")
		faultLoss     = flag.Float64("fault-loss", 0, "per-request retransmit probability")
		dnsFail       = flag.Float64("fault-dns", 0, "transient resolver failure probability")
	)
	flag.Parse()

	u := toplist.NewUniverse(toplist.Config{Seed: *seed, Size: 4000})
	entries := u.Top(*nSite)
	seeds := make([]webgen.SiteSeed, len(entries))
	for i, e := range entries {
		seeds[i] = webgen.SiteSeed{Domain: e.Domain, Rank: e.Rank}
	}
	web := webgen.Generate(webgen.Config{Seed: *seed, Sites: seeds})
	resolver := dnssim.NewResolver(dnssim.ResolverConfig{
		Name: "isp", Seed: *seed, WarmQueryRate: 0.8, FailProb: *dnsFail,
	}, web.Authority(), nil)
	warm := cdn.PopularityWarmth(*rate, 0.97)
	b, err := browser.New(browser.Config{
		Seed:     *seed,
		Resolver: resolver,
		Net: simnet.Config{Faults: simnet.FaultConfig{Rates: simnet.FaultRates{
			Timeout: *faultTimeout, Truncate: *faultTruncate, Loss: *faultLoss,
		}}},
		CDNFactory: func() *cdn.Network {
			return cdn.NewNetwork(1<<14, warm, *seed)
		},
	})
	if err != nil {
		panic(err)
	}
	stats := runstats.NewSet()

	describe := func(tag string, m *webgen.PageModel) {
		log, err := b.Load(m, 0)
		if err != nil {
			var le *browser.LoadError
			if !errors.As(err, &le) {
				panic(err)
			}
			// Root-document failure: expected under injected faults.
			stats.Inc("loads.err."+le.Phase, 1)
			fmt.Printf("  %-8s FAILED phase=%s after %v (%v)\n",
				tag, le.Phase, log.Entries[0].Time.Round(time.Millisecond), le.Err)
			return
		}
		stats.Inc("loads.ok", 1)
		stats.Observe("plt.ms", float64(log.Page.Timings.FirstPaint.Milliseconds()))
		var rootTime, maxBlock, hsTotal, waitTotal time.Duration
		blocking, cdnHits, cdnTotal, dead := 0, 0, 0, 0
		for i := range log.Entries {
			e := &log.Entries[i]
			if i == 0 {
				rootTime = e.Time
			}
			if e.Failed() {
				dead++
				stats.Inc("subresources.err."+e.Aborted, 1)
				continue
			}
			o, ok := m.ObjectByURL(e.Request.URL)
			if !ok {
				continue
			}
			if o.RenderBlocking {
				blocking++
				end := e.StartedAt.Add(e.Time).Sub(log.Page.NavigationStart)
				if end > maxBlock {
					maxBlock = end
				}
			}
			if e.Timings.NewConnection() {
				hsTotal += e.Timings.Handshake()
			}
			waitTotal += e.Timings.Wait
			if o.ViaCDN != "" {
				cdnTotal++
				if e.Response.HeaderValue("X-Cache") == "HIT" {
					cdnHits++
				}
			}
		}
		hitRate := 0.0
		if cdnTotal > 0 {
			hitRate = float64(cdnHits) / float64(cdnTotal)
		}
		fmt.Printf("  %-8s PLT=%-8v SI=%-8v root=%-8v maxBlockEnd=%-8v nblock=%-3d objs=%-4d dead=%-3d bytes=%.1fMB hit=%.2f\n",
			tag, log.Page.Timings.FirstPaint.Round(time.Millisecond),
			log.Page.Timings.SpeedIndex.Round(time.Millisecond),
			rootTime.Round(time.Millisecond), maxBlock.Round(time.Millisecond),
			blocking, len(log.Entries), dead, float64(log.TotalBytes())/1e6, hitRate)
	}

	for _, s := range web.Sites {
		fmt.Printf("site %s rank=%d cat=%s pop=%.2f boost=%.2f blockCSS=%.2f asyncL=%.2f\n",
			s.Domain, s.Rank, s.Category, s.Popularity(), s.Profile.LandingPopBoost,
			s.Profile.BlockingCSSLanding, s.Profile.AsyncJSLanding)
		describe("landing", s.Landing().Build())
		for i := 1; i <= 3; i++ {
			describe(fmt.Sprintf("int%d", i), s.PageAt(i).Build())
		}
	}
	fmt.Fprintln(os.Stderr)
	stats.Render(os.Stderr)
}
