package main

import (
	"bytes"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

// fixtureMod is a self-contained module (testdata is invisible to the
// outer build) whose one hot function trips walltime, allocloop, and
// retain.
const fixtureMod = "testdata/mod"

func runCLI(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

// TestChecksSubset runs named subsets over the fixture module: the
// selected check's findings appear, everything else stays silent.
func TestChecksSubset(t *testing.T) {
	code, out, _ := runCLI(t, "-dir", fixtureMod, "-checks", "walltime")
	if code != 1 {
		t.Fatalf("walltime subset exit = %d, want 1\n%s", code, out)
	}
	if !strings.Contains(out, "[walltime]") {
		t.Errorf("output missing walltime finding:\n%s", out)
	}
	if strings.Contains(out, "[allocloop]") || strings.Contains(out, "[retain]") {
		t.Errorf("subset run leaked other checks' findings:\n%s", out)
	}

	// A subset the fixture does not trip comes back clean.
	code, out, _ = runCLI(t, "-dir", fixtureMod, "-checks", "gorleak,mutexcopy")
	if code != 0 {
		t.Errorf("clean subset exit = %d, want 0\n%s", code, out)
	}

	// allocflow checks fire through the subset flag too.
	code, out, _ = runCLI(t, "-dir", fixtureMod, "-checks", "allocloop,retain")
	if code != 1 || !strings.Contains(out, "[allocloop]") || !strings.Contains(out, "[retain]") {
		t.Errorf("allocflow subset exit = %d, want 1 with both checks firing:\n%s", code, out)
	}
}

// TestUnknownCheck is the flag-error contract: exit 2, named in stderr.
func TestUnknownCheck(t *testing.T) {
	code, _, errOut := runCLI(t, "-dir", fixtureMod, "-checks", "nosuch")
	if code != 2 {
		t.Fatalf("unknown check exit = %d, want 2", code)
	}
	if !strings.Contains(errOut, "nosuch") {
		t.Errorf("stderr does not name the unknown check:\n%s", errOut)
	}
}

// TestHotpathsReport exercises -hotpaths: exit 0 even though the module
// has findings, report names the entry point and sites, and the JSON
// rendering is byte-identical across runs.
func TestHotpathsReport(t *testing.T) {
	code, text, _ := runCLI(t, "-dir", fixtureMod, "-hotpaths")
	if code != 0 {
		t.Fatalf("-hotpaths exit = %d, want 0\n%s", code, text)
	}
	for _, want := range []string{"entry: app.Hot", "[composite]", "retained", "in-loop"} {
		if !strings.Contains(text, want) {
			t.Errorf("text report missing %q:\n%s", want, text)
		}
	}

	_, first, _ := runCLI(t, "-dir", fixtureMod, "-hotpaths", "-format", "json")
	_, again, _ := runCLI(t, "-dir", fixtureMod, "-hotpaths", "-format", "json")
	if first != again {
		t.Errorf("-hotpaths json diverged across runs:\n--- first ---\n%s--- again ---\n%s", first, again)
	}
	if !strings.Contains(first, `"entries"`) || !strings.Contains(first, `"fingerprint"`) {
		t.Errorf("json report missing expected fields:\n%s", first)
	}
}

// TestLifecycleChecks runs the five lifecycle checks over the fixture
// module: each finds its planted defect, the subset stays isolated from
// the other analyzers, and the rendering is byte-identical across runs
// and GOMAXPROCS values.
func TestLifecycleChecks(t *testing.T) {
	const lifeChecks = "closeleak,bodyclose,cancelleak,tickleak,deferhot"
	code, out, _ := runCLI(t, "-dir", fixtureMod, "-checks", lifeChecks)
	if code != 1 {
		t.Fatalf("lifecycle subset exit = %d, want 1\n%s", code, out)
	}
	for _, tag := range []string{"[closeleak]", "[bodyclose]", "[cancelleak]", "[tickleak]", "[deferhot]"} {
		if !strings.Contains(out, tag) {
			t.Errorf("output missing %s finding:\n%s", tag, out)
		}
	}
	if strings.Contains(out, "[walltime]") || strings.Contains(out, "[allocloop]") {
		t.Errorf("lifecycle subset leaked other checks' findings:\n%s", out)
	}

	// One check alone reports only its own defect.
	code, out, _ = runCLI(t, "-dir", fixtureMod, "-checks", "tickleak")
	if code != 1 || !strings.Contains(out, "[tickleak]") {
		t.Fatalf("tickleak-only exit = %d, want 1 with a tickleak finding\n%s", code, out)
	}
	if strings.Contains(out, "[closeleak]") {
		t.Errorf("tickleak-only run leaked closeleak findings:\n%s", out)
	}

	// Byte-identical across repeated runs and across GOMAXPROCS.
	_, first, _ := runCLI(t, "-dir", fixtureMod, "-checks", lifeChecks, "-format", "json")
	_, again, _ := runCLI(t, "-dir", fixtureMod, "-checks", lifeChecks, "-format", "json")
	if first != again {
		t.Errorf("lifecycle json diverged across runs:\n--- first ---\n%s--- again ---\n%s", first, again)
	}
	old := runtime.GOMAXPROCS(1)
	_, serial, _ := runCLI(t, "-dir", fixtureMod, "-checks", lifeChecks, "-format", "json")
	runtime.GOMAXPROCS(old)
	if first != serial {
		t.Errorf("lifecycle json diverged across GOMAXPROCS:\n--- parallel ---\n%s--- serial ---\n%s", first, serial)
	}
}

// TestLeaksReport exercises -leaks: exit 0 despite the planted leaks,
// the inventory names resources with resolved fates, and the JSON
// rendering is stable across runs.
func TestLeaksReport(t *testing.T) {
	code, text, errOut := runCLI(t, "-dir", fixtureMod, "-leaks")
	if code != 0 {
		t.Fatalf("-leaks exit = %d, want 0\n%s", code, text)
	}
	for _, want := range []string{"resource-lifecycle report", "os.Open", "-> leaked", "-> deferred", "[bodyclose]", "[hot]"} {
		if !strings.Contains(text, want) {
			t.Errorf("text report missing %q:\n%s", want, text)
		}
	}
	if !strings.Contains(errOut, "lifecycle report:") {
		t.Errorf("stderr missing summary line:\n%s", errOut)
	}

	_, first, _ := runCLI(t, "-dir", fixtureMod, "-leaks", "-format", "json")
	_, again, _ := runCLI(t, "-dir", fixtureMod, "-leaks", "-format", "json")
	if first != again {
		t.Errorf("-leaks json diverged across runs:\n--- first ---\n%s--- again ---\n%s", first, again)
	}
	if !strings.Contains(first, `"fingerprint"`) || !strings.Contains(first, `"outcome"`) {
		t.Errorf("json report missing expected fields:\n%s", first)
	}
}

// TestMaxBaselineRatchet pins the ratchet contract: a baseline over the
// cap fails the run outright, at or under the cap it filters as usual.
func TestMaxBaselineRatchet(t *testing.T) {
	base := filepath.Join(t.TempDir(), "baseline.json")
	code, _, errOut := runCLI(t, "-dir", fixtureMod, "-baseline", base, "-write-baseline")
	if code != 0 {
		t.Fatalf("-write-baseline exit = %d\n%s", code, errOut)
	}

	code, _, errOut = runCLI(t, "-dir", fixtureMod, "-baseline", base, "-max-baseline", "0")
	if code != 1 {
		t.Fatalf("over-cap exit = %d, want 1\n%s", code, errOut)
	}
	if !strings.Contains(errOut, "over the ratchet cap") {
		t.Errorf("stderr missing ratchet message:\n%s", errOut)
	}

	code, _, errOut = runCLI(t, "-dir", fixtureMod, "-baseline", base, "-max-baseline", "100000")
	if code != 0 {
		t.Errorf("under-cap exit = %d, want 0\n%s", code, errOut)
	}
}

// TestWriteBaselinePrune re-records a baseline after "fixing" findings
// (by narrowing -checks) and expects the dropped fingerprints printed.
func TestWriteBaselinePrune(t *testing.T) {
	base := filepath.Join(t.TempDir(), "baseline.json")

	code, _, errOut := runCLI(t, "-dir", fixtureMod, "-baseline", base, "-write-baseline")
	if code != 0 {
		t.Fatalf("initial -write-baseline exit = %d\n%s", code, errOut)
	}
	if strings.Contains(errOut, "pruned stale baseline entry") {
		t.Errorf("first recording has nothing to prune:\n%s", errOut)
	}
	if _, err := os.Stat(base); err != nil {
		t.Fatalf("baseline not written: %v", err)
	}

	// Re-record with only walltime running: the allocloop/retain entries
	// drop to zero and must be reported as pruned.
	code, _, errOut = runCLI(t, "-dir", fixtureMod, "-baseline", base, "-write-baseline", "-checks", "walltime")
	if code != 0 {
		t.Fatalf("re-record exit = %d\n%s", code, errOut)
	}
	for _, check := range []string{"[allocloop]", "[retain]"} {
		if !strings.Contains(errOut, "pruned stale baseline entry: "+check) {
			t.Errorf("prune report missing %s entry:\n%s", check, errOut)
		}
	}
	if strings.Contains(errOut, "pruned stale baseline entry: [walltime]") {
		t.Errorf("walltime still fires and must not be pruned:\n%s", errOut)
	}

	// The re-recorded (walltime-only) baseline suppresses a walltime run.
	code, _, errOut = runCLI(t, "-dir", fixtureMod, "-baseline", base, "-checks", "walltime")
	if code != 0 {
		t.Errorf("baseline-filtered walltime run exit = %d, want 0\n%s", code, errOut)
	}
}
