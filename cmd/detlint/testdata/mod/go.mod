module tinymod

go 1.22
