// Package app is the detlint CLI test fixture: a tiny module whose one
// hot function trips walltime, allocloop, and retain at once, so CLI
// tests can select subsets and diff baselines.
package app

import "time"

// Item is the per-iteration payload.
type Item struct {
	At time.Time
	ID int
}

// Hot accumulates items with a wall-clock stamp per iteration.
//
//detlint:hotpath -- fixture entry
func Hot(n int) []*Item {
	var out []*Item
	for i := 0; i < n; i++ {
		out = append(out, &Item{At: time.Now(), ID: i})
	}
	return out
}
