// Package fetch extends the CLI fixture module with resource-lifecycle
// defects: one leak per lifecycle check, so -checks subsets and the
// -leaks report have known material to work with.
package fetch

import (
	"context"
	"net/http"
	"os"
	"time"
)

// ReadMeta opens the metadata file and forgets it on the success path.
func ReadMeta(p string) error {
	f, err := os.Open(p)
	if err != nil {
		return err
	}
	_ = f
	return nil
}

// Probe drops the response body.
func Probe(u string) (int, error) {
	resp, err := http.Get(u)
	if err != nil {
		return 0, err
	}
	return resp.StatusCode, nil
}

// Deadline discards the cancel func at the binding.
func Deadline(ctx context.Context) context.Context {
	ctx2, _ := context.WithTimeout(ctx, time.Second)
	return ctx2
}

// Beat abandons its ticker after one tick.
func Beat() {
	t := time.NewTicker(time.Second)
	<-t.C
}

// Poll defers per iteration on a hot path.
//
//detlint:hotpath -- fixture entry
func Poll(paths []string) error {
	for _, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			return err
		}
		defer f.Close()
	}
	return nil
}

// Clean releases everything properly: material for the -leaks report's
// resolved-outcome rows.
func Clean(p string) error {
	f, err := os.Open(p)
	if err != nil {
		return err
	}
	defer f.Close()
	t := time.NewTimer(time.Second)
	<-t.C
	return nil
}
