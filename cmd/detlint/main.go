// Command detlint runs the repository's determinism and concurrency
// lint suite (internal/lint) over every package in the module.
//
//	detlint [-dir .] [-checks walltime,maporder] [-json] [-o file] [-list]
//
// Exit codes follow the CI contract:
//
//	0 — the tree is clean
//	1 — findings were reported
//	2 — the module failed to load (parse or type error, bad flags)
//
// Diagnostics print as "file:line:col: [check] message" with paths
// relative to the module root; -json emits a machine-readable document
// for CI artifacts instead.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
)

func main() {
	os.Exit(run())
}

func run() int {
	fs := flag.NewFlagSet("detlint", flag.ContinueOnError)
	dir := fs.String("dir", ".", "module root (directory containing go.mod)")
	checksFlag := fs.String("checks", "", "comma-separated checks to run (default: all)")
	jsonOut := fs.Bool("json", false, "emit diagnostics as JSON")
	outFile := fs.String("o", "", "write output to file instead of stdout")
	list := fs.Bool("list", false, "list available checks and exit")
	if err := fs.Parse(os.Args[1:]); err != nil {
		return 2
	}

	if *list {
		for _, c := range lint.Checks() {
			fmt.Printf("%-12s %s\n", c.Name, c.Doc)
		}
		return 0
	}

	checks := lint.Checks()
	if *checksFlag != "" {
		checks = checks[:0:0]
		for _, name := range strings.Split(*checksFlag, ",") {
			name = strings.TrimSpace(name)
			c := lint.CheckByName(name)
			if c == nil {
				fmt.Fprintf(os.Stderr, "detlint: unknown check %q (use -list)\n", name)
				return 2
			}
			checks = append(checks, c)
		}
	}

	pkgs, err := lint.LoadModule(*dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "detlint: %v\n", err)
		return 2
	}
	diags := lint.Run(pkgs, checks)
	relativize(diags, *dir)

	out := os.Stdout
	if *outFile != "" {
		f, err := os.Create(*outFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "detlint: %v\n", err)
			return 2
		}
		defer f.Close()
		out = f
	}

	if *jsonOut {
		doc := struct {
			Packages int               `json:"packages"`
			Findings []lint.Diagnostic `json:"findings"`
		}{Packages: len(pkgs), Findings: diags}
		if doc.Findings == nil {
			doc.Findings = []lint.Diagnostic{}
		}
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			fmt.Fprintf(os.Stderr, "detlint: %v\n", err)
			return 2
		}
		// When the JSON goes to a file (the CI-artifact path), keep the
		// human-readable diagnostics on stderr so a failing run is
		// debuggable without opening the artifact.
		if *outFile != "" {
			for _, d := range diags {
				fmt.Fprintln(os.Stderr, d)
			}
			fmt.Fprintf(os.Stderr, "detlint: %d packages, %d findings\n", len(pkgs), len(diags))
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(out, d)
		}
		fmt.Fprintf(os.Stderr, "detlint: %d packages, %d findings\n", len(pkgs), len(diags))
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// relativize rewrites absolute diagnostic paths relative to the module
// root so output is stable across machines and CI workspaces.
func relativize(diags []lint.Diagnostic, root string) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return
	}
	for i := range diags {
		if rel, err := filepath.Rel(abs, diags[i].File); err == nil && !strings.HasPrefix(rel, "..") {
			diags[i].File = filepath.ToSlash(rel)
		}
	}
}
