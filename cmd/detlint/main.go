// Command detlint runs the repository's determinism and concurrency
// lint suite (internal/lint) over every package in the module.
//
//	detlint [-dir .] [-checks walltime,taint] [-format text|json|sarif]
//	        [-baseline file] [-write-baseline] [-o file] [-list]
//
// Exit codes follow the CI contract:
//
//	0 — the tree is clean (after baseline filtering, if any)
//	1 — new findings were reported
//	2 — the module failed to load (parse or type error, bad flags)
//
// Diagnostics print as "file:line:col: [check] message" with paths
// relative to the module root. -format json emits a machine-readable
// document recording the checks that ran (-json is a legacy alias);
// -format sarif emits SARIF 2.1.0 for GitHub code scanning.
//
// -baseline file filters findings through a recorded baseline: entries
// in the file are suppressed, anything new fails. -write-baseline
// records the current findings into the baseline file and exits 0 —
// the adopt-incrementally workflow for new checks.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
)

func main() {
	os.Exit(run())
}

func run() int {
	fs := flag.NewFlagSet("detlint", flag.ContinueOnError)
	dir := fs.String("dir", ".", "module root (directory containing go.mod)")
	checksFlag := fs.String("checks", "", "comma-separated checks to run (default: all)")
	format := fs.String("format", "", "output format: text, json, or sarif (default: text)")
	jsonOut := fs.Bool("json", false, "legacy alias for -format json")
	baselineFile := fs.String("baseline", "", "baseline file: suppress findings recorded in it")
	writeBaseline := fs.Bool("write-baseline", false, "record current findings into -baseline and exit 0")
	outFile := fs.String("o", "", "write output to file instead of stdout")
	list := fs.Bool("list", false, "list available checks and exit")
	if err := fs.Parse(os.Args[1:]); err != nil {
		return 2
	}

	if *list {
		for _, c := range lint.Checks() {
			fmt.Printf("%-12s %s\n", c.Name, c.Doc)
		}
		return 0
	}

	switch *format {
	case "":
		if *jsonOut {
			*format = "json"
		} else {
			*format = "text"
		}
	case "text", "json", "sarif":
	default:
		fmt.Fprintf(os.Stderr, "detlint: unknown format %q (text, json, sarif)\n", *format)
		return 2
	}
	if *writeBaseline && *baselineFile == "" {
		fmt.Fprintln(os.Stderr, "detlint: -write-baseline requires -baseline <file>")
		return 2
	}

	checks := lint.Checks()
	if *checksFlag != "" {
		checks = checks[:0:0]
		for _, name := range strings.Split(*checksFlag, ",") {
			name = strings.TrimSpace(name)
			c := lint.CheckByName(name)
			if c == nil {
				fmt.Fprintf(os.Stderr, "detlint: unknown check %q (use -list)\n", name)
				return 2
			}
			checks = append(checks, c)
		}
	}

	pkgs, err := lint.LoadModule(*dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "detlint: %v\n", err)
		return 2
	}
	diags := lint.Run(pkgs, checks)
	relativize(diags, *dir)

	if *writeBaseline {
		f, err := os.Create(*baselineFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "detlint: %v\n", err)
			return 2
		}
		defer f.Close()
		if err := lint.NewBaseline(diags).Write(f); err != nil {
			fmt.Fprintf(os.Stderr, "detlint: %v\n", err)
			return 2
		}
		fmt.Fprintf(os.Stderr, "detlint: wrote baseline %s (%d findings)\n", *baselineFile, len(diags))
		return 0
	}

	var suppressed []lint.Diagnostic
	if *baselineFile != "" {
		base, err := lint.ReadBaseline(*baselineFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "detlint: %v\n", err)
			return 2
		}
		diags, suppressed = base.Filter(diags)
	}

	out := os.Stdout
	if *outFile != "" {
		f, err := os.Create(*outFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "detlint: %v\n", err)
			return 2
		}
		defer f.Close()
		out = f
	}

	if err := render(out, *format, checks, pkgs, diags, suppressed); err != nil {
		fmt.Fprintf(os.Stderr, "detlint: %v\n", err)
		return 2
	}
	// Whenever the primary stream is machine-readable or a file (the
	// CI-artifact paths), mirror the human-readable diagnostics on stderr
	// so a failing run is debuggable without opening the artifact.
	if *format != "text" || *outFile != "" {
		for _, d := range diags {
			fmt.Fprintln(os.Stderr, d)
		}
	}
	fmt.Fprintf(os.Stderr, "detlint: %d packages, %d findings, %d suppressed by baseline\n",
		len(pkgs), len(diags), len(suppressed))

	if len(diags) > 0 {
		return 1
	}
	return 0
}

// jsonDoc is the -format json document. Checks records which analyzers
// actually ran: a -checks subset that comes back clean must be
// distinguishable from a full clean run when the artifact is read later.
type jsonDoc struct {
	Packages   int               `json:"packages"`
	Checks     []string          `json:"checks"`
	Findings   []lint.Diagnostic `json:"findings"`
	Suppressed int               `json:"suppressed"`
}

func render(out io.Writer, format string, checks []*lint.Check, pkgs []*lint.Package, diags, suppressed []lint.Diagnostic) error {
	switch format {
	case "json":
		doc := jsonDoc{
			Packages:   len(pkgs),
			Checks:     make([]string, len(checks)),
			Findings:   diags,
			Suppressed: len(suppressed),
		}
		for i, c := range checks {
			doc.Checks[i] = c.Name
		}
		if doc.Findings == nil {
			doc.Findings = []lint.Diagnostic{}
		}
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(doc)
	case "sarif":
		return lint.WriteSARIF(out, checks, diags)
	default:
		for _, d := range diags {
			fmt.Fprintln(out, d)
		}
		return nil
	}
}

// relativize rewrites absolute diagnostic paths relative to the module
// root so output is stable across machines and CI workspaces.
func relativize(diags []lint.Diagnostic, root string) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return
	}
	for i := range diags {
		if rel, err := filepath.Rel(abs, diags[i].File); err == nil && !strings.HasPrefix(rel, "..") {
			diags[i].File = filepath.ToSlash(rel)
		}
	}
}
