// Command detlint runs the repository's determinism and concurrency
// lint suite (internal/lint) over every package in the module.
//
//	detlint [-dir .] [-checks walltime,taint] [-format text|json|sarif]
//	        [-baseline file] [-write-baseline] [-o file] [-list]
//	        [-hotpaths]
//
// Exit codes follow the CI contract:
//
//	0 — the tree is clean (after baseline filtering, if any)
//	1 — new findings were reported
//	2 — the module failed to load (parse or type error, bad flags)
//
// Diagnostics print as "file:line:col: [check] message" with paths
// relative to the module root. -format json emits a machine-readable
// document recording the checks that ran (-json is a legacy alias);
// -format sarif emits SARIF 2.1.0 for GitHub code scanning.
//
// -baseline file filters findings through a recorded baseline: entries
// in the file are suppressed, anything new fails. -write-baseline
// records the current findings into the baseline file and exits 0 —
// the adopt-incrementally workflow for new checks. When the baseline
// file already exists, re-recording also prints the entries whose
// occurrence count dropped to zero so suppression rot is visible.
//
// -hotpaths switches to report mode: instead of running checks, emit
// the ranked hot-path allocation report (allocation sites in functions
// reachable from //detlint:hotpath entry points, with rendered call
// chains). The report honors -format text|json|sarif and -o, and always
// exits 0 — it is an inventory, not a gate.
//
// -leaks is the analogous report mode for the resource-lifecycle
// analysis: every tracked acquisition (files, connections, response
// bodies, cancel funcs, tickers, trace recorders) with its resolved
// fate — released, deferred, transferred, or leaked — hot functions
// first. Also -format aware, also always exit 0.
//
// -max-baseline N is the ratchet: after loading -baseline, fail (exit 1)
// when the accepted-finding total exceeds N, so the churn backlog can
// only shrink. N < 0 (the default) disables the gate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("detlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dir := fs.String("dir", ".", "module root (directory containing go.mod)")
	checksFlag := fs.String("checks", "", "comma-separated checks to run (default: all)")
	format := fs.String("format", "", "output format: text, json, or sarif (default: text)")
	jsonOut := fs.Bool("json", false, "legacy alias for -format json")
	baselineFile := fs.String("baseline", "", "baseline file: suppress findings recorded in it")
	writeBaseline := fs.Bool("write-baseline", false, "record current findings into -baseline and exit 0")
	outFile := fs.String("o", "", "write output to file instead of stdout")
	list := fs.Bool("list", false, "list available checks and exit")
	hotpaths := fs.Bool("hotpaths", false, "emit the hot-path allocation report instead of running checks")
	leaks := fs.Bool("leaks", false, "emit the resource-lifecycle report instead of running checks")
	maxBaseline := fs.Int("max-baseline", -1, "fail when the baseline's accepted-finding total exceeds N (ratchet; <0 disables)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, c := range lint.Checks() {
			fmt.Fprintf(stdout, "%-12s %s\n", c.Name, c.Doc)
		}
		return 0
	}

	switch *format {
	case "":
		if *jsonOut {
			*format = "json"
		} else {
			*format = "text"
		}
	case "text", "json", "sarif":
	default:
		fmt.Fprintf(stderr, "detlint: unknown format %q (text, json, sarif)\n", *format)
		return 2
	}
	if *writeBaseline && *baselineFile == "" {
		fmt.Fprintln(stderr, "detlint: -write-baseline requires -baseline <file>")
		return 2
	}

	checks := lint.Checks()
	if *checksFlag != "" {
		checks = checks[:0:0]
		for _, name := range strings.Split(*checksFlag, ",") {
			name = strings.TrimSpace(name)
			c := lint.CheckByName(name)
			if c == nil {
				fmt.Fprintf(stderr, "detlint: unknown check %q (use -list)\n", name)
				return 2
			}
			checks = append(checks, c)
		}
	}

	pkgs, err := lint.LoadModule(*dir)
	if err != nil {
		fmt.Fprintf(stderr, "detlint: %v\n", err)
		return 2
	}

	out := stdout
	if *outFile != "" {
		f, err := os.Create(*outFile)
		if err != nil {
			fmt.Fprintf(stderr, "detlint: %v\n", err)
			return 2
		}
		defer f.Close()
		out = f
	}

	if *hotpaths {
		rep := lint.HotpathReport(pkgs)
		rep.Relativize(*dir)
		if err := renderHotpaths(out, *format, rep); err != nil {
			fmt.Fprintf(stderr, "detlint: %v\n", err)
			return 2
		}
		fmt.Fprintf(stderr, "detlint: hot-path report: %d entry point(s), %d hot function(s), %d allocation site(s)\n",
			len(rep.Entries), len(rep.Functions), rep.TotalSites)
		return 0
	}

	if *leaks {
		rep := lint.LifecycleReport(pkgs)
		rep.Relativize(*dir)
		if err := renderLeaks(out, *format, rep); err != nil {
			fmt.Fprintf(stderr, "detlint: %v\n", err)
			return 2
		}
		fmt.Fprintf(stderr, "detlint: lifecycle report: %d function(s), %d tracked resource(s), %d leak(s)\n",
			len(rep.Functions), rep.TotalResources, rep.Leaks)
		return 0
	}

	diags := lint.Run(pkgs, checks)
	lint.Relativize(diags, *dir)

	if *writeBaseline {
		cur := lint.NewBaseline(diags)
		// Surface suppression rot: entries of the previous recording whose
		// fingerprint no longer occurs at all.
		if prev, err := lint.ReadBaseline(*baselineFile); err == nil {
			for _, e := range prev.Prune(cur) {
				fmt.Fprintf(stderr, "detlint: pruned stale baseline entry: [%s] %s: %s (count %d)\n",
					e.Check, e.File, e.Message, e.Count)
			}
		}
		f, err := os.Create(*baselineFile)
		if err != nil {
			fmt.Fprintf(stderr, "detlint: %v\n", err)
			return 2
		}
		defer f.Close()
		if err := cur.Write(f); err != nil {
			fmt.Fprintf(stderr, "detlint: %v\n", err)
			return 2
		}
		fmt.Fprintf(stderr, "detlint: wrote baseline %s (%d findings)\n", *baselineFile, len(diags))
		return 0
	}

	var suppressed []lint.Diagnostic
	if *baselineFile != "" {
		base, err := lint.ReadBaseline(*baselineFile)
		if err != nil {
			fmt.Fprintf(stderr, "detlint: %v\n", err)
			return 2
		}
		if *maxBaseline >= 0 && base.Total() > *maxBaseline {
			fmt.Fprintf(stderr, "detlint: baseline %s accepts %d findings, over the ratchet cap of %d — burn findings down instead of re-recording a larger baseline\n",
				*baselineFile, base.Total(), *maxBaseline)
			return 1
		}
		diags, suppressed = base.Filter(diags)
	}

	if err := render(out, *format, checks, pkgs, diags, suppressed); err != nil {
		fmt.Fprintf(stderr, "detlint: %v\n", err)
		return 2
	}
	// Whenever the primary stream is machine-readable or a file (the
	// CI-artifact paths), mirror the human-readable diagnostics on stderr
	// so a failing run is debuggable without opening the artifact.
	if *format != "text" || *outFile != "" {
		for _, d := range diags {
			fmt.Fprintln(stderr, d)
		}
	}
	fmt.Fprintf(stderr, "detlint: %d packages, %d findings, %d suppressed by baseline\n",
		len(pkgs), len(diags), len(suppressed))

	if len(diags) > 0 {
		return 1
	}
	return 0
}

// jsonDoc is the -format json document. Checks records which analyzers
// actually ran: a -checks subset that comes back clean must be
// distinguishable from a full clean run when the artifact is read later.
type jsonDoc struct {
	Packages   int               `json:"packages"`
	Checks     []string          `json:"checks"`
	Findings   []lint.Diagnostic `json:"findings"`
	Suppressed int               `json:"suppressed"`
}

func render(out io.Writer, format string, checks []*lint.Check, pkgs []*lint.Package, diags, suppressed []lint.Diagnostic) error {
	switch format {
	case "json":
		doc := jsonDoc{
			Packages:   len(pkgs),
			Checks:     make([]string, len(checks)),
			Findings:   diags,
			Suppressed: len(suppressed),
		}
		for i, c := range checks {
			doc.Checks[i] = c.Name
		}
		if doc.Findings == nil {
			doc.Findings = []lint.Diagnostic{}
		}
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(doc)
	case "sarif":
		return lint.WriteSARIF(out, checks, diags)
	default:
		for _, d := range diags {
			fmt.Fprintln(out, d)
		}
		return nil
	}
}

// hotallocRule is the synthetic rule the SARIF rendering of the
// hot-path report carries its sites under.
var hotallocRule = &lint.Check{
	Name: "hotalloc",
	Doc:  "allocation site in a function reachable from a //detlint:hotpath entry point",
}

func renderHotpaths(out io.Writer, format string, rep *lint.HotReport) error {
	switch format {
	case "json":
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	case "sarif":
		return lint.WriteSARIF(out, []*lint.Check{hotallocRule}, rep.Diagnostics())
	default:
		return rep.WriteText(out)
	}
}

// lifecycleRule is the synthetic rule the SARIF rendering of the
// lifecycle report carries its sites under.
var lifecycleRule = &lint.Check{
	Name: "lifecycle",
	Doc:  "tracked resource acquisition and its resolved fate (released, deferred, transferred, leaked)",
}

func renderLeaks(out io.Writer, format string, rep *lint.LeakReport) error {
	switch format {
	case "json":
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	case "sarif":
		return lint.WriteSARIF(out, []*lint.Check{lifecycleRule}, rep.Diagnostics())
	default:
		return rep.WriteText(out)
	}
}
