// Command hisparctl builds, refreshes, and analyzes Hispar lists over the
// simulated web — the open-source tooling analogue the paper releases
// (§3): create a list from a top-list bootstrap and search-engine
// discovery, write it in the public CSV format, regenerate weekly
// snapshots, and compute the two-level churn.
//
// Usage:
//
//	hisparctl build -sites 2000 -persite 50 -out h2k.csv
//	hisparctl weekly -weeks 10 -sites 500 -persite 20
//	hisparctl churn -a week0.csv -b week1.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/hispar"
	"repro/internal/search"
	"repro/internal/toplist"
	"repro/internal/webgen"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "build":
		cmdBuild(os.Args[2:])
	case "weekly":
		cmdWeekly(os.Args[2:])
	case "churn":
		cmdChurn(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: hisparctl {build|weekly|churn} [flags]")
	os.Exit(2)
}

func buildList(seed int64, week, sites, perSite, minResults, universe int) (*hispar.List, hispar.BuildStats) {
	u := toplist.NewUniverse(toplist.Config{Seed: seed, Size: universe})
	u.Step(week * 7)
	bootstrap := u.Top(sites * 7 / 5)
	seeds := make([]webgen.SiteSeed, len(bootstrap))
	for i, e := range bootstrap {
		seeds[i] = webgen.SiteSeed{Domain: e.Domain, Rank: e.Rank}
	}
	web := webgen.Generate(webgen.Config{Seed: seed, Week: week, Sites: seeds})
	eng := search.New(web, search.Config{EnglishOnly: true})
	list, stats, err := hispar.Build(eng, bootstrap, hispar.BuildConfig{
		Sites:       sites,
		URLsPerSite: perSite,
		MinResults:  minResults,
		Week:        week,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "hisparctl: %v\n", err)
		os.Exit(1)
	}
	return list, stats
}

func cmdBuild(args []string) {
	fs := flag.NewFlagSet("build", flag.ExitOnError)
	var (
		seed       = fs.Int64("seed", 42, "RNG seed")
		week       = fs.Int("week", 0, "snapshot week")
		sites      = fs.Int("sites", 2000, "number of web sites")
		perSite    = fs.Int("persite", 50, "URLs per site (incl. landing page)")
		minResults = fs.Int("minresults", 10, "drop sites with fewer search results")
		universe   = fs.Int("universe", 20000, "top-list universe size")
		out        = fs.String("out", "", "output CSV path (default stdout)")
	)
	_ = fs.Parse(args)
	list, stats := buildList(*seed, *week, *sites, *perSite, *minResults, *universe)
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hisparctl: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := list.WriteCSV(w); err != nil {
		fmt.Fprintf(os.Stderr, "hisparctl: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "built %s: %d sites, %d pages; %d sites examined, %d dropped; %d queries ($%.2f)\n",
		list.Name, len(list.Sets), list.Pages(), stats.SitesExamined, stats.SitesDropped, stats.Queries, stats.CostUSD)
}

func cmdWeekly(args []string) {
	fs := flag.NewFlagSet("weekly", flag.ExitOnError)
	var (
		seed       = fs.Int64("seed", 42, "RNG seed")
		weeks      = fs.Int("weeks", 10, "number of weekly snapshots")
		sites      = fs.Int("sites", 500, "sites per list")
		perSite    = fs.Int("persite", 20, "URLs per site")
		minResults = fs.Int("minresults", 5, "drop threshold")
		universe   = fs.Int("universe", 20000, "top-list universe size")
	)
	_ = fs.Parse(args)
	var prev *hispar.List
	for w := 0; w < *weeks; w++ {
		list, _ := buildList(*seed, w, *sites, *perSite, *minResults, *universe)
		if prev != nil {
			fmt.Printf("week %d: site churn %.3f, internal-URL churn %.3f\n",
				w, hispar.SiteChurn(prev, list), hispar.InternalChurn(prev, list))
		}
		prev = list
	}
}

func cmdChurn(args []string) {
	fs := flag.NewFlagSet("churn", flag.ExitOnError)
	var (
		a = fs.String("a", "", "first list CSV")
		b = fs.String("b", "", "second list CSV")
	)
	_ = fs.Parse(args)
	if *a == "" || *b == "" {
		fmt.Fprintln(os.Stderr, "hisparctl churn: -a and -b are required")
		os.Exit(2)
	}
	la := readList(*a)
	lb := readList(*b)
	fmt.Printf("site churn: %.3f\n", hispar.SiteChurn(la, lb))
	fmt.Printf("internal-URL churn: %.3f\n", hispar.InternalChurn(la, lb))
}

func readList(path string) *hispar.List {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hisparctl: %v\n", err)
		os.Exit(1)
	}
	defer f.Close()
	l, err := hispar.ReadCSV(f)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hisparctl: %v\n", err)
		os.Exit(1)
	}
	return l
}
