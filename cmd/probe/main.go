// Command probe is a development tool: it prints ground-truth model
// statistics (CDN byte fractions, popularity tiers) to support
// calibration of the synthetic web.
package main

import (
	"flag"
	"fmt"
	"sort"

	"repro/internal/toplist"
	"repro/internal/webgen"
)

func cdnFrac(m *webgen.PageModel) float64 {
	var cdn, total int64
	for _, o := range m.Objects {
		total += o.Size
		if o.ViaCDN != "" {
			cdn += o.Size
		}
	}
	if total == 0 {
		return 0
	}
	return float64(cdn) / float64(total)
}

func main() {
	var (
		seed = flag.Int64("seed", 42, "seed")
		n    = flag.Int("n", 200, "sites")
	)
	flag.Parse()
	u := toplist.NewUniverse(toplist.Config{Seed: *seed, Size: 4000})
	entries := u.Top(*n)
	seeds := make([]webgen.SiteSeed, len(entries))
	for i, e := range entries {
		seeds[i] = webgen.SiteSeed{Domain: e.Domain, Rank: e.Rank}
	}
	web := webgen.Generate(webgen.Config{Seed: *seed, Sites: seeds})
	var ratioSamples []float64
	pos := 0
	for _, s := range web.Sites {
		lf := cdnFrac(s.Landing().Build())
		var ifs []float64
		for i := 1; i <= 9; i++ {
			ifs = append(ifs, cdnFrac(s.PageAt(i).Build()))
		}
		sort.Float64s(ifs)
		med := ifs[len(ifs)/2]
		if med > 0 {
			ratioSamples = append(ratioSamples, lf/med)
			if lf > med {
				pos++
			}
		}
	}
	sort.Float64s(ratioSamples)
	fmt.Printf("ground-truth CDN frac ratio: median=%.2f fracHigher=%.2f n=%d\n",
		ratioSamples[len(ratioSamples)/2], float64(pos)/float64(len(ratioSamples)), len(ratioSamples))
}
