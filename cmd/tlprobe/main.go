// Command tlprobe calibrates top-list churn dynamics (dev tool).
package main

import (
	"flag"
	"fmt"

	"repro/internal/stats"
	"repro/internal/toplist"
)

func main() {
	var (
		size  = flag.Int("size", 350000, "universe size")
		base  = flag.Float64("base", 0.07, "base volatility")
		tail  = flag.Float64("tail", 0.10, "tail volatility")
		rev   = flag.Float64("rev", 0.45, "reversion")
		drift = flag.Float64("drift", 0.40, "anchor drift")
	)
	flag.Parse()
	u := toplist.NewUniverse(toplist.Config{Seed: 1, Size: *size, BaseVolatility: *base, TailVolatility: *tail, Reversion: *rev, AnchorDrift: *drift})
	var d5, w5, w100, w560 []float64
	var p5d, p5w, p100, p560 []toplist.Entry
	for week := 0; week < 6; week++ {
		for d := 0; d < 7; d++ {
			c := u.Top(5000)
			if p5d != nil {
				d5 = append(d5, toplist.Churn(p5d, c))
			}
			p5d = c
			u.Step(1)
		}
		c5 := u.Top(5000)
		c100 := u.Top(100000)
		c560 := u.Top(2800)
		if p5w != nil {
			w5 = append(w5, toplist.Churn(p5w, c5))
			w100 = append(w100, toplist.Churn(p100, c100))
			w560 = append(w560, toplist.Churn(p560, c560))
		}
		p5w, p100, p560 = c5, c100, c560
	}
	fmt.Printf("daily5k=%.3f weekly5k=%.3f weekly2800=%.3f weekly100k=%.3f\n",
		stats.Mean(d5), stats.Mean(w5), stats.Mean(w560), stats.Mean(w100))
}
