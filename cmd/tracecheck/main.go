// Command tracecheck validates Chrome trace-event JSON files as emitted
// by webmeasure -trace and papereval -trace: the envelope shape, the
// per-event field contract (complete "X" events with non-negative
// microsecond timestamps, a span_id on every event, parents that
// resolve), and — given two files — byte-identity between them. It is
// the CI end of the tracer's determinism contract: `make trace-smoke`
// runs the same study at two worker counts and requires tracecheck to
// accept both files and find them identical.
//
// Usage:
//
//	tracecheck trace.json
//	tracecheck run1.json run2.json   # also require byte-identity
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
)

func main() {
	if len(os.Args) < 2 || len(os.Args) > 3 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck trace.json [other.json]")
		os.Exit(2)
	}
	var blobs [][]byte
	for _, path := range os.Args[1:] {
		b, err := os.ReadFile(path)
		if err != nil {
			fatal(err)
		}
		n, err := validate(b)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", path, err))
		}
		fmt.Fprintf(os.Stderr, "tracecheck: %s: %d events ok\n", path, n)
		blobs = append(blobs, b)
	}
	if len(blobs) == 2 {
		if !bytes.Equal(blobs[0], blobs[1]) {
			fatal(fmt.Errorf("%s and %s are not byte-identical (%d vs %d bytes): the trace is not deterministic",
				os.Args[1], os.Args[2], len(blobs[0]), len(blobs[1])))
		}
		fmt.Fprintln(os.Stderr, "tracecheck: files are byte-identical")
	}
}

// event mirrors the subset of the trace-event format the tracer emits.
type event struct {
	Ph   string          `json:"ph"`
	PID  *int64          `json:"pid"`
	TID  *int64          `json:"tid"`
	TS   *float64        `json:"ts"`
	Dur  *float64        `json:"dur"`
	Name string          `json:"name"`
	Cat  string          `json:"cat"`
	Args json.RawMessage `json:"args"`
}

// validate checks one trace file and returns its event count.
func validate(b []byte) (int, error) {
	var doc struct {
		DisplayTimeUnit string            `json:"displayTimeUnit"`
		TraceEvents     []json.RawMessage `json:"traceEvents"`
	}
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&doc); err != nil {
		return 0, fmt.Errorf("envelope: %w", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		return 0, fmt.Errorf("displayTimeUnit = %q, want ms", doc.DisplayTimeUnit)
	}
	ids := make(map[string]bool, len(doc.TraceEvents))
	var parents []struct {
		idx int
		id  string
	}
	for i, raw := range doc.TraceEvents {
		var ev event
		if err := json.Unmarshal(raw, &ev); err != nil {
			return 0, fmt.Errorf("event %d: %w", i, err)
		}
		if ev.Ph != "X" {
			return 0, fmt.Errorf("event %d (%q): ph = %q, want complete event X", i, ev.Name, ev.Ph)
		}
		if ev.PID == nil || ev.TID == nil || ev.TS == nil || ev.Dur == nil {
			return 0, fmt.Errorf("event %d (%q): missing pid/tid/ts/dur", i, ev.Name)
		}
		if *ev.TS < 0 || *ev.Dur < 0 {
			return 0, fmt.Errorf("event %d (%q): negative ts/dur (%v, %v)", i, ev.Name, *ev.TS, *ev.Dur)
		}
		if ev.Name == "" || ev.Cat == "" {
			return 0, fmt.Errorf("event %d: empty name or cat", i)
		}
		var args map[string]string
		if err := json.Unmarshal(ev.Args, &args); err != nil {
			return 0, fmt.Errorf("event %d (%q): args: %w", i, ev.Name, err)
		}
		id := args["span_id"]
		if len(id) != 16 {
			return 0, fmt.Errorf("event %d (%q): span_id %q, want 16 hex digits", i, ev.Name, id)
		}
		ids[id] = true
		if p, ok := args["parent_id"]; ok {
			parents = append(parents, struct {
				idx int
				id  string
			}{i, p})
		}
	}
	for _, p := range parents {
		if !ids[p.id] {
			return 0, fmt.Errorf("event %d: parent_id %q resolves to no span in this file", p.idx, p.id)
		}
	}
	return len(doc.TraceEvents), nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "tracecheck: %v\n", err)
	os.Exit(1)
}
