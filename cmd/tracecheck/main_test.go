package main

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/trace"
)

// goodTrace renders a real tracer export — the validator must accept
// exactly what internal/trace emits.
func goodTrace(t *testing.T) []byte {
	t.Helper()
	t0 := time.Date(2020, 3, 12, 0, 0, 0, 0, time.UTC)
	tr := trace.New(trace.DetailPhases)
	rec := tr.Recorder(1, 0)
	site := trace.SiteSpanID(0)
	rec.Record(trace.Span{
		ID: site, Name: "site example.org", Cat: "site",
		Start: t0, Dur: 2 * time.Second,
		Attrs: []trace.Attr{{Key: "rank", Val: "1"}},
	})
	rec.Record(trace.Span{
		ID: trace.DeriveID("load", "example.org"), Parent: site,
		Name: "load https://example.org/", Cat: "load",
		Start: t0.Add(100 * time.Millisecond), Dur: time.Second,
	})
	tr.Merge(rec)
	var buf bytes.Buffer
	if err := tr.WriteChromeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestValidateAcceptsTracerOutput(t *testing.T) {
	n, err := validate(goodTrace(t))
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Errorf("validated %d events, want 2", n)
	}
}

func TestValidateRejects(t *testing.T) {
	good := string(goodTrace(t))
	cases := []struct {
		name, doc, wantErr string
	}{
		{"not json", "{", "envelope"},
		{"wrong time unit", strings.Replace(good, `"displayTimeUnit":"ms"`, `"displayTimeUnit":"ns"`, 1), "displayTimeUnit"},
		{"wrong phase", strings.Replace(good, `"ph":"X"`, `"ph":"B"`, 1), "ph ="},
		{"unknown envelope field", strings.Replace(good, `"displayTimeUnit"`, `"extra":1,"displayTimeUnit"`, 1), "envelope"},
		{"dangling parent", strings.Replace(good, `"parent_id":"`, `"parent_id":"00000000000000ff","x":"`, 1), "resolves to no span"},
		{"missing span_id", strings.ReplaceAll(good, `span_id`, `span_xx`), "span_id"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := validate([]byte(c.doc))
			if err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("err = %v, want substring %q", err, c.wantErr)
			}
		})
	}
}
