// Command haranalyze runs the study's analysis stack over a directory of
// HAR files — the released-analysis-scripts side of the paper's
// artifact. Landing pages (root documents) and internal pages are split
// by URL, per-page metrics are printed as CSV, and the landing-vs-
// internal aggregate comparison is summarized on stderr.
//
// Pair it with webmeasure:
//
//	webmeasure -sites 20 -har hars/
//	haranalyze -dir hars/
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/adblock"
	"repro/internal/cdndetect"
	"repro/internal/core"
	"repro/internal/har"
	"repro/internal/psl"
	"repro/internal/stats"
)

func main() {
	var (
		dir     = flag.String("dir", "", "directory of .har.json files (required)")
		filters = flag.String("filters", "", "optional Easylist-format filter file for tracker counting")
	)
	flag.Parse()
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "haranalyze: -dir is required")
		os.Exit(2)
	}

	az := core.Analyzers{PSL: psl.Default(), CDN: cdndetect.New(nil)}
	if *filters != "" {
		data, err := os.ReadFile(*filters)
		fatal(err)
		engine, skipped := adblock.Compile(strings.Split(string(data), "\n"))
		fmt.Fprintf(os.Stderr, "compiled %d filter rules (%d skipped)\n", engine.Len(), skipped)
		az.Adblock = engine
	}

	paths, err := filepath.Glob(filepath.Join(*dir, "*.har.json"))
	fatal(err)
	if len(paths) == 0 {
		fmt.Fprintf(os.Stderr, "haranalyze: no .har.json files in %s\n", *dir)
		os.Exit(1)
	}
	sort.Strings(paths)

	var landing, internal []core.PageMeasurement
	fmt.Println("url,page_type,bytes,objects,plt_ms,onload_ms,noncacheable,cdn_bytes,domains,handshakes,trackers,depth2plus")
	for _, p := range paths {
		f, err := os.Open(p)
		fatal(err)
		log, err := har.ReadJSON(f)
		// Read-only close after a full decode: no signal in the error.
		_ = f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "haranalyze: skipping %s: %v\n", p, err)
			continue
		}
		m := core.MeasureHAR(log, az)
		kind := "internal"
		if m.IsLanding {
			kind = "landing"
			landing = append(landing, m)
		} else {
			internal = append(internal, m)
		}
		deep := 0
		for d := 2; d < len(m.DepthCounts); d++ {
			deep += m.DepthCounts[d]
		}
		fmt.Printf("%s,%s,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d\n",
			m.URL, kind, m.Bytes, m.Objects, m.PLT.Milliseconds(), m.OnLoad.Milliseconds(),
			m.NonCacheable, m.CDNBytes, m.UniqueDomains, m.Handshakes, m.TrackerRequests, deep)
	}

	summarize := func(ms []core.PageMeasurement, f func(*core.PageMeasurement) float64) (float64, float64) {
		var xs []float64
		for i := range ms {
			xs = append(xs, f(&ms[i]))
		}
		s := stats.SortedInPlace(xs)
		return s.Median(), s.Quantile(0.9)
	}
	if len(landing) > 0 && len(internal) > 0 {
		fmt.Fprintf(os.Stderr, "\n%d landing pages, %d internal pages\n", len(landing), len(internal))
		for _, row := range []struct {
			name string
			f    func(*core.PageMeasurement) float64
		}{
			{"bytes", func(m *core.PageMeasurement) float64 { return float64(m.Bytes) }},
			{"objects", func(m *core.PageMeasurement) float64 { return float64(m.Objects) }},
			{"plt_ms", func(m *core.PageMeasurement) float64 { return float64(m.PLT.Milliseconds()) }},
			{"domains", func(m *core.PageMeasurement) float64 { return float64(m.UniqueDomains) }},
			{"handshakes", func(m *core.PageMeasurement) float64 { return float64(m.Handshakes) }},
		} {
			lm, lp90 := summarize(landing, row.f)
			im, ip90 := summarize(internal, row.f)
			fmt.Fprintf(os.Stderr, "%-11s landing median %.0f (p90 %.0f)  internal median %.0f (p90 %.0f)\n",
				row.name, lm, lp90, im, ip90)
		}
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "haranalyze: %v\n", err)
		os.Exit(1)
	}
}
