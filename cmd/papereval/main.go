// Command papereval regenerates every table and figure of the paper's
// evaluation from the simulated substrates and prints paper-vs-measured
// rows. Use -exp to select a subset, -sites/-fetches to scale the study.
//
// Example:
//
//	papereval -sites 1000 -fetches 10 > results.txt
//	papereval -exp fig2a,fig2c -sites 300
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/asciiplot"
	"repro/internal/experiments"
	"repro/internal/profiling"
	"repro/internal/trace"
)

func main() {
	var (
		seed       = flag.Int64("seed", 42, "root RNG seed")
		sites      = flag.Int("sites", 1000, "H1K-style list size")
		perSite    = flag.Int("persite", 20, "URLs per site (1 landing + N-1 internal)")
		fetches    = flag.Int("fetches", 10, "fetches per landing page")
		expList    = flag.String("exp", "", "comma-separated experiment IDs (default: all)")
		weeks      = flag.Int("weeks", 10, "stability experiment weeks")
		uniSize    = flag.Int("universe", 130000, "stability universe size")
		h2k        = flag.Int("h2ksites", 2000, "H2K list size (stability/cost)")
		crawlN     = flag.Int("crawl", 5000, "exhaustive-crawl pages per site")
		revisit    = flag.Duration("revisit", 30*time.Minute, "cold→warm revisit delay (warm experiment)")
		list       = flag.Bool("list", false, "list experiment IDs and exit")
		plot       = flag.Bool("plot", false, "render each report's series as ASCII charts")
		stream     = flag.Bool("stream", false, "run fig2 experiments through the constant-memory streaming engine")
		window     = flag.Int("window", 0, "streaming reorder window in sites (0 = 4×workers; with -stream)")
		traceOut   = flag.String("trace", "", "write a Chrome trace-event JSON of the streamed study to this file (implies -stream)")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a post-run heap profile to this file")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-10s %s\n", e.ID, e.Title)
		}
		return
	}

	stopCPU, err := profiling.StartCPU(*cpuProfile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "papereval: %v\n", err)
		os.Exit(1)
	}
	var tracer *trace.Tracer
	if *traceOut != "" {
		tracer = trace.New(trace.DetailPhases)
		*stream = true // spans come from the streaming engine
	}

	ctx := experiments.NewContext(experiments.Config{
		Seed:              *seed,
		Sites:             *sites,
		PerSite:           *perSite,
		LandingFetches:    *fetches,
		StabilityWeeks:    *weeks,
		StabilityUniverse: *uniSize,
		H2KSites:          *h2k,
		CrawlPages:        *crawlN,
		RevisitDelay:      *revisit,
		Stream:            *stream,
		StreamWindow:      *window,
		Trace:             tracer,
	})

	var selected []experiments.Experiment
	if *expList == "" {
		selected = experiments.All()
	} else {
		for _, id := range strings.Split(*expList, ",") {
			id = strings.TrimSpace(id)
			e, ok := experiments.ByID(id)
			if !ok {
				profiling.StopAll() // exit skips stopCPU below: flush the profile
				fmt.Fprintf(os.Stderr, "papereval: unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	failed := 0
	for _, e := range selected {
		start := time.Now() //detlint:allow walltime,taint -- per-experiment run timestamp for the operator only; the CSV-writer path the analyzer sees is the CHA edge into CSVSink, which papereval never installs
		rep, err := e.Run(ctx)
		if err != nil {
			fmt.Fprintf(os.Stderr, "papereval: %s failed: %v\n", e.ID, err)
			failed++
			continue
		}
		fmt.Print(rep.String())
		if *plot && len(rep.Series) > 0 {
			names := make([]string, 0, len(rep.Series))
			for n := range rep.Series {
				names = append(names, n)
			}
			sort.Strings(names)
			series := make([]asciiplot.Series, 0, len(names))
			for _, n := range names {
				series = append(series, asciiplot.Series{Name: n, Points: rep.Series[n]})
			}
			fmt.Print(asciiplot.Render(series, asciiplot.Options{XLabel: rep.Title}))
		}
		//detlint:allow walltime -- per-experiment run timestamp for the operator, not a measurement
		fmt.Printf("-- %s completed in %v --\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}

	if tracer != nil {
		if err := writeTrace(tracer, *traceOut); err != nil {
			fmt.Fprintf(os.Stderr, "papereval: trace: %v\n", err)
			failed++
		} else if tracer.Len() == 0 {
			fmt.Fprintln(os.Stderr, "papereval: note: -trace wrote no spans (only streamed fig2 experiments record them)")
		}
	}
	stopCPU()
	if err := profiling.WriteHeap(*memProfile); err != nil {
		fmt.Fprintf(os.Stderr, "papereval: %v\n", err)
		failed++
	}
	if failed > 0 {
		os.Exit(1)
	}
}

// writeTrace dumps the tracer's spans as a Chrome trace-event file.
func writeTrace(tr *trace.Tracer, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteChromeJSON(f); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}
