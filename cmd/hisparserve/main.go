// Command hisparserve runs the Hispar control plane — the serving
// analogue of hisparctl's batch tooling: a long-running HTTP server that
// publishes list snapshots, churn diffs, per-site URL sets, and study
// measurement datasets to many concurrent clients (the way the paper's
// list is served from hispar.cs.duke.edu), plus the seeded load
// generator that exercises it.
//
// Usage:
//
//	hisparserve serve -addr :8420 -seed 42 -weeks 4
//	hisparserve loadgen -url http://localhost:8420 -n 10000 -clients 8
//	hisparserve smoke -n 12000 -clients 8
//
// smoke boots an ephemeral in-process server, drives the full load
// against it, prints the report plus the server's metrics, and exits
// non-zero if any request failed or returned a status outside {2xx,
// 304} — the CI serve-smoke gate.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/hisparserve"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "serve":
		cmdServe(os.Args[2:])
	case "loadgen":
		cmdLoadgen(os.Args[2:])
	case "smoke":
		cmdSmoke(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: hisparserve {serve|loadgen|smoke} [flags]")
	os.Exit(2)
}

// serverFlags registers the Config knobs shared by serve and smoke.
func serverFlags(fs *flag.FlagSet) *hisparserve.Config {
	cfg := &hisparserve.Config{}
	fs.Int64Var(&cfg.Seed, "seed", 42, "RNG seed (same seed, same bytes)")
	fs.IntVar(&cfg.Weeks, "weeks", 4, "weekly snapshots served")
	fs.IntVar(&cfg.Sites, "sites", 24, "sites per snapshot")
	fs.IntVar(&cfg.URLsPerSite, "persite", 8, "URLs per site")
	fs.IntVar(&cfg.Universe, "universe", 1500, "top-list universe size")
	fs.IntVar(&cfg.StudySites, "studysites", 8, "sites measured per dataset")
	fs.DurationVar(&cfg.MaxAge, "maxage", 5*time.Minute, "freshness lifetime on cacheable payloads")
	fs.Float64Var(&cfg.RatePerSec, "rate", 0, "API rate limit in requests/sec (0 disables)")
	fs.IntVar(&cfg.Burst, "burst", 0, "rate-limit burst size")
	fs.BoolVar(&cfg.EnablePprof, "pprof", false, "mount net/http/pprof under /debug/pprof/ (exposes process internals)")
	fs.IntVar(&cfg.TraceSpans, "tracespans", 0, "request spans kept for /debug/tracez (0 = default 256)")
	return cfg
}

func cmdServe(args []string) {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	cfg := serverFlags(fs)
	var (
		addr  = fs.String("addr", "127.0.0.1:8420", "listen address")
		drain = fs.Duration("drain", 10*time.Second, "graceful shutdown drain deadline")
	)
	_ = fs.Parse(args)

	s := hisparserve.New(*cfg)
	bound, err := s.Start(*addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hisparserve: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "hisparserve: serving on http://%s (ctrl-c to drain and stop)\n", bound)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig

	fmt.Fprintln(os.Stderr, "hisparserve: draining...")
	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "hisparserve: shutdown: %v\n", err)
		os.Exit(1)
	}
	s.Stats().Render(os.Stderr)
}

// loadFlags registers the LoadConfig knobs shared by loadgen and smoke.
func loadFlags(fs *flag.FlagSet) *hisparserve.LoadConfig {
	lc := &hisparserve.LoadConfig{}
	fs.Int64Var(&lc.Seed, "loadseed", 1, "load generator seed")
	fs.IntVar(&lc.Requests, "n", 10000, "total requests")
	fs.IntVar(&lc.Clients, "clients", 8, "concurrent client streams")
	fs.Float64Var(&lc.ZipfS, "zipf", 1.2, "zipf exponent over site ranks")
	fs.IntVar(&lc.Week, "week", 0, "snapshot week to browse")
	fs.IntVar(&lc.ListEvery, "listevery", 50, "every Nth request fetches the list CSV")
	fs.IntVar(&lc.DatasetEvery, "datasetevery", 200, "every Nth request fetches the study dataset")
	return lc
}

func cmdLoadgen(args []string) {
	fs := flag.NewFlagSet("loadgen", flag.ExitOnError)
	lc := loadFlags(fs)
	url := fs.String("url", "http://127.0.0.1:8420", "base URL of a running server")
	_ = fs.Parse(args)
	runLoad(*url, *lc, nil)
}

func cmdSmoke(args []string) {
	fs := flag.NewFlagSet("smoke", flag.ExitOnError)
	cfg := serverFlags(fs)
	lc := loadFlags(fs)
	_ = fs.Parse(args)

	s := hisparserve.New(*cfg)
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		fmt.Fprintf(os.Stderr, "hisparserve: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "smoke: ephemeral server on http://%s\n", addr)
	runLoad("http://"+addr, *lc, func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "smoke: shutdown: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "smoke: server metrics:")
		s.Stats().Render(os.Stderr)
	})
}

// runLoad drives the generator, renders both reports, runs cleanup, and
// exits non-zero when the run saw failures.
func runLoad(baseURL string, lc hisparserve.LoadConfig, cleanup func()) {
	rep, set, err := hisparserve.RunLoad(baseURL, lc)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hisparserve: %v\n", err)
		os.Exit(1)
	}
	rep.Render(os.Stdout)
	fmt.Println("loadgen metrics:")
	set.Render(os.Stdout)
	if cleanup != nil {
		cleanup()
	}
	if err := rep.Failures(); err != nil {
		fmt.Fprintf(os.Stderr, "hisparserve: FAIL: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "hisparserve: PASS")
}
