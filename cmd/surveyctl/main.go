// Command surveyctl runs the literature-survey pipeline (§2): scan a
// paper corpus for top-list terms, weed out false positives, review the
// matches on the revision-score rubric, and print Table 1.
//
// With no -corpus flag it generates the synthetic 920-paper corpus whose
// ground truth matches the paper's dataset.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/survey"
)

func main() {
	var (
		seed    = flag.Int64("seed", 42, "corpus generation seed")
		details = flag.Bool("v", false, "print per-match details")
	)
	flag.Parse()

	corpus := survey.GenerateCorpus(*seed)
	matches := survey.ScanCorpus(corpus)
	fp := 0
	for _, m := range matches {
		if m.FalsePositive {
			fp++
		}
		if *details {
			rev, internal := survey.Review(m)
			fmt.Printf("%-14s fp=%-5v internal=%-5v score=%-14s terms=%v\n",
				m.Paper.Venue, m.FalsePositive, internal, rev, m.MatchedTerms)
		}
	}

	rows := survey.Tabulate(corpus)
	fmt.Printf("scanned %d papers: %d term matches, %d false positives weeded out\n\n",
		len(corpus), len(matches), fp)
	fmt.Printf("%-8s %6s %8s %6s %6s %4s\n", "venue", "pubs", "toplist", "major", "minor", "no")
	for _, r := range rows {
		fmt.Printf("%-8s %6d %8d %6d %6d %4d\n",
			r.Venue, r.Publications, r.UsingTopList, r.Major, r.Minor, r.None)
	}
	t := survey.Total(rows)
	fmt.Printf("%-8s %6d %8d %6d %6d %4d\n", "total", t.Publications, t.UsingTopList, t.Major, t.Minor, t.None)
	fmt.Printf("\nfraction needing at least a minor revision: %.1f%%\n",
		100*survey.NeedingRevisionFraction(rows))

	want := survey.Total(survey.Dataset())
	if t != want {
		fmt.Fprintf(os.Stderr, "surveyctl: pipeline totals %+v diverge from the curated dataset %+v\n", t, want)
		os.Exit(1)
	}
}
