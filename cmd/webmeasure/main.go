// Command webmeasure fetches the pages of a Hispar list with the
// simulated browser — cold cache, landing pages fetched repeatedly,
// internal pages once, exactly the paper's §3.1 methodology — and writes
// per-page measurements as CSV (or full HAR logs with -har).
//
// Usage:
//
//	webmeasure -sites 100 -persite 20 -fetches 10 > measurements.csv
//	webmeasure -sites 5 -har hars/   # one HAR JSON per page
//
// The -fault-* flags inject network and resolver faults; the runner
// retries transient failures with exponential backoff in virtual time,
// drops what stays dead, and reports run metrics with -stats. A partial
// CSV is still written when the failure budget (-budget) is exceeded.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"repro/internal/browser"
	"repro/internal/cdn"
	"repro/internal/core"
	"repro/internal/dnssim"
	"repro/internal/hispar"
	"repro/internal/profiling"
	"repro/internal/search"
	"repro/internal/simnet"
	"repro/internal/toplist"
	"repro/internal/trace"
	"repro/internal/webgen"
)

func main() {
	var (
		seed    = flag.Int64("seed", 42, "RNG seed")
		sites   = flag.Int("sites", 100, "sites to measure")
		perSite = flag.Int("persite", 20, "URLs per site")
		fetches = flag.Int("fetches", 10, "fetches per landing page")
		workers = flag.Int("workers", 0, "parallel site workers (0 = GOMAXPROCS)")
		harDir  = flag.String("har", "", "write HAR JSON files into this directory instead of CSV")
		warm    = flag.Bool("warm", false, "run the cold→warm revisit study (pairs CSV) instead of the cold study")
		revisit = flag.Duration("revisit", 30*time.Minute, "cold→warm revisit delay (with -warm)")

		faultTimeout  = flag.Float64("fault-timeout", 0, "per-request timeout probability")
		faultTruncate = flag.Float64("fault-truncate", 0, "per-request truncation probability")
		faultLoss     = flag.Float64("fault-loss", 0, "per-request retransmit probability")
		dnsFail       = flag.Float64("fault-dns", 0, "transient resolver failure probability")
		retries       = flag.Int("retries", 0, "max load attempts per page (0 = default 3)")
		budget        = flag.Float64("budget", 0, "failure budget as a fraction of sites (0 = default 0.25, negative = unlimited)")
		stats         = flag.Bool("stats", false, "print run metrics to stderr")
		stream        = flag.Bool("stream", false, "stream CSV rows as sites complete (constant memory) instead of building the full result")
		window        = flag.Int("window", 0, "streaming reorder window in sites (0 = 4×workers; with -stream)")
		traceOut      = flag.String("trace", "", "write a Chrome trace-event JSON of the study to this file (implies -stream; open in Perfetto)")
		traceDetail   = flag.String("trace-detail", "phases", "trace granularity: sites, loads, fetches, or phases (with -trace)")
		cpuProfile    = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile    = flag.String("memprofile", "", "write a post-run heap profile to this file")
	)
	flag.Parse()

	stopCPU, err := profiling.StartCPU(*cpuProfile)
	fatal(err)
	var tracer *trace.Tracer
	if *traceOut != "" {
		detail, err := trace.ParseDetail(*traceDetail)
		if err != nil {
			profiling.StopAll() // flag error exits past the explicit stop
			fmt.Fprintf(os.Stderr, "webmeasure: %v\n", err)
			os.Exit(2)
		}
		tracer = trace.New(detail)
		*stream = true // spans are recorded by the streaming engine
	}

	u := toplist.NewUniverse(toplist.Config{Seed: *seed, Size: maxInt(4000, *sites*3)})
	bootstrap := u.Top(*sites * 7 / 5)
	seeds := make([]webgen.SiteSeed, len(bootstrap))
	for i, e := range bootstrap {
		seeds[i] = webgen.SiteSeed{Domain: e.Domain, Rank: e.Rank}
	}
	web := webgen.Generate(webgen.Config{Seed: *seed, Sites: seeds})
	eng := search.New(web, search.Config{EnglishOnly: true})
	list, _, err := hispar.Build(eng, bootstrap, hispar.BuildConfig{
		Sites: *sites, URLsPerSite: *perSite, MinResults: 5,
	})
	fatal(err)

	if *harDir != "" {
		writeHARs(web, list, *seed, *harDir)
		finishProfiles(stopCPU, *memProfile)
		return
	}

	st, err := core.NewStudy(web, core.StudyConfig{
		Seed:           *seed,
		LandingFetches: *fetches,
		Workers:        *workers,
		Faults: simnet.FaultConfig{Rates: simnet.FaultRates{
			Timeout: *faultTimeout, Truncate: *faultTruncate, Loss: *faultLoss,
		}},
		DNSFailProb:   *dnsFail,
		MaxAttempts:   *retries,
		FailureBudget: *budget,
	})
	fatal(err)
	if *warm {
		res, runErr := st.RunWarm(list, core.WarmConfig{RevisitDelay: *revisit})
		if res != nil {
			if *stats || res.FailedSites() > 0 {
				fmt.Fprintf(os.Stderr, "webmeasure: %d/%d sites measured, %d failed\n",
					len(res.Sites), len(res.Outcomes), res.FailedSites())
				res.Stats.Render(os.Stderr)
			}
			fatal(core.WriteWarmCSV(os.Stdout, res))
		}
		finishProfiles(stopCPU, *memProfile)
		fatal(runErr)
		return
	}
	if *stream {
		// Constant-memory path: rows hit stdout as sites retire, and only
		// sketch aggregates and outcomes survive the run.
		sink, err := core.NewCSVSink(os.Stdout)
		fatal(err)
		sres, runErr := st.RunStream(list, core.StreamConfig{
			Sinks:  []core.SiteSink{sink},
			Window: *window,
			Trace:  tracer,
		})
		if sres != nil && (*stats || sres.FailedSites() > 0) {
			fmt.Fprintf(os.Stderr, "webmeasure: %d/%d sites measured, %d failed (streamed: peak %d in flight, %d shards)\n",
				sres.Agg.Sites, len(sres.Outcomes), sres.FailedSites(), sres.MaxInFlight, len(sres.Shards))
			if *stats {
				sres.Stats.Render(os.Stderr)
				printMemReport(os.Stderr)
			}
		}
		if tracer != nil {
			// Written even on a failed run: a partial trace is still a
			// timeline of what did happen.
			fatal(writeTrace(tracer, *traceOut))
			if *stats {
				tracer.Summary(os.Stderr)
			}
		}
		finishProfiles(stopCPU, *memProfile)
		fatal(runErr)
		return
	}
	res, runErr := st.Run(list)
	if res != nil {
		if *stats || res.FailedSites() > 0 {
			fmt.Fprintf(os.Stderr, "webmeasure: %d/%d sites measured, %d failed\n",
				len(res.Sites), len(res.Outcomes), res.FailedSites())
			res.Stats.Render(os.Stderr)
		}
		// The public dataset format (see internal/core WriteMeasurementsCSV).
		// Written even when the failure budget was breached: partial
		// results are the point of the fault-tolerant runner.
		fatal(core.WriteMeasurementsCSV(os.Stdout, res))
	}
	finishProfiles(stopCPU, *memProfile)
	fatal(runErr)
}

// writeTrace dumps the tracer's spans as a Chrome trace-event file.
func writeTrace(tr *trace.Tracer, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteChromeJSON(f); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}

// finishProfiles flushes the -cpuprofile/-memprofile outputs; explicit
// rather than deferred because fatal exits skip defers.
func finishProfiles(stopCPU func(), memPath string) {
	stopCPU()
	fatal(profiling.WriteHeap(memPath))
}

// printMemReport writes post-run memory numbers: live and cumulative
// heap from the runtime, plus the process peak RSS when the kernel
// exposes it. This is how the streaming engine's constant-memory claim
// is checked from the command line.
func printMemReport(w io.Writer) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	fmt.Fprintf(w, "webmeasure: heap %.1f MB live, %.1f MB allocated cumulatively, %.1f MB from OS\n",
		float64(ms.HeapAlloc)/1e6, float64(ms.TotalAlloc)/1e6, float64(ms.Sys)/1e6)
	if b, err := os.ReadFile("/proc/self/status"); err == nil {
		for _, line := range strings.Split(string(b), "\n") {
			if strings.HasPrefix(line, "VmHWM:") {
				fmt.Fprintf(w, "webmeasure: peak RSS %s\n",
					strings.TrimSpace(strings.TrimPrefix(line, "VmHWM:")))
			}
		}
	}
}

// writeHARs fetches each page once and dumps full HAR documents.
func writeHARs(web *webgen.Web, list *hispar.List, seed int64, dir string) {
	fatal(os.MkdirAll(dir, 0o755))
	resolver := dnssim.NewResolver(dnssim.ResolverConfig{
		Name: "isp", Seed: seed, WarmQueryRate: 0.8,
	}, web.Authority(), nil)
	warm := cdn.PopularityWarmth(2.2, 0.97)
	b, err := browser.New(browser.Config{
		Seed:     seed,
		Resolver: resolver,
		CDNFactory: func() *cdn.Network {
			return cdn.NewNetwork(1<<14, warm, seed)
		},
	})
	fatal(err)
	n := 0
	start := time.Now() //detlint:allow walltime,taint -- operator progress banner on stderr; the HAR bytes carry only virtual-clock timings
	for _, set := range list.Sets {
		urls := append([]string{set.Landing}, set.Internal...)
		for _, u := range urls {
			page, ok := web.PageByURL(u)
			if !ok {
				continue
			}
			model := page.Build()
			log, err := b.Load(model, 0)
			fatal(err)
			name := sanitize(u) + ".har.json"
			f, err := os.Create(filepath.Join(dir, name))
			fatal(err)
			bw := bufio.NewWriterSize(f, 1<<16)
			fatal(log.WriteJSON(bw))
			fatal(bw.Flush())
			fatal(f.Close())
			n++
		}
	}
	//detlint:allow walltime -- operator progress banner, not a measurement
	fmt.Fprintf(os.Stderr, "wrote %d HAR files to %s in %v\n", n, dir, time.Since(start).Round(time.Millisecond))
}

func sanitize(u string) string {
	r := strings.NewReplacer("://", "_", "/", "_", "?", "_", "&", "_", "=", "_")
	s := r.Replace(u)
	if len(s) > 150 {
		s = s[:150]
	}
	return s
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func fatal(err error) {
	if err != nil {
		// os.Exit skips defers: flush any profile still running so a
		// failed run leaves a readable file instead of a truncated one.
		profiling.StopAll()
		fmt.Fprintf(os.Stderr, "webmeasure: %v\n", err)
		os.Exit(1)
	}
}
