// Command benchjson converts `go test -bench` text output into a JSON
// document keyed by benchmark name, for machine-readable CI artifacts:
//
//	go test -bench=. -benchtime=1x -run='^$' . | tee bench.txt
//	benchjson -o BENCH_ci.json bench.txt
//
// Input comes from the file argument or stdin. Lines that are not
// benchmark results (pass/fail banners, goos/goarch headers) are
// ignored, so the raw `go test` stream can be piped in unfiltered — but
// a line that starts a benchmark result and then fails to parse is an
// error, not a skip: a truncated or corrupted bench.txt must fail the
// pipeline loudly instead of publishing an empty or partial artifact.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Result is one benchmark line's parsed metrics. Iterations and ns/op
// are always present; B/op and allocs/op only when the benchmark
// reports allocations.
type Result struct {
	Iterations  int64    `json:"iterations"`
	NsPerOp     float64  `json:"ns_per_op"`
	BytesPerOp  *int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp *int64   `json:"allocs_per_op,omitempty"`
	MBPerSec    *float64 `json:"mb_per_sec,omitempty"`
}

// benchLine matches the standard testing package result format:
//
//	BenchmarkName-8  	  124	   9612340 ns/op	  513678 B/op	    1290 allocs/op
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+)\s+(\d+)\s+([\d.]+) ns/op(?:\s+([\d.]+) MB/s)?(?:\s+(\d+) B/op)?(?:\s+(\d+) allocs/op)?`)

// benchStart recognizes a line that claims to be a benchmark result:
// the testing package always prints "Benchmark<Name>[-procs]<TAB>". Such
// lines must parse fully or the input is corrupt.
var benchStart = regexp.MustCompile(`^Benchmark\w+(?:-\d+)?\s`)

// parseBench reads a `go test -bench` stream and returns results keyed
// by benchmark name. It is strict where it matters: malformed metric
// fields on a benchmark line, duplicate benchmark names, and inputs with
// no benchmark lines at all are errors.
func parseBench(in io.Reader) (map[string]Result, error) {
	results := make(map[string]Result)
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			if benchStart.MatchString(line) {
				return nil, fmt.Errorf("line %d: malformed benchmark result %q", lineNo, strings.TrimSpace(line))
			}
			continue
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("line %d: bad iteration count %q: %v", lineNo, m[2], err)
		}
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			return nil, fmt.Errorf("line %d: bad ns/op %q: %v", lineNo, m[3], err)
		}
		r := Result{Iterations: iters, NsPerOp: ns}
		if m[4] != "" {
			v, err := strconv.ParseFloat(m[4], 64)
			if err != nil {
				return nil, fmt.Errorf("line %d: bad MB/s %q: %v", lineNo, m[4], err)
			}
			r.MBPerSec = &v
		}
		if m[5] != "" {
			v, err := strconv.ParseInt(m[5], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("line %d: bad B/op %q: %v", lineNo, m[5], err)
			}
			r.BytesPerOp = &v
		}
		if m[6] != "" {
			v, err := strconv.ParseInt(m[6], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("line %d: bad allocs/op %q: %v", lineNo, m[6], err)
			}
			r.AllocsPerOp = &v
		}
		if _, dup := results[m[1]]; dup {
			return nil, fmt.Errorf("line %d: duplicate benchmark %q (concatenated runs? pass one run per invocation)", lineNo, m[1])
		}
		results[m[1]] = r
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(results) == 0 {
		return nil, fmt.Errorf("no benchmark result lines found in input")
	}
	return results, nil
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	var in io.Reader = os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		fatal(err)
		defer f.Close()
		in = f
	}

	results, err := parseBench(in)
	fatal(err)

	enc, err := json.MarshalIndent(results, "", "  ")
	fatal(err)
	enc = append(enc, '\n')
	if *out == "" {
		_, err = os.Stdout.Write(enc)
	} else {
		err = os.WriteFile(*out, enc, 0o644)
	}
	fatal(err)
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}
