// Command benchjson converts `go test -bench` text output into a JSON
// document keyed by benchmark name, for machine-readable CI artifacts:
//
//	go test -bench=. -benchtime=1x -run='^$' . | tee bench.txt
//	benchjson -o BENCH_ci.json bench.txt
//
// Input comes from the file argument or stdin. Lines that are not
// benchmark results (pass/fail banners, goos/goarch headers) are
// ignored, so the raw `go test` stream can be piped in unfiltered — but
// a line that starts a benchmark result and then fails to parse is an
// error, not a skip: a truncated or corrupted bench.txt must fail the
// pipeline loudly instead of publishing an empty or partial artifact.
//
// Comparison mode diffs two previously-written artifacts:
//
//	benchjson -old BENCH_main.json -new BENCH_pr.json -tol 0.10
//
// It prints per-benchmark ns/op, allocs/op, and custom-metric deltas
// and exits 1 when any benchmark regresses beyond its fractional
// tolerance (default +10%; -tol-allocs and -tol-extra override the
// allocs/op and b.ReportMetric tolerances separately). Benchmarks
// present on only one side are reported but are not regressions —
// renames must not mask or fabricate a slowdown.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"text/tabwriter"
)

// Result is one benchmark line's parsed metrics. Iterations and ns/op
// are always present; B/op and allocs/op only when the benchmark
// reports allocations. Extra holds custom b.ReportMetric values keyed
// by unit (e.g. "retained-B/op") — gated in comparison mode under
// -tol-extra when both artifacts report the unit.
type Result struct {
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  *int64             `json:"bytes_per_op,omitempty"`
	AllocsPerOp *int64             `json:"allocs_per_op,omitempty"`
	MBPerSec    *float64           `json:"mb_per_sec,omitempty"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

// procsSuffix is the -GOMAXPROCS tail the testing package appends to
// benchmark names. It is stripped before keying so a baseline recorded
// on one machine compares against a run on another with a different
// core count (BenchmarkFoo-4 and BenchmarkFoo-16 are the same bench).
var procsSuffix = regexp.MustCompile(`-\d+$`)

// benchStart recognizes a line that claims to be a benchmark result:
// the testing package always prints "Benchmark<Name>[-procs]<TAB>". Such
// lines must parse fully or the input is corrupt.
var benchStart = regexp.MustCompile(`^Benchmark\w+(?:-\d+)?\s`)

// parseBench reads a `go test -bench` stream and returns results keyed
// by benchmark name. It is strict where it matters: malformed metric
// fields on a benchmark line and inputs with no benchmark lines at all
// are errors. A name that appears more than once (go test -count=N)
// keeps the sample with the lowest ns/op — the least
// scheduler-disturbed run — so gating on a best-of-N is the default
// rather than a flag. Deterministic metrics (allocs/op) are identical
// across counts, so min-selection cannot mask an allocation regression.
func parseBench(in io.Reader) (map[string]Result, error) {
	results := make(map[string]Result)
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if !benchStart.MatchString(line) {
			continue
		}
		name, r, err := parseBenchFields(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %v: %q", lineNo, err, strings.TrimSpace(line))
		}
		if prev, dup := results[name]; dup && prev.NsPerOp <= r.NsPerOp {
			continue
		}
		results[name] = r
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(results) == 0 {
		return nil, fmt.Errorf("no benchmark result lines found in input")
	}
	return results, nil
}

// parseBenchFields parses one benchmark result line as whitespace-split
// fields: the name, the iteration count, then (value, unit) pairs in
// whatever order the testing package emits them. Standard units fill
// the typed Result fields; custom b.ReportMetric units land in Extra,
// so benchmarks can publish metrics like "retained-B/op" without
// breaking the standard ones that follow on the line.
func parseBenchFields(line string) (string, Result, error) {
	fields := strings.Fields(line)
	if len(fields) < 4 || (len(fields)-2)%2 != 0 {
		return "", Result{}, fmt.Errorf("malformed benchmark result")
	}
	name := procsSuffix.ReplaceAllString(fields[0], "")
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		if _, ferr := strconv.ParseFloat(fields[1], 64); ferr != nil {
			return "", Result{}, fmt.Errorf("malformed benchmark result (bad iteration count %q)", fields[1])
		}
		return "", Result{}, fmt.Errorf("bad iteration count %q", fields[1])
	}
	r := Result{Iterations: iters}
	sawNs := false
	for i := 2; i < len(fields); i += 2 {
		val, unit := fields[i], fields[i+1]
		switch unit {
		case "ns/op":
			v, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return "", Result{}, fmt.Errorf("bad ns/op %q", val)
			}
			r.NsPerOp, sawNs = v, true
		case "MB/s":
			v, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return "", Result{}, fmt.Errorf("bad MB/s %q", val)
			}
			r.MBPerSec = &v
		case "B/op":
			v, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return "", Result{}, fmt.Errorf("bad B/op %q", val)
			}
			r.BytesPerOp = &v
		case "allocs/op":
			v, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return "", Result{}, fmt.Errorf("bad allocs/op %q", val)
			}
			r.AllocsPerOp = &v
		default:
			v, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return "", Result{}, fmt.Errorf("malformed benchmark result (bad metric %q %q)", val, unit)
			}
			if r.Extra == nil {
				r.Extra = make(map[string]float64)
			}
			r.Extra[unit] = v
		}
	}
	if !sawNs {
		return "", Result{}, fmt.Errorf("malformed benchmark result (no ns/op)")
	}
	return name, r, nil
}

// Delta is one benchmark's old→new comparison. Changes are fractional:
// +0.05 is five percent slower (or more allocations). AllocsChange is
// nil when either side did not report allocations. Extra compares
// custom b.ReportMetric units present on both sides, unit-sorted.
type Delta struct {
	Name         string
	OldNs, NewNs float64
	NsChange     float64
	OldAllocs    *int64
	NewAllocs    *int64
	AllocsChange *float64
	Extra        []ExtraDelta
	Regressed    bool
}

// ExtraDelta is one custom metric's old→new comparison. A unit present
// on only one side is not compared: a benchmark that starts or stops
// reporting a metric is a code change, not a regression.
type ExtraDelta struct {
	Unit      string
	Old, New  float64
	Change    float64
	Regressed bool
}

// fracChange returns (new-old)/old, treating a zero baseline specially:
// zero→zero is no change, zero→anything is an infinite regression (a
// benchmark that did nothing now does something).
func fracChange(old, new float64) float64 {
	if old == 0 {
		if new == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return (new - old) / old
}

// compare diffs two artifacts benchmark-by-benchmark. Deltas come back
// sorted by name; added and removed list benchmarks present on only one
// side. regressed is true when any delta exceeds tolNs on ns/op,
// tolAllocs on allocs/op, or tolExtra on a custom metric reported by
// both sides. The tolerances are separate because the metrics have very
// different noise floors: ns/op varies with machine and load, allocs/op
// is deterministic for the same code, and custom metrics (e.g.
// retained-B/op) sit in between — deterministic counts but sensitive to
// runtime internals like map growth, so they get their own knob.
func compare(old, new map[string]Result, tolNs, tolAllocs, tolExtra float64) (deltas []Delta, added, removed []string, regressed bool) {
	names := make([]string, 0, len(old))
	for name := range old {
		if _, ok := new[name]; ok {
			names = append(names, name)
		} else {
			removed = append(removed, name)
		}
	}
	for name := range new {
		if _, ok := old[name]; !ok {
			added = append(added, name)
		}
	}
	sort.Strings(names)
	sort.Strings(added)
	sort.Strings(removed)

	for _, name := range names {
		o, n := old[name], new[name]
		d := Delta{
			Name:      name,
			OldNs:     o.NsPerOp,
			NewNs:     n.NsPerOp,
			NsChange:  fracChange(o.NsPerOp, n.NsPerOp),
			OldAllocs: o.AllocsPerOp,
			NewAllocs: n.AllocsPerOp,
		}
		if o.AllocsPerOp != nil && n.AllocsPerOp != nil {
			c := fracChange(float64(*o.AllocsPerOp), float64(*n.AllocsPerOp))
			d.AllocsChange = &c
		}
		units := make([]string, 0, len(o.Extra))
		for unit := range o.Extra {
			if _, ok := n.Extra[unit]; ok {
				units = append(units, unit)
			}
		}
		sort.Strings(units)
		for _, unit := range units {
			e := ExtraDelta{Unit: unit, Old: o.Extra[unit], New: n.Extra[unit]}
			e.Change = fracChange(e.Old, e.New)
			e.Regressed = e.Change > tolExtra
			d.Extra = append(d.Extra, e)
		}
		d.Regressed = d.NsChange > tolNs || (d.AllocsChange != nil && *d.AllocsChange > tolAllocs)
		for _, e := range d.Extra {
			if e.Regressed {
				d.Regressed = true
			}
		}
		if d.Regressed {
			regressed = true
		}
		deltas = append(deltas, d)
	}
	return deltas, added, removed, regressed
}

// readArtifact loads a JSON document previously written by benchjson.
func readArtifact(path string) (map[string]Result, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m map[string]Result
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	if len(m) == 0 {
		return nil, fmt.Errorf("%s: no benchmarks in artifact", path)
	}
	return m, nil
}

// renderDeltas prints the comparison table plus added/removed notes.
func renderDeltas(w io.Writer, deltas []Delta, added, removed []string) error {
	tw := tabwriter.NewWriter(w, 0, 0, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "benchmark\told ns/op\tnew ns/op\tdelta\tallocs delta\t")
	for _, d := range deltas {
		allocs := "n/a"
		if d.AllocsChange != nil {
			allocs = fmt.Sprintf("%+.1f%%", *d.AllocsChange*100)
		}
		mark := ""
		if d.Regressed {
			mark = "  REGRESSION"
		}
		fmt.Fprintf(tw, "%s\t%.1f\t%.1f\t%+.1f%%\t%s\t%s\n",
			d.Name, d.OldNs, d.NewNs, d.NsChange*100, allocs, mark)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	for _, d := range deltas {
		for _, e := range d.Extra {
			mark := ""
			if e.Regressed {
				mark = "  REGRESSION"
			}
			fmt.Fprintf(w, "extra: %s %s %.0f -> %.0f (%+.1f%%)%s\n",
				d.Name, e.Unit, e.Old, e.New, e.Change*100, mark)
		}
	}
	for _, name := range added {
		fmt.Fprintf(w, "added: %s (no baseline)\n", name)
	}
	for _, name := range removed {
		fmt.Fprintf(w, "removed: %s (was in baseline)\n", name)
	}
	return nil
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	oldFile := flag.String("old", "", "comparison mode: baseline benchjson artifact")
	newFile := flag.String("new", "", "comparison mode: candidate benchjson artifact")
	tol := flag.Float64("tol", 0.10, "comparison mode: fractional regression tolerance on ns/op")
	tolAllocs := flag.Float64("tol-allocs", -1, "comparison mode: fractional tolerance on allocs/op (default: same as -tol)")
	tolExtra := flag.Float64("tol-extra", -1, "comparison mode: fractional tolerance on custom metrics (default: same as -tol)")
	flag.Parse()

	if (*oldFile == "") != (*newFile == "") {
		fatal(fmt.Errorf("-old and -new must be given together"))
	}
	if *tolAllocs < 0 {
		*tolAllocs = *tol
	}
	if *tolExtra < 0 {
		*tolExtra = *tol
	}
	if *oldFile != "" {
		oldRes, err := readArtifact(*oldFile)
		fatal(err)
		newRes, err := readArtifact(*newFile)
		fatal(err)
		deltas, added, removed, regressed := compare(oldRes, newRes, *tol, *tolAllocs, *tolExtra)

		w := io.Writer(os.Stdout)
		if *out != "" {
			f, err := os.Create(*out)
			fatal(err)
			defer f.Close()
			w = f
		}
		fatal(renderDeltas(w, deltas, added, removed))
		fmt.Fprintf(os.Stderr, "benchjson: %d benchmarks compared, tolerance %+.1f%% ns/op, %+.1f%% allocs/op, %+.1f%% extra\n",
			len(deltas), *tol*100, *tolAllocs*100, *tolExtra*100)
		if regressed {
			fmt.Fprintln(os.Stderr, "benchjson: regression beyond tolerance")
			os.Exit(1)
		}
		return
	}

	var in io.Reader = os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		fatal(err)
		defer f.Close()
		in = f
	}

	results, err := parseBench(in)
	fatal(err)

	enc, err := json.MarshalIndent(results, "", "  ")
	fatal(err)
	enc = append(enc, '\n')
	if *out == "" {
		_, err = os.Stdout.Write(enc)
	} else {
		err = os.WriteFile(*out, enc, 0o644)
	}
	fatal(err)
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}
