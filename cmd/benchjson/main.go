// Command benchjson converts `go test -bench` text output into a JSON
// document keyed by benchmark name, for machine-readable CI artifacts:
//
//	go test -bench=. -benchtime=1x -run='^$' . | tee bench.txt
//	benchjson -o BENCH_ci.json bench.txt
//
// Input comes from the file argument or stdin. Lines that are not
// benchmark results (pass/fail banners, goos/goarch headers) are
// ignored, so the raw `go test` stream can be piped in unfiltered — but
// a line that starts a benchmark result and then fails to parse is an
// error, not a skip: a truncated or corrupted bench.txt must fail the
// pipeline loudly instead of publishing an empty or partial artifact.
//
// Comparison mode diffs two previously-written artifacts:
//
//	benchjson -old BENCH_main.json -new BENCH_pr.json -tol 0.10
//
// It prints per-benchmark ns/op and allocs/op deltas and exits 1 when
// any benchmark regresses beyond the fractional tolerance (default
// +10%). Benchmarks present on only one side are reported but are not
// regressions — renames must not mask or fabricate a slowdown.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"text/tabwriter"
)

// Result is one benchmark line's parsed metrics. Iterations and ns/op
// are always present; B/op and allocs/op only when the benchmark
// reports allocations.
type Result struct {
	Iterations  int64    `json:"iterations"`
	NsPerOp     float64  `json:"ns_per_op"`
	BytesPerOp  *int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp *int64   `json:"allocs_per_op,omitempty"`
	MBPerSec    *float64 `json:"mb_per_sec,omitempty"`
}

// benchLine matches the standard testing package result format:
//
//	BenchmarkName-8  	  124	   9612340 ns/op	  513678 B/op	    1290 allocs/op
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+)\s+(\d+)\s+([\d.]+) ns/op(?:\s+([\d.]+) MB/s)?(?:\s+(\d+) B/op)?(?:\s+(\d+) allocs/op)?`)

// benchStart recognizes a line that claims to be a benchmark result:
// the testing package always prints "Benchmark<Name>[-procs]<TAB>". Such
// lines must parse fully or the input is corrupt.
var benchStart = regexp.MustCompile(`^Benchmark\w+(?:-\d+)?\s`)

// parseBench reads a `go test -bench` stream and returns results keyed
// by benchmark name. It is strict where it matters: malformed metric
// fields on a benchmark line, duplicate benchmark names, and inputs with
// no benchmark lines at all are errors.
func parseBench(in io.Reader) (map[string]Result, error) {
	results := make(map[string]Result)
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			if benchStart.MatchString(line) {
				return nil, fmt.Errorf("line %d: malformed benchmark result %q", lineNo, strings.TrimSpace(line))
			}
			continue
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("line %d: bad iteration count %q: %v", lineNo, m[2], err)
		}
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			return nil, fmt.Errorf("line %d: bad ns/op %q: %v", lineNo, m[3], err)
		}
		r := Result{Iterations: iters, NsPerOp: ns}
		if m[4] != "" {
			v, err := strconv.ParseFloat(m[4], 64)
			if err != nil {
				return nil, fmt.Errorf("line %d: bad MB/s %q: %v", lineNo, m[4], err)
			}
			r.MBPerSec = &v
		}
		if m[5] != "" {
			v, err := strconv.ParseInt(m[5], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("line %d: bad B/op %q: %v", lineNo, m[5], err)
			}
			r.BytesPerOp = &v
		}
		if m[6] != "" {
			v, err := strconv.ParseInt(m[6], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("line %d: bad allocs/op %q: %v", lineNo, m[6], err)
			}
			r.AllocsPerOp = &v
		}
		if _, dup := results[m[1]]; dup {
			return nil, fmt.Errorf("line %d: duplicate benchmark %q (concatenated runs? pass one run per invocation)", lineNo, m[1])
		}
		results[m[1]] = r
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(results) == 0 {
		return nil, fmt.Errorf("no benchmark result lines found in input")
	}
	return results, nil
}

// Delta is one benchmark's old→new comparison. Changes are fractional:
// +0.05 is five percent slower (or more allocations). AllocsChange is
// nil when either side did not report allocations.
type Delta struct {
	Name         string
	OldNs, NewNs float64
	NsChange     float64
	OldAllocs    *int64
	NewAllocs    *int64
	AllocsChange *float64
	Regressed    bool
}

// fracChange returns (new-old)/old, treating a zero baseline specially:
// zero→zero is no change, zero→anything is an infinite regression (a
// benchmark that did nothing now does something).
func fracChange(old, new float64) float64 {
	if old == 0 {
		if new == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return (new - old) / old
}

// compare diffs two artifacts benchmark-by-benchmark. Deltas come back
// sorted by name; added and removed list benchmarks present on only one
// side. regressed is true when any delta exceeds tol on ns/op or
// allocs/op.
func compare(old, new map[string]Result, tol float64) (deltas []Delta, added, removed []string, regressed bool) {
	names := make([]string, 0, len(old))
	for name := range old {
		if _, ok := new[name]; ok {
			names = append(names, name)
		} else {
			removed = append(removed, name)
		}
	}
	for name := range new {
		if _, ok := old[name]; !ok {
			added = append(added, name)
		}
	}
	sort.Strings(names)
	sort.Strings(added)
	sort.Strings(removed)

	for _, name := range names {
		o, n := old[name], new[name]
		d := Delta{
			Name:      name,
			OldNs:     o.NsPerOp,
			NewNs:     n.NsPerOp,
			NsChange:  fracChange(o.NsPerOp, n.NsPerOp),
			OldAllocs: o.AllocsPerOp,
			NewAllocs: n.AllocsPerOp,
		}
		if o.AllocsPerOp != nil && n.AllocsPerOp != nil {
			c := fracChange(float64(*o.AllocsPerOp), float64(*n.AllocsPerOp))
			d.AllocsChange = &c
		}
		d.Regressed = d.NsChange > tol || (d.AllocsChange != nil && *d.AllocsChange > tol)
		if d.Regressed {
			regressed = true
		}
		deltas = append(deltas, d)
	}
	return deltas, added, removed, regressed
}

// readArtifact loads a JSON document previously written by benchjson.
func readArtifact(path string) (map[string]Result, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m map[string]Result
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	if len(m) == 0 {
		return nil, fmt.Errorf("%s: no benchmarks in artifact", path)
	}
	return m, nil
}

// renderDeltas prints the comparison table plus added/removed notes.
func renderDeltas(w io.Writer, deltas []Delta, added, removed []string) error {
	tw := tabwriter.NewWriter(w, 0, 0, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "benchmark\told ns/op\tnew ns/op\tdelta\tallocs delta\t")
	for _, d := range deltas {
		allocs := "n/a"
		if d.AllocsChange != nil {
			allocs = fmt.Sprintf("%+.1f%%", *d.AllocsChange*100)
		}
		mark := ""
		if d.Regressed {
			mark = "  REGRESSION"
		}
		fmt.Fprintf(tw, "%s\t%.1f\t%.1f\t%+.1f%%\t%s\t%s\n",
			d.Name, d.OldNs, d.NewNs, d.NsChange*100, allocs, mark)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	for _, name := range added {
		fmt.Fprintf(w, "added: %s (no baseline)\n", name)
	}
	for _, name := range removed {
		fmt.Fprintf(w, "removed: %s (was in baseline)\n", name)
	}
	return nil
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	oldFile := flag.String("old", "", "comparison mode: baseline benchjson artifact")
	newFile := flag.String("new", "", "comparison mode: candidate benchjson artifact")
	tol := flag.Float64("tol", 0.10, "comparison mode: fractional regression tolerance on ns/op and allocs/op")
	flag.Parse()

	if (*oldFile == "") != (*newFile == "") {
		fatal(fmt.Errorf("-old and -new must be given together"))
	}
	if *oldFile != "" {
		oldRes, err := readArtifact(*oldFile)
		fatal(err)
		newRes, err := readArtifact(*newFile)
		fatal(err)
		deltas, added, removed, regressed := compare(oldRes, newRes, *tol)

		w := io.Writer(os.Stdout)
		if *out != "" {
			f, err := os.Create(*out)
			fatal(err)
			defer f.Close()
			w = f
		}
		fatal(renderDeltas(w, deltas, added, removed))
		fmt.Fprintf(os.Stderr, "benchjson: %d benchmarks compared, tolerance %+.1f%%\n",
			len(deltas), *tol*100)
		if regressed {
			fmt.Fprintln(os.Stderr, "benchjson: regression beyond tolerance")
			os.Exit(1)
		}
		return
	}

	var in io.Reader = os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		fatal(err)
		defer f.Close()
		in = f
	}

	results, err := parseBench(in)
	fatal(err)

	enc, err := json.MarshalIndent(results, "", "  ")
	fatal(err)
	enc = append(enc, '\n')
	if *out == "" {
		_, err = os.Stdout.Write(enc)
	} else {
		err = os.WriteFile(*out, enc, 0o644)
	}
	fatal(err)
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}
