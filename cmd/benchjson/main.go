// Command benchjson converts `go test -bench` text output into a JSON
// document keyed by benchmark name, for machine-readable CI artifacts:
//
//	go test -bench=. -benchtime=1x -run='^$' . | tee bench.txt
//	benchjson -o BENCH_ci.json bench.txt
//
// Input comes from the file argument or stdin. Lines that are not
// benchmark results (pass/fail banners, goos/goarch headers) are
// ignored, so the raw `go test` stream can be piped in unfiltered.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
)

// Result is one benchmark line's parsed metrics. Iterations and ns/op
// are always present; B/op and allocs/op only when the benchmark
// reports allocations.
type Result struct {
	Iterations  int64    `json:"iterations"`
	NsPerOp     float64  `json:"ns_per_op"`
	BytesPerOp  *int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp *int64   `json:"allocs_per_op,omitempty"`
	MBPerSec    *float64 `json:"mb_per_sec,omitempty"`
}

// benchLine matches the standard testing package result format:
//
//	BenchmarkName-8  	  124	   9612340 ns/op	  513678 B/op	    1290 allocs/op
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+)\s+(\d+)\s+([\d.]+) ns/op(?:\s+([\d.]+) MB/s)?(?:\s+(\d+) B/op)?(?:\s+(\d+) allocs/op)?`)

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	var in io.Reader = os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		fatal(err)
		defer f.Close()
		in = f
	}

	results := make(map[string]Result)
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		iters, _ := strconv.ParseInt(m[2], 10, 64)
		ns, _ := strconv.ParseFloat(m[3], 64)
		r := Result{Iterations: iters, NsPerOp: ns}
		if m[4] != "" {
			v, _ := strconv.ParseFloat(m[4], 64)
			r.MBPerSec = &v
		}
		if m[5] != "" {
			v, _ := strconv.ParseInt(m[5], 10, 64)
			r.BytesPerOp = &v
		}
		if m[6] != "" {
			v, _ := strconv.ParseInt(m[6], 10, 64)
			r.AllocsPerOp = &v
		}
		results[m[1]] = r
	}
	fatal(sc.Err())
	if len(results) == 0 {
		fatal(fmt.Errorf("no benchmark result lines found in input"))
	}

	enc, err := json.MarshalIndent(results, "", "  ")
	fatal(err)
	enc = append(enc, '\n')
	if *out == "" {
		_, err = os.Stdout.Write(enc)
	} else {
		err = os.WriteFile(*out, enc, 0o644)
	}
	fatal(err)
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}
