package main

import (
	"strings"
	"testing"
)

const goodInput = `goos: linux
goarch: amd64
pkg: repro
BenchmarkColdLoad-8   	     124	   9612340 ns/op	  513678 B/op	    1290 allocs/op
BenchmarkWarmLoad-8   	     250	   4806170 ns/op
BenchmarkThroughput-8 	     100	   1000000 ns/op	 512.00 MB/s
PASS
ok  	repro	2.301s
`

func TestParseBench(t *testing.T) {
	res, err := parseBench(strings.NewReader(goodInput))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(res) != 3 {
		t.Fatalf("got %d results, want 3: %v", len(res), res)
	}
	cold := res["BenchmarkColdLoad-8"]
	if cold.Iterations != 124 || cold.NsPerOp != 9612340 {
		t.Errorf("cold = %+v", cold)
	}
	if cold.BytesPerOp == nil || *cold.BytesPerOp != 513678 {
		t.Errorf("cold B/op = %v", cold.BytesPerOp)
	}
	if cold.AllocsPerOp == nil || *cold.AllocsPerOp != 1290 {
		t.Errorf("cold allocs/op = %v", cold.AllocsPerOp)
	}
	warm := res["BenchmarkWarmLoad-8"]
	if warm.BytesPerOp != nil || warm.AllocsPerOp != nil {
		t.Errorf("warm must not carry alloc metrics: %+v", warm)
	}
	tp := res["BenchmarkThroughput-8"]
	if tp.MBPerSec == nil || *tp.MBPerSec != 512 {
		t.Errorf("throughput MB/s = %v", tp.MBPerSec)
	}
}

func TestParseBenchErrors(t *testing.T) {
	cases := []struct {
		name, input, wantErr string
	}{
		{"empty", "", "no benchmark result lines"},
		{"banners only", "goos: linux\nPASS\nok  \trepro\t1.0s\n", "no benchmark result lines"},
		{"truncated line", "BenchmarkColdLoad-8   \t     124\n", "malformed benchmark result"},
		{"garbage metrics", "BenchmarkColdLoad-8 \tfast\tvery ns/op\n", "malformed benchmark result"},
		{"duplicate", "BenchmarkA-8 \t 1\t 5.0 ns/op\nBenchmarkA-8 \t 1\t 5.0 ns/op\n", "duplicate benchmark"},
		{"overflow iterations", "BenchmarkA-8 \t 99999999999999999999\t 5.0 ns/op\n", "bad iteration count"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := parseBench(strings.NewReader(tc.input))
			if err == nil {
				t.Fatalf("parse accepted malformed input %q", tc.input)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

// TestParseBenchIgnoresProse ensures non-benchmark lines — including
// b.Log output that happens to mention benchmarks mid-line — never
// trigger the strict path.
func TestParseBenchIgnoresProse(t *testing.T) {
	input := "some log: Benchmark results below\nBenchmarkA-8 \t 2\t 7.5 ns/op\n"
	res, err := parseBench(strings.NewReader(input))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if r := res["BenchmarkA-8"]; r.Iterations != 2 || r.NsPerOp != 7.5 {
		t.Errorf("got %+v", r)
	}
}
