package main

import (
	"math"
	"sort"
	"strings"
	"testing"
)

const goodInput = `goos: linux
goarch: amd64
pkg: repro
BenchmarkColdLoad-8   	     124	   9612340 ns/op	  513678 B/op	    1290 allocs/op
BenchmarkWarmLoad-8   	     250	   4806170 ns/op
BenchmarkThroughput-8 	     100	   1000000 ns/op	 512.00 MB/s
PASS
ok  	repro	2.301s
`

func TestParseBench(t *testing.T) {
	res, err := parseBench(strings.NewReader(goodInput))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(res) != 3 {
		t.Fatalf("got %d results, want 3: %v", len(res), res)
	}
	cold := res["BenchmarkColdLoad"]
	if cold.Iterations != 124 || cold.NsPerOp != 9612340 {
		t.Errorf("cold = %+v", cold)
	}
	if cold.BytesPerOp == nil || *cold.BytesPerOp != 513678 {
		t.Errorf("cold B/op = %v", cold.BytesPerOp)
	}
	if cold.AllocsPerOp == nil || *cold.AllocsPerOp != 1290 {
		t.Errorf("cold allocs/op = %v", cold.AllocsPerOp)
	}
	warm := res["BenchmarkWarmLoad"]
	if warm.BytesPerOp != nil || warm.AllocsPerOp != nil {
		t.Errorf("warm must not carry alloc metrics: %+v", warm)
	}
	tp := res["BenchmarkThroughput"]
	if tp.MBPerSec == nil || *tp.MBPerSec != 512 {
		t.Errorf("throughput MB/s = %v", tp.MBPerSec)
	}
}

func TestParseBenchErrors(t *testing.T) {
	cases := []struct {
		name, input, wantErr string
	}{
		{"empty", "", "no benchmark result lines"},
		{"banners only", "goos: linux\nPASS\nok  \trepro\t1.0s\n", "no benchmark result lines"},
		{"truncated line", "BenchmarkColdLoad-8   \t     124\n", "malformed benchmark result"},
		{"garbage metrics", "BenchmarkColdLoad-8 \tfast\tvery ns/op\n", "malformed benchmark result"},
		{"overflow iterations", "BenchmarkA-8 \t 99999999999999999999\t 5.0 ns/op\n", "bad iteration count"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := parseBench(strings.NewReader(tc.input))
			if err == nil {
				t.Fatalf("parse accepted malformed input %q", tc.input)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

func i64(v int64) *int64 { return &v }

// TestFracChange pins the delta math, including the zero-baseline edge
// cases (zero→zero is flat, zero→positive is an infinite regression).
func TestFracChange(t *testing.T) {
	cases := []struct {
		old, new, want float64
	}{
		{100, 110, 0.10},
		{100, 90, -0.10},
		{100, 100, 0},
		{0, 0, 0},
		{0, 5, math.Inf(1)},
	}
	for _, tc := range cases {
		got := fracChange(tc.old, tc.new)
		if math.Abs(got-tc.want) > 1e-12 && !(math.IsInf(got, 1) && math.IsInf(tc.want, 1)) {
			t.Errorf("fracChange(%v, %v) = %v, want %v", tc.old, tc.new, got, tc.want)
		}
	}
}

// TestCompare covers the comparison semantics: ns/op regression beyond
// tolerance fails, within tolerance passes, an allocs/op jump fails even
// when ns/op improves, and one-sided benchmarks are reported as
// added/removed rather than regressions.
func TestCompare(t *testing.T) {
	old := map[string]Result{
		"BenchmarkSlow-8":    {Iterations: 10, NsPerOp: 100},
		"BenchmarkOK-8":      {Iterations: 10, NsPerOp: 100},
		"BenchmarkAllocs-8":  {Iterations: 10, NsPerOp: 100, AllocsPerOp: i64(10)},
		"BenchmarkRemoved-8": {Iterations: 10, NsPerOp: 100},
	}
	new := map[string]Result{
		"BenchmarkSlow-8":   {Iterations: 10, NsPerOp: 125},                      // +25% ns/op: regression
		"BenchmarkOK-8":     {Iterations: 10, NsPerOp: 105},                      // +5%: within tolerance
		"BenchmarkAllocs-8": {Iterations: 10, NsPerOp: 90, AllocsPerOp: i64(20)}, // faster but 2× allocs
		"BenchmarkAdded-8":  {Iterations: 10, NsPerOp: 50},
	}
	deltas, added, removed, regressed := compare(old, new, 0.10, 0.10, 0.10)
	if !regressed {
		t.Fatal("expected a regression")
	}
	if len(deltas) != 3 {
		t.Fatalf("deltas = %d, want 3 (%+v)", len(deltas), deltas)
	}
	byName := map[string]Delta{}
	for _, d := range deltas {
		byName[d.Name] = d
	}
	if d := byName["BenchmarkSlow-8"]; !d.Regressed || math.Abs(d.NsChange-0.25) > 1e-12 {
		t.Errorf("Slow = %+v", d)
	}
	if d := byName["BenchmarkOK-8"]; d.Regressed {
		t.Errorf("OK must be within tolerance: %+v", d)
	}
	if d := byName["BenchmarkAllocs-8"]; !d.Regressed || d.AllocsChange == nil || math.Abs(*d.AllocsChange-1.0) > 1e-12 {
		t.Errorf("Allocs = %+v", d)
	}
	if len(added) != 1 || added[0] != "BenchmarkAdded-8" {
		t.Errorf("added = %v", added)
	}
	if len(removed) != 1 || removed[0] != "BenchmarkRemoved-8" {
		t.Errorf("removed = %v", removed)
	}
	// Deltas are name-sorted for deterministic artifacts.
	if !sort.SliceIsSorted(deltas, func(i, j int) bool { return deltas[i].Name < deltas[j].Name }) {
		t.Errorf("deltas not sorted: %+v", deltas)
	}
}

// TestCompareCleanPass asserts the no-regression path reports nothing.
func TestCompareCleanPass(t *testing.T) {
	res := map[string]Result{"BenchmarkA-8": {Iterations: 1, NsPerOp: 100, AllocsPerOp: i64(5)}}
	deltas, added, removed, regressed := compare(res, res, 0.10, 0.10, 0.10)
	if regressed || len(added) != 0 || len(removed) != 0 {
		t.Fatalf("self-comparison must be clean: %+v %v %v", deltas, added, removed)
	}
	if d := deltas[0]; d.NsChange != 0 || *d.AllocsChange != 0 {
		t.Errorf("self-delta nonzero: %+v", d)
	}
}

// TestParseBenchNormalizesProcsSuffix: a baseline written on one
// machine must compare against a run on another with a different
// GOMAXPROCS — the -N name suffix is stripped at parse time.
func TestParseBenchNormalizesProcsSuffix(t *testing.T) {
	res, err := parseBench(strings.NewReader("BenchmarkA-16 \t 2\t 7.5 ns/op\nBenchmarkB \t 1\t 3.0 ns/op\n"))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if _, ok := res["BenchmarkA"]; !ok {
		t.Errorf("BenchmarkA-16 not normalized: %v", res)
	}
	if _, ok := res["BenchmarkB"]; !ok {
		t.Errorf("suffix-free BenchmarkB lost: %v", res)
	}
}

// TestParseBenchBestOfN: `go test -count=N` repeats each benchmark; the
// parser must keep the lowest-ns/op sample per name (the least
// scheduler-disturbed run), regardless of which count order the samples
// arrive in, including across differing -procs suffixes.
func TestParseBenchBestOfN(t *testing.T) {
	input := "BenchmarkA-8 \t 1\t 9.0 ns/op\t 12 allocs/op\n" +
		"BenchmarkA-8 \t 1\t 5.0 ns/op\t 12 allocs/op\n" +
		"BenchmarkA-8 \t 1\t 7.0 ns/op\t 12 allocs/op\n" +
		"BenchmarkB-8 \t 1\t 4.0 ns/op\n" +
		"BenchmarkB-16 \t 1\t 6.0 ns/op\n"
	res, err := parseBench(strings.NewReader(input))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(res) != 2 {
		t.Fatalf("got %d results, want 2: %v", len(res), res)
	}
	a := res["BenchmarkA"]
	if a.NsPerOp != 5.0 {
		t.Errorf("best-of-3 ns/op = %v, want 5.0", a.NsPerOp)
	}
	if a.AllocsPerOp == nil || *a.AllocsPerOp != 12 {
		t.Errorf("allocs/op = %v, want 12", a.AllocsPerOp)
	}
	if b := res["BenchmarkB"]; b.NsPerOp != 4.0 {
		t.Errorf("min across normalized proc suffixes = %v, want 4.0", b.NsPerOp)
	}
}

// TestParseBenchCustomMetrics: b.ReportMetric units appear between
// ns/op and the -benchmem columns; they must land in Extra without
// corrupting B/op or allocs/op parsing.
func TestParseBenchCustomMetrics(t *testing.T) {
	input := "BenchmarkStream-4 \t 1\t 123456 ns/op\t 98304 retained-B/op\t 513678 B/op\t 1290 allocs/op\n"
	res, err := parseBench(strings.NewReader(input))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	r := res["BenchmarkStream"]
	if r.NsPerOp != 123456 {
		t.Errorf("ns/op = %v", r.NsPerOp)
	}
	if r.BytesPerOp == nil || *r.BytesPerOp != 513678 {
		t.Errorf("B/op = %v", r.BytesPerOp)
	}
	if r.AllocsPerOp == nil || *r.AllocsPerOp != 1290 {
		t.Errorf("allocs/op = %v", r.AllocsPerOp)
	}
	if r.Extra["retained-B/op"] != 98304 {
		t.Errorf("extra = %v", r.Extra)
	}
}

// TestCompareSplitTolerance: allocs/op is deterministic for the same
// code, so the gate can hold it much tighter than the noisy ns/op.
func TestCompareSplitTolerance(t *testing.T) {
	old := map[string]Result{"BenchmarkA": {Iterations: 1, NsPerOp: 100, AllocsPerOp: i64(100)}}
	new := map[string]Result{"BenchmarkA": {Iterations: 1, NsPerOp: 118, AllocsPerOp: i64(108)}}
	// +18% ns within the generous 25%; +8% allocs breaches the tight 5%.
	if _, _, _, regressed := compare(old, new, 0.25, 0.05, 0.10); !regressed {
		t.Error("8% allocs growth must fail a 5% allocs tolerance")
	}
	// Both within their own tolerances passes, even though allocs growth
	// would breach the ns tolerance if they shared one.
	new["BenchmarkA"] = Result{Iterations: 1, NsPerOp: 118, AllocsPerOp: i64(103)}
	if _, _, _, regressed := compare(old, new, 0.25, 0.05, 0.10); regressed {
		t.Error("deltas within split tolerances must pass")
	}
}

// TestCompareExtraMetrics: custom b.ReportMetric units present in both
// artifacts are gated under their own tolerance; one-sided units are
// ignored rather than treated as regressions.
func TestCompareExtraMetrics(t *testing.T) {
	old := map[string]Result{"BenchmarkA": {
		Iterations: 1, NsPerOp: 100,
		Extra: map[string]float64{"retained-B/op": 1000, "old-only/op": 7},
	}}
	grew := map[string]Result{"BenchmarkA": {
		Iterations: 1, NsPerOp: 100,
		Extra: map[string]float64{"retained-B/op": 1300, "new-only/op": 9},
	}}
	deltas, _, _, regressed := compare(old, grew, 0.10, 0.10, 0.20)
	if !regressed {
		t.Fatal("+30% retained-B/op must breach a 20% extra tolerance")
	}
	d := deltas[0]
	if len(d.Extra) != 1 || d.Extra[0].Unit != "retained-B/op" {
		t.Fatalf("extras must cover shared units only, got %+v", d.Extra)
	}
	if e := d.Extra[0]; !e.Regressed || math.Abs(e.Change-0.30) > 1e-12 {
		t.Errorf("retained delta = %+v", e)
	}
	// Within tolerance — and a shrink — passes.
	grew["BenchmarkA"] = Result{
		Iterations: 1, NsPerOp: 100,
		Extra: map[string]float64{"retained-B/op": 900},
	}
	if _, _, _, regressed := compare(old, grew, 0.10, 0.10, 0.20); regressed {
		t.Error("-10% retained-B/op must pass")
	}
}

// TestParseBenchIgnoresProse ensures non-benchmark lines — including
// b.Log output that happens to mention benchmarks mid-line — never
// trigger the strict path.
func TestParseBenchIgnoresProse(t *testing.T) {
	input := "some log: Benchmark results below\nBenchmarkA-8 \t 2\t 7.5 ns/op\n"
	res, err := parseBench(strings.NewReader(input))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if r := res["BenchmarkA"]; r.Iterations != 2 || r.NsPerOp != 7.5 {
		t.Errorf("got %+v", r)
	}
}
