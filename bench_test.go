package repro

// Benchmarks: one per paper table/figure, each driving the experiment
// runner that regenerates it, plus micro-benchmarks of the expensive
// pipeline stages (page generation, page load, list build).
//
// The figure benchmarks share one reduced-scale corpus (120 sites,
// 10 URLs each, 3 fetches per landing page); the first benchmark that
// needs the study pays for it outside its timing loop. Run
// cmd/papereval for full-scale (1000-site) numbers.

import (
	"sync"
	"testing"
	"time"

	"repro/internal/browser"
	"repro/internal/cdn"
	"repro/internal/dnssim"
	"repro/internal/experiments"
	"repro/internal/hispar"
	"repro/internal/search"
	"repro/internal/toplist"
	"repro/internal/webgen"
)

var (
	benchOnce sync.Once
	benchCtx  *experiments.Context
)

func sharedCtx(b *testing.B) *experiments.Context {
	b.Helper()
	benchOnce.Do(func() {
		benchCtx = experiments.NewContext(experiments.Config{
			Seed:              42,
			Sites:             120,
			PerSite:           10,
			LandingFetches:    3,
			CrawlPages:        600,
			CrawlSample:       120,
			StabilityUniverse: 30000,
			StabilityWeeks:    3,
			H2KSites:          150,
			H2KPerSite:        20,
			DNSProbeTop:       2000,
		})
	})
	return benchCtx
}

func benchExperiment(b *testing.B, id string) {
	if testing.Short() {
		// The shared corpus takes minutes to warm under -race; keep
		// `go test -race -short -bench=.` usable as a quick gate.
		b.Skip("skipping experiment benchmark in short mode")
	}
	ctx := sharedCtx(b)
	exp, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	// Warm the shared corpus (study, lists) outside the timing loop.
	if _, err := exp.Run(ctx); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exp.Run(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

// --- One benchmark per table/figure (§2–§7) ---

func BenchmarkTable1(b *testing.B)     { benchExperiment(b, "table1") }
func BenchmarkFig2a(b *testing.B)      { benchExperiment(b, "fig2a") }
func BenchmarkFig2b(b *testing.B)      { benchExperiment(b, "fig2b") }
func BenchmarkFig2c(b *testing.B)      { benchExperiment(b, "fig2c") }
func BenchmarkFig3a(b *testing.B)      { benchExperiment(b, "fig3a") }
func BenchmarkFig3bc(b *testing.B)     { benchExperiment(b, "fig3bc") }
func BenchmarkFig4a(b *testing.B)      { benchExperiment(b, "fig4a") }
func BenchmarkWarmCache(b *testing.B)  { benchExperiment(b, "warm") }
func BenchmarkFig4b(b *testing.B)      { benchExperiment(b, "fig4b") }
func BenchmarkFig4c(b *testing.B)      { benchExperiment(b, "fig4c") }
func BenchmarkFig5(b *testing.B)       { benchExperiment(b, "fig5") }
func BenchmarkDNSHitRate(b *testing.B) { benchExperiment(b, "dns") }
func BenchmarkFig6a(b *testing.B)      { benchExperiment(b, "fig6a") }
func BenchmarkFig6b(b *testing.B)      { benchExperiment(b, "fig6b") }
func BenchmarkFig6c(b *testing.B)      { benchExperiment(b, "fig6c") }
func BenchmarkFig7(b *testing.B)       { benchExperiment(b, "fig7") }
func BenchmarkFig8a(b *testing.B)      { benchExperiment(b, "fig8a") }
func BenchmarkFig8b(b *testing.B)      { benchExperiment(b, "fig8b") }
func BenchmarkFig8c(b *testing.B)      { benchExperiment(b, "fig8c") }
func BenchmarkFig9(b *testing.B)       { benchExperiment(b, "fig9") }
func BenchmarkFig10ab(b *testing.B)    { benchExperiment(b, "fig10ab") }
func BenchmarkFig10c(b *testing.B)     { benchExperiment(b, "fig10c") }
func BenchmarkStability(b *testing.B)  { benchExperiment(b, "stability") }
func BenchmarkListCost(b *testing.B)   { benchExperiment(b, "cost") }

// BenchmarkAblation drives the what-if evaluation of the paper's §5
// implications (every optimization scenario over both page types).
func BenchmarkAblation(b *testing.B) { benchExperiment(b, "ablation") }

// BenchmarkSelection drives the §7 page-selection strategy comparison.
func BenchmarkSelection(b *testing.B) { benchExperiment(b, "selection") }

// BenchmarkLearning drives the §7 learned-model transfer-gap experiment.
func BenchmarkLearning(b *testing.B) { benchExperiment(b, "learning") }

// --- Pipeline micro-benchmarks ---

func benchWeb(b *testing.B, n int) *webgen.Web {
	b.Helper()
	u := toplist.NewUniverse(toplist.Config{Seed: 7, Size: 2000})
	entries := u.Top(n)
	seeds := make([]webgen.SiteSeed, len(entries))
	for i, e := range entries {
		seeds[i] = webgen.SiteSeed{Domain: e.Domain, Rank: e.Rank}
	}
	return webgen.Generate(webgen.Config{Seed: 7, Sites: seeds})
}

// BenchmarkPageBuild measures synthetic page-model generation.
func BenchmarkPageBuild(b *testing.B) {
	web := benchWeb(b, 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		site := web.Sites[i%len(web.Sites)]
		_ = site.PageAt(1 + i%20).Build()
	}
}

// BenchmarkPageLoad measures one full simulated cold-cache page load
// (DNS, handshakes, dependency-ordered fetches, HAR assembly).
func BenchmarkPageLoad(b *testing.B) {
	web := benchWeb(b, 16)
	resolver := dnssim.NewResolver(dnssim.ResolverConfig{
		Name: "isp", Seed: 7, WarmQueryRate: 0.8,
	}, web.Authority(), nil)
	warm := cdn.PopularityWarmth(2.2, 0.97)
	br, err := browser.New(browser.Config{
		Seed:     7,
		Resolver: resolver,
		CDNFactory: func() *cdn.Network {
			return cdn.NewNetwork(1<<14, warm, 7)
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	models := make([]*webgen.PageModel, len(web.Sites))
	for i, s := range web.Sites {
		models[i] = s.Landing().Build()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := br.Load(models[i%len(models)], i); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWarmLoad measures one warm (repeat-view) page load against a
// cache primed by a cold load: fresh objects answered from memory,
// stale ones revalidated with header-only 304 exchanges.
func BenchmarkWarmLoad(b *testing.B) {
	web := benchWeb(b, 16)
	resolver := dnssim.NewResolver(dnssim.ResolverConfig{
		Name: "isp", Seed: 7, WarmQueryRate: 0.8,
	}, web.Authority(), nil)
	warm := cdn.PopularityWarmth(2.2, 0.97)
	br, err := browser.New(browser.Config{
		Seed:     7,
		Resolver: resolver,
		CDNFactory: func() *cdn.Network {
			return cdn.NewNetwork(1<<14, warm, 7)
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	models := make([]*webgen.PageModel, len(web.Sites))
	caches := make([]*browser.Cache, len(web.Sites))
	for i, s := range web.Sites {
		models[i] = s.Landing().Build()
		caches[i] = browser.NewCache()
		br.SetCache(caches[i])
		if _, err := br.Load(models[i], i); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := i % len(models)
		br.SetCache(caches[j])
		if _, err := br.LoadRevisit(models[j], j, 0, 30*time.Minute); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHisparBuild measures list construction over the search engine.
func BenchmarkHisparBuild(b *testing.B) {
	u := toplist.NewUniverse(toplist.Config{Seed: 7, Size: 2000})
	entries := u.Top(80)
	seeds := make([]webgen.SiteSeed, len(entries))
	for i, e := range entries {
		seeds[i] = webgen.SiteSeed{Domain: e.Domain, Rank: e.Rank}
	}
	web := webgen.Generate(webgen.Config{Seed: 7, Sites: seeds})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := search.New(web, search.Config{EnglishOnly: true})
		if _, _, err := hispar.Build(eng, entries, hispar.BuildConfig{
			Sites: 50, URLsPerSite: 20, MinResults: 5,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkToplistWeek measures one week of top-list drift plus a
// 5K-snapshot.
func BenchmarkToplistWeek(b *testing.B) {
	u := toplist.NewUniverse(toplist.Config{Seed: 7, Size: 50000})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u.Step(7)
		_ = u.Top(5000)
	}
}
