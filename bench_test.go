package repro

// Benchmarks: one per paper table/figure, each driving the experiment
// runner that regenerates it, plus micro-benchmarks of the expensive
// pipeline stages (page generation, page load, list build).
//
// The figure benchmarks share one reduced-scale corpus (120 sites,
// 10 URLs each, 3 fetches per landing page); the first benchmark that
// needs the study pays for it outside its timing loop. Run
// cmd/papereval for full-scale (1000-site) numbers.

import (
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/browser"
	"repro/internal/cdn"
	"repro/internal/core"
	"repro/internal/dnssim"
	"repro/internal/experiments"
	"repro/internal/hispar"
	"repro/internal/search"
	"repro/internal/stats"
	"repro/internal/toplist"
	"repro/internal/webgen"
)

var (
	benchOnce sync.Once
	benchCtx  *experiments.Context
)

func sharedCtx(b *testing.B) *experiments.Context {
	b.Helper()
	benchOnce.Do(func() {
		benchCtx = experiments.NewContext(experiments.Config{
			Seed:              42,
			Sites:             120,
			PerSite:           10,
			LandingFetches:    3,
			CrawlPages:        600,
			CrawlSample:       120,
			StabilityUniverse: 30000,
			StabilityWeeks:    3,
			H2KSites:          150,
			H2KPerSite:        20,
			DNSProbeTop:       2000,
		})
	})
	return benchCtx
}

func benchExperiment(b *testing.B, id string) {
	if testing.Short() {
		// The shared corpus takes minutes to warm under -race; keep
		// `go test -race -short -bench=.` usable as a quick gate.
		b.Skip("skipping experiment benchmark in short mode")
	}
	ctx := sharedCtx(b)
	exp, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	// Warm the shared corpus (study, lists) outside the timing loop.
	if _, err := exp.Run(ctx); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exp.Run(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

// --- One benchmark per table/figure (§2–§7) ---

func BenchmarkTable1(b *testing.B)     { benchExperiment(b, "table1") }
func BenchmarkFig2a(b *testing.B)      { benchExperiment(b, "fig2a") }
func BenchmarkFig2b(b *testing.B)      { benchExperiment(b, "fig2b") }
func BenchmarkFig2c(b *testing.B)      { benchExperiment(b, "fig2c") }
func BenchmarkFig3a(b *testing.B)      { benchExperiment(b, "fig3a") }
func BenchmarkFig3bc(b *testing.B)     { benchExperiment(b, "fig3bc") }
func BenchmarkFig4a(b *testing.B)      { benchExperiment(b, "fig4a") }
func BenchmarkWarmCache(b *testing.B)  { benchExperiment(b, "warm") }
func BenchmarkFig4b(b *testing.B)      { benchExperiment(b, "fig4b") }
func BenchmarkFig4c(b *testing.B)      { benchExperiment(b, "fig4c") }
func BenchmarkFig5(b *testing.B)       { benchExperiment(b, "fig5") }
func BenchmarkDNSHitRate(b *testing.B) { benchExperiment(b, "dns") }
func BenchmarkFig6a(b *testing.B)      { benchExperiment(b, "fig6a") }
func BenchmarkFig6b(b *testing.B)      { benchExperiment(b, "fig6b") }
func BenchmarkFig6c(b *testing.B)      { benchExperiment(b, "fig6c") }
func BenchmarkFig7(b *testing.B)       { benchExperiment(b, "fig7") }
func BenchmarkFig8a(b *testing.B)      { benchExperiment(b, "fig8a") }
func BenchmarkFig8b(b *testing.B)      { benchExperiment(b, "fig8b") }
func BenchmarkFig8c(b *testing.B)      { benchExperiment(b, "fig8c") }
func BenchmarkFig9(b *testing.B)       { benchExperiment(b, "fig9") }
func BenchmarkFig10ab(b *testing.B)    { benchExperiment(b, "fig10ab") }
func BenchmarkFig10c(b *testing.B)     { benchExperiment(b, "fig10c") }
func BenchmarkStability(b *testing.B)  { benchExperiment(b, "stability") }
func BenchmarkListCost(b *testing.B)   { benchExperiment(b, "cost") }

// BenchmarkAblation drives the what-if evaluation of the paper's §5
// implications (every optimization scenario over both page types).
func BenchmarkAblation(b *testing.B) { benchExperiment(b, "ablation") }

// BenchmarkSelection drives the §7 page-selection strategy comparison.
func BenchmarkSelection(b *testing.B) { benchExperiment(b, "selection") }

// BenchmarkLearning drives the §7 learned-model transfer-gap experiment.
func BenchmarkLearning(b *testing.B) { benchExperiment(b, "learning") }

// --- Pipeline micro-benchmarks ---

func benchWeb(b *testing.B, n int) *webgen.Web {
	b.Helper()
	u := toplist.NewUniverse(toplist.Config{Seed: 7, Size: 2000})
	entries := u.Top(n)
	seeds := make([]webgen.SiteSeed, len(entries))
	for i, e := range entries {
		seeds[i] = webgen.SiteSeed{Domain: e.Domain, Rank: e.Rank}
	}
	return webgen.Generate(webgen.Config{Seed: 7, Sites: seeds})
}

// BenchmarkPageBuild measures synthetic page-model generation.
func BenchmarkPageBuild(b *testing.B) {
	web := benchWeb(b, 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		site := web.Sites[i%len(web.Sites)]
		_ = site.PageAt(1 + i%20).Build()
	}
}

// BenchmarkPageLoad measures one full simulated cold-cache page load
// (DNS, handshakes, dependency-ordered fetches, HAR assembly).
func BenchmarkPageLoad(b *testing.B) {
	web := benchWeb(b, 16)
	resolver := dnssim.NewResolver(dnssim.ResolverConfig{
		Name: "isp", Seed: 7, WarmQueryRate: 0.8,
	}, web.Authority(), nil)
	warm := cdn.PopularityWarmth(2.2, 0.97)
	br, err := browser.New(browser.Config{
		Seed:     7,
		Resolver: resolver,
		CDNFactory: func() *cdn.Network {
			return cdn.NewNetwork(1<<14, warm, 7)
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	models := make([]*webgen.PageModel, len(web.Sites))
	for i, s := range web.Sites {
		models[i] = s.Landing().Build()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := br.Load(models[i%len(models)], i); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWarmLoad measures one warm (repeat-view) page load against a
// cache primed by a cold load: fresh objects answered from memory,
// stale ones revalidated with header-only 304 exchanges.
func BenchmarkWarmLoad(b *testing.B) {
	web := benchWeb(b, 16)
	resolver := dnssim.NewResolver(dnssim.ResolverConfig{
		Name: "isp", Seed: 7, WarmQueryRate: 0.8,
	}, web.Authority(), nil)
	warm := cdn.PopularityWarmth(2.2, 0.97)
	br, err := browser.New(browser.Config{
		Seed:     7,
		Resolver: resolver,
		CDNFactory: func() *cdn.Network {
			return cdn.NewNetwork(1<<14, warm, 7)
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	models := make([]*webgen.PageModel, len(web.Sites))
	caches := make([]*browser.Cache, len(web.Sites))
	for i, s := range web.Sites {
		models[i] = s.Landing().Build()
		caches[i] = browser.NewCache()
		br.SetCache(caches[i])
		if _, err := br.Load(models[i], i); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := i % len(models)
		br.SetCache(caches[j])
		if _, err := br.LoadRevisit(models[j], j, 0, 30*time.Minute); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHisparBuild measures list construction over the search engine.
func BenchmarkHisparBuild(b *testing.B) {
	u := toplist.NewUniverse(toplist.Config{Seed: 7, Size: 2000})
	entries := u.Top(80)
	seeds := make([]webgen.SiteSeed, len(entries))
	for i, e := range entries {
		seeds[i] = webgen.SiteSeed{Domain: e.Domain, Rank: e.Rank}
	}
	web := webgen.Generate(webgen.Config{Seed: 7, Sites: seeds})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := search.New(web, search.Config{EnglishOnly: true})
		if _, _, err := hispar.Build(eng, entries, hispar.BuildConfig{
			Sites: 50, URLsPerSite: 20, MinResults: 5,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Streaming engine and sketch benchmarks ---

// BenchmarkSketchInsert measures one quantile-sketch insertion (the
// per-sample cost of the streaming fold).
func BenchmarkSketchInsert(b *testing.B) {
	s := stats.NewDefaultSketch()
	rng := rand.New(rand.NewSource(7))
	vals := make([]float64, 1<<12)
	for i := range vals {
		vals[i] = rng.NormFloat64() * 1e6
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Insert(vals[i&(len(vals)-1)])
	}
}

// BenchmarkSketchMerge measures folding 16 shard sketches (4096 samples
// each) into a fresh accumulator — the end-of-run merge path.
func BenchmarkSketchMerge(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	shards := make([]*stats.Sketch, 16)
	for i := range shards {
		shards[i] = stats.NewDefaultSketch()
		for j := 0; j < 4096; j++ {
			shards[i].Insert(rng.ExpFloat64() * 1e5)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		acc := stats.NewDefaultSketch()
		for _, s := range shards {
			if err := acc.Merge(s); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// benchStudyCorpus builds a web snapshot and Hispar-style list at the
// given site count, outside any timing loop. The reduced per-site scale
// (6 URLs — the minimum that satisfies MinResults — and 2 landing
// fetches) keeps large site counts tractable while preserving the
// result-set shape the streaming engine must bound.
func benchStudyCorpus(b *testing.B, sites int) (*webgen.Web, *hispar.List) {
	b.Helper()
	size := sites * 3
	if size < 2000 {
		size = 2000
	}
	u := toplist.NewUniverse(toplist.Config{Seed: 7, Size: size})
	entries := u.Top(sites * 7 / 5)
	seeds := make([]webgen.SiteSeed, len(entries))
	for i, e := range entries {
		seeds[i] = webgen.SiteSeed{Domain: e.Domain, Rank: e.Rank}
	}
	web := webgen.Generate(webgen.Config{Seed: 7, Sites: seeds})
	eng := search.New(web, search.Config{EnglishOnly: true})
	list, _, err := hispar.Build(eng, entries, hispar.BuildConfig{
		Sites: sites, URLsPerSite: 6, MinResults: 5,
	})
	if err != nil {
		b.Fatal(err)
	}
	return web, list
}

// retainedDelta returns the live-heap growth attributable to res: heap
// reachable after the run minus heap reachable before, with res held
// alive across the second GC. This is the metric the constant-memory
// claim is about — cumulative B/op grows linearly with sites on any
// path, but the streamed result must retain a roughly constant
// footprint while the in-memory one retains every SiteResult.
func retainedDelta(before *runtime.MemStats, res any) float64 {
	runtime.GC()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	runtime.KeepAlive(res)
	return float64(after.HeapAlloc) - float64(before.HeapAlloc)
}

func heapBefore() runtime.MemStats {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms
}

// warmCorpus runs one throwaway streamed pass so lazily-built corpus
// state (page pools, caches reachable from web) exists before the
// retained-B/op measurement — otherwise that linear-in-sites corpus
// growth would be misattributed to the result being measured.
func warmCorpus(b *testing.B, web *webgen.Web, list *hispar.List) {
	b.Helper()
	st, err := core.NewStudy(web, core.StudyConfig{Seed: 7, LandingFetches: 2})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := st.RunStream(list, core.StreamConfig{}); err != nil {
		b.Fatal(err)
	}
}

func benchStreamStudy(b *testing.B, sites int) {
	if testing.Short() && sites > 200 {
		b.Skip("large-corpus streaming benchmark skipped in short mode")
	}
	web, list := benchStudyCorpus(b, sites)
	warmCorpus(b, web, list)
	b.ReportAllocs()
	b.ResetTimer()
	retained := 0.0
	for i := 0; i < b.N; i++ {
		st, err := core.NewStudy(web, core.StudyConfig{Seed: 7, LandingFetches: 2})
		if err != nil {
			b.Fatal(err)
		}
		before := heapBefore()
		sres, err := st.RunStream(list, core.StreamConfig{})
		if err != nil {
			b.Fatal(err)
		}
		retained += retainedDelta(&before, sres)
	}
	b.ReportMetric(retained/float64(b.N), "retained-B/op")
}

func benchInMemoryStudy(b *testing.B, sites int) {
	if testing.Short() && sites > 200 {
		b.Skip("large-corpus in-memory benchmark skipped in short mode")
	}
	web, list := benchStudyCorpus(b, sites)
	warmCorpus(b, web, list)
	b.ReportAllocs()
	b.ResetTimer()
	retained := 0.0
	for i := 0; i < b.N; i++ {
		st, err := core.NewStudy(web, core.StudyConfig{Seed: 7, LandingFetches: 2})
		if err != nil {
			b.Fatal(err)
		}
		before := heapBefore()
		res, err := st.Run(list)
		if err != nil {
			b.Fatal(err)
		}
		retained += retainedDelta(&before, res)
	}
	b.ReportMetric(retained/float64(b.N), "retained-B/op")
}

// BenchmarkStreamStudy120 runs in bench-smoke and anchors the CI gate
// on the streaming hot path; the H1K/H10K pairs document the retained-
// memory scaling (see EXPERIMENTS.md) and run only in full bench mode.
func BenchmarkStreamStudy120(b *testing.B)    { benchStreamStudy(b, 120) }
func BenchmarkStreamStudyH1K(b *testing.B)    { benchStreamStudy(b, 1000) }
func BenchmarkStreamStudyH10K(b *testing.B)   { benchStreamStudy(b, 10000) }
func BenchmarkInMemoryStudy120(b *testing.B)  { benchInMemoryStudy(b, 120) }
func BenchmarkInMemoryStudyH1K(b *testing.B)  { benchInMemoryStudy(b, 1000) }
func BenchmarkInMemoryStudyH10K(b *testing.B) { benchInMemoryStudy(b, 10000) }

// BenchmarkToplistWeek measures one week of top-list drift plus a
// 5K-snapshot.
func BenchmarkToplistWeek(b *testing.B) {
	u := toplist.NewUniverse(toplist.Config{Seed: 7, Size: 50000})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u.Step(7)
		_ = u.Top(5000)
	}
}
