# Build and verification entry points. Tier-1 is the fast gate every
# change must pass; tier-2 adds vet and the race detector (short mode, so
# the heavyweight experiment corpus and benchmarks stay out of the loop).

GO ?= go

.PHONY: build test test-race bench bench-smoke bench-baseline bench-gate serve-smoke trace-smoke lint lint-baseline alloc-report leak-report ci fmt-check clean

# Accepted pre-existing lint findings; see `detlint -baseline`. The file
# is committed (currently the allocation-churn backlog recorded when the
# hot-path checks were adopted) so adopting a new check never requires
# fixing the whole tree in one PR.
BASELINE := detlint-baseline.json

# Ratchet cap on the committed baseline: `make lint` fails if the
# baseline ever records more suppressed findings than this. Burn findings
# down, re-record with lint-baseline, then LOWER this number — never
# raise it to absorb new debt.
BASELINE_CAP := 310

build:
	$(GO) build ./...

# Tier-1: the full functional suite.
test: build
	$(GO) test ./...

# Tier-2: static checks plus the race detector. Short mode skips the
# slow experiment-context tests and benchmark warmups but keeps every
# unit and determinism test — including the Workers=1 vs Workers=8
# study-invariance test in internal/core.
test-race:
	$(GO) vet ./...
	$(GO) test -race -short ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# One iteration per benchmark, with the heavyweight experiment corpus
# skipped (-short): a fast liveness check that every benchmark still
# runs. CI parses the output into BENCH_ci.json via cmd/benchjson.
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -benchmem -short -run=^$$ .

# Benchmarks run at -benchtime=1x so the heavyweight study benchmarks
# execute a single op; -count=$(BENCH_COUNT) repeats the whole suite and
# benchjson keeps the best (lowest-ns/op) sample per benchmark, which
# tames single-iteration noise on the sub-millisecond benchmarks.
BENCH_COUNT ?= 3

# Regression-gate tolerances. ns/op is noisy — machine, load, and CPU
# count all move it — so the gate is generous there. allocs/op is
# deterministic for identical code on any machine, so it is held tight:
# an allocation regression is a code change, not noise. Custom metrics
# (retained-B/op from the StreamStudy benchmark) are deterministic
# counts too, but byte totals move with runtime internals like map
# bucket growth, so they get a middle-ground tolerance.
BENCH_TOL ?= 0.25
BENCH_TOL_ALLOCS ?= 0.05
BENCH_TOL_EXTRA ?= 0.20

# Re-record the committed benchmark baseline (run on a quiet machine,
# inspect the diff, commit BENCH_baseline.json — see README).
bench-baseline:
	$(GO) test -bench=. -benchtime=1x -count=$(BENCH_COUNT) -benchmem -short -run=^$$ . > bench.txt
	cat bench.txt
	$(GO) run ./cmd/benchjson -o BENCH_baseline.json bench.txt

# The CI perf gate: run bench-smoke, convert to BENCH_ci.json, and diff
# against the committed baseline. Fails when any benchmark regresses
# beyond tolerance on ns/op or allocs/op; BENCH_delta.txt always holds
# the full comparison table for the artifact upload.
bench-gate:
	$(GO) test -bench=. -benchtime=1x -count=$(BENCH_COUNT) -benchmem -short -run=^$$ . > bench.txt
	cat bench.txt
	$(GO) run ./cmd/benchjson -o BENCH_ci.json bench.txt
	$(GO) run ./cmd/benchjson -old BENCH_baseline.json -new BENCH_ci.json \
		-tol $(BENCH_TOL) -tol-allocs $(BENCH_TOL_ALLOCS) \
		-tol-extra $(BENCH_TOL_EXTRA) -o BENCH_delta.txt; \
		status=$$?; cat BENCH_delta.txt; exit $$status

# End-to-end serving smoke: boot the hisparserve control plane on an
# ephemeral port and drive a seeded 12k-request zipf load against it.
# Fails on any transport error or status outside {2xx, 304}; prints
# throughput, latency percentiles, and the conditional-hit ratio.
serve-smoke:
	$(GO) run ./cmd/hisparserve smoke -seed 42 -loadseed 1 -n 12000 -clients 8

# Trace determinism smoke: stream the same 120-site study once serial
# and once parallel, both with full-detail tracing, then require
# tracecheck to accept both Chrome trace files and find them
# byte-identical — the tracer's worker-invariance contract, end to end
# through the real CLI.
trace-smoke:
	$(GO) run ./cmd/webmeasure -sites 120 -persite 5 -fetches 3 -workers 1 \
		-trace trace_w1.json -trace-detail phases > /dev/null
	$(GO) run ./cmd/webmeasure -sites 120 -persite 5 -fetches 3 \
		-trace trace_wN.json -trace-detail phases > /dev/null
	$(GO) run ./cmd/tracecheck trace_w1.json trace_wN.json

# Determinism lint: cmd/detlint type-checks every package in the module
# and enforces the invariants the seeded pipeline depends on (no wall
# clock, no global RNG, no order-dependent map emission, no untracked
# source→sink taint, ...). Findings recorded in $(BASELINE) are
# suppressed; anything new fails. detlint.sarif feeds GitHub code
# scanning and detlint.json is the CI artifact.
lint:
	$(GO) run ./cmd/detlint -format sarif -baseline $(BASELINE) -max-baseline $(BASELINE_CAP) -o detlint.sarif
	$(GO) run ./cmd/detlint -format json -baseline $(BASELINE) -max-baseline $(BASELINE_CAP) -o detlint.json

# Re-record the accepted findings (after triaging that every new finding
# is a justified keep — prefer fixing, or //detlint:allow with a reason).
lint-baseline:
	$(GO) run ./cmd/detlint -baseline $(BASELINE) -write-baseline

# Ranked hot-path allocation report: every allocation site reachable
# from a //detlint:hotpath entry point, worst function first. The JSON
# is the CI artifact; the text rendering is for humans.
alloc-report:
	$(GO) run ./cmd/detlint -hotpaths -format json -o detlint-hotpaths.json
	$(GO) run ./cmd/detlint -hotpaths

# Resource-lifecycle report: every tracked acquisition (files, sockets,
# response bodies, cancel funcs, tickers, profile stops) with how each
# path disposes of it, leaks first, hot functions ranked on top. The JSON
# is the CI artifact; the text rendering is for humans.
leak-report:
	$(GO) run ./cmd/detlint -leaks -format json -o detlint-leaks.json
	$(GO) run ./cmd/detlint -leaks

# Fail (with the offending files listed) if anything is not gofmt-clean.
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# The full local gate, mirroring CI: formatting, vet, lint, tier-1,
# tier-2.
ci: fmt-check
	$(GO) vet ./...
	$(MAKE) lint
	$(MAKE) test
	$(MAKE) test-race
	$(MAKE) serve-smoke
	$(MAKE) trace-smoke

clean:
	$(GO) clean ./...
