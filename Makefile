# Build and verification entry points. Tier-1 is the fast gate every
# change must pass; tier-2 adds vet and the race detector (short mode, so
# the heavyweight experiment corpus and benchmarks stay out of the loop).

GO ?= go

.PHONY: build test test-race bench clean

build:
	$(GO) build ./...

# Tier-1: the full functional suite.
test: build
	$(GO) test ./...

# Tier-2: static checks plus the race detector. Short mode skips the
# slow experiment-context tests and benchmark warmups but keeps every
# unit and determinism test — including the Workers=1 vs Workers=8
# study-invariance test in internal/core.
test-race:
	$(GO) vet ./...
	$(GO) test -race -short ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

clean:
	$(GO) clean ./...
