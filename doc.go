// Package repro is a from-scratch Go reproduction of "On Landing and
// Internal Web Pages: The Strange Case of Jekyll and Hyde in Web
// Performance Measurement" (Aqeel, Chandrasekaran, Feldmann, Maggs —
// ACM IMC 2020).
//
// The repository builds the paper's artifact — the Hispar two-level top
// list of landing and internal pages — together with every substrate the
// measurement study depends on: a synthetic web generator, a virtual-time
// page-load engine emitting HAR logs and Navigation Timing, DNS/CDN/
// transport simulators, a search engine with site: queries, an
// Easylist-syntax filter engine, a public-suffix list, HTTP caching
// semantics, CDN-attribution heuristics, and the literature-survey
// pipeline. One experiment runner per paper table/figure regenerates the
// reported rows; the root-level benchmarks drive them.
//
// See DESIGN.md for the system inventory, EXPERIMENTS.md for the
// paper-vs-measured index, and README.md for a tour.
package repro
