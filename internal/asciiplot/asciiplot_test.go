package asciiplot

import (
	"strings"
	"testing"
)

func TestRenderBasics(t *testing.T) {
	s := []Series{
		{Name: "landing", Points: [][2]float64{{0, 0}, {1, 0.5}, {2, 1}}},
		{Name: "internal", Points: [][2]float64{{0, 0}, {1, 0.3}, {2, 0.9}}},
	}
	out := Render(s, Options{Width: 40, Height: 10, XLabel: "seconds", YLabel: "CDF"})
	if !strings.Contains(out, "landing") || !strings.Contains(out, "internal") {
		t.Error("legend missing")
	}
	if !strings.Contains(out, "seconds") || !strings.Contains(out, "CDF") {
		t.Error("axis labels missing")
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Error("series glyphs missing")
	}
	lines := strings.Split(out, "\n")
	plotLines := 0
	for _, l := range lines {
		if strings.Contains(l, "|") {
			plotLines++
		}
	}
	if plotLines != 10 {
		t.Errorf("plot rows = %d, want 10", plotLines)
	}
}

func TestRenderDegenerate(t *testing.T) {
	if got := Render(nil, Options{}); got != "(no data)\n" {
		t.Errorf("empty render = %q", got)
	}
	// Constant series must not divide by zero.
	out := Render([]Series{{Name: "flat", Points: [][2]float64{{1, 5}, {1, 5}}}}, Options{})
	if !strings.Contains(out, "flat") {
		t.Error("flat series failed to render")
	}
}
