// Package asciiplot renders small terminal plots of (x, y) series — the
// closest an offline CLI gets to the paper's CDF figures. One chart can
// overlay several series, each with its own glyph.
package asciiplot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named line.
type Series struct {
	Name   string
	Points [][2]float64
}

// Options configures a chart.
type Options struct {
	Width  int // plot columns (default 64)
	Height int // plot rows (default 16)
	// YLabel and XLabel annotate the axes.
	XLabel, YLabel string
}

func (o Options) withDefaults() Options {
	if o.Width <= 0 {
		o.Width = 64
	}
	if o.Height <= 0 {
		o.Height = 16
	}
	return o
}

var glyphs = []byte{'*', 'o', '+', 'x', '#', '@'}

// Render draws the series into a text chart.
func Render(series []Series, opts Options) string {
	opts = opts.withDefaults()
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	any := false
	for _, s := range series {
		for _, p := range s.Points {
			if math.IsNaN(p[0]) || math.IsNaN(p[1]) {
				continue
			}
			any = true
			minX, maxX = math.Min(minX, p[0]), math.Max(maxX, p[0])
			minY, maxY = math.Min(minY, p[1]), math.Max(maxY, p[1])
		}
	}
	if !any {
		return "(no data)\n"
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}

	grid := make([][]byte, opts.Height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", opts.Width))
	}
	for si, s := range series {
		g := glyphs[si%len(glyphs)]
		for _, p := range s.Points {
			col := int((p[0] - minX) / (maxX - minX) * float64(opts.Width-1))
			row := opts.Height - 1 - int((p[1]-minY)/(maxY-minY)*float64(opts.Height-1))
			if col >= 0 && col < opts.Width && row >= 0 && row < opts.Height {
				grid[row][col] = g
			}
		}
	}

	var b strings.Builder
	if opts.YLabel != "" {
		fmt.Fprintf(&b, "%s\n", opts.YLabel)
	}
	for r, row := range grid {
		yVal := maxY - (maxY-minY)*float64(r)/float64(opts.Height-1)
		fmt.Fprintf(&b, "%9.3g |%s|\n", yVal, string(row))
	}
	fmt.Fprintf(&b, "%9s +%s+\n", "", strings.Repeat("-", opts.Width))
	fmt.Fprintf(&b, "%9s  %-*.4g%*.4g\n", "", opts.Width/2, minX, opts.Width-opts.Width/2, maxX)
	if opts.XLabel != "" {
		fmt.Fprintf(&b, "%9s  %s\n", "", opts.XLabel)
	}
	for si, s := range series {
		fmt.Fprintf(&b, "%9s  %c %s\n", "", glyphs[si%len(glyphs)], s.Name)
	}
	return b.String()
}
