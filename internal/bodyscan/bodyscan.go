// Package bodyscan extracts sub-resource references from non-HTML
// response bodies: url(...) references in stylesheets, loadResource(...)
// markers in scripts, and embedded frame documents. Together with
// internal/htmlx it lets a real-HTTP client discover a page's full
// dependency tree purely by parsing what the wire delivers — no
// generator ground truth.
package bodyscan

import (
	"strings"

	"repro/internal/htmlx"
)

// Refs returns the URLs referenced by a response body of the given MIME
// type. HTML bodies return sub-resources and loadResource markers; CSS
// bodies return url(...) targets; JS bodies return loadResource(...)
// targets; everything else returns nil.
func Refs(mime, body string) []string {
	mime = strings.ToLower(mime)
	switch {
	case strings.Contains(mime, "html"):
		return htmlRefs(body)
	case strings.Contains(mime, "css"):
		return CSSURLs(body)
	case strings.Contains(mime, "javascript"):
		return JSLoads(body)
	default:
		return nil
	}
}

func htmlRefs(body string) []string {
	doc := htmlx.Parse(body)
	var out []string
	for _, r := range doc.Resources {
		out = append(out, r.URL)
	}
	// Inline bootstrap code fetches data/ad resources via loadResource;
	// inline <style> blocks reference fonts and images via url(...).
	out = append(out, JSLoads(body)...)
	out = append(out, CSSURLs(body)...)
	return dedupe(out)
}

// CSSURLs extracts url("...")/url('...')/url(...) references from a
// stylesheet, skipping data: URIs.
func CSSURLs(css string) []string {
	var out []string
	for i := 0; ; {
		j := strings.Index(css[i:], "url(")
		if j < 0 {
			break
		}
		start := i + j + len("url(")
		end := strings.IndexByte(css[start:], ')')
		if end < 0 {
			break
		}
		raw := strings.TrimSpace(css[start : start+end])
		raw = strings.Trim(raw, `"'`)
		if raw != "" && !strings.HasPrefix(raw, "data:") {
			out = append(out, raw)
		}
		i = start + end + 1
	}
	return dedupe(out)
}

// JSLoads extracts loadResource("...") / fetch("...") targets from
// script source. Only string-literal arguments are recoverable by
// static scanning, which is all a measurement tool can do.
func JSLoads(js string) []string {
	var out []string
	for _, marker := range []string{"loadResource(", "fetch("} {
		for i := 0; ; {
			j := strings.Index(js[i:], marker)
			if j < 0 {
				break
			}
			start := i + j + len(marker)
			if start >= len(js) {
				break
			}
			quote := js[start]
			if quote != '"' && quote != '\'' {
				i = start
				continue
			}
			end := strings.IndexByte(js[start+1:], quote)
			if end < 0 {
				break
			}
			if u := js[start+1 : start+1+end]; u != "" {
				out = append(out, u)
			}
			i = start + 1 + end
		}
	}
	return dedupe(out)
}

func dedupe(in []string) []string {
	seen := make(map[string]bool, len(in))
	out := in[:0]
	for _, u := range in {
		if !seen[u] {
			seen[u] = true
			out = append(out, u)
		}
	}
	return out
}
