package bodyscan

import (
	"reflect"
	"testing"

	"repro/internal/toplist"
	"repro/internal/webgen"
)

func TestCSSURLs(t *testing.T) {
	css := `
.a { background: url("https://x/img/a.png"); }
.b { background: url('/img/b.jpg'); }
.c { background: url(bare.gif); }
.d { background: url(data:image/png;base64,AAA); }
.e { background: url("https://x/img/a.png"); } /* duplicate */
`
	got := CSSURLs(css)
	want := []string{"https://x/img/a.png", "/img/b.jpg", "bare.gif"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("CSSURLs = %v, want %v", got, want)
	}
	if CSSURLs("no urls here") != nil {
		t.Error("expected nil for plain text")
	}
	if CSSURLs("broken url( no close") != nil {
		t.Error("unterminated url( must not loop or return junk")
	}
}

func TestJSLoads(t *testing.T) {
	js := `
loadResource("https://x/api/a.json");
loadResource('https://x/api/b.json');
fetch("https://x/api/c.json").then(r => r.json());
loadResource(variableNotALiteral);
// loadResource("https://commented-but-still-static/d.json")
`
	got := JSLoads(js)
	if len(got) != 4 {
		t.Fatalf("JSLoads = %v", got)
	}
	if got[0] != "https://x/api/a.json" || got[2] != "https://commented-but-still-static/d.json" {
		t.Errorf("JSLoads order = %v", got)
	}
}

func TestRefsDispatch(t *testing.T) {
	if got := Refs("text/css", `x { background: url(/a.png) }`); len(got) != 1 {
		t.Errorf("css dispatch = %v", got)
	}
	if got := Refs("application/javascript", `loadResource("/x")`); len(got) != 1 {
		t.Errorf("js dispatch = %v", got)
	}
	if got := Refs("image/png", "binarybinary"); got != nil {
		t.Errorf("image dispatch = %v", got)
	}
	html := `<img src="/a.png"><script>loadResource("/b.json")</script>`
	got := Refs("text/html; charset=utf-8", html)
	if len(got) != 2 {
		t.Errorf("html dispatch = %v", got)
	}
}

// TestAgreesWithGeneratorBodies cross-checks the scanner against the
// generator: scanning a rendered body must recover exactly the model's
// child references.
func TestAgreesWithGeneratorBodies(t *testing.T) {
	u := toplist.NewUniverse(toplist.Config{Seed: 111, Size: 300})
	entries := u.Top(5)
	seeds := make([]webgen.SiteSeed, len(entries))
	for i, e := range entries {
		seeds[i] = webgen.SiteSeed{Domain: e.Domain, Rank: e.Rank}
	}
	web := webgen.Generate(webgen.Config{Seed: 111, Sites: seeds})
	for _, s := range web.Sites {
		m := s.Landing().Build()
		for i, o := range m.Objects {
			if i == 0 {
				continue
			}
			wantRefs := m.ChildRefs(i)
			if len(wantRefs) == 0 {
				continue
			}
			body := m.RenderBody(i, 1<<20)
			got := Refs(o.MIME, body)
			gotSet := map[string]bool{}
			for _, g := range got {
				gotSet[g] = true
			}
			for _, w := range wantRefs {
				if !gotSet[w] {
					t.Errorf("%s (%v): scanner missed child %s", o.URL, o.Role, w)
				}
			}
		}
	}
}
