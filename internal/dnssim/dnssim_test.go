package dnssim

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/vclock"
)

func newTestResolver(cfg ResolverConfig, clock *vclock.Clock) *Resolver {
	auth := &SyntheticAuthority{DefaultTTL: time.Hour}
	var now func() time.Time
	if clock != nil {
		now = clock.Now
	}
	return NewResolver(cfg, auth, now)
}

func TestResolveCaches(t *testing.T) {
	r := newTestResolver(ResolverConfig{Name: "t", Seed: 1}, nil)
	first, err := r.Resolve("www.example.com", 0)
	if err != nil {
		t.Fatal(err)
	}
	if first.CacheHit {
		t.Error("first query must miss with zero warmth")
	}
	second, err := r.Resolve("www.example.com", 0)
	if err != nil {
		t.Fatal(err)
	}
	if !second.CacheHit {
		t.Error("second query must hit")
	}
	if second.Latency >= first.Latency {
		t.Errorf("cached latency %v not below miss latency %v", second.Latency, first.Latency)
	}
	if first.Record.Addr != second.Record.Addr || first.Record.Addr == "" {
		t.Errorf("addresses differ: %q vs %q", first.Record.Addr, second.Record.Addr)
	}
}

func TestTTLExpiry(t *testing.T) {
	clock := vclock.New(time.Unix(0, 0).UTC())
	auth := AuthorityFunc(func(host string) (Record, bool) {
		return Record{Host: host, Addr: "198.51.100.1", TTL: 30 * time.Second}, true
	})
	r := NewResolver(ResolverConfig{Name: "t", Seed: 2}, auth, clock.Now)
	if _, err := r.Resolve("short.example", 0); err != nil {
		t.Fatal(err)
	}
	res, _ := r.Resolve("short.example", 0)
	if !res.CacheHit {
		t.Fatal("should hit within TTL")
	}
	clock.Advance(31 * time.Second)
	res, _ = r.Resolve("short.example", 0)
	if res.CacheHit {
		t.Error("should miss after TTL expiry")
	}
}

func TestWarmthIncreasesWithPopularity(t *testing.T) {
	hot, cold := 0, 0
	const n = 400
	for i := 0; i < n; i++ {
		r := newTestResolver(ResolverConfig{Name: "t", Seed: int64(i), WarmQueryRate: 1}, nil)
		if res, _ := r.Resolve("hot.example", 1.0); res.CacheHit {
			hot++
		}
		if res, _ := r.Resolve("cold.example", 0.0001); res.CacheHit {
			cold++
		}
	}
	if hot <= cold {
		t.Errorf("hot=%d cold=%d: warmth must grow with popularity", hot, cold)
	}
	if cold > n/4 {
		t.Errorf("cold hits too frequent: %d/%d", cold, n)
	}
}

func TestFragmentationLowersHitRate(t *testing.T) {
	hosts := make([]string, 600)
	for i := range hosts {
		hosts[i] = DomainNameForTest(i)
	}
	pop := ZipfPopularity(hosts, 0.9)
	mono := newTestResolver(ResolverConfig{Name: "mono", Seed: 7, WarmQueryRate: 1.2}, nil)
	frag := newTestResolver(ResolverConfig{Name: "frag", Seed: 7, WarmQueryRate: 1.2, Shards: 8}, nil)
	m := HitRateProbe(mono, hosts, pop, 25*time.Millisecond)
	f := HitRateProbe(frag, hosts, pop, 25*time.Millisecond)
	if f >= m {
		t.Errorf("fragmented hit rate %.2f should be below monolithic %.2f", f, m)
	}
}

// DomainNameForTest derives a distinct synthetic host.
func DomainNameForTest(i int) string {
	b := []byte("host-aaaa.example")
	for j := 5; j < 9; j++ {
		b[j] = byte('a' + (i>>(4*(j-5)))%16)
	}
	return string(b)
}

func TestNXDomain(t *testing.T) {
	auth := AuthorityFunc(func(host string) (Record, bool) { return Record{}, false })
	r := NewResolver(ResolverConfig{Name: "t", Seed: 3}, auth, nil)
	if _, err := r.Resolve("nope.example", 0); err == nil {
		t.Error("want NXDOMAIN error")
	}
}

func TestFlushAndSize(t *testing.T) {
	r := newTestResolver(ResolverConfig{Name: "t", Seed: 4}, nil)
	for _, h := range []string{"a.x", "b.x", "c.x"} {
		if _, err := r.Resolve(h, 0); err != nil {
			t.Fatal(err)
		}
	}
	if r.CacheSize() != 3 {
		t.Errorf("cache size = %d", r.CacheSize())
	}
	r.Flush()
	if r.CacheSize() != 0 {
		t.Errorf("cache size after flush = %d", r.CacheSize())
	}
}

func TestSyntheticAddrStable(t *testing.T) {
	a := SyntheticAddr("www.example.com")
	b := SyntheticAddr("www.example.com")
	c := SyntheticAddr("other.example.com")
	if a != b {
		t.Error("address not stable")
	}
	if a == c {
		t.Error("different hosts share an address (likely but not for these)")
	}
}

func TestHitRateProbeSecondQueryAlwaysWarm(t *testing.T) {
	// With zero warmth every first query misses; the probe should
	// report ~0 hits.
	r := newTestResolver(ResolverConfig{Name: "t", Seed: 5}, nil)
	hosts := []string{"a.example", "b.example", "c.example"}
	rate := HitRateProbe(r, hosts, nil, 25*time.Millisecond)
	if rate != 0 {
		t.Errorf("probe rate = %.2f, want 0 with cold cache", rate)
	}
}

func TestInjectedFailuresAreTransientAndUncached(t *testing.T) {
	r := newTestResolver(ResolverConfig{Name: "t", Seed: 3, FailProb: 0.5}, nil)
	fails := 0
	const n = 400
	for i := 0; i < n; i++ {
		host := fmt.Sprintf("h%d.example", i)
		res, err := r.Resolve(host, 0)
		if err != nil {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("unexpected error class: %v", err)
			}
			if res.Latency <= 0 {
				t.Fatal("failed query must still cost time")
			}
			fails++
		}
	}
	if fails < n/5 || fails > 4*n/5 {
		t.Errorf("injected failure count %d/%d far from 50%%", fails, n)
	}
	// A host that eventually resolves is cached; cached answers never fail.
	var host string
	for i := 0; ; i++ {
		host = "stable.example"
		if _, err := r.Resolve(host, 0); err == nil {
			break
		}
		if i > 100 {
			t.Fatal("retry never succeeded at FailProb 0.5")
		}
	}
	for i := 0; i < 20; i++ {
		res, err := r.Resolve(host, 0)
		if err != nil || !res.CacheHit {
			t.Fatalf("cached answer failed: hit=%v err=%v", res.CacheHit, err)
		}
	}
}

func TestZeroFailProbMatchesSeedLatencies(t *testing.T) {
	a := newTestResolver(ResolverConfig{Name: "a", Seed: 11}, nil)
	b := newTestResolver(ResolverConfig{Name: "b", Seed: 11, FailProb: 0}, nil)
	for i := 0; i < 50; i++ {
		host := "h" + string(rune('a'+i%26)) + ".example"
		ra, ea := a.Resolve(host, 0.4)
		rb, eb := b.Resolve(host, 0.4)
		if (ea == nil) != (eb == nil) || ra.Latency != rb.Latency || ra.CacheHit != rb.CacheHit {
			t.Fatalf("query %d diverged: %+v/%v vs %+v/%v", i, ra, ea, rb, eb)
		}
	}
}
