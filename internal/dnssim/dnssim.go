// Package dnssim simulates the DNS substrate: authoritative records with
// CNAME chains (used for CDN attribution), and caching recursive
// resolvers with TTL expiry, background warming, and — for public anycast
// resolvers — cache fragmentation across backend shards.
//
// It reproduces the paper's §5.3 experiment: issuing two consecutive
// queries per domain to a local resolver and to a fragmented public
// resolver, labelling the first a cache hit when its response time is not
// significantly higher than the second's, and observing roughly 30% and
// 20% hit rates respectively for the most popular domains. Low hit rates
// stem from short time-to-live values used for CDN request routing and
// from cache fragmentation at large public resolvers.
package dnssim

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"strconv"
	"sync"
	"time"
)

// ErrInjected marks a transient injected resolver failure (the simulated
// analogue of a SERVFAIL or a lost resolver datagram). Callers distinguish
// it from NXDOMAIN with errors.Is: injected failures are transient and
// worth retrying, NXDOMAIN is authoritative.
var ErrInjected = errors.New("injected resolver failure")

// Record is one authoritative DNS mapping. Chain holds the CNAME chain
// traversed before the terminal A record (empty for directly hosted
// names).
type Record struct {
	Host  string
	Chain []string // CNAME chain, in order
	Addr  string   // terminal IPv4 address
	TTL   time.Duration
}

// Authority supplies authoritative records. Implemented by the synthetic
// web's domain registry.
type Authority interface {
	// Lookup returns the record for host. ok is false for NXDOMAIN.
	Lookup(host string) (Record, bool)
}

// AuthorityFunc adapts a function to the Authority interface.
type AuthorityFunc func(host string) (Record, bool)

// Lookup implements Authority.
func (f AuthorityFunc) Lookup(host string) (Record, bool) { return f(host) }

// SyntheticAuthority answers every name deterministically: hosts whose
// name carries a CNAME marker get a chain, everything else a plain A
// record. Useful in tests and as a fallback.
type SyntheticAuthority struct {
	// DefaultTTL applies when no rule matches. Zero means 1 hour.
	DefaultTTL time.Duration
}

// Lookup implements Authority.
func (a *SyntheticAuthority) Lookup(host string) (Record, bool) {
	ttl := a.DefaultTTL
	if ttl == 0 {
		ttl = time.Hour
	}
	return Record{Host: host, Addr: SyntheticAddr(host), TTL: ttl}, true
}

// octet holds the decimal rendering of every byte value, so hot-path
// address construction below is a single concatenation (one allocation
// for the returned string, nothing else).
var octet = func() (t [256]string) {
	for i := range t {
		t[i] = strconv.Itoa(i)
	}
	return
}()

// SyntheticAddr derives a stable fake IPv4 address from a hostname.
func SyntheticAddr(host string) string {
	h := fnv.New32a()
	h.Write([]byte(host))
	v := h.Sum32()
	// Stay in the TEST-NET-3 and documentation ranges, then widen; these
	// addresses never leave the simulation. This runs once per cold
	// resolution on the load path, hence the table lookups instead of
	// format verbs.
	return "198." + octet[18+(v>>16)%32] + "." + octet[(v>>8)&255] + "." + octet[v&255]
}

// Result is the outcome of one resolution.
type Result struct {
	Record  Record
	Latency time.Duration
	// CacheHit reports whether the resolver answered from cache without
	// contacting upstream servers.
	CacheHit bool
}

// ResolverConfig parameterizes a caching resolver.
type ResolverConfig struct {
	Name string
	Seed int64
	// ClientRTT is the round-trip from the client to the resolver
	// (e.g. ~3ms for the ISP resolver, ~20ms for a public anycast one).
	ClientRTT time.Duration
	// UpstreamTime is the mean additional time to resolve a cache miss
	// recursively.
	UpstreamTime time.Duration
	// Shards is the number of independent backend caches; public anycast
	// resolvers fragment their cache across many frontends. 0 or 1 means
	// a single shared cache.
	Shards int
	// WarmQueryRate scales the background query stream from other users
	// that keeps popular names warm. A name with popularity p (0..1] and
	// TTL T has first-query hit probability r·T/(1+r·T) with
	// r = WarmQueryRate·p / Shards — the steady-state hit rate of a TTL
	// cache under Poisson arrivals.
	WarmQueryRate float64
	// FailProb is the probability that a query which must go upstream
	// fails transiently (SERVFAIL / lost datagram). Cached answers never
	// fail, and failures are never cached, so retries can succeed. Fault
	// draws use a dedicated RNG: FailProb = 0 leaves the latency stream
	// untouched.
	FailProb float64
}

// Resolver is a caching recursive resolver. Safe for concurrent use.
type Resolver struct {
	cfg   ResolverConfig
	auth  Authority
	now   func() time.Time
	mu    sync.Mutex
	rng   *rand.Rand
	frng  *rand.Rand              // fault draws only; nil when FailProb == 0
	cache []map[string]cacheEntry // one map per shard
}

type cacheEntry struct {
	rec     Record
	expires time.Time
}

// NewResolver builds a resolver over the given authority. now supplies
// virtual time; if nil, a fixed epoch clock is used (cache entries then
// never expire, which is fine for single-page-load scopes).
func NewResolver(cfg ResolverConfig, auth Authority, now func() time.Time) *Resolver {
	if cfg.Shards < 1 {
		cfg.Shards = 1
	}
	if cfg.ClientRTT <= 0 {
		cfg.ClientRTT = 3 * time.Millisecond
	}
	if cfg.UpstreamTime <= 0 {
		cfg.UpstreamTime = 80 * time.Millisecond
	}
	if now == nil {
		epoch := time.Unix(0, 0).UTC()
		now = func() time.Time { return epoch }
	}
	caches := make([]map[string]cacheEntry, cfg.Shards)
	for i := range caches {
		caches[i] = make(map[string]cacheEntry)
	}
	r := &Resolver{
		cfg:   cfg,
		auth:  auth,
		now:   now,
		rng:   rand.New(rand.NewSource(cfg.Seed ^ 0x5d15)),
		cache: caches,
	}
	if cfg.FailProb > 0 {
		r.frng = rand.New(rand.NewSource(cfg.Seed ^ 0xfa11))
	}
	return r
}

// Name returns the resolver's configured name.
func (r *Resolver) Name() string { return r.cfg.Name }

// Resolve resolves host. popularity (0..1] is the name's global request
// popularity, which drives background cache warmth; pass 0 for
// unpopular/unknown names.
func (r *Resolver) Resolve(host string, popularity float64) (Result, error) {
	r.mu.Lock()
	defer r.mu.Unlock()

	now := r.now()
	shard := 0
	if r.cfg.Shards > 1 {
		// Anycast: one client consistently reaches one frontend, but the
		// overall cache is fragmented across frontends — each shard only
		// sees 1/Shards of the global query stream. Shard selection is
		// stable per name so that consecutive probe queries exercise the
		// same cache, as they would from a fixed vantage point.
		h := fnv.New32a()
		h.Write([]byte(host))
		shard = int(h.Sum32()) % r.cfg.Shards
		if shard < 0 {
			shard += r.cfg.Shards
		}
	}
	jitter := func(d time.Duration) time.Duration {
		return d + time.Duration(r.rng.NormFloat64()*float64(d)*0.15)
	}

	if e, ok := r.cache[shard][host]; ok && e.expires.After(now) {
		return Result{Record: e.rec, Latency: jitter(r.cfg.ClientRTT), CacheHit: true}, nil
	}

	// Injected transient failure: the upstream exchange dies. The client
	// burns a few upstream timeouts before giving up; nothing is cached,
	// so a retry redraws its fate.
	if r.frng != nil && r.frng.Float64() < r.cfg.FailProb {
		lat := r.cfg.ClientRTT + 4*r.cfg.UpstreamTime
		lat += time.Duration(r.frng.NormFloat64() * float64(lat) * 0.15)
		return Result{Latency: lat}, fmt.Errorf("dnssim: %s: %w", host, ErrInjected)
	}

	rec, ok := r.auth.Lookup(host)
	if !ok {
		return Result{Latency: jitter(r.cfg.ClientRTT + r.cfg.UpstreamTime)}, fmt.Errorf("dnssim: NXDOMAIN %s", host)
	}

	// Was the name already warm from background traffic? Sampled once,
	// when we first see the name on this shard.
	if popularity > 0 && r.cfg.WarmQueryRate > 0 {
		rate := r.cfg.WarmQueryRate * popularity / float64(r.cfg.Shards)
		rt := rate * rec.TTL.Seconds()
		pWarm := rt / (1 + rt)
		if r.rng.Float64() < pWarm {
			// Warm: residual TTL is uniform over the TTL window.
			residual := time.Duration(r.rng.Float64() * float64(rec.TTL))
			r.cache[shard][host] = cacheEntry{rec: rec, expires: now.Add(residual)}
			return Result{Record: rec, Latency: jitter(r.cfg.ClientRTT), CacheHit: true}, nil
		}
	}

	// Miss: recurse upstream, then cache.
	lat := jitter(r.cfg.ClientRTT + r.cfg.UpstreamTime)
	r.cache[shard][host] = cacheEntry{rec: rec, expires: now.Add(rec.TTL)}
	return Result{Record: rec, Latency: lat, CacheHit: false}, nil
}

// Flush drops all cached entries.
func (r *Resolver) Flush() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := range r.cache {
		r.cache[i] = make(map[string]cacheEntry)
	}
}

// CacheSize returns the number of live entries across shards.
func (r *Resolver) CacheSize() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, m := range r.cache {
		n += len(m)
	}
	return n
}

// HitRateProbe issues two consecutive queries for each host and labels the
// first query a cache hit when its latency is within threshold of the
// second's — the paper's measurement method (§5.3). It returns the
// fraction of hosts whose first query was labelled a hit.
func HitRateProbe(r *Resolver, hosts []string, popularity func(host string) float64, threshold time.Duration) float64 {
	if len(hosts) == 0 {
		return 0
	}
	if threshold <= 0 {
		threshold = 20 * time.Millisecond
	}
	hits := 0
	for _, h := range hosts {
		pop := 0.0
		if popularity != nil {
			pop = popularity(h)
		}
		first, err1 := r.Resolve(h, pop)
		second, err2 := r.Resolve(h, pop)
		if err1 != nil || err2 != nil {
			continue
		}
		if first.Latency-second.Latency < threshold {
			hits++
		}
	}
	return float64(hits) / float64(len(hosts))
}

// ZipfPopularity returns a popularity function assigning rank-ordered
// hosts a 1/rank^s popularity normalized to (0,1].
func ZipfPopularity(ranked []string, s float64) func(string) float64 {
	if s <= 0 {
		s = 0.9
	}
	m := make(map[string]float64, len(ranked))
	for i, h := range ranked {
		m[h] = math.Pow(float64(i+1), -s)
	}
	return func(h string) float64 { return m[h] }
}
