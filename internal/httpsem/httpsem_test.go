package httpsem

import (
	"testing"
	"time"
)

func TestParseCacheControl(t *testing.T) {
	d := ParseCacheControl("public, max-age=86400, stale-while-revalidate=60")
	if !d.Public || !d.HasMaxAge || d.MaxAge != 86400*time.Second || d.StaleWhileReval != time.Minute {
		t.Errorf("directives = %+v", d)
	}
	d = ParseCacheControl("no-store")
	if !d.NoStore {
		t.Error("no-store not parsed")
	}
	d = ParseCacheControl("private, max-age=0, must-revalidate")
	if !d.Private || !d.HasMaxAge || d.MaxAge != 0 || !d.MustRevalidate {
		t.Errorf("directives = %+v", d)
	}
	d = ParseCacheControl(`s-maxage="120", immutable`)
	if !d.HasSMaxAge || d.SMaxAge != 120*time.Second || !d.Immutable {
		t.Errorf("directives = %+v", d)
	}
	// Malformed values are ignored.
	d = ParseCacheControl("max-age=banana, no-cache")
	if d.HasMaxAge || !d.NoCache {
		t.Errorf("directives = %+v", d)
	}
}

func TestCacheable(t *testing.T) {
	cases := []struct {
		name string
		r    Response
		want bool
	}{
		{"plain 200 GET", Response{Method: "GET", Status: 200}, true},
		{"max-age", Response{Method: "GET", Status: 200, CacheControl: "public, max-age=86400"}, true},
		{"no-store", Response{Method: "GET", Status: 200, CacheControl: "no-store"}, false},
		{"no-cache", Response{Method: "GET", Status: 200, CacheControl: "no-cache"}, false},
		{"max-age=0", Response{Method: "GET", Status: 200, CacheControl: "private, max-age=0"}, false},
		{"s-maxage rescues max-age=0", Response{Method: "GET", Status: 200, CacheControl: "max-age=0, s-maxage=60"}, true},
		{"POST", Response{Method: "POST", Status: 200}, false},
		{"HEAD ok", Response{Method: "HEAD", Status: 200}, true},
		{"204", Response{Method: "GET", Status: 204}, true},
		{"500", Response{Method: "GET", Status: 500}, false},
		{"302", Response{Method: "GET", Status: 302}, false},
		{"301", Response{Method: "GET", Status: 301}, true},
		{"404", Response{Method: "GET", Status: 404}, true},
		{"pragma no-cache", Response{Method: "GET", Status: 200, Pragma: "no-cache"}, false},
		{"pragma ignored when CC present", Response{Method: "GET", Status: 200, Pragma: "no-cache", CacheControl: "max-age=60"}, true},
		{"private heuristic", Response{Method: "GET", Status: 200, CacheControl: "private"}, false},
		{"immutable", Response{Method: "GET", Status: 200, CacheControl: "immutable"}, true},
		{"expires 0", Response{Method: "GET", Status: 200, Expires: "0"}, false},
		{"future expires", Response{Method: "GET", Status: 200,
			Expires: time.Now().Add(time.Hour).UTC().Format(time.RFC1123), Date: time.Now().UTC().Format(time.RFC1123)}, true},
		{"past expires", Response{Method: "GET", Status: 200,
			Expires: "Mon, 02 Jan 2006 15:04:05 UTC", Date: "Mon, 02 Jan 2006 16:04:05 UTC"}, false},
	}
	for _, c := range cases {
		if got := Cacheable(c.r); got != c.want {
			t.Errorf("%s: Cacheable = %v, want %v", c.name, got, c.want)
		}
	}
}
