package httpsem

import "testing"

func TestETagMatch(t *testing.T) {
	cases := []struct {
		inm, etag string
		want      bool
	}{
		{`"abc"`, `"abc"`, true},
		{`"abc"`, `"abcd"`, false},
		{`*`, `"anything"`, true},
		{`*`, ``, false}, // no validator: nothing to match
		{`"x", "y", "abc"`, `"abc"`, true},
		{`"x","y"`, `"abc"`, false},
		// Weak comparison: W/ is ignored on either side (§2.3.2).
		{`W/"abc"`, `"abc"`, true},
		{`"abc"`, `W/"abc"`, true},
		{`W/"abc"`, `W/"abc"`, true},
		// Content-coding variants are distinct entity-tags: the gzip
		// representation's tag must not validate the identity one, and
		// vice versa — the Vary: Accept-Encoding contract hisparserve
		// relies on.
		{`"abc"`, `"abc-gzip"`, false},
		{`"abc-gzip"`, `"abc"`, false},
		{`"abc-gzip"`, `"abc-gzip"`, true},
		// Unquoted junk never matches a quoted tag.
		{`abc`, `"abc"`, false},
	}
	for _, c := range cases {
		if got := ETagMatch(c.inm, c.etag); got != c.want {
			t.Errorf("ETagMatch(%q, %q) = %v, want %v", c.inm, c.etag, got, c.want)
		}
	}
}

func TestNotModifiedSince(t *testing.T) {
	const (
		older = "Thu, 12 Mar 2020 00:00:00 GMT"
		newer = "Thu, 19 Mar 2020 00:00:00 GMT"
	)
	cases := []struct {
		ims, lm string
		want    bool
	}{
		{newer, older, true},  // unchanged since the client's copy
		{older, older, true},  // exact match is unchanged
		{older, newer, false}, // modified after the client's copy
		{"garbage", older, false},
		{newer, "garbage", false},
		{"", older, false},
		{newer, "", false},
	}
	for _, c := range cases {
		if got := NotModifiedSince(c.ims, c.lm); got != c.want {
			t.Errorf("NotModifiedSince(%q, %q) = %v, want %v", c.ims, c.lm, got, c.want)
		}
	}
}

func TestCheckNotModifiedPrecedence(t *testing.T) {
	const (
		etag  = `"abc"`
		lm    = "Thu, 12 Mar 2020 00:00:00 GMT"
		later = "Thu, 19 Mar 2020 00:00:00 GMT"
	)
	// If-None-Match present and matching → 304 regardless of IMS.
	if !CheckNotModified(etag, "", etag, lm) {
		t.Error("matching If-None-Match should be not-modified")
	}
	// If-None-Match present but MISSING the tag → full response, even
	// when If-Modified-Since alone would have said 304 (§6: IMS ignored).
	if CheckNotModified(`"other"`, later, etag, lm) {
		t.Error("non-matching If-None-Match must win over a matching If-Modified-Since")
	}
	// No If-None-Match → If-Modified-Since decides.
	if !CheckNotModified("", later, etag, lm) {
		t.Error("matching If-Modified-Since should be not-modified")
	}
	if CheckNotModified("", "", etag, lm) {
		t.Error("unconditional request is never not-modified")
	}
}
