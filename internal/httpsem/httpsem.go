// Package httpsem implements the HTTP caching semantics the study uses to
// count cacheable objects (§5.1): a practical subset of RFC 7234 keyed on
// request method, response status, and Cache-Control / Expires / Pragma
// headers — the same signal set the MDN "cacheable" definition the paper
// cites describes.
package httpsem

import (
	"strconv"
	"strings"
	"time"
)

// cacheableStatus lists response codes cacheable by default (RFC 7231
// §6.1).
var cacheableStatus = map[int]bool{
	200: true, 203: true, 204: true, 206: true, 300: true,
	301: true, 404: true, 405: true, 410: true, 414: true, 501: true,
}

// Directives is a parsed Cache-Control header.
type Directives struct {
	NoStore         bool
	NoCache         bool
	Private         bool
	Public          bool
	MaxAge          time.Duration
	HasMaxAge       bool
	SMaxAge         time.Duration
	HasSMaxAge      bool
	MustRevalidate  bool
	Immutable       bool
	StaleWhileReval time.Duration
}

// ParseCacheControl parses a Cache-Control header value.
func ParseCacheControl(v string) Directives {
	var d Directives
	for _, part := range strings.Split(v, ",") {
		part = strings.TrimSpace(strings.ToLower(part))
		if part == "" {
			continue
		}
		key, val, hasVal := strings.Cut(part, "=")
		key = strings.TrimSpace(key)
		val = strings.Trim(strings.TrimSpace(val), `"`)
		switch key {
		case "no-store":
			d.NoStore = true
		case "no-cache":
			d.NoCache = true
		case "private":
			d.Private = true
		case "public":
			d.Public = true
		case "must-revalidate":
			d.MustRevalidate = true
		case "immutable":
			d.Immutable = true
		case "max-age":
			if hasVal {
				if secs, err := strconv.Atoi(val); err == nil {
					d.MaxAge = time.Duration(secs) * time.Second
					d.HasMaxAge = true
				}
			}
		case "s-maxage":
			if hasVal {
				if secs, err := strconv.Atoi(val); err == nil {
					d.SMaxAge = time.Duration(secs) * time.Second
					d.HasSMaxAge = true
				}
			}
		case "stale-while-revalidate":
			if hasVal {
				if secs, err := strconv.Atoi(val); err == nil {
					d.StaleWhileReval = time.Duration(secs) * time.Second
				}
			}
		}
	}
	return d
}

// Response is the minimal response view the classifier and the browser
// cache need.
type Response struct {
	Method       string // request method
	Status       int
	CacheControl string
	Pragma       string
	Expires      string // raw Expires header
	Date         string // raw Date header
	Age          string // raw Age header (seconds spent in upstream caches)
	ETag         string // entity validator, verbatim (quotes included)
	LastModified string // raw Last-Modified header
}

// Cacheable reports whether the response may be stored by a shared or
// private cache, per the study's definition of a cacheable object.
func Cacheable(r Response) bool {
	m := strings.ToUpper(r.Method)
	if m != "" && m != "GET" && m != "HEAD" {
		return false
	}
	if !cacheableStatus[r.Status] {
		return false
	}
	d := ParseCacheControl(r.CacheControl)
	switch {
	case d.NoStore:
		return false
	case d.NoCache:
		// Storable but must revalidate every use; the study counts these
		// as non-cacheable since they cannot be served without a round
		// trip.
		return false
	case d.HasMaxAge && d.MaxAge <= 0 && !d.HasSMaxAge:
		return false
	case pragmaNoCache(r):
		return false
	}
	if d.HasMaxAge || d.HasSMaxAge || d.Public || d.Immutable {
		return true
	}
	if r.Expires != "" {
		exp, ok := parseHTTPDate(r.Expires)
		if !ok {
			// Historical servers send "0" or malformed dates: treat as
			// already expired.
			return false
		}
		if r.Date != "" {
			if dt, ok := parseHTTPDate(r.Date); ok {
				return exp.After(dt)
			}
		}
		// No usable Date reference. RFC 7234 would fall back to receipt
		// time, but a wall-clock read here would make the classification
		// of a recorded response depend on when the analysis runs. A
		// valid Expires without a Date still signals explicit freshness
		// intent, so count the response cacheable.
		return true
	}
	// Heuristic freshness (RFC 7234 §4.2.2): responses without explicit
	// freshness are cacheable by default for cacheable statuses.
	return !d.Private
}

// pragmaNoCache reports the HTTP/1.0 no-cache escape hatch: it only
// counts when no Cache-Control header overrides it.
func pragmaNoCache(r Response) bool {
	return strings.Contains(strings.ToLower(r.Pragma), "no-cache") && r.CacheControl == ""
}

// parseHTTPDate parses an HTTP date header. The study's servers emit
// RFC 1123 exclusively (the http.TimeFormat shape), so that is the one
// layout accepted; anything else is the malformed-date case callers
// treat as "already expired".
func parseHTTPDate(v string) (time.Time, bool) {
	t, err := time.Parse(time.RFC1123, v)
	return t, err == nil
}
