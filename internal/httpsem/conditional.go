package httpsem

// Conditional-request evaluation (RFC 7232): the one shared
// implementation behind every server in the tree — webserve's synthetic
// origins and hisparserve's control plane both delegate here, so a GET
// carrying If-None-Match / If-Modified-Since is answered identically no
// matter which server receives it.

import "strings"

// ETagMatch reports whether the If-None-Match header value matches etag.
// Per RFC 7232 §3.2 the header is "*" or a comma-separated list of
// entity-tags; If-None-Match uses the *weak* comparison (§2.3.2), so W/
// prefixes are ignored on both sides. Both sides keep their quotes:
// `"abc"` matches `W/"abc"` but not `"abc-gzip"` — a content-coded
// variant (Vary: Accept-Encoding) carries a different entity-tag and must
// never validate against the identity representation's tag.
func ETagMatch(ifNoneMatch, etag string) bool {
	if etag == "" {
		return false
	}
	want := weakTrim(etag)
	for _, part := range strings.Split(ifNoneMatch, ",") {
		part = strings.TrimSpace(part)
		if part == "*" {
			return true
		}
		if weakTrim(part) == want {
			return true
		}
	}
	return false
}

// weakTrim strips the weakness prefix from an entity-tag.
func weakTrim(tag string) string { return strings.TrimPrefix(tag, "W/") }

// NotModifiedSince reports whether a resource whose Last-Modified is
// lastModified is unchanged at the client's If-Modified-Since time:
// true when lastModified <= ifModifiedSince. Malformed or absent dates
// on either side report false (the request is answered in full).
func NotModifiedSince(ifModifiedSince, lastModified string) bool {
	lm, ok1 := parseHTTPDate(lastModified)
	since, ok2 := parseHTTPDate(ifModifiedSince)
	return ok1 && ok2 && !lm.After(since)
}

// CheckNotModified evaluates a conditional GET/HEAD against the selected
// representation's validators and reports whether the server should
// answer 304. If-None-Match, when present, takes precedence and
// If-Modified-Since is ignored (RFC 7232 §6 evaluation order).
func CheckNotModified(ifNoneMatch, ifModifiedSince, etag, lastModified string) bool {
	if ifNoneMatch != "" {
		return ETagMatch(ifNoneMatch, etag)
	}
	if ifModifiedSince != "" {
		return NotModifiedSince(ifModifiedSince, lastModified)
	}
	return false
}
