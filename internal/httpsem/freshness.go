package httpsem

import (
	"strconv"
	"strings"
	"time"
)

// HeuristicFraction is the RFC 7234 §4.2.2 heuristic freshness factor:
// responses without explicit freshness stay fresh for this fraction of
// the time since they were last modified (the "10% of Date −
// Last-Modified" rule browsers ship).
const HeuristicFraction = 0.1

// Freshness is one response's computed caching policy as a *private*
// (browser) cache sees it: whether it may be stored, how long it stays
// fresh, and which validators it carries for conditional revalidation.
// It is the single shared parse behind both the study's Cacheable
// classifier and the browser cache in internal/browser.
type Freshness struct {
	// Storable reports whether a private cache may store the response
	// (method, status, and no-store permitting; `private` bars only
	// shared caches and is storable here).
	Storable bool
	// AlwaysRevalidate marks responses that may be stored but never
	// served without a successful revalidation: no-cache, or the
	// HTTP/1.0 Pragma equivalent.
	AlwaysRevalidate bool
	// Lifetime is the freshness lifetime (RFC 7234 §4.2): explicit
	// max-age wins, then Expires − Date, then the §4.2.2 heuristic.
	// Zero means stale on arrival.
	Lifetime time.Duration
	// Heuristic is set when Lifetime came from the §4.2.2 heuristic.
	Heuristic bool
	// InitialAge is the Age header: time already spent in upstream
	// caches, counted against Lifetime.
	InitialAge time.Duration
	// ETag and LastModified are the response's validators, verbatim.
	ETag         string
	LastModified string
}

// HasValidator reports whether a conditional request can be built.
func (f *Freshness) HasValidator() bool { return f.ETag != "" || f.LastModified != "" }

// FreshAt reports whether a copy stored at storedAt may still be served
// without revalidation at now.
func (f *Freshness) FreshAt(storedAt, now time.Time) bool {
	if f.AlwaysRevalidate {
		return false
	}
	return now.Sub(storedAt)+f.InitialAge < f.Lifetime
}

// ComputeFreshness derives the private-cache policy of a response. It
// shares every header parse (Cache-Control directives, HTTP dates, the
// Pragma escape hatch) with Cacheable; the two differ only in policy —
// Cacheable answers the study's shared-or-private counting question,
// ComputeFreshness answers what the simulated browser may do.
func ComputeFreshness(r Response) Freshness {
	f := Freshness{ETag: r.ETag, LastModified: r.LastModified}
	m := strings.ToUpper(r.Method)
	if m != "" && m != "GET" && m != "HEAD" {
		return f
	}
	if !cacheableStatus[r.Status] {
		return f
	}
	d := ParseCacheControl(r.CacheControl)
	if d.NoStore {
		return f
	}
	f.Storable = true
	f.AlwaysRevalidate = d.NoCache || pragmaNoCache(r)

	respDate, haveDate := parseHTTPDate(r.Date)
	switch {
	case d.HasMaxAge:
		// A private cache uses max-age and ignores s-maxage.
		f.Lifetime = d.MaxAge
	case r.Expires != "":
		// Expires − Date; a malformed Expires (historical "0") or a
		// missing Date means no usable explicit lifetime.
		if exp, ok := parseHTTPDate(r.Expires); ok && haveDate {
			f.Lifetime = exp.Sub(respDate)
		}
	case r.LastModified != "":
		if lm, ok := parseHTTPDate(r.LastModified); ok && haveDate && respDate.After(lm) {
			f.Lifetime = time.Duration(HeuristicFraction * float64(respDate.Sub(lm)))
			f.Heuristic = true
		}
	}
	if f.Lifetime < 0 {
		f.Lifetime = 0
	}
	if secs, err := strconv.Atoi(strings.TrimSpace(r.Age)); err == nil && secs > 0 {
		f.InitialAge = time.Duration(secs) * time.Second
	}
	return f
}
