package httpsem

import (
	"testing"
	"time"
)

func TestComputeFreshness(t *testing.T) {
	date := "Thu, 12 Mar 2020 09:00:00 GMT"
	cases := []struct {
		name     string
		r        Response
		storable bool
		always   bool
		lifetime time.Duration
		heur     bool
		age      time.Duration
	}{
		{
			name:     "max-age",
			r:        Response{Status: 200, CacheControl: "public, max-age=3600"},
			storable: true, lifetime: time.Hour,
		},
		{
			name:     "max-age with upstream age",
			r:        Response{Status: 200, CacheControl: "max-age=3600", Age: "600"},
			storable: true, lifetime: time.Hour, age: 10 * time.Minute,
		},
		{
			name:     "private is storable in a private cache",
			r:        Response{Status: 200, CacheControl: "private, max-age=60"},
			storable: true, lifetime: time.Minute,
		},
		{
			name: "no-store",
			r:    Response{Status: 200, CacheControl: "no-store"},
		},
		{
			name:     "no-cache stores but always revalidates",
			r:        Response{Status: 200, CacheControl: "no-cache"},
			storable: true, always: true,
		},
		{
			name:     "pragma no-cache without cache-control",
			r:        Response{Status: 200, Pragma: "no-cache"},
			storable: true, always: true,
		},
		{
			name: "pragma ignored when cache-control present",
			r: Response{Status: 200, Pragma: "no-cache",
				CacheControl: "max-age=60"},
			storable: true, lifetime: time.Minute,
		},
		{
			name: "expires minus date",
			r: Response{Status: 200, Date: date,
				Expires: "Thu, 12 Mar 2020 10:00:00 GMT"},
			storable: true, lifetime: time.Hour,
		},
		{
			name: "max-age beats expires",
			r: Response{Status: 200, CacheControl: "max-age=60", Date: date,
				Expires: "Thu, 12 Mar 2020 10:00:00 GMT"},
			storable: true, lifetime: time.Minute,
		},
		{
			name:     "malformed expires means stale",
			r:        Response{Status: 200, Date: date, Expires: "0"},
			storable: true,
		},
		{
			name: "expires in the past clamps to zero",
			r: Response{Status: 200, Date: date,
				Expires: "Thu, 12 Mar 2020 08:00:00 GMT"},
			storable: true,
		},
		{
			name: "heuristic 10 percent of date minus last-modified",
			r: Response{Status: 200, Date: date,
				LastModified: "Mon, 02 Mar 2020 09:00:00 GMT"},
			storable: true, lifetime: 24 * time.Hour, heur: true,
		},
		{
			name:     "post is not storable",
			r:        Response{Method: "POST", Status: 200, CacheControl: "max-age=60"},
			storable: false,
		},
		{
			name:     "uncacheable status",
			r:        Response{Status: 500, CacheControl: "max-age=60"},
			storable: false,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := ComputeFreshness(tc.r)
			if f.Storable != tc.storable {
				t.Errorf("Storable = %v, want %v", f.Storable, tc.storable)
			}
			if f.AlwaysRevalidate != tc.always {
				t.Errorf("AlwaysRevalidate = %v, want %v", f.AlwaysRevalidate, tc.always)
			}
			if f.Lifetime != tc.lifetime {
				t.Errorf("Lifetime = %v, want %v", f.Lifetime, tc.lifetime)
			}
			if f.Heuristic != tc.heur {
				t.Errorf("Heuristic = %v, want %v", f.Heuristic, tc.heur)
			}
			if f.InitialAge != tc.age {
				t.Errorf("InitialAge = %v, want %v", f.InitialAge, tc.age)
			}
		})
	}
}

func TestFreshAt(t *testing.T) {
	stored := time.Date(2020, 3, 12, 9, 0, 0, 0, time.UTC)
	f := Freshness{Storable: true, Lifetime: time.Hour}
	if !f.FreshAt(stored, stored.Add(59*time.Minute)) {
		t.Error("should be fresh inside the lifetime")
	}
	if f.FreshAt(stored, stored.Add(time.Hour)) {
		t.Error("should be stale at exactly the lifetime")
	}
	f.InitialAge = 30 * time.Minute
	if f.FreshAt(stored, stored.Add(45*time.Minute)) {
		t.Error("upstream age must count against the lifetime")
	}
	f = Freshness{Storable: true, AlwaysRevalidate: true, Lifetime: time.Hour}
	if f.FreshAt(stored, stored.Add(time.Second)) {
		t.Error("no-cache responses are never served without revalidation")
	}
}

func TestHasValidator(t *testing.T) {
	if (&Freshness{}).HasValidator() {
		t.Error("empty freshness has no validator")
	}
	if !(&Freshness{ETag: `"x"`}).HasValidator() {
		t.Error("ETag is a validator")
	}
	if !(&Freshness{LastModified: "Thu, 12 Mar 2020 09:00:00 GMT"}).HasValidator() {
		t.Error("Last-Modified is a validator")
	}
}
