// Prometheus text exposition (format version 0.0.4) for a Snapshot.
// The output is fully deterministic — families sorted by name, series
// sorted by canonical key, histogram buckets in ascending le order,
// shortest-round-trip float formatting — so two snapshots of the same
// state render byte-identical pages on any GOMAXPROCS.
package runstats

import (
	"io"
	"sort"
	"strconv"
	"strings"
)

// promSeries is one emitted series block: a single sample line for
// counters and gauges, the bucket/_sum/_count block for histograms.
type promSeries struct {
	key   string // canonical series key, the intra-family sort order
	lines []string
}

// promFamily groups the series of one exposition metric family.
type promFamily struct {
	typ    string // counter | gauge | histogram
	orig   []string
	series []promSeries
}

// ContentTypePrometheus is the Content-Type of the exposition format.
const ContentTypePrometheus = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus renders the snapshot in the Prometheus text
// exposition format. Dotted runstats names are sanitized to underscore
// form (`loads.err.timeout` → `loads_err_timeout`), counters gain the
// `_total` suffix, and histograms expand into cumulative `_bucket`
// series plus `_sum`/`_count`.
func (snap Snapshot) WritePrometheus(w io.Writer) error {
	fams := make(map[string]*promFamily)
	add := func(name, typ string, s promSeries) {
		fam := sanitizeMetricName(name)
		if typ == "counter" && !strings.HasSuffix(fam, "_total") {
			fam += "_total"
		}
		f := fams[fam]
		for f != nil && f.typ != typ {
			// Two runstats names sanitized into one family with clashing
			// types; keep both visible under a disambiguated name.
			fam += "_" + typ
			f = fams[fam]
		}
		if f == nil {
			f = &promFamily{typ: typ}
			fams[fam] = f
		}
		f.orig = append(f.orig, name)
		// The series lines carry the family name; patch the placeholder.
		for i, l := range s.lines {
			s.lines[i] = strings.Replace(l, "\x00", fam, 1)
		}
		f.series = append(f.series, s)
	}

	for key, v := range snap.Counters {
		id := snap.id(key)
		add(id.name, "counter", promSeries{
			key:   key,
			lines: []string{"\x00" + promLabels(id.labels, "", 0) + " " + strconv.FormatInt(v, 10)},
		})
	}
	for key, v := range snap.Gauges {
		id := snap.id(key)
		add(id.name, "gauge", promSeries{
			key:   key,
			lines: []string{"\x00" + promLabels(id.labels, "", 0) + " " + formatFloat(v)},
		})
	}
	for key, h := range snap.Histograms {
		id := snap.id(key)
		lines := make([]string, 0, len(h.Buckets)+3)
		var cum int64
		for _, b := range h.Buckets {
			cum += b.Count
			lines = append(lines, "\x00_bucket"+promLabels(id.labels, formatFloat(b.Upper), 1)+" "+
				strconv.FormatInt(cum, 10))
		}
		lines = append(lines,
			"\x00_bucket"+promLabels(id.labels, "+Inf", 1)+" "+strconv.FormatInt(h.Count, 10),
			"\x00_sum"+promLabels(id.labels, "", 0)+" "+formatFloat(h.Sum),
			"\x00_count"+promLabels(id.labels, "", 0)+" "+strconv.FormatInt(h.Count, 10))
		add(id.name, "histogram", promSeries{key: key, lines: lines})
	}

	names := make([]string, 0, len(fams))
	for n := range fams {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, n := range names {
		f := fams[n]
		sort.Strings(f.orig)
		f.orig = dedupSorted(f.orig)
		b.WriteString("# HELP " + n + " runstats series " + strings.Join(f.orig, ", ") + "\n")
		b.WriteString("# TYPE " + n + " " + f.typ + "\n")
		sort.Slice(f.series, func(i, j int) bool { return f.series[i].key < f.series[j].key })
		for _, s := range f.series {
			for _, l := range s.lines {
				b.WriteString(l)
				b.WriteByte('\n')
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// id resolves a snapshot map key back to (name, labels): labeled series
// have a meta entry, unlabeled keys are their own name.
func (snap Snapshot) id(key string) seriesID {
	if id, ok := snap.meta[key]; ok {
		return id
	}
	return seriesID{name: key}
}

// promLabels renders a label block. leMode 1 appends the histogram
// le label (value le); 0 renders just the series labels, or nothing.
func promLabels(labels []Label, le string, leMode int) string {
	if len(labels) == 0 && leMode == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(sanitizeLabelName(l.Key))
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	if leMode == 1 {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(`le="`)
		b.WriteString(le)
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// formatFloat renders the shortest representation that round-trips,
// the conventional exposition float format.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// sanitizeMetricName maps a runstats name onto the exposition grammar
// [a-zA-Z_:][a-zA-Z0-9_:]* — dots and any other byte become '_'.
func sanitizeMetricName(name string) string {
	if name == "" {
		return "_"
	}
	var b strings.Builder
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(c >= '0' && c <= '9' && i > 0)
		if ok {
			b.WriteByte(c)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// sanitizeLabelName maps a label key onto [a-zA-Z_][a-zA-Z0-9_]*.
func sanitizeLabelName(name string) string {
	if name == "" {
		return "_"
	}
	var b strings.Builder
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(c >= '0' && c <= '9' && i > 0)
		if ok {
			b.WriteByte(c)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// dedupSorted removes adjacent duplicates from a sorted slice.
func dedupSorted(in []string) []string {
	out := in[:0]
	for i, s := range in {
		if i == 0 || s != in[i-1] {
			out = append(out, s)
		}
	}
	return out
}
