// Package runstats is a lightweight in-process metrics layer for the
// study runner: named counters, gauges, and log-bucketed histograms. The
// paper's harness ran for weeks against tens of thousands of pages and
// survived on exactly this kind of bookkeeping — how many loads ran, how
// many died and why, how long retries stalled each worker — so the repro
// keeps the same discipline. Everything is concurrency-safe, allocation
// is bounded by the number of distinct metric names, and there are no
// dependencies beyond the standard library.
package runstats

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
)

// bucketsPerDecade sets histogram resolution: values are bucketed by
// log10 with this many sub-divisions per decade, giving ~26% wide
// buckets — coarse, but plenty for run diagnostics.
const bucketsPerDecade = 4

// Label is one dimension on a labeled series (the L suffix methods).
// Keys follow Prometheus label-name rules after sanitization; values
// are free-form strings.
type Label struct {
	Key, Value string
}

// seriesID is the structured identity behind a canonical series key:
// the metric name plus its labels sorted by key.
type seriesID struct {
	name   string
	labels []Label
}

// Set is a collection of named metrics. The zero value is NOT usable;
// call NewSet.
type Set struct {
	mu       sync.Mutex
	counters map[string]int64
	gauges   map[string]float64
	hists    map[string]*histogram
	meta     map[string]seriesID // canonical key → identity, labeled series only
}

// NewSet returns an empty metric set.
func NewSet() *Set {
	return &Set{
		counters: make(map[string]int64),
		gauges:   make(map[string]float64),
		hists:    make(map[string]*histogram),
		meta:     make(map[string]seriesID),
	}
}

// seriesKey canonicalizes (name, labels) into the map key the series
// lives under: `name{k="v",…}` with labels sorted by key and values
// escaped, i.e. the Prometheus series syntax. Unlabeled series keep the
// bare name, so the unlabeled fast paths never pay for this.
func seriesKey(name string, labels []Label) (string, seriesID) {
	if len(labels) == 0 {
		return name, seriesID{name: name}
	}
	ls := make([]Label, len(labels))
	copy(ls, labels)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String(), seriesID{name: name, labels: ls}
}

// escapeLabelValue applies the Prometheus exposition escapes to a label
// value: backslash, double quote, and newline.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// Inc adds delta to the named counter, creating it at zero first.
func (s *Set) Inc(name string, delta int64) {
	s.mu.Lock()
	s.counters[name] += delta
	s.mu.Unlock()
}

// IncL adds delta to the labeled counter series.
func (s *Set) IncL(name string, delta int64, labels ...Label) {
	key, id := seriesKey(name, labels)
	s.mu.Lock()
	if _, ok := s.meta[key]; !ok && len(labels) > 0 {
		s.meta[key] = id
	}
	s.counters[key] += delta
	s.mu.Unlock()
}

// SetGauge records the current value of the named gauge.
func (s *Set) SetGauge(name string, v float64) {
	s.mu.Lock()
	s.gauges[name] = v
	s.mu.Unlock()
}

// SetGaugeL records the current value of the labeled gauge series.
func (s *Set) SetGaugeL(name string, v float64, labels ...Label) {
	key, id := seriesKey(name, labels)
	s.mu.Lock()
	if _, ok := s.meta[key]; !ok && len(labels) > 0 {
		s.meta[key] = id
	}
	s.gauges[key] = v
	s.mu.Unlock()
}

// Observe adds one sample to the named histogram. Non-finite samples are
// dropped; negative ones clamp to zero (durations and counts are the
// only things observed here).
func (s *Set) Observe(name string, v float64) {
	s.ObserveL(name, v)
}

// ObserveL adds one sample to the labeled histogram series, with the
// same clamping rules as Observe.
func (s *Set) ObserveL(name string, v float64, labels ...Label) {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return
	}
	if v < 0 {
		v = 0
	}
	key, id := seriesKey(name, labels)
	s.mu.Lock()
	h := s.hists[key]
	if h == nil {
		h = &histogram{min: math.Inf(1), buckets: make(map[int]int64)}
		s.hists[key] = h
		if len(labels) > 0 {
			s.meta[key] = id
		}
	}
	h.observe(v)
	s.mu.Unlock()
}

// histogram holds log-scale buckets plus exact count/sum/min/max.
type histogram struct {
	count    int64
	sum      float64
	min, max float64
	buckets  map[int]int64 // bucket index → sample count
}

// bucketOf maps a sample to its log-scale bucket index. Zero (and
// sub-1e-9) samples get a dedicated underflow bucket.
func bucketOf(v float64) int {
	if v < 1e-9 {
		return math.MinInt32
	}
	return int(math.Floor(math.Log10(v) * bucketsPerDecade))
}

// bucketUpper is the upper edge of a bucket: samples in bucket i lie in
// (bucketUpper(i-1), bucketUpper(i)].
func bucketUpper(i int) float64 {
	if i == math.MinInt32 {
		return 0
	}
	return math.Pow(10, float64(i+1)/bucketsPerDecade)
}

func (h *histogram) observe(v float64) {
	h.count++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.buckets[bucketOf(v)]++
}

// bucketsSorted flattens the bucket map into ascending upper-edge
// order, once — every quantile (and the Prometheus exposition) then
// walks the same slice instead of re-sorting indices per call.
func (h *histogram) bucketsSorted() []HistBucket {
	idxs := make([]int, 0, len(h.buckets))
	for i := range h.buckets {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	out := make([]HistBucket, len(idxs))
	for j, i := range idxs {
		out[j] = HistBucket{Upper: bucketUpper(i), Count: h.buckets[i]}
	}
	return out
}

// quantileFrom estimates the q-quantile (0..1) from pre-sorted buckets,
// clamped to the observed min/max so tiny sample counts do not report
// impossible values.
func quantileFrom(bs []HistBucket, count int64, min, max, q float64) float64 {
	if count == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(count)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for _, b := range bs {
		seen += b.Count
		if seen >= rank {
			v := b.Upper
			if v > max {
				v = max
			}
			if v < min {
				v = min
			}
			return v
		}
	}
	return max
}

// HistBucket is one non-empty log-scale bucket: samples ≤ Upper that
// were not counted by a lower bucket (i.e. per-bucket, not cumulative).
type HistBucket struct {
	Upper float64
	Count int64
}

// HistSnapshot is the exported view of one histogram.
type HistSnapshot struct {
	Count         int64
	Sum           float64
	Min, Max      float64
	Mean          float64
	P50, P90, P99 float64
	Buckets       []HistBucket // ascending upper edge, non-empty buckets only
}

// Snapshot is a point-in-time copy of every metric in a Set. It is
// detached: mutating the Set afterwards does not change it. Map keys
// are canonical series keys (`name{k="v"}` for labeled series).
type Snapshot struct {
	Counters   map[string]int64
	Gauges     map[string]float64
	Histograms map[string]HistSnapshot

	// meta maps labeled series keys back to (name, sorted labels); the
	// Prometheus exposition needs the split, Render does not.
	meta map[string]seriesID
}

// Snapshot copies the current state of every metric.
func (s *Set) Snapshot() Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	snap := Snapshot{
		Counters:   make(map[string]int64, len(s.counters)),
		Gauges:     make(map[string]float64, len(s.gauges)),
		Histograms: make(map[string]HistSnapshot, len(s.hists)),
		meta:       make(map[string]seriesID, len(s.meta)),
	}
	for k, v := range s.counters {
		snap.Counters[k] = v
	}
	for k, v := range s.gauges {
		snap.Gauges[k] = v
	}
	for k, id := range s.meta {
		snap.meta[k] = id
	}
	for k, h := range s.hists {
		bs := h.bucketsSorted()
		hs := HistSnapshot{Count: h.count, Sum: h.sum, Min: h.min, Max: h.max, Buckets: bs}
		if h.count > 0 {
			hs.Mean = h.sum / float64(h.count)
			hs.P50 = quantileFrom(bs, h.count, h.min, h.max, 0.50)
			hs.P90 = quantileFrom(bs, h.count, h.min, h.max, 0.90)
			hs.P99 = quantileFrom(bs, h.count, h.min, h.max, 0.99)
		} else {
			hs.Min = 0
		}
		snap.Histograms[k] = hs
	}
	return snap
}

// Counter returns the named counter's current value (0 if absent).
func (s *Set) Counter(name string) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.counters[name]
}

// CounterL returns the labeled counter series' current value (0 if
// absent).
func (s *Set) CounterL(name string, labels ...Label) int64 {
	key, _ := seriesKey(name, labels)
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.counters[key]
}

// Gauge returns the named gauge's current value (0 if absent).
func (s *Set) Gauge(name string) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.gauges[name]
}

// Render writes the snapshot as an aligned, name-sorted report — the
// shape cmd/webmeasure and cmd/diag print after a run.
func (snap Snapshot) Render(w io.Writer) {
	names := func(n int) []string { return make([]string, 0, n) }

	if len(snap.Counters) > 0 {
		fmt.Fprintf(w, "counters:\n")
		ks := names(len(snap.Counters))
		for k := range snap.Counters {
			ks = append(ks, k)
		}
		sort.Strings(ks)
		for _, k := range ks {
			fmt.Fprintf(w, "  %-36s %d\n", k, snap.Counters[k])
		}
	}
	if len(snap.Gauges) > 0 {
		fmt.Fprintf(w, "gauges:\n")
		ks := names(len(snap.Gauges))
		for k := range snap.Gauges {
			ks = append(ks, k)
		}
		sort.Strings(ks)
		for _, k := range ks {
			// %.6g, not %.3f: gauges hold byte counts and RSS peaks in the
			// gigabytes, which fixed-point mangles into walls of digits.
			fmt.Fprintf(w, "  %-36s %.6g\n", k, snap.Gauges[k])
		}
	}
	if len(snap.Histograms) > 0 {
		fmt.Fprintf(w, "histograms:\n")
		ks := names(len(snap.Histograms))
		for k := range snap.Histograms {
			ks = append(ks, k)
		}
		sort.Strings(ks)
		for _, k := range ks {
			h := snap.Histograms[k]
			fmt.Fprintf(w, "  %-36s n=%d mean=%.3g p50=%.3g p90=%.3g p99=%.3g max=%.3g\n",
				k, h.Count, h.Mean, h.P50, h.P90, h.P99, h.Max)
		}
	}
}

// Render is a convenience that snapshots and renders in one step.
func (s *Set) Render(w io.Writer) { s.Snapshot().Render(w) }
