// Package runstats is a lightweight in-process metrics layer for the
// study runner: named counters, gauges, and log-bucketed histograms. The
// paper's harness ran for weeks against tens of thousands of pages and
// survived on exactly this kind of bookkeeping — how many loads ran, how
// many died and why, how long retries stalled each worker — so the repro
// keeps the same discipline. Everything is concurrency-safe, allocation
// is bounded by the number of distinct metric names, and there are no
// dependencies beyond the standard library.
package runstats

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
)

// bucketsPerDecade sets histogram resolution: values are bucketed by
// log10 with this many sub-divisions per decade, giving ~26% wide
// buckets — coarse, but plenty for run diagnostics.
const bucketsPerDecade = 4

// Set is a collection of named metrics. The zero value is NOT usable;
// call NewSet.
type Set struct {
	mu       sync.Mutex
	counters map[string]int64
	gauges   map[string]float64
	hists    map[string]*histogram
}

// NewSet returns an empty metric set.
func NewSet() *Set {
	return &Set{
		counters: make(map[string]int64),
		gauges:   make(map[string]float64),
		hists:    make(map[string]*histogram),
	}
}

// Inc adds delta to the named counter, creating it at zero first.
func (s *Set) Inc(name string, delta int64) {
	s.mu.Lock()
	s.counters[name] += delta
	s.mu.Unlock()
}

// SetGauge records the current value of the named gauge.
func (s *Set) SetGauge(name string, v float64) {
	s.mu.Lock()
	s.gauges[name] = v
	s.mu.Unlock()
}

// Observe adds one sample to the named histogram. Non-finite samples are
// dropped; negative ones clamp to zero (durations and counts are the
// only things observed here).
func (s *Set) Observe(name string, v float64) {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return
	}
	if v < 0 {
		v = 0
	}
	s.mu.Lock()
	h := s.hists[name]
	if h == nil {
		h = &histogram{min: math.Inf(1), buckets: make(map[int]int64)}
		s.hists[name] = h
	}
	h.observe(v)
	s.mu.Unlock()
}

// histogram holds log-scale buckets plus exact count/sum/min/max.
type histogram struct {
	count    int64
	sum      float64
	min, max float64
	buckets  map[int]int64 // bucket index → sample count
}

// bucketOf maps a sample to its log-scale bucket index. Zero (and
// sub-1e-9) samples get a dedicated underflow bucket.
func bucketOf(v float64) int {
	if v < 1e-9 {
		return math.MinInt32
	}
	return int(math.Floor(math.Log10(v) * bucketsPerDecade))
}

// bucketUpper is the upper edge of a bucket: samples in bucket i lie in
// (bucketUpper(i-1), bucketUpper(i)].
func bucketUpper(i int) float64 {
	if i == math.MinInt32 {
		return 0
	}
	return math.Pow(10, float64(i+1)/bucketsPerDecade)
}

func (h *histogram) observe(v float64) {
	h.count++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.buckets[bucketOf(v)]++
}

// quantile estimates the q-quantile (0..1) from the bucket upper edges,
// clamped to the observed min/max so tiny sample counts do not report
// impossible values.
func (h *histogram) quantile(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	idxs := make([]int, 0, len(h.buckets))
	for i := range h.buckets {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	rank := int64(math.Ceil(q * float64(h.count)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for _, i := range idxs {
		seen += h.buckets[i]
		if seen >= rank {
			v := bucketUpper(i)
			if v > h.max {
				v = h.max
			}
			if v < h.min {
				v = h.min
			}
			return v
		}
	}
	return h.max
}

// HistSnapshot is the exported view of one histogram.
type HistSnapshot struct {
	Count         int64
	Sum           float64
	Min, Max      float64
	Mean          float64
	P50, P90, P99 float64
}

// Snapshot is a point-in-time copy of every metric in a Set. It is
// detached: mutating the Set afterwards does not change it.
type Snapshot struct {
	Counters   map[string]int64
	Gauges     map[string]float64
	Histograms map[string]HistSnapshot
}

// Snapshot copies the current state of every metric.
func (s *Set) Snapshot() Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	snap := Snapshot{
		Counters:   make(map[string]int64, len(s.counters)),
		Gauges:     make(map[string]float64, len(s.gauges)),
		Histograms: make(map[string]HistSnapshot, len(s.hists)),
	}
	for k, v := range s.counters {
		snap.Counters[k] = v
	}
	for k, v := range s.gauges {
		snap.Gauges[k] = v
	}
	for k, h := range s.hists {
		hs := HistSnapshot{Count: h.count, Sum: h.sum, Min: h.min, Max: h.max}
		if h.count > 0 {
			hs.Mean = h.sum / float64(h.count)
			hs.P50 = h.quantile(0.50)
			hs.P90 = h.quantile(0.90)
			hs.P99 = h.quantile(0.99)
		} else {
			hs.Min = 0
		}
		snap.Histograms[k] = hs
	}
	return snap
}

// Counter returns the named counter's current value (0 if absent).
func (s *Set) Counter(name string) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.counters[name]
}

// Gauge returns the named gauge's current value (0 if absent).
func (s *Set) Gauge(name string) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.gauges[name]
}

// Render writes the snapshot as an aligned, name-sorted report — the
// shape cmd/webmeasure and cmd/diag print after a run.
func (snap Snapshot) Render(w io.Writer) {
	names := func(n int) []string { return make([]string, 0, n) }

	if len(snap.Counters) > 0 {
		fmt.Fprintf(w, "counters:\n")
		ks := names(len(snap.Counters))
		for k := range snap.Counters {
			ks = append(ks, k)
		}
		sort.Strings(ks)
		for _, k := range ks {
			fmt.Fprintf(w, "  %-36s %d\n", k, snap.Counters[k])
		}
	}
	if len(snap.Gauges) > 0 {
		fmt.Fprintf(w, "gauges:\n")
		ks := names(len(snap.Gauges))
		for k := range snap.Gauges {
			ks = append(ks, k)
		}
		sort.Strings(ks)
		for _, k := range ks {
			fmt.Fprintf(w, "  %-36s %.3f\n", k, snap.Gauges[k])
		}
	}
	if len(snap.Histograms) > 0 {
		fmt.Fprintf(w, "histograms:\n")
		ks := names(len(snap.Histograms))
		for k := range snap.Histograms {
			ks = append(ks, k)
		}
		sort.Strings(ks)
		for _, k := range ks {
			h := snap.Histograms[k]
			fmt.Fprintf(w, "  %-36s n=%d mean=%.3g p50=%.3g p90=%.3g p99=%.3g max=%.3g\n",
				k, h.Count, h.Mean, h.P50, h.P90, h.P99, h.Max)
		}
	}
}

// Render is a convenience that snapshots and renders in one step.
func (s *Set) Render(w io.Writer) { s.Snapshot().Render(w) }
