package runstats

import (
	"strconv"
	"strings"
	"testing"
)

func promPage(t *testing.T, s *Set) string {
	t.Helper()
	var b strings.Builder
	if err := s.Snapshot().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

func TestPrometheusCountersAndGauges(t *testing.T) {
	s := NewSet()
	s.Inc("loads.err.timeout", 3)
	s.IncL("http.requests", 2, Label{"code", "200"})
	s.IncL("http.requests", 1, Label{"code", "404"})
	s.SetGauge("worker.0.utilization", 0.75)

	out := promPage(t, s)
	for _, want := range []string{
		"# HELP loads_err_timeout_total runstats series loads.err.timeout\n",
		"# TYPE loads_err_timeout_total counter\n",
		"loads_err_timeout_total 3\n",
		"# TYPE http_requests_total counter\n",
		`http_requests_total{code="200"} 2` + "\n",
		`http_requests_total{code="404"} 1` + "\n",
		"# TYPE worker_0_utilization gauge\n",
		"worker_0_utilization 0.75\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestPrometheusHistogram(t *testing.T) {
	s := NewSet()
	for _, v := range []float64{1, 1, 10, 100} {
		s.Observe("latency.ms", v)
	}
	out := promPage(t, s)
	if !strings.Contains(out, "# TYPE latency_ms histogram\n") {
		t.Fatalf("missing histogram TYPE:\n%s", out)
	}
	if !strings.Contains(out, `latency_ms_bucket{le="+Inf"} 4`) {
		t.Errorf("missing +Inf bucket:\n%s", out)
	}
	if !strings.Contains(out, "latency_ms_sum 112\n") || !strings.Contains(out, "latency_ms_count 4\n") {
		t.Errorf("missing _sum/_count:\n%s", out)
	}
	// Buckets must be cumulative and ascending.
	var prev int64 = -1
	var prevLe float64 = -1
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, `latency_ms_bucket{le="`) || strings.Contains(line, "+Inf") {
			continue
		}
		rest := strings.TrimPrefix(line, `latency_ms_bucket{le="`)
		i := strings.Index(rest, `"} `)
		if i < 0 {
			t.Fatalf("malformed bucket line %q", line)
		}
		le, err1 := strconv.ParseFloat(rest[:i], 64)
		n, err2 := strconv.ParseFloat(rest[i+3:], 64)
		if err1 != nil || err2 != nil {
			t.Fatalf("bucket line %q: %v %v", line, err1, err2)
		}
		if le <= prevLe || int64(n) < prev {
			t.Fatalf("buckets not ascending/cumulative at %q", line)
		}
		prevLe, prev = le, int64(n)
	}
	if prev < 0 {
		t.Fatalf("no finite buckets emitted:\n%s", out)
	}
}

func TestPrometheusDeterministic(t *testing.T) {
	build := func() string {
		s := NewSet()
		s.IncL("http.requests", 1, Label{"code", "200"})
		s.IncL("http.requests", 4, Label{"code", "304"})
		s.Inc("cache.notready", 2)
		s.SetGauge("g.one", 1.5)
		s.Observe("h.ms", 7)
		s.Observe("h.ms", 900)
		var b strings.Builder
		if err := s.Snapshot().WritePrometheus(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	a, b := build(), build()
	if a != b {
		t.Fatalf("exposition not deterministic:\n--- a ---\n%s--- b ---\n%s", a, b)
	}
	// Families must appear in sorted order.
	var fams []string
	for _, line := range strings.Split(a, "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			fams = append(fams, strings.Fields(line)[2])
		}
	}
	for i := 1; i < len(fams); i++ {
		if fams[i] <= fams[i-1] {
			t.Fatalf("families not sorted: %v", fams)
		}
	}
}

func TestPrometheusNameSanitization(t *testing.T) {
	s := NewSet()
	s.Inc("weird-name.1", 1)
	s.IncL("m", 1, Label{"bad-key.x", "v"})
	out := promPage(t, s)
	if !strings.Contains(out, "weird_name_1_total 1\n") {
		t.Errorf("metric name not sanitized:\n%s", out)
	}
	if !strings.Contains(out, `m_total{bad_key_x="v"} 1`) {
		t.Errorf("label name not sanitized:\n%s", out)
	}
}
