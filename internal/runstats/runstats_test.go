package runstats

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCountersAndGauges(t *testing.T) {
	s := NewSet()
	s.Inc("loads.ok", 1)
	s.Inc("loads.ok", 2)
	s.Inc("loads.err.timeout", 1)
	s.SetGauge("worker.0.utilization", 0.75)
	s.SetGauge("worker.0.utilization", 0.5) // gauges overwrite

	if got := s.Counter("loads.ok"); got != 3 {
		t.Errorf("loads.ok = %d, want 3", got)
	}
	if got := s.Counter("never.touched"); got != 0 {
		t.Errorf("absent counter = %d, want 0", got)
	}
	if got := s.Gauge("worker.0.utilization"); got != 0.5 {
		t.Errorf("gauge = %v, want 0.5", got)
	}
}

func TestHistogramStats(t *testing.T) {
	s := NewSet()
	for i := 1; i <= 100; i++ {
		s.Observe("retry.backoff", float64(i))
	}
	h := s.Snapshot().Histograms["retry.backoff"]
	if h.Count != 100 {
		t.Fatalf("count = %d", h.Count)
	}
	if h.Min != 1 || h.Max != 100 {
		t.Errorf("min/max = %v/%v, want 1/100", h.Min, h.Max)
	}
	if h.Mean != 50.5 {
		t.Errorf("mean = %v, want 50.5", h.Mean)
	}
	// Log buckets are ~26% wide; quantiles must land in the right decade.
	if h.P50 < 30 || h.P50 > 80 {
		t.Errorf("p50 = %v, want within a bucket of 50", h.P50)
	}
	if h.P99 < 80 || h.P99 > 100 {
		t.Errorf("p99 = %v, want within a bucket of 99", h.P99)
	}
	if h.P50 > h.P90 || h.P90 > h.P99 {
		t.Errorf("quantiles not monotone: p50=%v p90=%v p99=%v", h.P50, h.P90, h.P99)
	}
}

func TestHistogramEdgeCases(t *testing.T) {
	s := NewSet()
	s.Observe("x", 0)            // underflow bucket
	s.Observe("x", -5)           // clamps to 0
	s.Observe("x", math.NaN())   // dropped
	s.Observe("x", math.Inf(1))  // dropped
	s.Observe("x", math.Inf(-1)) // dropped
	h := s.Snapshot().Histograms["x"]
	if h.Count != 2 {
		t.Fatalf("count = %d, want 2 (zero + clamped)", h.Count)
	}
	if h.Min != 0 || h.Max != 0 || h.P99 != 0 {
		t.Errorf("all-zero histogram: %+v", h)
	}
}

func TestSnapshotIsDetached(t *testing.T) {
	s := NewSet()
	s.Inc("a", 1)
	s.Observe("h", 2)
	snap := s.Snapshot()
	s.Inc("a", 10)
	s.Observe("h", 200)
	if snap.Counters["a"] != 1 {
		t.Error("snapshot counter mutated by later Inc")
	}
	if snap.Histograms["h"].Count != 1 {
		t.Error("snapshot histogram mutated by later Observe")
	}
}

func TestRender(t *testing.T) {
	s := NewSet()
	s.Inc("loads.total", 42)
	s.SetGauge("budget.used", 0.1)
	s.Observe("load.ms", 1500)
	var b strings.Builder
	s.Render(&b)
	out := b.String()
	for _, want := range []string{"counters:", "loads.total", "42", "gauges:", "budget.used", "histograms:", "load.ms", "n=1"} {
		if !strings.Contains(out, want) {
			t.Errorf("render output missing %q:\n%s", want, out)
		}
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := NewSet()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				s.Inc("n", 1)
				s.Observe("v", float64(i))
				s.SetGauge("g", float64(i))
				_ = s.Snapshot()
			}
		}()
	}
	wg.Wait()
	if got := s.Counter("n"); got != 8*500 {
		t.Errorf("n = %d, want %d", got, 8*500)
	}
	if h := s.Snapshot().Histograms["v"]; h.Count != 8*500 {
		t.Errorf("histogram count = %d, want %d", h.Count, 8*500)
	}
}
