package runstats

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCountersAndGauges(t *testing.T) {
	s := NewSet()
	s.Inc("loads.ok", 1)
	s.Inc("loads.ok", 2)
	s.Inc("loads.err.timeout", 1)
	s.SetGauge("worker.0.utilization", 0.75)
	s.SetGauge("worker.0.utilization", 0.5) // gauges overwrite

	if got := s.Counter("loads.ok"); got != 3 {
		t.Errorf("loads.ok = %d, want 3", got)
	}
	if got := s.Counter("never.touched"); got != 0 {
		t.Errorf("absent counter = %d, want 0", got)
	}
	if got := s.Gauge("worker.0.utilization"); got != 0.5 {
		t.Errorf("gauge = %v, want 0.5", got)
	}
}

func TestHistogramStats(t *testing.T) {
	s := NewSet()
	for i := 1; i <= 100; i++ {
		s.Observe("retry.backoff", float64(i))
	}
	h := s.Snapshot().Histograms["retry.backoff"]
	if h.Count != 100 {
		t.Fatalf("count = %d", h.Count)
	}
	if h.Min != 1 || h.Max != 100 {
		t.Errorf("min/max = %v/%v, want 1/100", h.Min, h.Max)
	}
	if h.Mean != 50.5 {
		t.Errorf("mean = %v, want 50.5", h.Mean)
	}
	// Log buckets are ~26% wide; quantiles must land in the right decade.
	if h.P50 < 30 || h.P50 > 80 {
		t.Errorf("p50 = %v, want within a bucket of 50", h.P50)
	}
	if h.P99 < 80 || h.P99 > 100 {
		t.Errorf("p99 = %v, want within a bucket of 99", h.P99)
	}
	if h.P50 > h.P90 || h.P90 > h.P99 {
		t.Errorf("quantiles not monotone: p50=%v p90=%v p99=%v", h.P50, h.P90, h.P99)
	}
}

func TestHistogramEdgeCases(t *testing.T) {
	s := NewSet()
	s.Observe("x", 0)            // underflow bucket
	s.Observe("x", -5)           // clamps to 0
	s.Observe("x", math.NaN())   // dropped
	s.Observe("x", math.Inf(1))  // dropped
	s.Observe("x", math.Inf(-1)) // dropped
	h := s.Snapshot().Histograms["x"]
	if h.Count != 2 {
		t.Fatalf("count = %d, want 2 (zero + clamped)", h.Count)
	}
	if h.Min != 0 || h.Max != 0 || h.P99 != 0 {
		t.Errorf("all-zero histogram: %+v", h)
	}
}

func TestSnapshotIsDetached(t *testing.T) {
	s := NewSet()
	s.Inc("a", 1)
	s.Observe("h", 2)
	snap := s.Snapshot()
	s.Inc("a", 10)
	s.Observe("h", 200)
	if snap.Counters["a"] != 1 {
		t.Error("snapshot counter mutated by later Inc")
	}
	if snap.Histograms["h"].Count != 1 {
		t.Error("snapshot histogram mutated by later Observe")
	}
}

func TestRender(t *testing.T) {
	s := NewSet()
	s.Inc("loads.total", 42)
	s.SetGauge("budget.used", 0.1)
	s.Observe("load.ms", 1500)
	var b strings.Builder
	s.Render(&b)
	out := b.String()
	for _, want := range []string{"counters:", "loads.total", "42", "gauges:", "budget.used", "histograms:", "load.ms", "n=1"} {
		if !strings.Contains(out, want) {
			t.Errorf("render output missing %q:\n%s", want, out)
		}
	}
}

// TestRenderLargeGauges: %.3f printed multi-gigabyte byte counts as
// 13-digit walls; %.6g must keep them readable and keep small gauges
// exact.
func TestRenderLargeGauges(t *testing.T) {
	s := NewSet()
	s.SetGauge("mem.peak_bytes", 12_345_678_901)
	s.SetGauge("budget.used", 0.25)
	var b strings.Builder
	s.Render(&b)
	out := b.String()
	if !strings.Contains(out, "1.23457e+10") {
		t.Errorf("large gauge not rendered in %%.6g form:\n%s", out)
	}
	if strings.Contains(out, "12345678901.000") {
		t.Errorf("large gauge still fixed-point mangled:\n%s", out)
	}
	if !strings.Contains(out, "0.25") {
		t.Errorf("small gauge lost precision:\n%s", out)
	}
}

func TestLabeledSeries(t *testing.T) {
	s := NewSet()
	s.IncL("http.requests", 1, Label{"code", "200"}, Label{"method", "GET"})
	// Same labels in the other order must hit the same series.
	s.IncL("http.requests", 2, Label{"method", "GET"}, Label{"code", "200"})
	s.IncL("http.requests", 5, Label{"code", "404"}, Label{"method", "GET"})
	s.Inc("http.requests", 7) // unlabeled series is distinct

	if got := s.CounterL("http.requests", Label{"method", "GET"}, Label{"code", "200"}); got != 3 {
		t.Errorf("labeled counter = %d, want 3", got)
	}
	if got := s.Counter("http.requests"); got != 7 {
		t.Errorf("unlabeled counter = %d, want 7", got)
	}
	snap := s.Snapshot()
	key := `http.requests{code="200",method="GET"}`
	if snap.Counters[key] != 3 {
		t.Errorf("canonical key %q = %d, want 3; keys: %v", key, snap.Counters[key], snap.Counters)
	}
	id := snap.id(key)
	if id.name != "http.requests" || len(id.labels) != 2 || id.labels[0].Key != "code" {
		t.Errorf("series identity = %+v", id)
	}

	s.SetGaugeL("pool.size", 4, Label{"pool", "a"})
	s.ObserveL("latency.ms", 12, Label{"route", "/v1/list"})
	snap = s.Snapshot()
	if snap.Gauges[`pool.size{pool="a"}`] != 4 {
		t.Errorf("labeled gauge missing: %v", snap.Gauges)
	}
	if snap.Histograms[`latency.ms{route="/v1/list"}`].Count != 1 {
		t.Errorf("labeled histogram missing: %v", snap.Histograms)
	}
}

func TestSeriesKeyEscaping(t *testing.T) {
	key, _ := seriesKey("m", []Label{{"k", "a\"b\\c\nd"}})
	if key != `m{k="a\"b\\c\nd"}` {
		t.Errorf("escaped key = %q", key)
	}
}

// TestSnapshotBuckets: the per-Snapshot precomputed bucket slice must be
// sorted, non-cumulative, and consistent with the quantiles.
func TestSnapshotBuckets(t *testing.T) {
	s := NewSet()
	for _, v := range []float64{0, 0.5, 3, 3, 700, 12000} {
		s.Observe("x", v)
	}
	h := s.Snapshot().Histograms["x"]
	if len(h.Buckets) == 0 {
		t.Fatalf("no buckets in snapshot")
	}
	var total int64
	for i, b := range h.Buckets {
		total += b.Count
		if i > 0 && h.Buckets[i].Upper <= h.Buckets[i-1].Upper {
			t.Fatalf("buckets not ascending: %+v", h.Buckets)
		}
	}
	if total != h.Count {
		t.Fatalf("bucket counts sum to %d, want %d", total, h.Count)
	}
	if got := quantileFrom(h.Buckets, h.Count, h.Min, h.Max, 0.5); got != h.P50 {
		t.Fatalf("quantileFrom(p50) = %v, snapshot P50 = %v", got, h.P50)
	}
}

// BenchmarkHistSnapshot guards the satellite fix: the three quantiles of
// a snapshot share one sorted bucket slice instead of re-sorting the
// bucket map per quantile call.
func BenchmarkHistSnapshot(b *testing.B) {
	s := NewSet()
	v := 1e-3
	for i := 0; i < 10000; i++ {
		s.Observe("wide", v)
		v *= 1.01 // ~43 decades → ~170 distinct buckets
		if v > 1e40 {
			v = 1e-3
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap := s.Snapshot()
		if snap.Histograms["wide"].Count != 10000 {
			b.Fatal("bad snapshot")
		}
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := NewSet()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				s.Inc("n", 1)
				s.Observe("v", float64(i))
				s.SetGauge("g", float64(i))
				_ = s.Snapshot()
			}
		}()
	}
	wg.Wait()
	if got := s.Counter("n"); got != 8*500 {
		t.Errorf("n = %d, want %d", got, 8*500)
	}
	if h := s.Snapshot().Histograms["v"]; h.Count != 8*500 {
		t.Errorf("histogram count = %d, want %d", h.Count, 8*500)
	}
}
