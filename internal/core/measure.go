// Package core is the measurement-study engine: it turns page-load
// artifacts (HAR logs plus the page model) into the per-page and per-site
// metrics every analysis in the paper consumes, and runs whole studies
// over a Hispar list (landing pages fetched ten times, internal pages
// once, as in §3.1).
package core

import (
	"sort"
	"strings"
	"time"

	"repro/internal/adblock"
	"repro/internal/cdndetect"
	"repro/internal/depgraph"
	"repro/internal/har"
	"repro/internal/hb"
	"repro/internal/httpsem"
	"repro/internal/mimecat"
	"repro/internal/psl"
	"repro/internal/webgen"
)

// Analyzers bundles the detection machinery MeasurePage needs.
type Analyzers struct {
	PSL     *psl.List
	Adblock *adblock.Engine
	CDN     *cdndetect.Detector
}

// PageMeasurement is everything the study extracts from one page fetch.
type PageMeasurement struct {
	URL       string
	Domain    string // site domain
	Rank      int
	Category  string
	IsLanding bool
	Scheme    string

	// Structure & size (§4).
	Bytes   int64
	Objects int

	// Performance (§4).
	PLT        time.Duration // navigationStart → firstPaint
	SpeedIndex time.Duration
	OnLoad     time.Duration

	// Cacheability (§5.1).
	NonCacheable   int
	CacheableBytes int64

	// Warm-load (repeat view) accounting. On a cold load TransferBytes
	// equals Bytes and NetworkRequests equals Objects; on a warm load
	// cache hits contribute no transfer and 304 revalidations only
	// headers.
	TransferBytes   int64
	NetworkRequests int
	CacheHits       int
	Revalidations   int

	// CDN delivery (§5.1).
	CDNBytes  int64
	CDNHits   int
	CDNMisses int

	// Content mix (§5.2): bytes per category.
	ContentBytes map[mimecat.Category]int64

	// Multi-origin content (§5.3).
	UniqueDomains int

	// Dependency structure (§5.4): object count per depth, index =
	// depth, last bucket = 5+.
	DepthCounts []int

	// Resource hints (§5.5).
	Hints int

	// Handshakes & wait (§5.6).
	Handshakes    int
	HandshakeTime time.Duration
	WaitTimes     []time.Duration // per object

	// Security (§6.1).
	MixedContent bool
	// InsecureRedirect marks an HTTPS URL that 301s to plain-HTTP
	// content on another domain (the §6.1 careers-site case).
	InsecureRedirect bool

	// Third parties (§6.2): unique third-party eTLD+1s contacted.
	ThirdParties []string

	// Ads & trackers (§6.3).
	TrackerRequests int
	AdSlots         int
	HasHB           bool
}

// JSFraction returns the JS share of total bytes (Fig 4c).
func (p *PageMeasurement) JSFraction() float64 { return p.byteFrac(mimecat.CatJS) }

// ImageFraction returns the image share of total bytes.
func (p *PageMeasurement) ImageFraction() float64 { return p.byteFrac(mimecat.CatImage) }

// HTMLCSSFraction returns the HTML+CSS share of total bytes.
func (p *PageMeasurement) HTMLCSSFraction() float64 { return p.byteFrac(mimecat.CatHTMLCSS) }

func (p *PageMeasurement) byteFrac(c mimecat.Category) float64 {
	if p.Bytes == 0 {
		return 0
	}
	return float64(p.ContentBytes[c]) / float64(p.Bytes)
}

// CDNByteFraction returns the share of bytes attributed to CDNs.
func (p *PageMeasurement) CDNByteFraction() float64 {
	if p.Bytes == 0 {
		return 0
	}
	return float64(p.CDNBytes) / float64(p.Bytes)
}

// CacheableByteFraction returns the share of bytes that are cacheable.
func (p *PageMeasurement) CacheableByteFraction() float64 {
	if p.Bytes == 0 {
		return 0
	}
	return float64(p.CacheableBytes) / float64(p.Bytes)
}

// requestTypeOf maps a response MIME to the adblock request type.
func requestTypeOf(mime string) adblock.RequestType {
	switch mimecat.Of(mime) {
	case mimecat.CatJS:
		return adblock.TypeScript
	case mimecat.CatImage:
		return adblock.TypeImage
	case mimecat.CatHTMLCSS:
		if strings.Contains(mime, "css") {
			return adblock.TypeStylesheet
		}
		return adblock.TypeSubdocument
	case mimecat.CatJSON:
		return adblock.TypeXHR
	case mimecat.CatAudio, mimecat.CatVideo:
		return adblock.TypeMedia
	case mimecat.CatFont:
		return adblock.TypeFont
	default:
		return adblock.TypeOther
	}
}

// MeasurePage computes a PageMeasurement from a page-load HAR and its
// model. The model supplies only what the paper got from the DOM (hints,
// ad slots, header-bidding markers) and site metadata; every network
// metric comes from the HAR, mirroring the paper's pipeline.
func MeasurePage(log *har.Log, model *webgen.PageModel, az Analyzers) PageMeasurement {
	page := model.Page
	site := page.Site
	m := PageMeasurement{
		URL:          log.Page.URL,
		Domain:       site.Domain,
		Rank:         site.Rank,
		Category:     string(site.Category),
		IsLanding:    page.IsLanding(),
		Scheme:       page.Scheme(),
		Bytes:        log.TotalBytes(),
		Objects:      log.ObjectCount(),
		PLT:          log.Page.Timings.FirstPaint,
		SpeedIndex:   log.Page.Timings.SpeedIndex,
		OnLoad:       log.Page.Timings.OnLoad,
		ContentBytes: make(map[mimecat.Category]int64),
		Hints:        len(model.Hints),
		AdSlots:      model.AdSlots, // from the DOM, as in the paper
	}
	// Header bidding is detected from the wire (wrapper script + bid
	// burst), not taken from generator ground truth.
	m.HasHB = hb.Detect(log).Active
	// Insecure redirects are visible in the HAR: a 301 whose Location
	// target is plain HTTP.
	for i := range log.Entries {
		e := &log.Entries[i]
		if e.Response.Status/100 == 3 &&
			strings.HasPrefix(e.Response.HeaderValue("Location"), "http://") {
			m.InsecureRedirect = true
			break
		}
	}
	// Dependency structure is derived from HAR initiator records, the
	// paper's §5.4 method; the HAR's _depth extension is only a
	// cross-check (see tests).
	if g, err := depgraph.FromHAR(log); err == nil {
		m.DepthCounts = g.DepthCounts(5)
	} else {
		m.DepthCounts = log.DepthCounts(5)
	}
	pageHost := hostOf(log.Page.URL)
	pageHTTPS := strings.HasPrefix(log.Page.URL, "https://")
	domains := make(map[string]bool)
	thirdParties := make(map[string]bool)

	for i := range log.Entries {
		e := &log.Entries[i]
		host := hostOf(e.Request.URL)
		domains[host] = true

		// Content mix.
		m.ContentBytes[mimecat.Of(e.Response.MIMEType)] += e.Response.BodySize

		// Warm-load accounting.
		m.TransferBytes += e.Transferred()
		if e.FromCache != "" {
			m.CacheHits++
		} else {
			m.NetworkRequests++
			if e.Revalidated {
				m.Revalidations++
			}
		}

		// Cacheability per RFC 7234 semantics over the recorded headers.
		// Entries the browser cache answered — directly or after a 304 —
		// are cacheable by demonstration, whatever their replayed
		// headers say.
		if e.FromCache != "" || e.Revalidated {
			m.CacheableBytes += e.Response.BodySize
		} else if httpsem.Cacheable(httpsem.Response{
			Method:       e.Request.Method,
			Status:       e.Response.Status,
			CacheControl: e.Response.HeaderValue("Cache-Control"),
			Pragma:       e.Response.HeaderValue("Pragma"),
			Expires:      e.Response.HeaderValue("Expires"),
			Date:         e.Response.HeaderValue("Date"),
		}) {
			m.CacheableBytes += e.Response.BodySize
		} else {
			m.NonCacheable++
		}

		// CDN attribution and cache status — network responses only:
		// cache-served entries replay stored X-Cache headers that say
		// nothing about this load.
		if az.CDN != nil && e.FromCache == "" && !e.Revalidated {
			if _, ok := az.CDN.Attribute(e); ok {
				m.CDNBytes += e.Response.BodySize
				switch cdndetect.CacheStatus(e) {
				case 1:
					m.CDNHits++
				case -1:
					m.CDNMisses++
				}
			}
		}

		// Handshakes and wait.
		if e.Timings.NewConnection() {
			m.Handshakes++
			m.HandshakeTime += e.Timings.Handshake()
		}
		m.WaitTimes = append(m.WaitTimes, e.Timings.Wait)

		// Mixed content: an HTTPS page pulling any object over plain
		// HTTP (§6.1; passive mixed content in this simulation).
		if pageHTTPS && strings.HasPrefix(e.Request.URL, "http://") {
			m.MixedContent = true
		}

		// Third parties by eTLD+1 (§6.2).
		if az.PSL != nil && az.PSL.IsThirdParty(pageHost, host) {
			if tp := az.PSL.ETLDPlusOne(host); tp != "" {
				thirdParties[tp] = true
			}
		}

		// Trackers (§6.3).
		if az.Adblock != nil {
			if _, blocked := az.Adblock.Match(adblock.Request{
				URL:      e.Request.URL,
				Type:     requestTypeOf(e.Response.MIMEType),
				PageHost: pageHost,
			}); blocked {
				m.TrackerRequests++
			}
		}
	}
	m.UniqueDomains = len(domains)
	for tp := range thirdParties {
		m.ThirdParties = append(m.ThirdParties, tp)
	}
	sort.Strings(m.ThirdParties)
	return m
}

func hostOf(raw string) string {
	s := raw
	if i := strings.Index(s, "://"); i >= 0 {
		s = s[i+3:]
	}
	if i := strings.IndexByte(s, '/'); i >= 0 {
		s = s[:i]
	}
	if i := strings.IndexByte(s, ':'); i >= 0 {
		s = s[:i]
	}
	return strings.ToLower(s)
}
