package core

// Warm (repeat-view) studies: the consequence of the §5.1 cacheability
// asymmetry. Every page is loaded twice — cold with a fresh browser
// cache, then again RevisitDelay later against the primed cache — and
// the pair quantifies what a revisit saves per page type: bytes that
// never cross the network, requests answered locally or by a 304, and
// the resulting onLoad speedup. Internal pages, carrying a larger
// cacheable-byte fraction (Fig 4a), save strictly more than landing
// pages.

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/browser"
	"repro/internal/hispar"
	"repro/internal/runstats"
	"repro/internal/webgen"
)

// WarmConfig parameterizes the cold→warm pair runner.
type WarmConfig struct {
	// RevisitDelay is the virtual time between the cold load and the
	// warm revisit (default 30m): long enough that short-lived
	// responses go stale and must revalidate, short enough that typical
	// static assets are still fresh.
	RevisitDelay time.Duration
}

func (c WarmConfig) withDefaults() WarmConfig {
	if c.RevisitDelay <= 0 {
		c.RevisitDelay = 30 * time.Minute
	}
	return c
}

// PagePair is one page's cold/warm measurement pair.
type PagePair struct {
	Cold PageMeasurement
	Warm PageMeasurement
}

// ByteSavings is the fraction of cold-load transfer bytes the warm load
// avoided (1 − warm/cold).
func (p *PagePair) ByteSavings() float64 {
	if p.Cold.TransferBytes == 0 {
		return 0
	}
	return 1 - float64(p.Warm.TransferBytes)/float64(p.Cold.TransferBytes)
}

// RequestSavings is the fraction of cold-load network requests the warm
// load avoided (cache hits; 304s still count as network requests).
func (p *PagePair) RequestSavings() float64 {
	if p.Cold.NetworkRequests == 0 {
		return 0
	}
	return 1 - float64(p.Warm.NetworkRequests)/float64(p.Cold.NetworkRequests)
}

// OnLoadSpeedup is cold onLoad over warm onLoad (>1 = warm is faster).
func (p *PagePair) OnLoadSpeedup() float64 {
	if p.Warm.OnLoad <= 0 {
		return 0
	}
	return float64(p.Cold.OnLoad) / float64(p.Warm.OnLoad)
}

// WarmSiteResult is one site's cold/warm pairs.
type WarmSiteResult struct {
	Domain   string
	Rank     int
	Category string
	Landing  PagePair
	Internal []PagePair
}

// InternalMedian applies f to every internal pair and returns the
// median.
func (s *WarmSiteResult) InternalMedian(f func(*PagePair) float64) float64 {
	if len(s.Internal) == 0 {
		return 0
	}
	vals := make([]float64, len(s.Internal))
	for i := range s.Internal {
		vals[i] = f(&s.Internal[i])
	}
	sort.Float64s(vals)
	n := len(vals)
	if n%2 == 1 {
		return vals[n/2]
	}
	return (vals[n/2-1] + vals[n/2]) / 2
}

// WarmStudyResult is a full cold→warm study over a list.
type WarmStudyResult struct {
	List         *hispar.List
	RevisitDelay time.Duration
	Sites        []WarmSiteResult
	Outcomes     []Outcome
	Stats        runstats.Snapshot
}

// FailedSites returns how many input sites yielded no measurement.
func (r *WarmStudyResult) FailedSites() int {
	n := 0
	for i := range r.Outcomes {
		if !r.Outcomes[i].OK {
			n++
		}
	}
	return n
}

// loadPair performs one page's cold load into a fresh cache, advances
// the site clock by the revisit delay, and performs the warm load
// against the primed cache. Both loads retry per the study's fault
// policy; a warm attempt that dies mid-load leaves the cache with
// whatever the completed fetches stored or freshened — never a
// corrupted entry — so the retry revalidates from intact state.
func (st *Study) loadPair(sc *siteCtx, m *webgen.PageModel, fetchID int, delay time.Duration) (PagePair, int, error) {
	cache := browser.NewCache()
	sc.b.SetCache(cache)
	defer sc.b.SetCache(nil)

	coldLog, a1, err := st.loadRevisitWithRetry(sc, m, fetchID, 0)
	if err != nil {
		return PagePair{}, a1, err
	}
	sc.clock.Advance(delay)
	warmLog, a2, err := st.loadRevisitWithRetry(sc, m, fetchID, delay)
	if err != nil {
		return PagePair{}, a1 + a2, err
	}
	st.stats.Inc("warm.pairs", 1)
	st.stats.Inc("warm.cache.hits", int64(cache.Hits()))
	st.stats.Inc("warm.cache.revalidations", int64(cache.Revalidations()))
	return PagePair{
		Cold: MeasurePage(coldLog, m, st.az),
		Warm: MeasurePage(warmLog, m, st.az),
	}, a1 + a2, nil
}

// measureSiteWarm measures one site's cold/warm pairs with the same
// degradation policy as measureSiteResilient: the landing pair must
// survive, internal pages that exhaust retries are dropped.
func (st *Study) measureSiteWarm(i int, set hispar.URLSet, delay time.Duration) (res WarmSiteResult, out Outcome) {
	out = Outcome{Domain: set.Domain, Rank: set.Rank}
	fail := func(err error, class ErrorClass) (WarmSiteResult, Outcome) {
		out.Class = class
		out.Err = fmt.Errorf("core: site %s: %w", set.Domain, err)
		return WarmSiteResult{}, out
	}
	sc, err := st.newSiteCtx(i)
	if err != nil {
		return fail(err, ClassConfig)
	}
	start := sc.clock.Now()
	defer func() { out.Elapsed = sc.clock.Since(start) }()

	site, ok := st.web.SiteByDomain(set.Domain)
	if !ok {
		return fail(fmt.Errorf("site not in web snapshot"), ClassConfig)
	}
	res = WarmSiteResult{Domain: set.Domain, Rank: set.Rank, Category: string(site.Category)}

	// Landing page: one cold/warm pair (the repeat-view study needs the
	// pair, not the cold study's fetch medianization).
	model := site.Landing().Build()
	pair, attempts, err := st.loadPair(sc, model, 0, delay)
	out.Attempts += attempts
	if attempts > 2 {
		out.Retries += attempts - 2
	}
	if err != nil {
		return fail(err, Classify(err))
	}
	res.Landing = pair

	for _, u := range set.Internal {
		page, ok := st.web.PageByURL(u)
		if !ok {
			return fail(fmt.Errorf("URL %s not in web snapshot", u), ClassConfig)
		}
		im := page.Build()
		pair, attempts, err := st.loadPair(sc, im, 0, delay)
		out.Attempts += attempts
		if attempts > 2 {
			out.Retries += attempts - 2
		}
		if err != nil {
			out.FailedPages++
			st.stats.Inc("pages.dropped", 1)
			continue
		}
		res.Internal = append(res.Internal, pair)
	}
	st.stats.Inc("pages.measured", int64(1+len(res.Internal)))
	out.OK = true
	return res, out
}

// RunWarm measures every site's cold→warm pairs, in parallel, with the
// same isolation and degradation guarantees as Run: per-site clocks,
// resolvers, browsers, and caches, so results are identical at any
// worker count; failed sites are recorded in Outcomes and the failure
// budget decides whether an aggregate error rides along.
func (st *Study) RunWarm(list *hispar.List, wcfg WarmConfig) (*WarmStudyResult, error) {
	wcfg = wcfg.withDefaults()
	n := len(list.Sets)
	results := make([]WarmSiteResult, n)
	outcomes := make([]Outcome, n)
	if _, err := st.newBrowser(st.cfg.Seed); err != nil {
		return nil, err
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < st.cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				results[i], outcomes[i] = st.measureSiteWarm(i, list.Sets[i], wcfg.RevisitDelay)
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	st.clock.AdvanceTo(st.epoch.Add(time.Duration(n) * st.cfg.SitePacing))

	res := &WarmStudyResult{List: list, RevisitDelay: wcfg.RevisitDelay, Outcomes: outcomes}
	var siteErrs []error
	for i := range outcomes {
		if outcomes[i].OK {
			res.Sites = append(res.Sites, results[i])
		} else {
			siteErrs = append(siteErrs, outcomes[i].Err)
		}
	}
	st.stats.Inc("sites.total", int64(n))
	st.stats.Inc("sites.ok", int64(n-len(siteErrs)))
	st.stats.Inc("sites.failed", int64(len(siteErrs)))
	res.Stats = st.stats.Snapshot()

	if st.cfg.FailureBudget >= 0 {
		allowed := int(st.cfg.FailureBudget * float64(n))
		if len(siteErrs) > allowed {
			return res, fmt.Errorf("core: %d/%d sites failed, exceeding the failure budget of %d: %w",
				len(siteErrs), n, allowed, errors.Join(siteErrs...))
		}
	}
	return res, nil
}
