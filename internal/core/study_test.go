package core

import (
	"testing"
	"time"
)

func TestMedianizeTimings(t *testing.T) {
	mk := func(plt, si, onload, hsTime int, hs, hits int) PageMeasurement {
		return PageMeasurement{
			Bytes: 1000, Objects: 10,
			PLT:           time.Duration(plt) * time.Millisecond,
			SpeedIndex:    time.Duration(si) * time.Millisecond,
			OnLoad:        time.Duration(onload) * time.Millisecond,
			HandshakeTime: time.Duration(hsTime) * time.Millisecond,
			Handshakes:    hs,
			CDNHits:       hits,
		}
	}
	fetches := []PageMeasurement{
		mk(900, 1100, 2000, 500, 40, 10),
		mk(700, 900, 1800, 450, 38, 12),
		mk(1100, 1500, 2400, 600, 44, 8),
	}
	agg := medianizeTimings(fetches)
	if agg.PLT != 900*time.Millisecond {
		t.Errorf("PLT median = %v", agg.PLT)
	}
	if agg.SpeedIndex != 1100*time.Millisecond {
		t.Errorf("SI median = %v", agg.SpeedIndex)
	}
	if agg.OnLoad != 2000*time.Millisecond {
		t.Errorf("onLoad median = %v", agg.OnLoad)
	}
	if agg.HandshakeTime != 500*time.Millisecond || agg.Handshakes != 40 {
		t.Errorf("handshakes = %d/%v", agg.Handshakes, agg.HandshakeTime)
	}
	if agg.CDNHits != 10 {
		t.Errorf("CDN hits median = %d", agg.CDNHits)
	}
	// Structure comes from the first fetch.
	if agg.Bytes != 1000 || agg.Objects != 10 {
		t.Error("structural fields lost")
	}
	// Even count: mean of middle two.
	even := medianizeTimings(fetches[:2])
	if even.PLT != 800*time.Millisecond {
		t.Errorf("even-count PLT = %v", even.PLT)
	}
}

func TestStudyConfigDefaults(t *testing.T) {
	cfg := StudyConfig{}.withDefaults()
	if cfg.LandingFetches != 10 {
		t.Errorf("LandingFetches default = %d, want the paper's 10", cfg.LandingFetches)
	}
	if cfg.Workers <= 0 || cfg.CDNWarmthRate <= 0 || cfg.CDNWarmthCeiling <= 0 {
		t.Errorf("defaults incomplete: %+v", cfg)
	}
}

func TestMeasureHARLandingDetection(t *testing.T) {
	model := fixtureModel(t)
	log := handHAR(model)
	m := MeasureHAR(log, fixtureAnalyzers())
	if !m.IsLanding {
		t.Error("root-document URL not classified as landing")
	}
	log.Page.URL = "https://example.com/article/42"
	if MeasureHAR(log, fixtureAnalyzers()).IsLanding {
		t.Error("internal URL classified as landing")
	}
	// The HAR-only path must agree with the model-aware path on every
	// network-derived metric.
	full := MeasurePage(handHAR(model), model, fixtureAnalyzers())
	haro := MeasureHAR(handHAR(model), fixtureAnalyzers())
	if full.Bytes != haro.Bytes || full.NonCacheable != haro.NonCacheable ||
		full.CDNBytes != haro.CDNBytes || full.UniqueDomains != haro.UniqueDomains ||
		full.Handshakes != haro.Handshakes || full.TrackerRequests != haro.TrackerRequests ||
		full.MixedContent != haro.MixedContent {
		t.Errorf("HAR-only analysis diverges from model-aware analysis:\nfull %+v\nhar  %+v", full, haro)
	}
}
