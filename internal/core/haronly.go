package core

import (
	"sort"
	"strings"

	"repro/internal/adblock"
	"repro/internal/cdndetect"
	"repro/internal/depgraph"
	"repro/internal/har"
	"repro/internal/httpsem"
	"repro/internal/mimecat"
)

// MeasureHAR computes every metric that is derivable from a HAR log
// alone — no page model, no generator ground truth. This is the analysis
// path for externally produced HAR archives (e.g. the output of
// `webmeasure -har`, or any HAR 1.2 capture): exactly what the paper's
// released analysis scripts consume. Model-only fields (resource hints,
// ad slots, header bidding, site rank/category) stay zero.
func MeasureHAR(log *har.Log, az Analyzers) PageMeasurement {
	m := PageMeasurement{
		URL:          log.Page.URL,
		Scheme:       schemeOf(log.Page.URL),
		Bytes:        log.TotalBytes(),
		Objects:      log.ObjectCount(),
		PLT:          log.Page.Timings.FirstPaint,
		SpeedIndex:   log.Page.Timings.SpeedIndex,
		OnLoad:       log.Page.Timings.OnLoad,
		ContentBytes: make(map[mimecat.Category]int64),
	}
	m.IsLanding = isRootDocumentURL(log.Page.URL)
	if g, err := depgraph.FromHAR(log); err == nil {
		m.DepthCounts = g.DepthCounts(5)
	} else {
		m.DepthCounts = log.DepthCounts(5)
	}

	pageHost := hostOf(log.Page.URL)
	pageHTTPS := strings.HasPrefix(log.Page.URL, "https://")
	domains := make(map[string]bool)
	thirdParties := make(map[string]bool)
	for i := range log.Entries {
		e := &log.Entries[i]
		host := hostOf(e.Request.URL)
		domains[host] = true
		m.ContentBytes[mimecat.Of(e.Response.MIMEType)] += e.Response.BodySize
		if httpsem.Cacheable(httpsem.Response{
			Method:       e.Request.Method,
			Status:       e.Response.Status,
			CacheControl: e.Response.HeaderValue("Cache-Control"),
			Pragma:       e.Response.HeaderValue("Pragma"),
			Expires:      e.Response.HeaderValue("Expires"),
			Date:         e.Response.HeaderValue("Date"),
		}) {
			m.CacheableBytes += e.Response.BodySize
		} else {
			m.NonCacheable++
		}
		if az.CDN != nil {
			if _, ok := az.CDN.Attribute(e); ok {
				m.CDNBytes += e.Response.BodySize
				switch cdndetect.CacheStatus(e) {
				case 1:
					m.CDNHits++
				case -1:
					m.CDNMisses++
				}
			}
		}
		if e.Timings.NewConnection() {
			m.Handshakes++
			m.HandshakeTime += e.Timings.Handshake()
		}
		m.WaitTimes = append(m.WaitTimes, e.Timings.Wait)
		if pageHTTPS && strings.HasPrefix(e.Request.URL, "http://") {
			m.MixedContent = true
		}
		if az.PSL != nil && az.PSL.IsThirdParty(pageHost, host) {
			if tp := az.PSL.ETLDPlusOne(host); tp != "" {
				thirdParties[tp] = true
			}
		}
		if az.Adblock != nil {
			if _, blocked := az.Adblock.Match(adblock.Request{
				URL:      e.Request.URL,
				Type:     requestTypeOf(e.Response.MIMEType),
				PageHost: pageHost,
			}); blocked {
				m.TrackerRequests++
			}
		}
	}
	m.UniqueDomains = len(domains)
	for tp := range thirdParties {
		m.ThirdParties = append(m.ThirdParties, tp)
	}
	sort.Strings(m.ThirdParties)
	return m
}

func schemeOf(u string) string {
	if i := strings.Index(u, "://"); i > 0 {
		return u[:i]
	}
	return ""
}

// isRootDocumentURL reports whether the URL addresses a site's root
// document — the landing page, per the paper's definition.
func isRootDocumentURL(u string) bool {
	s := u
	if i := strings.Index(s, "://"); i >= 0 {
		s = s[i+3:]
	}
	slash := strings.IndexByte(s, '/')
	if slash < 0 {
		return true
	}
	rest := s[slash:]
	return rest == "/" || rest == ""
}
