package core

import (
	"testing"
	"time"

	"repro/internal/hispar"
	"repro/internal/search"
	"repro/internal/toplist"
	"repro/internal/webgen"
)

// TestSmokeStudy exercises the full pipeline end to end on a small web:
// toplist → webgen → search → hispar build → page loads → measurement.
func TestSmokeStudy(t *testing.T) {
	u := toplist.NewUniverse(toplist.Config{Seed: 7, Size: 500})
	entries := u.Top(60)
	seeds := make([]webgen.SiteSeed, len(entries))
	for i, e := range entries {
		seeds[i] = webgen.SiteSeed{Domain: e.Domain, Rank: e.Rank}
	}
	web := webgen.Generate(webgen.Config{Seed: 7, Sites: seeds})
	eng := search.New(web, search.Config{EnglishOnly: true})
	list, stats, err := hispar.Build(eng, entries, hispar.BuildConfig{
		Sites: 40, URLsPerSite: 10, MinResults: 5, Name: "Hsmoke",
	})
	if err != nil {
		t.Fatalf("hispar build: %v", err)
	}
	if stats.Queries == 0 || stats.CostUSD == 0 {
		t.Fatalf("expected nonzero query accounting, got %+v", stats)
	}
	start := time.Now()
	st, err := NewStudy(web, StudyConfig{Seed: 7, LandingFetches: 3})
	if err != nil {
		t.Fatal(err)
	}
	res, err := st.Run(list)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("study of %d sites (%d pages) took %v", len(res.Sites), list.Pages(), time.Since(start))

	if len(res.Sites) != 40 {
		t.Fatalf("want 40 sites, got %d", len(res.Sites))
	}
	for i := range res.Sites {
		s := &res.Sites[i]
		if s.Landing.Objects < 5 {
			t.Errorf("%s landing has %d objects", s.Domain, s.Landing.Objects)
		}
		if s.Landing.PLT <= 0 || s.Landing.SpeedIndex < s.Landing.PLT {
			t.Errorf("%s: PLT=%v SI=%v", s.Domain, s.Landing.PLT, s.Landing.SpeedIndex)
		}
		if s.Landing.UniqueDomains < 2 {
			t.Errorf("%s landing contacted %d domains", s.Domain, s.Landing.UniqueDomains)
		}
		if len(s.Internal) == 0 {
			t.Errorf("%s has no internal measurements", s.Domain)
		}
	}
	// Sanity of aggregate directions at tiny scale: landing pages should
	// have more objects than internal for an appreciable share of sites.
	more := 0
	for i := range res.Sites {
		if res.Sites[i].Delta(func(p *PageMeasurement) float64 { return float64(p.Objects) }) > 0 {
			more++
		}
	}
	t.Logf("landing has more objects for %d/%d sites", more, len(res.Sites))
	if more < len(res.Sites)/4 {
		t.Errorf("object-count direction badly off: %d/%d", more, len(res.Sites))
	}
}
