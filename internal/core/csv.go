package core

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"time"
)

// csvHeader is the column layout of the released measurement dataset
// (the paper publishes its per-page measurements at hispar.cs.duke.edu;
// this is our equivalent artifact).
var csvHeader = []string{
	"domain", "rank", "category", "page_type", "url", "scheme",
	"bytes", "objects", "plt_ms", "speed_index_ms", "onload_ms",
	"noncacheable", "cacheable_bytes", "cdn_bytes", "cdn_hits", "cdn_misses",
	"domains", "hints", "handshakes", "handshake_ms",
	"trackers", "ad_slots", "has_hb", "mixed_content", "insecure_redirect",
	"third_parties", "depth2plus",
}

// emitMeasurementRow writes one dataset row for page p of site s. It is
// shared by the in-memory writer and the streaming CSVSink so both
// produce identical bytes.
func emitMeasurementRow(cw *csv.Writer, s *SiteResult, p *PageMeasurement, kind string) error {
	deep := 0
	for d := 2; d < len(p.DepthCounts); d++ {
		deep += p.DepthCounts[d]
	}
	return cw.Write([]string{
		s.Domain, strconv.Itoa(s.Rank), s.Category, kind, p.URL, p.Scheme,
		strconv.FormatInt(p.Bytes, 10), strconv.Itoa(p.Objects),
		strconv.FormatInt(p.PLT.Milliseconds(), 10),
		strconv.FormatInt(p.SpeedIndex.Milliseconds(), 10),
		strconv.FormatInt(p.OnLoad.Milliseconds(), 10),
		strconv.Itoa(p.NonCacheable), strconv.FormatInt(p.CacheableBytes, 10),
		strconv.FormatInt(p.CDNBytes, 10), strconv.Itoa(p.CDNHits), strconv.Itoa(p.CDNMisses),
		strconv.Itoa(p.UniqueDomains), strconv.Itoa(p.Hints),
		strconv.Itoa(p.Handshakes), strconv.FormatInt(p.HandshakeTime.Milliseconds(), 10),
		strconv.Itoa(p.TrackerRequests), strconv.Itoa(p.AdSlots),
		strconv.FormatBool(p.HasHB), strconv.FormatBool(p.MixedContent),
		strconv.FormatBool(p.InsecureRedirect),
		strconv.Itoa(len(p.ThirdParties)), strconv.Itoa(deep),
	})
}

// emitSiteRows writes one site's rows: the landing page, then each
// internal page in measurement order.
func emitSiteRows(cw *csv.Writer, s *SiteResult) error {
	if err := emitMeasurementRow(cw, s, &s.Landing, "landing"); err != nil {
		return err
	}
	for j := range s.Internal {
		if err := emitMeasurementRow(cw, s, &s.Internal[j], "internal"); err != nil {
			return err
		}
	}
	return nil
}

// WriteMeasurementsCSV writes the study's per-page measurements as the
// public dataset.
func WriteMeasurementsCSV(w io.Writer, res *StudyResult) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	for i := range res.Sites {
		if err := emitSiteRows(cw, &res.Sites[i]); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// warmCSVHeader is the column layout of the cold→warm pair dataset.
var warmCSVHeader = []string{
	"domain", "rank", "category", "page_type", "url",
	"cold_bytes", "cold_transfer_bytes", "warm_transfer_bytes", "byte_savings",
	"cold_requests", "warm_network_requests", "request_savings",
	"warm_cache_hits", "warm_revalidations",
	"cold_onload_ms", "warm_onload_ms", "onload_speedup",
}

// WriteWarmCSV writes a cold→warm study's per-page pairs.
func WriteWarmCSV(w io.Writer, res *WarmStudyResult) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(warmCSVHeader); err != nil {
		return err
	}
	emit := func(s *WarmSiteResult, p *PagePair, kind string) error {
		return cw.Write([]string{
			s.Domain, strconv.Itoa(s.Rank), s.Category, kind, p.Cold.URL,
			strconv.FormatInt(p.Cold.Bytes, 10),
			strconv.FormatInt(p.Cold.TransferBytes, 10),
			strconv.FormatInt(p.Warm.TransferBytes, 10),
			strconv.FormatFloat(p.ByteSavings(), 'f', 4, 64),
			strconv.Itoa(p.Cold.NetworkRequests),
			strconv.Itoa(p.Warm.NetworkRequests),
			strconv.FormatFloat(p.RequestSavings(), 'f', 4, 64),
			strconv.Itoa(p.Warm.CacheHits),
			strconv.Itoa(p.Warm.Revalidations),
			strconv.FormatInt(p.Cold.OnLoad.Milliseconds(), 10),
			strconv.FormatInt(p.Warm.OnLoad.Milliseconds(), 10),
			strconv.FormatFloat(p.OnLoadSpeedup(), 'f', 4, 64),
		})
	}
	for i := range res.Sites {
		s := &res.Sites[i]
		if err := emit(s, &s.Landing, "landing"); err != nil {
			return err
		}
		for j := range s.Internal {
			if err := emit(s, &s.Internal[j], "internal"); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadMeasurementsCSV parses a dataset written by WriteMeasurementsCSV
// back into site results (the per-object wait samples and content-mix
// maps are not part of the public dataset and stay empty).
func ReadMeasurementsCSV(r io.Reader) (*StudyResult, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("core: dataset header: %w", err)
	}
	if len(header) != len(csvHeader) || header[0] != "domain" {
		return nil, fmt.Errorf("core: unexpected dataset header %v", header)
	}
	res := &StudyResult{}
	byDomain := make(map[string]int)
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		p, rank, kind, err := parseRow(rec)
		if err != nil {
			return nil, err
		}
		idx, ok := byDomain[rec[0]]
		if !ok {
			byDomain[rec[0]] = len(res.Sites)
			res.Sites = append(res.Sites, SiteResult{Domain: rec[0], Rank: rank, Category: rec[2]})
			idx = len(res.Sites) - 1
		}
		if kind == "landing" {
			res.Sites[idx].Landing = p
		} else {
			res.Sites[idx].Internal = append(res.Sites[idx].Internal, p)
		}
	}
	return res, nil
}

func parseRow(rec []string) (PageMeasurement, int, string, error) {
	var p PageMeasurement
	atoi := func(s string) int { v, _ := strconv.Atoi(s); return v }
	ai64 := func(s string) int64 { v, _ := strconv.ParseInt(s, 10, 64); return v }
	ab := func(s string) bool { v, _ := strconv.ParseBool(s); return v }
	rank, err := strconv.Atoi(rec[1])
	if err != nil {
		return p, 0, "", fmt.Errorf("core: bad rank %q", rec[1])
	}
	p = PageMeasurement{
		Domain:           rec[0],
		Rank:             rank,
		Category:         rec[2],
		IsLanding:        rec[3] == "landing",
		URL:              rec[4],
		Scheme:           rec[5],
		Bytes:            ai64(rec[6]),
		Objects:          atoi(rec[7]),
		PLT:              time.Duration(ai64(rec[8])) * time.Millisecond,
		SpeedIndex:       time.Duration(ai64(rec[9])) * time.Millisecond,
		OnLoad:           time.Duration(ai64(rec[10])) * time.Millisecond,
		NonCacheable:     atoi(rec[11]),
		CacheableBytes:   ai64(rec[12]),
		CDNBytes:         ai64(rec[13]),
		CDNHits:          atoi(rec[14]),
		CDNMisses:        atoi(rec[15]),
		UniqueDomains:    atoi(rec[16]),
		Hints:            atoi(rec[17]),
		Handshakes:       atoi(rec[18]),
		HandshakeTime:    time.Duration(ai64(rec[19])) * time.Millisecond,
		TrackerRequests:  atoi(rec[20]),
		AdSlots:          atoi(rec[21]),
		HasHB:            ab(rec[22]),
		MixedContent:     ab(rec[23]),
		InsecureRedirect: ab(rec[24]),
	}
	// third_parties and depth2plus are denormalized aggregates; rebuild
	// what downstream code reads.
	for i := 0; i < atoi(rec[25]); i++ {
		p.ThirdParties = append(p.ThirdParties, fmt.Sprintf("tp%d.unknown", i))
	}
	deep := atoi(rec[26])
	p.DepthCounts = []int{1, p.Objects - 1 - deep, deep, 0, 0, 0}
	if p.DepthCounts[1] < 0 {
		p.DepthCounts[1] = 0
	}
	return p, rank, rec[3], nil
}
