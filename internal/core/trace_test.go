package core

import (
	"bytes"
	"testing"

	"repro/internal/simnet"
	"repro/internal/trace"
)

// streamTrace runs the streamed study over the fault web with tracing
// on and returns the tracer plus its Chrome export.
func streamTrace(t *testing.T, workers int, detail trace.Detail, faults float64) (*trace.Tracer, []byte, *StreamResult) {
	t.Helper()
	web, list := faultWeb(t)
	tr := trace.New(detail)
	res, err := streamStudy(t, web, list, func(cfg *StudyConfig) {
		cfg.Workers = workers
		cfg.Faults = simnet.FaultConfig{Rates: simnet.FaultRates{Timeout: faults}}
		cfg.FailureBudget = -1
	}, StreamConfig{Trace: tr})
	if err != nil {
		t.Fatalf("streaming study: %v", err)
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return tr, buf.Bytes(), res
}

// TestStreamTraceInvariantAcrossWorkers is the tracer's core contract:
// the exported Chrome JSON must be byte-identical at any worker count,
// including under injected faults (retries, aborted loads, dropped
// pages) at full phase detail.
func TestStreamTraceInvariantAcrossWorkers(t *testing.T) {
	_, serial, _ := streamTrace(t, 1, trace.DetailPhases, 0.05)
	_, parallel, _ := streamTrace(t, 8, trace.DetailPhases, 0.05)
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("trace differs across worker counts (%d vs %d bytes)", len(serial), len(parallel))
	}
	if len(serial) == 0 {
		t.Fatal("empty trace")
	}
}

// TestStreamTraceStructure checks the span hierarchy: one study span,
// one span per shard and per site, browser loads parented under their
// site span, and the deterministic reorder-window wait attribute.
func TestStreamTraceStructure(t *testing.T) {
	tr, _, res := streamTrace(t, 4, trace.DetailPhases, 0.05)
	spans := tr.Spans()

	byCat := map[string][]trace.Span{}
	for _, s := range spans {
		byCat[s.Cat] = append(byCat[s.Cat], s)
	}
	if n := len(byCat["study"]); n != 1 {
		t.Errorf("study spans = %d, want 1", n)
	}
	if n := len(byCat["shard"]); n != len(res.Shards) {
		t.Errorf("shard spans = %d, want %d", n, len(res.Shards))
	}
	if n := len(byCat["site"]); n != len(res.Outcomes) {
		t.Errorf("site spans = %d, want %d (failed sites must have spans too)", n, len(res.Outcomes))
	}
	if len(byCat["load"]) == 0 || len(byCat["fetch"]) == 0 || len(byCat["phase"]) == 0 {
		t.Fatalf("missing load/fetch/phase spans: %v", catCounts(byCat))
	}

	siteIDs := map[trace.SpanID]bool{}
	for _, s := range byCat["site"] {
		siteIDs[s.ID] = true
		found := false
		for _, a := range s.Attrs {
			if a.Key == "window.wait_us" {
				found = true
			}
		}
		if !found {
			t.Fatalf("site span %q missing window.wait_us attr: %+v", s.Name, s.Attrs)
		}
	}
	for _, s := range byCat["load"] {
		if !siteIDs[s.Parent] {
			t.Fatalf("load span %q not parented under a site span", s.Name)
		}
	}
	// Site spans use per-site Chrome rows; fold spans own row 0.
	for _, s := range append(byCat["study"], byCat["shard"]...) {
		if s.TID != 0 {
			t.Errorf("fold span %q on tid %d, want 0", s.Name, s.TID)
		}
	}
}

// TestStreamTraceDetailGating: sites-level tracing must not record
// load or exchange spans, and tracing off must record nothing.
func TestStreamTraceDetailGating(t *testing.T) {
	tr, _, _ := streamTrace(t, 2, trace.DetailSites, 0)
	for _, s := range tr.Spans() {
		if s.Cat == "load" || s.Cat == "fetch" || s.Cat == "phase" {
			t.Fatalf("detail=sites recorded %s span %q", s.Cat, s.Name)
		}
	}

	web, list := faultWeb(t)
	res, err := streamStudy(t, web, list, nil, StreamConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Agg.Sites == 0 {
		t.Fatal("untraced run measured nothing")
	}
}

func catCounts(byCat map[string][]trace.Span) map[string]int {
	out := make(map[string]int, len(byCat))
	for k, v := range byCat {
		out[k] = len(v)
	}
	return out
}
