package core

import (
	"errors"
	"time"

	"repro/internal/browser"
)

// ErrorClass buckets a site's terminal failure for run metrics and retry
// policy. The classes mirror the browser's typed load errors plus two
// harness-side classes.
type ErrorClass string

const (
	// ClassNone: the site produced a full measurement.
	ClassNone ErrorClass = ""
	// ClassDNS: the root document's host never resolved.
	ClassDNS ErrorClass = "dns"
	// ClassTimeout: the root document request hung until the client
	// timeout.
	ClassTimeout ErrorClass = "timeout"
	// ClassTruncated: the root document transfer died mid-body.
	ClassTruncated ErrorClass = "truncated"
	// ClassConfig: the study asked for a page the web snapshot does not
	// contain (or the browser could not be built) — never retried.
	ClassConfig ErrorClass = "config"
	// ClassOther: anything else.
	ClassOther ErrorClass = "other"
)

// Classify maps a load error to its class via the browser's sentinels.
func Classify(err error) ErrorClass {
	switch {
	case err == nil:
		return ClassNone
	case errors.Is(err, browser.ErrDNS):
		return ClassDNS
	case errors.Is(err, browser.ErrTimeout):
		return ClassTimeout
	case errors.Is(err, browser.ErrTruncated):
		return ClassTruncated
	default:
		return ClassOther
	}
}

// Retryable reports whether a failure class is transient: injected
// network and resolver faults are worth another attempt, configuration
// errors are not.
func (c ErrorClass) Retryable() bool {
	switch c {
	case ClassDNS, ClassTimeout, ClassTruncated:
		return true
	default:
		return false
	}
}

// Outcome records how one site's measurement went — kept for every site,
// succeeded or not, so a faulted run still accounts for all of its input
// (the paper's harness logged per-site dispositions the same way).
type Outcome struct {
	Domain string
	Rank   int
	// OK means the site yielded a SiteResult (its landing page survived;
	// individual internal pages may still have been dropped).
	OK bool
	// Attempts counts every page-load attempt made for the site,
	// including retries; Retries counts just the re-attempts.
	Attempts int
	Retries  int
	// FailedPages counts internal pages dropped after exhausting
	// retries. The landing page cannot be dropped — its loss fails the
	// whole site.
	FailedPages int
	// Class and Err describe the terminal failure when !OK.
	Class ErrorClass
	Err   error
	// Elapsed is the virtual time the site consumed: page loads plus
	// retry backoff on the site's virtual clock.
	Elapsed time.Duration
}
