package core

import (
	"testing"
	"time"

	"repro/internal/adblock"
	"repro/internal/cdndetect"
	"repro/internal/har"
	"repro/internal/mimecat"
	"repro/internal/psl"
	"repro/internal/toplist"
	"repro/internal/webgen"
)

// fixturePage builds one real page model plus a handcrafted HAR over it,
// so MeasurePage's header-driven analyses can be checked exactly.
func fixtureAnalyzers() Analyzers {
	engine, _ := adblock.Compile([]string{"||evil-tracker.com^", "/pixel?"})
	return Analyzers{
		PSL:     psl.Default(),
		Adblock: engine,
		CDN:     cdndetect.New(nil),
	}
}

func fixtureModel(t *testing.T) *webgen.PageModel {
	t.Helper()
	u := toplist.NewUniverse(toplist.Config{Seed: 99, Size: 300})
	entries := u.Top(1)
	web := webgen.Generate(webgen.Config{Seed: 99, Sites: []webgen.SiteSeed{
		{Domain: entries[0].Domain, Rank: 1},
	}})
	return web.Sites[0].Landing().Build()
}

func handHAR(m *webgen.PageModel) *har.Log {
	nav := time.Date(2020, 3, 12, 9, 0, 0, 0, time.UTC)
	pageHost := m.RootHost()
	log := &har.Log{Page: har.Page{
		URL:             m.URL,
		NavigationStart: nav,
		Timings: har.PageTimings{
			FirstPaint: 700 * time.Millisecond,
			OnLoad:     2 * time.Second,
			SpeedIndex: time.Second,
		},
	}}
	mk := func(url, mime, cc, server, xcache string, size int64, conn bool, depth int, initiator string) har.Entry {
		headers := []har.Header{
			{Name: "Content-Type", Value: mime},
			{Name: "Server", Value: server},
		}
		if cc != "" {
			headers = append(headers, har.Header{Name: "Cache-Control", Value: cc})
		}
		if xcache != "" {
			headers = append(headers, har.Header{Name: "X-Cache", Value: xcache})
		}
		tm := har.Timings{Send: time.Millisecond, Wait: 40 * time.Millisecond, Receive: 10 * time.Millisecond}
		if conn {
			tm.DNS = 10 * time.Millisecond
			tm.Connect = 20 * time.Millisecond
			tm.SSL = 30 * time.Millisecond
		} else {
			tm.DNS, tm.Connect, tm.SSL = har.NotApplicable, har.NotApplicable, har.NotApplicable
		}
		return har.Entry{
			StartedAt: nav,
			Time:      100 * time.Millisecond,
			Request:   har.Request{Method: "GET", URL: url},
			Response:  har.Response{Status: 200, Headers: headers, MIMEType: mime, BodySize: size},
			Timings:   tm,
			Depth:     depth,
			Initiator: initiator,
		}
	}
	root := "https://" + pageHost + "/"
	log.Entries = []har.Entry{
		mk(root, "text/html", "no-cache", "nginx", "", 50_000, true, 0, ""),
		mk("https://static."+m.Page.Site.Domain+"/app.js", "application/javascript", "public, max-age=86400", "nginx", "", 120_000, true, 1, root),
		mk("https://assets-x.fastcache.net/big.jpg", "image/jpeg", "public, max-age=86400", "fastcache", "HIT", 300_000, true, 1, root),
		mk("https://assets-x.fastcache.net/b2.jpg", "image/jpeg", "public, max-age=86400", "fastcache", "MISS", 100_000, false, 1, root),
		mk("https://evil-tracker.com/pixel?id=1", "image/gif", "no-store", "nginx", "", 200, true, 2, "https://static."+m.Page.Site.Domain+"/app.js"),
		mk("http://img."+m.Page.Site.Domain+"/mixed.png", "image/png", "public, max-age=86400", "nginx", "", 20_000, true, 1, root),
	}
	return log
}

func TestMeasurePageExact(t *testing.T) {
	model := fixtureModel(t)
	log := handHAR(model)
	m := MeasurePage(log, model, fixtureAnalyzers())

	if m.Objects != 6 {
		t.Errorf("Objects = %d", m.Objects)
	}
	if m.Bytes != 590_200 {
		t.Errorf("Bytes = %d", m.Bytes)
	}
	if m.PLT != 700*time.Millisecond || m.OnLoad != 2*time.Second {
		t.Errorf("timings %v/%v", m.PLT, m.OnLoad)
	}
	// Non-cacheable: root (no-cache) + tracker (no-store) = 2.
	if m.NonCacheable != 2 {
		t.Errorf("NonCacheable = %d", m.NonCacheable)
	}
	if m.CacheableBytes != 590_200-50_000-200 {
		t.Errorf("CacheableBytes = %d", m.CacheableBytes)
	}
	// CDN: the two fastcache objects (host suffix + server header).
	if m.CDNBytes != 400_000 {
		t.Errorf("CDNBytes = %d", m.CDNBytes)
	}
	if m.CDNHits != 1 || m.CDNMisses != 1 {
		t.Errorf("CDN hits/misses = %d/%d", m.CDNHits, m.CDNMisses)
	}
	// Unique hosts: www, static, fastcache, tracker, img = 5.
	if m.UniqueDomains != 5 {
		t.Errorf("UniqueDomains = %d", m.UniqueDomains)
	}
	// Handshakes: 5 entries opened connections.
	if m.Handshakes != 5 {
		t.Errorf("Handshakes = %d", m.Handshakes)
	}
	if m.HandshakeTime != 5*50*time.Millisecond {
		t.Errorf("HandshakeTime = %v", m.HandshakeTime)
	}
	if len(m.WaitTimes) != 6 {
		t.Errorf("WaitTimes = %d", len(m.WaitTimes))
	}
	// Trackers: the pixel (domain rule and path rule both hit once).
	if m.TrackerRequests != 1 {
		t.Errorf("TrackerRequests = %d", m.TrackerRequests)
	}
	// Mixed content: the http:// image on an https page.
	if !m.MixedContent {
		t.Error("MixedContent not detected")
	}
	// Third parties: fastcache.net and evil-tracker.com (img./static.
	// share the site's eTLD+1).
	if len(m.ThirdParties) != 2 {
		t.Errorf("ThirdParties = %v", m.ThirdParties)
	}
	// Content mix.
	if m.ContentBytes[mimecat.CatImage] != 420_200 {
		t.Errorf("image bytes = %d", m.ContentBytes[mimecat.CatImage])
	}
	if m.ContentBytes[mimecat.CatJS] != 120_000 {
		t.Errorf("js bytes = %d", m.ContentBytes[mimecat.CatJS])
	}
	if m.JSFraction() <= 0 || m.ImageFraction() <= 0 || m.HTMLCSSFraction() <= 0 {
		t.Error("fractions should be positive")
	}
	// Depth counts via initiator graph: depths 0,1,1,1,2,1.
	if m.DepthCounts[0] != 1 || m.DepthCounts[1] != 4 || m.DepthCounts[2] != 1 {
		t.Errorf("DepthCounts = %v", m.DepthCounts)
	}
}

func TestSiteResultHelpers(t *testing.T) {
	mk := func(landing bool, objects int, tps ...string) PageMeasurement {
		return PageMeasurement{IsLanding: landing, Objects: objects, ThirdParties: tps,
			Scheme: "https"}
	}
	s := SiteResult{
		Landing: mk(true, 100, "a.com", "b.com"),
		Internal: []PageMeasurement{
			mk(false, 60, "a.com", "c.com"),
			mk(false, 80, "d.com"),
			mk(false, 90, "c.com", "e.com"),
		},
	}
	objs := func(p *PageMeasurement) float64 { return float64(p.Objects) }
	if got := s.InternalMedian(objs); got != 80 {
		t.Errorf("InternalMedian = %v", got)
	}
	if got := s.Delta(objs); got != 20 {
		t.Errorf("Delta = %v", got)
	}
	if got := s.Ratio(objs); got != 1.25 {
		t.Errorf("Ratio = %v", got)
	}
	// Unseen third parties: c, d, e (a is on the landing page).
	if got := s.UnseenThirdParties(); got != 3 {
		t.Errorf("UnseenThirdParties = %d", got)
	}
	s.Internal[1].Scheme = "http"
	if got := s.InsecureInternal(); got != 1 {
		t.Errorf("InsecureInternal = %d", got)
	}
	s.Internal[2].MixedContent = true
	if got := s.MixedInternal(); got != 1 {
		t.Errorf("MixedInternal = %d", got)
	}
}
