package core

import (
	"bytes"
	"runtime"
	"testing"
	"time"

	"repro/internal/browser"
	"repro/internal/cdn"
	"repro/internal/dnssim"
)

// studyArtifacts runs the full seeded pipeline — cold study, warm
// revisit study, and per-page HAR dumps — at a given worker count and
// GOMAXPROCS, and returns every byte the run would publish. This is the
// end-to-end witness behind detlint's static contract: if any code path
// consults the wall clock, the global RNG, or map iteration order, some
// byte below changes between two calls.
func studyArtifacts(t *testing.T, workers, procs int) (csv, streamCSV, warmCSV, har []byte) {
	t.Helper()
	old := runtime.GOMAXPROCS(procs)
	defer runtime.GOMAXPROCS(old)

	web, list := faultWeb(t)
	res, err := runStudy(t, web, list, func(c *StudyConfig) { c.Workers = workers })
	if err != nil {
		t.Fatalf("cold study: %v", err)
	}
	var csvBuf bytes.Buffer
	if err := WriteMeasurementsCSV(&csvBuf, res); err != nil {
		t.Fatalf("write csv: %v", err)
	}

	// The same dataset through the streaming engine: RunStream + CSVSink
	// must publish the same bytes at every parallelism setting.
	var streamBuf bytes.Buffer
	sink, err := NewCSVSink(&streamBuf)
	if err != nil {
		t.Fatal(err)
	}
	stStream, err := NewStudy(web, StudyConfig{Seed: 7, LandingFetches: 2, Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := stStream.RunStream(list, StreamConfig{Sinks: []SiteSink{sink}}); err != nil {
		t.Fatalf("streaming study: %v", err)
	}

	st, err := NewStudy(web, StudyConfig{Seed: 7, LandingFetches: 2, Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	warmRes, err := st.RunWarm(list, WarmConfig{RevisitDelay: 30 * time.Minute})
	if err != nil {
		t.Fatalf("warm study: %v", err)
	}
	var warmBuf bytes.Buffer
	if err := WriteWarmCSV(&warmBuf, warmRes); err != nil {
		t.Fatalf("write warm csv: %v", err)
	}

	// HAR artifacts, the way cmd/webmeasure -har produces them.
	resolver := dnssim.NewResolver(dnssim.ResolverConfig{
		Name: "isp", Seed: 7, WarmQueryRate: 0.8,
	}, web.Authority(), nil)
	warmth := cdn.PopularityWarmth(2.2, 0.97)
	b, err := browser.New(browser.Config{
		Seed:     7,
		Resolver: resolver,
		CDNFactory: func() *cdn.Network {
			return cdn.NewNetwork(1<<14, warmth, 7)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	var harBuf bytes.Buffer
	for _, set := range list.Sets {
		for _, u := range append([]string{set.Landing}, set.Internal...) {
			page, ok := web.PageByURL(u)
			if !ok {
				continue
			}
			log, err := b.Load(page.Build(), 0)
			if err != nil {
				t.Fatalf("load %s: %v", u, err)
			}
			if err := log.WriteJSON(&harBuf); err != nil {
				t.Fatalf("write har: %v", err)
			}
		}
	}
	return csvBuf.Bytes(), streamBuf.Bytes(), warmBuf.Bytes(), harBuf.Bytes()
}

// TestArtifactsInvariantAcrossParallelism is the determinism regression
// test the lint contract points at: the same seeded study run with
// different worker counts AND different GOMAXPROCS must publish
// byte-identical CSV, warm CSV, and HAR artifacts. Any scheduling
// dependence — a shared RNG, a wall-clock read in a measurement path, an
// unsorted map emission — shows up here as a byte diff.
func TestArtifactsInvariantAcrossParallelism(t *testing.T) {
	csv1, stream1, warm1, har1 := studyArtifacts(t, 1, 1)
	csv8, stream8, warm8, har8 := studyArtifacts(t, 8, runtime.NumCPU())

	if !bytes.Equal(csv1, csv8) {
		t.Errorf("measurement CSV differs between Workers=1/GOMAXPROCS=1 and Workers=8/GOMAXPROCS=%d (%d vs %d bytes)",
			runtime.NumCPU(), len(csv1), len(csv8))
	}
	if !bytes.Equal(stream1, stream8) {
		t.Errorf("streamed CSV differs between parallelism settings (%d vs %d bytes)", len(stream1), len(stream8))
	}
	if !bytes.Equal(stream1, csv1) {
		t.Errorf("streamed CSV differs from in-memory CSV at Workers=1 (%d vs %d bytes)", len(stream1), len(csv1))
	}
	if !bytes.Equal(warm1, warm8) {
		t.Errorf("warm CSV differs between parallelism settings (%d vs %d bytes)", len(warm1), len(warm8))
	}
	if !bytes.Equal(har1, har8) {
		t.Errorf("HAR stream differs between parallelism settings (%d vs %d bytes)", len(har1), len(har8))
	}
	if len(csv1) == 0 || len(warm1) == 0 || len(har1) == 0 {
		t.Fatal("empty artifacts: the pipeline under test produced nothing")
	}
}
