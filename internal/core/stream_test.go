package core

import (
	"bytes"
	"math"
	"sort"
	"testing"

	"repro/internal/hispar"
	"repro/internal/stats"
	"repro/internal/webgen"
)

// streamStudy builds a fresh study over the fault web and runs the
// streaming engine with the given config knobs.
func streamStudy(t *testing.T, web *webgen.Web, list *hispar.List,
	mutate func(*StudyConfig), scfg StreamConfig) (*StreamResult, error) {
	t.Helper()
	cfg := StudyConfig{Seed: 7, LandingFetches: 2}
	if mutate != nil {
		mutate(&cfg)
	}
	st, err := NewStudy(web, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return st.RunStream(list, scfg)
}

// TestStreamCSVMatchesInMemory is the byte-identity half of the
// streaming contract: the CSV a CSVSink emits site by site must equal
// what WriteMeasurementsCSV produces from the full in-memory result.
func TestStreamCSVMatchesInMemory(t *testing.T) {
	web, list := faultWeb(t)

	res, err := runStudy(t, web, list, nil)
	if err != nil {
		t.Fatalf("in-memory study: %v", err)
	}
	var memBuf bytes.Buffer
	if err := WriteMeasurementsCSV(&memBuf, res); err != nil {
		t.Fatal(err)
	}

	var streamBuf bytes.Buffer
	sink, err := NewCSVSink(&streamBuf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := streamStudy(t, web, list, nil, StreamConfig{Sinks: []SiteSink{sink}}); err != nil {
		t.Fatalf("streaming study: %v", err)
	}

	if !bytes.Equal(memBuf.Bytes(), streamBuf.Bytes()) {
		t.Errorf("streamed CSV differs from in-memory CSV (%d vs %d bytes)",
			streamBuf.Len(), memBuf.Len())
	}
	if memBuf.Len() == 0 {
		t.Fatal("empty CSV: nothing was measured")
	}
}

// TestStreamAggregatesMatchInMemory checks the aggregate half of the
// contract against the in-memory result: counter- and geomean-backed
// numbers must be bit-exact, sketch-backed quantiles within the
// sketch's documented relative error.
func TestStreamAggregatesMatchInMemory(t *testing.T) {
	web, list := faultWeb(t)

	res, err := runStudy(t, web, list, nil)
	if err != nil {
		t.Fatal(err)
	}
	sres, err := streamStudy(t, web, list, nil, StreamConfig{})
	if err != nil {
		t.Fatal(err)
	}

	sites := res.Sites
	if len(sites) == 0 {
		t.Fatal("no surviving sites")
	}
	if sres.Agg.Sites != len(sites) {
		t.Fatalf("aggregated %d sites, in-memory kept %d", sres.Agg.Sites, len(sites))
	}

	accessors := map[Metric]func(*PageMeasurement) float64{
		MetricBytes:   func(p *PageMeasurement) float64 { return float64(p.Bytes) },
		MetricObjects: func(p *PageMeasurement) float64 { return float64(p.Objects) },
		MetricPLT:     func(p *PageMeasurement) float64 { return p.PLT.Seconds() },
	}
	for m, f := range accessors {
		var deltas, ratios []float64
		pos, neg := 0, 0
		for i := range sites {
			d := sites[i].Delta(f)
			deltas = append(deltas, d)
			if d > 0 {
				pos++
			} else if d < 0 {
				neg++
			}
			if r := sites[i].Ratio(f); r > 0 {
				ratios = append(ratios, r)
			}
		}

		// Exact rows: sign fractions and the geometric mean.
		if got, want := sres.Agg.FracDeltaPositive(m), float64(pos)/float64(len(sites)); got != want {
			t.Errorf("%v: FracDeltaPositive = %v, want exactly %v", m, got, want)
		}
		if got, want := sres.Agg.FracDeltaNegative(m), float64(neg)/float64(len(sites)); got != want {
			t.Errorf("%v: FracDeltaNegative = %v, want exactly %v", m, got, want)
		}
		if got, want := sres.Agg.GeomeanRatio(m), stats.GeometricMean(ratios); got != want {
			t.Errorf("%v: GeomeanRatio = %v, want exactly %v (rank-order fold must match)", m, got, want)
		}

		// Sketch rows: within the documented relative error of the
		// closest-rank sample quantile (the sketch's convention; with 12
		// sites, interpolated quantiles sit between samples and are not
		// the right reference).
		sortedD := append([]float64(nil), deltas...)
		sort.Float64s(sortedD)
		for _, q := range []float64{0.25, 0.5, 0.75} {
			got := sres.Agg.Delta(m).Quantile(q)
			want := sortedD[int(math.Round(q*float64(len(sortedD)-1)))]
			tol := 2*sres.Agg.Delta(m).Alpha()*math.Abs(want) + 1e-9
			if math.Abs(got-want) > tol {
				t.Errorf("%v: delta q%.2f = %v, want %v ± %v", m, q, got, want, tol)
			}
		}
	}

	// The tail counters cover every survivor here (12 sites < TopK=30).
	if sres.Top.N != len(sites) || sres.Bottom.N != len(sites) {
		t.Errorf("tail N = %d/%d, want %d (list smaller than both tails)",
			sres.Top.N, sres.Bottom.N, len(sites))
	}
	fBytes := accessors[MetricBytes]
	posBytes := 0
	for i := range sites {
		if sites[i].Delta(fBytes) > 0 {
			posBytes++
		}
	}
	if sres.Top.Pos[MetricBytes] != posBytes || sres.Bottom.Pos[MetricBytes] != posBytes {
		t.Errorf("tail Pos[bytes] = %d/%d, want %d",
			sres.Top.Pos[MetricBytes], sres.Bottom.Pos[MetricBytes], posBytes)
	}

	// Distribution sizes: one landing per survivor, every internal page.
	internals := 0
	for i := range sites {
		internals += len(sites[i].Internal)
	}
	if got := sres.Agg.Landing(MetricBytes).Count(); got != uint64(len(sites)) {
		t.Errorf("landing sketch count %d, want %d", got, len(sites))
	}
	if got := sres.Agg.Internal(MetricBytes).Count(); got != uint64(internals) {
		t.Errorf("internal sketch count %d, want %d", got, internals)
	}
}

// TestStreamInvariantAcrossWorkersAndWindows reruns the streaming
// engine at different worker counts and window sizes — with faults
// injected so the failed-site path is exercised — and demands identical
// artifacts: same CSV bytes, same outcomes, bit-identical sketch reads
// and geomeans. This is the streaming extension of the determinism
// contract.
func TestStreamInvariantAcrossWorkersAndWindows(t *testing.T) {
	web, list := faultWeb(t)
	faults := func(c *StudyConfig) {
		c.DNSFailProb = 0.3
		c.FailureBudget = -1 // ignore failures; we compare artifacts
	}

	type run struct {
		csv  []byte
		sres *StreamResult
	}
	do := func(workers, window, shardSize int) run {
		var buf bytes.Buffer
		sink, err := NewCSVSink(&buf)
		if err != nil {
			t.Fatal(err)
		}
		sres, err := streamStudy(t, web, list,
			func(c *StudyConfig) { faults(c); c.Workers = workers },
			StreamConfig{Sinks: []SiteSink{sink}, Window: window, ShardSize: shardSize})
		if err != nil {
			t.Fatalf("workers=%d window=%d: %v", workers, window, err)
		}
		return run{csv: buf.Bytes(), sres: sres}
	}

	base := do(1, 2, 4)
	for _, alt := range []struct{ workers, window, shard int }{
		{8, 3, 4}, {4, 16, 4},
	} {
		got := do(alt.workers, alt.window, alt.shard)
		if !bytes.Equal(base.csv, got.csv) {
			t.Errorf("workers=%d window=%d: CSV differs from serial run (%d vs %d bytes)",
				alt.workers, alt.window, len(got.csv), len(base.csv))
		}
		for i := range base.sres.Outcomes {
			b, g := base.sres.Outcomes[i], got.sres.Outcomes[i]
			if b.OK != g.OK || b.Attempts != g.Attempts || b.Domain != g.Domain {
				t.Errorf("workers=%d: outcome %d differs: %+v vs %+v", alt.workers, i, b, g)
			}
		}
		for m := Metric(0); m < numMetrics; m++ {
			for _, q := range []float64{0, 0.25, 0.5, 0.9, 1} {
				if b, g := base.sres.Agg.Delta(m).Quantile(q), got.sres.Agg.Delta(m).Quantile(q); b != g {
					t.Errorf("workers=%d: delta(%v) q%.2f differs: %v vs %v", alt.workers, m, q, b, g)
				}
			}
			if b, g := base.sres.Agg.GeomeanRatio(m), got.sres.Agg.GeomeanRatio(m); b != g {
				t.Errorf("workers=%d: geomean(%v) differs bitwise: %v vs %v", alt.workers, m, b, g)
			}
		}
		if base.sres.Agg.FewerObjectsButLarger != got.sres.Agg.FewerObjectsButLarger ||
			base.sres.Top != got.sres.Top || base.sres.Bottom != got.sres.Bottom {
			t.Errorf("workers=%d: exact counters differ", alt.workers)
		}
		// The reorder window must actually bound retention.
		if got.sres.MaxInFlight > alt.window && alt.window >= alt.workers+1 {
			t.Errorf("workers=%d window=%d: MaxInFlight %d exceeds window",
				alt.workers, alt.window, got.sres.MaxInFlight)
		}
	}
}

// TestStreamWindowBoundsInFlight pins the memory contract: however many
// workers race, the engine never retains more than Window site results.
func TestStreamWindowBoundsInFlight(t *testing.T) {
	web, list := faultWeb(t)
	sres, err := streamStudy(t, web, list,
		func(c *StudyConfig) { c.Workers = 6 },
		StreamConfig{Window: 7})
	if err != nil {
		t.Fatal(err)
	}
	if sres.MaxInFlight > 7 {
		t.Errorf("MaxInFlight %d exceeds window 7", sres.MaxInFlight)
	}
	if sres.MaxInFlight == 0 {
		t.Error("MaxInFlight 0: reorder buffer never held a site?")
	}
}

// TestStreamShardSummaries checks the rank-block bookkeeping: contiguous
// half-open ranges covering the list, with survivor/failure counts that
// add up.
func TestStreamShardSummaries(t *testing.T) {
	web, list := faultWeb(t)
	sres, err := streamStudy(t, web, list, nil, StreamConfig{ShardSize: 5})
	if err != nil {
		t.Fatal(err)
	}
	n := len(list.Sets)
	if len(sres.Shards) != (n+4)/5 {
		t.Fatalf("%d shards for %d sites at size 5", len(sres.Shards), n)
	}
	covered, ok, failed := 0, 0, 0
	for i, sh := range sres.Shards {
		if sh.Lo != covered {
			t.Errorf("shard %d starts at %d, want %d", i, sh.Lo, covered)
		}
		if sh.Hi <= sh.Lo {
			t.Errorf("shard %d empty range [%d,%d)", i, sh.Lo, sh.Hi)
		}
		if sh.Sites+sh.Failed != sh.Hi-sh.Lo {
			t.Errorf("shard %d: %d ok + %d failed != %d sites", i, sh.Sites, sh.Failed, sh.Hi-sh.Lo)
		}
		covered = sh.Hi
		ok += sh.Sites
		failed += sh.Failed
	}
	if covered != n {
		t.Errorf("shards cover [0,%d), want [0,%d)", covered, n)
	}
	if ok != sres.Agg.Sites || ok+failed != n {
		t.Errorf("shard totals %d ok/%d failed vs aggregate %d of %d", ok, failed, sres.Agg.Sites, n)
	}
}

// TestAggregatesMergeOrderInvariance: counters and sketch reads of a
// merged aggregate must not depend on how sites were partitioned into
// shards (geomeans are bit-stable only for rank-order folds, so they
// get a tolerance here).
func TestAggregatesMergeOrderInvariance(t *testing.T) {
	web, list := faultWeb(t)
	res, err := runStudy(t, web, list, nil)
	if err != nil {
		t.Fatal(err)
	}
	sites := res.Sites
	if len(sites) < 4 {
		t.Fatalf("need a few sites, got %d", len(sites))
	}

	whole := NewAggregates()
	for i := range sites {
		whole.AccumulateSite(&sites[i])
	}

	// Partition round-robin into 3 shards, merge in a scrambled order.
	shards := []*Aggregates{NewAggregates(), NewAggregates(), NewAggregates()}
	for i := range sites {
		shards[i%3].AccumulateSite(&sites[i])
	}
	merged := NewAggregates()
	for _, i := range []int{2, 0, 1} {
		if err := merged.Merge(shards[i]); err != nil {
			t.Fatal(err)
		}
	}

	if whole.Sites != merged.Sites ||
		whole.FewerObjectsButLarger != merged.FewerObjectsButLarger ||
		whole.InsecureInternalSites != merged.InsecureInternalSites {
		t.Error("counters differ between whole and merged aggregates")
	}
	for m := Metric(0); m < numMetrics; m++ {
		for _, q := range []float64{0, 0.5, 1} {
			if a, b := whole.Delta(m).Quantile(q), merged.Delta(m).Quantile(q); a != b {
				t.Errorf("delta(%v) q%.1f: %v vs %v", m, q, a, b)
			}
		}
		a, b := whole.GeomeanRatio(m), merged.GeomeanRatio(m)
		if math.Abs(a-b) > 1e-9*math.Abs(a) {
			t.Errorf("geomean(%v) diverged: %v vs %v", m, a, b)
		}
	}
}

// TestStreamFailureBudget: the budget semantics must match Run's — the
// run completes, the error reports the overage.
func TestStreamFailureBudget(t *testing.T) {
	web, list := faultWeb(t)
	sres, err := streamStudy(t, web, list,
		func(c *StudyConfig) { c.DNSFailProb = 0.9; c.MaxAttempts = 1; c.FailureBudget = 0.01 },
		StreamConfig{})
	if err == nil {
		t.Fatal("expected a failure-budget error")
	}
	if sres == nil {
		t.Fatal("budget overrun must still return the completed result")
	}
	if sres.FailedSites() == 0 {
		t.Error("no failed sites despite DNSFailProb=0.9")
	}
	if got := len(sres.Outcomes); got != len(list.Sets) {
		t.Errorf("outcomes %d, want %d — every site must be attempted", got, len(list.Sets))
	}
}
