package core

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/simnet"
)

// runWarmStudy runs one cold→warm study over the fault web.
func runWarmStudy(t *testing.T, mutate func(*StudyConfig)) (*WarmStudyResult, error) {
	t.Helper()
	web, list := faultWeb(t)
	cfg := StudyConfig{Seed: 7, LandingFetches: 2}
	if mutate != nil {
		mutate(&cfg)
	}
	st, err := NewStudy(web, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return st.RunWarm(list, WarmConfig{RevisitDelay: 30 * time.Minute})
}

// TestWarmStudySavings checks the repeat-view study's core physics on
// every measured pair: warm loads transfer no more bytes and issue no
// more network requests than cold ones, cache activity is visible, and
// per-pair accounting is internally consistent.
func TestWarmStudySavings(t *testing.T) {
	res, err := runWarmStudy(t, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sites) == 0 {
		t.Fatal("no sites measured")
	}
	hits, revals := 0, 0
	check := func(domain string, p *PagePair) {
		t.Helper()
		if p.Cold.TransferBytes != p.Cold.Bytes {
			t.Errorf("%s: cold transfer %d != bytes %d", domain, p.Cold.TransferBytes, p.Cold.Bytes)
		}
		if p.Cold.NetworkRequests != p.Cold.Objects {
			t.Errorf("%s: cold requests %d != objects %d", domain, p.Cold.NetworkRequests, p.Cold.Objects)
		}
		if p.Warm.TransferBytes >= p.Cold.TransferBytes {
			t.Errorf("%s: warm transfer %d not below cold %d", domain, p.Warm.TransferBytes, p.Cold.TransferBytes)
		}
		if p.Warm.Bytes != p.Cold.Bytes {
			t.Errorf("%s: warm page bytes %d != cold %d (cache must replay full bodies)",
				domain, p.Warm.Bytes, p.Cold.Bytes)
		}
		if p.Warm.CacheHits+p.Warm.NetworkRequests != p.Warm.Objects {
			t.Errorf("%s: hits %d + requests %d != objects %d",
				domain, p.Warm.CacheHits, p.Warm.NetworkRequests, p.Warm.Objects)
		}
		if s := p.ByteSavings(); s <= 0 || s > 1 {
			t.Errorf("%s: byte savings %v outside (0, 1]", domain, s)
		}
		hits += p.Warm.CacheHits
		revals += p.Warm.Revalidations
	}
	for i := range res.Sites {
		s := &res.Sites[i]
		check(s.Domain, &s.Landing)
		for j := range s.Internal {
			check(s.Domain, &s.Internal[j])
		}
	}
	if hits == 0 || revals == 0 {
		t.Errorf("warm loads show hits=%d revals=%d; want both > 0 at a 30m revisit", hits, revals)
	}
	if res.Stats.Counters["warm.pairs"] == 0 || res.Stats.Counters["warm.cache.hits"] == 0 {
		t.Errorf("run metrics missing warm counters: %+v", res.Stats.Counters)
	}
}

// TestWarmStudyDeterministic locks the PR's invariants: the warm study
// is byte-identical across runs and across worker counts.
func TestWarmStudyDeterministic(t *testing.T) {
	run := func(workers int) *WarmStudyResult {
		res, err := runWarmStudy(t, func(c *StudyConfig) { c.Workers = workers })
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(0), run(0)
	if !reflect.DeepEqual(a.Sites, b.Sites) {
		t.Fatal("warm measurements differ across identical runs")
	}
	serial, parallel := run(1), run(8)
	if !reflect.DeepEqual(serial.Sites, parallel.Sites) {
		t.Fatal("warm measurements differ between Workers=1 and Workers=8")
	}
	if !reflect.DeepEqual(keysOf(serial.Outcomes), keysOf(parallel.Outcomes)) {
		t.Fatal("warm outcomes differ between Workers=1 and Workers=8")
	}

	// And the CSV artifact is byte-identical too.
	var buf1, buf2 bytes.Buffer
	if err := WriteWarmCSV(&buf1, a); err != nil {
		t.Fatal(err)
	}
	if err := WriteWarmCSV(&buf2, parallel); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf1.Bytes(), buf2.Bytes()) {
		t.Fatal("warm CSV differs across runs")
	}
	if lines := strings.Count(buf1.String(), "\n"); lines < len(a.Sites)+1 {
		t.Errorf("warm CSV has %d lines for %d sites", lines, len(a.Sites))
	}
}

// TestWarmStudyUnderFaults injects a moderate fault mix: the runner must
// degrade per its budget (retry, drop pages, keep sites) and still
// produce valid pairs — a faulted revalidation must never corrupt a
// pair that eventually succeeds.
func TestWarmStudyUnderFaults(t *testing.T) {
	res, err := runWarmStudy(t, func(c *StudyConfig) {
		c.Faults = simnet.FaultConfig{Rates: simnet.FaultRates{Timeout: 0.03, Truncate: 0.03}}
		c.DNSFailProb = 0.03
		c.FailureBudget = -1
	})
	if err != nil {
		t.Fatalf("unlimited budget must not error: %v", err)
	}
	if len(res.Sites) == 0 {
		t.Fatal("no sites survived a 3% fault mix")
	}
	retries := 0
	for _, o := range res.Outcomes {
		retries += o.Retries
	}
	if retries == 0 {
		t.Error("no retries at a 3% fault rate — injection is not reaching the warm runner")
	}
	for i := range res.Sites {
		s := &res.Sites[i]
		pairs := append([]PagePair{s.Landing}, s.Internal...)
		for _, p := range pairs {
			if p.Cold.Objects == 0 || p.Warm.Objects == 0 {
				t.Fatalf("%s: surviving pair carries an empty measurement", s.Domain)
			}
			if p.Warm.TransferBytes > p.Cold.TransferBytes {
				t.Errorf("%s: warm transfer %d exceeds cold %d", s.Domain, p.Warm.TransferBytes, p.Cold.TransferBytes)
			}
		}
	}

	// Determinism holds under faults as well.
	again, err := runWarmStudy(t, func(c *StudyConfig) {
		c.Faults = simnet.FaultConfig{Rates: simnet.FaultRates{Timeout: 0.03, Truncate: 0.03}}
		c.DNSFailProb = 0.03
		c.FailureBudget = -1
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Sites, again.Sites) {
		t.Fatal("faulted warm study differs across identical runs")
	}
}
