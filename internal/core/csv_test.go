package core

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func datasetFixture() *StudyResult {
	mk := func(landing bool, url string) PageMeasurement {
		return PageMeasurement{
			URL: url, Scheme: "https", IsLanding: landing,
			Bytes: 2_000_000, Objects: 90, PLT: 800 * time.Millisecond,
			SpeedIndex: time.Second, OnLoad: 2 * time.Second,
			NonCacheable: 25, CacheableBytes: 1_500_000,
			CDNBytes: 900_000, CDNHits: 10, CDNMisses: 5,
			UniqueDomains: 22, Hints: 3, Handshakes: 40,
			HandshakeTime: 1200 * time.Millisecond, TrackerRequests: 12,
			AdSlots: 4, HasHB: landing, MixedContent: !landing,
			ThirdParties: []string{"a.com", "b.com"},
			DepthCounts:  []int{1, 60, 20, 9, 0, 0},
		}
	}
	return &StudyResult{Sites: []SiteResult{
		{
			Domain: "one.com", Rank: 1, Category: "News",
			Landing:  mk(true, "https://www.one.com/"),
			Internal: []PageMeasurement{mk(false, "https://www.one.com/a"), mk(false, "https://www.one.com/b")},
		},
		{
			Domain: "two.net", Rank: 7, Category: "Shopping",
			Landing:  mk(true, "https://www.two.net/"),
			Internal: []PageMeasurement{mk(false, "https://www.two.net/p/1")},
		},
	}}
}

func TestMeasurementsCSVRoundTrip(t *testing.T) {
	res := datasetFixture()
	var buf bytes.Buffer
	if err := WriteMeasurementsCSV(&buf, res); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "domain,rank,category,page_type,url") {
		t.Fatalf("header wrong: %.80s", out)
	}
	if strings.Count(out, "\n") != 1+5 {
		t.Fatalf("rows = %d, want 5 + header", strings.Count(out, "\n")-1)
	}

	got, err := ReadMeasurementsCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Sites) != 2 {
		t.Fatalf("sites = %d", len(got.Sites))
	}
	s := got.Sites[0]
	if s.Domain != "one.com" || s.Rank != 1 || s.Category != "News" {
		t.Errorf("site meta = %+v", s)
	}
	if len(s.Internal) != 2 {
		t.Fatalf("internal = %d", len(s.Internal))
	}
	l := s.Landing
	if !l.IsLanding || l.Bytes != 2_000_000 || l.Objects != 90 ||
		l.PLT != 800*time.Millisecond || l.Handshakes != 40 ||
		l.TrackerRequests != 12 || !l.HasHB || l.MixedContent {
		t.Errorf("landing round trip lost data: %+v", l)
	}
	if len(l.ThirdParties) != 2 {
		t.Errorf("third-party count lost: %v", l.ThirdParties)
	}
	deep := 0
	for d := 2; d < len(l.DepthCounts); d++ {
		deep += l.DepthCounts[d]
	}
	if deep != 29 {
		t.Errorf("depth2plus = %d, want 29", deep)
	}
	// Aggregations keep working on the re-read dataset.
	if got.Sites[0].Delta(func(p *PageMeasurement) float64 { return float64(p.Objects) }) != 0 {
		t.Error("delta over re-read dataset broken")
	}
}

func TestReadMeasurementsCSVErrors(t *testing.T) {
	if _, err := ReadMeasurementsCSV(strings.NewReader("not,a,dataset\n")); err == nil {
		t.Error("want error for wrong header")
	}
	if _, err := ReadMeasurementsCSV(strings.NewReader("")); err == nil {
		t.Error("want error for empty input")
	}
}
