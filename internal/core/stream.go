package core

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"math"
	"strconv"
	"sync"
	"time"

	"repro/internal/hispar"
	"repro/internal/runstats"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/vclock"
)

// This file is the streaming study engine: HAR → metrics → aggregates
// with constant memory. Workers measure sites exactly as Study.Run
// always has; completed SiteResults flow through a bounded reorder
// window to a single fold goroutine that retires them in site-rank
// order — through the configured sinks (streaming CSV, collectors) and
// into rank-sharded accumulators of mergeable quantile sketches — and
// then drops them. Peak retained SiteResults are bounded by the window
// regardless of list size, which is what lets papereval-style studies
// scale from H1K toward H100K without holding the result set.
//
// Determinism: because the fold runs in site-rank order, every
// accumulated float (ratio log-sums, sketch Sums) sees the same
// addition order at any worker count, so streamed aggregates and CSV
// bytes are bit-identical across parallelism — the same invariant
// TestArtifactsInvariantAcrossParallelism enforces for the in-memory
// path. Shards close in rank order and merge into the study-wide
// aggregate immediately, so at most one shard accumulator is live at a
// time.

// Metric enumerates the per-page quantities the streaming aggregator
// tracks as full distributions. Units match the experiment tables:
// durations in seconds, everything else in its natural count.
type Metric int

const (
	MetricBytes Metric = iota
	MetricObjects
	MetricPLT
	MetricSpeedIndex
	MetricOnLoad
	MetricNonCacheable
	MetricDomains
	numMetrics
)

var metricNames = [numMetrics]string{
	"bytes", "objects", "plt_s", "speed_index_s", "onload_s", "noncacheable", "domains",
}

func (m Metric) String() string {
	if m < 0 || m >= numMetrics {
		return fmt.Sprintf("metric(%d)", int(m))
	}
	return metricNames[m]
}

// metricOf reads one metric from a page measurement.
func metricOf(p *PageMeasurement, m Metric) float64 {
	switch m {
	case MetricBytes:
		return float64(p.Bytes)
	case MetricObjects:
		return float64(p.Objects)
	case MetricPLT:
		return p.PLT.Seconds()
	case MetricSpeedIndex:
		return p.SpeedIndex.Seconds()
	case MetricOnLoad:
		return p.OnLoad.Seconds()
	case MetricNonCacheable:
		return float64(p.NonCacheable)
	case MetricDomains:
		return float64(p.UniqueDomains)
	default:
		return 0
	}
}

// metricAgg is one metric's streaming state: sketches over the three
// distributions the paper keeps coming back to (landing values,
// internal-page values, per-site landing−internal-median deltas), exact
// delta sign counters, and the exact log-sum behind geometric-mean
// ratios.
type metricAgg struct {
	delta    *stats.Sketch
	landing  *stats.Sketch
	internal *stats.Sketch

	deltaPos, deltaNeg int
	logRatioSum        float64
	ratioN             int
}

// Aggregates is a constant-size accumulator of per-site study results —
// the shard unit of the streaming engine. Fold sites in with
// AccumulateSite; combine shards with Merge. Sketch reads carry the
// sketch's documented relative error; counter and geomean reads are
// exact.
type Aggregates struct {
	// Sites counts folded (surviving) sites.
	Sites int
	m     [numMetrics]metricAgg

	// FewerObjectsButLarger counts sites whose landing page has fewer
	// objects yet more bytes than the internal median (Fig 2b's 5% row).
	FewerObjectsButLarger int
	// UnseenTP sketches the per-site count of third parties contacted
	// only by internal pages (Fig 8b).
	UnseenTP *stats.Sketch
	// HTTPLandings, InsecureInternalSites, and MixedInternalSites count
	// sites for the §6.1 security rows.
	HTTPLandings          int
	InsecureInternalSites int
	MixedInternalSites    int
}

// NewAggregates builds an empty accumulator at the default sketch
// accuracy.
func NewAggregates() *Aggregates {
	a := &Aggregates{UnseenTP: stats.NewDefaultSketch()}
	for i := range a.m {
		a.m[i] = metricAgg{
			delta:    stats.NewDefaultSketch(),
			landing:  stats.NewDefaultSketch(),
			internal: stats.NewDefaultSketch(),
		}
	}
	return a
}

// AccumulateSite folds one surviving site into the accumulator and
// returns the per-metric delta signs (+1, 0, −1), which the engine
// reuses for its exact tail counters. The site result is not retained.
func (a *Aggregates) AccumulateSite(s *SiteResult) [numMetrics]int8 {
	a.Sites++
	var signs [numMetrics]int8
	var deltas [numMetrics]float64
	for m := Metric(0); m < numMetrics; m++ {
		ag := &a.m[m]
		lv := metricOf(&s.Landing, m)
		ag.landing.Insert(lv)
		for i := range s.Internal {
			ag.internal.Insert(metricOf(&s.Internal[i], m))
		}
		imed := s.InternalMedian(func(p *PageMeasurement) float64 { return metricOf(p, m) })
		d := lv - imed
		deltas[m] = d
		ag.delta.Insert(d)
		if d > 0 {
			ag.deltaPos++
			signs[m] = 1
		} else if d < 0 {
			ag.deltaNeg++
			signs[m] = -1
		}
		// Same ratio rule as SiteResult.Ratio + the experiments' ratios
		// helper: undefined (zero-median) and non-positive ratios drop.
		if imed != 0 {
			if r := lv / imed; r > 0 {
				ag.logRatioSum += math.Log(r)
				ag.ratioN++
			}
		}
	}
	if deltas[MetricObjects] < 0 && deltas[MetricBytes] > 0 {
		a.FewerObjectsButLarger++
	}
	a.UnseenTP.Insert(float64(s.UnseenThirdParties()))
	if s.Landing.Scheme == "http" {
		a.HTTPLandings++
	}
	if s.InsecureInternal() > 0 {
		a.InsecureInternalSites++
	}
	if s.MixedInternal() > 0 {
		a.MixedInternalSites++
	}
	return signs
}

// Merge folds other into a. Counter merges are exact and commutative;
// float log-sums add in call order, so merge shards in rank order for
// bit-stable geomeans.
func (a *Aggregates) Merge(other *Aggregates) error {
	if other == nil {
		return nil
	}
	a.Sites += other.Sites
	a.FewerObjectsButLarger += other.FewerObjectsButLarger
	a.HTTPLandings += other.HTTPLandings
	a.InsecureInternalSites += other.InsecureInternalSites
	a.MixedInternalSites += other.MixedInternalSites
	if err := a.UnseenTP.Merge(other.UnseenTP); err != nil {
		return err
	}
	for m := range a.m {
		ag, og := &a.m[m], &other.m[m]
		ag.deltaPos += og.deltaPos
		ag.deltaNeg += og.deltaNeg
		ag.logRatioSum += og.logRatioSum
		ag.ratioN += og.ratioN
		for _, pair := range [][2]*stats.Sketch{
			{ag.delta, og.delta}, {ag.landing, og.landing}, {ag.internal, og.internal},
		} {
			if err := pair[0].Merge(pair[1]); err != nil {
				return err
			}
		}
	}
	return nil
}

// Delta returns the sketch of per-site landing−internal-median deltas.
func (a *Aggregates) Delta(m Metric) *stats.Sketch { return a.m[m].delta }

// Landing returns the sketch of landing-page values.
func (a *Aggregates) Landing(m Metric) *stats.Sketch { return a.m[m].landing }

// Internal returns the sketch of internal-page values.
func (a *Aggregates) Internal(m Metric) *stats.Sketch { return a.m[m].internal }

// FracDeltaPositive returns the exact fraction of sites whose landing
// page exceeds the internal median on m (the paper's headline "65% of
// sites" style numbers).
func (a *Aggregates) FracDeltaPositive(m Metric) float64 {
	if a.Sites == 0 {
		return 0
	}
	return float64(a.m[m].deltaPos) / float64(a.Sites)
}

// FracDeltaNegative is the landing-smaller (or landing-faster, for time
// metrics) counterpart of FracDeltaPositive, equally exact.
func (a *Aggregates) FracDeltaNegative(m Metric) float64 {
	if a.Sites == 0 {
		return 0
	}
	return float64(a.m[m].deltaNeg) / float64(a.Sites)
}

// GeomeanRatio returns the exact geometric mean of per-site
// landing/internal-median ratios of m. When sites fold in rank order it
// matches stats.GeometricMean over the experiments' ratios helper bit
// for bit.
func (a *Aggregates) GeomeanRatio(m Metric) float64 {
	if a.m[m].ratioN == 0 {
		return 0
	}
	return math.Exp(a.m[m].logRatioSum / float64(a.m[m].ratioN))
}

// TailCounters are exact delta-sign counters over a rank slice of the
// list (the paper's Ht30 / Hb100 cuts), cheap enough to keep per tail
// without sketches.
type TailCounters struct {
	N        int
	Pos, Neg [numMetrics]int
}

func (t *TailCounters) accumulate(signs [numMetrics]int8) {
	t.N++
	for m, s := range signs {
		if s > 0 {
			t.Pos[m]++
		} else if s < 0 {
			t.Neg[m]++
		}
	}
}

// FracPositive returns the fraction of the tail's sites with a positive
// delta on m.
func (t *TailCounters) FracPositive(m Metric) float64 {
	if t.N == 0 {
		return 0
	}
	return float64(t.Pos[m]) / float64(t.N)
}

// FracNegative returns the fraction with a negative delta on m.
func (t *TailCounters) FracNegative(m Metric) float64 {
	if t.N == 0 {
		return 0
	}
	return float64(t.Neg[m]) / float64(t.N)
}

// ShardSummary is the footprint a closed rank shard leaves behind: its
// site-index range, survival counts, and two headline medians read from
// the shard's sketches just before they merged into the study-wide
// aggregate. It is the streaming analogue of a rank-binned table row.
type ShardSummary struct {
	Lo, Hi           int // half-open site-index range [Lo, Hi)
	Sites, Failed    int
	MedianLandingPLT float64 // seconds
	MedianDeltaBytes float64
}

// SiteSink consumes sites as the streaming fold retires them.
// ConsumeSite is called exactly once per input site — failed ones
// included (with a zero SiteResult), so sinks can account for every
// input — always from a single goroutine and always in site-index
// order. Flush is called once after the last site.
type SiteSink interface {
	ConsumeSite(res *SiteResult, out *Outcome) error
	Flush() error
}

// StreamConfig shapes one streaming run.
type StreamConfig struct {
	// Sinks receive every site in rank order (e.g. NewCSVSink).
	Sinks []SiteSink
	// ShardSize is the number of consecutive sites per accumulator
	// shard (default 256).
	ShardSize int
	// Window bounds how many sites may be dispatched but not yet folded
	// — the reorder buffer, and therefore the peak number of retained
	// SiteResults (default 4×Workers).
	Window int
	// TopK and BottomK size the exact tail counters (defaults 30 and
	// 100: the paper's Ht30 and Hb100 cuts). They count surviving sites
	// from the head and tail of the rank order.
	TopK, BottomK int
	// Trace, when non-nil, receives the run's span stream (study, shard,
	// site, and — at higher detail levels — load/exchange/phase spans).
	// The fold merges per-site recorders in rank order, so the exported
	// trace is byte-identical at any worker count.
	Trace *trace.Tracer
}

func (c StreamConfig) withDefaults(workers int) StreamConfig {
	if c.ShardSize <= 0 {
		c.ShardSize = 256
	}
	if c.Window <= 0 {
		c.Window = 4 * workers
	}
	if c.Window < workers+1 {
		c.Window = workers + 1
	}
	if c.TopK <= 0 {
		c.TopK = 30
	}
	if c.BottomK <= 0 {
		c.BottomK = 100
	}
	return c
}

// StreamResult is what a streaming run retains: outcomes (small, one
// record per input site), the merged constant-size aggregates, and
// per-shard summaries — never the per-site measurements themselves.
type StreamResult struct {
	List     *hispar.List
	Outcomes []Outcome
	// Agg holds the study-wide aggregates, merged from rank shards.
	Agg *Aggregates
	// Top and Bottom are exact delta-sign counters over the first TopK
	// and last BottomK surviving sites.
	Top, Bottom TailCounters
	// Shards summarizes each closed rank shard in order.
	Shards []ShardSummary
	Stats  runstats.Snapshot
	// MaxInFlight is the peak number of completed-but-unfolded sites the
	// reorder window held — the engine's memory high-water mark in site
	// results (always ≤ the configured Window).
	MaxInFlight int
}

// FailedSites returns how many input sites yielded no measurement.
func (r *StreamResult) FailedSites() int {
	n := 0
	for i := range r.Outcomes {
		if !r.Outcomes[i].OK {
			n++
		}
	}
	return n
}

// siteDone carries one measured site from a worker to the fold.
type siteDone struct {
	i   int
	res SiteResult
	out Outcome
	// rec holds the site's spans (nil when tracing is off); the fold
	// stamps the site span into it and merges it in rank order.
	rec *trace.Recorder
}

// streamFold owns all single-goroutine fold state: sinks, the live
// shard, tail counters, and error accumulation. None of it is locked —
// only the fold goroutine (and, after it exits, the caller) touches it.
type streamFold struct {
	st  *Study
	cfg StreamConfig
	res *StreamResult

	shard       *Aggregates
	shardLo     int
	shardFailed int

	okCount    int
	bottomRing [][numMetrics]int8
	bottomNext int

	// rec collects the fold's own spans (shards, study) on tid 0; it is
	// merged after every site recorder so merge order stays rank-derived.
	// maxDoneV tracks the latest virtual completion among retired sites:
	// the difference to the next site's own completion is the virtual
	// reorder-window wait stamped on each site span.
	rec      *trace.Recorder
	maxDoneV time.Duration

	sinkErr  error
	siteErrs []error
}

// retire processes site d in rank order: shard boundary, outcome
// bookkeeping, sinks, accumulators, tail counters.
func (f *streamFold) retire(d *siteDone) {
	if d.i > 0 && d.i%f.cfg.ShardSize == 0 {
		f.closeShard(d.i)
	}
	f.res.Outcomes[d.i] = d.out
	f.st.stats.Observe("site.attempts", float64(d.out.Attempts))
	f.recordSiteSpan(d)
	if f.sinkErr == nil {
		for _, s := range f.cfg.Sinks {
			if err := s.ConsumeSite(&d.res, &f.res.Outcomes[d.i]); err != nil {
				f.sinkErr = fmt.Errorf("core: stream sink: %w", err)
				break
			}
		}
	}
	if !d.out.OK {
		f.shardFailed++
		f.siteErrs = append(f.siteErrs, d.out.Err)
		return
	}
	signs := f.shard.AccumulateSite(&d.res)
	f.okCount++
	if f.okCount <= f.cfg.TopK {
		f.res.Top.accumulate(signs)
	}
	if len(f.bottomRing) < f.cfg.BottomK {
		f.bottomRing = append(f.bottomRing, signs)
	} else {
		f.bottomRing[f.bottomNext] = signs
		f.bottomNext = (f.bottomNext + 1) % f.cfg.BottomK
	}
}

// recordSiteSpan stamps site i's root span into its recorder and merges
// the recorder into the run tracer. The reorder-window wait attribute
// is virtual and order-derived — how far this site's virtual completion
// trails the latest one already retired — so it is identical at any
// worker count, unlike a wall-clock wait.
func (f *streamFold) recordSiteSpan(d *siteDone) {
	if f.cfg.Trace == nil {
		return
	}
	start := f.st.epoch.Add(time.Duration(d.i) * f.st.cfg.SitePacing)
	doneV := time.Duration(d.i)*f.st.cfg.SitePacing + d.out.Elapsed
	wait := f.maxDoneV - doneV
	if wait < 0 {
		wait = 0
	}
	if doneV > f.maxDoneV {
		f.maxDoneV = doneV
	}
	attrs := []trace.Attr{
		{Key: "rank", Val: strconv.Itoa(d.out.Rank)},
		{Key: "domain", Val: d.out.Domain},
		{Key: "attempts", Val: strconv.Itoa(d.out.Attempts)},
		{Key: "retries", Val: strconv.Itoa(d.out.Retries)},
		{Key: "window.wait_us", Val: strconv.FormatInt(wait.Microseconds(), 10)},
	}
	if d.out.OK {
		attrs = append(attrs, trace.Attr{Key: "ok", Val: "true"})
		if d.out.FailedPages > 0 {
			attrs = append(attrs, trace.Attr{Key: "failed_pages", Val: strconv.Itoa(d.out.FailedPages)})
		}
	} else {
		attrs = append(attrs, trace.Attr{Key: "ok", Val: "false"},
			trace.Attr{Key: "class", Val: string(d.out.Class)})
	}
	d.rec.Record(trace.Span{
		ID:   trace.SiteSpanID(d.out.Rank),
		Name: "site " + d.out.Domain, Cat: "site",
		Start: start, Dur: d.out.Elapsed, Attrs: attrs,
	})
	f.cfg.Trace.Merge(d.rec)
}

// closeShard summarizes the live shard over [shardLo, hi), merges it
// into the study-wide aggregate, and starts a fresh one.
func (f *streamFold) closeShard(hi int) {
	if hi <= f.shardLo {
		return
	}
	f.res.Shards = append(f.res.Shards, ShardSummary{
		Lo: f.shardLo, Hi: hi,
		Sites:            f.shard.Sites,
		Failed:           f.shardFailed,
		MedianLandingPLT: f.shard.Landing(MetricPLT).Median(),
		MedianDeltaBytes: f.shard.Delta(MetricBytes).Median(),
	})
	// Rank order: shard s merges before any site of shard s+1 folds.
	if err := f.res.Agg.Merge(f.shard); err != nil && f.sinkErr == nil {
		f.sinkErr = err
	}
	if f.rec != nil {
		sum := &f.res.Shards[len(f.res.Shards)-1]
		f.rec.Record(trace.Span{
			ID:   trace.DeriveID("shard", strconv.Itoa(f.shardLo)),
			Name: fmt.Sprintf("shard [%d,%d)", f.shardLo, hi), Cat: "shard",
			Start: f.st.epoch.Add(time.Duration(f.shardLo) * f.st.cfg.SitePacing),
			Dur:   time.Duration(hi-f.shardLo) * f.st.cfg.SitePacing,
			Attrs: []trace.Attr{
				{Key: "sites", Val: strconv.Itoa(sum.Sites)},
				{Key: "failed", Val: strconv.Itoa(sum.Failed)},
				{Key: "median_landing_plt_s", Val: strconv.FormatFloat(sum.MedianLandingPLT, 'g', 6, 64)},
				{Key: "median_delta_bytes", Val: strconv.FormatFloat(sum.MedianDeltaBytes, 'g', 6, 64)},
			},
		})
	}
	f.shard = NewAggregates()
	f.shardLo, f.shardFailed = hi, 0
}

// finish closes the last shard, flushes sinks, and folds the bottom
// ring (the last ≤BottomK surviving sites, oldest slot first).
func (f *streamFold) finish(n int) {
	f.closeShard(n)
	for _, s := range f.cfg.Sinks {
		if err := s.Flush(); err != nil && f.sinkErr == nil {
			f.sinkErr = fmt.Errorf("core: stream sink flush: %w", err)
		}
	}
	for i := 0; i < len(f.bottomRing); i++ {
		f.res.Bottom.accumulate(f.bottomRing[(f.bottomNext+i)%len(f.bottomRing)])
	}
	if f.rec != nil {
		f.rec.Record(trace.Span{
			ID:   trace.DeriveID("study"),
			Name: "study", Cat: "study",
			Start: f.st.epoch,
			Dur:   time.Duration(n) * f.st.cfg.SitePacing,
			Attrs: []trace.Attr{
				{Key: "sites", Val: strconv.Itoa(n)},
				{Key: "failed", Val: strconv.Itoa(len(f.siteErrs))},
				{Key: "shards", Val: strconv.Itoa(len(f.res.Shards))},
				{Key: "shard_size", Val: strconv.Itoa(f.cfg.ShardSize)},
			},
		})
		// Fold spans merge last: every site recorder has already merged
		// by the time finish runs, so the stream stays rank-ordered.
		f.cfg.Trace.Merge(f.rec)
	}
}

// RunStream measures every site in the list with the same fault-tolerant,
// scheduling-invariant semantics as Run, but streams results out instead
// of accumulating them: sinks and shard accumulators consume each site in
// rank order and the engine retains at most Window site results at any
// moment. The failure budget works exactly as in Run: every site is
// attempted, and the budget only decides whether an aggregate error is
// reported alongside the (complete) result.
//
//detlint:hotpath -- the streaming study engine; H1M-scale runs live here
func (st *Study) RunStream(list *hispar.List, cfg StreamConfig) (*StreamResult, error) {
	cfg = cfg.withDefaults(st.cfg.Workers)
	n := len(list.Sets)
	// Validate the browser configuration before fanning out.
	if _, err := st.newBrowser(st.cfg.Seed); err != nil {
		return nil, err
	}

	res := &StreamResult{
		List:     list,
		Outcomes: make([]Outcome, n),
		Agg:      NewAggregates(),
	}
	fold := &streamFold{st: st, cfg: cfg, res: res, shard: NewAggregates(),
		rec: cfg.Trace.Recorder(0, 0)}

	jobs := make(chan int)
	completed := make(chan siteDone, cfg.Window)
	// window tokens bound dispatched-but-unfolded sites: acquired before
	// a site is handed to a worker, released when the fold retires it.
	// The fold never acquires, so the loop cannot deadlock.
	window := make(chan struct{}, cfg.Window)

	var workerWG sync.WaitGroup
	// Operational telemetry only: worker utilization is real elapsed
	// time by definition, so it goes through vclock.Wall — the sanctioned
	// wall-clock accessor — and never touches measurement results.
	wallStart := vclock.Wall()
	for w := 0; w < st.cfg.Workers; w++ {
		workerWG.Add(1)
		go func(w int) {
			defer workerWG.Done()
			var busy time.Duration
			sites := 0
			for i := range jobs {
				t0 := vclock.Wall()
				// Chrome trace rows are per-site (tid = site index + 1; the
				// fold's study/shard spans own tid 0), never per-worker:
				// worker identity must not leak into the byte-stable trace.
				rec := cfg.Trace.Recorder(int64(i)+1, list.Sets[i].Rank)
				r, out := st.measureSiteResilient(i, list.Sets[i], rec)
				busy += vclock.WallSince(t0)
				sites++
				completed <- siteDone{i: i, res: r, out: out, rec: rec}
			}
			if wall := vclock.WallSince(wallStart); wall > 0 {
				st.stats.SetGauge(fmt.Sprintf("worker.%d.utilization", w), busy.Seconds()/wall.Seconds())
			}
			st.stats.Inc(fmt.Sprintf("worker.%d.sites", w), int64(sites))
		}(w)
	}

	// The fold: a single goroutine retiring sites in rank order through
	// a reorder buffer keyed by site index.
	var foldWG sync.WaitGroup
	foldWG.Add(1)
	go func() {
		defer foldWG.Done()
		pending := make(map[int]siteDone, cfg.Window)
		next := 0
		for d := range completed {
			pending[d.i] = d
			if len(pending) > res.MaxInFlight {
				res.MaxInFlight = len(pending)
			}
			for {
				cur, ok := pending[next]
				if !ok {
					break
				}
				delete(pending, next)
				fold.retire(&cur)
				next++
				<-window
			}
		}
	}()

	for i := 0; i < n; i++ {
		window <- struct{}{}
		jobs <- i
	}
	close(jobs)
	workerWG.Wait()
	close(completed)
	foldWG.Wait()
	fold.finish(n)
	// Keep the analysis clock at the end of the study window.
	st.clock.AdvanceTo(st.epoch.Add(time.Duration(n) * st.cfg.SitePacing))

	st.stats.Inc("sites.total", int64(n))
	st.stats.Inc("sites.ok", int64(n-len(fold.siteErrs)))
	st.stats.Inc("sites.failed", int64(len(fold.siteErrs)))
	if n > 0 {
		st.stats.SetGauge("failure.budget.used", float64(len(fold.siteErrs))/float64(n))
	}
	st.stats.SetGauge("stream.window", float64(cfg.Window))
	st.stats.SetGauge("stream.inflight.max", float64(res.MaxInFlight))
	res.Stats = st.stats.Snapshot()

	var err error
	if st.cfg.FailureBudget >= 0 {
		allowed := int(st.cfg.FailureBudget * float64(n))
		if len(fold.siteErrs) > allowed {
			err = fmt.Errorf("core: %d/%d sites failed, exceeding the failure budget of %d: %w",
				len(fold.siteErrs), n, allowed, errors.Join(fold.siteErrs...))
		}
	}
	if fold.sinkErr != nil {
		err = errors.Join(err, fold.sinkErr)
	}
	return res, err
}

// csvSinkFlushEvery is how many sites a CSVSink buffers between flushes
// of the underlying csv writer — batching writes without letting an
// interrupted run hold back more than a window's worth of rows.
const csvSinkFlushEvery = 64

// CSVSink streams the per-page measurement dataset row by row as sites
// retire, producing bytes identical to WriteMeasurementsCSV over the
// same surviving sites — without ever holding more than one site.
type CSVSink struct {
	cw    *csv.Writer
	sites int
}

// NewCSVSink writes the dataset header and returns the sink.
func NewCSVSink(w io.Writer) (*CSVSink, error) {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return nil, err
	}
	return &CSVSink{cw: cw}, nil
}

// ConsumeSite emits the site's rows (landing first, then internals);
// failed sites contribute nothing, as in the in-memory dataset.
func (c *CSVSink) ConsumeSite(res *SiteResult, out *Outcome) error {
	if !out.OK {
		return nil
	}
	if err := emitSiteRows(c.cw, res); err != nil {
		return err
	}
	c.sites++
	if c.sites%csvSinkFlushEvery == 0 {
		c.cw.Flush()
		if err := c.cw.Error(); err != nil {
			return err
		}
	}
	return nil
}

// Flush drains the writer.
func (c *CSVSink) Flush() error {
	c.cw.Flush()
	return c.cw.Error()
}

// collectSink rebuilds the in-memory survivors slice — how Run layers
// on top of RunStream.
type collectSink struct {
	sites []SiteResult
}

func (c *collectSink) ConsumeSite(res *SiteResult, out *Outcome) error {
	if out.OK {
		c.sites = append(c.sites, *res)
	}
	return nil
}

func (c *collectSink) Flush() error { return nil }
