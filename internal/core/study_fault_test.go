package core

import (
	"errors"
	"reflect"
	"testing"
	"time"

	"repro/internal/browser"
	"repro/internal/hispar"
	"repro/internal/search"
	"repro/internal/simnet"
	"repro/internal/toplist"
	"repro/internal/webgen"
)

// faultWeb builds a small web + Hispar list for the fault-injection
// tests (the smoke test's pipeline at reduced scale).
func faultWeb(t *testing.T) (*webgen.Web, *hispar.List) {
	t.Helper()
	u := toplist.NewUniverse(toplist.Config{Seed: 7, Size: 300})
	entries := u.Top(30)
	seeds := make([]webgen.SiteSeed, len(entries))
	for i, e := range entries {
		seeds[i] = webgen.SiteSeed{Domain: e.Domain, Rank: e.Rank}
	}
	web := webgen.Generate(webgen.Config{Seed: 7, Sites: seeds})
	eng := search.New(web, search.Config{EnglishOnly: true})
	list, _, err := hispar.Build(eng, entries, hispar.BuildConfig{
		Sites: 12, URLsPerSite: 5, MinResults: 3, Name: "Hfault",
	})
	if err != nil {
		t.Fatalf("hispar build: %v", err)
	}
	return web, list
}

// runStudy runs one study over the fault web with the given config knobs
// applied on top of the shared small-scale base.
func runStudy(t *testing.T, web *webgen.Web, list *hispar.List, mutate func(*StudyConfig)) (*StudyResult, error) {
	t.Helper()
	cfg := StudyConfig{Seed: 7, LandingFetches: 2}
	if mutate != nil {
		mutate(&cfg)
	}
	st, err := NewStudy(web, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return st.Run(list)
}

// outcomeKey strips the non-comparable error from an Outcome so whole
// runs can be compared for determinism.
type outcomeKey struct {
	Domain      string
	OK          bool
	Attempts    int
	Retries     int
	FailedPages int
	Class       ErrorClass
	Elapsed     time.Duration
}

func keysOf(outs []Outcome) []outcomeKey {
	ks := make([]outcomeKey, len(outs))
	for i, o := range outs {
		ks[i] = outcomeKey{o.Domain, o.OK, o.Attempts, o.Retries, o.FailedPages, o.Class, o.Elapsed}
	}
	return ks
}

// TestStudyRetriesUntilSuccess injects a ~5% fault mix and checks the
// run completes with most sites measured, retries visible in outcomes,
// and per-class error counts in the metrics.
func TestStudyRetriesUntilSuccess(t *testing.T) {
	web, list := faultWeb(t)
	res, err := runStudy(t, web, list, func(c *StudyConfig) {
		c.Faults = simnet.FaultConfig{Rates: simnet.FaultRates{Timeout: 0.03, Truncate: 0.02}}
		c.DNSFailProb = 0.05
	})
	if err != nil {
		t.Fatalf("a 5%% fault rate must stay inside the default failure budget: %v", err)
	}
	if len(res.Outcomes) != len(list.Sets) {
		t.Fatalf("outcomes %d != sites %d", len(res.Outcomes), len(list.Sets))
	}
	if got := len(res.Sites); got < len(list.Sets)*9/10 {
		t.Errorf("only %d/%d sites yielded measurements, want >=90%%", got, len(list.Sets))
	}
	retries := 0
	for _, o := range res.Outcomes {
		retries += o.Retries
	}
	if retries == 0 {
		t.Error("no retries at a 5% fault rate — injection is not reaching the runner")
	}
	var classed int64
	for _, c := range []ErrorClass{ClassDNS, ClassTimeout, ClassTruncated} {
		classed += res.Stats.Counters["loads.err."+string(c)]
	}
	if classed == 0 {
		t.Error("metrics carry no per-class error counts")
	}
	if res.Stats.Counters["loads.ok"] == 0 || res.Stats.Counters["sites.total"] != int64(len(list.Sets)) {
		t.Errorf("load accounting off: %+v", res.Stats.Counters)
	}
}

// TestFailureBudgetExhaustion pins the resolver failure rate to 1 so
// every site dies after its retries: Run must return the partial result
// plus an aggregate error that joins the per-site failures.
func TestFailureBudgetExhaustion(t *testing.T) {
	web, list := faultWeb(t)
	res, err := runStudy(t, web, list, func(c *StudyConfig) {
		c.DNSFailProb = 1
		c.MaxAttempts = 2
	})
	if err == nil {
		t.Fatal("total failure must exceed the default budget")
	}
	if !errors.Is(err, browser.ErrDNS) {
		t.Errorf("aggregate error must join the per-site DNS failures: %v", err)
	}
	if res == nil {
		t.Fatal("partial result must survive a budget breach")
	}
	if len(res.Sites) != 0 || res.FailedSites() != len(list.Sets) {
		t.Errorf("want all %d sites failed, got %d ok / %d failed",
			len(list.Sets), len(res.Sites), res.FailedSites())
	}
	for _, o := range res.Outcomes {
		if o.Class != ClassDNS || o.Err == nil {
			t.Errorf("%s: class=%q err=%v, want dns", o.Domain, o.Class, o.Err)
		}
		// The landing page dies on fetch 0 after MaxAttempts tries.
		if o.Attempts != 2 {
			t.Errorf("%s: attempts=%d, want 2", o.Domain, o.Attempts)
		}
		if o.Elapsed <= 0 {
			t.Errorf("%s: elapsed=%v, want >0 (backoff consumes virtual time)", o.Domain, o.Elapsed)
		}
	}
	// An unlimited budget turns the same run into a degraded success.
	res2, err2 := runStudy(t, web, list, func(c *StudyConfig) {
		c.DNSFailProb = 1
		c.MaxAttempts = 2
		c.FailureBudget = -1
	})
	if err2 != nil {
		t.Fatalf("unlimited budget must not error: %v", err2)
	}
	if res2.FailedSites() != len(list.Sets) {
		t.Errorf("failed sites = %d, want %d", res2.FailedSites(), len(list.Sets))
	}
}

// TestFaultedStudyDeterministic runs the same faulted study twice and
// demands identical measurements and outcomes — fault injection must be
// as reproducible as the fault-free path.
func TestFaultedStudyDeterministic(t *testing.T) {
	web, list := faultWeb(t)
	run := func() *StudyResult {
		res, err := runStudy(t, web, list, func(c *StudyConfig) {
			c.Faults = simnet.FaultConfig{Rates: simnet.FaultRates{Timeout: 0.05, Truncate: 0.03, Loss: 0.05}}
			c.DNSFailProb = 0.05
			c.FailureBudget = -1
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if !reflect.DeepEqual(keysOf(a.Outcomes), keysOf(b.Outcomes)) {
		t.Fatalf("outcomes differ across identical faulted runs:\n%+v\n%+v", keysOf(a.Outcomes), keysOf(b.Outcomes))
	}
	if !reflect.DeepEqual(a.Sites, b.Sites) {
		t.Fatal("site measurements differ across identical faulted runs")
	}
}

// TestWorkerCountInvariance locks the tentpole guarantee: the study's
// measurements are a pure function of list + config; worker parallelism
// must never leak into them. Run with and without faults.
func TestWorkerCountInvariance(t *testing.T) {
	web, list := faultWeb(t)
	cases := []struct {
		name   string
		mutate func(*StudyConfig)
	}{
		{"fault-free", nil},
		{"faulted", func(c *StudyConfig) {
			c.Faults = simnet.FaultConfig{Rates: simnet.FaultRates{Timeout: 0.04, Loss: 0.05}}
			c.DNSFailProb = 0.04
			c.FailureBudget = -1
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			run := func(workers int) *StudyResult {
				res, err := runStudy(t, web, list, func(c *StudyConfig) {
					c.Workers = workers
					if tc.mutate != nil {
						tc.mutate(c)
					}
				})
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			serial, parallel := run(1), run(8)
			if !reflect.DeepEqual(serial.Sites, parallel.Sites) {
				for i := range serial.Sites {
					if !reflect.DeepEqual(serial.Sites[i], parallel.Sites[i]) {
						t.Fatalf("site %s measured differently at Workers=1 vs 8:\n%+v\n%+v",
							serial.Sites[i].Domain, serial.Sites[i], parallel.Sites[i])
					}
				}
				t.Fatal("site sets differ between Workers=1 and Workers=8")
			}
			if !reflect.DeepEqual(keysOf(serial.Outcomes), keysOf(parallel.Outcomes)) {
				t.Fatal("outcomes differ between Workers=1 and Workers=8")
			}
		})
	}
}
