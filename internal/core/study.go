package core

import (
	"fmt"
	"runtime"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/adblock"
	"repro/internal/browser"
	"repro/internal/cdn"
	"repro/internal/cdndetect"
	"repro/internal/dnssim"
	"repro/internal/har"
	"repro/internal/hispar"
	"repro/internal/psl"
	"repro/internal/runstats"
	"repro/internal/simnet"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/vclock"
	"repro/internal/webgen"
)

// StudyConfig parameterizes a full measurement run over a Hispar list.
type StudyConfig struct {
	Seed int64
	// LandingFetches is how many times each landing page is loaded (the
	// paper uses 10 and takes medians; internal pages are loaded once).
	LandingFetches int
	// Workers bounds load parallelism (default: GOMAXPROCS). The worker
	// count never changes what is measured — only how fast it runs.
	Workers int
	// CDNWarmthRate and CDNWarmthCeiling shape the popularity→edge-hit
	// curve (see internal/cdn). The defaults are calibrated so the H1K
	// study lands near the paper's hit-rate asymmetry.
	CDNWarmthRate    float64
	CDNWarmthCeiling float64

	// Faults injects network faults (timeouts, truncations, loss) into
	// every page load; the zero value injects nothing and reproduces the
	// fault-free study byte for byte.
	Faults simnet.FaultConfig
	// DNSFailProb injects transient resolver failures at this rate
	// (0 = never). Failures are never cached, so retries can succeed.
	DNSFailProb float64
	// MaxAttempts bounds page-load attempts per page, first try included
	// (default 3).
	MaxAttempts int
	// RetryBackoff is the virtual-time wait before the first retry; it
	// doubles per retry up to RetryBackoffCap (defaults 30s and 4m).
	RetryBackoff    time.Duration
	RetryBackoffCap time.Duration
	// FailureBudget is the fraction of sites allowed to fail before Run
	// reports the aggregate error alongside the partial result
	// (default 0.25; negative means unlimited).
	FailureBudget float64
	// SitePacing is the virtual-time spacing between site measurement
	// windows (default 7m — it spreads the run over the paper's
	// multi-day window, letting resolver TTLs expire between sites).
	SitePacing time.Duration
}

func (c StudyConfig) withDefaults() StudyConfig {
	if c.LandingFetches <= 0 {
		c.LandingFetches = 10
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.CDNWarmthRate <= 0 {
		c.CDNWarmthRate = 2.2
	}
	if c.CDNWarmthCeiling <= 0 {
		c.CDNWarmthCeiling = 0.97
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 30 * time.Second
	}
	if c.RetryBackoffCap <= 0 {
		c.RetryBackoffCap = 4 * time.Minute
	}
	if c.FailureBudget == 0 {
		c.FailureBudget = 0.25
	}
	if c.SitePacing <= 0 {
		c.SitePacing = 7 * time.Minute
	}
	return c
}

// SiteResult is one site's measurements: the landing page (timing fields
// medianized over repeated fetches) and each measured internal page.
type SiteResult struct {
	Domain   string
	Rank     int
	Category string
	Landing  PageMeasurement
	Internal []PageMeasurement
}

// InternalMedian applies f to every internal page and returns the median.
func (s *SiteResult) InternalMedian(f func(*PageMeasurement) float64) float64 {
	if len(s.Internal) == 0 {
		return 0
	}
	vals := make([]float64, len(s.Internal))
	for i := range s.Internal {
		vals[i] = f(&s.Internal[i])
	}
	return stats.SortedInPlace(vals).Median()
}

// Delta returns f(landing) − median_internal(f): the paper's per-site
// difference statistic (Figs 2, 9, 10).
func (s *SiteResult) Delta(f func(*PageMeasurement) float64) float64 {
	return f(&s.Landing) - s.InternalMedian(f)
}

// Ratio returns f(landing) / median_internal(f), or 0 when undefined;
// used for the paper's geometric means.
func (s *SiteResult) Ratio(f func(*PageMeasurement) float64) float64 {
	den := s.InternalMedian(f)
	if den == 0 {
		return 0
	}
	return f(&s.Landing) / den
}

// UnseenThirdParties counts third-party eTLD+1s contacted by at least one
// internal page but never by the landing page (Fig 8b).
func (s *SiteResult) UnseenThirdParties() int {
	onLanding := make(map[string]bool, len(s.Landing.ThirdParties))
	for _, tp := range s.Landing.ThirdParties {
		onLanding[tp] = true
	}
	seen := make(map[string]bool)
	for i := range s.Internal {
		for _, tp := range s.Internal[i].ThirdParties {
			if !onLanding[tp] {
				seen[tp] = true
			}
		}
	}
	return len(seen)
}

// InsecureInternal counts measured internal pages served over plain HTTP
// (Fig 8a).
func (s *SiteResult) InsecureInternal() int {
	n := 0
	for i := range s.Internal {
		if s.Internal[i].Scheme == "http" {
			n++
		}
	}
	return n
}

// MixedInternal counts measured internal pages with mixed content.
func (s *SiteResult) MixedInternal() int {
	n := 0
	for i := range s.Internal {
		if s.Internal[i].MixedContent {
			n++
		}
	}
	return n
}

// StudyResult is a full study over a list. Sites holds the survivors in
// list order; Outcomes records the disposition of every input site —
// including the failed ones — and Stats is the run's metric snapshot.
type StudyResult struct {
	List     *hispar.List
	Sites    []SiteResult
	Outcomes []Outcome
	Stats    runstats.Snapshot
}

// FailedSites returns how many input sites yielded no measurement.
func (r *StudyResult) FailedSites() int {
	n := 0
	for i := range r.Outcomes {
		if !r.Outcomes[i].OK {
			n++
		}
	}
	return n
}

// Study runs page loads and measurement for every URL set in the list.
type Study struct {
	cfg      StudyConfig
	web      *webgen.Web
	resolver *dnssim.Resolver
	az       Analyzers
	cdnSeed  int64
	clock    *vclock.Clock
	epoch    time.Time
	stats    *runstats.Set
}

// Stats exposes the study's run metrics (live; Snapshot to read).
func (st *Study) Stats() *runstats.Set { return st.stats }

// NewStudy prepares a study over one web snapshot. It wires the full
// analysis stack: a warmed ISP resolver over the web's DNS authority, a
// CDN detector fed by that resolver, the public-suffix list, and an
// adblock engine compiled from the synthetic Easylist.
func NewStudy(web *webgen.Web, cfg StudyConfig) (*Study, error) {
	cfg = cfg.withDefaults()
	// The measurement window spans days (the paper spreads its 30 fetches
	// per site over 5 days). The shared clock and resolver back the
	// analysis stack only; each site gets its own clock and resolver so
	// measurements never depend on which worker ran which site first.
	epoch := time.Date(2020, 3, 12, 0, 0, 0, 0, time.UTC)
	clock := vclock.New(epoch)
	resolver := dnssim.NewResolver(dnssim.ResolverConfig{
		Name:          "isp",
		Seed:          cfg.Seed,
		ClientRTT:     3 * time.Millisecond,
		UpstreamTime:  80 * time.Millisecond,
		WarmQueryRate: 0.8,
	}, web.Authority(), clock.Now)
	engine, _ := adblock.Compile(webgen.EasylistFor(web.ThirdParties()))
	if engine.Len() == 0 {
		return nil, fmt.Errorf("core: empty adblock engine")
	}
	return &Study{
		cfg:      cfg,
		web:      web,
		resolver: resolver,
		az: Analyzers{
			PSL:     psl.Default(),
			Adblock: engine,
			CDN:     cdndetect.New(resolver),
		},
		cdnSeed: cfg.Seed ^ 0x0cd17,
		clock:   clock,
		epoch:   epoch,
		stats:   runstats.NewSet(),
	}, nil
}

// Analyzers exposes the study's analysis stack (useful for tests).
func (st *Study) Analyzers() Analyzers { return st.az }

// newBrowser builds a browser sharing the study's resolver — the
// fault-free path MeasureSite uses directly.
func (st *Study) newBrowser(seed int64) (*browser.Browser, error) {
	return st.newBrowserWith(seed, st.resolver)
}

func (st *Study) newBrowserWith(seed int64, resolver *dnssim.Resolver) (*browser.Browser, error) {
	warmth := cdn.PopularityWarmth(st.cfg.CDNWarmthRate, st.cfg.CDNWarmthCeiling)
	var ctr int64
	return browser.New(browser.Config{
		Seed:     seed,
		Resolver: resolver,
		Net:      simnet.Config{Faults: st.cfg.Faults},
		CDNFactory: func() *cdn.Network {
			n := atomic.AddInt64(&ctr, 1)
			return cdn.NewNetwork(1<<14, warmth, seed+n*104729)
		},
	})
}

// siteCtx is one site's isolated measurement context: its own virtual
// clock pinned to the site's slot in the study window, its own resolver,
// and its own browser. Nothing here is shared across sites, which is
// what makes a study's measurements identical at any worker count.
type siteCtx struct {
	clock *vclock.Clock
	b     *browser.Browser
	// rec, when non-nil, collects this site's spans (see internal/trace);
	// the streaming fold merges it in rank order after the site retires.
	rec *trace.Recorder
}

// newSiteCtx builds the context for site i.
func (st *Study) newSiteCtx(i int) (*siteCtx, error) {
	clock := vclock.New(st.epoch.Add(time.Duration(i) * st.cfg.SitePacing))
	resolver := dnssim.NewResolver(dnssim.ResolverConfig{
		Name:          "isp",
		Seed:          st.cfg.Seed + int64(i)*7919,
		ClientRTT:     3 * time.Millisecond,
		UpstreamTime:  80 * time.Millisecond,
		WarmQueryRate: 0.8,
		FailProb:      st.cfg.DNSFailProb,
	}, st.web.Authority(), clock.Now)
	b, err := st.newBrowserWith(st.cfg.Seed+int64(i)*6151, resolver)
	if err != nil {
		return nil, err
	}
	return &siteCtx{clock: clock, b: b}, nil
}

// loadWithRetry attempts one page load up to MaxAttempts times, backing
// off in virtual time with doubling waits capped at RetryBackoffCap.
// Each attempt redraws the injected faults (the attempt number feeds the
// fault RNG seed), so transient failures clear the way they would in a
// real re-crawl. It returns the attempts consumed alongside the result.
func (st *Study) loadWithRetry(sc *siteCtx, m *webgen.PageModel, fetchID int) (*har.Log, int, error) {
	return st.loadRevisitWithRetry(sc, m, fetchID, 0)
}

// loadRevisitWithRetry is loadWithRetry with a revisit offset: revisit 0
// is the cold load, anything else a warm repeat view against whatever
// cache the browser currently holds.
func (st *Study) loadRevisitWithRetry(sc *siteCtx, m *webgen.PageModel, fetchID int, revisit time.Duration) (*har.Log, int, error) {
	backoff := st.cfg.RetryBackoff
	for attempt := 0; ; attempt++ {
		// Anchor the attempt's spans at the site clock's virtual now, so
		// loads and their retries tile the site's timeline in order.
		sc.rec.SetBase(sc.clock.Now())
		log, err := sc.b.LoadRevisit(m, fetchID, attempt, revisit) //detlint:allow taint -- the chain bottoms out in dnssim's vclock.Wall telemetry read; every span field is stamped from sc.clock virtual time, and TestStreamTraceInvariantAcrossWorkers pins the byte-identity
		if err == nil {
			sc.clock.Advance(log.Page.Timings.OnLoad)
			st.stats.Inc("loads.ok", 1)
			st.stats.Observe("load.onload.ms", float64(log.Page.Timings.OnLoad.Milliseconds()))
			return log, attempt + 1, nil
		}
		class := Classify(err)
		st.stats.Inc("loads.err."+string(class), 1)
		if !class.Retryable() || attempt+1 >= st.cfg.MaxAttempts {
			return nil, attempt + 1, err
		}
		if rec := sc.rec; rec != nil && rec.Detail() >= trace.DetailLoads {
			rec.Record(trace.Span{
				ID: trace.DeriveID("backoff", strconv.Itoa(rec.Site()), m.URL,
					strconv.Itoa(fetchID), strconv.Itoa(attempt)),
				Parent: rec.Parent(),
				Name:   "backoff " + m.URL, Cat: "retry",
				Start: sc.clock.Now(), Dur: backoff,
				Attrs: []trace.Attr{
					{Key: "attempt", Val: strconv.Itoa(attempt)},
					{Key: "class", Val: string(class)},
				},
			})
		}
		sc.clock.Advance(backoff)
		st.stats.Inc("retries.total", 1)
		st.stats.Observe("retry.backoff.ms", float64(backoff.Milliseconds()))
		backoff *= 2
		if backoff > st.cfg.RetryBackoffCap {
			backoff = st.cfg.RetryBackoffCap
		}
	}
}

// measureSiteResilient measures one site with per-page retries and
// graceful degradation: the landing page must survive (its loss fails
// the site), while internal pages that exhaust their retries are dropped
// from the result and counted in the outcome.
func (st *Study) measureSiteResilient(i int, set hispar.URLSet, rec *trace.Recorder) (res SiteResult, out Outcome) {
	out = Outcome{Domain: set.Domain, Rank: set.Rank}
	fail := func(err error, class ErrorClass) (SiteResult, Outcome) {
		out.Class = class
		out.Err = fmt.Errorf("core: site %s: %w", set.Domain, err)
		return SiteResult{}, out
	}
	sc, err := st.newSiteCtx(i)
	if err != nil {
		return fail(err, ClassConfig)
	}
	// Span plumbing: the browser parents its load spans under the site
	// span the fold will record when this site retires.
	sc.rec = rec
	rec.SetParent(trace.SiteSpanID(set.Rank))
	sc.b.SetTrace(rec)
	start := sc.clock.Now()
	// Named returns so the deferred stamp reaches every exit path,
	// including the failure ones.
	defer func() { out.Elapsed = sc.clock.Since(start) }()

	site, ok := st.web.SiteByDomain(set.Domain)
	if !ok {
		return fail(fmt.Errorf("site not in web snapshot"), ClassConfig)
	}
	res = SiteResult{Domain: set.Domain, Rank: set.Rank, Category: string(site.Category)}

	// Landing page: repeated cold-cache fetches, median timings.
	model := site.Landing().Build()
	var fetches []PageMeasurement
	for f := 0; f < st.cfg.LandingFetches; f++ {
		log, attempts, err := st.loadWithRetry(sc, model, f)
		out.Attempts += attempts
		out.Retries += attempts - 1
		if err != nil {
			return fail(err, Classify(err))
		}
		fetches = append(fetches, MeasurePage(log, model, st.az))
	}
	res.Landing = medianizeTimings(fetches)

	// Internal pages: one fetch each. A page that exhausts its retries
	// is dropped — the paper's harness kept sites whose internal URLs
	// partially failed rather than discarding the whole site.
	for _, u := range set.Internal {
		page, ok := st.web.PageByURL(u)
		if !ok {
			return fail(fmt.Errorf("URL %s not in web snapshot", u), ClassConfig)
		}
		im := page.Build()
		log, attempts, err := st.loadWithRetry(sc, im, 0)
		out.Attempts += attempts
		out.Retries += attempts - 1
		if err != nil {
			out.FailedPages++
			st.stats.Inc("pages.dropped", 1)
			continue
		}
		res.Internal = append(res.Internal, MeasurePage(log, im, st.az))
	}
	st.stats.Inc("pages.measured", int64(1+len(res.Internal)))
	out.OK = true
	return res, out
}

// MeasureSite fetches and measures one URL set.
func (st *Study) MeasureSite(b *browser.Browser, set hispar.URLSet) (SiteResult, error) {
	site, ok := st.web.SiteByDomain(set.Domain)
	if !ok {
		return SiteResult{}, fmt.Errorf("core: site %s not in web snapshot", set.Domain)
	}
	res := SiteResult{Domain: set.Domain, Rank: set.Rank, Category: string(site.Category)}

	// Landing page: repeated cold-cache fetches, median timings.
	model := site.Landing().Build()
	var fetches []PageMeasurement
	for f := 0; f < st.cfg.LandingFetches; f++ {
		log, err := b.Load(model, f)
		if err != nil {
			return SiteResult{}, err
		}
		fetches = append(fetches, MeasurePage(log, model, st.az))
	}
	res.Landing = medianizeTimings(fetches)

	// Internal pages: one fetch each.
	for _, u := range set.Internal {
		page, ok := st.web.PageByURL(u)
		if !ok {
			return SiteResult{}, fmt.Errorf("core: URL %s not in web snapshot", u)
		}
		im := page.Build()
		log, err := b.Load(im, 0)
		if err != nil {
			return SiteResult{}, err
		}
		res.Internal = append(res.Internal, MeasurePage(log, im, st.az))
	}
	return res, nil
}

// medianizeTimings collapses repeated fetches of the same page into one
// measurement whose timing fields are medians; structural fields are
// identical across fetches and taken from the first. One buffer serves
// all seven medians — this runs once per landing page, every site.
func medianizeTimings(fetches []PageMeasurement) PageMeasurement {
	out := fetches[0]
	buf := make([]float64, len(fetches))
	med := func(f func(*PageMeasurement) float64) float64 {
		for i := range fetches {
			buf[i] = f(&fetches[i])
		}
		return stats.SortedInPlace(buf).Median()
	}
	out.PLT = time.Duration(med(func(p *PageMeasurement) float64 { return float64(p.PLT) }))
	out.SpeedIndex = time.Duration(med(func(p *PageMeasurement) float64 { return float64(p.SpeedIndex) }))
	out.OnLoad = time.Duration(med(func(p *PageMeasurement) float64 { return float64(p.OnLoad) }))
	out.HandshakeTime = time.Duration(med(func(p *PageMeasurement) float64 { return float64(p.HandshakeTime) }))
	out.Handshakes = int(med(func(p *PageMeasurement) float64 { return float64(p.Handshakes) }))
	out.CDNHits = int(med(func(p *PageMeasurement) float64 { return float64(p.CDNHits) }))
	out.CDNMisses = int(med(func(p *PageMeasurement) float64 { return float64(p.CDNMisses) }))
	return out
}

// Run measures every site in the list, in parallel, and degrades
// gracefully: sites that fail after retries are recorded in Outcomes and
// excluded from Sites instead of killing the run. Every site is always
// attempted — the failure budget decides only whether Run reports an
// aggregate error (errors.Join of the per-site failures) alongside the
// partial result. Measurements are a pure function of the list and the
// config: the worker count and scheduling order never change them.
//
// Run is a thin layer over RunStream with a collecting sink: the
// streaming engine does the measuring, and the sink rebuilds the
// in-memory survivors slice in rank order.
func (st *Study) Run(list *hispar.List) (*StudyResult, error) {
	col := &collectSink{}
	sres, err := st.RunStream(list, StreamConfig{Sinks: []SiteSink{col}})
	if sres == nil {
		return nil, err
	}
	return &StudyResult{
		List:     list,
		Sites:    col.sites,
		Outcomes: sres.Outcomes,
		Stats:    sres.Stats,
	}, err
}
