package core

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/adblock"
	"repro/internal/browser"
	"repro/internal/cdn"
	"repro/internal/cdndetect"
	"repro/internal/dnssim"
	"repro/internal/hispar"
	"repro/internal/psl"
	"repro/internal/vclock"
	"repro/internal/webgen"
)

// StudyConfig parameterizes a full measurement run over a Hispar list.
type StudyConfig struct {
	Seed int64
	// LandingFetches is how many times each landing page is loaded (the
	// paper uses 10 and takes medians; internal pages are loaded once).
	LandingFetches int
	// Workers bounds load parallelism (default: GOMAXPROCS).
	Workers int
	// CDNWarmthRate and CDNWarmthCeiling shape the popularity→edge-hit
	// curve (see internal/cdn). The defaults are calibrated so the H1K
	// study lands near the paper's hit-rate asymmetry.
	CDNWarmthRate    float64
	CDNWarmthCeiling float64
}

func (c StudyConfig) withDefaults() StudyConfig {
	if c.LandingFetches <= 0 {
		c.LandingFetches = 10
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.CDNWarmthRate <= 0 {
		c.CDNWarmthRate = 2.2
	}
	if c.CDNWarmthCeiling <= 0 {
		c.CDNWarmthCeiling = 0.97
	}
	return c
}

// SiteResult is one site's measurements: the landing page (timing fields
// medianized over repeated fetches) and each measured internal page.
type SiteResult struct {
	Domain   string
	Rank     int
	Category string
	Landing  PageMeasurement
	Internal []PageMeasurement
}

// InternalMedian applies f to every internal page and returns the median.
func (s *SiteResult) InternalMedian(f func(*PageMeasurement) float64) float64 {
	if len(s.Internal) == 0 {
		return 0
	}
	vals := make([]float64, len(s.Internal))
	for i := range s.Internal {
		vals[i] = f(&s.Internal[i])
	}
	sort.Float64s(vals)
	n := len(vals)
	if n%2 == 1 {
		return vals[n/2]
	}
	return (vals[n/2-1] + vals[n/2]) / 2
}

// Delta returns f(landing) − median_internal(f): the paper's per-site
// difference statistic (Figs 2, 9, 10).
func (s *SiteResult) Delta(f func(*PageMeasurement) float64) float64 {
	return f(&s.Landing) - s.InternalMedian(f)
}

// Ratio returns f(landing) / median_internal(f), or 0 when undefined;
// used for the paper's geometric means.
func (s *SiteResult) Ratio(f func(*PageMeasurement) float64) float64 {
	den := s.InternalMedian(f)
	if den == 0 {
		return 0
	}
	return f(&s.Landing) / den
}

// UnseenThirdParties counts third-party eTLD+1s contacted by at least one
// internal page but never by the landing page (Fig 8b).
func (s *SiteResult) UnseenThirdParties() int {
	onLanding := make(map[string]bool, len(s.Landing.ThirdParties))
	for _, tp := range s.Landing.ThirdParties {
		onLanding[tp] = true
	}
	seen := make(map[string]bool)
	for i := range s.Internal {
		for _, tp := range s.Internal[i].ThirdParties {
			if !onLanding[tp] {
				seen[tp] = true
			}
		}
	}
	return len(seen)
}

// InsecureInternal counts measured internal pages served over plain HTTP
// (Fig 8a).
func (s *SiteResult) InsecureInternal() int {
	n := 0
	for i := range s.Internal {
		if s.Internal[i].Scheme == "http" {
			n++
		}
	}
	return n
}

// MixedInternal counts measured internal pages with mixed content.
func (s *SiteResult) MixedInternal() int {
	n := 0
	for i := range s.Internal {
		if s.Internal[i].MixedContent {
			n++
		}
	}
	return n
}

// StudyResult is a full study over a list.
type StudyResult struct {
	List  *hispar.List
	Sites []SiteResult
}

// Study runs page loads and measurement for every URL set in the list.
type Study struct {
	cfg      StudyConfig
	web      *webgen.Web
	resolver *dnssim.Resolver
	az       Analyzers
	cdnSeed  int64
	clock    *vclock.Clock
}

// NewStudy prepares a study over one web snapshot. It wires the full
// analysis stack: a warmed ISP resolver over the web's DNS authority, a
// CDN detector fed by that resolver, the public-suffix list, and an
// adblock engine compiled from the synthetic Easylist.
func NewStudy(web *webgen.Web, cfg StudyConfig) (*Study, error) {
	cfg = cfg.withDefaults()
	// The measurement window spans days (the paper spreads its 30 fetches
	// per site over 5 days), so the shared resolver sees TTL expiry: the
	// study clock advances between sites.
	clock := vclock.New(time.Date(2020, 3, 12, 0, 0, 0, 0, time.UTC))
	resolver := dnssim.NewResolver(dnssim.ResolverConfig{
		Name:          "isp",
		Seed:          cfg.Seed,
		ClientRTT:     3 * time.Millisecond,
		UpstreamTime:  80 * time.Millisecond,
		WarmQueryRate: 0.8,
	}, web.Authority(), clock.Now)
	engine, _ := adblock.Compile(webgen.EasylistFor(web.ThirdParties()))
	if engine.Len() == 0 {
		return nil, fmt.Errorf("core: empty adblock engine")
	}
	return &Study{
		cfg:      cfg,
		web:      web,
		resolver: resolver,
		az: Analyzers{
			PSL:     psl.Default(),
			Adblock: engine,
			CDN:     cdndetect.New(resolver),
		},
		cdnSeed: cfg.Seed ^ 0x0cd17,
		clock:   clock,
	}, nil
}

// Analyzers exposes the study's analysis stack (useful for tests).
func (st *Study) Analyzers() Analyzers { return st.az }

// newBrowser builds a per-worker browser sharing the study's resolver.
func (st *Study) newBrowser(seed int64) (*browser.Browser, error) {
	warmth := cdn.PopularityWarmth(st.cfg.CDNWarmthRate, st.cfg.CDNWarmthCeiling)
	var ctr int64
	return browser.New(browser.Config{
		Seed:     seed,
		Resolver: st.resolver,
		CDNFactory: func() *cdn.Network {
			n := atomic.AddInt64(&ctr, 1)
			return cdn.NewNetwork(1<<14, warmth, seed+n*104729)
		},
	})
}

// MeasureSite fetches and measures one URL set.
func (st *Study) MeasureSite(b *browser.Browser, set hispar.URLSet) (SiteResult, error) {
	site, ok := st.web.SiteByDomain(set.Domain)
	if !ok {
		return SiteResult{}, fmt.Errorf("core: site %s not in web snapshot", set.Domain)
	}
	res := SiteResult{Domain: set.Domain, Rank: set.Rank, Category: string(site.Category)}

	// Landing page: repeated cold-cache fetches, median timings.
	model := site.Landing().Build()
	var fetches []PageMeasurement
	for f := 0; f < st.cfg.LandingFetches; f++ {
		log, err := b.Load(model, f)
		if err != nil {
			return SiteResult{}, err
		}
		fetches = append(fetches, MeasurePage(log, model, st.az))
	}
	res.Landing = medianizeTimings(fetches)

	// Internal pages: one fetch each.
	for _, u := range set.Internal {
		page, ok := st.web.PageByURL(u)
		if !ok {
			return SiteResult{}, fmt.Errorf("core: URL %s not in web snapshot", u)
		}
		im := page.Build()
		log, err := b.Load(im, 0)
		if err != nil {
			return SiteResult{}, err
		}
		res.Internal = append(res.Internal, MeasurePage(log, im, st.az))
	}
	return res, nil
}

// medianizeTimings collapses repeated fetches of the same page into one
// measurement whose timing fields are medians; structural fields are
// identical across fetches and taken from the first.
func medianizeTimings(fetches []PageMeasurement) PageMeasurement {
	out := fetches[0]
	med := func(f func(*PageMeasurement) float64) float64 {
		vals := make([]float64, len(fetches))
		for i := range fetches {
			vals[i] = f(&fetches[i])
		}
		sort.Float64s(vals)
		n := len(vals)
		if n%2 == 1 {
			return vals[n/2]
		}
		return (vals[n/2-1] + vals[n/2]) / 2
	}
	out.PLT = time.Duration(med(func(p *PageMeasurement) float64 { return float64(p.PLT) }))
	out.SpeedIndex = time.Duration(med(func(p *PageMeasurement) float64 { return float64(p.SpeedIndex) }))
	out.OnLoad = time.Duration(med(func(p *PageMeasurement) float64 { return float64(p.OnLoad) }))
	out.HandshakeTime = time.Duration(med(func(p *PageMeasurement) float64 { return float64(p.HandshakeTime) }))
	out.Handshakes = int(med(func(p *PageMeasurement) float64 { return float64(p.Handshakes) }))
	out.CDNHits = int(med(func(p *PageMeasurement) float64 { return float64(p.CDNHits) }))
	out.CDNMisses = int(med(func(p *PageMeasurement) float64 { return float64(p.CDNMisses) }))
	return out
}

// Run measures every site in the list, in parallel.
func (st *Study) Run(list *hispar.List) (*StudyResult, error) {
	results := make([]SiteResult, len(list.Sets))
	errs := make([]error, len(list.Sets))
	var wg sync.WaitGroup
	sem := make(chan struct{}, st.cfg.Workers)
	// Validate the browser configuration before fanning out.
	if _, err := st.newBrowser(st.cfg.Seed); err != nil {
		return nil, err
	}
	var bErr error
	for i := range list.Sets {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			b, err := st.newBrowser(st.cfg.Seed + int64(i)*6151)
			if err != nil {
				errs[i] = err
				return
			}
			results[i], errs[i] = st.MeasureSite(b, list.Sets[i])
			// ~7 virtual minutes per site spreads the run over the
			// paper's multi-day window, letting resolver TTLs expire.
			st.clock.Advance(7 * time.Minute)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			bErr = err
			break
		}
	}
	if bErr != nil {
		return nil, bErr
	}
	return &StudyResult{List: list, Sites: results}, nil
}
