package mimecat

import "testing"

func TestOf(t *testing.T) {
	cases := []struct {
		mime string
		want Category
	}{
		{"text/html", CatHTMLCSS},
		{"text/html; charset=utf-8", CatHTMLCSS},
		{"TEXT/CSS", CatHTMLCSS},
		{"application/xhtml+xml", CatHTMLCSS},
		{"image/png", CatImage},
		{"image/webp", CatImage},
		{"application/javascript", CatJS},
		{"text/javascript", CatJS},
		{"application/json", CatJSON},
		{"application/ld+json", CatJSON},
		{"font/woff2", CatFont},
		{"application/font-woff", CatFont},
		{"audio/mpeg", CatAudio},
		{"video/mp4", CatVideo},
		{"text/plain", CatData},
		{"application/octet-stream", CatData},
		{"", CatUnknown},
		{"application/x-shockwave-flash", CatUnknown},
	}
	for _, c := range cases {
		if got := Of(c.mime); got != c.want {
			t.Errorf("Of(%q) = %v, want %v", c.mime, got, c.want)
		}
	}
}

func TestAllAndString(t *testing.T) {
	all := All()
	if len(all) != 9 {
		t.Fatalf("All() = %d categories, want the paper's nine", len(all))
	}
	seen := map[string]bool{}
	for _, c := range all {
		s := c.String()
		if s == "" || seen[s] {
			t.Errorf("category %d has bad/duplicate name %q", c, s)
		}
		seen[s] = true
	}
	if Category(99).String() != "unknown" {
		t.Error("out-of-range category should stringify as unknown")
	}
}
