// Package mimecat collapses MIME types into the nine content categories
// the paper uses for its content-mix analysis (§5.2): audio, data, font,
// HTML/CSS, image, JavaScript, JSON, video, and unknown.
package mimecat

import "strings"

// Category is one of the paper's nine content categories.
type Category int

// The nine categories. CatHTMLCSS groups markup and stylesheets, as in the
// paper's "HTM/CSS" series.
const (
	CatUnknown Category = iota
	CatHTMLCSS
	CatImage
	CatJS
	CatJSON
	CatFont
	CatAudio
	CatVideo
	CatData
	numCategories
)

var catNames = [...]string{
	CatUnknown: "unknown",
	CatHTMLCSS: "html/css",
	CatImage:   "image",
	CatJS:      "javascript",
	CatJSON:    "json",
	CatFont:    "font",
	CatAudio:   "audio",
	CatVideo:   "video",
	CatData:    "data",
}

// String returns the category's lowercase name.
func (c Category) String() string {
	if c >= 0 && int(c) < len(catNames) {
		return catNames[c]
	}
	return "unknown"
}

// All returns every category in a stable order.
func All() []Category {
	out := make([]Category, 0, numCategories)
	for c := Category(0); c < numCategories; c++ {
		out = append(out, c)
	}
	return out
}

// Of maps a MIME type (optionally with parameters, e.g.
// "text/html; charset=utf-8") to its category.
func Of(mime string) Category {
	mime = strings.ToLower(strings.TrimSpace(mime))
	if i := strings.IndexByte(mime, ';'); i >= 0 {
		mime = strings.TrimSpace(mime[:i])
	}
	switch {
	case mime == "":
		return CatUnknown
	case mime == "text/html", mime == "application/xhtml+xml", mime == "text/css":
		return CatHTMLCSS
	case strings.HasPrefix(mime, "image/"):
		return CatImage
	case mime == "application/javascript", mime == "text/javascript",
		mime == "application/x-javascript", mime == "module/javascript":
		return CatJS
	case mime == "application/json", strings.HasSuffix(mime, "+json"):
		return CatJSON
	case strings.HasPrefix(mime, "font/"), mime == "application/font-woff",
		mime == "application/vnd.ms-fontobject":
		return CatFont
	case strings.HasPrefix(mime, "audio/"):
		return CatAudio
	case strings.HasPrefix(mime, "video/"):
		return CatVideo
	case mime == "text/plain", mime == "application/octet-stream",
		mime == "text/xml", mime == "application/xml", mime == "text/csv":
		return CatData
	default:
		return CatUnknown
	}
}
