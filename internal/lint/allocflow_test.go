package lint

import (
	"go/importer"
	"go/token"
	"path/filepath"
	"strings"
	"testing"
)

func loadAllocFixtures(t *testing.T) []*Package {
	t.Helper()
	fset := token.NewFileSet()
	std := importer.ForCompiler(fset, "source", nil)
	var pkgs []*Package
	for _, dir := range []string{"allocloop", "boxing", "retain"} {
		pkgs = append(pkgs, loadTestPkg(t, fset, std,
			filepath.Join("testdata", "src", dir), "repro/internal/"+dir))
	}
	return pkgs
}

// TestHotpathReport checks the report's structure over the allocflow
// fixtures: entry points are listed, cold functions are absent, chains
// start at their entry, and in-loop sites outrank straight-line ones.
func TestHotpathReport(t *testing.T) {
	rep := HotpathReport(loadAllocFixtures(t))

	wantEntries := map[string]bool{
		"allocloop.Entry": true, "allocloop.suppressed": true, "allocloop.frameLocal": true,
		"boxing.Entry": true,
		"retain.Entry": true, "retain.perIteration": true,
	}
	if len(rep.Entries) != len(wantEntries) {
		t.Errorf("entries = %v, want the %d hotpath-annotated functions", rep.Entries, len(wantEntries))
	}
	for _, e := range rep.Entries {
		if !wantEntries[e] {
			t.Errorf("unexpected entry point %q", e)
		}
	}

	byFunc := make(map[string]HotFunc)
	for _, f := range rep.Functions {
		byFunc[f.Func] = f
		if !strings.HasPrefix(f.Chain, f.Entry) {
			t.Errorf("%s: chain %q does not start at entry %q", f.Func, f.Chain, f.Entry)
		}
	}
	for _, cold := range []string{"allocloop.cold", "boxing.coldFormat"} {
		if _, ok := byFunc[cold]; ok {
			t.Errorf("%s is not hot-reachable but appears in the report", cold)
		}
	}
	build, ok := byFunc["allocloop.build"]
	if !ok {
		t.Fatal("allocloop.build missing from report")
	}
	if build.Dist != 1 || build.Entry != "allocloop.Entry" || !build.HotLoop {
		t.Errorf("allocloop.build = dist %d entry %q hotLoop %v, want 1/allocloop.Entry/true",
			build.Dist, build.Entry, build.HotLoop)
	}
	if len(build.Sites) != 2 {
		t.Fatalf("allocloop.build sites = %d, want 2 (make + composite)", len(build.Sites))
	}
	for _, s := range build.Sites {
		if s.Escape != "returned" {
			t.Errorf("allocloop.build site %q escape = %q, want returned", s.Desc, s.Escape)
		}
	}
}

// TestHotpathReportDeterminism renders the report twice from fresh
// loads: JSON-visible content must be byte-identical.
func TestHotpathReportDeterminism(t *testing.T) {
	render := func() string {
		var sb strings.Builder
		if err := HotpathReport(loadAllocFixtures(t)).WriteText(&sb); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	first := render()
	if first == "" {
		t.Fatal("empty report; determinism comparison is vacuous")
	}
	if again := render(); again != first {
		t.Errorf("report diverged across runs:\n--- first ---\n%s--- second ---\n%s", first, again)
	}
}

// TestEscapeLattice pins the per-class ordering and names the checks
// and report rely on.
func TestEscapeLattice(t *testing.T) {
	order := []EscapeClass{EscNone, EscArg, EscCaptured, EscHeap, EscReturned}
	names := []string{"none", "arg", "captured", "heap", "returned"}
	for i, c := range order {
		if c.String() != names[i] {
			t.Errorf("class %d String() = %q, want %q", i, c.String(), names[i])
		}
		if i > 0 && order[i-1] >= c {
			t.Errorf("lattice order violated: %v >= %v", order[i-1], c)
		}
	}
}
