package lint

import (
	"go/ast"
)

// envFuncs are the os-package entry points that read the process
// environment. Environment-dependent behavior in library code makes a
// "seeded" run depend on invisible host state.
var envFuncs = map[string]bool{
	"Getenv":    true,
	"LookupEnv": true,
	"Environ":   true,
	"ExpandEnv": true,
}

// EnvreadCheck forbids reading the process environment anywhere under
// internal/. Configuration flows through explicit config structs and
// flags parsed in cmd/ — the only place a run's inputs may enter —
// so that two runs with identical flags are identical, whatever the
// host's environment holds.
var EnvreadCheck = &Check{
	Name: "envread",
	Doc:  "forbid os.Getenv/os.LookupEnv in internal/; pass configuration explicitly",
	Run:  runEnvread,
}

func runEnvread(p *Pass) {
	if !isSubPath(p.Pkg.Path, "repro/internal") {
		return
	}
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			pkg, name, ok := pkgFunc(p.Pkg.Info, call)
			if !ok || pkg != "os" || !envFuncs[name] {
				return true
			}
			p.Reportf(call.Pos(),
				"os.%s reads hidden host state; internal packages take configuration explicitly so seeded runs are a pure function of their inputs", name)
			return true
		})
	}
}
