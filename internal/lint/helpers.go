package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// pkgFunc resolves a call expression to (package path, function name)
// when the callee is a selector on an imported package (e.g. time.Now).
// It returns ok=false for method calls and locally defined functions.
func pkgFunc(info *types.Info, call *ast.CallExpr) (pkgPath, name string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	id, isIdent := sel.X.(*ast.Ident)
	if !isIdent {
		return "", "", false
	}
	pn, isPkg := info.Uses[id].(*types.PkgName)
	if !isPkg {
		return "", "", false
	}
	return pn.Imported().Path(), sel.Sel.Name, true
}

// methodCall resolves a call expression to (receiver type, method name)
// when the callee is a method selector. The receiver type has pointers
// stripped.
func methodCall(info *types.Info, call *ast.CallExpr) (recv types.Type, name string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return nil, "", false
	}
	s, isMethod := info.Selections[sel]
	if !isMethod || s.Kind() != types.MethodVal {
		return nil, "", false
	}
	t := s.Recv()
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	return t, sel.Sel.Name, true
}

// isSubPath reports whether the import path equals prefix or sits below
// it ("repro/internal/core" is below "repro/internal").
func isSubPath(path, prefix string) bool {
	return path == prefix || strings.HasPrefix(path, prefix+"/")
}

// namedIn reports whether t (pointers stripped) is a named type from the
// given package with one of the given names.
func namedIn(t types.Type, pkgPath string, names ...string) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != pkgPath {
		return false
	}
	for _, name := range names {
		if obj.Name() == name {
			return true
		}
	}
	return false
}

// lastResultIsError reports whether the call's callee returns an error
// as its final result.
func lastResultIsError(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call.Fun]
	if !ok {
		return false
	}
	sig, ok := tv.Type.(*types.Signature)
	if !ok {
		return false
	}
	res := sig.Results()
	if res.Len() == 0 {
		return false
	}
	last := res.At(res.Len() - 1).Type()
	n, ok := last.(*types.Named)
	return ok && n.Obj().Pkg() == nil && n.Obj().Name() == "error"
}

// containsCallTo reports whether any call to pkgPath.<any of names>
// appears in the expression subtree.
func containsCallTo(info *types.Info, e ast.Expr, pkgPath string, names ...string) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		p, f, ok := pkgFunc(info, call)
		if !ok || p != pkgPath {
			return true
		}
		for _, name := range names {
			if f == name {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
