package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Package is one loaded, parsed, and type-checked package of the module
// under analysis.
type Package struct {
	Path  string // import path, e.g. "repro/internal/core"
	Dir   string // absolute directory
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	allows []*allowDirective
}

// LoadError marks a failure to parse or type-check the module — the
// driver maps it to exit code 2 (as opposed to findings, which exit 1).
type LoadError struct {
	Err error
}

func (e *LoadError) Error() string { return fmt.Sprintf("lint: load: %v", e.Err) }
func (e *LoadError) Unwrap() error { return e.Err }

// LoadModule discovers, parses, and type-checks every non-test package
// under the module rooted at root (the directory holding go.mod).
// Packages come back sorted by import path. Test files (_test.go) are
// excluded: the determinism contract binds shipping code; tests exercise
// it and may legitimately consult the clock.
func LoadModule(root string) ([]*Package, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, &LoadError{err}
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, &LoadError{err}
	}
	dirs, err := packageDirs(root)
	if err != nil {
		return nil, &LoadError{err}
	}

	fset := token.NewFileSet()
	type rawPkg struct {
		path    string
		dir     string
		files   []*ast.File
		imports []string // module-internal imports only
	}
	raw := make(map[string]*rawPkg)
	for _, dir := range dirs {
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return nil, &LoadError{err}
		}
		path := modPath
		if rel != "." {
			path = modPath + "/" + filepath.ToSlash(rel)
		}
		files, err := parseDir(fset, dir)
		if err != nil {
			return nil, &LoadError{err}
		}
		if len(files) == 0 {
			continue
		}
		rp := &rawPkg{path: path, dir: dir, files: files}
		seen := map[string]bool{}
		for _, f := range files {
			for _, imp := range f.Imports {
				p, err := strconv.Unquote(imp.Path.Value)
				if err != nil {
					continue
				}
				if (p == modPath || strings.HasPrefix(p, modPath+"/")) && !seen[p] {
					seen[p] = true
					rp.imports = append(rp.imports, p)
				}
			}
		}
		raw[path] = rp
	}

	paths := make([]string, 0, len(raw))
	for p := range raw {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	order, err := topoSort(paths, func(p string) []string { return raw[p].imports })
	if err != nil {
		return nil, &LoadError{err}
	}

	checked := make(map[string]*types.Package)
	imp := &moduleImporter{
		modPath: modPath,
		checked: checked,
		std:     importer.ForCompiler(fset, "source", nil),
	}
	var pkgs []*Package
	for _, path := range order {
		rp := raw[path]
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(path, fset, rp.files, info)
		if err != nil {
			return nil, &LoadError{fmt.Errorf("type-checking %s: %w", path, err)}
		}
		checked[path] = tpkg
		pkg := &Package{
			Path:  path,
			Dir:   rp.dir,
			Fset:  fset,
			Files: rp.files,
			Types: tpkg,
			Info:  info,
		}
		for _, f := range rp.files {
			pkg.allows = append(pkg.allows, parseAllows(fset, f)...)
		}
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// moduleImporter resolves module-internal import paths from the packages
// already type-checked this load (topological order guarantees they
// exist) and everything else — the standard library — from source.
type moduleImporter struct {
	modPath string
	checked map[string]*types.Package
	std     types.Importer
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == m.modPath || strings.HasPrefix(path, m.modPath+"/") {
		if p, ok := m.checked[path]; ok {
			return p, nil
		}
		return nil, fmt.Errorf("internal package %s not yet type-checked (import cycle?)", path)
	}
	return m.std.Import(path)
}

// modulePath reads the module declaration from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			p := strings.TrimSpace(rest)
			p = strings.Trim(p, `"`)
			if p != "" {
				return p, nil
			}
		}
	}
	return "", fmt.Errorf("%s: no module declaration", gomod)
}

// packageDirs walks root and returns every directory containing at least
// one buildable non-test .go file, skipping testdata, vendor, and hidden
// or underscore-prefixed directories.
func packageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		ents, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range ents {
			n := e.Name()
			if !e.IsDir() && strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") &&
				!strings.HasPrefix(n, ".") && !strings.HasPrefix(n, "_") {
				dirs = append(dirs, path)
				break
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	return dirs, nil
}

// parseDir parses every buildable non-test .go file in dir.
func parseDir(fset *token.FileSet, dir string) ([]*ast.File, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range ents {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") ||
			strings.HasPrefix(n, ".") || strings.HasPrefix(n, "_") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, n), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// topoSort orders package paths so that every package appears after its
// module-internal imports. paths must be pre-sorted for a deterministic
// result; deps may return paths outside the set, which are ignored.
func topoSort(paths []string, deps func(string) []string) ([]string, error) {
	known := make(map[string]bool, len(paths))
	for _, p := range paths {
		known[p] = true
	}
	const (
		white = 0
		gray  = 1
		black = 2
	)
	state := make(map[string]int, len(paths))
	var order []string
	var visit func(p string) error
	visit = func(p string) error {
		switch state[p] {
		case gray:
			return fmt.Errorf("import cycle through %s", p)
		case black:
			return nil
		}
		state[p] = gray
		for _, d := range deps(p) {
			if !known[d] {
				continue
			}
			if err := visit(d); err != nil {
				return err
			}
		}
		state[p] = black
		order = append(order, p)
		return nil
	}
	for _, p := range paths {
		if err := visit(p); err != nil {
			return nil, err
		}
	}
	return order, nil
}
