package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// errdropMethods are the writer-lifecycle methods whose error return is
// the only signal a truncated or unflushed artifact leaves behind. A CSV
// row that never hit the disk and a HAR whose encoder died mid-document
// both look exactly like success if these are dropped.
var errdropMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"WriteAll": true, "Flush": true, "Close": true, "Encode": true,
}

// ErrdropCheck flags statement-level calls to Write/Close/Flush/Encode
// methods whose trailing error result is silently discarded. Deferred
// calls are exempt (the idiomatic best-effort cleanup), as are the
// never-failing in-memory writers strings.Builder and bytes.Buffer.
// An explicit `_ =` discard is also accepted: it is a visible decision,
// not an accident.
var ErrdropCheck = &Check{
	Name: "errdrop",
	Doc:  "flag dropped error returns from Write/Close/Flush/Encode on artifact writers",
	Run:  runErrdrop,
}

func runErrdrop(p *Pass) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := stmt.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			recv, name, ok := methodCall(p.Pkg.Info, call)
			if !ok || !errdropMethods[name] {
				return true
			}
			if !lastResultIsError(p.Pkg.Info, call) {
				return true
			}
			// strings.Builder and bytes.Buffer writes are documented to
			// never return an error, and hash.Hash implementations
			// (hash/*, crypto/*) carry the same guarantee.
			if namedIn(recv, "strings", "Builder") || namedIn(recv, "bytes", "Buffer") {
				return true
			}
			if named, isNamed := recv.(*types.Named); isNamed {
				if pkg := named.Obj().Pkg(); pkg != nil {
					if path := pkg.Path(); path == "hash" || strings.HasPrefix(path, "hash/") ||
						path == "crypto" || strings.HasPrefix(path, "crypto/") {
						return true
					}
				}
			}
			p.Reportf(call.Pos(),
				"error return of %s dropped; a failed %s is the only evidence of a truncated artifact — check it or discard explicitly with _ =",
				name, name)
			return true
		})
	}
}
