package lint

import (
	"go/ast"
)

// wallFuncs are the time-package functions that read or wait on the
// process wall clock. Anything here called from measurement code makes a
// seeded run irreproducible: two identical runs observe different times,
// and timings leak into CSV/HAR artifacts.
var wallFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
}

// WalltimeCheck forbids wall-clock reads and waits outside
// internal/vclock, the one package sanctioned to touch real time. All
// simulation and measurement code must take its notion of time from a
// threaded *vclock.Clock (or vclock.Wall for operational telemetry).
// Binaries under cmd/ that deliberately show wall-clock progress to an
// operator annotate each use with //detlint:allow walltime.
var WalltimeCheck = &Check{
	Name: "walltime",
	Doc:  "forbid time.Now/Since/Sleep/After outside internal/vclock; use a threaded *vclock.Clock",
	Run:  runWalltime,
}

func runWalltime(p *Pass) {
	if isSubPath(p.Pkg.Path, "repro/internal/vclock") {
		return
	}
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			pkg, name, ok := pkgFunc(p.Pkg.Info, call)
			if !ok || pkg != "time" || !wallFuncs[name] {
				return true
			}
			p.Reportf(call.Pos(),
				"time.%s reads the wall clock and breaks seeded reproducibility; use the threaded *vclock.Clock (internal/vclock), or vclock.Wall for operational telemetry", name)
			return true
		})
	}
}
