package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"io"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// This file is the allocflow layer: an intraprocedural escape/allocation
// dataflow analysis driven through the module call graph. Per function it
// classifies allocation sites — composite literals, new/make, append
// growth, interface boxing at call boundaries, closure captures,
// string/[]byte conversions, map inserts — and decides whether each site
// escapes via a conservative value-flow lattice:
//
//	none < arg < captured < heap < returned
//
// A site "escapes" when its value is returned, stored into heap memory
// (a field, slice/map element, dereference, package-level variable, or
// channel), captured by a function literal, or passed to a call whose
// parameter may retain it. The lattice is intentionally one-sided: it
// over-approximates (an arg passed to a pure function is still "arg")
// and never under-approximates within its intraprocedural scope. The
// soundness caveats mirror the call graph's and are documented in
// DESIGN.md.
//
// Hot-path intersection: functions carrying a //detlint:hotpath
// directive in their doc comment are entry points (browser.Load,
// core.Study.RunStream, the hisparserve handlers). Forward reachability
// over the call graph assigns every reachable function a distance and a
// rendered chain from its nearest entry point; a second fixpoint marks
// functions reached through a call site that sits inside a loop
// ("hot-loop context"), so an allocation in a straight-line helper called
// from a loop ranks like an allocation in the loop itself.

// hotpathDirective marks a function as a hot entry point when it appears
// in the function's doc comment.
const hotpathDirective = "detlint:hotpath"

// AllocKind classifies an allocation site.
type AllocKind string

// Allocation site kinds.
const (
	AllocMake      AllocKind = "make"      // make(slice/map/chan)
	AllocNew       AllocKind = "new"       // new(T)
	AllocComposite AllocKind = "composite" // composite literal (outermost)
	AllocAppend    AllocKind = "append"    // append growth
	AllocBox       AllocKind = "box"       // interface boxing at a call boundary
	AllocConv      AllocKind = "conv"      // string <-> []byte/[]rune conversion
	AllocClosure   AllocKind = "closure"   // func literal capturing variables
	AllocMapWrite  AllocKind = "mapwrite"  // map insert (table growth)
)

// EscapeClass is the value-flow lattice. Order is by strength of the
// escape claim; joins take the maximum.
type EscapeClass int

// Escape classes, weakest to strongest.
const (
	EscNone     EscapeClass = iota // stays within the frame
	EscArg                         // passed to a call that may retain it
	EscCaptured                    // captured by a function literal
	EscHeap                        // stored into heap memory
	EscReturned                    // returned to the caller
)

// String names the escape class for diagnostics.
func (e EscapeClass) String() string {
	switch e {
	case EscArg:
		return "arg"
	case EscCaptured:
		return "captured"
	case EscHeap:
		return "heap"
	case EscReturned:
		return "returned"
	default:
		return "none"
	}
}

// AllocSite is one classified allocation site inside a function.
type AllocSite struct {
	Kind   AllocKind
	Pos    token.Pos
	Desc   string
	InLoop bool // lexically inside a for/range statement
	Escape EscapeClass
	// Retained marks append/map growth whose target is declared outside
	// the enclosing loop and escapes: the growth accumulates across
	// iterations instead of dying with one.
	Retained bool
}

type posRange struct{ from, to token.Pos }

func (r posRange) contains(p token.Pos) bool { return p >= r.from && p <= r.to }

func posInRanges(p token.Pos, rs []posRange) bool {
	for _, r := range rs {
		if r.contains(p) {
			return true
		}
	}
	return false
}

// allocState is the module-wide allocflow result, computed once per
// graph and shared by the allocloop/boxing/retain checks and the
// hot-path report.
type allocState struct {
	sites   map[*FuncNode][]AllocSite
	loops   map[*FuncNode][]posRange
	entries []*FuncNode // hotpath-directive functions, sorted by ID

	hotDist map[*FuncNode]int       // shortest distance from any entry
	hotPrev map[*FuncNode]*FuncNode // deterministic predecessor toward the entry
	hotLoop map[*FuncNode]bool      // reached through a call site inside a loop
}

// allocState computes (once) the allocation sites, hot-path
// reachability, and loop-context facts for the whole module. Every sweep
// iterates g.sorted, so the result is a pure function of the graph.
func (g *Graph) allocState() *allocState {
	if g.allocs != nil {
		return g.allocs
	}
	st := &allocState{
		sites:   make(map[*FuncNode][]AllocSite),
		loops:   make(map[*FuncNode][]posRange),
		hotDist: make(map[*FuncNode]int),
		hotPrev: make(map[*FuncNode]*FuncNode),
		hotLoop: make(map[*FuncNode]bool),
	}
	for _, n := range g.sorted {
		fa := newFuncAnalysis(n)
		st.sites[n] = fa.scan()
		st.loops[n] = fa.loops
		if isHotEntry(n) {
			st.entries = append(st.entries, n)
			st.hotDist[n] = 0
		}
	}

	// Forward reachability from the entries, with deterministic
	// predecessor selection: candidates are ranked by (distance,
	// caller ID). Loop context propagates in the same fixpoint — a
	// callee is in hot-loop context when any hot caller reaches it from
	// inside a loop or is itself in loop context.
	for changed := true; changed; {
		changed = false
		for _, n := range g.sorted {
			d, hot := st.hotDist[n]
			if !hot {
				continue
			}
			for _, cs := range n.Calls {
				callee := cs.Callee
				nd := d + 1
				cur, ok := st.hotDist[callee]
				if !ok || nd < cur || (nd == cur && st.hotPrev[callee] != nil && n.ID < st.hotPrev[callee].ID) {
					if cur != 0 || !ok { // never displace an entry's distance 0
						st.hotDist[callee] = nd
						st.hotPrev[callee] = n
						changed = true
					}
				}
				if (st.hotLoop[n] || posInRanges(cs.Pos, st.loops[n])) && !st.hotLoop[callee] {
					st.hotLoop[callee] = true
					changed = true
				}
			}
		}
	}
	g.allocs = st
	return st
}

// isHotEntry reports whether the function's doc comment carries the
// //detlint:hotpath directive.
func isHotEntry(n *FuncNode) bool {
	if n.Decl.Doc == nil {
		return false
	}
	for _, c := range n.Decl.Doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if strings.HasPrefix(text, hotpathDirective) {
			return true
		}
	}
	return false
}

// hotChain renders the call path from the nearest entry point down to n,
// as "entry → a → n". Long chains elide the middle.
func (st *allocState) hotChain(n *FuncNode) string {
	var names []string
	for cur := n; cur != nil; cur = st.hotPrev[cur] {
		names = append(names, cur.Name())
		if st.hotDist[cur] == 0 {
			break
		}
	}
	// Reverse into entry-first order.
	for i, j := 0, len(names)-1; i < j; i, j = i+1, j-1 {
		names[i], names[j] = names[j], names[i]
	}
	if len(names) > 6 {
		names = append(append(names[:3:3], "…"), names[len(names)-2:]...)
	}
	return strings.Join(names, " → ")
}

// funcAnalysis is the per-function scaffolding shared by the site scan
// and the escape lattice: parent links, loop extents, function-literal
// extents, and the per-variable escape facts.
type funcAnalysis struct {
	n       *FuncNode
	info    *types.Info
	parents map[ast.Node]ast.Node
	loops   []posRange
	lits    []*ast.FuncLit
	esc     map[*types.Var]EscapeClass
	flows   map[*types.Var][]*types.Var // v -> vars v's value flows into
}

func newFuncAnalysis(n *FuncNode) *funcAnalysis {
	fa := &funcAnalysis{
		n:       n,
		info:    n.Pkg.Info,
		parents: make(map[ast.Node]ast.Node),
		esc:     make(map[*types.Var]EscapeClass),
		flows:   make(map[*types.Var][]*types.Var),
	}
	var stack []ast.Node
	ast.Inspect(n.Decl, func(node ast.Node) bool {
		if node == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			fa.parents[node] = stack[len(stack)-1]
		}
		stack = append(stack, node)
		switch s := node.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			fa.loops = append(fa.loops, posRange{node.Pos(), node.End()})
		case *ast.FuncLit:
			fa.lits = append(fa.lits, s)
		}
		return true
	})
	fa.buildEscapes()
	return fa
}

// local reports whether a variable is declared inside this function
// (parameters and receivers included).
func (fa *funcAnalysis) local(v *types.Var) bool {
	return v != nil && v.Pos() >= fa.n.Decl.Pos() && v.Pos() <= fa.n.Decl.End()
}

// enclosingLit returns the innermost function literal containing pos,
// or nil.
func (fa *funcAnalysis) enclosingLit(pos token.Pos) *ast.FuncLit {
	var best *ast.FuncLit
	for _, lit := range fa.lits {
		if pos >= lit.Pos() && pos <= lit.End() {
			if best == nil || lit.Pos() > best.Pos() {
				best = lit
			}
		}
	}
	return best
}

// buildEscapes seeds per-variable escape facts from every identifier use
// and propagates them along value-flow edges to a fixpoint.
func (fa *funcAnalysis) buildEscapes() {
	ast.Inspect(fa.n.Decl, func(node ast.Node) bool {
		id, ok := node.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := fa.info.Uses[id].(*types.Var)
		if !ok || !fa.local(v) {
			return true
		}
		// Capture: a use inside a literal of a variable declared outside it.
		if lit := fa.enclosingLit(id.Pos()); lit != nil && v.Pos() < lit.Pos() {
			fa.seed(v, EscCaptured)
		}
		cls, bound := fa.escContext(id)
		if bound != nil && bound != v {
			fa.flows[v] = append(fa.flows[v], bound)
		} else if cls > EscNone {
			fa.seed(v, cls)
		}
		return true
	})

	// Fixpoint over the flow edges: a variable is at least as escaped as
	// anything its value flows into. Vars iterate in declaration order.
	vars := make([]*types.Var, 0, len(fa.flows))
	for v := range fa.flows {
		vars = append(vars, v)
	}
	sort.Slice(vars, func(i, j int) bool { return vars[i].Pos() < vars[j].Pos() })
	for changed := true; changed; {
		changed = false
		for _, v := range vars {
			for _, w := range fa.flows[v] {
				if fa.esc[w] > fa.esc[v] {
					fa.esc[v] = fa.esc[w]
					changed = true
				}
			}
		}
	}
}

func (fa *funcAnalysis) seed(v *types.Var, cls EscapeClass) {
	if cls > fa.esc[v] {
		fa.esc[v] = cls
	}
}

// builtinName returns the name of the builtin a call expression invokes,
// or "".
func builtinName(info *types.Info, fun ast.Expr) string {
	id, ok := ast.Unparen(fun).(*ast.Ident)
	if !ok {
		return ""
	}
	if b, ok := info.Uses[id].(*types.Builtin); ok {
		return b.Name()
	}
	return ""
}

// escContext walks up from an expression to the statement consuming it
// and classifies how the value escapes there. When the value is bound to
// a local variable instead, it returns (EscNone, var) and the caller
// follows the variable's own escape fact.
func (fa *funcAnalysis) escContext(e ast.Expr) (EscapeClass, *types.Var) {
	var cur ast.Node = e
	for {
		p := fa.parents[cur]
		if p == nil {
			return EscNone, nil
		}
		switch pp := p.(type) {
		case *ast.ParenExpr, *ast.CompositeLit, *ast.KeyValueExpr, *ast.SliceExpr, *ast.TypeAssertExpr:
			cur = p
		case *ast.UnaryExpr:
			if pp.Op == token.AND {
				cur = p
				continue
			}
			return EscNone, nil
		case *ast.CallExpr:
			if pp.Fun == cur {
				return EscNone, nil
			}
			if tv, ok := fa.info.Types[pp.Fun]; ok && tv.IsType() {
				cur = p // conversion wraps the value; keep walking
				continue
			}
			switch builtinName(fa.info, pp.Fun) {
			case "len", "cap", "delete", "clear", "copy", "print", "println", "min", "max":
				return EscNone, nil
			case "append":
				cur = p // appended values flow into append's result
				continue
			}
			return EscArg, nil
		case *ast.ReturnStmt:
			return EscReturned, nil
		case *ast.SendStmt:
			if pp.Value == cur {
				return EscHeap, nil
			}
			return EscNone, nil
		case *ast.AssignStmt:
			for i, r := range pp.Rhs {
				if r != cur {
					continue
				}
				if len(pp.Lhs) != len(pp.Rhs) {
					return EscHeap, nil
				}
				return fa.lhsTarget(pp.Lhs[i])
			}
			return EscNone, nil // cur sits on the Lhs: a write target, not a value use
		case *ast.ValueSpec:
			for i, r := range pp.Values {
				if r != cur {
					continue
				}
				if len(pp.Names) == len(pp.Values) {
					if v, ok := fa.info.Defs[pp.Names[i]].(*types.Var); ok {
						return EscNone, v
					}
				}
				return EscHeap, nil
			}
			return EscNone, nil
		case *ast.GoStmt, *ast.DeferStmt:
			return EscArg, nil
		case *ast.IndexExpr, *ast.SelectorExpr, *ast.StarExpr, *ast.BinaryExpr,
			*ast.ExprStmt, *ast.IncDecStmt, *ast.IfStmt, *ast.ForStmt, *ast.RangeStmt,
			*ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.CaseClause, *ast.BlockStmt,
			*ast.FuncLit, *ast.FuncDecl, *ast.LabeledStmt:
			return EscNone, nil
		default:
			// Unknown consumer: over-approximate.
			return EscHeap, nil
		}
	}
}

// lhsTarget classifies an assignment destination: a local variable binds
// the value (returning the var), everything else — package-level vars,
// fields, elements, dereferences — is a heap store.
func (fa *funcAnalysis) lhsTarget(lhs ast.Expr) (EscapeClass, *types.Var) {
	switch l := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if l.Name == "_" {
			return EscNone, nil
		}
		obj := fa.info.Defs[l]
		if obj == nil {
			obj = fa.info.Uses[l]
		}
		if v, ok := obj.(*types.Var); ok && fa.local(v) {
			return EscNone, v
		}
		return EscHeap, nil
	default:
		return EscHeap, nil
	}
}

// escapeOf resolves an allocation expression's final escape class: its
// immediate context, or — when bound to a local — the variable's fact
// from the fixpoint.
func (fa *funcAnalysis) escapeOf(e ast.Expr) EscapeClass {
	cls, bound := fa.escContext(e)
	if bound != nil {
		if v := fa.esc[bound]; v > cls {
			cls = v
		}
	}
	return cls
}

// typeDesc renders a type with base package qualifiers, mapping any
// empty interface spelling to "interface{}" so descriptions are stable
// across alias representations.
func typeDesc(t types.Type) string {
	if iface, ok := t.Underlying().(*types.Interface); ok && iface.Empty() {
		return "interface{}"
	}
	return types.TypeString(t, func(p *types.Package) string { return p.Name() })
}

// exprDesc renders a source expression compactly for site descriptions.
func exprDesc(e ast.Expr) string {
	s := types.ExprString(e)
	if len(s) > 40 {
		s = s[:37] + "..."
	}
	return s
}

// scan walks the function body and classifies every allocation site.
func (fa *funcAnalysis) scan() []AllocSite {
	var sites []AllocSite
	add := func(kind AllocKind, pos token.Pos, desc string, esc EscapeClass, retained bool) {
		sites = append(sites, AllocSite{
			Kind:     kind,
			Pos:      pos,
			Desc:     desc,
			InLoop:   posInRanges(pos, fa.loops),
			Escape:   esc,
			Retained: retained,
		})
	}
	info := fa.info
	ast.Inspect(fa.n.Decl.Body, func(node ast.Node) bool {
		switch x := node.(type) {
		case *ast.CallExpr:
			fun := ast.Unparen(x.Fun)
			if tv, ok := info.Types[fun]; ok && tv.IsType() {
				if desc, ok := convDesc(info, x); ok {
					add(AllocConv, x.Pos(), desc, fa.escapeOf(x), false)
				}
				return true
			}
			switch builtinName(info, fun) {
			case "make":
				add(AllocMake, x.Pos(), "make("+exprDesc(x.Args[0])+")", fa.escapeOf(x), false)
			case "new":
				add(AllocNew, x.Pos(), "new("+exprDesc(x.Args[0])+")", fa.escapeOf(x), false)
			case "append":
				esc, retained := fa.growthTarget(x.Args[0], x.Pos())
				add(AllocAppend, x.Pos(), "append to "+exprDesc(x.Args[0]), esc, retained)
			case "":
				fa.boxingSites(x, add)
			}
		case *ast.CompositeLit:
			if fa.insideComposite(x) {
				return true
			}
			desc := "composite literal"
			if tv, ok := info.Types[x]; ok && tv.Type != nil {
				desc = "composite literal " + typeDesc(tv.Type)
			}
			add(AllocComposite, x.Pos(), desc, fa.escapeOf(x), false)
		case *ast.FuncLit:
			if k := fa.captureCount(x); k > 0 {
				add(AllocClosure, x.Pos(), "func literal capturing "+strconv.Itoa(k)+" variable(s)", fa.escapeOf(x), false)
			}
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				fa.mapWrite(lhs, x.Pos(), add)
			}
		case *ast.IncDecStmt:
			fa.mapWrite(x.X, x.Pos(), add)
		}
		return true
	})
	return sites
}

// insideComposite reports whether a literal is an element of an
// enclosing composite literal (counted once at the outermost level).
func (fa *funcAnalysis) insideComposite(x *ast.CompositeLit) bool {
	for cur := fa.parents[x]; cur != nil; cur = fa.parents[cur] {
		switch cur.(type) {
		case *ast.CompositeLit:
			return true
		case *ast.KeyValueExpr, *ast.UnaryExpr, *ast.ParenExpr:
			continue
		default:
			return false
		}
	}
	return false
}

// mapWrite records a map-insert site when the write target is a map
// index expression.
func (fa *funcAnalysis) mapWrite(lhs ast.Expr, pos token.Pos, add func(AllocKind, token.Pos, string, EscapeClass, bool)) {
	ix, ok := ast.Unparen(lhs).(*ast.IndexExpr)
	if !ok {
		return
	}
	tv, ok := fa.info.Types[ix.X]
	if !ok || tv.Type == nil {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	esc, retained := fa.growthTarget(ix.X, pos)
	add(AllocMapWrite, pos, "map write to "+exprDesc(ix.X), esc, retained)
}

// growthTarget classifies the container a growth site (append or map
// insert) feeds: its escape class, and whether the growth is retained
// across iterations of an enclosing loop — the target is declared
// outside the loop (or lives on the heap outright) and escapes.
func (fa *funcAnalysis) growthTarget(target ast.Expr, sitePos token.Pos) (EscapeClass, bool) {
	inLoop := posInRanges(sitePos, fa.loops)
	if id, ok := ast.Unparen(target).(*ast.Ident); ok {
		obj := fa.info.Uses[id]
		if obj == nil {
			obj = fa.info.Defs[id]
		}
		if v, ok := obj.(*types.Var); ok && fa.local(v) {
			esc := fa.esc[v]
			if !inLoop || esc == EscNone {
				return esc, false
			}
			for _, l := range fa.loops {
				if l.contains(sitePos) && v.Pos() < l.from {
					return esc, true
				}
			}
			return esc, false
		}
		// Package-level variable: heap-resident, always outlives the loop.
		return EscHeap, inLoop
	}
	// Field, element, or dereference target: heap-resident.
	return EscHeap, inLoop
}

// captureCount counts distinct outer local variables a function literal
// captures.
func (fa *funcAnalysis) captureCount(lit *ast.FuncLit) int {
	seen := make(map[*types.Var]bool)
	ast.Inspect(lit.Body, func(node ast.Node) bool {
		id, ok := node.(*ast.Ident)
		if !ok {
			return true
		}
		if v, ok := fa.info.Uses[id].(*types.Var); ok && fa.local(v) && v.Pos() < lit.Pos() {
			seen[v] = true
		}
		return true
	})
	return len(seen)
}

// convDesc describes an allocating string conversion, or ok=false when
// the conversion does not allocate a copy.
func convDesc(info *types.Info, call *ast.CallExpr) (string, bool) {
	if len(call.Args) != 1 {
		return "", false
	}
	dst, ok := info.Types[call]
	if !ok || dst.Type == nil {
		return "", false
	}
	src, ok := info.Types[call.Args[0]]
	if !ok || src.Type == nil {
		return "", false
	}
	d, s := dst.Type.Underlying(), src.Type.Underlying()
	if isString(d) && isByteOrRuneSlice(s) {
		return "string(" + exprDesc(call.Args[0]) + ") conversion", true
	}
	if isByteOrRuneSlice(d) && isString(s) {
		return typeDesc(dst.Type) + "(" + exprDesc(call.Args[0]) + ") conversion", true
	}
	return "", false
}

func isString(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	sl, ok := t.(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Uint8 || b.Kind() == types.Rune || b.Kind() == types.Int32)
}

// boxingSites reports arguments boxed into interface parameters at a
// call boundary: a concrete non-pointer-shaped value converted to an
// interface allocates. Small constant integers (the runtime serves them
// from a static table) and nils are skipped.
func (fa *funcAnalysis) boxingSites(call *ast.CallExpr, add func(AllocKind, token.Pos, string, EscapeClass, bool)) {
	tvFun, ok := fa.info.Types[call.Fun]
	if !ok || tvFun.Type == nil {
		return
	}
	sig, ok := tvFun.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // the slice passes through as-is
			}
			sl, ok := params.At(params.Len() - 1).Type().(*types.Slice)
			if !ok {
				continue
			}
			pt = sl.Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if _, isIface := pt.Underlying().(*types.Interface); !isIface {
			continue
		}
		at, ok := fa.info.Types[arg]
		if !ok || at.Type == nil || at.IsNil() {
			continue
		}
		if !boxAllocates(at) {
			continue
		}
		desc := typeDesc(at.Type) + " boxed into " + typeDesc(pt) + " argument of " + exprDesc(call.Fun)
		add(AllocBox, arg.Pos(), desc, EscArg, false)
	}
}

// boxAllocates reports whether converting the value to an interface
// allocates: pointer-shaped types and interfaces store directly, and
// small constant integers come from the runtime's static table.
func boxAllocates(tv types.TypeAndValue) bool {
	switch tv.Type.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature, *types.Interface:
		return false
	case *types.Basic:
		if tv.Type.Underlying().(*types.Basic).Kind() == types.UnsafePointer {
			return false
		}
	}
	if tv.Value != nil {
		if v, ok := smallIntConst(tv); ok && v >= 0 && v < 256 {
			return false
		}
	}
	return true
}

func smallIntConst(tv types.TypeAndValue) (int64, bool) {
	b, ok := tv.Type.Underlying().(*types.Basic)
	if !ok || b.Info()&types.IsInteger == 0 {
		return 0, false
	}
	s := tv.Value.ExactString()
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// ---------------------------------------------------------------------------
// Hot-path allocation report (cmd/detlint -hotpaths)

// HotReport is the ranked hot-path allocation report: every allocation
// site in functions reachable from a //detlint:hotpath entry point,
// grouped per function with the rendered call chain from its nearest
// entry. Ordering is deterministic (score desc, then function ID), and
// each site carries a motion-tolerant fingerprint so reports diff
// cleanly across code versions.
type HotReport struct {
	Entries    []string  `json:"entries"`
	Functions  []HotFunc `json:"functions"`
	TotalSites int       `json:"total_sites"`
}

// HotFunc is one hot function's allocation profile.
type HotFunc struct {
	Func    string    `json:"func"`
	File    string    `json:"file"`
	Dist    int       `json:"dist"`
	Entry   string    `json:"entry"`
	Chain   string    `json:"chain"`
	HotLoop bool      `json:"hot_loop"`
	Score   int       `json:"score"`
	Sites   []HotSite `json:"sites"`
}

// HotSite is one allocation site in the report.
type HotSite struct {
	Kind        string `json:"kind"`
	File        string `json:"file"`
	Line        int    `json:"line"`
	Desc        string `json:"desc"`
	Escape      string `json:"escape"`
	InLoop      bool   `json:"in_loop"`
	Retained    bool   `json:"retained,omitempty"`
	Fingerprint string `json:"fingerprint"`
}

// siteWeight ranks a site's likely contribution to hot-path churn.
func siteWeight(s AllocSite, hotLoop bool) int {
	w := 1
	if s.InLoop {
		w += 3
	} else if hotLoop {
		w += 2
	}
	if s.Retained {
		w += 2
	}
	if s.Escape >= EscHeap {
		w++
	}
	return w
}

// HotpathReport builds the hot-path allocation report over the loaded
// packages. File paths are absolute; callers relativize for output.
func HotpathReport(pkgs []*Package) *HotReport {
	g := BuildGraph(pkgs)
	st := g.allocState()
	rep := &HotReport{Entries: []string{}, Functions: []HotFunc{}}
	for _, e := range st.entries {
		rep.Entries = append(rep.Entries, e.Name())
	}
	for _, n := range g.sorted {
		dist, hot := st.hotDist[n]
		if !hot {
			continue
		}
		sites := st.sites[n]
		if len(sites) == 0 {
			continue
		}
		chain := st.hotChain(n)
		entry := chain
		if i := strings.Index(chain, " → "); i >= 0 {
			entry = chain[:i]
		}
		pos := n.Pkg.Fset.Position(n.Decl.Pos())
		hf := HotFunc{
			Func:    n.Name(),
			File:    pos.Filename,
			Dist:    dist,
			Entry:   entry,
			Chain:   chain,
			HotLoop: st.hotLoop[n],
		}
		for _, s := range sites {
			sp := n.Pkg.Fset.Position(s.Pos)
			hf.Score += siteWeight(s, st.hotLoop[n])
			hf.Sites = append(hf.Sites, HotSite{
				Kind:        string(s.Kind),
				File:        sp.Filename,
				Line:        sp.Line,
				Desc:        s.Desc,
				Escape:      s.Escape.String(),
				InLoop:      s.InLoop,
				Retained:    s.Retained,
				Fingerprint: string(s.Kind) + "\x1f" + n.ID + "\x1f" + s.Desc,
			})
		}
		rep.TotalSites += len(hf.Sites)
		rep.Functions = append(rep.Functions, hf)
	}
	sort.SliceStable(rep.Functions, func(i, j int) bool {
		a, b := rep.Functions[i], rep.Functions[j]
		if a.Entry != b.Entry {
			return a.Entry < b.Entry
		}
		if a.Score != b.Score {
			return a.Score > b.Score
		}
		return a.Func < b.Func
	})
	return rep
}

// Relativize rewrites the report's absolute file paths relative to the
// module root, mirroring Relativize for diagnostics.
func (r *HotReport) Relativize(root string) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return
	}
	for i := range r.Functions {
		r.Functions[i].File = relPath(r.Functions[i].File, abs)
		for j := range r.Functions[i].Sites {
			r.Functions[i].Sites[j].File = relPath(r.Functions[i].Sites[j].File, abs)
		}
	}
}

// Diagnostics converts the report's sites into plain diagnostics (check
// name "hotalloc") so the SARIF renderer can carry the report.
func (r *HotReport) Diagnostics() []Diagnostic {
	var out []Diagnostic
	for _, f := range r.Functions {
		for _, s := range f.Sites {
			out = append(out, Diagnostic{
				Check:   "hotalloc",
				File:    s.File,
				Line:    s.Line,
				Col:     1,
				Message: s.Desc + " (escape: " + s.Escape + "; via " + f.Chain + ")",
			})
		}
	}
	return out
}

// WriteText renders the report for humans: entry points, then each hot
// function ranked by score with its chain and sites.
func (r *HotReport) WriteText(w io.Writer) error {
	var sb strings.Builder
	sb.WriteString("hot-path allocation report: ")
	sb.WriteString(strconv.Itoa(len(r.Entries)))
	sb.WriteString(" entry point(s), ")
	sb.WriteString(strconv.Itoa(len(r.Functions)))
	sb.WriteString(" hot function(s), ")
	sb.WriteString(strconv.Itoa(r.TotalSites))
	sb.WriteString(" allocation site(s)\n")
	for _, e := range r.Entries {
		sb.WriteString("entry: ")
		sb.WriteString(e)
		sb.WriteByte('\n')
	}
	for i := range r.Functions {
		f := &r.Functions[i]
		sb.WriteByte('\n')
		sb.WriteString(f.Func)
		sb.WriteString("  score=")
		sb.WriteString(strconv.Itoa(f.Score))
		sb.WriteString(" dist=")
		sb.WriteString(strconv.Itoa(f.Dist))
		if f.HotLoop {
			sb.WriteString(" hot-loop")
		}
		sb.WriteByte('\n')
		sb.WriteString("  via: ")
		sb.WriteString(f.Chain)
		sb.WriteByte('\n')
		for _, s := range f.Sites {
			sb.WriteString("  ")
			sb.WriteString(s.File)
			sb.WriteByte(':')
			sb.WriteString(strconv.Itoa(s.Line))
			sb.WriteString(" [")
			sb.WriteString(s.Kind)
			sb.WriteString("] ")
			sb.WriteString(s.Desc)
			sb.WriteString(" escape=")
			sb.WriteString(s.Escape)
			if s.InLoop {
				sb.WriteString(" in-loop")
			}
			if s.Retained {
				sb.WriteString(" retained")
			}
			sb.WriteByte('\n')
		}
	}
	_, err := io.WriteString(w, sb.String())
	return err
}
