package lint

import (
	"go/ast"
	"go/types"
)

// MaporderCheck flags range statements over maps whose body emits
// order-sensitive output: appending to a slice that is never sorted
// afterwards, or writing directly to a writer (fmt.Fprint*, Write,
// WriteString, Encode, ...). Go randomizes map iteration order on
// purpose, so such loops are the classic nondeterministic-output bug —
// a CSV or HAR artifact whose row order changes between identical runs.
//
// The sanctioned idiom passes: collect the keys, sort them, then range
// over the sorted slice. A loop that only appends is accepted when the
// destination slice is passed to sort.Strings/sort.Slice/... (or a
// slices.Sort* function) later in the same function.
var MaporderCheck = &Check{
	Name: "maporder",
	Doc:  "flag map-range loops that emit output in iteration order; sort the keys first",
	Run:  runMaporder,
}

// outputMethods are method names that move bytes toward an artifact.
// Writing any of them inside a map-range body emits in iteration order —
// including strings.Builder and hash writes, which are just as
// order-sensitive as a file write.
var outputMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"WriteAll": true, "Encode": true,
}

// fprintFuncs are the fmt writer-directed print functions.
var fprintFuncs = map[string]bool{
	"Fprint": true, "Fprintf": true, "Fprintln": true,
}

func runMaporder(p *Pass) {
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkMapRanges(p, fd.Body)
		}
	}
}

// checkMapRanges walks a function body looking for range-over-map
// statements with order-sensitive bodies. body is also the scope scanned
// for later sort calls that sanction an append-collect loop.
func checkMapRanges(p *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := p.Pkg.Info.Types[rs.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		inspectMapRangeBody(p, body, rs)
		return true
	})
}

func inspectMapRangeBody(p *Pass, fnBody *ast.BlockStmt, rs *ast.RangeStmt) {
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if pkg, name, ok := pkgFunc(p.Pkg.Info, n); ok && pkg == "fmt" && fprintFuncs[name] {
				p.Reportf(n.Pos(),
					"fmt.%s inside a map-range loop writes in nondeterministic iteration order; collect and sort the keys first", name)
				return true
			}
			if _, name, ok := methodCall(p.Pkg.Info, n); ok && outputMethods[name] {
				p.Reportf(n.Pos(),
					"%s call inside a map-range loop emits in nondeterministic iteration order; collect and sort the keys first", name)
				return true
			}
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "append" && len(n.Args) >= 2 {
				dest := n.Args[0]
				// Appending into a map value (m[k] = append(m[k], v))
				// builds a map, whose own order is irrelevant.
				if ix, ok := dest.(*ast.IndexExpr); ok {
					if tv, ok := p.Pkg.Info.Types[ix.X]; ok {
						if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
							return true
						}
					}
				}
				// A slice declared inside the loop body is a per-iteration
				// temporary; whatever consumes it decides its own order.
				if declaredWithin(p, dest, rs.Body) {
					return true
				}
				if !sortedLater(p, fnBody, rs, dest) {
					p.Reportf(n.Pos(),
						"appending to %s in map-iteration order is nondeterministic; sort %s afterwards or range over sorted keys",
						exprString(dest), exprString(dest))
				}
			}
		}
		return true
	})
}

// sortedLater reports whether dest (the slice being appended to inside
// the map-range loop) is handed to a sort function after the loop, in
// the same function body — the collect-then-sort idiom.
func sortedLater(p *Pass, fnBody *ast.BlockStmt, rs *ast.RangeStmt, dest ast.Expr) bool {
	want := exprString(dest)
	if want == "" {
		return false
	}
	found := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() <= rs.End() {
			return true
		}
		if len(call.Args) == 0 {
			return true
		}
		pkg, name, ok := pkgFunc(p.Pkg.Info, call)
		if !ok {
			return true
		}
		isSort := (pkg == "sort" || pkg == "slices") &&
			(name == "Sort" || name == "SortFunc" || name == "SortStableFunc" ||
				name == "Strings" || name == "Ints" || name == "Float64s" ||
				name == "Slice" || name == "SliceStable" || name == "Stable")
		if isSort && exprString(call.Args[0]) == want {
			found = true
			return false
		}
		return true
	})
	return found
}

// declaredWithin reports whether e is an identifier whose declaration
// sits inside the given block.
func declaredWithin(p *Pass, e ast.Expr, block *ast.BlockStmt) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	obj := p.Pkg.Info.Uses[id]
	if obj == nil {
		obj = p.Pkg.Info.Defs[id]
	}
	if obj == nil {
		return false
	}
	return obj.Pos() >= block.Pos() && obj.Pos() <= block.End()
}

// exprString renders an identifier or selector chain ("x", "m.Field")
// for positional matching of the appended-to destination against later
// sort calls. Other expression shapes return "".
func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		base := exprString(e.X)
		if base == "" {
			return ""
		}
		return base + "." + e.Sel.Name
	}
	return ""
}
