package lint

import (
	"path/filepath"
	"strings"
)

// Relativize rewrites absolute diagnostic paths relative to root so
// output is stable across machines and CI workspaces. Paths outside
// root are left untouched.
func Relativize(diags []Diagnostic, root string) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return
	}
	for i := range diags {
		diags[i].File = relPath(diags[i].File, abs)
	}
}

// relPath returns file relative to the absolute root, slash-separated,
// or file unchanged when it is not under root.
func relPath(file, root string) string {
	if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(rel)
	}
	return file
}
