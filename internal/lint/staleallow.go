package lint

import "sort"

// StaleallowCheck reports suppression rot: //detlint:allow directives
// that no longer suppress any finding, and directives naming checks
// that do not exist. A stale allow is latent risk — the justified
// exception it once covered is gone, but the silence it grants remains,
// so a future regression at the same site would be invisibly excused.
//
// A directive is judged only when every check it names actually ran in
// this invocation (a -checks subset must not condemn directives for
// checks it skipped), and directives naming staleallow itself are
// exempt, since suppressing a staleness report is the one use that can
// never register as a suppression.
var StaleallowCheck = &Check{
	Name: "staleallow",
	Doc:  "flag //detlint:allow directives that suppress no findings or name unknown checks",
}

// Run is attached in init: runStaleallow consults CheckByName, which
// walks Checks(), which contains StaleallowCheck — a static assignment
// would be an initialization cycle.
func init() { StaleallowCheck.Run = runStaleallow }

// runStaleallow must run after every other requested check has visited
// the package: Checks() orders it last, and Run executes the full check
// list per package before moving on.
func runStaleallow(p *Pass) {
	ran := make(map[string]bool, len(p.Ran))
	for _, name := range p.Ran {
		ran[name] = true
	}
	for _, d := range p.Pkg.allows {
		if d.checks["staleallow"] {
			continue
		}
		names := make([]string, 0, len(d.checks))
		for name := range d.checks {
			names = append(names, name)
		}
		sort.Strings(names)

		judgeable := true
		for _, name := range names {
			if CheckByName(name) == nil {
				p.Reportf(d.pos, "//detlint:allow names unknown check %q (use detlint -list)", name)
				judgeable = false
				continue
			}
			if !ran[name] {
				judgeable = false
			}
		}
		if !judgeable || d.used {
			continue
		}
		p.Reportf(d.pos,
			"//detlint:allow %s suppresses no findings; the exception it covered is gone — remove the directive", joinNames(names))
	}
}

func joinNames(names []string) string {
	out := ""
	for i, n := range names {
		if i > 0 {
			out += ","
		}
		out += n
	}
	return out
}
