package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// TaintCheck is the interprocedural determinism check: it walks the
// module call graph looking for call paths that connect a nondeterminism
// source to an artifact sink, in either of the two shapes a purely
// syntactic check cannot see:
//
//   - an artifact writer whose call path (transitively) reads a source —
//     the helper-wraps-time.Now() case, any number of calls deep;
//   - a function that reads a source itself and then calls (transitively)
//     into an artifact writer, where the tainted value can ride along as
//     an argument or receiver field.
//
// Sources are wall-clock reads (time.Now and friends — including inside
// internal/vclock, so vclock.Wall taint is tracked to wherever it
// flows), process-global math/rand draws, and functions returning slices
// built in map-iteration order. Sinks are the module's artifact
// emission primitives: encoding/csv writer methods, encoding/json
// Encoder.Encode, and os.WriteFile.
//
// The check is reachability-based, not value-flow-based: it proves a
// call chain exists, not that the nondeterministic value reaches the
// bytes written. Paths where the value provably stays out of the
// artifact (operator banners, telemetry) are justified in-source with
// //detlint:allow taint.
var TaintCheck = &Check{
	Name: "taint",
	Doc:  "flag call paths connecting nondeterminism sources (wall clock, global RNG, map order) to artifact sinks (CSV/HAR/JSON writers)",
	Run:  runTaint,
}

// taintSite is one direct source or sink occurrence inside a function.
type taintSite struct {
	Kind string // source: "walltime", "globalrand", "maporder"; sink: "csv", "json", "file"
	Desc string // e.g. "time.Now", "csv.Writer.WriteAll"
	Pos  token.Pos
}

// taintState caches the module-wide taint computation on the graph.
type taintState struct {
	srcSites  map[*FuncNode][]taintSite
	sinkSites map[*FuncNode][]taintSite
	srcDist   map[*FuncNode]int
	srcNext   map[*FuncNode]CallSite
	sinkDist  map[*FuncNode]int
	sinkNext  map[*FuncNode]CallSite
}

func (g *Graph) taintState() *taintState {
	if g.taint != nil {
		return g.taint
	}
	st := &taintState{
		srcSites:  make(map[*FuncNode][]taintSite),
		sinkSites: make(map[*FuncNode][]taintSite),
	}
	for _, n := range g.sorted {
		if sites := directSources(n); len(sites) > 0 {
			st.srcSites[n] = sites
		}
		if sites := directSinks(n); len(sites) > 0 {
			st.sinkSites[n] = sites
		}
	}
	st.srcDist, st.srcNext = reachability(g.sorted, func(n *FuncNode) bool {
		return len(st.srcSites[n]) > 0
	})
	st.sinkDist, st.sinkNext = reachability(g.sorted, func(n *FuncNode) bool {
		return len(st.sinkSites[n]) > 0
	})
	g.taint = st
	return st
}

// directSources collects the nondeterminism reads performed directly in
// the function's body (function literals included).
func directSources(n *FuncNode) []taintSite {
	info := n.Pkg.Info
	var sites []taintSite
	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		call, ok := node.(*ast.CallExpr)
		if !ok {
			return true
		}
		pkg, name, ok := pkgFunc(info, call)
		if !ok {
			return true
		}
		switch {
		case pkg == "time" && wallFuncs[name]:
			sites = append(sites, taintSite{Kind: "walltime", Desc: "time." + name, Pos: call.Pos()})
		case (pkg == "math/rand" || pkg == "math/rand/v2") && globalRandFuncs[name]:
			sites = append(sites, taintSite{Kind: "globalrand", Desc: "rand." + name, Pos: call.Pos()})
		}
		return true
	})
	sites = append(sites, mapOrderedReturns(n)...)
	sort.Slice(sites, func(i, j int) bool { return sites[i].Pos < sites[j].Pos })
	return sites
}

// directSinks collects the artifact emission calls performed directly in
// the function's body.
func directSinks(n *FuncNode) []taintSite {
	info := n.Pkg.Info
	var sites []taintSite
	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		call, ok := node.(*ast.CallExpr)
		if !ok {
			return true
		}
		if pkg, name, ok := pkgFunc(info, call); ok {
			if pkg == "os" && name == "WriteFile" {
				sites = append(sites, taintSite{Kind: "file", Desc: "os.WriteFile", Pos: call.Pos()})
			}
			return true
		}
		recv, name, ok := methodCall(info, call)
		if !ok {
			return true
		}
		switch {
		case namedIn(recv, "encoding/csv", "Writer") && (name == "Write" || name == "WriteAll"):
			sites = append(sites, taintSite{Kind: "csv", Desc: "csv.Writer." + name, Pos: call.Pos()})
		case namedIn(recv, "encoding/json", "Encoder") && name == "Encode":
			sites = append(sites, taintSite{Kind: "json", Desc: "json.Encoder.Encode", Pos: call.Pos()})
		// Trace spans are artifacts too: span output is contractually
		// byte-identical across runs, so a wall-clock read reaching a
		// span recorder is the same bug as one reaching a CSV writer.
		// (Ring is exempt: it backs the live /debug/tracez view, which
		// records real serving time by design.)
		case namedIn(recv, "repro/internal/trace", "Recorder") && name == "Record":
			sites = append(sites, taintSite{Kind: "trace", Desc: "trace.Recorder.Record", Pos: call.Pos()})
		}
		return true
	})
	sort.Slice(sites, func(i, j int) bool { return sites[i].Pos < sites[j].Pos })
	return sites
}

// mapOrderedReturns flags functions that build a slice by appending
// inside a range-over-map loop and return that slice without sorting it:
// the returned order is nondeterministic, and — unlike the syntactic
// maporder check — the damage surfaces only in whoever consumes it, so
// it is modeled as a taint source.
func mapOrderedReturns(n *FuncNode) []taintSite {
	info := n.Pkg.Info

	// Objects returned by the function.
	returned := make(map[token.Pos]bool) // declaration positions of returned idents
	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		ret, ok := node.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			if id, ok := res.(*ast.Ident); ok {
				if obj := info.Uses[id]; obj != nil {
					returned[obj.Pos()] = true
				}
			}
		}
		return true
	})
	if len(returned) == 0 {
		return nil
	}

	var sites []taintSite
	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		rs, ok := node.(*ast.RangeStmt)
		if !ok {
			return true
		}
		if !rangesOverMap(info, rs) {
			return true
		}
		ast.Inspect(rs.Body, func(inner ast.Node) bool {
			call, ok := inner.(*ast.CallExpr)
			if !ok {
				return true
			}
			id, ok := call.Fun.(*ast.Ident)
			if !ok || id.Name != "append" || len(call.Args) < 2 {
				return true
			}
			dest, ok := call.Args[0].(*ast.Ident)
			if !ok {
				return true
			}
			obj := info.Uses[dest]
			if obj == nil || !returned[obj.Pos()] {
				return true
			}
			if sortedInFunc(n, dest.Name) {
				return true
			}
			sites = append(sites, taintSite{
				Kind: "maporder",
				Desc: "map-iteration-ordered return of " + dest.Name,
				Pos:  call.Pos(),
			})
			return true
		})
		return true
	})
	return sites
}

func rangesOverMap(info *types.Info, rs *ast.RangeStmt) bool {
	tv, ok := info.Types[rs.X]
	if !ok {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// sortedInFunc reports whether the named slice is passed to a
// sort/slices sorting function anywhere in the function body.
func sortedInFunc(n *FuncNode, name string) bool {
	found := false
	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		if found {
			return false
		}
		call, ok := node.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		pkg, fn, ok := pkgFunc(n.Pkg.Info, call)
		if !ok || (pkg != "sort" && pkg != "slices") {
			return true
		}
		if !sortFuncNames[fn] {
			return true
		}
		if exprString(call.Args[0]) == name {
			found = true
			return false
		}
		return true
	})
	return found
}

var sortFuncNames = map[string]bool{
	"Sort": true, "SortFunc": true, "SortStableFunc": true, "Strings": true,
	"Ints": true, "Float64s": true, "Slice": true, "SliceStable": true, "Stable": true,
}

func runTaint(p *Pass) {
	st := p.Graph.taintState()
	for _, n := range p.Graph.sorted {
		if n.Pkg != p.Pkg {
			continue
		}
		// Shape 1: an artifact writer whose call path reads a source.
		if sinks := st.sinkSites[n]; len(sinks) > 0 {
			if _, tainted := st.srcDist[n]; tainted {
				names := chain(n, st.srcDist, st.srcNext)
				srcNode := chainEnd(n, st.srcDist, st.srcNext)
				src := st.srcSites[srcNode][0]
				pos := src.Pos
				if st.srcDist[n] > 0 {
					pos = st.srcNext[n].Pos
				}
				p.Reportf(pos,
					"%s emits an artifact via %s but its call path reads %s (%s at %s): %s",
					n.Name(), sinks[0].Desc, src.Desc, src.Kind,
					shortPos(p.Fset(), src.Pos), strings.Join(names, " → "))
			}
		}
		// Shape 2: a function that reads a source itself and calls into
		// an artifact writer. Distance 0 means the function is its own
		// writer; shape 1 already covers that.
		if srcs := st.srcSites[n]; len(srcs) > 0 {
			if d, reaches := st.sinkDist[n]; reaches && d > 0 {
				names := chain(n, st.sinkDist, st.sinkNext)
				sinkNode := chainEnd(n, st.sinkDist, st.sinkNext)
				sink := st.sinkSites[sinkNode][0]
				p.Reportf(srcs[0].Pos,
					"%s reads %s (%s) and reaches artifact writer %s (%s at %s): %s",
					n.Name(), srcs[0].Desc, srcs[0].Kind, sinkNode.Name(),
					sink.Desc, shortPos(p.Fset(), sink.Pos), strings.Join(names, " → "))
			}
		}
	}
}

// chainEnd follows next pointers from n to the chain's terminal node.
func chainEnd(n *FuncNode, dist map[*FuncNode]int, next map[*FuncNode]CallSite) *FuncNode {
	for dist[n] > 0 {
		cs, ok := next[n]
		if !ok {
			return n
		}
		n = cs.Callee
	}
	return n
}
