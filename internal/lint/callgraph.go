package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"path"
	"sort"
	"strings"
)

// This file builds a module-wide call graph on top of the per-package
// loads, giving the interprocedural checks (taint, gorleak, lockheld) a
// shared substrate. Resolution is deliberately simple and deterministic:
//
//   - Static calls — package functions and concrete methods — resolve to
//     exactly one callee.
//   - Interface method calls resolve class-hierarchy style: an edge to
//     the matching method of every module type that implements the
//     interface (stdlib implementations are invisible and out of scope).
//   - Calls through function values resolve to every module function or
//     method whose value is taken somewhere in the module and whose
//     signature is identical to the callee expression's type.
//   - Function literals are merged into the enclosing declared function:
//     their bodies' calls, sources, and sinks belong to the declaring
//     node. This keeps chains readable and handles the dominant idioms
//     (worker goroutines, sort.Slice comparators, scheduled callbacks)
//     at the cost of attributing a stored closure's effects to its
//     declaration site rather than its invocation site.
//
// Soundness caveats are documented in DESIGN.md; the graph over-
// approximates dynamic dispatch within the module and under-approximates
// calls that leave it (reflection, closures invoked by the stdlib).

// FuncNode is one declared function or method of the module.
type FuncNode struct {
	Fn   *types.Func
	ID   string // Fn.FullName(): unique and stable across runs
	Pkg  *Package
	Decl *ast.FuncDecl

	// Calls holds the outgoing edges in deterministic order: source
	// order for the call sites, target-ID order within a dynamic site.
	Calls []CallSite
}

// CallSite is one resolved outgoing edge.
type CallSite struct {
	Callee  *FuncNode
	Pos     token.Pos
	Dynamic bool // via interface dispatch or a function value
}

// Name renders the node compactly for diagnostics: "core.Median",
// "webserve.(*Server).Start". Package qualifiers use the import path's
// last element, which is unique in this module and keeps chains short.
func (n *FuncNode) Name() string {
	base := path.Base(n.Fn.Pkg().Path())
	sig := n.Fn.Type().(*types.Signature)
	if recv := sig.Recv(); recv != nil {
		rt := recv.Type()
		ptr := ""
		if p, ok := rt.(*types.Pointer); ok {
			rt = p.Elem()
			ptr = "*"
		}
		name := rt.String()
		if named, ok := rt.(*types.Named); ok {
			name = named.Obj().Name()
		}
		return base + ".(" + ptr + name + ")." + n.Fn.Name()
	}
	return base + "." + n.Fn.Name()
}

// Graph is the module-wide call graph plus lazily computed analysis
// state shared by the interprocedural checks.
type Graph struct {
	nodes  map[*types.Func]*FuncNode
	sorted []*FuncNode // by ID

	taint  *taintState // computed on first use by the taint check
	blocky *blockState // computed on first use by gorleak/lockheld
	allocs *allocState // computed on first use by the allocflow checks
	life   *lifeState  // computed on first use by the lifecycle checks
}

// Nodes returns every function node sorted by ID.
func (g *Graph) Nodes() []*FuncNode { return g.sorted }

// NodeOf returns the node for a declared module function, or nil.
func (g *Graph) NodeOf(fn *types.Func) *FuncNode {
	if fn == nil {
		return nil
	}
	return g.nodes[fn.Origin()]
}

// BuildGraph constructs the call graph over the loaded packages.
func BuildGraph(pkgs []*Package) *Graph {
	g := &Graph{nodes: make(map[*types.Func]*FuncNode)}

	// Pass 1: one node per declared function with a body.
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				g.nodes[obj] = &FuncNode{Fn: obj, ID: obj.FullName(), Pkg: pkg, Decl: fd}
			}
		}
	}
	g.sorted = make([]*FuncNode, 0, len(g.nodes))
	for _, n := range g.nodes {
		g.sorted = append(g.sorted, n)
	}
	sort.Slice(g.sorted, func(i, j int) bool { return g.sorted[i].ID < g.sorted[j].ID })

	concrete := moduleConcreteTypes(pkgs)
	taken := g.addressTakenFuncs(pkgs)

	// Pass 2: edges.
	for _, n := range g.sorted {
		info := n.Pkg.Info
		ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
			call, ok := node.(*ast.CallExpr)
			if !ok {
				return true
			}
			g.addCallEdges(n, info, call, concrete, taken)
			return true
		})
	}
	return g
}

// addCallEdges resolves one call expression and appends the edges.
func (g *Graph) addCallEdges(n *FuncNode, info *types.Info, call *ast.CallExpr, concrete []types.Type, taken []takenFunc) {
	fun := ast.Unparen(call.Fun)

	// Conversions and builtins are not calls.
	if tv, ok := info.Types[fun]; ok && tv.IsType() {
		return
	}
	switch f := fun.(type) {
	case *ast.Ident:
		switch obj := info.Uses[f].(type) {
		case *types.Builtin, nil:
			return
		case *types.Func:
			if callee := g.NodeOf(obj); callee != nil {
				n.Calls = append(n.Calls, CallSite{Callee: callee, Pos: call.Pos()})
			}
			return
		}
		// A variable or parameter of function type: dynamic.
		g.addDynamicEdges(n, info, fun, call.Pos(), taken)
		return
	case *ast.FuncLit:
		// Immediately invoked literal; its body is already merged into n.
		return
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[f]; ok && sel.Kind() == types.MethodVal {
			m, ok := sel.Obj().(*types.Func)
			if !ok {
				return
			}
			if iface, ok := sel.Recv().Underlying().(*types.Interface); ok {
				g.addInterfaceEdges(n, m.Name(), iface, call.Pos(), concrete)
				return
			}
			if callee := g.NodeOf(m); callee != nil {
				n.Calls = append(n.Calls, CallSite{Callee: callee, Pos: call.Pos()})
			}
			return
		}
		// pkg.Func, a struct field of function type, or a method
		// expression value.
		if obj, ok := info.Uses[f.Sel].(*types.Func); ok {
			if callee := g.NodeOf(obj); callee != nil {
				n.Calls = append(n.Calls, CallSite{Callee: callee, Pos: call.Pos()})
			}
			return
		}
		g.addDynamicEdges(n, info, fun, call.Pos(), taken)
		return
	default:
		// Call of an arbitrary expression of function type.
		g.addDynamicEdges(n, info, fun, call.Pos(), taken)
	}
}

// addInterfaceEdges links an interface method call to the matching
// method of every module type implementing the interface.
func (g *Graph) addInterfaceEdges(n *FuncNode, method string, iface *types.Interface, pos token.Pos, concrete []types.Type) {
	var targets []*FuncNode
	for _, t := range concrete {
		impl := types.Implements(t, iface) || types.Implements(types.NewPointer(t), iface)
		if !impl {
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(types.NewPointer(t), true, nil, method)
		m, ok := obj.(*types.Func)
		if !ok {
			continue
		}
		if callee := g.NodeOf(m); callee != nil {
			targets = append(targets, callee)
		}
	}
	appendTargets(n, targets, pos)
}

// takenFunc is a module function whose value escapes somewhere, with the
// signature a caller through a function value would see (methods lose
// their receiver).
type takenFunc struct {
	node *FuncNode
	sig  *types.Signature
}

// addDynamicEdges links a call through a function value to every
// address-taken module function with an identical signature.
func (g *Graph) addDynamicEdges(n *FuncNode, info *types.Info, fun ast.Expr, pos token.Pos, taken []takenFunc) {
	tv, ok := info.Types[fun]
	if !ok {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	var targets []*FuncNode
	for _, tf := range taken {
		if types.Identical(tf.sig, sig) {
			targets = append(targets, tf.node)
		}
	}
	appendTargets(n, targets, pos)
}

// appendTargets appends dynamic edges in deterministic target order.
func appendTargets(n *FuncNode, targets []*FuncNode, pos token.Pos) {
	sort.Slice(targets, func(i, j int) bool { return targets[i].ID < targets[j].ID })
	seen := map[*FuncNode]bool{}
	for _, t := range targets {
		if seen[t] {
			continue
		}
		seen[t] = true
		n.Calls = append(n.Calls, CallSite{Callee: t, Pos: pos, Dynamic: true})
	}
}

// moduleConcreteTypes collects every exported-or-not named non-interface
// type declared in the module, sorted by name for determinism.
func moduleConcreteTypes(pkgs []*Package) []types.Type {
	var out []types.Type
	var names []string
	for _, pkg := range pkgs { // pkgs are sorted by path
		scope := pkg.Types.Scope()
		scopeNames := scope.Names() // already sorted
		for _, name := range scopeNames {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			t := tn.Type()
			if _, isIface := t.Underlying().(*types.Interface); isIface {
				continue
			}
			out = append(out, t)
			names = append(names, pkg.Path+"."+name)
		}
	}
	sort.Sort(&typesByName{out, names})
	return out
}

type typesByName struct {
	ts    []types.Type
	names []string
}

func (s *typesByName) Len() int           { return len(s.ts) }
func (s *typesByName) Less(i, j int) bool { return s.names[i] < s.names[j] }
func (s *typesByName) Swap(i, j int) {
	s.ts[i], s.ts[j] = s.ts[j], s.ts[i]
	s.names[i], s.names[j] = s.names[j], s.names[i]
}

// addressTakenFuncs finds every module function or method whose value is
// used outside a direct call — assigned, passed, stored — and therefore
// reachable through a function-value call. Sorted by node ID.
func (g *Graph) addressTakenFuncs(pkgs []*Package) []takenFunc {
	takenSet := make(map[*FuncNode]*types.Signature)
	for _, pkg := range pkgs {
		info := pkg.Info
		for _, f := range pkg.Files {
			// Identifiers consumed as the callee of a call expression are
			// plain calls, not value uses.
			calleeIdents := make(map[*ast.Ident]bool)
			ast.Inspect(f, func(node ast.Node) bool {
				call, ok := node.(*ast.CallExpr)
				if !ok {
					return true
				}
				switch fun := ast.Unparen(call.Fun).(type) {
				case *ast.Ident:
					calleeIdents[fun] = true
				case *ast.SelectorExpr:
					calleeIdents[fun.Sel] = true
				}
				return true
			})
			ast.Inspect(f, func(node ast.Node) bool {
				id, ok := node.(*ast.Ident)
				if !ok || calleeIdents[id] {
					return true
				}
				fn, ok := info.Uses[id].(*types.Func)
				if !ok {
					return true
				}
				n := g.NodeOf(fn)
				if n == nil {
					return true
				}
				sig := fn.Type().(*types.Signature)
				if sig.Recv() != nil {
					// The value form of a method drops the receiver.
					sig = types.NewSignatureType(nil, nil, nil,
						sig.Params(), sig.Results(), sig.Variadic())
				}
				takenSet[n] = sig
				return true
			})
		}
	}
	out := make([]takenFunc, 0, len(takenSet))
	for n, sig := range takenSet {
		out = append(out, takenFunc{node: n, sig: sig})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].node.ID < out[j].node.ID })
	return out
}

// reachability computes, for every node, the length of the shortest call
// chain to any node satisfying direct, plus the first edge of one such
// chain. The result is a pure function of the graph: candidate edges are
// ranked by (distance, callee ID, position), so ties never depend on
// map iteration or scheduling.
func reachability(nodes []*FuncNode, direct func(*FuncNode) bool) (dist map[*FuncNode]int, next map[*FuncNode]CallSite) {
	dist = make(map[*FuncNode]int)
	next = make(map[*FuncNode]CallSite)
	for _, n := range nodes {
		if direct(n) {
			dist[n] = 0
		}
	}
	for changed := true; changed; {
		changed = false
		for _, n := range nodes {
			if direct(n) {
				continue
			}
			bestDist, bestSite, found := 0, CallSite{}, false
			for _, cs := range n.Calls {
				d, ok := dist[cs.Callee]
				if !ok {
					continue
				}
				cand := d + 1
				if !found || cand < bestDist ||
					(cand == bestDist && (cs.Callee.ID < bestSite.Callee.ID ||
						(cs.Callee.ID == bestSite.Callee.ID && cs.Pos < bestSite.Pos))) {
					bestDist, bestSite, found = cand, cs, true
				}
			}
			if !found {
				continue
			}
			if d, ok := dist[n]; !ok || bestDist != d || next[n] != bestSite {
				dist[n] = bestDist
				next[n] = bestSite
				changed = true
			}
		}
	}
	return dist, next
}

// chain renders the call path from n to the nearest node satisfying the
// reachability predicate, as "a → b → c".
func chain(n *FuncNode, dist map[*FuncNode]int, next map[*FuncNode]CallSite) []string {
	var names []string
	for {
		names = append(names, n.Name())
		if dist[n] == 0 {
			return names
		}
		cs, ok := next[n]
		if !ok {
			return names
		}
		n = cs.Callee
	}
}

// shortPos renders a position as "file.go:12" using only the base file
// name, so diagnostics are byte-identical across machines and checkouts.
func shortPos(fset *token.FileSet, pos token.Pos) string {
	p := fset.Position(pos)
	return path.Base(strings.ReplaceAll(p.Filename, "\\", "/")) + ":" + itoaSmall(p.Line)
}

func itoaSmall(n int) string {
	if n <= 0 {
		return "0"
	}
	var b [12]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
