package lint

import (
	"go/ast"
)

// The five lifecycle checks ride the shared lifeState (lifeflow.go):
// closeleak, bodyclose, cancelleak, and tickleak report resources the
// must-release dataflow proves can reach function exit unreleased;
// deferhot flags defers inside loops on //detlint:hotpath-reachable
// functions, ranked like the allocflow hot report.

// CloseleakCheck reports files, connections, listeners, and trace
// recorders that may escape their function unreleased.
var CloseleakCheck = &Check{
	Name: "closeleak",
	Doc: "closeleak reports os.Open/os.Create files, net.Dial/net.Listen " +
		"connections, and trace recorders that are not closed (or handed off) " +
		"on every path; a long-running service bleeds descriptors otherwise.",
	Run: runLifecycle("closeleak"),
}

// BodycloseCheck reports *http.Response bodies that may never be closed.
var BodycloseCheck = &Check{
	Name: "bodyclose",
	Doc: "bodyclose reports http response bodies that are not closed on " +
		"every path; an unclosed body pins its connection and defeats " +
		"keep-alive reuse, which is fatal for a measurement loop at scale.",
	Run: runLifecycle("bodyclose"),
}

// CancelleakCheck reports context cancel functions and profiling stop
// functions that may never be called.
var CancelleakCheck = &Check{
	Name: "cancelleak",
	Doc: "cancelleak reports context.WithCancel/WithTimeout/WithDeadline " +
		"cancel functions and profiling stop functions that are not called " +
		"on every path; each leaks a goroutine or an open profile until " +
		"process exit.",
	Run: runLifecycle("cancelleak"),
}

// TickleakCheck reports tickers and timers that may never be stopped.
var TickleakCheck = &Check{
	Name: "tickleak",
	Doc: "tickleak reports time.NewTicker/time.NewTimer values that are " +
		"not stopped (or, for timers, drained) on every path; an unstopped " +
		"ticker keeps its goroutine and channel alive forever.",
	Run: runLifecycle("tickleak"),
}

// DeferhotCheck reports defers inside loops on hot-path functions.
var DeferhotCheck = &Check{
	Name: "deferhot",
	Doc: "deferhot reports defer statements inside loops in functions " +
		"reachable from a //detlint:hotpath entry: the deferred calls pile " +
		"up until function return, so per-iteration resources are released " +
		"late (or never, for server loops). Hoist the defer or release " +
		"explicitly at the end of the iteration.",
	Run: runDeferhot,
}

// runLifecycle builds a Run function reporting the leaks one check owns.
func runLifecycle(check string) func(*Pass) {
	return func(p *Pass) {
		life := p.Graph.lifeState()
		hot := p.Graph.allocState()
		for _, n := range p.Graph.Nodes() {
			if n.Pkg != p.Pkg {
				continue
			}
			for _, r := range life.resources[n] {
				if r.spec.check != check {
					continue
				}
				var msg string
				switch {
				case r.immediate == "discarded":
					msg = r.spec.kind + " from " + r.src +
						" is discarded: the result is never bound, so it can never be released (want " +
						r.spec.release + ")"
				case r.leaked:
					name := r.name
					if name == "" {
						name = r.spec.kind
					}
					msg = r.spec.kind + " " + name + " from " + r.src +
						" may not be released on every path (want " + r.spec.release + ")"
				default:
					continue
				}
				if _, isHot := hot.hotDist[n]; isHot {
					msg += "; hot path: " + hot.hotChain(n)
				}
				p.Reportf(r.pos, "%s", msg)
			}
		}
	}
}

// runDeferhot walks hot functions looking for defers lexically inside a
// loop of their own (innermost) function body — a defer in a closure
// that is itself the loop body runs per iteration and is fine.
func runDeferhot(p *Pass) {
	st := p.Graph.allocState()
	for _, n := range p.Graph.Nodes() {
		if n.Pkg != p.Pkg {
			continue
		}
		if _, isHot := st.hotDist[n]; !isHot {
			continue
		}
		chain := st.hotChain(n)
		var walk func(node ast.Node, loopDepth int)
		walk = func(node ast.Node, loopDepth int) {
			switch s := node.(type) {
			case nil:
				return
			case *ast.FuncLit:
				walk(s.Body, 0) // fresh defer scope
				return
			case *ast.ForStmt:
				walk(s.Init, loopDepth)
				walk(s.Cond, loopDepth)
				walk(s.Post, loopDepth+1)
				walk(s.Body, loopDepth+1)
				return
			case *ast.RangeStmt:
				walk(s.X, loopDepth)
				walk(s.Body, loopDepth+1)
				return
			case *ast.DeferStmt:
				if loopDepth > 0 {
					p.Reportf(s.Pos(),
						"defer inside a loop on a hot path runs at function return, not per iteration; hoist it or release explicitly; hot path: %s",
						chain)
				}
				walk(s.Call, loopDepth)
				return
			}
			// Generic descent one level at a time so loopDepth is scoped.
			var kids []ast.Node
			ast.Inspect(node, func(c ast.Node) bool {
				if c == nil {
					return false
				}
				if c == node {
					return true
				}
				kids = append(kids, c)
				return false
			})
			for _, k := range kids {
				walk(k, loopDepth)
			}
		}
		walk(n.Decl.Body, 0)
	}
}
