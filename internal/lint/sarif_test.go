package lint

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func sampleDiags() []Diagnostic {
	return []Diagnostic{
		{Check: "walltime", File: "internal/core/study.go", Line: 12, Col: 7,
			Message: "time.Now is nondeterministic; thread a vclock.Clock instead"},
		{Check: "taint", File: "cmd/webmeasure/main.go", Line: 131, Col: 11,
			Message: "webmeasure.writeHARs reads time.Now (walltime at main.go:131): a → b"},
		{Check: "taint", File: "cmd/webmeasure/main.go", Line: 140, Col: 2,
			Message: "webmeasure.writeHARs reads time.Now (walltime at main.go:131): a → b"},
	}
}

// TestSARIFShape unmarshals the writer's output and asserts the SARIF
// 2.1.0 structure GitHub code scanning requires: version, schema, one
// run with a named driver, a rule per check, and results whose physical
// locations carry %SRCROOT%-based uris and 1-based regions.
func TestSARIFShape(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSARIF(&buf, Checks(), sampleDiags()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Schema  string `json:"$schema"`
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID               string `json:"id"`
						ShortDescription struct {
							Text string `json:"text"`
						} `json:"shortDescription"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID  string `json:"ruleId"`
				Level   string `json:"level"`
				Message struct {
					Text string `json:"text"`
				} `json:"message"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI       string `json:"uri"`
							URIBaseID string `json:"uriBaseId"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine   int `json:"startLine"`
							StartColumn int `json:"startColumn"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if doc.Version != "2.1.0" {
		t.Errorf("version = %q, want 2.1.0", doc.Version)
	}
	if !strings.Contains(doc.Schema, "sarif-2.1.0") {
		t.Errorf("$schema = %q does not reference sarif-2.1.0", doc.Schema)
	}
	if len(doc.Runs) != 1 {
		t.Fatalf("runs = %d, want 1", len(doc.Runs))
	}
	run := doc.Runs[0]
	if run.Tool.Driver.Name != "detlint" {
		t.Errorf("driver name = %q", run.Tool.Driver.Name)
	}
	if len(run.Tool.Driver.Rules) != len(Checks()) {
		t.Errorf("rules = %d, want one per check (%d)", len(run.Tool.Driver.Rules), len(Checks()))
	}
	for _, r := range run.Tool.Driver.Rules {
		if r.ID == "" || r.ShortDescription.Text == "" {
			t.Errorf("rule %+v missing id or shortDescription", r)
		}
	}
	if len(run.Results) != 3 {
		t.Fatalf("results = %d, want 3", len(run.Results))
	}
	res := run.Results[0]
	if res.RuleID != "walltime" || res.Level != "error" || res.Message.Text == "" {
		t.Errorf("result[0] = %+v", res)
	}
	loc := res.Locations[0].PhysicalLocation
	if loc.ArtifactLocation.URI != "internal/core/study.go" || loc.ArtifactLocation.URIBaseID != "%SRCROOT%" {
		t.Errorf("artifactLocation = %+v", loc.ArtifactLocation)
	}
	if loc.Region.StartLine != 12 || loc.Region.StartColumn != 7 {
		t.Errorf("region = %+v", loc.Region)
	}
}

// TestSARIFDeterministic asserts two renderings of the same findings are
// byte-identical — the document is diffable and cacheable in CI.
func TestSARIFDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := WriteSARIF(&a, Checks(), sampleDiags()); err != nil {
		t.Fatal(err)
	}
	if err := WriteSARIF(&b, Checks(), sampleDiags()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("SARIF output differs between identical runs")
	}
}
