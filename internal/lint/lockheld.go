package lint

import (
	"go/ast"
	"go/token"
)

// LockheldCheck flags mutexes held across operations that can park or
// deadlock the holder:
//
//   - a channel operation, select, or Wait performed directly inside the
//     held region — the goroutine parks while every other worker
//     contending for the lock parks behind it;
//   - a call whose callee (transitively, over the module call graph) may
//     block the same way;
//   - a call whose callee may acquire the same lock again — sync.Mutex
//     is not reentrant, so the path self-deadlocks.
//
// The held region is computed syntactically: from x.Lock() to the first
// statement containing x.Unlock() in the same block, or to the end of
// the block when the unlock is deferred. Function literals inside the
// region are skipped — they run later, not under the lock. Intentional
// hold-across-blocking patterns (a lazy-build cache that single-flights
// an expensive computation) are annotated //detlint:allow lockheld.
var LockheldCheck = &Check{
	Name: "lockheld",
	Doc:  "flag mutexes held across blocking operations or calls that may re-acquire the same lock",
	Run:  runLockheld,
}

func runLockheld(p *Pass) {
	st := p.Graph.blockState()
	for _, n := range p.Graph.sorted {
		if n.Pkg != p.Pkg {
			continue
		}
		checkHeldRegions(p, st, n)
	}
}

func checkHeldRegions(p *Pass, st *blockState, n *FuncNode) {
	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		block, ok := node.(*ast.BlockStmt)
		if !ok {
			return true
		}
		for i, stmt := range block.List {
			es, ok := stmt.(*ast.ExprStmt)
			if !ok {
				continue
			}
			site, ok := lockSiteOf(n, es)
			if !ok {
				continue
			}
			region := heldRegion(block.List[i+1:], site.exprStr)
			scanHeldRegion(p, st, n, site, region)
		}
		return true
	})
}

// lockSiteOf matches one statement against the x.Lock()/x.RLock() shape.
func lockSiteOf(n *FuncNode, es *ast.ExprStmt) (lockSite, bool) {
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return lockSite{}, false
	}
	recv, name, ok := methodCall(n.Pkg.Info, call)
	if !ok || (name != "Lock" && name != "RLock") {
		return lockSite{}, false
	}
	if !namedIn(recv, "sync", "Mutex", "RWMutex") {
		return lockSite{}, false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return lockSite{}, false
	}
	str := exprString(sel.X)
	if str == "" {
		return lockSite{}, false
	}
	return lockSite{
		stmt:    es,
		call:    call,
		exprStr: str,
		key:     lockIdentity(n, sel.X),
		rlock:   name == "RLock",
	}, true
}

// heldRegion returns the statements following the lock that execute with
// it held: up to (but excluding) the first statement containing the
// matching unlock, or the whole tail when the unlock is deferred (the
// lock is then held to function exit; the rest of the block is the
// visible approximation).
func heldRegion(tail []ast.Stmt, exprStr string) []ast.Stmt {
	for i, stmt := range tail {
		if ds, ok := stmt.(*ast.DeferStmt); ok && unlocksSame(ds, exprStr) {
			return append(tail[:i:i], tail[i+1:]...)
		}
		if unlocksSame(stmt, exprStr) {
			return tail[:i]
		}
	}
	return tail
}

// scanHeldRegion reports blocking operations and same-lock re-entry
// hazards inside one held region.
func scanHeldRegion(p *Pass, st *blockState, n *FuncNode, site lockSite, region []ast.Stmt) {
	if len(region) == 0 {
		return
	}
	info := n.Pkg.Info
	lo, hi := region[0].Pos(), region[len(region)-1].End()

	// Function-literal subtrees run outside the held region.
	var litSpans []posSpan
	for _, stmt := range region {
		ast.Inspect(stmt, func(node ast.Node) bool {
			if lit, ok := node.(*ast.FuncLit); ok {
				litSpans = append(litSpans, posSpan{lit.Pos(), lit.End()})
				return false
			}
			return true
		})
	}

	for _, stmt := range region {
		ast.Inspect(stmt, func(node ast.Node) bool {
			if node == nil || inAnySpan(litSpans, node.Pos()) {
				return false
			}
			switch node := node.(type) {
			case *ast.SendStmt:
				p.Reportf(node.Pos(), "channel send while holding %s parks the goroutine with the lock held; move the send outside the critical section", site.exprStr)
			case *ast.SelectStmt:
				p.Reportf(node.Pos(), "select while holding %s can park the goroutine with the lock held; move it outside the critical section", site.exprStr)
			case *ast.UnaryExpr:
				if node.Op == token.ARROW {
					p.Reportf(node.Pos(), "channel receive while holding %s parks the goroutine with the lock held; move the receive outside the critical section", site.exprStr)
				}
			case *ast.CallExpr:
				if _, name, ok := methodCall(info, node); ok && name == "Wait" {
					p.Reportf(node.Pos(), "Wait while holding %s parks the goroutine with the lock held; unlock first", site.exprStr)
				}
			}
			return true
		})
	}

	// Calls out of the region, via the graph: re-entry and transitive
	// blocking. n.Calls is in source order, so reports are deterministic.
	reported := map[token.Pos]bool{}
	for _, cs := range n.Calls {
		if cs.Pos < lo || cs.Pos > hi || inAnySpan(litSpans, cs.Pos) || reported[cs.Pos] {
			continue
		}
		if site.key != "" && st.acquires[cs.Callee][site.key] && !site.rlock {
			reported[cs.Pos] = true
			p.Reportf(cs.Pos,
				"call to %s while holding %s may re-acquire the same lock (%s); sync.Mutex is not reentrant — this path self-deadlocks", cs.Callee.Name(), site.exprStr, site.key)
			continue
		}
		if st.mayBlock[cs.Callee] {
			reported[cs.Pos] = true
			p.Reportf(cs.Pos,
				"call to %s while holding %s may block on a channel or Wait, stalling every goroutine contending for the lock; shrink the critical section", cs.Callee.Name(), site.exprStr)
		}
	}
}
