package lint

import (
	"encoding/json"
	"io"
)

// SARIF rendering for GitHub code scanning. The document targets the
// SARIF 2.1.0 schema with the minimal shape code scanning ingests: one
// run, one tool driver carrying a rule per check, and one result per
// diagnostic with a physical location whose uri is module-root-relative
// under the %SRCROOT% base. Struct field order (and therefore output
// byte order) is fixed here, and diagnostics arrive pre-sorted from Run,
// so identical findings marshal to identical bytes.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

// WriteSARIF renders the diagnostics as a SARIF 2.1.0 document. checks
// is the suite that ran: every check contributes a rule even when it
// found nothing, so code scanning can tell "rule passed" from "rule not
// configured". Diagnostic file paths should already be module-relative
// (the driver relativizes before rendering).
func WriteSARIF(w io.Writer, checks []*Check, diags []Diagnostic) error {
	rules := make([]sarifRule, len(checks))
	for i, c := range checks {
		rules[i] = sarifRule{ID: c.Name, ShortDescription: sarifMessage{Text: c.Doc}}
	}
	results := make([]sarifResult, len(diags))
	for i, d := range diags {
		results[i] = sarifResult{
			RuleID:  d.Check,
			Level:   "error",
			Message: sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{
						URI:       d.File,
						URIBaseID: "%SRCROOT%",
					},
					Region: sarifRegion{StartLine: d.Line, StartColumn: d.Col},
				},
			}},
		}
	}
	doc := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool: sarifTool{Driver: sarifDriver{
				Name:  "detlint",
				Rules: rules,
			}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
