package lint

import (
	"go/ast"
	"go/types"
)

// MutexcopyCheck flags by-value copies of types that contain sync
// primitives (sync.Mutex, sync.RWMutex, sync.WaitGroup, sync.Once,
// sync.Cond, sync.Map, sync.Pool). A copied lock guards nothing: two
// goroutines each lock their own copy and race on the shared state the
// original protected. Detected shapes:
//
//   - methods declared with a by-value receiver of a lock-holding type
//   - assignments whose right-hand side copies a lock-holding value
//     (x := *p, x = y, x := s[i]) — composite literals and call results
//     construct fresh values and pass
//   - call arguments that pass a lock-holding value by value
//   - range clauses whose value variable copies lock-holding elements
//
// go vet's copylocks covers similar ground; this check keeps the rule in
// the same gate and diagnostic format as the rest of the determinism
// contract.
var MutexcopyCheck = &Check{
	Name: "mutexcopy",
	Doc:  "flag by-value copies of types containing sync.Mutex/WaitGroup and friends",
	Run:  runMutexcopy,
}

var syncLockTypes = []string{"Mutex", "RWMutex", "WaitGroup", "Once", "Cond", "Map", "Pool"}

// holdsLock reports whether t directly is, or transitively contains (by
// struct field or array element), a sync primitive. seen guards against
// recursive types.
func holdsLock(t types.Type, seen map[types.Type]bool) bool {
	if seen[t] {
		return false
	}
	seen[t] = true
	if namedIn(t, "sync", syncLockTypes...) {
		return true
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if holdsLock(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return holdsLock(u.Elem(), seen)
	}
	return false
}

func lockType(t types.Type) bool {
	if t == nil {
		return false
	}
	if _, isPtr := t.(*types.Pointer); isPtr {
		return false
	}
	return holdsLock(t, make(map[types.Type]bool))
}

// copiesValue reports whether evaluating e yields a copy of an existing
// value rather than a freshly constructed one. Composite literals, calls
// (constructors), and address-taking produce new values or pointers.
func copiesValue(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		return true
	case *ast.ParenExpr:
		return copiesValue(e.X)
	}
	return false
}

func runMutexcopy(p *Pass) {
	info := p.Pkg.Info
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Recv == nil || len(n.Recv.List) == 0 {
					return true
				}
				rt := info.Types[n.Recv.List[0].Type].Type
				if lockType(rt) {
					p.Reportf(n.Recv.Pos(),
						"method %s has a by-value receiver of %s, which copies its sync primitive on every call; use a pointer receiver", n.Name.Name, rt)
				}
			case *ast.AssignStmt:
				for i, rhs := range n.Rhs {
					if i >= len(n.Lhs) {
						break
					}
					// Assigning to the blank identifier discards the value;
					// nothing retains the broken copy.
					if id, ok := n.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
						continue
					}
					if !copiesValue(rhs) {
						continue
					}
					tv, ok := info.Types[rhs]
					if ok && lockType(tv.Type) {
						p.Reportf(rhs.Pos(),
							"assignment copies a value of %s, which holds a sync primitive; keep a pointer instead", tv.Type)
					}
				}
			case *ast.CallExpr:
				for _, arg := range n.Args {
					if !copiesValue(arg) {
						continue
					}
					tv, ok := info.Types[arg]
					if ok && lockType(tv.Type) {
						p.Reportf(arg.Pos(),
							"call passes a value of %s by value, copying its sync primitive; pass a pointer", tv.Type)
					}
				}
			case *ast.RangeStmt:
				if n.Value == nil {
					return true
				}
				var vt types.Type
				if id, ok := n.Value.(*ast.Ident); ok {
					if obj := info.Defs[id]; obj != nil {
						vt = obj.Type()
					}
				}
				if vt == nil {
					if tv, ok := info.Types[n.Value]; ok {
						vt = tv.Type
					}
				}
				if lockType(vt) {
					p.Reportf(n.Value.Pos(),
						"range copies elements of %s, which hold a sync primitive; range over indices or pointers", vt)
				}
			}
			return true
		})
	}
}
