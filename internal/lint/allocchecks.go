package lint

// The three allocflow-driven checks. All of them intersect the
// per-function allocation sites with hot-path reachability from
// //detlint:hotpath entry points, so a package with no hot entries in
// its reachable call graph produces no findings — the checks are about
// churn where it costs, not allocation in general.
//
//   - allocloop: an allocation that escapes its frame, sitting inside a
//     loop (or in a function only reached from inside a hot caller's
//     loop). Each iteration pays a fresh heap object.
//   - boxing: a concrete value boxed into an interface parameter on a
//     hot path. The conversion allocates; pointer-shaped values and
//     small constants don't and are not flagged.
//   - retain: append/map growth whose target outlives the enclosing
//     loop and escapes — the container accumulates across iterations,
//     so growth reallocation churn compounds with input size.
//
// Suppression: //detlint:allow allocloop|boxing|retain, as usual.

// AllocloopCheck flags escaping allocations in hot loops.
var AllocloopCheck = &Check{
	Name: "allocloop",
	Doc:  "flag escaping allocations inside loops on hot paths (reachable from //detlint:hotpath entry points)",
	Run:  runAllocloop,
}

// BoxingCheck flags avoidable interface boxing on hot paths.
var BoxingCheck = &Check{
	Name: "boxing",
	Doc:  "flag concrete values boxed into interface arguments on hot paths; pointer-shaped values and small constants are exempt",
	Run:  runBoxing,
}

// RetainCheck flags growth retained across hot loop iterations.
var RetainCheck = &Check{
	Name: "retain",
	Doc:  "flag append/map growth whose escaping target outlives the enclosing loop on a hot path",
	Run:  runRetain,
}

func runAllocloop(p *Pass) {
	forHotSites(p, func(st *allocState, n *FuncNode, s AllocSite) {
		switch s.Kind {
		case AllocBox:
			return // boxing's territory
		case AllocAppend, AllocMapWrite:
			if s.Retained {
				return // retain's territory
			}
		}
		if s.Escape < EscCaptured {
			return // frame-local or plain argument: cheap or unprovable
		}
		if !s.InLoop && !st.hotLoop[n] {
			return
		}
		p.Reportf(s.Pos, "%s escapes (%s) in a hot loop; hot path: %s",
			s.Desc, s.Escape, st.hotChain(n))
	})
}

func runBoxing(p *Pass) {
	forHotSites(p, func(st *allocState, n *FuncNode, s AllocSite) {
		if s.Kind != AllocBox {
			return
		}
		if !s.InLoop && !st.hotLoop[n] {
			return
		}
		p.Reportf(s.Pos, "%s allocates in a hot loop; hot path: %s",
			s.Desc, st.hotChain(n))
	})
}

func runRetain(p *Pass) {
	forHotSites(p, func(st *allocState, n *FuncNode, s AllocSite) {
		if !s.Retained {
			return
		}
		p.Reportf(s.Pos, "%s retained across loop iterations (target escapes: %s); hot path: %s",
			s.Desc, s.Escape, st.hotChain(n))
	})
}

// forHotSites invokes fn for every allocation site in a hot-reachable
// function of the pass's package, in graph order.
func forHotSites(p *Pass, fn func(*allocState, *FuncNode, AllocSite)) {
	st := p.Graph.allocState()
	for _, n := range p.Graph.sorted {
		if n.Pkg != p.Pkg {
			continue
		}
		if _, hot := st.hotDist[n]; !hot {
			continue
		}
		for _, s := range st.sites[n] {
			fn(st, n, s)
		}
	}
}
