// Package lint is detlint's analysis engine: a stdlib-only static
// analyzer that enforces the repository's determinism and concurrency
// invariants. Every result this repro publishes — the landing-vs-internal
// gaps of the paper and the warm-cache deltas — rests on the contract
// that seeded runs are byte-identical, worker-count invariant, and driven
// by virtual time. The checks in this package turn that contract into
// machine-checked rules:
//
//   - walltime:   no time.Now/Since/Sleep/After outside internal/vclock
//   - globalrand: no process-global math/rand state; RNGs are threaded
//   - maporder:   no map-iteration-ordered output (CSV, HAR, reports)
//   - envread:    no os.Getenv in internal/ — configuration is explicit
//   - errdrop:    no silently dropped Write/Close/Flush errors in writers
//   - mutexcopy:  no by-value copies of types holding sync primitives
//
// Deliberate exceptions are annotated in-source with
//
//	//detlint:allow <check>[,<check>...] -- <one-line justification>
//
// placed on the offending line, on the line directly above it, or in the
// file's package doc block to silence a check for the whole file.
//
// The engine is built purely on go/ast, go/parser, go/token, and
// go/types, so it adds no dependencies; cmd/detlint is the driver.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Diagnostic is one finding: a position, the check that fired, and a
// human-readable message. The driver renders it as
// "file:line:col: [check] message".
type Diagnostic struct {
	Check   string         `json:"check"`
	Pos     token.Position `json:"-"`
	File    string         `json:"file"`
	Line    int            `json:"line"`
	Col     int            `json:"col"`
	Message string         `json:"message"`
}

// String renders the diagnostic in the canonical file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.File, d.Line, d.Col, d.Check, d.Message)
}

// Check is one analyzer: a name (used in diagnostics and allow
// directives), a one-line doc string, and a Run function invoked once
// per package.
type Check struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Pass carries everything one check needs to analyze one package and
// report findings. Reportf applies the allow-directive filter, so checks
// never see suppression logic. Interprocedural checks additionally use
// Graph (the module-wide call graph) and Ran (the names of every check
// in this invocation, which staleallow needs to judge directives
// fairly).
type Pass struct {
	Check *Check
	Pkg   *Package
	Graph *Graph
	Ran   []string

	diags *[]Diagnostic
}

// Fset returns the file set shared by every package in the load.
func (p *Pass) Fset() *token.FileSet { return p.Pkg.Fset }

// Reportf records a diagnostic at pos unless an allow directive
// suppresses it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	position := p.Pkg.Fset.Position(pos)
	if p.Pkg.allowed(p.Check.Name, position) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Check:   p.Check.Name,
		Pos:     position,
		File:    position.Filename,
		Line:    position.Line,
		Col:     position.Column,
		Message: fmt.Sprintf(format, args...),
	})
}

// Checks returns the full analyzer suite in stable order. The
// syntactic checks come first, then the interprocedural ones;
// staleallow is last because it judges the suppression usage the
// other checks record as they run.
func Checks() []*Check {
	return []*Check{
		WalltimeCheck,
		GlobalrandCheck,
		MaporderCheck,
		EnvreadCheck,
		ErrdropCheck,
		MutexcopyCheck,
		TaintCheck,
		GorleakCheck,
		LockheldCheck,
		AllocloopCheck,
		BoxingCheck,
		RetainCheck,
		CloseleakCheck,
		BodycloseCheck,
		CancelleakCheck,
		TickleakCheck,
		DeferhotCheck,
		StaleallowCheck,
	}
}

// CheckByName returns the named check, or nil.
func CheckByName(name string) *Check {
	for _, c := range Checks() {
		if c.Name == name {
			return c
		}
	}
	return nil
}

// Run executes the given checks over the given packages and returns the
// combined diagnostics sorted by file, line, column, and check name.
// The module call graph is built once and shared by every
// interprocedural check; the whole pipeline is single-threaded and
// iterates in sorted order, so identical inputs produce byte-identical
// diagnostics regardless of GOMAXPROCS.
func Run(pkgs []*Package, checks []*Check) []Diagnostic {
	graph := BuildGraph(pkgs)
	ran := make([]string, len(checks))
	for i, c := range checks {
		ran[i] = c.Name
	}
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, c := range checks {
			pass := &Pass{Check: c, Pkg: pkg, Graph: graph, Ran: ran, diags: &diags}
			c.Run(pass)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Check < b.Check
	})
	return diags
}

// allowDirective is one parsed //detlint:allow comment. used records
// whether the directive suppressed at least one finding this run —
// the staleallow check reports directives whose usage never registers.
type allowDirective struct {
	file      string
	line      int       // line the directive sits on
	pos       token.Pos // for reporting staleness at the directive
	fileLevel bool      // directive in the package doc block: whole-file scope
	checks    map[string]bool
	used      bool
}

// parseAllows extracts //detlint:allow directives from a parsed file.
// A directive in the file's doc block (any comment that ends before the
// package keyword) applies to the whole file; any other directive applies
// to its own line and the line directly below it.
func parseAllows(fset *token.FileSet, f *ast.File) []*allowDirective {
	var out []*allowDirective
	pkgLine := fset.Position(f.Package).Line
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimSpace(text)
			if !strings.HasPrefix(text, "detlint:allow") {
				continue
			}
			rest := strings.TrimSpace(strings.TrimPrefix(text, "detlint:allow"))
			// Strip the justification: everything after " -- " or the
			// first space-separated field is the check list.
			if i := strings.Index(rest, "--"); i >= 0 {
				rest = strings.TrimSpace(rest[:i])
			}
			fields := strings.Fields(rest)
			if len(fields) == 0 {
				continue
			}
			checks := make(map[string]bool)
			for _, name := range strings.Split(fields[0], ",") {
				if name = strings.TrimSpace(name); name != "" {
					checks[name] = true
				}
			}
			pos := fset.Position(c.Pos())
			out = append(out, &allowDirective{
				file:      pos.Filename,
				line:      pos.Line,
				pos:       c.Pos(),
				fileLevel: pos.Line < pkgLine,
				checks:    checks,
			})
		}
	}
	return out
}

// allowed reports whether a diagnostic from check at position is
// suppressed by a directive in the package, marking the directive used
// so staleallow can tell live suppressions from rot.
func (p *Package) allowed(check string, pos token.Position) bool {
	for _, d := range p.allows {
		if d.file != pos.Filename || !d.checks[check] {
			continue
		}
		if d.fileLevel || d.line == pos.Line || d.line == pos.Line-1 {
			d.used = true
			return true
		}
	}
	return false
}
