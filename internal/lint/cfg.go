package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// This file builds an intraprocedural control-flow graph over go/ast —
// the substrate for the must-release dataflow in lifeflow.go. The graph
// is deliberately statement-granular: each basic block holds the shallow
// statements (and branch conditions) executed in order, and compound
// statements contribute only their non-body components (an if's
// condition, a range's operand, a select case's comm statement) so a
// client walking a block never re-enters a nested body.
//
// Three synthetic blocks bracket every function:
//
//   - Entry: the function's first block.
//   - Exit:  normal termination — every return and the fall-off-the-end
//     path lead here. Deferred calls run on the way.
//   - Halt:  abnormal termination — panic, runtime.Goexit, os.Exit,
//     log.Fatal*, and calls to module functions whose own CFG proves
//     they never return. Deferred calls still run on panic/Goexit, and
//     os.Exit ends the process outright, so resource-lifecycle clients
//     do not treat reaching Halt as a leak.
//
// Two-way branches record their condition: Succs[0] is the true edge and
// Succs[1] the false edge, which lets the dataflow kill resources whose
// paired error variable is known non-nil on an edge (the `v, err :=
// acquire(); if err != nil { return err }` idiom leaves v nil on the
// error path).

// CFGBlock is one basic block.
type CFGBlock struct {
	Index int
	Kind  string
	Nodes []ast.Node
	Succs []*CFGBlock
	// Cond is set on blocks ending in a two-way branch: Succs[0] is
	// taken when Cond is true, Succs[1] when it is false.
	Cond ast.Expr
}

// CFG is one function's control-flow graph. Entry is Blocks[0], Exit
// Blocks[1], Halt Blocks[2]; body blocks follow in construction order.
type CFG struct {
	Blocks []*CFGBlock
	Entry  *CFGBlock
	Exit   *CFGBlock
	Halt   *CFGBlock
}

// String renders the graph one block per line — "b3 for.head -> b4 b5
// [i < n]" — for golden tests and debugging.
func (c *CFG) String() string {
	var sb strings.Builder
	for _, b := range c.Blocks {
		sb.WriteString("b")
		sb.WriteString(strconv.Itoa(b.Index))
		sb.WriteString(" ")
		sb.WriteString(b.Kind)
		if len(b.Succs) > 0 {
			sb.WriteString(" ->")
			for _, s := range b.Succs {
				sb.WriteString(" b")
				sb.WriteString(strconv.Itoa(s.Index))
			}
		}
		if b.Cond != nil {
			sb.WriteString(" [")
			sb.WriteString(types.ExprString(b.Cond))
			sb.WriteString("]")
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// cfgBuilder holds the in-progress graph. cur is nil after a jump: the
// next statement (if any) starts a fresh, possibly unreachable block.
type cfgBuilder struct {
	c    *CFG
	info *types.Info          // nil in pure-syntax tests
	term map[*types.Func]bool // module functions proven never to return
	cur  *CFGBlock
	tgts []*branchTargets     // innermost last
	lbls map[string]*CFGBlock // goto/label targets, pre-created
	lbl  string               // pending label for the next breakable stmt
}

// branchTargets records where break/continue jump for one enclosing
// for/range/switch/select statement.
type branchTargets struct {
	label    string
	brk      *CFGBlock
	cont     *CFGBlock // nil for switch/select
	isLoop   bool
	fallThru *CFGBlock // next case clause body, set while visiting a clause
}

// BuildCFG constructs the control-flow graph of one function body. info
// and term may be nil; they sharpen the detection of terminating calls
// (os.Exit, log.Fatal, module no-return helpers) beyond the syntactic
// fallback.
func BuildCFG(body *ast.BlockStmt, info *types.Info, term map[*types.Func]bool) *CFG {
	b := &cfgBuilder{
		c:    &CFG{},
		info: info,
		term: term,
		lbls: make(map[string]*CFGBlock),
	}
	b.c.Entry = b.newBlock("entry")
	b.c.Exit = b.newBlock("exit")
	b.c.Halt = b.newBlock("halt")
	// Pre-create one block per label so forward gotos have a target.
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if ls, ok := n.(*ast.LabeledStmt); ok {
			b.lbls[ls.Label.Name] = b.newBlock("label." + ls.Label.Name)
		}
		return true
	})
	b.cur = b.c.Entry
	b.stmtList(body.List)
	b.edge(b.cur, b.c.Exit)
	return b.c
}

func (b *cfgBuilder) newBlock(kind string) *CFGBlock {
	blk := &CFGBlock{Index: len(b.c.Blocks), Kind: kind}
	b.c.Blocks = append(b.c.Blocks, blk)
	return blk
}

// edge links from → to; a nil from (sealed path) is a no-op.
func (b *cfgBuilder) edge(from, to *CFGBlock) {
	if from == nil || to == nil {
		return
	}
	from.Succs = append(from.Succs, to)
}

// add appends a shallow node to the current block, opening a fresh
// (unreachable) block if the path was sealed — unreachable code still
// needs a home so gotos into it resolve.
func (b *cfgBuilder) add(n ast.Node) {
	if b.cur == nil {
		b.cur = b.newBlock("dead")
	}
	b.cur.Nodes = append(b.cur.Nodes, n)
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	// A pending label applies only to the statement that directly
	// follows it.
	label := b.lbl
	b.lbl = ""
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)
	case *ast.LabeledStmt:
		lb := b.lbls[s.Label.Name]
		b.edge(b.cur, lb)
		b.cur = lb
		b.lbl = s.Label.Name
		b.stmt(s.Stmt)
		b.lbl = ""
	case *ast.ReturnStmt:
		b.add(s)
		b.edge(b.cur, b.c.Exit)
		b.cur = nil
	case *ast.BranchStmt:
		b.branch(s)
	case *ast.IfStmt:
		b.ifStmt(s)
	case *ast.ForStmt:
		b.forStmt(s, label)
	case *ast.RangeStmt:
		b.rangeStmt(s, label)
	case *ast.SwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.switchBody(s.Body, label)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s.Assign)
		b.switchBody(s.Body, label)
	case *ast.SelectStmt:
		b.selectStmt(s, label)
	case *ast.DeferStmt, *ast.GoStmt, *ast.AssignStmt, *ast.DeclStmt,
		*ast.SendStmt, *ast.IncDecStmt:
		b.add(s)
	case *ast.ExprStmt:
		b.add(s)
		if call, ok := s.X.(*ast.CallExpr); ok && b.terminates(call) {
			b.edge(b.cur, b.c.Halt)
			b.cur = nil
		}
	case *ast.EmptyStmt:
		// nothing
	default:
		b.add(s)
	}
}

// branch resolves break/continue/goto/fallthrough.
func (b *cfgBuilder) branch(s *ast.BranchStmt) {
	name := ""
	if s.Label != nil {
		name = s.Label.Name
	}
	switch s.Tok {
	case token.GOTO:
		b.edge(b.cur, b.lbls[name])
		b.cur = nil
	case token.BREAK:
		for i := len(b.tgts) - 1; i >= 0; i-- {
			t := b.tgts[i]
			if name == "" || t.label == name {
				b.edge(b.cur, t.brk)
				break
			}
		}
		b.cur = nil
	case token.CONTINUE:
		for i := len(b.tgts) - 1; i >= 0; i-- {
			t := b.tgts[i]
			if t.isLoop && (name == "" || t.label == name) {
				b.edge(b.cur, t.cont)
				break
			}
		}
		b.cur = nil
	case token.FALLTHROUGH:
		for i := len(b.tgts) - 1; i >= 0; i-- {
			if t := b.tgts[i]; t.fallThru != nil {
				b.edge(b.cur, t.fallThru)
				break
			}
		}
		b.cur = nil
	}
}

func (b *cfgBuilder) ifStmt(s *ast.IfStmt) {
	if s.Init != nil {
		b.stmt(s.Init)
	}
	b.add(s.Cond)
	head := b.cur
	then := b.newBlock("if.then")
	b.edge(head, then)
	b.cur = then
	b.stmtList(s.Body.List)
	thenOut := b.cur

	var elseOut *CFGBlock
	if s.Else != nil {
		els := b.newBlock("if.else")
		b.edge(head, els)
		if head != nil {
			head.Cond = s.Cond
		}
		b.cur = els
		b.stmt(s.Else)
		elseOut = b.cur
	} else {
		// The false edge of the condition flows around the body.
		elseOut = head
		if head != nil {
			head.Cond = s.Cond
		}
	}
	if thenOut == nil && elseOut == nil {
		b.cur = nil
		return
	}
	join := b.newBlock("if.done")
	b.edge(thenOut, join)
	b.edge(elseOut, join)
	b.cur = join
}

func (b *cfgBuilder) forStmt(s *ast.ForStmt, label string) {
	if s.Init != nil {
		b.stmt(s.Init)
	}
	head := b.newBlock("for.head")
	b.edge(b.cur, head)
	done := b.newBlock("for.done")
	body := b.newBlock("for.body")

	// continue targets the post statement when there is one.
	cont := head
	var post *CFGBlock
	if s.Post != nil {
		post = b.newBlock("for.post")
		cont = post
	}

	b.cur = head
	if s.Cond != nil {
		b.add(s.Cond)
		head.Cond = s.Cond
		b.edge(head, body)
		b.edge(head, done)
	} else {
		b.edge(head, body)
	}

	b.tgts = append(b.tgts, &branchTargets{label: label, brk: done, cont: cont, isLoop: true})
	b.cur = body
	b.stmtList(s.Body.List)
	b.tgts = b.tgts[:len(b.tgts)-1]

	if post != nil {
		b.edge(b.cur, post)
		b.cur = post
		b.stmt(s.Post)
		b.edge(b.cur, head)
	} else {
		b.edge(b.cur, head)
	}
	// A condition-less loop with no break leaves done unreachable —
	// clients see reachability, not block count, so it stays.
	b.cur = done
}

func (b *cfgBuilder) rangeStmt(s *ast.RangeStmt, label string) {
	b.add(s.X)
	head := b.newBlock("range.head")
	b.edge(b.cur, head)
	done := b.newBlock("range.done")
	body := b.newBlock("range.body")
	b.edge(head, body)
	b.edge(head, done)

	b.tgts = append(b.tgts, &branchTargets{label: label, brk: done, cont: head, isLoop: true})
	b.cur = body
	b.stmtList(s.Body.List)
	b.tgts = b.tgts[:len(b.tgts)-1]
	b.edge(b.cur, head)
	b.cur = done
}

// switchBody wires the shared clause structure of switch and type
// switch: every clause starts from the head block, a missing default
// adds a direct head → done edge, and fallthrough jumps to the next
// clause's body.
func (b *cfgBuilder) switchBody(body *ast.BlockStmt, label string) {
	head := b.cur
	if head == nil {
		head = b.newBlock("dead")
		b.cur = head
	}
	done := b.newBlock("switch.done")
	b.tgts = append(b.tgts, &branchTargets{label: label, brk: done})
	t := b.tgts[len(b.tgts)-1]

	var clauses []*ast.CaseClause
	for _, cs := range body.List {
		if cc, ok := cs.(*ast.CaseClause); ok {
			clauses = append(clauses, cc)
		}
	}
	blocks := make([]*CFGBlock, len(clauses))
	hasDefault := false
	for i, cc := range clauses {
		kind := "switch.case"
		if cc.List == nil {
			kind = "switch.default"
			hasDefault = true
		}
		blocks[i] = b.newBlock(kind)
		b.edge(head, blocks[i])
	}
	if !hasDefault {
		b.edge(head, done)
	}
	for i, cc := range clauses {
		t.fallThru = nil
		if i+1 < len(blocks) {
			t.fallThru = blocks[i+1]
		}
		b.cur = blocks[i]
		for _, e := range cc.List {
			b.add(e)
		}
		b.stmtList(cc.Body)
		b.edge(b.cur, done)
	}
	b.tgts = b.tgts[:len(b.tgts)-1]
	b.cur = done
}

func (b *cfgBuilder) selectStmt(s *ast.SelectStmt, label string) {
	head := b.cur
	if head == nil {
		head = b.newBlock("dead")
		b.cur = head
	}
	done := b.newBlock("select.done")
	b.tgts = append(b.tgts, &branchTargets{label: label, brk: done})
	for _, cs := range s.Body.List {
		cc, ok := cs.(*ast.CommClause)
		if !ok {
			continue
		}
		kind := "select.case"
		if cc.Comm == nil {
			kind = "select.default"
		}
		blk := b.newBlock(kind)
		b.edge(head, blk)
		b.cur = blk
		if cc.Comm != nil {
			b.add(cc.Comm)
		}
		b.stmtList(cc.Body)
		b.edge(b.cur, done)
	}
	b.tgts = b.tgts[:len(b.tgts)-1]
	b.cur = done
}

// terminates reports whether a call never returns: the panic builtin,
// runtime.Goexit, os.Exit, log.Fatal*, testing's Fatal/FailNow/Skip
// family, or a module function whose own CFG proves no-return. With nil
// type info it falls back to matching the source spelling.
func (b *cfgBuilder) terminates(call *ast.CallExpr) bool {
	fun := ast.Unparen(call.Fun)
	if b.info == nil {
		switch f := fun.(type) {
		case *ast.Ident:
			return f.Name == "panic"
		case *ast.SelectorExpr:
			if x, ok := f.X.(*ast.Ident); ok {
				switch x.Name + "." + f.Sel.Name {
				case "os.Exit", "runtime.Goexit", "log.Fatal", "log.Fatalf", "log.Fatalln":
					return true
				}
			}
		}
		return false
	}
	if builtinName(b.info, fun) == "panic" {
		return true
	}
	if pkg, name, ok := pkgFunc(b.info, call); ok {
		switch {
		case pkg == "os" && name == "Exit",
			pkg == "runtime" && name == "Goexit",
			pkg == "log" && (name == "Fatal" || name == "Fatalf" || name == "Fatalln"):
			return true
		}
	}
	if recv, name, ok := methodCall(b.info, call); ok {
		if namedIn(recv, "testing", "T", "B", "F") {
			switch name {
			case "Fatal", "Fatalf", "FailNow", "SkipNow", "Skip", "Skipf":
				return true
			}
		}
	}
	// Module no-return helpers (e.g. a main package's fatal()).
	if b.term != nil {
		if id, ok := fun.(*ast.Ident); ok {
			if f, ok := b.info.Uses[id].(*types.Func); ok && b.term[f.Origin()] {
				return true
			}
		}
		if sel, ok := fun.(*ast.SelectorExpr); ok {
			if f, ok := b.info.Uses[sel.Sel].(*types.Func); ok && b.term[f.Origin()] {
				return true
			}
		}
	}
	return false
}

// ExitReachable reports whether the normal Exit block is reachable from
// Entry — false for functions that always panic or exit the process.
func (c *CFG) ExitReachable() bool {
	seen := make([]bool, len(c.Blocks))
	var walk func(b *CFGBlock) bool
	walk = func(b *CFGBlock) bool {
		if seen[b.Index] {
			return false
		}
		seen[b.Index] = true
		if b == c.Exit {
			return true
		}
		for _, s := range b.Succs {
			if walk(s) {
				return true
			}
		}
		return false
	}
	return walk(c.Entry)
}
