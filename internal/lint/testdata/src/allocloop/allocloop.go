// Package allocloop exercises the hot-loop allocation check.
package allocloop

// Thing is a heap payload.
type Thing struct {
	v   int
	buf []byte
}

// Entry drives build in a loop — the hot path every finding must cite.
//
//detlint:hotpath -- fixture entry
func Entry(n int) []*Thing {
	out := make([]*Thing, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, build(i))
	}
	return out
}

// build allocates per call; both sites escape via the return and are in
// hot-loop context even though build itself has no loop.
func build(i int) *Thing {
	buf := make([]byte, 64)       // want `make\(\[\]byte\) escapes \(returned\) in a hot loop; hot path: allocloop.Entry → allocloop.build`
	return &Thing{v: i, buf: buf} // want `composite literal allocloop.Thing escapes \(returned\) in a hot loop`
}

// suppressed carries the same shape as build, silenced with a reason.
//
//detlint:hotpath -- fixture entry
func suppressed(n int) []*Thing {
	var out []*Thing
	for i := 0; i < n; i++ {
		t := &Thing{v: i} //detlint:allow allocloop -- scratch reuse planned
		out = append(out, t)
	}
	return out
}

// cold is unreachable from any hot entry: same allocation, no finding.
func cold(n int) []*Thing {
	out := make([]*Thing, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, &Thing{v: i, buf: make([]byte, 64)})
	}
	return out
}

// frameLocal allocates in a hot loop, but the value never escapes the
// frame: the lattice keeps it at none and the check stays silent.
//
//detlint:hotpath -- fixture entry
func frameLocal(n int) int {
	sum := 0
	for i := 0; i < n; i++ {
		t := Thing{v: i}
		sum += t.v
	}
	return sum
}
