// Package closeleak exercises the must-release dataflow for files,
// connections, and listeners.
package closeleak

import (
	"net"
	"os"
)

// leak never closes the file on the success path.
func leak(p string) error {
	f, err := os.Open(p) // want `file f from os\.Open may not be released on every path \(want Close\)`
	if err != nil {
		return err
	}
	_ = f
	return nil
}

// deferred closes via defer: clean.
func deferred(p string) error {
	f, err := os.Open(p)
	if err != nil {
		return err
	}
	defer f.Close()
	return nil
}

// branches closes on every path explicitly: clean.
func branches(p string, long bool) error {
	f, err := os.Open(p)
	if err != nil {
		return err
	}
	if long {
		_ = f.Close()
		return nil
	}
	return f.Close()
}

// condLeak closes on one branch only.
func condLeak(p string, b bool) error {
	f, err := os.Open(p) // want `file f from os\.Open may not be released on every path \(want Close\)`
	if err != nil {
		return err
	}
	if b {
		return f.Close()
	}
	return nil
}

// transferReturn hands the open file to the caller: clean here.
func transferReturn(p string) (*os.File, error) {
	return os.Open(p)
}

// transferBound returns the bound variable: clean.
func transferBound(p string) *os.File {
	f, err := os.Open(p)
	if err != nil {
		return nil
	}
	return f
}

// holder keeps a file.
type holder struct{ f *os.File }

// transferStore stores the file in a struct: ownership moves.
func transferStore(p string, h *holder) {
	f, err := os.Open(p)
	if err != nil {
		return
	}
	h.f = f
}

// closeIt is a closer helper: its summary records that it releases its
// argument.
func closeIt(f *os.File) {
	if f != nil {
		_ = f.Close()
	}
}

// viaHelper releases through the closer summary: clean.
func viaHelper(p string) {
	f, err := os.Open(p)
	if err != nil {
		return
	}
	closeIt(f)
}

// connLeak dials and drops the connection on the early path.
func connLeak(addr string, ping bool) error {
	c, err := net.Dial("tcp", addr) // want `connection c from net\.Dial may not be released on every path \(want Close\)`
	if err != nil {
		return err
	}
	if ping {
		return nil
	}
	return c.Close()
}

// discard never binds the file at all.
func discard(p string) {
	_, _ = os.Open(p) // want `file from os\.Open is discarded: the result is never bound, so it can never be released \(want Close\)`
}

// allowed is a justified leak, silenced with a rationale.
func allowed(p string) *os.File {
	f, _ := os.Open(p) //detlint:allow closeleak -- lives until process exit by design
	if f == nil {
		return nil
	}
	_ = f
	return nil
}

// aliasClose closes through a second binding: clean.
func aliasClose(p string) {
	f, err := os.Open(p)
	if err != nil {
		return
	}
	g := f
	_ = g.Close()
}

// loopClose reopens per iteration and closes before looping: clean.
func loopClose(ps []string) {
	for _, p := range ps {
		f, err := os.Open(p)
		if err != nil {
			continue
		}
		_ = f.Close()
	}
}

// loopLeak reopens per iteration without closing.
func loopLeak(ps []string) {
	for _, p := range ps {
		f, err := os.Open(p) // want `file f from os\.Open may not be released on every path \(want Close\)`
		if err != nil {
			continue
		}
		_ = f
	}
}

// haltPath exits the process while holding the file: reaching Halt is
// not a leak, so this stays clean.
func haltPath(p string) *os.File {
	f, err := os.Open(p)
	if err != nil {
		os.Exit(1)
	}
	return f
}
