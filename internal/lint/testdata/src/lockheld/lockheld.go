// Package lockheld exercises the mutex-held-across-blocking check.
package lockheld

import "sync"

type S struct {
	mu sync.Mutex
	n  int
}

// increment is the clean fast path: lock, mutate, unlock.
func (s *S) increment() {
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
}

// recurse calls a method that re-acquires s.mu while holding it:
// sync.Mutex is not reentrant, so this self-deadlocks.
func (s *S) recurse() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.increment() // want `call to lockheld\.\(\*S\)\.increment while holding s\.mu may re-acquire the same lock`
}

// indirect hides the re-acquisition one call deeper; the graph's
// transitive acquires fact still sees it.
func (s *S) indirect() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.middle() // want `call to lockheld\.\(\*S\)\.middle while holding s\.mu may re-acquire the same lock`
}

func (s *S) middle() { s.increment() }

// recvHeld parks on a channel receive with the lock held.
func (s *S) recvHeld(ch chan int) {
	s.mu.Lock()
	s.n = <-ch // want `channel receive while holding s\.mu`
	s.mu.Unlock()
}

// waitHeld parks on a WaitGroup with the lock held.
func (s *S) waitHeld(wg *sync.WaitGroup) {
	s.mu.Lock()
	defer s.mu.Unlock()
	wg.Wait() // want `Wait while holding s\.mu`
}

// blockingCallee calls a function that ranges over a channel: the
// blocking is one call away, visible only through the graph.
func (s *S) blockingCallee(ch chan int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	drain(ch) // want `call to lockheld\.drain while holding s\.mu may block`
}

func drain(ch chan int) {
	for range ch {
	}
}

// unlockedCall releases the lock before the nested acquisition: clean.
func (s *S) unlockedCall() {
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
	s.increment()
}

// litDeferred stores a closure while holding the lock; the literal runs
// later, not under the lock, so its receive is not a finding.
func (s *S) litDeferred(ch chan int) *func() {
	s.mu.Lock()
	defer s.mu.Unlock()
	f := func() { <-ch }
	return &f
}

// allowed is the sanctioned single-flight pattern: hold the lock across
// a blocking callee on purpose, with a justification.
func (s *S) allowed(ch chan int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	drain(ch) //detlint:allow lockheld -- fixture: single-flight by design; contenders must wait for the drain
}
