// Package envread exercises the envread check: internal packages must
// not read the process environment; explicit configuration passes.
package envread

import "os"

func bad() string {
	v := os.Getenv("STUDY_SEED")                    // want `os\.Getenv reads hidden host state`
	if _, ok := os.LookupEnv("STUDY_WORKERS"); ok { // want `os\.LookupEnv reads hidden host state`
		return ""
	}
	return v
}

type config struct {
	Seed    int64
	Workers int
}

func good(c config) int64 {
	// Configuration arrives explicitly; the file system API itself is
	// not the environment.
	_ = os.TempDir()
	return c.Seed
}
