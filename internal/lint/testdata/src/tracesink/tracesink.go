// Package trace is the trace-sink fixture: a miniature of
// repro/internal/trace (same package path, same Recorder.Record shape)
// proving the taint layer treats span recording as artifact emission.
// Trace output is contractually byte-identical across runs, so a wall
// clock read reaching Record is the same bug as one reaching a CSV
// writer.
package trace

import "time"

// Span and Recorder mirror the real types; only the shapes the taint
// matcher keys on (the package path, the Recorder name, the Record
// method) matter.
type Span struct {
	Name  string
	Start time.Time
}

type Recorder struct{ spans []Span }

func (r *Recorder) Record(s Span) { r.spans = append(r.spans, s) }

// emit records a span while its call path reads the wall clock through
// a helper — a timestamp that would differ on every run.
func emit(r *Recorder) {
	r.Record(Span{Name: "load"})
	_ = stamp() // want `trace.emit emits an artifact via trace.Recorder.Record but its call path reads time.Now \(walltime at tracesink.go:\d+\): trace.emit → trace.stamp`
}

func stamp() time.Time { return time.Now() }

// mark reads the clock itself and hands the value down into a recording
// helper: the tainted timestamp rides along as an argument.
func mark(r *Recorder) {
	t := time.Now() // want `trace.mark reads time.Now \(walltime\) and reaches artifact writer trace.record \(trace.Recorder.Record at tracesink.go:\d+\): trace.mark → trace.record`
	record(r, t)
}

func record(r *Recorder, t time.Time) { r.Record(Span{Name: "x", Start: t}) }

// emitVirtual is the sanctioned shape: spans stamped from injected
// virtual time, no clock on any call path — no finding.
func emitVirtual(r *Recorder, base time.Time) {
	r.Record(Span{Name: "site", Start: base})
}
