// Package maporder exercises the maporder check: emitting output while
// ranging over a map is flagged; the collect-then-sort idiom, map
// building, and pure aggregation pass.
package maporder

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

func badWrite(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v) // want `fmt\.Fprintf inside a map-range loop`
	}
}

func badBuilder(m map[string]int) string {
	var b strings.Builder
	for k := range m {
		b.WriteString(k) // want `WriteString call inside a map-range loop`
	}
	return b.String()
}

func badAppend(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `appending to keys in map-iteration order`
	}
	return keys
}

type report struct {
	Rows []string
}

func badFieldAppend(r *report, m map[string]bool) {
	for k := range m {
		r.Rows = append(r.Rows, k) // want `appending to r\.Rows in map-iteration order`
	}
}

func goodCollectSort(w io.Writer, m map[string]int) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%s=%d\n", k, m[k])
	}
}

func goodSortSlice(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

func goodAggregate(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

func goodMapBuild(m map[string][]string) map[string][]string {
	out := make(map[string][]string)
	for k, vs := range m {
		out[k] = append(out[k], vs...)
	}
	return out
}
