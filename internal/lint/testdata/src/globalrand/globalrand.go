// Package globalrand exercises the globalrand check: draws from the
// process-global math/rand source are forbidden; threaded seeded
// generators pass.
package globalrand

import (
	"math/rand"
	"time"
)

func bad() {
	_ = rand.Intn(10)                                   // want `rand\.Intn draws from the process-global source`
	_ = rand.Float64()                                  // want `rand\.Float64 draws from the process-global source`
	rand.Shuffle(3, func(i, j int) {})                  // want `rand\.Shuffle draws from the process-global source`
	_ = rand.New(rand.NewSource(time.Now().UnixNano())) // want `seeded from the wall clock`
}

func good(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	sub := rand.New(rand.NewSource(seed ^ 0x51a7))
	return rng.Float64() + sub.Float64()
}

func goodThreaded(src rand.Source) *rand.Rand {
	return rand.New(src)
}
