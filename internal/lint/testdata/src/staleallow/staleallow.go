// Package staleallow exercises suppression-rot detection.
package staleallow

import "time"

// used has a live suppression: the directive silences a real walltime
// finding, so staleallow must stay quiet about it.
func used() {
	_ = time.Now() //detlint:allow walltime -- fixture: live suppression
}

// clean carries a directive with nothing left to suppress.
func clean() int {
	//detlint:allow walltime -- fixture: the clock read this excused is gone // want `//detlint:allow walltime suppresses no findings`
	return 1
}

// typo names a check that does not exist.
func typo() int {
	//detlint:allow frobnicate -- fixture: no such check // want `//detlint:allow names unknown check "frobnicate"`
	return 2
}

// exempt directives naming staleallow itself are never judged: silencing
// a staleness report is the one use that cannot register as a use.
func exempt() int {
	//detlint:allow staleallow,walltime -- fixture: exempt from staleness judgment
	return 3
}
