// Package mutexcopy exercises the mutexcopy check: by-value copies of
// lock-holding types are flagged; pointers and fresh construction pass.
package mutexcopy

import "sync"

type guarded struct {
	mu    sync.Mutex
	count int
}

type nested struct {
	inner guarded
}

func (g guarded) badValueReceiver() int { // want `by-value receiver`
	return g.count
}

func (g *guarded) goodPointerReceiver() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.count
}

func consumeByValue(g guarded) int { return g.count }

func consumeByPointer(g *guarded) int { return g.count }

func bad(p *guarded, all []nested) {
	g := *p                 // want `holds a sync primitive`
	_ = consumeByValue(g)   // want `copying its sync primitive`
	for _, n := range all { // want `range copies elements`
		_ = n.inner.count
	}
}

func good(p *guarded, all []nested) {
	_ = consumeByPointer(p)
	fresh := guarded{count: 1}
	_ = fresh
	for i := range all {
		_ = all[i].inner.count
	}
	var wg sync.WaitGroup
	wg.Add(1)
	wg.Done()
	wg.Wait()
}
