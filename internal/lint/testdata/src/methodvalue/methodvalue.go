// Package methodvalue exercises call-graph resolution of method values:
// x.Method used as a value, both bound to a variable and passed as a
// function-typed argument.
package methodvalue

// Counter carries the methods taken as values.
type Counter struct{ n int }

// Inc has the signature func() after the receiver is bound.
func (c *Counter) Inc() { c.n++ }

// Dec matches Inc's bound signature.
func (c *Counter) Dec() { c.n-- }

// Apply invokes a function value: resolves to every address-taken
// function with a matching signature (Inc and Dec).
func Apply(f func()) { f() }

// Drive takes c.Inc as a value and calls it, then passes c.Dec as an
// argument.
func Drive(c *Counter) {
	f := c.Inc
	f()
	Apply(c.Dec)
}
