// Package boxing exercises the hot-path interface boxing check.
package boxing

import "fmt"

// Entry formats values in a loop; the boxing happens one frame down.
//
//detlint:hotpath -- fixture entry
func Entry(n int) []string {
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, format(i))
		out = append(out, constSmall())
		out = append(out, pointerShaped(&out))
	}
	return out
}

// format boxes its int into Sprintf's variadic interface parameter —
// one allocation per call, every iteration.
func format(x int) string {
	return fmt.Sprintf("v=%d", x) // want `int boxed into interface\{\} argument of fmt.Sprintf allocates in a hot loop`
}

// constSmall passes a small constant integer: the runtime serves those
// from a static table, no allocation, no finding.
func constSmall() string {
	return fmt.Sprintf("v=%d", 7)
}

// pointerShaped passes a pointer: stored directly in the interface
// word, no allocation, no finding.
func pointerShaped(p *[]string) string {
	return fmt.Sprint(p)
}

// coldFormat boxes exactly like format but is unreachable from any hot
// entry: no finding.
func coldFormat(x int) string {
	return fmt.Sprintf("v=%d", x)
}
