// Package tickleak exercises ticker/timer tracking: NewTicker wants
// Stop, NewTimer wants Stop or a drain of C.
package tickleak

import "time"

// leak starts a ticker and abandons it after one beat.
func leak(ch chan<- int) {
	t := time.NewTicker(time.Second) // want `ticker t from time\.NewTicker may not be released on every path \(want Stop\)`
	<-t.C
	ch <- 1
}

// deferred stops via defer: clean.
func deferred(n int, ch chan<- int) {
	t := time.NewTicker(time.Millisecond)
	defer t.Stop()
	for i := 0; i < n; i++ {
		<-t.C
		ch <- i
	}
}

// condLeak stops on one path only.
func condLeak(b bool) {
	t := time.NewTicker(time.Second) // want `ticker t from time\.NewTicker may not be released on every path \(want Stop\)`
	if b {
		t.Stop()
	}
}

// timerDrained receives from C: for timers that releases (the timer has
// fired, nothing is pending), so this is clean.
func timerDrained() {
	t := time.NewTimer(time.Second)
	<-t.C
}

// timerLeak never stops or drains.
func timerLeak(ch <-chan int) int {
	t := time.NewTimer(time.Second) // want `timer t from time\.NewTimer may not be released on every path \(want Stop \(or draining C\)\)`
	select {
	case v := <-ch:
		return v
	default:
		_ = t
		return 0
	}
}

// timerSelect stops or drains on each select arm: clean.
func timerSelect(ch <-chan int) int {
	t := time.NewTimer(time.Second)
	select {
	case v := <-ch:
		t.Stop()
		return v
	case <-t.C:
		return -1
	}
}

// pulse keeps a ticker.
type pulse struct{ t *time.Ticker }

// stored transfers the ticker into a struct: clean here.
func stored(p *pulse) {
	p.t = time.NewTicker(time.Second)
}

// allowed is a deliberate process-lifetime ticker.
func allowed() {
	t := time.NewTicker(time.Second) //detlint:allow tickleak -- heartbeat runs until process exit
	_ = t
}
