// Package retain exercises the retained-growth check.
package retain

// global is heap-resident: any loop growth of it is retained.
var global = map[string]int{}

// Entry accumulates into a returned slice and a package-level map: both
// growth targets outlive every iteration.
//
//detlint:hotpath -- fixture entry
func Entry(keys []string) []int {
	acc := make([]int, 0)
	for i, k := range keys {
		acc = append(acc, i) // want `append to acc retained across loop iterations \(target escapes: returned\)`
		global[k]++          // want `map write to global retained across loop iterations \(target escapes: heap\)`
		_ = histogram(keys)
	}
	return acc
}

// histogram grows a map that dies with the frame: the growth is not
// retained beyond the call, no finding.
func histogram(keys []string) int {
	seen := map[string]bool{}
	for _, k := range keys {
		seen[k] = true
	}
	return len(seen)
}

// perIteration declares the slice inside the loop: growth dies each
// iteration, so nothing is retained across them.
//
//detlint:hotpath -- fixture entry
func perIteration(keys []string) int {
	total := 0
	for range keys {
		row := make([]int, 0)
		row = append(row, 1)
		total += len(row)
	}
	return total
}
