// Package cancelleak exercises cancel-function tracking: the func value
// returned by context.With* must be called on every path.
package cancelleak

import (
	"context"
	"time"
)

// leak forgets cancel on the early-return path.
func leak(ctx context.Context, fast bool) error {
	ctx2, cancel := context.WithTimeout(ctx, time.Second) // want `cancel function cancel from context\.WithTimeout may not be released on every path \(want a call to the cancel function\)`
	if fast {
		return nil
	}
	defer cancel()
	return work(ctx2)
}

// deferred is the canonical clean shape.
func deferred(ctx context.Context) error {
	ctx2, cancel := context.WithCancel(ctx)
	defer cancel()
	return work(ctx2)
}

// explicit calls cancel on every path: clean.
func explicit(ctx context.Context, b bool) error {
	ctx2, cancel := context.WithDeadline(ctx, time.Time{})
	if b {
		cancel()
		return nil
	}
	err := work(ctx2)
	cancel()
	return err
}

// discarded drops the cancel func at the binding.
func discarded(ctx context.Context) context.Context {
	ctx2, _ := context.WithCancel(ctx) // want `cancel function from context\.WithCancel is discarded: the result is never bound, so it can never be released \(want a call to the cancel function\)`
	return ctx2
}

// transferred returns the cancel func: the caller owns it.
func transferred(ctx context.Context) (context.Context, context.CancelFunc) {
	ctx2, cancel := context.WithCancel(ctx)
	return ctx2, cancel
}

// captured hands cancel to a goroutine: ownership moves out of frame.
func captured(ctx context.Context, done <-chan struct{}) context.Context {
	ctx2, cancel := context.WithCancel(ctx)
	go func() {
		<-done
		cancel()
	}()
	return ctx2
}

// allowed is a process-lifetime context, silenced with a rationale.
func allowed(ctx context.Context) context.Context {
	ctx2, cancel := context.WithCancel(ctx) //detlint:allow cancelleak -- root context lives until shutdown
	_ = cancel
	return ctx2
}

func work(ctx context.Context) error {
	<-ctx.Done()
	return ctx.Err()
}
