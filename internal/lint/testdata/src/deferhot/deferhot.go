// Package deferhot exercises the defer-in-loop check on hot paths.
package deferhot

import "os"

// Entry processes many files per request — the hot context.
//
//detlint:hotpath -- fixture entry
func Entry(paths []string) error {
	for _, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			return err
		}
		defer f.Close() // want `defer inside a loop on a hot path runs at function return, not per iteration; hoist it or release explicitly; hot path: deferhot\.Entry`
		use(f)
	}
	return nil
}

// nested piles defers up quadratically; both loop levels report the
// same site once.
//
//detlint:hotpath -- fixture entry
func nested(n int) {
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			defer release(i, j) // want `defer inside a loop on a hot path`
		}
	}
}

// perIteration wraps the body in a closure: the defer runs every
// iteration, which is the fix — no finding.
//
//detlint:hotpath -- fixture entry
func perIteration(paths []string) error {
	for _, p := range paths {
		if err := func() error {
			f, err := os.Open(p)
			if err != nil {
				return err
			}
			defer f.Close()
			use(f)
			return nil
		}(); err != nil {
			return err
		}
	}
	return nil
}

// cold has the same shape but is not reachable from any hot entry.
func cold(paths []string) {
	for _, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			continue
		}
		defer f.Close()
		use(f)
	}
}

// topLevel defers outside any loop: fine even on a hot path.
//
//detlint:hotpath -- fixture entry
func topLevel(p string) error {
	f, err := os.Open(p)
	if err != nil {
		return err
	}
	defer f.Close()
	use(f)
	return nil
}

// allowed documents a justified loop defer.
//
//detlint:hotpath -- fixture entry
func allowed(paths []string) {
	for _, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			continue
		}
		defer f.Close() //detlint:allow deferhot -- bounded fan-in, at most 3 paths
		use(f)
	}
}

func release(i, j int) {}

func use(f *os.File) {}
