// Package walltime exercises the walltime check: wall-clock reads are
// forbidden outside internal/vclock; duration arithmetic and explicit
// allow annotations pass.
package walltime

import "time"

// Epoch is fine: constructing times is not reading the clock.
var Epoch = time.Date(2020, 3, 12, 0, 0, 0, 0, time.UTC)

func bad() time.Time {
	t := time.Now()                // want `time\.Now reads the wall clock`
	time.Sleep(time.Millisecond)   // want `time\.Sleep reads the wall clock`
	_ = time.Since(t)              // want `time\.Since reads the wall clock`
	<-time.After(time.Millisecond) // want `time\.After reads the wall clock`
	return t
}

func good(clock interface{ Now() time.Time }) time.Duration {
	// Virtual-clock reads and pure duration math never touch the host.
	start := clock.Now()
	d := 3 * time.Second
	_ = start.Add(d)
	return d
}

func annotated() time.Time {
	//detlint:allow walltime -- golden test: directive on the line above suppresses
	a := time.Now()
	b := time.Now() //detlint:allow walltime -- golden test: same-line directive suppresses
	_ = b
	return a
}
