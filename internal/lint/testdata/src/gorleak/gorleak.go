// Package gorleak exercises the unjoined-goroutine check.
package gorleak

import "sync"

func work() {}

// leak spawns and forgets: nothing in the spawner bounds the goroutine's
// lifetime.
func leak() {
	go work() // want `goroutine has no join or cancel path reachable from gorleak.leak`
}

// joined uses the canonical WaitGroup join.
func joined() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
	wg.Wait()
}

// chanJoined receives the completion signal.
func chanJoined() {
	done := make(chan struct{})
	go func() {
		work()
		close(done)
	}()
	<-done
}

// cancelled closes the stop channel the goroutine selects on: a cancel
// path counts as bounding the lifetime.
func cancelled(stop chan struct{}) {
	go func() {
		<-stop
	}()
	close(stop)
}

// helperJoined delegates the join to a callee: the graph's mayWait fact
// covers the encapsulated-join helper pattern.
func helperJoined() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done() }()
	join(&wg)
}

func join(wg *sync.WaitGroup) { wg.Wait() }

// selfWaitDoesNotJoin shows the merging hazard: the Wait lives inside
// the goroutine body, so it joins nothing for the spawner.
func selfWaitDoesNotJoin() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // want `goroutine has no join or cancel path reachable from gorleak.selfWaitDoesNotJoin`
		wg.Wait()
	}()
}

// daemonAllowed is the sanctioned escape hatch for deliberate daemons.
func daemonAllowed() {
	//detlint:allow gorleak -- fixture: daemon goroutine, lifetime bound by the process
	go work()
}
