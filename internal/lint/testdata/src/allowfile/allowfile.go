// Package allowfile exercises file-level allow directives: the
// annotation below sits in the doc block, so every walltime finding in
// this file is suppressed — but only walltime; other checks still fire.
//
//detlint:allow walltime -- golden test: whole-file suppression
package allowfile

import (
	"os"
	"time"
)

func clocked() time.Time {
	time.Sleep(time.Millisecond)
	return time.Now()
}

func env() string {
	return os.Getenv("HOME")
}
