// Package taint exercises the interprocedural source→sink chains the
// syntactic checks cannot see.
package taint

import (
	"encoding/csv"
	"encoding/json"
	"io"
	"sort"
	"time"
)

// emit is an artifact writer whose call path reaches a wall-clock read
// through two intermediate helpers — the exact shape PR 3's syntactic
// walltime check sails past when helpers live behind allow directives
// or in exempt packages.
func emit(w io.Writer, rows [][]string) {
	cw := csv.NewWriter(w)
	_ = cw.WriteAll(rows)
	_ = stamp() // want `taint.emit emits an artifact via csv.Writer.WriteAll but its call path reads time.Now \(walltime at taint.go:\d+\): taint.emit → taint.stamp → taint.now`
	cw.Flush()
}

func stamp() int64 { return now().UnixNano() }

func now() time.Time { return time.Now() }

// banner reads the clock itself and then calls down into a writer: the
// tainted value can ride along as an argument.
func banner(e *json.Encoder, v interface{}) {
	t := time.Now() // want `taint.banner reads time.Now \(walltime\) and reaches artifact writer taint.writeJSON \(json.Encoder.Encode at taint.go:\d+\): taint.banner → taint.writeJSON`
	_ = t
	writeJSON(e, v)
}

func writeJSON(e *json.Encoder, v interface{}) { _ = e.Encode(v) }

// keys returns map keys in iteration order: a taint source that only
// bites in whoever consumes the slice.
func keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) //detlint:allow maporder -- fixture: the order residue is tracked by the taint check instead
	}
	return out
}

// dump consumes the unsorted keys inside a CSV writer.
func dump(w io.Writer, m map[string]int) {
	cw := csv.NewWriter(w)
	for _, k := range keys(m) { // want `taint.dump emits an artifact via csv.Writer.Write but its call path reads map-iteration-ordered return of out \(maporder at taint.go:\d+\): taint.dump → taint.keys`
		_ = cw.Write([]string{k})
	}
	cw.Flush()
}

// sortedKeys is the sanctioned idiom: the order is re-established before
// the slice escapes, so no taint.
func sortedKeys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func dumpSorted(w io.Writer, m map[string]int) {
	cw := csv.NewWriter(w)
	for _, k := range sortedKeys(m) {
		_ = cw.Write([]string{k})
	}
	cw.Flush()
}

// emitClean writes artifacts with no nondeterminism on any call path.
func emitClean(w io.Writer, rows [][]string) {
	cw := csv.NewWriter(w)
	_ = cw.WriteAll(rows)
	cw.Flush()
}

// emitAllowed shows the justification escape hatch: the chain exists,
// but the author vouches the value never reaches the artifact bytes.
func emitAllowed(w io.Writer, rows [][]string) {
	cw := csv.NewWriter(w)
	_ = cw.WriteAll(rows)
	_ = stamp() //detlint:allow taint -- fixture: the timestamp is logged to stderr, never written to the artifact
	cw.Flush()
}
