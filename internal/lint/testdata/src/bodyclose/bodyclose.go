// Package bodyclose exercises response-body tracking: any call with a
// *http.Response result owns the body until Body.Close (or a handoff).
package bodyclose

import (
	"io"
	"net/http"
)

// leak reads the status and drops the body.
func leak(u string) (int, error) {
	resp, err := http.Get(u) // want `response body resp from http\.Get may not be released on every path \(want Body\.Close\)`
	if err != nil {
		return 0, err
	}
	return resp.StatusCode, nil
}

// deferred is the canonical clean shape.
func deferred(u string) (int, error) {
	resp, err := http.Get(u)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	return resp.StatusCode, nil
}

// drained reads the body and closes explicitly: clean. io.ReadAll is an
// unknown callee to the analysis, so reading alone would not count —
// the Close does.
func drained(u string) ([]byte, error) {
	resp, err := http.Get(u)
	if err != nil {
		return nil, err
	}
	b, err := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	return b, err
}

// readNoClose reads but never closes: reading is not releasing.
func readNoClose(u string) ([]byte, error) {
	resp, err := http.Get(u) // want `response body resp from http\.Get may not be released on every path \(want Body\.Close\)`
	if err != nil {
		return nil, err
	}
	return io.ReadAll(resp.Body)
}

// bodyAlias closes through a bound body variable: clean.
func bodyAlias(u string) error {
	resp, err := http.Get(u)
	if err != nil {
		return err
	}
	b := resp.Body
	return b.Close()
}

// clientDo tracks method calls too, not just package functions.
func clientDo(c *http.Client, req *http.Request) error {
	resp, err := c.Do(req) // want `response body resp from c\.Do may not be released on every path \(want Body\.Close\)`
	if err != nil {
		return err
	}
	_ = resp.Status
	return nil
}

// finish is a helper that consumes a response; its closer summary
// transfers ownership at the call site.
func finish(resp *http.Response) {
	if resp != nil {
		_ = resp.Body.Close()
	}
}

// viaHelper hands the response to finish: clean.
func viaHelper(u string) error {
	resp, err := http.Get(u)
	if err != nil {
		return err
	}
	finish(resp)
	return nil
}

// transfer returns the response: the caller owns the body.
func transfer(u string) (*http.Response, error) {
	return http.Get(u)
}

// condLeak closes only when asked to.
func condLeak(u string, keep bool) error {
	resp, err := http.Get(u) // want `response body resp from http\.Get may not be released on every path \(want Body\.Close\)`
	if err != nil {
		return err
	}
	if !keep {
		return resp.Body.Close()
	}
	return nil
}

// allowed documents an intentional retention.
func allowed(u string) *http.Response {
	resp, err := http.Get(u) //detlint:allow bodyclose -- handed to the streaming pipeline below
	if err != nil {
		return nil
	}
	_ = resp.Status
	return nil
}
