// Package errdrop exercises the errdrop check: dropped Write/Close/
// Flush/Encode errors on artifact writers are flagged; checked returns,
// explicit discards, defers, and never-failing writers pass.
package errdrop

import (
	"bufio"
	"encoding/csv"
	"hash/fnv"
	"io"
	"os"
	"strings"
)

func bad(f *os.File, rec []string) {
	cw := csv.NewWriter(f)
	cw.Write(rec) // want `error return of Write dropped`
	bw := bufio.NewWriter(f)
	bw.Flush() // want `error return of Flush dropped`
	f.Close()  // want `error return of Close dropped`
}

func good(f *os.File, rec []string) error {
	cw := csv.NewWriter(f)
	if err := cw.Write(rec); err != nil {
		return err
	}
	bw := bufio.NewWriter(f)
	if err := bw.Flush(); err != nil {
		return err
	}
	return f.Close()
}

func goodExplicitDiscard(f *os.File) {
	// A visible decision, not an accident.
	_ = f.Close()
}

func goodDefer(f *os.File) {
	// Deferred best-effort cleanup is idiomatic.
	defer f.Close()
}

func goodNeverFails(w io.Writer) string {
	var b strings.Builder
	b.WriteString("never fails")
	h := fnv.New64a()
	h.Write([]byte("hash writes never fail"))
	return b.String()
}
