package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// blockState holds the graph-propagated concurrency facts shared by the
// gorleak and lockheld checks:
//
//   - mayBlock: the function (or something it transitively calls inside
//     the module) performs a channel operation, select, or Wait — it can
//     park the calling goroutine indefinitely.
//   - mayWait: the function transitively calls a Wait() method — it can
//     serve as the join point for spawned goroutines.
//   - acquires: the set of cross-function lock identities ("pkg.Type.field"
//     or "pkg.var") the function may lock, directly or transitively.
//
// All three are over-approximations on the same deliberately
// conservative graph the taint check uses.
type blockState struct {
	mayBlock map[*FuncNode]bool
	mayWait  map[*FuncNode]bool
	acquires map[*FuncNode]map[string]bool
}

func (g *Graph) blockState() *blockState {
	if g.blocky != nil {
		return g.blocky
	}
	st := &blockState{
		mayBlock: make(map[*FuncNode]bool),
		mayWait:  make(map[*FuncNode]bool),
		acquires: make(map[*FuncNode]map[string]bool),
	}
	for _, n := range g.sorted {
		blocks, waits := directBlockFacts(n)
		st.mayBlock[n] = blocks
		st.mayWait[n] = waits
		acq := make(map[string]bool)
		for _, l := range lockSitesIn(n) {
			if l.key != "" {
				acq[l.key] = true
			}
		}
		st.acquires[n] = acq
	}
	// Propagate to a fixpoint with deterministic sweeps. The facts only
	// grow, so termination is bounded by nodes × keys.
	for changed := true; changed; {
		changed = false
		for _, n := range g.sorted {
			for _, cs := range n.Calls {
				if st.mayBlock[cs.Callee] && !st.mayBlock[n] {
					st.mayBlock[n] = true
					changed = true
				}
				if st.mayWait[cs.Callee] && !st.mayWait[n] {
					st.mayWait[n] = true
					changed = true
				}
				for key := range st.acquires[cs.Callee] {
					if !st.acquires[n][key] {
						st.acquires[n][key] = true
						changed = true
					}
				}
			}
		}
	}
	g.blocky = st
	return st
}

// directBlockFacts scans a function body for blocking operations and
// Wait calls performed directly (function literals included).
func directBlockFacts(n *FuncNode) (blocks, waits bool) {
	info := n.Pkg.Info
	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		switch node := node.(type) {
		case *ast.SendStmt, *ast.SelectStmt:
			blocks = true
		case *ast.UnaryExpr:
			if node.Op == token.ARROW {
				blocks = true
			}
		case *ast.RangeStmt:
			if tv, ok := info.Types[node.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					blocks = true
				}
			}
		case *ast.CallExpr:
			if _, name, ok := methodCall(info, node); ok && name == "Wait" {
				blocks = true
				waits = true
			}
		}
		return true
	})
	return blocks, waits
}

// lockSite is one direct mutex acquisition: the statement, the lock
// expression's textual form within the function ("s.mu"), and its
// cross-function identity key ("" when the mutex is a local variable,
// which has no identity outside the function).
type lockSite struct {
	stmt    *ast.ExprStmt
	call    *ast.CallExpr
	exprStr string
	key     string
	rlock   bool
}

// lockSitesIn finds every direct x.Lock()/x.RLock() statement on a
// sync.Mutex or sync.RWMutex in the function body.
func lockSitesIn(n *FuncNode) []lockSite {
	var out []lockSite
	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		es, ok := node.(*ast.ExprStmt)
		if !ok {
			return true
		}
		if site, ok := lockSiteOf(n, es); ok {
			out = append(out, site)
		}
		return true
	})
	return out
}

// lockIdentity derives a cross-function identity for a mutex expression:
// "pkgpath.Type.field" for a field of a named type, "pkgpath.var" for a
// package-level variable, "" otherwise (local variables cannot be
// matched across functions).
func lockIdentity(n *FuncNode, x ast.Expr) string {
	info := n.Pkg.Info
	switch x := x.(type) {
	case *ast.SelectorExpr:
		tv, ok := info.Types[x.X]
		if !ok {
			return ""
		}
		t := tv.Type
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		named, ok := t.(*types.Named)
		if !ok {
			return ""
		}
		obj := named.Obj()
		if obj.Pkg() == nil {
			return ""
		}
		return obj.Pkg().Path() + "." + obj.Name() + "." + x.Sel.Name
	case *ast.Ident:
		obj := info.Uses[x]
		if obj == nil || obj.Pkg() == nil {
			return ""
		}
		// Package-scope variables have the package scope as parent.
		if obj.Parent() == obj.Pkg().Scope() {
			return obj.Pkg().Path() + "." + obj.Name()
		}
		return ""
	}
	return ""
}

// unlocksSame reports whether the AST subtree contains a call to
// Unlock/RUnlock on the same lock expression.
func unlocksSame(node ast.Node, exprStr string) bool {
	found := false
	ast.Inspect(node, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Unlock" && sel.Sel.Name != "RUnlock") {
			return true
		}
		if exprString(sel.X) == exprStr {
			found = true
			return false
		}
		return true
	})
	return found
}
