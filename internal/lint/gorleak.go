package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GorleakCheck flags `go` statements with no join or cancel path
// reachable from the spawner. A goroutine whose lifetime nothing bounds
// outlives the run that spawned it: it keeps mutating shared state (or
// holding sockets) after results are collected, which is both a leak and
// a scheduling-dependent source of nondeterminism.
//
// A spawn is considered joined when the spawning function — outside any
// goroutine body — receives from a channel, ranges over one, selects,
// closes a channel (the cancel idiom), or calls a Wait method; or when
// any function the spawner calls (transitively, over the module call
// graph) calls a Wait method, covering helpers that encapsulate the
// join. Deliberate daemon goroutines (a server's accept loop bounded by
// its Close method) are annotated //detlint:allow gorleak.
var GorleakCheck = &Check{
	Name: "gorleak",
	Doc:  "flag goroutines launched without a join or cancel path reachable from the spawner",
	Run:  runGorleak,
}

func runGorleak(p *Pass) {
	st := p.Graph.blockState()
	for _, n := range p.Graph.sorted {
		if n.Pkg != p.Pkg {
			continue
		}
		spawns := goStmtsIn(n)
		if len(spawns) == 0 {
			continue
		}
		spans := goSpans(spawns)
		if spawnerJoins(n, spans) || calleeJoins(n, st, spans) {
			continue
		}
		for _, g := range spawns {
			p.Reportf(g.Pos(),
				"goroutine has no join or cancel path reachable from %s: the spawner neither waits, receives, selects, nor closes a channel, and no callee joins for it; bound the goroutine's lifetime", n.Name())
		}
	}
}

// goStmtsIn collects every go statement in the function body.
func goStmtsIn(n *FuncNode) []*ast.GoStmt {
	var out []*ast.GoStmt
	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		if g, ok := node.(*ast.GoStmt); ok {
			out = append(out, g)
		}
		return true
	})
	return out
}

type posSpan struct{ lo, hi token.Pos }

func (s posSpan) contains(p token.Pos) bool { return p >= s.lo && p <= s.hi }

func goSpans(spawns []*ast.GoStmt) []posSpan {
	out := make([]posSpan, len(spawns))
	for i, g := range spawns {
		out[i] = posSpan{g.Pos(), g.End()}
	}
	return out
}

func inAnySpan(spans []posSpan, p token.Pos) bool {
	for _, s := range spans {
		if s.contains(p) {
			return true
		}
	}
	return false
}

// spawnerJoins reports whether the spawner's own body — outside every
// goroutine subtree — contains a join or cancel operation.
func spawnerJoins(n *FuncNode, spans []posSpan) bool {
	info := n.Pkg.Info
	joined := false
	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		if joined || node == nil {
			return false
		}
		if inAnySpan(spans, node.Pos()) {
			return false
		}
		switch node := node.(type) {
		case *ast.SelectStmt:
			joined = true
		case *ast.UnaryExpr:
			if node.Op == token.ARROW {
				joined = true
			}
		case *ast.RangeStmt:
			if tv, ok := info.Types[node.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					joined = true
				}
			}
		case *ast.CallExpr:
			if id, ok := node.Fun.(*ast.Ident); ok && id.Name == "close" {
				joined = true
			}
			if _, name, ok := methodCall(info, node); ok && name == "Wait" {
				joined = true
			}
		}
		return !joined
	})
	return joined
}

// calleeJoins reports whether any function called from the spawner's
// body (outside goroutine subtrees) transitively calls a Wait method —
// the encapsulated-join helper pattern.
func calleeJoins(n *FuncNode, st *blockState, spans []posSpan) bool {
	for _, cs := range n.Calls {
		if cs.Callee == n || inAnySpan(spans, cs.Pos) {
			continue
		}
		if st.mayWait[cs.Callee] {
			return true
		}
	}
	return false
}
