package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"io"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// This file is the lifeflow layer: a must-release dataflow over the
// per-function CFGs (cfg.go), shared by the closeleak/bodyclose/
// cancelleak/tickleak checks and the lifecycle report. The pipeline:
//
//  1. A no-return fixpoint over the module: a function whose CFG cannot
//     reach its Exit block (every path panics or exits the process) is
//     terminating, and calls to it route to Halt in its callers' CFGs.
//  2. Bottom-up closer summaries over the call graph: for each function,
//     which operands (receiver, parameters) it releases, returns, or
//     stores. Passing a resource to such a callee transfers ownership.
//  3. Per function (and per function literal — each literal body is its
//     own control-flow universe): match calls against the acquire table,
//     bind each resource to its variable (plus flow-insensitive aliases
//     and the paired error variable), and run a forward "may reach exit
//     unreleased" dataflow — the complement of must-release, so a
//     resource is flagged exactly when some path leaks it.
//
// Release events kill a resource: a Close/Stop call (direct or
// deferred), calling a cancel/stop function value, Body.Close on an
// http response, a receive from a timer's C, returning or storing the
// value, passing it to a consuming callee, or handing it to a
// goroutine or escaping closure (ownership moved — the intraprocedural
// analysis cannot follow it, so it stays quiet). Branch conditions on
// the paired error variable prune the nil-resource path: after
// `v, err := acquire()`, the `err != nil` edge kills v.
//
// The analysis is deliberately quiet-biased: unknown callees do not
// release (io.ReadAll does not close the body), but every ownership
// transfer does. Soundness caveats — reflection, finalizers,
// conditional ownership through wrapper returns — are documented in
// DESIGN.md.

// acquireSpec is one row of the acquire table: how a call produces a
// resource and what counts as releasing it.
type acquireSpec struct {
	check   string // reporting check: closeleak, bodyclose, cancelleak, tickleak
	kind    string // human kind: "file", "ticker", "response body", ...
	result  int    // index of the result value carrying the resource
	release string // human description of the expected release

	closeMethods []string // methods on the value that release it
	callValue    bool     // calling the value itself releases (cancel/stop funcs)
	bodyClose    bool     // v.Body.Close() releases (http responses)
	recvC        bool     // a receive from v.C releases (timers)
	consumers    []string // callee names that consume v passed as an argument
}

// matchAcquire resolves a call against the acquire table.
func matchAcquire(info *types.Info, call *ast.CallExpr) (acquireSpec, bool) {
	if pkg, name, ok := pkgFunc(info, call); ok {
		switch pkg {
		case "os":
			switch name {
			case "Open", "Create", "OpenFile", "CreateTemp":
				return acquireSpec{check: "closeleak", kind: "file", result: 0,
					closeMethods: []string{"Close"}, release: "Close"}, true
			}
		case "net":
			switch name {
			case "Dial", "DialTimeout", "DialTCP", "DialUDP", "DialUnix", "DialIP":
				return acquireSpec{check: "closeleak", kind: "connection", result: 0,
					closeMethods: []string{"Close"}, release: "Close"}, true
			case "Listen", "ListenTCP", "ListenUDP", "ListenUnix", "ListenPacket", "ListenIP":
				return acquireSpec{check: "closeleak", kind: "listener", result: 0,
					closeMethods: []string{"Close"}, release: "Close"}, true
			}
		case "context":
			switch name {
			case "WithCancel", "WithTimeout", "WithDeadline", "WithCancelCause":
				return acquireSpec{check: "cancelleak", kind: "cancel function", result: 1,
					callValue: true, release: "a call to the cancel function"}, true
			}
		case "time":
			switch name {
			case "NewTicker":
				return acquireSpec{check: "tickleak", kind: "ticker", result: 0,
					closeMethods: []string{"Stop"}, release: "Stop"}, true
			case "NewTimer":
				return acquireSpec{check: "tickleak", kind: "timer", result: 0,
					closeMethods: []string{"Stop"}, recvC: true,
					release: "Stop (or draining C)"}, true
			}
		case "repro/internal/profiling":
			switch name {
			case "StartCPU":
				return acquireSpec{check: "cancelleak", kind: "profile stop function", result: 0,
					callValue: true, release: "a call to the stop function"}, true
			}
		}
	}
	if recv, name, ok := methodCall(info, call); ok {
		if namedIn(recv, "repro/internal/trace", "Tracer") && name == "Recorder" {
			return acquireSpec{check: "closeleak", kind: "trace recorder", result: 0,
				consumers: []string{"Merge"}, release: "Tracer.Merge"}, true
		}
	}
	if idx, ok := httpResponseResult(info, call); ok {
		return acquireSpec{check: "bodyclose", kind: "response body", result: idx,
			bodyClose: true, release: "Body.Close"}, true
	}
	return acquireSpec{}, false
}

// httpResponseResult finds the *net/http.Response among a call's
// results — the ownership convention for response bodies holds for any
// producer, stdlib or module.
func httpResponseResult(info *types.Info, call *ast.CallExpr) (int, bool) {
	tv, ok := info.Types[call]
	if !ok || tv.Type == nil || tv.IsType() {
		return 0, false
	}
	if tuple, ok := tv.Type.(*types.Tuple); ok {
		for i := 0; i < tuple.Len(); i++ {
			if namedIn(tuple.At(i).Type(), "net/http", "Response") {
				return i, true
			}
		}
		return 0, false
	}
	if namedIn(tv.Type, "net/http", "Response") {
		return 0, true
	}
	return 0, false
}

// stdlibConsumer reports whether a known stdlib callee takes ownership
// of its argument at the given index (the body handed to an http
// request is closed by the transport; NopCloser wraps and returns).
func stdlibConsumer(info *types.Info, call *ast.CallExpr, argIdx int) bool {
	pkg, name, ok := pkgFunc(info, call)
	if !ok {
		return false
	}
	switch {
	case pkg == "net/http" && name == "NewRequest":
		return argIdx == 2
	case pkg == "net/http" && name == "NewRequestWithContext":
		return argIdx == 3
	case pkg == "io" && name == "NopCloser":
		return argIdx == 0
	}
	return false
}

// resource is one tracked acquisition inside a function (or literal).
type resource struct {
	spec acquireSpec
	pos  token.Pos
	name string // bound variable name, "" when unnamed
	src  string // rendered acquire callee, e.g. "os.Open", "client.Do"

	vars     map[types.Object]bool // binding variable plus aliases
	bodyVars map[types.Object]bool // aliases of v.Body (responses)
	errVar   types.Object          // paired error result variable

	bit       uint64
	reasons   map[string]bool // how paths disposed of it
	leaked    bool            // live on some path reaching Exit
	immediate string          // "discarded" when the result is never bound
}

// outcome summarizes the resource's fate for the lifecycle report.
func (r *resource) outcome() string {
	if r.immediate != "" {
		return r.immediate
	}
	if r.leaked {
		return "leaked"
	}
	for _, k := range []string{"deferred", "released", "received", "consumed",
		"returned", "stored", "goroutine", "captured"} {
		if r.reasons[k] {
			return k
		}
	}
	return "process-exit"
}

// lifeState is the module-wide lifecycle analysis, computed once per
// graph and shared by the lifecycle checks and the leak report.
type lifeState struct {
	noret     map[*types.Func]bool
	summary   map[*types.Func]uint64 // bit 0: receiver, bit i: param i-1
	resources map[*FuncNode][]*resource
}

// lifeState computes (once) the no-return set, the closer summaries,
// and the per-function must-release results. Every sweep iterates
// g.sorted, so the result is a pure function of the graph.
func (g *Graph) lifeState() *lifeState {
	if g.life != nil {
		return g.life
	}
	st := &lifeState{
		noret:     make(map[*types.Func]bool),
		summary:   make(map[*types.Func]uint64),
		resources: make(map[*FuncNode][]*resource),
	}

	// 1. No-return fixpoint: the set only grows, so iterate until
	// stable. CFGs are rebuilt each round; the final round's graphs are
	// consistent with the final set.
	for changed := true; changed; {
		changed = false
		for _, n := range g.sorted {
			if st.noret[n.Fn] {
				continue
			}
			cfg := BuildCFG(n.Decl.Body, n.Pkg.Info, st.noret)
			if !cfg.ExitReachable() {
				st.noret[n.Fn] = true
				changed = true
			}
		}
	}

	// 2. Closer summaries, bottom-up to a fixpoint (masks only grow).
	analyses := make(map[*FuncNode]*lifeAnalysis, len(g.sorted))
	for _, n := range g.sorted {
		analyses[n] = newLifeAnalysis(n, g, st)
	}
	for changed := true; changed; {
		changed = false
		for _, n := range g.sorted {
			mask := analyses[n].summarize()
			if mask != st.summary[n.Fn] {
				st.summary[n.Fn] = mask
				changed = true
			}
		}
	}

	// 3. Per-function (and per-literal) must-release dataflow.
	for _, n := range g.sorted {
		st.resources[n] = analyses[n].run()
	}
	g.life = st
	return st
}

// lifeAnalysis is the per-function scaffolding: parent links, resolved
// call-site targets, and the function's analysis contexts (the declared
// body plus every function literal, each its own control-flow universe).
type lifeAnalysis struct {
	n       *FuncNode
	g       *Graph
	st      *lifeState
	info    *types.Info
	parents map[ast.Node]ast.Node
	callees map[token.Pos][]*FuncNode
	lits    []*ast.FuncLit
}

func newLifeAnalysis(n *FuncNode, g *Graph, st *lifeState) *lifeAnalysis {
	la := &lifeAnalysis{
		n:       n,
		g:       g,
		st:      st,
		info:    n.Pkg.Info,
		parents: make(map[ast.Node]ast.Node),
		callees: make(map[token.Pos][]*FuncNode),
	}
	var stack []ast.Node
	ast.Inspect(n.Decl, func(node ast.Node) bool {
		if node == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			la.parents[node] = stack[len(stack)-1]
		}
		stack = append(stack, node)
		if lit, ok := node.(*ast.FuncLit); ok {
			la.lits = append(la.lits, lit)
		}
		return true
	})
	for _, cs := range n.Calls {
		la.callees[cs.Pos] = append(la.callees[cs.Pos], cs.Callee)
	}
	return la
}

// enclosingFunc returns the innermost function-body boundary containing
// pos: a literal's body, or the declaration's.
func (la *lifeAnalysis) enclosingFunc(pos token.Pos) ast.Node {
	var best *ast.FuncLit
	for _, lit := range la.lits {
		if pos >= lit.Body.Pos() && pos <= lit.Body.End() {
			if best == nil || lit.Pos() > best.Pos() {
				best = lit
			}
		}
	}
	if best != nil {
		return best
	}
	return la.n.Decl
}

// summarize computes the operand-release mask for the closer-summary
// fixpoint: bit 0 set when the receiver is released/consumed somewhere
// in the body, bit i for parameter i-1. Any disposal counts — a callee
// that closes, returns, stores, or hands off its argument owns it.
func (la *lifeAnalysis) summarize() uint64 {
	sig := la.n.Fn.Type().(*types.Signature)
	var mask uint64
	probe := func(v *types.Var, bit int) {
		if v == nil || bit >= 64 {
			return
		}
		r := &resource{
			spec: acquireSpec{
				closeMethods: []string{"Close", "Stop"},
				callValue:    true,
				bodyClose:    true,
				recvC:        true,
			},
			vars:     map[types.Object]bool{v: true},
			bodyVars: map[types.Object]bool{},
		}
		la.collectAliases(la.n.Decl.Body, r)
		found := false
		ast.Inspect(la.n.Decl.Body, func(node ast.Node) bool {
			if found {
				return false
			}
			id, ok := node.(*ast.Ident)
			if !ok {
				return true
			}
			if obj := la.info.Uses[id]; obj == nil || !r.vars[obj] && !r.bodyVars[obj] {
				return true
			}
			switch la.classify(id, r) {
			case "release", "received", "consumed", "returned", "stored", "goroutine":
				found = true
			}
			return true
		})
		if found {
			mask |= 1 << uint(bit)
		}
	}
	probe(sig.Recv(), 0)
	for i := 0; i < sig.Params().Len(); i++ {
		probe(sig.Params().At(i), i+1)
	}
	return mask
}

// calleeReleases reports whether passing a value as operand opIdx of
// this call transfers ownership: a module callee whose summary releases
// that operand, a spec-listed consumer method, or a known stdlib
// consumer. Operand 0 is the receiver; arguments start at 1.
func (la *lifeAnalysis) calleeReleases(call *ast.CallExpr, opIdx int, spec acquireSpec) bool {
	if opIdx >= 1 && stdlibConsumer(la.info, call, opIdx-1) {
		return true
	}
	if len(spec.consumers) > 0 {
		name := ""
		switch f := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			name = f.Name
		case *ast.SelectorExpr:
			name = f.Sel.Name
		}
		for _, c := range spec.consumers {
			if name == c {
				return true
			}
		}
	}
	if opIdx >= 64 {
		return false
	}
	for _, callee := range la.callees[call.Pos()] {
		if la.st.summary[callee.Fn]&(1<<uint(opIdx)) != 0 {
			return true
		}
	}
	return false
}

// classify decides how one identifier use treats a tracked resource:
//
//	"release"   — Close/Stop/cancel-call/Body.Close on the value
//	"received"  — a receive (or range) over the value's C channel
//	"consumed"  — passed to a callee that takes ownership
//	"returned"  — the value (or its Body) is returned
//	"stored"    — written to heap memory, a composite, or a channel
//	"goroutine" — handed to a go statement
//	"none"      — a plain use that neither releases nor transfers
func (la *lifeAnalysis) classify(id *ast.Ident, r *resource) string {
	obj := la.info.Uses[id]
	isBody := obj != nil && r.bodyVars[obj]
	if p, ok := la.parents[id].(*ast.SelectorExpr); ok && p.X == id {
		sel := p.Sel.Name
		if call, ok := la.parents[p].(*ast.CallExpr); ok && call.Fun == p {
			// v.Close() / v.Stop() — or body.Close() on a Body alias.
			for _, m := range r.spec.closeMethods {
				if sel == m {
					return "release"
				}
			}
			if isBody && sel == "Close" {
				return "release"
			}
			// v as the receiver of a consuming module method.
			if la.calleeReleases(call, 0, r.spec) {
				return "consumed"
			}
			return "none" // plain method use (Read, Name, ...)
		}
		if r.spec.bodyClose && sel == "Body" {
			// resp.Body.Close()
			if p2, ok := la.parents[p].(*ast.SelectorExpr); ok && p2.Sel.Name == "Close" {
				if call, ok := la.parents[p2].(*ast.CallExpr); ok && call.Fun == p2 {
					return "release"
				}
			}
			// resp.Body flowing as a value: classify the selector itself.
			return la.classifyValue(p, r)
		}
		if r.spec.recvC && sel == "C" {
			if u, ok := la.parents[p].(*ast.UnaryExpr); ok && u.Op == token.ARROW {
				return "received"
			}
			if _, ok := la.parents[p].(*ast.RangeStmt); ok {
				return "received"
			}
		}
		return "none" // other field/method selection
	}
	if call, ok := la.parents[id].(*ast.CallExpr); ok && call.Fun == id {
		if r.spec.callValue {
			return "release"
		}
		return "none"
	}
	return la.classifyValue(id, r)
}

// classifyValue walks up from a value use to the consuming statement.
func (la *lifeAnalysis) classifyValue(e ast.Node, r *resource) string {
	cur := e
	for {
		p := la.parents[cur]
		if p == nil {
			return "none"
		}
		switch pp := p.(type) {
		case *ast.ParenExpr:
			cur = p
		case *ast.CompositeLit, *ast.KeyValueExpr:
			return "stored"
		case *ast.UnaryExpr:
			if pp.Op == token.AND {
				cur = p
				continue
			}
			return "none"
		case *ast.CallExpr:
			if pp.Fun == cur {
				return "none"
			}
			if tv, ok := la.info.Types[pp.Fun]; ok && tv.IsType() {
				cur = p // conversion: the value flows through
				continue
			}
			if builtinName(la.info, pp.Fun) == "append" {
				return "stored"
			}
			for i, a := range pp.Args {
				if a == cur {
					if la.calleeReleases(pp, i+1, r.spec) {
						return "consumed"
					}
					return "none"
				}
			}
			return "none"
		case *ast.ReturnStmt:
			return "returned"
		case *ast.SendStmt:
			if pp.Value == cur {
				return "stored"
			}
			return "none"
		case *ast.GoStmt:
			return "goroutine"
		case *ast.AssignStmt:
			for i, rhs := range pp.Rhs {
				if rhs != cur {
					continue
				}
				if len(pp.Lhs) != len(pp.Rhs) {
					return "stored"
				}
				if la.localLHS(pp.Lhs[i]) {
					return "none" // alias to a local, tracked by collectAliases
				}
				return "stored"
			}
			return "none" // on the Lhs: a write target, not a value use
		case *ast.ValueSpec:
			for i := range pp.Values {
				if pp.Values[i] != cur {
					continue
				}
				if i < len(pp.Names) && len(pp.Names) == len(pp.Values) {
					return "none" // alias to a local declaration
				}
				return "stored"
			}
			return "none"
		case *ast.IndexExpr:
			if pp.X == cur {
				return "none" // indexing the value, not storing it
			}
			return "none"
		default:
			return "none"
		}
	}
}

// localLHS reports whether an assignment destination is a plain local
// variable (an alias binding rather than a heap store).
func (la *lifeAnalysis) localLHS(lhs ast.Expr) bool {
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok {
		return false
	}
	if id.Name == "_" {
		return true // discarding is not a store
	}
	obj := la.info.Defs[id]
	if obj == nil {
		obj = la.info.Uses[id]
	}
	v, ok := obj.(*types.Var)
	return ok && v.Pos() >= la.n.Decl.Pos() && v.Pos() <= la.n.Decl.End()
}

// collectAliases adds flow-insensitive aliases of the resource inside
// body: `x := v` tracks x, and for responses `b := v.Body` tracks b as
// a Body alias (so b.Close() releases).
func (la *lifeAnalysis) collectAliases(body ast.Node, r *resource) {
	for changed := true; changed; {
		changed = false
		ast.Inspect(body, func(node ast.Node) bool {
			as, ok := node.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i := range as.Rhs {
				lhsID, ok := ast.Unparen(as.Lhs[i]).(*ast.Ident)
				if !ok || lhsID.Name == "_" {
					continue
				}
				lhsObj := la.info.Defs[lhsID]
				if lhsObj == nil {
					lhsObj = la.info.Uses[lhsID]
				}
				if lhsObj == nil {
					continue
				}
				switch rhs := ast.Unparen(as.Rhs[i]).(type) {
				case *ast.Ident:
					if obj := la.info.Uses[rhs]; obj != nil && r.vars[obj] && !r.vars[lhsObj] {
						r.vars[lhsObj] = true
						changed = true
					}
				case *ast.SelectorExpr:
					if !r.spec.bodyClose || rhs.Sel.Name != "Body" {
						continue
					}
					if x, ok := rhs.X.(*ast.Ident); ok {
						if obj := la.info.Uses[x]; obj != nil && r.vars[obj] && !r.bodyVars[lhsObj] {
							r.bodyVars[lhsObj] = true
							changed = true
						}
					}
				}
			}
			return true
		})
	}
}

// lifeEvent is one state transition inside a block, in source order.
type lifeEvent struct {
	res  *resource
	kind string // "acquire", or a kill: "released","deferred","received","consumed","returned","stored","goroutine","captured"
}

// run analyzes every context of the function — the declared body plus
// each literal body — and returns the tracked resources sorted by
// acquire position.
func (la *lifeAnalysis) run() []*resource {
	var all []*resource
	all = append(all, la.runContext(la.n.Decl.Body, la.n.Decl)...)
	for _, lit := range la.lits {
		all = append(all, la.runContext(lit.Body, lit)...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].pos < all[j].pos })
	return all
}

// runContext runs the must-release dataflow over one function body.
func (la *lifeAnalysis) runContext(body *ast.BlockStmt, owner ast.Node) []*resource {
	resources := la.collectAcquires(body, owner)
	if len(resources) == 0 {
		return nil
	}
	var tracked []*resource
	for _, r := range resources {
		if r.immediate == "" {
			if len(tracked) < 64 {
				r.bit = 1 << uint(len(tracked))
				tracked = append(tracked, r)
			} else {
				r.immediate = "untracked" // beyond the 64-bit set: reported as such, never as a leak
			}
		}
	}
	if len(tracked) > 0 {
		cfg := BuildCFG(body, la.info, la.st.noret)
		events := la.blockEvents(cfg, tracked, owner)
		la.solve(cfg, events, tracked)
	}
	return resources
}

// collectAcquires matches the acquire table against every call in the
// context (literal bodies belong to their own context) and binds each
// resource to its variable and paired error variable.
func (la *lifeAnalysis) collectAcquires(body *ast.BlockStmt, owner ast.Node) []*resource {
	var out []*resource
	ast.Inspect(body, func(node ast.Node) bool {
		if lit, ok := node.(*ast.FuncLit); ok && lit.Body != body {
			return false
		}
		call, ok := node.(*ast.CallExpr)
		if !ok {
			return true
		}
		spec, ok := matchAcquire(la.info, call)
		if !ok {
			return true
		}
		r := &resource{
			spec:     spec,
			pos:      call.Pos(),
			src:      exprDesc(call.Fun),
			vars:     make(map[types.Object]bool),
			bodyVars: make(map[types.Object]bool),
		}
		parent := la.parents[call]
		for {
			if _, ok := parent.(*ast.ParenExpr); !ok {
				break
			}
			parent = la.parents[parent]
		}
		switch p := parent.(type) {
		case *ast.AssignStmt:
			if len(p.Rhs) == 1 && ast.Unparen(p.Rhs[0]) == call {
				// Assigning straight into a field, element, or other
				// non-ident target stores the resource: ownership moves,
				// nothing to track.
				if idx := r.spec.result; idx < len(p.Lhs) {
					if _, ok := ast.Unparen(p.Lhs[idx]).(*ast.Ident); !ok {
						return true
					}
				}
				la.bind(r, call, p.Lhs)
			}
		case *ast.ValueSpec:
			if len(p.Values) == 1 && ast.Unparen(p.Values[0]) == call {
				idents := make([]ast.Expr, len(p.Names))
				for i, n := range p.Names {
					idents[i] = n
				}
				la.bind(r, call, idents)
			}
		case *ast.ExprStmt:
			r.immediate = "discarded"
		default:
			// Returned, passed along, or part of a larger expression:
			// ownership moves immediately; nothing to track.
			return true
		}
		if r.immediate == "" && len(r.vars) == 0 {
			// Bound to blank: acquired and unreleasable.
			r.immediate = "discarded"
		}
		if r.immediate == "" {
			la.collectAliases(body, r)
		}
		out = append(out, r)
		return true
	})
	return out
}

// bind attaches the resource variable (lhs at the spec's result index)
// and the paired error variable to r. A blank resource binding leaves
// vars empty, which the caller reports as discarded.
func (la *lifeAnalysis) bind(r *resource, call *ast.CallExpr, lhs []ast.Expr) {
	results := 1
	if tv, ok := la.info.Types[call]; ok {
		if tuple, ok := tv.Type.(*types.Tuple); ok {
			results = tuple.Len()
		}
	}
	if len(lhs) != results || r.spec.result >= len(lhs) {
		return
	}
	bindObj := func(e ast.Expr) types.Object {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok || id.Name == "_" {
			return nil
		}
		if obj := la.info.Defs[id]; obj != nil {
			return obj
		}
		return la.info.Uses[id]
	}
	if obj := bindObj(lhs[r.spec.result]); obj != nil {
		r.vars[obj] = true
		r.name = obj.Name()
	}
	if idx := errorResultIndex(la.info, call); idx >= 0 && idx < len(lhs) {
		r.errVar = bindObj(lhs[idx])
	}
}

// errorResultIndex returns the index of the call's error result, or -1.
func errorResultIndex(info *types.Info, call *ast.CallExpr) int {
	tv, ok := info.Types[call]
	if !ok {
		return -1
	}
	tuple, ok := tv.Type.(*types.Tuple)
	if !ok {
		return -1
	}
	for i := 0; i < tuple.Len(); i++ {
		if n, ok := tuple.At(i).Type().(*types.Named); ok &&
			n.Obj().Pkg() == nil && n.Obj().Name() == "error" {
			return i
		}
	}
	return -1
}

// blockEvents precomputes each block's state transitions in source
// order: acquires set a resource live, kills clear it. Defer context
// turns releases into deferred kills (registered now, runs at exit);
// non-deferred literal bodies turn any use into a capture transfer.
func (la *lifeAnalysis) blockEvents(cfg *CFG, tracked []*resource, owner ast.Node) [][]lifeEvent {
	byPos := make(map[token.Pos]*resource, len(tracked))
	for _, r := range tracked {
		byPos[r.pos] = r
	}
	events := make([][]lifeEvent, len(cfg.Blocks))
	for _, b := range cfg.Blocks {
		for _, n := range b.Nodes {
			la.nodeEvents(n, byPos, tracked, owner, false, &events[b.Index])
		}
	}
	return events
}

// nodeEvents walks one shallow block node collecting events. deferred
// marks that we are under a defer statement.
func (la *lifeAnalysis) nodeEvents(node ast.Node, byPos map[token.Pos]*resource, tracked []*resource, owner ast.Node, deferred bool, out *[]lifeEvent) {
	switch s := node.(type) {
	case *ast.DeferStmt:
		la.nodeEvents(s.Call, byPos, tracked, owner, true, out)
		return
	}
	ast.Inspect(node, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.DeferStmt:
			if n != node {
				la.nodeEvents(x.Call, byPos, tracked, owner, true, out)
				return false
			}
		case *ast.FuncLit:
			if deferred {
				// Deferred literal: its body runs at exit — releases
				// inside count as deferred kills, other uses are inert.
				la.litReleases(x, tracked, out)
				return false
			}
			// A non-deferred literal capturing a live resource moves
			// ownership out of this frame.
			la.litCaptures(x, tracked, out)
			return false
		case *ast.CallExpr:
			if r, ok := byPos[x.Pos()]; ok {
				*out = append(*out, lifeEvent{res: r, kind: "acquire"})
			}
		case *ast.Ident:
			obj := la.info.Uses[x]
			if obj == nil {
				return true
			}
			for _, r := range tracked {
				if !r.vars[obj] && !r.bodyVars[obj] {
					continue
				}
				kind := la.classify(x, r)
				switch kind {
				case "release", "received":
					if deferred {
						*out = append(*out, lifeEvent{res: r, kind: "deferred"})
					} else if kind == "release" {
						*out = append(*out, lifeEvent{res: r, kind: "released"})
					} else {
						*out = append(*out, lifeEvent{res: r, kind: "received"})
					}
				case "consumed", "returned", "stored", "goroutine":
					if deferred {
						*out = append(*out, lifeEvent{res: r, kind: "deferred"})
					} else {
						*out = append(*out, lifeEvent{res: r, kind: kind})
					}
				}
			}
		}
		return true
	})
}

// litReleases emits deferred kills for releases inside a deferred
// literal's body.
func (la *lifeAnalysis) litReleases(lit *ast.FuncLit, tracked []*resource, out *[]lifeEvent) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := la.info.Uses[id]
		if obj == nil {
			return true
		}
		for _, r := range tracked {
			if !r.vars[obj] && !r.bodyVars[obj] {
				continue
			}
			switch la.classify(id, r) {
			case "release", "received", "consumed":
				*out = append(*out, lifeEvent{res: r, kind: "deferred"})
			}
		}
		return true
	})
}

// litCaptures emits capture transfers for resources referenced inside a
// non-deferred literal.
func (la *lifeAnalysis) litCaptures(lit *ast.FuncLit, tracked []*resource, out *[]lifeEvent) {
	seen := make(map[*resource]bool)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := la.info.Uses[id]
		if obj == nil {
			return true
		}
		for _, r := range tracked {
			if (r.vars[obj] || r.bodyVars[obj]) && !seen[r] {
				seen[r] = true
				*out = append(*out, lifeEvent{res: r, kind: "captured"})
			}
		}
		return true
	})
}

// edgeKill computes the resources known nil on one branch edge: after
// `v, err := acquire()`, `err != nil` implies v is nil on the true
// edge, `err == nil` implies it on the false edge.
func edgeKill(info *types.Info, b *CFGBlock, succIdx int, tracked []*resource) uint64 {
	if b.Cond == nil || len(b.Succs) != 2 {
		return 0
	}
	be, ok := ast.Unparen(b.Cond).(*ast.BinaryExpr)
	if !ok || (be.Op != token.NEQ && be.Op != token.EQL) {
		return 0
	}
	var errID *ast.Ident
	xNil := isNilIdent(info, be.X)
	yNil := isNilIdent(info, be.Y)
	switch {
	case yNil:
		errID, _ = ast.Unparen(be.X).(*ast.Ident)
	case xNil:
		errID, _ = ast.Unparen(be.Y).(*ast.Ident)
	}
	if errID == nil {
		return 0
	}
	obj := info.Uses[errID]
	if obj == nil {
		return 0
	}
	// NEQ: non-nil error on the true edge (0). EQL: on the false edge (1).
	killEdge := 0
	if be.Op == token.EQL {
		killEdge = 1
	}
	if succIdx != killEdge {
		return 0
	}
	var mask uint64
	for _, r := range tracked {
		if r.errVar != nil && r.errVar == obj {
			mask |= r.bit
		}
	}
	return mask
}

func isNilIdent(info *types.Info, e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := info.Uses[id].(*types.Nil)
	return isNil
}

// solve runs the forward may-leak dataflow to a fixpoint and records
// each resource's fate. A resource live on entry to Exit leaks on some
// path; Halt paths (panic, process exit) are not leaks.
func (la *lifeAnalysis) solve(cfg *CFG, events [][]lifeEvent, tracked []*resource) {
	nb := len(cfg.Blocks)
	in := make([]uint64, nb)
	out := make([]uint64, nb)
	apply := func(state uint64, evs []lifeEvent, record bool) uint64 {
		for _, e := range evs {
			if e.kind == "acquire" {
				state |= e.res.bit
				continue
			}
			if state&e.res.bit != 0 && record {
				if e.res.reasons == nil {
					e.res.reasons = make(map[string]bool)
				}
				e.res.reasons[e.kind] = true
			}
			state &^= e.res.bit
		}
		return state
	}
	for changed := true; changed; {
		changed = false
		for _, b := range cfg.Blocks {
			o := apply(in[b.Index], events[b.Index], false)
			if o != out[b.Index] {
				out[b.Index] = o
				changed = true
			}
			for i, s := range b.Succs {
				contrib := o &^ edgeKill(la.info, b, i, tracked)
				if in[s.Index]|contrib != in[s.Index] {
					in[s.Index] |= contrib
					changed = true
				}
			}
		}
	}
	for _, b := range cfg.Blocks {
		apply(in[b.Index], events[b.Index], true)
	}
	leakedMask := in[cfg.Exit.Index]
	for _, r := range tracked {
		r.leaked = leakedMask&r.bit != 0
	}
}

// ---------------------------------------------------------------------------
// Lifecycle report (cmd/detlint -leaks)

// LeakReport inventories every tracked resource acquisition in the
// module: its kind, source, and fate (released, deferred, transferred,
// leaked, ...), with hot-path chains where the function is reachable
// from a //detlint:hotpath entry. Ordering is deterministic and each
// site carries a motion-tolerant fingerprint.
type LeakReport struct {
	Functions      []LeakFunc `json:"functions"`
	TotalResources int        `json:"total_resources"`
	Leaks          int        `json:"leaks"`
}

// LeakFunc is one function's resource inventory.
type LeakFunc struct {
	Func      string     `json:"func"`
	File      string     `json:"file"`
	Hot       bool       `json:"hot"`
	Chain     string     `json:"chain,omitempty"`
	Resources []LeakSite `json:"resources"`
}

// LeakSite is one tracked acquisition.
type LeakSite struct {
	Check       string `json:"check"`
	Kind        string `json:"kind"`
	File        string `json:"file"`
	Line        int    `json:"line"`
	Source      string `json:"source"`
	Var         string `json:"var,omitempty"`
	Outcome     string `json:"outcome"`
	Fingerprint string `json:"fingerprint"`
}

// LifecycleReport builds the resource-lifecycle report over the loaded
// packages. File paths are absolute; callers relativize for output.
func LifecycleReport(pkgs []*Package) *LeakReport {
	g := BuildGraph(pkgs)
	life := g.lifeState()
	hot := g.allocState()
	rep := &LeakReport{Functions: []LeakFunc{}}
	for _, n := range g.Nodes() {
		resources := life.resources[n]
		if len(resources) == 0 {
			continue
		}
		pos := n.Pkg.Fset.Position(n.Decl.Pos())
		_, isHot := hot.hotDist[n]
		lf := LeakFunc{Func: n.Name(), File: pos.Filename, Hot: isHot}
		if isHot {
			lf.Chain = hot.hotChain(n)
		}
		for _, r := range resources {
			rp := n.Pkg.Fset.Position(r.pos)
			outcome := r.outcome()
			if outcome == "leaked" || outcome == "discarded" {
				rep.Leaks++
			}
			lf.Resources = append(lf.Resources, LeakSite{
				Check:       r.spec.check,
				Kind:        r.spec.kind,
				File:        rp.Filename,
				Line:        rp.Line,
				Source:      r.src,
				Var:         r.name,
				Outcome:     outcome,
				Fingerprint: r.spec.check + "\x1f" + n.ID + "\x1f" + r.spec.kind + " from " + r.src,
			})
		}
		rep.TotalResources += len(lf.Resources)
		rep.Functions = append(rep.Functions, lf)
	}
	sort.SliceStable(rep.Functions, func(i, j int) bool {
		a, b := rep.Functions[i], rep.Functions[j]
		if a.Hot != b.Hot {
			return a.Hot
		}
		return a.Func < b.Func
	})
	return rep
}

// Relativize rewrites the report's absolute file paths relative to the
// module root.
func (r *LeakReport) Relativize(root string) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return
	}
	for i := range r.Functions {
		r.Functions[i].File = relPath(r.Functions[i].File, abs)
		for j := range r.Functions[i].Resources {
			r.Functions[i].Resources[j].File = relPath(r.Functions[i].Resources[j].File, abs)
		}
	}
}

// Diagnostics converts the report's sites into plain diagnostics (check
// name "lifecycle") so the SARIF renderer can carry the report.
func (r *LeakReport) Diagnostics() []Diagnostic {
	var out []Diagnostic
	for _, f := range r.Functions {
		for _, s := range f.Resources {
			out = append(out, Diagnostic{
				Check:   "lifecycle",
				File:    s.File,
				Line:    s.Line,
				Col:     1,
				Message: s.Kind + " from " + s.Source + ": " + s.Outcome,
			})
		}
	}
	return out
}

// WriteText renders the report for humans: hot functions first, each
// resource with its source and fate.
func (r *LeakReport) WriteText(w io.Writer) error {
	var sb strings.Builder
	sb.WriteString("resource-lifecycle report: ")
	sb.WriteString(strconv.Itoa(len(r.Functions)))
	sb.WriteString(" function(s), ")
	sb.WriteString(strconv.Itoa(r.TotalResources))
	sb.WriteString(" tracked resource(s), ")
	sb.WriteString(strconv.Itoa(r.Leaks))
	sb.WriteString(" leak(s)\n")
	for i := range r.Functions {
		f := &r.Functions[i]
		sb.WriteByte('\n')
		sb.WriteString(f.Func)
		if f.Hot {
			sb.WriteString("  [hot]")
		}
		sb.WriteByte('\n')
		if f.Chain != "" {
			sb.WriteString("  via: ")
			sb.WriteString(f.Chain)
			sb.WriteByte('\n')
		}
		for _, s := range f.Resources {
			sb.WriteString("  ")
			sb.WriteString(s.File)
			sb.WriteByte(':')
			sb.WriteString(strconv.Itoa(s.Line))
			sb.WriteString(" [")
			sb.WriteString(s.Check)
			sb.WriteString("] ")
			sb.WriteString(s.Kind)
			sb.WriteString(" from ")
			sb.WriteString(s.Source)
			if s.Var != "" {
				sb.WriteString(" (")
				sb.WriteString(s.Var)
				sb.WriteString(")")
			}
			sb.WriteString(" -> ")
			sb.WriteString(s.Outcome)
			sb.WriteByte('\n')
		}
	}
	_, err := io.WriteString(w, sb.String())
	return err
}
