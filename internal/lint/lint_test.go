package lint

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"strings"
	"testing"
)

// goldenCases maps each testdata/src directory to the checks it
// exercises and the synthetic import path the package is loaded under
// (path-scoped rules — internal/, vclock exemptions — key off it; the
// interprocedural fixtures load under their own base name so call-chain
// renderings like "taint.emit → taint.stamp" match the source).
// staleallow runs alongside walltime because it judges directives only
// for checks that actually ran.
var goldenCases = []struct {
	dir    string
	checks []*Check
	path   string
}{
	{"walltime", []*Check{WalltimeCheck}, "repro/internal/walltimetest"},
	{"globalrand", []*Check{GlobalrandCheck}, "repro/internal/globalrandtest"},
	{"maporder", []*Check{MaporderCheck}, "repro/internal/maporder"},
	{"envread", []*Check{EnvreadCheck}, "repro/internal/envreadtest"},
	{"errdrop", []*Check{ErrdropCheck}, "repro/internal/errdroptest"},
	{"mutexcopy", []*Check{MutexcopyCheck}, "repro/internal/mutexcopytest"},
	{"taint", []*Check{TaintCheck}, "repro/internal/taint"},
	{"tracesink", []*Check{TaintCheck}, "repro/internal/trace"},
	{"gorleak", []*Check{GorleakCheck}, "repro/internal/gorleak"},
	{"lockheld", []*Check{LockheldCheck}, "repro/internal/lockheld"},
	{"allocloop", []*Check{AllocloopCheck}, "repro/internal/allocloop"},
	{"boxing", []*Check{BoxingCheck}, "repro/internal/boxing"},
	{"retain", []*Check{RetainCheck}, "repro/internal/retain"},
	{"closeleak", []*Check{CloseleakCheck}, "repro/internal/closeleak"},
	{"bodyclose", []*Check{BodycloseCheck}, "repro/internal/bodyclose"},
	{"cancelleak", []*Check{CancelleakCheck}, "repro/internal/cancelleak"},
	{"tickleak", []*Check{TickleakCheck}, "repro/internal/tickleak"},
	{"deferhot", []*Check{DeferhotCheck}, "repro/internal/deferhot"},
	{"staleallow", []*Check{WalltimeCheck, StaleallowCheck}, "repro/internal/staleallowtest"},
}

// wantRe matches expected-diagnostic comments: // want `regexp` or
// // want "regexp".
var wantRe = regexp.MustCompile("// want [`\"](.+)[`\"]")

// loadTestPkg parses and type-checks one testdata package under a
// synthetic import path, reusing the production allow-directive parsing.
func loadTestPkg(t *testing.T, fset *token.FileSet, std types.Importer, dir, path string) *Package {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("read %s: %v", dir, err)
	}
	var files []*ast.File
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parse: %v", err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: std}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		t.Fatalf("type-check %s: %v", dir, err)
	}
	pkg := &Package{Path: path, Dir: dir, Fset: fset, Files: files, Types: tpkg, Info: info}
	for _, f := range files {
		pkg.allows = append(pkg.allows, parseAllows(fset, f)...)
	}
	return pkg
}

// wantsIn extracts want expectations (file:line → regexps) from the raw
// sources of a testdata directory.
func wantsIn(t *testing.T, dir string) map[string][]*regexp.Regexp {
	t.Helper()
	wants := make(map[string][]*regexp.Regexp)
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		full := filepath.Join(dir, e.Name())
		data, err := os.ReadFile(full)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRe.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			re, err := regexp.Compile(m[1])
			if err != nil {
				t.Fatalf("%s:%d: bad want regexp %q: %v", full, i+1, m[1], err)
			}
			key := keyAt(full, i+1)
			wants[key] = append(wants[key], re)
		}
	}
	return wants
}

func keyAt(file string, line int) string {
	return file + ":" + itoa(line)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [12]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

func TestGolden(t *testing.T) {
	fset := token.NewFileSet()
	std := importer.ForCompiler(fset, "source", nil)
	for _, tc := range goldenCases {
		t.Run(tc.dir, func(t *testing.T) {
			dir := filepath.Join("testdata", "src", tc.dir)
			pkg := loadTestPkg(t, fset, std, dir, tc.path)
			diags := Run([]*Package{pkg}, tc.checks)
			wants := wantsIn(t, dir)

			matched := make(map[string]int)
			for _, d := range diags {
				key := keyAt(d.File, d.Line)
				res := wants[key]
				if len(res) == 0 {
					t.Errorf("unexpected diagnostic %s", d)
					continue
				}
				ok := false
				for _, re := range res {
					if re.MatchString(d.Message) {
						ok = true
						break
					}
				}
				if !ok {
					t.Errorf("diagnostic %s does not match any want at %s", d, key)
				}
				matched[key]++
			}
			for key, res := range wants {
				if matched[key] < len(res) {
					t.Errorf("want at %s: expected %d diagnostics, got %d", key, len(res), matched[key])
				}
			}
		})
	}
}

// TestWalltimeVclockExempt reloads the walltime fixture — full of
// time.Now calls — under internal/vclock's own import path: the one
// package allowed to touch the wall clock must produce zero findings.
func TestWalltimeVclockExempt(t *testing.T) {
	fset := token.NewFileSet()
	std := importer.ForCompiler(fset, "source", nil)
	dir := filepath.Join("testdata", "src", "walltime")
	pkg := loadTestPkg(t, fset, std, dir, "repro/internal/vclock")
	if diags := Run([]*Package{pkg}, []*Check{WalltimeCheck}); len(diags) != 0 {
		t.Errorf("vclock package must be exempt from walltime, got %v", diags)
	}
}

// TestEnvreadScope reloads the envread fixture under a cmd/ path:
// binaries may read the environment, so the check must stay silent.
func TestEnvreadScope(t *testing.T) {
	fset := token.NewFileSet()
	std := importer.ForCompiler(fset, "source", nil)
	dir := filepath.Join("testdata", "src", "envread")
	pkg := loadTestPkg(t, fset, std, dir, "repro/cmd/envreadtool")
	if diags := Run([]*Package{pkg}, []*Check{EnvreadCheck}); len(diags) != 0 {
		t.Errorf("cmd/ packages may read the environment, got %v", diags)
	}
}

// TestFileLevelAllow verifies a //detlint:allow directive in the package
// doc block silences a check for the entire file.
func TestFileLevelAllow(t *testing.T) {
	fset := token.NewFileSet()
	std := importer.ForCompiler(fset, "source", nil)
	dir := filepath.Join("testdata", "src", "allowfile")
	pkg := loadTestPkg(t, fset, std, dir, "repro/internal/allowfiletest")
	if diags := Run([]*Package{pkg}, []*Check{WalltimeCheck}); len(diags) != 0 {
		t.Errorf("file-level allow must suppress every walltime finding, got %v", diags)
	}
	// The directive names only walltime: other checks still fire.
	diags := Run([]*Package{pkg}, []*Check{EnvreadCheck})
	if len(diags) != 1 {
		t.Errorf("file-level walltime allow must not silence envread, got %v", diags)
	}
}

// TestModuleIsClean runs the full suite over the real module: the
// determinism contract must hold on every commit. Findings accepted in
// the committed baseline (the allocation-churn backlog the hot-path
// checks surfaced on adoption) are suppressed; anything new fails.
// Skipped in -short mode because type-checking the module plus its
// stdlib imports from source takes a few seconds.
func TestModuleIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("module-wide lint is not a -short test")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatalf("abs: %v", err)
	}
	pkgs, err := LoadModule(root)
	if err != nil {
		t.Fatalf("load module: %v", err)
	}
	if len(pkgs) < 30 {
		t.Fatalf("loaded only %d packages; loader is missing most of the module", len(pkgs))
	}
	diags := Run(pkgs, Checks())
	Relativize(diags, root)
	base, err := ReadBaseline(filepath.Join(root, "detlint-baseline.json"))
	if err != nil {
		t.Fatalf("read baseline: %v", err)
	}
	kept, _ := base.Filter(diags)
	for _, d := range kept {
		t.Errorf("%s", d)
	}
}

// renderFixtureSuite loads every golden fixture from scratch (fresh
// FileSet, fresh importer, fresh type-check) and runs the full check
// suite over all of them at once, returning the rendered diagnostics as
// one string. Each call rebuilds everything, so two calls agreeing
// byte-for-byte means the pipeline's ordering is intrinsic, not an
// accident of reused state.
func renderFixtureSuite(t *testing.T) string {
	t.Helper()
	fset := token.NewFileSet()
	std := importer.ForCompiler(fset, "source", nil)
	var pkgs []*Package
	for _, tc := range goldenCases {
		dir := filepath.Join("testdata", "src", tc.dir)
		pkgs = append(pkgs, loadTestPkg(t, fset, std, dir, tc.path))
	}
	var sb strings.Builder
	for _, d := range Run(pkgs, Checks()) {
		sb.WriteString(d.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// TestAnalyzerDeterminism asserts the analyzer's own output contract:
// byte-identical diagnostics across repeated runs and across GOMAXPROCS
// settings. The pipeline is single-threaded by construction, but this
// test pins that down so a future parallel package loader cannot
// silently reorder findings.
func TestAnalyzerDeterminism(t *testing.T) {
	first := renderFixtureSuite(t)
	if first == "" {
		t.Fatal("fixture suite produced no diagnostics; determinism comparison is vacuous")
	}
	if again := renderFixtureSuite(t); again != first {
		t.Errorf("repeated run diverged:\n--- first ---\n%s--- second ---\n%s", first, again)
	}
	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)
	if serial := renderFixtureSuite(t); serial != first {
		t.Errorf("GOMAXPROCS=1 run diverged:\n--- parallel ---\n%s--- serial ---\n%s", first, serial)
	}
}
