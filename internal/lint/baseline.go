package lint

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
)

// Baseline is a recorded multiset of accepted findings, used to adopt
// detlint (or a new check) incrementally: pre-existing findings are
// suppressed, anything new fails the build. Entries are keyed by a
// line-number-free fingerprint — check name, file, and the message with
// embedded file:line references normalized away — so unrelated edits
// that shift line numbers do not invalidate the baseline, while a
// genuinely new finding (different check, file, or message) surfaces.
//
// The fingerprint carries a count: two identical findings in one file
// are two entries of the same multiset, so fixing one of them surfaces
// nothing, but introducing a third fails.
type Baseline struct {
	Findings []BaselineEntry `json:"findings"`
}

// BaselineEntry is one fingerprint with its accepted occurrence count.
type BaselineEntry struct {
	Check   string `json:"check"`
	File    string `json:"file"`
	Message string `json:"message"`
	Count   int    `json:"count"`
}

// lineRefRe matches file:line references detlint embeds in messages
// (chain positions like "taint.go:26"); they are stripped from
// fingerprints so baselines survive line shifts.
var lineRefRe = regexp.MustCompile(`\.go:\d+`)

// Fingerprint returns the baseline key for a diagnostic.
func Fingerprint(d Diagnostic) string {
	return d.Check + "\x1f" + d.File + "\x1f" + lineRefRe.ReplaceAllString(d.Message, ".go")
}

func entryKey(e BaselineEntry) string {
	return e.Check + "\x1f" + e.File + "\x1f" + lineRefRe.ReplaceAllString(e.Message, ".go")
}

// NewBaseline records the given diagnostics as the accepted set.
func NewBaseline(diags []Diagnostic) *Baseline {
	counts := make(map[string]int)
	byKey := make(map[string]Diagnostic)
	for _, d := range diags {
		key := Fingerprint(d)
		counts[key]++
		if _, seen := byKey[key]; !seen {
			byKey[key] = d
		}
	}
	keys := make([]string, 0, len(counts))
	for key := range counts {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	b := &Baseline{Findings: make([]BaselineEntry, 0, len(keys))}
	for _, key := range keys {
		d := byKey[key]
		b.Findings = append(b.Findings, BaselineEntry{
			Check:   d.Check,
			File:    d.File,
			Message: lineRefRe.ReplaceAllString(d.Message, ".go"),
			Count:   counts[key],
		})
	}
	return b
}

// Total returns the number of accepted findings (the sum of entry
// counts) — the quantity the ratchet caps so the baseline only shrinks.
func (b *Baseline) Total() int {
	n := 0
	for _, e := range b.Findings {
		n += e.Count
	}
	return n
}

// Filter splits diagnostics into new findings (kept) and ones covered by
// the baseline (suppressed). Each baseline entry suppresses at most
// Count occurrences of its fingerprint; diagnostics beyond the budget —
// or with no entry at all — are kept. Input order is preserved in both
// halves.
func (b *Baseline) Filter(diags []Diagnostic) (kept, suppressed []Diagnostic) {
	budget := make(map[string]int, len(b.Findings))
	for _, e := range b.Findings {
		budget[entryKey(e)] += e.Count
	}
	for _, d := range diags {
		key := Fingerprint(d)
		if budget[key] > 0 {
			budget[key]--
			suppressed = append(suppressed, d)
			continue
		}
		kept = append(kept, d)
	}
	return kept, suppressed
}

// Prune returns the entries of b whose fingerprint no longer occurs in
// cur — accepted findings that have since been fixed. Re-recording a
// baseline prints these so suppression rot is visible in the diff.
// Entries keep b's order (sorted by fingerprint, as Write emits them).
func (b *Baseline) Prune(cur *Baseline) []BaselineEntry {
	live := make(map[string]bool, len(cur.Findings))
	for _, e := range cur.Findings {
		live[entryKey(e)] = true
	}
	var stale []BaselineEntry
	for _, e := range b.Findings {
		if !live[entryKey(e)] {
			stale = append(stale, e)
		}
	}
	return stale
}

// ReadBaseline loads a baseline file written by Write.
func ReadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("baseline %s: %w", path, err)
	}
	return &b, nil
}

// Write renders the baseline as indented JSON, entries sorted by
// fingerprint, so regenerating an unchanged baseline is a no-op diff.
func (b *Baseline) Write(w io.Writer) error {
	if b.Findings == nil {
		b.Findings = []BaselineEntry{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}
