package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// buildFromSrc parses a single function and builds its CFG with no type
// info — the syntactic terminator fallback (panic, os.Exit, log.Fatal)
// is part of what these tests pin down.
func buildFromSrc(t *testing.T, body string) *CFG {
	t.Helper()
	src := "package p\n\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "cfg.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	decl := file.Decls[len(file.Decls)-1].(*ast.FuncDecl)
	return BuildCFG(decl.Body, nil, nil)
}

// TestCFGConstruction pins the block/edge structure for each control
// construct. The rendering is "bN kind -> succs [cond]" per block in
// construction order; stability of this string is part of the
// determinism contract (the dataflow iterates blocks by index).
func TestCFGConstruction(t *testing.T) {
	cases := []struct {
		name string
		body string
		want string
	}{
		{
			name: "straightline",
			body: "x := 1\n_ = x",
			want: `
b0 entry -> b1
b1 exit
b2 halt
`,
		},
		{
			name: "if-no-else",
			body: "if x() {\n y()\n}\nz()",
			want: `
b0 entry -> b3 b4 [x()]
b1 exit
b2 halt
b3 if.then -> b4
b4 if.done -> b1
`,
		},
		{
			name: "if-else-both-return",
			body: "if x() {\n return\n} else {\n return\n}",
			want: `
b0 entry -> b3 b4 [x()]
b1 exit
b2 halt
b3 if.then -> b1
b4 if.else -> b1
`,
		},
		{
			name: "for-break-continue",
			body: "for i := 0; i < n; i++ {\n if a() {\n  break\n }\n if b() {\n  continue\n }\n c()\n}",
			want: `
b0 entry -> b3
b1 exit
b2 halt
b3 for.head -> b5 b4 [i < n]
b4 for.done -> b1
b5 for.body -> b7 b8 [a()]
b6 for.post -> b3
b7 if.then -> b4
b8 if.done -> b9 b10 [b()]
b9 if.then -> b6
b10 if.done -> b6
`,
		},
		{
			name: "for-infinite-no-break",
			body: "for {\n x()\n}",
			want: `
b0 entry -> b3
b1 exit
b2 halt
b3 for.head -> b5
b4 for.done -> b1
b5 for.body -> b3
`,
		},
		{
			name: "labeled-break-nested",
			body: "outer:\nfor {\n for {\n  break outer\n }\n}\ndone()",
			want: `
b0 entry -> b3
b1 exit
b2 halt
b3 label.outer -> b4
b4 for.head -> b6
b5 for.done -> b1
b6 for.body -> b7
b7 for.head -> b9
b8 for.done -> b4
b9 for.body -> b5
`,
		},
		{
			name: "range",
			body: "for _, v := range xs {\n use(v)\n}\nafter()",
			want: `
b0 entry -> b3
b1 exit
b2 halt
b3 range.head -> b5 b4
b4 range.done -> b1
b5 range.body -> b3
`,
		},
		{
			name: "switch-fallthrough-default",
			body: "switch x {\ncase 1:\n a()\n fallthrough\ncase 2:\n b()\ndefault:\n c()\n}",
			want: `
b0 entry -> b4 b5 b6
b1 exit
b2 halt
b3 switch.done -> b1
b4 switch.case -> b5
b5 switch.case -> b3
b6 switch.default -> b3
`,
		},
		{
			name: "switch-no-default",
			body: "switch x {\ncase 1:\n a()\n}",
			want: `
b0 entry -> b4 b3
b1 exit
b2 halt
b3 switch.done -> b1
b4 switch.case -> b3
`,
		},
		{
			name: "select-with-default",
			body: "select {\ncase v := <-ch:\n use(v)\ndefault:\n idle()\n}",
			want: `
b0 entry -> b4 b5
b1 exit
b2 halt
b3 select.done -> b1
b4 select.case -> b3
b5 select.default -> b3
`,
		},
		{
			name: "goto-forward",
			body: "if x() {\n goto out\n}\ny()\nout:\nz()",
			want: `
b0 entry -> b4 b5 [x()]
b1 exit
b2 halt
b3 label.out -> b1
b4 if.then -> b3
b5 if.done -> b3
`,
		},
		{
			name: "panic-routes-to-halt",
			body: "if x() {\n panic(\"boom\")\n}\ny()",
			want: `
b0 entry -> b3 b4 [x()]
b1 exit
b2 halt
b3 if.then -> b2
b4 if.done -> b1
`,
		},
		{
			name: "os-exit-routes-to-halt",
			body: "os.Exit(1)\nunreached()",
			want: `
b0 entry -> b2
b1 exit
b2 halt
b3 dead -> b1
`,
		},
		{
			name: "defer-stays-in-block",
			body: "defer f.Close()\nwork()",
			want: `
b0 entry -> b1
b1 exit
b2 halt
`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := buildFromSrc(t, tc.body).String()
			want := strings.TrimPrefix(tc.want, "\n")
			if got != want {
				t.Errorf("CFG mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
			}
		})
	}
}

// TestCFGExitReachable pins the no-return detection the noreturn
// fixpoint builds on: a function whose every path panics or exits never
// reaches Exit, and an unbreakable for{} loop does not either.
func TestCFGExitReachable(t *testing.T) {
	cases := []struct {
		name string
		body string
		want bool
	}{
		{"plain-return", "return", true},
		{"always-panic", "panic(\"x\")", false},
		{"always-exit", "os.Exit(2)", false},
		{"log-fatal", "log.Fatalf(\"x\")", false},
		{"one-path-survives", "if x() {\n panic(\"x\")\n}", true},
		{"infinite-loop", "for {\n spin()\n}", false},
		{"loop-with-break", "for {\n if x() {\n  break\n }\n}", true},
		{"panic-in-loop-body", "for i := 0; i < n; i++ {\n panic(\"x\")\n}", true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := buildFromSrc(t, tc.body).ExitReachable(); got != tc.want {
				t.Errorf("ExitReachable = %v, want %v", got, tc.want)
			}
		})
	}
}

// TestCFGBlockNodesShallow verifies blocks hold only shallow nodes: an
// if's body statements live in the then-block, not the condition block.
func TestCFGBlockNodesShallow(t *testing.T) {
	c := buildFromSrc(t, "a()\nif x() {\n b()\n}")
	entry := c.Entry
	if len(entry.Nodes) != 2 { // a() and the if condition
		t.Fatalf("entry holds %d nodes, want 2 (call + cond)", len(entry.Nodes))
	}
	if _, ok := entry.Nodes[0].(*ast.ExprStmt); !ok {
		t.Errorf("entry node 0 is %T, want *ast.ExprStmt", entry.Nodes[0])
	}
	if _, ok := entry.Nodes[1].(ast.Expr); !ok {
		t.Errorf("entry node 1 is %T, want the bare condition expression", entry.Nodes[1])
	}
}
