package lint

import (
	"go/ast"
	"strings"
)

// globalRandFuncs are the math/rand top-level functions backed by the
// shared, process-global source. Concurrent workers interleave draws on
// that source nondeterministically, so any result derived from it varies
// with scheduling — the exact failure mode the study's worker-count
// invariance forbids.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Read": true, "Seed": true,
	// math/rand/v2 additions, should the module ever migrate.
	"N": true, "IntN": true, "Int32": true, "Int32N": true, "Int64": true,
	"Int64N": true, "UintN": true, "Uint32N": true, "Uint64N": true,
}

// GlobalrandCheck forbids the process-global math/rand source and
// clock-seeded generators. Every random draw in the simulation must come
// from a *rand.Rand threaded from the run's seed so that results are a
// pure function of configuration. internal/webgen/rand.go is the
// sanctioned seed-derivation site and is exempt.
var GlobalrandCheck = &Check{
	Name: "globalrand",
	Doc:  "forbid package-level math/rand functions and clock-seeded rand.New; thread a seeded *rand.Rand",
	Run:  runGlobalrand,
}

func runGlobalrand(p *Pass) {
	for _, f := range p.Pkg.Files {
		pos := p.Fset().Position(f.Package)
		exempt := p.Pkg.Path == "repro/internal/webgen" &&
			strings.HasSuffix(pos.Filename, "/rand.go")
		if exempt {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			pkg, name, ok := pkgFunc(p.Pkg.Info, call)
			if !ok || (pkg != "math/rand" && pkg != "math/rand/v2") {
				return true
			}
			if globalRandFuncs[name] {
				p.Reportf(call.Pos(),
					"rand.%s draws from the process-global source, which interleaves across workers nondeterministically; thread a seeded *rand.Rand instead", name)
				return true
			}
			if name == "New" && len(call.Args) == 1 {
				// rand.New(rand.NewSource(expr)) is the sanctioned shape —
				// unless the seed expression itself reads the clock.
				if containsCallTo(p.Pkg.Info, call.Args[0], "time", "Now") {
					p.Reportf(call.Pos(),
						"rand.New seeded from the wall clock is nondeterministic; derive the seed from the run configuration")
				}
			}
			return true
		})
	}
}
