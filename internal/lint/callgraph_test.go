package lint

import (
	"go/importer"
	"go/token"
	"path/filepath"
	"sort"
	"testing"
)

// calleesOf returns the sorted callee names of the named function, with
// a dynamic/static marker, e.g. "methodvalue.(*Counter).Inc (dynamic)".
func calleesOf(t *testing.T, g *Graph, name string) []string {
	t.Helper()
	for _, n := range g.Nodes() {
		if n.Name() != name {
			continue
		}
		var out []string
		for _, cs := range n.Calls {
			s := cs.Callee.Name()
			if cs.Dynamic {
				s += " (dynamic)"
			} else {
				s += " (static)"
			}
			out = append(out, s)
		}
		sort.Strings(out)
		return out
	}
	t.Fatalf("function %s not found in graph", name)
	return nil
}

// TestMethodValueResolution pins down call-graph resolution of method
// values: x.Method taken as a value — both bound to a variable and
// passed as a function-typed argument — must produce edges to every
// signature-compatible address-taken method.
func TestMethodValueResolution(t *testing.T) {
	fset := token.NewFileSet()
	std := importer.ForCompiler(fset, "source", nil)
	dir := filepath.Join("testdata", "src", "methodvalue")
	pkg := loadTestPkg(t, fset, std, dir, "repro/internal/methodvalue")
	g := BuildGraph([]*Package{pkg})

	assertEdges := func(fn string, want []string) {
		t.Helper()
		got := calleesOf(t, g, fn)
		if len(got) != len(want) {
			t.Fatalf("%s callees = %v, want %v", fn, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("%s callees = %v, want %v", fn, got, want)
				return
			}
		}
	}

	// Drive calls f (a method value — dynamic, resolving to every
	// address-taken bound method with signature func()) and Apply
	// (static).
	assertEdges("methodvalue.Drive", []string{
		"methodvalue.(*Counter).Dec (dynamic)",
		"methodvalue.(*Counter).Inc (dynamic)",
		"methodvalue.Apply (static)",
	})
	// Apply invokes its func() parameter: both matching address-taken
	// method values are candidates.
	assertEdges("methodvalue.Apply", []string{
		"methodvalue.(*Counter).Dec (dynamic)",
		"methodvalue.(*Counter).Inc (dynamic)",
	})
}
