package lint

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// TestBaselineRoundTrip writes a baseline, reads it back, and asserts
// the pre-existing findings are suppressed while an injected new finding
// surfaces — the adopt-incrementally contract.
func TestBaselineRoundTrip(t *testing.T) {
	existing := sampleDiags()
	b := NewBaseline(existing)

	path := filepath.Join(t.TempDir(), "baseline.json")
	var buf bytes.Buffer
	if err := b.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}

	// The recorded findings are fully suppressed.
	kept, suppressed := loaded.Filter(existing)
	if len(kept) != 0 {
		t.Errorf("baseline failed to suppress its own findings: kept %v", kept)
	}
	if len(suppressed) != len(existing) {
		t.Errorf("suppressed = %d, want %d", len(suppressed), len(existing))
	}

	// An injected new finding surfaces alongside them.
	injected := Diagnostic{Check: "gorleak", File: "internal/webserve/webserve.go", Line: 51, Col: 2,
		Message: "goroutine has no join or cancel path reachable from webserve.(*Server).Start"}
	kept, _ = loaded.Filter(append(existing[:len(existing):len(existing)], injected))
	if len(kept) != 1 || kept[0].Check != "gorleak" {
		t.Errorf("injected finding did not surface: kept = %v", kept)
	}
}

// TestBaselineLineShift asserts fingerprints ignore line numbers — both
// the diagnostic's own position and file:line references embedded in the
// message (taint chain positions) — so unrelated edits that shift code
// do not invalidate the baseline.
func TestBaselineLineShift(t *testing.T) {
	orig := sampleDiags()
	b := NewBaseline(orig)

	shifted := make([]Diagnostic, len(orig))
	copy(shifted, orig)
	for i := range shifted {
		shifted[i].Line += 40
		shifted[i].Message = lineRefRe.ReplaceAllString(shifted[i].Message, ".go:999")
	}
	kept, _ := b.Filter(shifted)
	if len(kept) != 0 {
		t.Errorf("line-shifted findings must stay suppressed, kept %v", kept)
	}
}

// TestBaselineCounts asserts the multiset semantics: a baseline with two
// identical findings suppresses exactly two occurrences — a third fails.
func TestBaselineCounts(t *testing.T) {
	d := Diagnostic{Check: "errdrop", File: "a.go", Line: 1, Col: 1, Message: "dropped error"}
	b := NewBaseline([]Diagnostic{d, d})
	if len(b.Findings) != 1 || b.Findings[0].Count != 2 {
		t.Fatalf("baseline = %+v, want one entry with count 2", b.Findings)
	}
	kept, suppressed := b.Filter([]Diagnostic{d, d, d})
	if len(suppressed) != 2 || len(kept) != 1 {
		t.Errorf("kept %d suppressed %d, want 1/2", len(kept), len(suppressed))
	}
}

// TestBaselinePrune asserts Prune reports exactly the entries whose
// fingerprint vanished — not ones whose count merely dropped.
func TestBaselinePrune(t *testing.T) {
	old := NewBaseline([]Diagnostic{
		{Check: "taint", File: "a.go", Message: "reads time.Now"},
		{Check: "allocloop", File: "b.go", Message: "make([]byte) escapes"},
		{Check: "allocloop", File: "b.go", Message: "make([]byte) escapes"},
		{Check: "boxing", File: "c.go", Message: "int boxed"},
	})

	// taint fixed entirely; one of the two allocloop findings fixed;
	// boxing unchanged.
	cur := NewBaseline([]Diagnostic{
		{Check: "allocloop", File: "b.go", Message: "make([]byte) escapes"},
		{Check: "boxing", File: "c.go", Message: "int boxed"},
	})

	stale := old.Prune(cur)
	if len(stale) != 1 {
		t.Fatalf("stale = %v, want exactly the taint entry", stale)
	}
	if stale[0].Check != "taint" || stale[0].File != "a.go" {
		t.Errorf("stale entry = %+v, want the taint/a.go entry", stale[0])
	}

	// Pruning against itself reports nothing.
	if s := old.Prune(old); len(s) != 0 {
		t.Errorf("self-prune = %v, want empty", s)
	}
}
