// Package search simulates the commercial search-engine API the Hispar
// builder queries (§3). It serves "site:" queries over the synthetic web,
// ranking a site's pages by user-visit popularity — the bias the paper
// wants, since search results skew toward what people search for and
// click on. The engine meters API usage ($5 per 1000 queries, 10 results
// per query, as for the Google Custom Search API) so the paper's
// list-cost analysis (§7) can be reproduced.
//
// A term-query index over page titles is also provided, fed by the
// crawler, so the substrate behaves like a search engine and not a mere
// lookup table.
package search

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/crawler"
	"repro/internal/webgen"
)

// Result is one search hit.
type Result struct {
	URL   string
	Title string
	Rank  int // 1-based position in the result list
}

// Config parameterizes the engine.
type Config struct {
	// ResultsPerQuery is the page size of the API (default 10).
	ResultsPerQuery int
	// PricePerThousand is the API price in USD per 1000 queries
	// (default 5, the Google rate the paper quotes).
	PricePerThousand float64
	// EnglishOnly restricts results to English pages; sites the
	// generator marks FewEnglish then return fewer than ten results and
	// get dropped by the list builder, as in the paper.
	EnglishOnly bool
}

func (c Config) withDefaults() Config {
	if c.ResultsPerQuery <= 0 {
		c.ResultsPerQuery = 10
	}
	if c.PricePerThousand <= 0 {
		c.PricePerThousand = 5
	}
	return c
}

// Engine serves queries over one weekly web snapshot. Safe for
// concurrent use.
type Engine struct {
	cfg Config
	web *webgen.Web

	mu      sync.Mutex
	queries int

	indexMu sync.RWMutex
	index   map[string][]indexEntry // term -> postings
}

type indexEntry struct {
	url    string
	title  string
	weight float64
}

// New creates an engine over web.
func New(web *webgen.Web, cfg Config) *Engine {
	return &Engine{cfg: cfg.withDefaults(), web: web}
}

// Queries returns the number of API queries consumed so far.
func (e *Engine) Queries() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.queries
}

// CostUSD returns the metered API cost so far.
func (e *Engine) CostUSD() float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return float64(e.queries) / 1000 * e.cfg.PricePerThousand
}

func (e *Engine) charge(n int) {
	e.mu.Lock()
	e.queries += n
	e.mu.Unlock()
}

// Site serves the "site:domain" query, returning up to maxResults page
// URLs (the landing page first, then internal pages by descending visit
// popularity). Every page of ResultsPerQuery results consumes one
// metered query — including the final, possibly short, page.
func (e *Engine) Site(domain string, maxResults int) ([]Result, error) {
	s, ok := e.web.SiteByDomain(strings.ToLower(strings.TrimPrefix(domain, "www.")))
	if !ok {
		e.charge(1)
		return nil, fmt.Errorf("search: no results for site:%s", domain)
	}
	if maxResults <= 0 {
		maxResults = e.cfg.ResultsPerQuery
	}

	available := s.PoolSize() + 1
	if e.cfg.EnglishOnly && s.Profile.FewEnglish {
		// International site: only a handful of English pages.
		available = 3 + int(noiseFrom(s.Domain))%6
	}
	want := maxResults
	if want > available {
		want = available
	}

	// Query accounting. Real site: queries frequently yield fewer than
	// ResultsPerQuery *unique* URLs per page (duplicates, omitted
	// results) — the reason the paper's realized cost (~$70 per 100K
	// URLs) exceeds the naive floor (~$50, §7). Model a per-site
	// effective yield of 60–100% of the page size.
	yield := float64(e.cfg.ResultsPerQuery) * (0.6 + 0.4*float64(noiseFrom(domain)%1000)/1000)
	pages := int(float64(want)/yield + 0.999)
	if pages < 1 {
		pages = 1
	}
	e.charge(pages)

	out := make([]Result, 0, want)
	landing := s.Landing()
	out = append(out, Result{URL: landing.URL(), Title: landing.Title(), Rank: 1})
	for _, p := range s.TopIndexable(want - 1) {
		out = append(out, Result{URL: p.URL(), Title: p.Title(), Rank: len(out) + 1})
	}
	return out, nil
}

// noiseFrom derives a small stable number from a domain name.
func noiseFrom(domain string) uint32 {
	var h uint32 = 2166136261
	for i := 0; i < len(domain); i++ {
		h ^= uint32(domain[i])
		h *= 16777619
	}
	return h
}

// IndexSite crawls a site (politely, via the crawler substrate) and adds
// its pages to the term index. maxPages bounds the crawl.
func (e *Engine) IndexSite(domain string, maxPages int) (int, error) {
	s, ok := e.web.SiteByDomain(strings.ToLower(strings.TrimPrefix(domain, "www.")))
	if !ok {
		return 0, fmt.Errorf("search: unknown site %s", domain)
	}
	res, err := crawler.Crawl(e.web, s.Landing(), crawler.Config{MaxPages: maxPages})
	if err != nil {
		return 0, err
	}
	e.indexMu.Lock()
	defer e.indexMu.Unlock()
	if e.index == nil {
		e.index = make(map[string][]indexEntry)
	}
	for _, p := range res.Pages {
		title := p.Title()
		entry := indexEntry{url: p.URL(), title: title, weight: p.VisitWeight()}
		for _, term := range tokenize(title) {
			e.index[term] = append(e.index[term], entry)
		}
	}
	return len(res.Pages), nil
}

// Query serves a term query over the crawled index, ranked by visit
// weight. Each call consumes one metered query.
func (e *Engine) Query(terms string, maxResults int) []Result {
	e.charge(1)
	if maxResults <= 0 {
		maxResults = e.cfg.ResultsPerQuery
	}
	e.indexMu.RLock()
	defer e.indexMu.RUnlock()
	scores := make(map[string]float64)
	titles := make(map[string]string)
	for _, term := range tokenize(terms) {
		for _, p := range e.index[term] {
			scores[p.url] += p.weight
			titles[p.url] = p.title
		}
	}
	type scored struct {
		url   string
		score float64
	}
	all := make([]scored, 0, len(scores))
	for u, s := range scores {
		all = append(all, scored{u, s})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].score != all[j].score {
			return all[i].score > all[j].score
		}
		return all[i].url < all[j].url
	})
	if len(all) > maxResults {
		all = all[:maxResults]
	}
	out := make([]Result, len(all))
	for i, s := range all {
		out[i] = Result{URL: s.url, Title: titles[s.url], Rank: i + 1}
	}
	return out
}

func tokenize(s string) []string {
	fields := strings.FieldsFunc(strings.ToLower(s), func(r rune) bool {
		return !(r >= 'a' && r <= 'z') && !(r >= '0' && r <= '9')
	})
	var out []string
	for _, f := range fields {
		if len(f) >= 2 {
			out = append(out, f)
		}
	}
	return out
}
