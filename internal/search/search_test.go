package search

import (
	"strings"
	"testing"

	"repro/internal/toplist"
	"repro/internal/webgen"
)

func testEngine(t *testing.T) (*Engine, *webgen.Web) {
	t.Helper()
	u := toplist.NewUniverse(toplist.Config{Seed: 31, Size: 500})
	entries := u.Top(30)
	seeds := make([]webgen.SiteSeed, len(entries))
	for i, e := range entries {
		seeds[i] = webgen.SiteSeed{Domain: e.Domain, Rank: e.Rank}
	}
	web := webgen.Generate(webgen.Config{Seed: 31, Sites: seeds})
	return New(web, Config{EnglishOnly: true}), web
}

func TestSiteQuery(t *testing.T) {
	e, web := testEngine(t)
	domain := web.Sites[0].Domain
	res, err := e.Site(domain, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 || len(res) > 20 {
		t.Fatalf("results = %d", len(res))
	}
	if !strings.HasSuffix(strings.SplitN(res[0].URL, "?", 2)[0], "/") {
		t.Errorf("first result %q should be the landing page", res[0].URL)
	}
	for i, r := range res {
		if r.Rank != i+1 {
			t.Errorf("rank %d at position %d", r.Rank, i)
		}
		if r.Title == "" {
			t.Errorf("empty title for %s", r.URL)
		}
	}
	// Results ordered by popularity: re-query and compare to TopInternal.
	site := web.Sites[0]
	top := site.TopInternal(3)
	if res[1].URL != top[0].URL() {
		t.Errorf("second result %q, want most popular internal %q", res[1].URL, top[0].URL())
	}
}

func TestQueryAccounting(t *testing.T) {
	e, web := testEngine(t)
	domain := web.Sites[0].Domain
	before := e.Queries()
	if _, err := e.Site(domain, 50); err != nil {
		t.Fatal(err)
	}
	used := e.Queries() - before
	// 50 results at a 6–10 effective yield per query: 5–9 queries.
	if used < 1 || used > 9 {
		t.Errorf("queries used = %d", used)
	}
	if e.CostUSD() <= 0 {
		t.Error("cost not metered")
	}
	// Unknown site still costs a query.
	before = e.Queries()
	if _, err := e.Site("no-such-site.example", 10); err == nil {
		t.Error("want error for unknown site")
	}
	if e.Queries() != before+1 {
		t.Error("failed query not charged")
	}
}

func TestEnglishFiltering(t *testing.T) {
	e, web := testEngine(t)
	for _, s := range web.Sites {
		if !s.Profile.FewEnglish {
			continue
		}
		res, err := e.Site(s.Domain, 50)
		if err != nil {
			t.Fatal(err)
		}
		if len(res) >= 10 {
			t.Errorf("FewEnglish site %s returned %d results", s.Domain, len(res))
		}
		return
	}
	t.Skip("no FewEnglish site at this seed")
}

func TestTermQueryOverIndex(t *testing.T) {
	e, web := testEngine(t)
	domain := web.Sites[0].Domain
	n, err := e.IndexSite(domain, 60)
	if err != nil {
		t.Fatal(err)
	}
	if n < 10 {
		t.Fatalf("indexed only %d pages", n)
	}
	// Query for a term from some indexed page's title.
	title := web.Sites[0].PageAt(1).Title()
	term := strings.Fields(title)[0]
	res := e.Query(term, 10)
	if len(res) == 0 {
		t.Fatalf("no results for term %q", term)
	}
	for i := 1; i < len(res); i++ {
		if res[i].Rank != res[i-1].Rank+1 {
			t.Error("ranks not sequential")
		}
	}
	if got := e.Query("zzzzunmatchable", 10); len(got) != 0 {
		t.Errorf("nonsense term returned %d results", len(got))
	}
}
