// Package vclock provides a deterministic virtual clock and an event
// timeline used by the network simulator and the page-load engine.
//
// All simulated components share a single Clock. Time only advances when a
// component explicitly sleeps or when the Timeline runs queued events, so
// experiments are perfectly reproducible and run orders of magnitude faster
// than wall time.
package vclock

import (
	"container/heap"
	"fmt"
	"sync"
	"time"
)

// Clock is a virtual clock. The zero value starts at the Unix epoch.
// Clock is safe for concurrent use.
type Clock struct {
	mu  sync.Mutex
	now time.Time
}

// New returns a Clock starting at the given time.
func New(start time.Time) *Clock {
	return &Clock{now: start}
}

// Now returns the current virtual time.
func (c *Clock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Advance moves the clock forward by d. Negative durations are ignored:
// virtual time never runs backwards.
func (c *Clock) Advance(d time.Duration) {
	if d <= 0 {
		return
	}
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// AdvanceTo moves the clock forward to t if t is later than the current
// virtual time, and reports whether the clock moved.
func (c *Clock) AdvanceTo(t time.Time) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if t.After(c.now) {
		c.now = t
		return true
	}
	return false
}

// Since returns the virtual time elapsed since t.
func (c *Clock) Since(t time.Time) time.Duration {
	return c.Now().Sub(t)
}

// Wall returns the current real wall-clock time. It is the single
// sanctioned wall-clock accessor in the tree: operational telemetry
// (worker utilization, run-duration banners) may consult it, measurement
// code must not — detlint's walltime check forbids direct time.Now use
// everywhere outside this package, so every real-time read is findable
// under one name.
func Wall() time.Time { return time.Now() }

// WallSince returns the real time elapsed since t, which should be a
// previous Wall() reading. Like Wall, it exists so operational code
// never touches the time package directly.
func WallSince(t time.Time) time.Duration { return time.Since(t) }

// event is a scheduled callback on a Timeline.
type event struct {
	at  time.Time
	seq uint64 // tie-breaker: FIFO among events at the same instant
	fn  func(now time.Time)
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at.Equal(q[j].at) {
		return q[i].seq < q[j].seq
	}
	return q[i].at.Before(q[j].at)
}
func (q eventQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x interface{}) { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// Timeline is a discrete-event scheduler driving a Clock. Events scheduled
// with At or After run in timestamp order when Run is called. Event
// callbacks may schedule further events.
//
// Timeline is safe for concurrent scheduling, but Run must be called from a
// single goroutine at a time.
type Timeline struct {
	mu    sync.Mutex
	clock *Clock
	queue eventQueue
	seq   uint64
}

// NewTimeline returns a Timeline driving clock. If clock is nil a fresh
// epoch-based clock is created.
func NewTimeline(clock *Clock) *Timeline {
	if clock == nil {
		clock = New(time.Unix(0, 0).UTC())
	}
	return &Timeline{clock: clock}
}

// Clock returns the clock driven by the timeline.
func (t *Timeline) Clock() *Clock { return t.clock }

// Now returns the current virtual time.
func (t *Timeline) Now() time.Time { return t.clock.Now() }

// At schedules fn to run at virtual time at. Events scheduled in the past
// run at the current time (the clock never rewinds).
func (t *Timeline) At(at time.Time, fn func(now time.Time)) {
	if fn == nil {
		return
	}
	t.mu.Lock()
	t.seq++
	heap.Push(&t.queue, &event{at: at, seq: t.seq, fn: fn})
	t.mu.Unlock()
}

// After schedules fn to run d after the current virtual time.
func (t *Timeline) After(d time.Duration, fn func(now time.Time)) {
	t.At(t.clock.Now().Add(d), fn)
}

// Pending returns the number of events waiting to run.
func (t *Timeline) Pending() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.queue)
}

// step runs the earliest event, advancing the clock to its timestamp.
// It reports whether an event ran.
func (t *Timeline) step() bool {
	t.mu.Lock()
	if len(t.queue) == 0 {
		t.mu.Unlock()
		return false
	}
	e := heap.Pop(&t.queue).(*event)
	t.mu.Unlock()
	t.clock.AdvanceTo(e.at)
	e.fn(t.clock.Now())
	return true
}

// Run executes events until the queue drains and returns the number of
// events executed. maxEvents <= 0 means no limit. Run panics if maxEvents
// is exceeded, which indicates a runaway simulation.
func (t *Timeline) Run(maxEvents int) int {
	n := 0
	for t.step() {
		n++
		if maxEvents > 0 && n > maxEvents {
			panic(fmt.Sprintf("vclock: timeline exceeded %d events", maxEvents))
		}
	}
	return n
}

// RunUntil executes events with timestamps at or before deadline and
// returns the number executed. Events beyond the deadline stay queued.
func (t *Timeline) RunUntil(deadline time.Time) int {
	n := 0
	for {
		t.mu.Lock()
		if len(t.queue) == 0 || t.queue[0].at.After(deadline) {
			t.mu.Unlock()
			return n
		}
		e := heap.Pop(&t.queue).(*event)
		t.mu.Unlock()
		t.clock.AdvanceTo(e.at)
		e.fn(t.clock.Now())
		n++
	}
}
