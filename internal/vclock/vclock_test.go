package vclock

import (
	"testing"
	"time"
)

func TestClockBasics(t *testing.T) {
	start := time.Date(2020, 3, 12, 0, 0, 0, 0, time.UTC)
	c := New(start)
	if !c.Now().Equal(start) {
		t.Fatal("wrong start time")
	}
	c.Advance(5 * time.Second)
	if got := c.Since(start); got != 5*time.Second {
		t.Errorf("Since = %v", got)
	}
	c.Advance(-time.Hour) // ignored
	if got := c.Since(start); got != 5*time.Second {
		t.Errorf("negative advance moved the clock: %v", got)
	}
	if c.AdvanceTo(start) {
		t.Error("AdvanceTo past time should be a no-op")
	}
	if !c.AdvanceTo(start.Add(time.Minute)) {
		t.Error("AdvanceTo future time should move")
	}
}

func TestTimelineOrdering(t *testing.T) {
	tl := NewTimeline(nil)
	var order []int
	tl.After(3*time.Second, func(time.Time) { order = append(order, 3) })
	tl.After(1*time.Second, func(time.Time) { order = append(order, 1) })
	tl.After(2*time.Second, func(time.Time) { order = append(order, 2) })
	// Same-instant events run FIFO.
	tl.After(2*time.Second, func(time.Time) { order = append(order, 20) })
	n := tl.Run(0)
	if n != 4 {
		t.Fatalf("ran %d events", n)
	}
	want := []int{1, 2, 20, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestTimelineCascade(t *testing.T) {
	tl := NewTimeline(nil)
	depth := 0
	var schedule func(now time.Time)
	schedule = func(now time.Time) {
		depth++
		if depth < 5 {
			tl.After(time.Second, schedule)
		}
	}
	tl.After(time.Second, schedule)
	tl.Run(0)
	if depth != 5 {
		t.Errorf("cascade depth = %d, want 5", depth)
	}
	if got := tl.Clock().Since(time.Unix(0, 0).UTC()); got != 5*time.Second {
		t.Errorf("clock advanced %v, want 5s", got)
	}
}

func TestRunUntil(t *testing.T) {
	tl := NewTimeline(nil)
	ran := 0
	for i := 1; i <= 5; i++ {
		tl.After(time.Duration(i)*time.Second, func(time.Time) { ran++ })
	}
	deadline := tl.Now().Add(3 * time.Second)
	if n := tl.RunUntil(deadline); n != 3 || ran != 3 {
		t.Errorf("RunUntil ran %d/%d", n, ran)
	}
	if tl.Pending() != 2 {
		t.Errorf("pending = %d, want 2", tl.Pending())
	}
}

func TestRunawayGuard(t *testing.T) {
	tl := NewTimeline(nil)
	var loop func(time.Time)
	loop = func(time.Time) { tl.After(time.Millisecond, loop) }
	tl.After(time.Millisecond, loop)
	defer func() {
		if recover() == nil {
			t.Error("want panic on runaway timeline")
		}
	}()
	tl.Run(100)
}

func TestNilFnIgnored(t *testing.T) {
	tl := NewTimeline(nil)
	tl.After(time.Second, nil)
	if tl.Pending() != 0 {
		t.Error("nil event should not be scheduled")
	}
}
