// Package perfmodel implements the paper's §7 "Learn web page
// characteristics" proposal: a model that predicts page-load time from
// structural page features (size, objects, origins, dependency depths,
// CDN share, …). Its purpose here is to make the paper's core warning
// measurable in a fourth way: a model trained only on landing pages
// mispredicts internal pages, because the two page types occupy
// different regions of feature space *and* map features to latency
// differently (the Jekyll/Hyde gap is not just covariate shift).
//
// The regressor is ridge regression solved by Gaussian elimination —
// deliberately simple, dependency-free, and fully deterministic.
package perfmodel

import (
	"fmt"
	"math"

	"repro/internal/core"
)

// NumFeatures is the length of a feature vector.
const NumFeatures = 12

// FeatureNames labels the feature vector entries.
func FeatureNames() []string {
	return []string{
		"log_bytes", "log_objects", "unique_domains", "handshakes",
		"noncacheable_frac", "cdn_byte_frac", "js_frac", "image_frac",
		"depth2plus_frac", "hints", "third_parties", "is_https",
	}
}

// Features extracts the model inputs from a page measurement. All
// entries are scale-stable (logs and fractions), so one normalization
// fits both page types.
func Features(m *core.PageMeasurement) [NumFeatures]float64 {
	var f [NumFeatures]float64
	f[0] = math.Log1p(float64(m.Bytes))
	f[1] = math.Log1p(float64(m.Objects))
	f[2] = float64(m.UniqueDomains)
	f[3] = float64(m.Handshakes)
	if m.Objects > 0 {
		f[4] = float64(m.NonCacheable) / float64(m.Objects)
	}
	f[5] = m.CDNByteFraction()
	f[6] = m.JSFraction()
	f[7] = m.ImageFraction()
	deep := 0
	for d := 2; d < len(m.DepthCounts); d++ {
		deep += m.DepthCounts[d]
	}
	if m.Objects > 0 {
		f[8] = float64(deep) / float64(m.Objects)
	}
	f[9] = float64(m.Hints)
	f[10] = float64(len(m.ThirdParties))
	if m.Scheme == "https" {
		f[11] = 1
	}
	return f
}

// Model is a trained ridge regressor predicting PLT milliseconds.
type Model struct {
	weights []float64 // NumFeatures + 1 (bias last)
	mean    [NumFeatures]float64
	std     [NumFeatures]float64
}

// Train fits the model on the given measurements with ridge penalty
// lambda (e.g. 1.0). It returns an error for degenerate inputs.
func Train(ms []*core.PageMeasurement, lambda float64) (*Model, error) {
	n := len(ms)
	if n < NumFeatures+2 {
		return nil, fmt.Errorf("perfmodel: %d samples, need at least %d", n, NumFeatures+2)
	}
	if lambda <= 0 {
		lambda = 1
	}
	model := &Model{}

	// Standardize features.
	// The target is log-PLT: page latency is heavy-tailed and
	// multiplicative in its causes, so the linear model fits the log.
	X := make([][NumFeatures]float64, n)
	y := make([]float64, n)
	for i, m := range ms {
		X[i] = Features(m)
		y[i] = math.Log1p(float64(m.PLT.Milliseconds()))
	}
	for j := 0; j < NumFeatures; j++ {
		var sum float64
		for i := range X {
			sum += X[i][j]
		}
		model.mean[j] = sum / float64(n)
		var sq float64
		for i := range X {
			d := X[i][j] - model.mean[j]
			sq += d * d
		}
		model.std[j] = math.Sqrt(sq / float64(n))
		if model.std[j] < 1e-9 {
			model.std[j] = 1
		}
	}

	// Design matrix with bias column.
	k := NumFeatures + 1
	A := make([][]float64, k) // A = X'X + λI
	b := make([]float64, k)   // b = X'y
	for i := range A {
		A[i] = make([]float64, k)
	}
	row := make([]float64, k)
	for i := 0; i < n; i++ {
		for j := 0; j < NumFeatures; j++ {
			row[j] = (X[i][j] - model.mean[j]) / model.std[j]
		}
		row[NumFeatures] = 1
		for a := 0; a < k; a++ {
			for c := 0; c < k; c++ {
				A[a][c] += row[a] * row[c]
			}
			b[a] += row[a] * y[i]
		}
	}
	for j := 0; j < NumFeatures; j++ {
		A[j][j] += lambda // no penalty on the bias
	}

	w, err := solve(A, b)
	if err != nil {
		return nil, err
	}
	model.weights = w
	return model, nil
}

// solve performs Gaussian elimination with partial pivoting.
func solve(A [][]float64, b []float64) ([]float64, error) {
	k := len(b)
	for col := 0; col < k; col++ {
		// Pivot.
		p := col
		for r := col + 1; r < k; r++ {
			if math.Abs(A[r][col]) > math.Abs(A[p][col]) {
				p = r
			}
		}
		if math.Abs(A[p][col]) < 1e-12 {
			return nil, fmt.Errorf("perfmodel: singular system at column %d", col)
		}
		A[col], A[p] = A[p], A[col]
		b[col], b[p] = b[p], b[col]
		// Eliminate.
		for r := col + 1; r < k; r++ {
			f := A[r][col] / A[col][col]
			for c := col; c < k; c++ {
				A[r][c] -= f * A[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	// Back substitution.
	w := make([]float64, k)
	for r := k - 1; r >= 0; r-- {
		sum := b[r]
		for c := r + 1; c < k; c++ {
			sum -= A[r][c] * w[c]
		}
		w[r] = sum / A[r][r]
	}
	return w, nil
}

// PredictMS returns the predicted PLT in milliseconds.
func (mo *Model) PredictMS(m *core.PageMeasurement) float64 {
	f := Features(m)
	pred := mo.weights[NumFeatures] // bias
	for j := 0; j < NumFeatures; j++ {
		pred += mo.weights[j] * (f[j] - mo.mean[j]) / mo.std[j]
	}
	// Invert the log-target transform.
	ms := math.Expm1(pred)
	if ms < 0 {
		ms = 0
	}
	return ms
}

// Weights exposes the learned standardized weights (bias last).
func (mo *Model) Weights() []float64 {
	out := make([]float64, len(mo.weights))
	copy(out, mo.weights)
	return out
}

// Eval holds error statistics of a model over a test set.
type Eval struct {
	N    int
	MAE  float64 // mean absolute error, ms
	MAPE float64 // mean absolute relative error
	Bias float64 // mean signed relative error: >0 = overprediction
}

// Evaluate scores the model on a test set.
func (mo *Model) Evaluate(ms []*core.PageMeasurement) Eval {
	var e Eval
	for _, m := range ms {
		actual := float64(m.PLT.Milliseconds())
		if actual <= 0 {
			continue
		}
		pred := mo.PredictMS(m)
		e.N++
		e.MAE += math.Abs(pred - actual)
		e.MAPE += math.Abs(pred-actual) / actual
		e.Bias += (pred - actual) / actual
	}
	if e.N > 0 {
		e.MAE /= float64(e.N)
		e.MAPE /= float64(e.N)
		e.Bias /= float64(e.N)
	}
	return e
}
