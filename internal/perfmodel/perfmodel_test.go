package perfmodel

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/mimecat"
)

// synth builds a measurement whose PLT is an exact (noisy) function of
// its features, so recovery can be tested.
func synth(rng *rand.Rand, noise float64) *core.PageMeasurement {
	objects := 20 + rng.Intn(200)
	bytes := int64(1e5 + rng.Float64()*5e6)
	domains := 3 + rng.Intn(40)
	// Ground truth: PLT grows with log-bytes and domains.
	plt := 80*math.Log1p(float64(bytes)) + 12*float64(domains) + rng.NormFloat64()*noise
	if plt < 10 {
		plt = 10
	}
	return &core.PageMeasurement{
		Bytes:         bytes,
		Objects:       objects,
		UniqueDomains: domains,
		Handshakes:    domains + rng.Intn(10),
		NonCacheable:  objects / 4,
		PLT:           time.Duration(plt) * time.Millisecond,
		Scheme:        "https",
		DepthCounts:   []int{1, objects / 2, objects / 3, 0, 0, 0},
		ContentBytes: map[mimecat.Category]int64{
			mimecat.CatJS:    bytes / 3,
			mimecat.CatImage: bytes / 3,
		},
	}
}

func dataset(seed int64, n int, noise float64) []*core.PageMeasurement {
	rng := rand.New(rand.NewSource(seed))
	out := make([]*core.PageMeasurement, n)
	for i := range out {
		out[i] = synth(rng, noise)
	}
	return out
}

func TestTrainRecoversSignal(t *testing.T) {
	train := dataset(1, 400, 20)
	test := dataset(2, 200, 20)
	m, err := Train(train, 1)
	if err != nil {
		t.Fatal(err)
	}
	e := m.Evaluate(test)
	if e.N != 200 {
		t.Fatalf("evaluated %d", e.N)
	}
	if e.MAPE > 0.15 {
		t.Errorf("MAPE = %.3f on a low-noise synthetic task", e.MAPE)
	}
	if math.Abs(e.Bias) > 0.1 {
		t.Errorf("bias = %+.3f, want ~0", e.Bias)
	}
	if len(m.Weights()) != NumFeatures+1 {
		t.Errorf("weights = %d", len(m.Weights()))
	}
}

func TestTrainErrors(t *testing.T) {
	if _, err := Train(dataset(3, 5, 10), 1); err == nil {
		t.Error("want error for tiny training set")
	}
}

func TestPredictNonNegative(t *testing.T) {
	m, err := Train(dataset(4, 200, 30), 1)
	if err != nil {
		t.Fatal(err)
	}
	// An absurd out-of-range page must not yield a negative prediction.
	weird := &core.PageMeasurement{Bytes: 10, Objects: 1, Scheme: "http",
		DepthCounts: []int{1}, ContentBytes: map[mimecat.Category]int64{}}
	if got := m.PredictMS(weird); got < 0 {
		t.Errorf("negative prediction %v", got)
	}
}

func TestFeatureNamesMatch(t *testing.T) {
	if len(FeatureNames()) != NumFeatures {
		t.Fatalf("feature names = %d, want %d", len(FeatureNames()), NumFeatures)
	}
}

func TestSolveSingular(t *testing.T) {
	A := [][]float64{{1, 1}, {1, 1}}
	if _, err := solve(A, []float64{1, 2}); err == nil {
		t.Error("want error for a singular system")
	}
}

func TestDeterministic(t *testing.T) {
	a, err := Train(dataset(5, 100, 15), 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Train(dataset(5, 100, 15), 1)
	if err != nil {
		t.Fatal(err)
	}
	wa, wb := a.Weights(), b.Weights()
	for i := range wa {
		if wa[i] != wb[i] {
			t.Fatal("training not deterministic")
		}
	}
}
