// Package depgraph builds web-page dependency graphs from HAR initiator
// records — the paper's §5.4 method (it tracked which object triggered
// which fetch via the Chrome DevTools requestWillBeSent initiator and
// built the graph from those edges). Nodes are objects; a directed edge
// runs from an object to each fetch it triggered; an object's depth is
// the shortest path from the root document.
package depgraph

import (
	"fmt"
	"time"

	"repro/internal/har"
)

// Node is one object in the graph.
type Node struct {
	URL       string
	Initiator string // "" for the root document
	Parent    int    // node index, -1 for the root
	Children  []int
	Depth     int // shortest-path depth from the root (root = 0)
	Size      int64
	Start     time.Duration // offset from navigationStart
	End       time.Duration
}

// Graph is a page's dependency graph.
type Graph struct {
	Nodes []Node
	byURL map[string]int
}

// FromHAR builds the graph of one page load. The first entry whose
// initiator is empty is the root; entries whose initiator URL is unknown
// attach to the root (the conservative choice a measurement tool makes
// when an initiator is outside the capture).
func FromHAR(log *har.Log) (*Graph, error) {
	if len(log.Entries) == 0 {
		return nil, fmt.Errorf("depgraph: empty HAR log")
	}
	g := &Graph{byURL: make(map[string]int, len(log.Entries))}
	nav := log.Page.NavigationStart
	for i := range log.Entries {
		e := &log.Entries[i]
		start := e.StartedAt.Sub(nav)
		g.Nodes = append(g.Nodes, Node{
			URL:       e.Request.URL,
			Initiator: e.Initiator,
			Parent:    -1,
			Depth:     -1,
			Size:      e.Response.BodySize,
			Start:     start,
			End:       start + e.Time,
		})
		// First occurrence wins: a URL fetched twice keeps its earliest
		// node as the dependency anchor.
		if _, dup := g.byURL[e.Request.URL]; !dup {
			g.byURL[e.Request.URL] = i
		}
	}
	root := -1
	for i := range g.Nodes {
		if g.Nodes[i].Initiator == "" {
			root = i
			break
		}
	}
	if root < 0 {
		return nil, fmt.Errorf("depgraph: no root entry (every entry has an initiator)")
	}
	// Wire edges.
	for i := range g.Nodes {
		if i == root {
			continue
		}
		p, ok := g.byURL[g.Nodes[i].Initiator]
		if !ok || p == i {
			p = root
		}
		g.Nodes[i].Parent = p
		g.Nodes[p].Children = append(g.Nodes[p].Children, i)
	}
	// BFS for shortest-path depths.
	g.Nodes[root].Depth = 0
	queue := []int{root}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, c := range g.Nodes[n].Children {
			if g.Nodes[c].Depth == -1 {
				g.Nodes[c].Depth = g.Nodes[n].Depth + 1
				queue = append(queue, c)
			}
		}
	}
	// Orphans in a cycle (cannot happen with first-occurrence anchoring,
	// but be safe): attach at depth 1.
	for i := range g.Nodes {
		if g.Nodes[i].Depth == -1 {
			g.Nodes[i].Depth = 1
		}
	}
	return g, nil
}

// Root returns the root node index.
func (g *Graph) Root() int {
	for i := range g.Nodes {
		if g.Nodes[i].Parent == -1 && g.Nodes[i].Initiator == "" {
			return i
		}
	}
	return 0
}

// DepthCounts returns the number of objects at each depth, with depths
// beyond max collapsed into the final bucket.
func (g *Graph) DepthCounts(max int) []int {
	out := make([]int, max+1)
	for i := range g.Nodes {
		d := g.Nodes[i].Depth
		if d > max {
			d = max
		}
		out[d]++
	}
	return out
}

// MaxDepth returns the deepest object's depth.
func (g *Graph) MaxDepth() int {
	m := 0
	for i := range g.Nodes {
		if g.Nodes[i].Depth > m {
			m = g.Nodes[i].Depth
		}
	}
	return m
}

// AtDepth returns the node indexes at the given depth.
func (g *Graph) AtDepth(d int) []int {
	var out []int
	for i := range g.Nodes {
		if g.Nodes[i].Depth == d {
			out = append(out, i)
		}
	}
	return out
}

// CriticalPath returns the dependency chain ending at the last-finishing
// object, walking initiator edges back to the root, plus that object's
// completion time. Delivery optimizations in the Polaris/Vroom family
// attack exactly this chain.
func (g *Graph) CriticalPath() ([]int, time.Duration) {
	last, end := 0, time.Duration(0)
	for i := range g.Nodes {
		if g.Nodes[i].End > end {
			last, end = i, g.Nodes[i].End
		}
	}
	var path []int
	for n := last; n != -1; n = g.Nodes[n].Parent {
		path = append(path, n)
		if len(path) > len(g.Nodes) {
			break // defensive: malformed parent loop
		}
	}
	// Reverse to root-first order.
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path, end
}

// Fanout returns the mean number of children of nodes that have any —
// a coarse graph-complexity measure.
func (g *Graph) Fanout() float64 {
	n, sum := 0, 0
	for i := range g.Nodes {
		if len(g.Nodes[i].Children) > 0 {
			n++
			sum += len(g.Nodes[i].Children)
		}
	}
	if n == 0 {
		return 0
	}
	return float64(sum) / float64(n)
}
