package depgraph

import (
	"testing"
	"time"

	"repro/internal/browser"
	"repro/internal/cdn"
	"repro/internal/dnssim"
	"repro/internal/har"
	"repro/internal/toplist"
	"repro/internal/webgen"
)

func syntheticLog() *har.Log {
	nav := time.Date(2020, 3, 12, 9, 0, 0, 0, time.UTC)
	mk := func(url, initiator string, startMS, durMS int, size int64) har.Entry {
		return har.Entry{
			StartedAt: nav.Add(time.Duration(startMS) * time.Millisecond),
			Time:      time.Duration(durMS) * time.Millisecond,
			Request:   har.Request{Method: "GET", URL: url},
			Response:  har.Response{Status: 200, BodySize: size},
			Initiator: initiator,
		}
	}
	return &har.Log{
		Page: har.Page{URL: "https://a/", NavigationStart: nav},
		Entries: []har.Entry{
			mk("https://a/", "", 0, 100, 1000),
			mk("https://a/app.js", "https://a/", 110, 50, 200),
			mk("https://a/style.css", "https://a/", 110, 40, 100),
			mk("https://a/data.json", "https://a/app.js", 170, 30, 50),
			mk("https://a/bg.png", "https://a/style.css", 160, 80, 400),
			mk("https://a/deep.js", "https://a/data.json", 210, 90, 60),
			mk("https://x/orphan.gif", "https://unknown/origin.js", 120, 10, 10),
		},
	}
}

func TestFromHARDepths(t *testing.T) {
	g, err := FromHAR(syntheticLog())
	if err != nil {
		t.Fatal(err)
	}
	wantDepths := []int{0, 1, 1, 2, 2, 3, 1} // orphan attaches to root
	for i, want := range wantDepths {
		if g.Nodes[i].Depth != want {
			t.Errorf("node %d (%s): depth %d, want %d", i, g.Nodes[i].URL, g.Nodes[i].Depth, want)
		}
	}
	dc := g.DepthCounts(5)
	if dc[0] != 1 || dc[1] != 3 || dc[2] != 2 || dc[3] != 1 {
		t.Errorf("DepthCounts = %v", dc)
	}
	if g.MaxDepth() != 3 {
		t.Errorf("MaxDepth = %d", g.MaxDepth())
	}
	if got := len(g.AtDepth(2)); got != 2 {
		t.Errorf("AtDepth(2) = %d nodes", got)
	}
	if g.Root() != 0 {
		t.Errorf("Root = %d", g.Root())
	}
	if g.Fanout() <= 0 {
		t.Error("Fanout should be positive")
	}
}

func TestCriticalPath(t *testing.T) {
	g, err := FromHAR(syntheticLog())
	if err != nil {
		t.Fatal(err)
	}
	path, end := g.CriticalPath()
	// Last finishing object is deep.js (ends at 300ms); chain is
	// root -> app.js -> data.json -> deep.js.
	if end != 300*time.Millisecond {
		t.Errorf("critical end = %v", end)
	}
	want := []string{"https://a/", "https://a/app.js", "https://a/data.json", "https://a/deep.js"}
	if len(path) != len(want) {
		t.Fatalf("path = %v", path)
	}
	for i, n := range path {
		if g.Nodes[n].URL != want[i] {
			t.Errorf("path[%d] = %s, want %s", i, g.Nodes[n].URL, want[i])
		}
	}
}

func TestErrors(t *testing.T) {
	if _, err := FromHAR(&har.Log{}); err == nil {
		t.Error("want error for empty log")
	}
	l := syntheticLog()
	for i := range l.Entries {
		l.Entries[i].Initiator = "https://someone/else"
	}
	if _, err := FromHAR(l); err == nil {
		t.Error("want error when no root exists")
	}
}

// TestAgreesWithSimulatedLoads cross-validates the initiator-based graph
// against the generator's ground-truth depths carried in the HAR _depth
// extension.
func TestAgreesWithSimulatedLoads(t *testing.T) {
	u := toplist.NewUniverse(toplist.Config{Seed: 81, Size: 400})
	entries := u.Top(8)
	seeds := make([]webgen.SiteSeed, len(entries))
	for i, e := range entries {
		seeds[i] = webgen.SiteSeed{Domain: e.Domain, Rank: e.Rank}
	}
	web := webgen.Generate(webgen.Config{Seed: 81, Sites: seeds})
	resolver := dnssim.NewResolver(dnssim.ResolverConfig{Name: "isp", Seed: 81}, web.Authority(), nil)
	b, err := browser.New(browser.Config{
		Seed:     81,
		Resolver: resolver,
		CDNFactory: func() *cdn.Network {
			return cdn.NewNetwork(1<<14, cdn.PopularityWarmth(2.2, 0.97), 81)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range web.Sites {
		for _, page := range []*webgen.Page{s.Landing(), s.PageAt(1)} {
			m := page.Build()
			log, err := b.Load(m, 0)
			if err != nil {
				t.Fatal(err)
			}
			g, err := FromHAR(log)
			if err != nil {
				t.Fatal(err)
			}
			for i := range g.Nodes {
				if g.Nodes[i].Depth != log.Entries[i].Depth {
					t.Fatalf("%s: node %d initiator-depth %d != ground truth %d",
						m.URL, i, g.Nodes[i].Depth, log.Entries[i].Depth)
				}
			}
		}
	}
}
