// Package har implements the subset of the HTTP Archive (HAR) 1.2 format
// that the measurement study consumes: per-request timing phases, response
// metadata, and page-level Navigation Timing marks. HAR files are the
// paper's primary measurement artifact — every analysis in §4–§6 is
// computed from HAR entries plus the page DOM.
package har

import (
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// Timings is the HAR timing phase breakdown for one request. All values
// are durations; -1 (encoded as a negative duration) means "not
// applicable" per the HAR spec, e.g. ssl on a plaintext connection or
// dns/connect on a reused connection.
type Timings struct {
	Blocked time.Duration `json:"blocked"`
	DNS     time.Duration `json:"dns"`
	Connect time.Duration `json:"connect"`
	SSL     time.Duration `json:"ssl"`
	Send    time.Duration `json:"send"`
	Wait    time.Duration `json:"wait"`
	Receive time.Duration `json:"receive"`
}

// NotApplicable marks a phase that did not occur.
const NotApplicable = time.Duration(-1)

func dur(d time.Duration) time.Duration {
	if d < 0 {
		return 0
	}
	return d
}

// Total returns the request's total time: the sum of all applicable phases.
func (t Timings) Total() time.Duration {
	return dur(t.Blocked) + dur(t.DNS) + dur(t.Connect) + dur(t.SSL) +
		dur(t.Send) + dur(t.Wait) + dur(t.Receive)
}

// Handshake returns connect+ssl, the study's definition of handshake time.
func (t Timings) Handshake() time.Duration { return dur(t.Connect) + dur(t.SSL) }

// NewConnection reports whether this request opened a new transport
// connection (i.e. paid a TCP, and possibly TLS, handshake).
func (t Timings) NewConnection() bool { return t.Connect > 0 }

// Header is one HTTP header name/value pair.
type Header struct {
	Name  string `json:"name"`
	Value string `json:"value"`
}

// Entry is one fetched object. It mirrors the HAR "entry" object with the
// fields the study needs, plus two extensions (prefixed "_" per HAR
// convention, exposed as plain fields here): the initiator URL and the
// dependency depth.
type Entry struct {
	StartedAt time.Time `json:"startedDateTime"`
	Time      time.Duration
	Request   Request  `json:"request"`
	Response  Response `json:"response"`
	Timings   Timings  `json:"timings"`
	ServerIP  string   `json:"serverIPAddress,omitempty"`

	// Initiator is the URL of the object whose processing triggered this
	// fetch ("" for the root document). Mirrors the Chrome DevTools
	// requestWillBeSent initiator the paper used to build dependency
	// graphs (§5.4).
	Initiator string `json:"_initiator,omitempty"`
	// Depth is the shortest-path depth from the root document (root = 0).
	Depth int `json:"_depth"`
	// Aborted, when non-empty, marks a failed fetch and records the HAR
	// timing phase the request reached before dying: "dns" (resolution
	// failed), "wait" (request sent, no response until the client's
	// timeout), or "receive" (body transfer truncated). Failed fetches
	// stay in the log — the paper's harness recorded them too — with
	// Status 0 except for truncations, which carry the partial body.
	Aborted string `json:"_aborted,omitempty"`
	// FromCache marks an entry served from the browser's local cache
	// with no network activity at all (value "memory", matching the
	// Chrome HAR extension of the same name). The Response replays the
	// stored copy: BodySize is the cached body, TransferSize is 0.
	FromCache string `json:"_fromCache,omitempty"`
	// Revalidated marks an entry answered by a conditional request: the
	// server returned 304 and the cached copy was served. The entry
	// keeps the cached status/headers/BodySize; only headers crossed
	// the network (see Response.TransferSize).
	Revalidated bool `json:"_revalidated,omitempty"`
}

// Failed reports whether this entry records a fetch that did not complete.
func (e *Entry) Failed() bool { return e.Aborted != "" }

// Transferred returns the bytes this entry moved over the network: zero
// for cache hits, the recorded TransferSize for revalidations and
// entries that carry one, and BodySize as the legacy fallback for logs
// written before transfer sizes were recorded.
func (e *Entry) Transferred() int64 {
	if e.FromCache != "" {
		return 0
	}
	if e.Response.TransferSize > 0 || e.Revalidated {
		return e.Response.TransferSize
	}
	return e.Response.BodySize
}

// Request is the HAR request record.
type Request struct {
	Method  string   `json:"method"`
	URL     string   `json:"url"`
	Headers []Header `json:"headers,omitempty"`
}

// HeaderValue returns the first value of the named request header
// (case-insensitive per HTTP), or "".
func (r Request) HeaderValue(name string) string {
	for _, h := range r.Headers {
		if equalFold(h.Name, name) {
			return h.Value
		}
	}
	return ""
}

// Response is the HAR response record.
type Response struct {
	Status   int      `json:"status"`
	Headers  []Header `json:"headers,omitempty"`
	MIMEType string   `json:"content_mimeType"`
	BodySize int64    `json:"bodySize"`
	// TransferSize is what actually crossed the network for this
	// response: 0 for pure cache hits, roughly header size for 304
	// revalidations, the (possibly partial) body otherwise.
	TransferSize int64 `json:"_transferSize,omitempty"`
}

// HeaderValue returns the first value of the named header
// (case-insensitive per HTTP), or "".
func (r Response) HeaderValue(name string) string {
	for _, h := range r.Headers {
		if equalFold(h.Name, name) {
			return h.Value
		}
	}
	return ""
}

func equalFold(a, b string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := 0; i < len(a); i++ {
		ca, cb := a[i], b[i]
		if 'A' <= ca && ca <= 'Z' {
			ca += 'a' - 'A'
		}
		if 'A' <= cb && cb <= 'Z' {
			cb += 'a' - 'A'
		}
		if ca != cb {
			return false
		}
	}
	return true
}

// PageTimings carries the Navigation Timing marks used by the study.
// All marks are offsets from navigationStart.
type PageTimings struct {
	// FirstPaint is when the browser rendered the first pixel; the study
	// defines PLT as navigationStart→firstPaint (§4).
	FirstPaint time.Duration `json:"firstPaint"`
	// OnLoad is when the load event fired (all sub-resources done).
	OnLoad time.Duration `json:"onLoad"`
	// SpeedIndex is the WebPagetest Speed Index: the integral of the
	// visually-incomplete fraction over time (§4, Fig 3a).
	SpeedIndex time.Duration `json:"_speedIndex"`
}

// Page is the HAR page record.
type Page struct {
	ID              string      `json:"id"`
	URL             string      `json:"title"`
	NavigationStart time.Time   `json:"startedDateTime"`
	Timings         PageTimings `json:"pageTimings"`
}

// Log is a HAR log: one page plus its entries. (The study fetches one
// page per browser session, so a Log always holds exactly one Page.)
type Log struct {
	Page    Page    `json:"page"`
	Entries []Entry `json:"entries"`
}

// TotalBytes returns the page size as the study defines it: the sum of
// response body sizes of all entries (§4).
func (l *Log) TotalBytes() int64 {
	var n int64
	for i := range l.Entries {
		n += l.Entries[i].Response.BodySize
	}
	return n
}

// ObjectCount returns the number of entries, the study's proxy for page
// structure (§4).
func (l *Log) ObjectCount() int { return len(l.Entries) }

// TransferBytes returns the bytes that crossed the network for this
// load. Equal to TotalBytes on a cold load; smaller on a warm load,
// where cache hits and 304 revalidations avoid body transfers.
func (l *Log) TransferBytes() int64 {
	var n int64
	for i := range l.Entries {
		n += l.Entries[i].Transferred()
	}
	return n
}

// NetworkRequests counts entries that touched the network (everything
// except pure cache hits).
func (l *Log) NetworkRequests() int {
	n := 0
	for i := range l.Entries {
		if l.Entries[i].FromCache == "" {
			n++
		}
	}
	return n
}

// DepthCounts returns how many objects sit at each dependency depth,
// indexed by depth (capped at maxDepth; deeper objects count in the last
// bucket).
func (l *Log) DepthCounts(maxDepth int) []int {
	counts := make([]int, maxDepth+1)
	for i := range l.Entries {
		d := l.Entries[i].Depth
		if d > maxDepth {
			d = maxDepth
		}
		if d < 0 {
			d = 0
		}
		counts[d]++
	}
	return counts
}

// WriteJSON serializes the log as JSON (a HAR-shaped document).
func (l *Log) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(harDoc{Version: "1.2", Creator: creator{Name: "hispar-repro", Version: "1.0"}, Log: l}); err != nil {
		return fmt.Errorf("har: encode: %w", err)
	}
	return nil
}

// ReadJSON deserializes a log written by WriteJSON.
func ReadJSON(r io.Reader) (*Log, error) {
	var doc harDoc
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("har: decode: %w", err)
	}
	if doc.Log == nil {
		return nil, fmt.Errorf("har: document has no log")
	}
	return doc.Log, nil
}

type creator struct {
	Name    string `json:"name"`
	Version string `json:"version"`
}

type harDoc struct {
	Version string  `json:"version"`
	Creator creator `json:"creator"`
	Log     *Log    `json:"log"`
}
