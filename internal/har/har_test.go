package har

import (
	"bytes"
	"testing"
	"time"
)

func sampleLog() *Log {
	nav := time.Date(2020, 3, 12, 9, 0, 0, 0, time.UTC)
	return &Log{
		Page: Page{
			ID:              "https://example.com/#0",
			URL:             "https://example.com/",
			NavigationStart: nav,
			Timings: PageTimings{
				FirstPaint: 800 * time.Millisecond,
				OnLoad:     2 * time.Second,
				SpeedIndex: 1200 * time.Millisecond,
			},
		},
		Entries: []Entry{
			{
				StartedAt: nav,
				Time:      300 * time.Millisecond,
				Request:   Request{Method: "GET", URL: "https://example.com/"},
				Response: Response{Status: 200, MIMEType: "text/html", BodySize: 50000,
					Headers: []Header{{Name: "Cache-Control", Value: "no-cache"}}},
				Timings: Timings{Blocked: 0, DNS: 20 * time.Millisecond, Connect: 30 * time.Millisecond,
					SSL: 60 * time.Millisecond, Send: time.Millisecond, Wait: 100 * time.Millisecond,
					Receive: 89 * time.Millisecond},
				Depth: 0,
			},
			{
				StartedAt: nav.Add(350 * time.Millisecond),
				Time:      120 * time.Millisecond,
				Request:   Request{Method: "GET", URL: "https://static.example.com/app.js"},
				Response:  Response{Status: 200, MIMEType: "application/javascript", BodySize: 120000},
				Timings: Timings{Blocked: 2 * time.Millisecond, DNS: NotApplicable,
					Connect: NotApplicable, SSL: NotApplicable, Send: time.Millisecond,
					Wait: 40 * time.Millisecond, Receive: 77 * time.Millisecond},
				Initiator: "https://example.com/",
				Depth:     1,
			},
			{
				StartedAt: nav.Add(500 * time.Millisecond),
				Time:      80 * time.Millisecond,
				Request:   Request{Method: "GET", URL: "https://img.example.com/a.png"},
				Response:  Response{Status: 200, MIMEType: "image/png", BodySize: 30000},
				Timings:   Timings{Wait: 30 * time.Millisecond, Receive: 50 * time.Millisecond},
				Initiator: "https://static.example.com/app.js",
				Depth:     2,
			},
		},
	}
}

func TestAggregates(t *testing.T) {
	l := sampleLog()
	if got := l.TotalBytes(); got != 200000 {
		t.Errorf("TotalBytes = %d", got)
	}
	if got := l.ObjectCount(); got != 3 {
		t.Errorf("ObjectCount = %d", got)
	}
	dc := l.DepthCounts(5)
	if dc[0] != 1 || dc[1] != 1 || dc[2] != 1 {
		t.Errorf("DepthCounts = %v", dc)
	}
	// Depths beyond the cap collapse into the last bucket.
	l.Entries[2].Depth = 9
	if got := l.DepthCounts(5); got[5] != 1 {
		t.Errorf("capped DepthCounts = %v", got)
	}
}

func TestTimings(t *testing.T) {
	e := sampleLog().Entries[0]
	if got := e.Timings.Handshake(); got != 90*time.Millisecond {
		t.Errorf("Handshake = %v", got)
	}
	if !e.Timings.NewConnection() {
		t.Error("first request should be a new connection")
	}
	reused := sampleLog().Entries[1]
	if reused.Timings.NewConnection() {
		t.Error("reused connection misdetected")
	}
	if got := reused.Timings.Total(); got != 120*time.Millisecond {
		t.Errorf("Total = %v (NotApplicable must count as zero)", got)
	}
}

func TestHeaderValue(t *testing.T) {
	r := sampleLog().Entries[0].Response
	if got := r.HeaderValue("cache-CONTROL"); got != "no-cache" {
		t.Errorf("HeaderValue case-insensitive = %q", got)
	}
	if got := r.HeaderValue("X-Missing"); got != "" {
		t.Errorf("missing header = %q", got)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	l := sampleLog()
	var buf bytes.Buffer
	if err := l.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Page.URL != l.Page.URL || len(got.Entries) != len(l.Entries) {
		t.Fatalf("round trip lost data: %+v", got.Page)
	}
	if got.Entries[1].Timings.DNS != NotApplicable {
		t.Errorf("NotApplicable not preserved: %v", got.Entries[1].Timings.DNS)
	}
	if got.Page.Timings.SpeedIndex != l.Page.Timings.SpeedIndex {
		t.Errorf("SpeedIndex lost: %v", got.Page.Timings.SpeedIndex)
	}
	if got.Entries[2].Depth != l.Entries[2].Depth {
		t.Errorf("depth lost")
	}
}

func TestReadJSONErrors(t *testing.T) {
	if _, err := ReadJSON(bytes.NewBufferString("{")); err == nil {
		t.Error("want error for truncated JSON")
	}
	if _, err := ReadJSON(bytes.NewBufferString(`{"version":"1.2"}`)); err == nil {
		t.Error("want error for missing log")
	}
}
