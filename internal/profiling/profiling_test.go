package profiling

import (
	"os"
	"path/filepath"
	"testing"
)

func TestNoOpWhenUnset(t *testing.T) {
	stop, err := StartCPU("")
	if err != nil {
		t.Fatal(err)
	}
	stop() // must be callable
	if err := WriteHeap(""); err != nil {
		t.Fatal(err)
	}
}

func TestProfilesAreWritten(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	heap := filepath.Join(dir, "heap.pprof")

	stop, err := StartCPU(cpu)
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU so the profile has something to sample.
	x := 0
	for i := 0; i < 1_000_000; i++ {
		x += i * i
	}
	_ = x
	stop()

	if err := WriteHeap(heap); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, heap} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if st.Size() == 0 {
			t.Errorf("%s is empty", p)
		}
	}
}

func TestStartCPUBadPath(t *testing.T) {
	if _, err := StartCPU(filepath.Join(t.TempDir(), "no", "such", "dir", "x")); err == nil {
		t.Fatal("expected error for uncreatable profile path")
	}
}
