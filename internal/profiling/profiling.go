// Package profiling is the thin shared layer behind the -cpuprofile and
// -memprofile flags of the command front-ends. It exists so every
// command stops a CPU profile and snapshots the heap the same way, and
// so profile files are flushed even when a run ends in os.Exit paths
// that skip defers (callers invoke the returned stop explicitly).
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartCPU begins a CPU profile into path and returns the function that
// stops it and closes the file. With path == "" it is a no-op and the
// returned stop is safe to call.
func StartCPU(path string) (stop func(), err error) {
	if path == "" {
		return func() {}, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("profiling: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		_ = f.Close()
		return nil, fmt.Errorf("profiling: %w", err)
	}
	return func() {
		pprof.StopCPUProfile()
		_ = f.Close()
	}, nil
}

// WriteHeap forces a GC (so the profile reflects live objects, not
// garbage awaiting collection) and writes a heap profile to path. With
// path == "" it is a no-op.
func WriteHeap(path string) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("profiling: %w", err)
	}
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		_ = f.Close()
		return fmt.Errorf("profiling: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("profiling: %w", err)
	}
	return nil
}
