// Package profiling is the thin shared layer behind the -cpuprofile and
// -memprofile flags of the command front-ends. It exists so every
// command stops a CPU profile and snapshots the heap the same way, and
// so profile files are flushed even when a run ends in os.Exit paths
// that skip defers (callers invoke the returned stop explicitly).
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sync"
)

// Every profile started through this package is tracked until its stop
// function runs, so a fatal path that cannot reach the caller's stop
// can still flush everything with StopAll before os.Exit. Stops are
// idempotent: calling one after StopAll (or twice) is a no-op.
var (
	activeMu sync.Mutex
	active   []*activeProfile
)

type activeProfile struct{ stop func() }

// registerStop tracks raw and returns the idempotent public stop.
func registerStop(raw func()) func() {
	p := &activeProfile{stop: raw}
	activeMu.Lock()
	active = append(active, p)
	activeMu.Unlock()
	return func() { releaseProfile(p) }
}

// releaseProfile runs p's stop if it is still outstanding.
func releaseProfile(p *activeProfile) {
	activeMu.Lock()
	var fn func()
	for i, q := range active {
		if q == p {
			fn = q.stop
			active = append(active[:i], active[i+1:]...)
			break
		}
	}
	activeMu.Unlock()
	if fn != nil {
		fn()
	}
}

// StopAll stops every profile still running, in start order. Command
// front-ends call it from their fatal helpers so a run that dies between
// StartCPU and its explicit stop still writes a valid profile.
func StopAll() {
	activeMu.Lock()
	fns := make([]func(), len(active))
	for i, p := range active {
		fns[i] = p.stop
	}
	active = nil
	activeMu.Unlock()
	for _, fn := range fns {
		fn()
	}
}

// StartCPU begins a CPU profile into path and returns the function that
// stops it and closes the file. With path == "" it is a no-op and the
// returned stop is safe to call.
func StartCPU(path string) (stop func(), err error) {
	if path == "" {
		return func() {}, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("profiling: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		_ = f.Close()
		return nil, fmt.Errorf("profiling: %w", err)
	}
	return registerStop(func() {
		pprof.StopCPUProfile()
		_ = f.Close()
	}), nil
}

// WriteHeap forces a GC (so the profile reflects live objects, not
// garbage awaiting collection) and writes a heap profile to path. With
// path == "" it is a no-op.
func WriteHeap(path string) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("profiling: %w", err)
	}
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		_ = f.Close()
		return fmt.Errorf("profiling: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("profiling: %w", err)
	}
	return nil
}
