// Package crawler implements a polite breadth-first site crawler over the
// synthetic web. It reproduces the paper's limited exhaustive crawl (§4):
// start at the landing page, follow links recursively until enough unique
// internal URLs are discovered, with a minimum virtual-time gap between
// consecutive fetches (the paper used ≥5s) to bound server load.
package crawler

import (
	"fmt"
	"time"

	"repro/internal/urlx"
	"repro/internal/webgen"
)

// Config parameterizes a crawl.
type Config struct {
	// MaxPages stops the crawl after this many unique pages
	// (default 5000).
	MaxPages int
	// PolitenessGap is the virtual-time spacing between fetches
	// (default 5s).
	PolitenessGap time.Duration
	// SameSiteOnly restricts the frontier to the start page's site
	// (default true behaviour; external links are recorded but not
	// followed).
	FollowExternal bool
	// IgnoreRobots crawls pages excluded by robots.txt too; by default
	// the crawler is polite and skips them (§3 ethics).
	IgnoreRobots bool
}

func (c Config) withDefaults() Config {
	if c.MaxPages <= 0 {
		c.MaxPages = 5000
	}
	if c.PolitenessGap <= 0 {
		c.PolitenessGap = 5 * time.Second
	}
	return c
}

// Result is the outcome of a crawl.
type Result struct {
	Start *webgen.Page
	// Pages are the unique pages discovered, in BFS order (the start
	// page first).
	Pages []*webgen.Page
	// ExternalURLs are off-site links encountered (not followed unless
	// FollowExternal).
	ExternalURLs []string
	// Fetches is the number of page fetches performed.
	Fetches int
	// Elapsed is the virtual time the crawl took under the politeness
	// policy.
	Elapsed time.Duration
}

// Crawl runs a BFS crawl of the web starting at start.
func Crawl(web *webgen.Web, start *webgen.Page, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if start == nil {
		return nil, fmt.Errorf("crawler: nil start page")
	}
	res := &Result{Start: start}
	seen := map[string]bool{}
	extSeen := map[string]bool{}
	queue := []*webgen.Page{start}
	seen[pageKey(start)] = true

	for len(queue) > 0 && len(res.Pages) < cfg.MaxPages {
		p := queue[0]
		queue = queue[1:]
		res.Pages = append(res.Pages, p)
		res.Fetches++
		res.Elapsed += cfg.PolitenessGap

		model := p.Build()
		for _, link := range model.Links {
			norm, ok := urlx.Normalize(link)
			if !ok {
				continue
			}
			target, ok := web.PageByURL(norm)
			if !ok {
				if !extSeen[norm] {
					extSeen[norm] = true
					res.ExternalURLs = append(res.ExternalURLs, norm)
				}
				continue
			}
			sameSite := target.Site == start.Site
			if !sameSite && !cfg.FollowExternal {
				if !extSeen[norm] {
					extSeen[norm] = true
					res.ExternalURLs = append(res.ExternalURLs, norm)
				}
				continue
			}
			if !cfg.IgnoreRobots && target.Disallowed() {
				continue
			}
			k := pageKey(target)
			if !seen[k] {
				seen[k] = true
				queue = append(queue, target)
			}
		}
	}
	return res, nil
}

func pageKey(p *webgen.Page) string {
	return p.Site.Domain + "|" + p.Path()
}

// UniqueURLs returns the discovered pages' URLs.
func (r *Result) UniqueURLs() []string {
	out := make([]string, len(r.Pages))
	for i, p := range r.Pages {
		out[i] = p.URL()
	}
	return out
}

// InternalPages returns the discovered pages minus the start page.
func (r *Result) InternalPages() []*webgen.Page {
	var out []*webgen.Page
	for _, p := range r.Pages {
		if p != r.Start {
			out = append(out, p)
		}
	}
	return out
}
