package crawler

import (
	"testing"
	"time"

	"repro/internal/toplist"
	"repro/internal/webgen"
)

func crawlWeb(t *testing.T) *webgen.Web {
	t.Helper()
	u := toplist.NewUniverse(toplist.Config{Seed: 41, Size: 500})
	entries := u.Top(10)
	seeds := make([]webgen.SiteSeed, len(entries))
	for i, e := range entries {
		seeds[i] = webgen.SiteSeed{Domain: e.Domain, Rank: e.Rank}
	}
	seeds = append(seeds, webgen.SiteSeed{Domain: "bigsite.org", Rank: 5, PoolSize: 900})
	return webgen.Generate(webgen.Config{Seed: 41, Sites: seeds})
}

func TestCrawlDiscoversUniquePages(t *testing.T) {
	web := crawlWeb(t)
	site, _ := web.SiteByDomain("bigsite.org")
	res, err := Crawl(web, site.Landing(), Config{MaxPages: 400})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pages) != 400 {
		t.Fatalf("crawled %d pages, want 400", len(res.Pages))
	}
	seen := map[string]bool{}
	for _, p := range res.Pages {
		u := p.URL()
		if seen[u] {
			t.Fatalf("duplicate page %s", u)
		}
		seen[u] = true
		if p.Site != site {
			t.Fatalf("crawl escaped the site: %s", u)
		}
	}
	if res.Pages[0] != site.Landing() {
		t.Error("crawl must start at the landing page")
	}
	if len(res.InternalPages()) != 399 {
		t.Errorf("internal pages = %d", len(res.InternalPages()))
	}
	if len(res.UniqueURLs()) != 400 {
		t.Errorf("unique URLs = %d", len(res.UniqueURLs()))
	}
}

func TestPolitenessBudget(t *testing.T) {
	web := crawlWeb(t)
	site, _ := web.SiteByDomain("bigsite.org")
	res, err := Crawl(web, site.Landing(), Config{MaxPages: 50, PolitenessGap: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if res.Elapsed != time.Duration(res.Fetches)*5*time.Second {
		t.Errorf("elapsed %v for %d fetches; politeness gap violated", res.Elapsed, res.Fetches)
	}
}

func TestExternalLinksRecordedNotFollowed(t *testing.T) {
	web := crawlWeb(t)
	site := web.Sites[0]
	res, err := Crawl(web, site.Landing(), Config{MaxPages: 80})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Pages {
		if p.Site != site {
			t.Fatalf("external page crawled: %s", p.URL())
		}
	}
	// Internal pages link back to other sites only rarely in the model;
	// external URLs may be empty, which is fine — just assert no overlap.
	for _, e := range res.ExternalURLs {
		if page, ok := web.PageByURL(e); ok && page.Site == site {
			t.Errorf("same-site URL recorded as external: %s", e)
		}
	}
}

func TestNilStart(t *testing.T) {
	web := crawlWeb(t)
	if _, err := Crawl(web, nil, Config{}); err == nil {
		t.Error("want error for nil start")
	}
}

func TestCrawlReachesThousands(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	web := crawlWeb(t)
	site, _ := web.SiteByDomain("bigsite.org")
	res, err := Crawl(web, site.Landing(), Config{MaxPages: 850})
	if err != nil {
		t.Fatal(err)
	}
	// The link structure must expose nearly the whole pool (the §4
	// exhaustive crawl requires >=5000 unique URLs on real sites).
	if len(res.Pages) < 800 {
		t.Errorf("crawl saturated at %d pages; link graph too sparse", len(res.Pages))
	}
}
