// Package stats implements the statistical machinery used throughout the
// measurement study: empirical CDFs, quantiles, geometric means, the
// two-sample Kolmogorov–Smirnov test, and the rank-binned median summaries
// used by the paper's appendix figures.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by functions that need at least one sample.
var ErrEmpty = errors.New("stats: empty sample")

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// GeometricMean returns the geometric mean of xs. Non-positive values are
// skipped (the paper computes geometric means of ratios, which are always
// positive). It returns 0 if no positive values are present.
func GeometricMean(xs []float64) float64 {
	sum, n := 0.0, 0
	for _, x := range xs {
		if x > 0 {
			sum += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// Median returns the median of xs, or 0 for an empty slice.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between closest ranks. It returns 0 for an empty slice.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return quantileSorted(s, q)
}

func quantileSorted(s []float64, q float64) float64 {
	if len(s) == 0 {
		return 0
	}
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Sorted is a sample sorted once up front, for callers that need
// several quantiles of the same data. stats.Quantile copies and sorts
// on every call, which turns a p50/p90/p99 readout into three sorts of
// the same slice; Sorted pays for the sort exactly once.
type Sorted struct {
	xs []float64
}

// NewSorted copies and sorts xs.
func NewSorted(xs []float64) Sorted {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return Sorted{xs: s}
}

// SortedInPlace sorts xs in place and takes ownership of it — the
// zero-allocation constructor for hot paths with a reusable buffer. The
// caller must not use xs again except through the returned Sorted.
func SortedInPlace(xs []float64) Sorted {
	sort.Float64s(xs)
	return Sorted{xs: xs}
}

// Len returns the sample size.
func (s Sorted) Len() int { return len(s.xs) }

// Quantile returns the q-quantile with the same interpolation rule as
// stats.Quantile, without re-sorting.
func (s Sorted) Quantile(q float64) float64 { return quantileSorted(s.xs, q) }

// Median returns the 0.5-quantile.
func (s Sorted) Median() float64 { return quantileSorted(s.xs, 0.5) }

// Quantiles evaluates several quantiles over one sort.
func (s Sorted) Quantiles(qs ...float64) []float64 {
	out := make([]float64, len(qs))
	for i, q := range qs {
		out[i] = quantileSorted(s.xs, q)
	}
	return out
}

// Quantiles sorts xs once and evaluates every requested quantile — the
// n-quantile counterpart of Quantile for callers without a Sorted.
func Quantiles(xs []float64, qs ...float64) []float64 {
	return NewSorted(xs).Quantiles(qs...)
}

// MedianInt returns the median of integer samples as a float64.
func MedianInt(xs []int) float64 {
	f := make([]float64, len(xs))
	for i, x := range xs {
		f[i] = float64(x)
	}
	return Median(f)
}

// FractionBelow returns the fraction of samples strictly less than t.
func FractionBelow(xs []float64, t float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	n := 0
	for _, x := range xs {
		if x < t {
			n++
		}
	}
	return float64(n) / float64(len(xs))
}

// ECDF is an empirical cumulative distribution function over a sample.
// The zero value is unusable; construct with NewECDF.
type ECDF struct {
	sorted []float64
}

// NewECDF builds an ECDF from xs. The input is copied.
func NewECDF(xs []float64) *ECDF {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return &ECDF{sorted: s}
}

// N returns the sample size.
func (e *ECDF) N() int { return len(e.sorted) }

// At returns F(x) = P[X <= x].
func (e *ECDF) At(x float64) float64 {
	if len(e.sorted) == 0 {
		return 0
	}
	// Index of first element > x.
	i := sort.SearchFloat64s(e.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(e.sorted))
}

// Quantile returns the q-quantile of the underlying sample.
func (e *ECDF) Quantile(q float64) float64 { return quantileSorted(e.sorted, q) }

// Min returns the smallest sample, or 0 when empty.
func (e *ECDF) Min() float64 {
	if len(e.sorted) == 0 {
		return 0
	}
	return e.sorted[0]
}

// Max returns the largest sample, or 0 when empty.
func (e *ECDF) Max() float64 {
	if len(e.sorted) == 0 {
		return 0
	}
	return e.sorted[len(e.sorted)-1]
}

// Points returns up to n evenly spaced (x, F(x)) pairs suitable for
// printing a CDF series. n < 2 yields a single point at the maximum.
func (e *ECDF) Points(n int) [][2]float64 {
	if len(e.sorted) == 0 {
		return nil
	}
	if n < 2 {
		return [][2]float64{{e.Max(), 1}}
	}
	lo, hi := e.Min(), e.Max()
	pts := make([][2]float64, 0, n)
	for i := 0; i < n; i++ {
		x := lo + (hi-lo)*float64(i)/float64(n-1)
		pts = append(pts, [2]float64{x, e.At(x)})
	}
	return pts
}

// KSResult holds the outcome of a two-sample Kolmogorov–Smirnov test.
type KSResult struct {
	D float64 // supremum distance between the two ECDFs
	P float64 // asymptotic p-value of the null "same distribution"
}

// KSTest runs the two-sample KS test on samples a and b and returns the D
// statistic and asymptotic p-value. It returns ErrEmpty if either sample is
// empty. The paper reports "D" as the p-value of this test; we expose both.
func KSTest(a, b []float64) (KSResult, error) {
	if len(a) == 0 || len(b) == 0 {
		return KSResult{}, ErrEmpty
	}
	as := append([]float64(nil), a...)
	bs := append([]float64(nil), b...)
	sort.Float64s(as)
	sort.Float64s(bs)

	var d float64
	i, j := 0, 0
	na, nb := len(as), len(bs)
	for i < na && j < nb {
		x := as[i]
		if bs[j] < x {
			x = bs[j]
		}
		for i < na && as[i] <= x {
			i++
		}
		for j < nb && bs[j] <= x {
			j++
		}
		diff := math.Abs(float64(i)/float64(na) - float64(j)/float64(nb))
		if diff > d {
			d = diff
		}
	}
	en := math.Sqrt(float64(na) * float64(nb) / float64(na+nb))
	p := ksPValue((en + 0.12 + 0.11/en) * d)
	return KSResult{D: d, P: p}, nil
}

// ksPValue computes Q_KS(lambda) = 2 * sum_{k>=1} (-1)^{k-1} exp(-2 k^2 lambda^2),
// the asymptotic Kolmogorov distribution complement (Numerical Recipes form).
func ksPValue(lambda float64) float64 {
	if lambda <= 0 {
		return 1
	}
	a2 := -2 * lambda * lambda
	sum, termPrev := 0.0, 0.0
	sign := 1.0
	for k := 1; k <= 100; k++ {
		term := sign * 2 * math.Exp(a2*float64(k)*float64(k))
		sum += term
		if math.Abs(term) <= 1e-12*math.Abs(sum) && math.Abs(termPrev) <= 1e-12*math.Abs(sum) {
			break
		}
		termPrev = term
		sign = -sign
	}
	if sum < 0 {
		return 0
	}
	if sum > 1 {
		return 1
	}
	return sum
}

// Bin is one rank bin of a binned-median summary.
type Bin struct {
	Lo, Hi int     // half-open rank range [Lo, Hi)
	Median float64 // median of the values whose rank falls in the bin
	N      int     // number of samples in the bin
}

// BinnedMedians splits samples — given as (rank, value) pairs — into
// consecutive bins of binSize ranks each (ranks are 1-based as in top
// lists) and returns the per-bin medians. Ranks beyond the last full bin
// form a final partial bin. It returns nil if binSize <= 0.
func BinnedMedians(ranks []int, values []float64, binSize int) []Bin {
	if binSize <= 0 || len(ranks) != len(values) || len(ranks) == 0 {
		return nil
	}
	maxRank := 0
	for _, r := range ranks {
		if r > maxRank {
			maxRank = r
		}
	}
	nbins := (maxRank + binSize - 1) / binSize
	buckets := make([][]float64, nbins)
	for i, r := range ranks {
		if r < 1 {
			continue
		}
		b := (r - 1) / binSize
		buckets[b] = append(buckets[b], values[i])
	}
	bins := make([]Bin, 0, nbins)
	for b, vals := range buckets {
		bins = append(bins, Bin{
			Lo:     b*binSize + 1,
			Hi:     (b + 1) * binSize,
			Median: Median(vals),
			N:      len(vals),
		})
	}
	return bins
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// SumInt returns the sum of integer samples.
func SumInt(xs []int) int {
	s := 0
	for _, x := range xs {
		s += x
	}
	return s
}
