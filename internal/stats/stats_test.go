package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestMean(t *testing.T) {
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v, want 0", got)
	}
	if got := Mean([]float64{1, 2, 3, 4}); !almostEqual(got, 2.5, 1e-12) {
		t.Errorf("Mean = %v, want 2.5", got)
	}
}

func TestGeometricMean(t *testing.T) {
	if got := GeometricMean([]float64{2, 8}); !almostEqual(got, 4, 1e-12) {
		t.Errorf("GeometricMean(2,8) = %v, want 4", got)
	}
	// Non-positive values are skipped.
	if got := GeometricMean([]float64{-1, 0, 2, 8}); !almostEqual(got, 4, 1e-12) {
		t.Errorf("GeometricMean with nonpositives = %v, want 4", got)
	}
	if got := GeometricMean([]float64{-1, 0}); got != 0 {
		t.Errorf("GeometricMean of nonpositives = %v, want 0", got)
	}
}

func TestMedianAndQuantile(t *testing.T) {
	xs := []float64{5, 1, 3}
	if got := Median(xs); got != 3 {
		t.Errorf("Median = %v, want 3", got)
	}
	// Input must not be mutated.
	if xs[0] != 5 || xs[1] != 1 || xs[2] != 3 {
		t.Errorf("Median mutated its input: %v", xs)
	}
	even := []float64{1, 2, 3, 4}
	if got := Median(even); !almostEqual(got, 2.5, 1e-12) {
		t.Errorf("Median(even) = %v, want 2.5", got)
	}
	if got := Quantile(even, 0); got != 1 {
		t.Errorf("Quantile(0) = %v, want 1", got)
	}
	if got := Quantile(even, 1); got != 4 {
		t.Errorf("Quantile(1) = %v, want 4", got)
	}
	if got := Quantile(nil, 0.5); got != 0 {
		t.Errorf("Quantile(nil) = %v, want 0", got)
	}
}

func TestQuantileMonotonic(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 101)
	for i := range xs {
		xs[i] = rng.NormFloat64() * 10
	}
	prev := math.Inf(-1)
	for q := 0.0; q <= 1.0; q += 0.05 {
		v := Quantile(xs, q)
		if v < prev {
			t.Fatalf("quantile not monotonic at q=%.2f: %v < %v", q, v, prev)
		}
		prev = v
	}
}

func TestFractionBelow(t *testing.T) {
	xs := []float64{-1, 0, 1, 2}
	if got := FractionBelow(xs, 0); got != 0.25 {
		t.Errorf("FractionBelow = %v, want 0.25", got)
	}
	if got := FractionBelow(nil, 0); got != 0 {
		t.Errorf("FractionBelow(nil) = %v, want 0", got)
	}
}

func TestECDF(t *testing.T) {
	e := NewECDF([]float64{1, 2, 2, 3})
	cases := []struct {
		x    float64
		want float64
	}{
		{0.5, 0}, {1, 0.25}, {2, 0.75}, {2.5, 0.75}, {3, 1}, {10, 1},
	}
	for _, c := range cases {
		if got := e.At(c.x); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("At(%v) = %v, want %v", c.x, got, c.want)
		}
	}
	if e.N() != 4 || e.Min() != 1 || e.Max() != 3 {
		t.Errorf("N/Min/Max = %d/%v/%v", e.N(), e.Min(), e.Max())
	}
	pts := e.Points(5)
	if len(pts) != 5 || pts[0][0] != 1 || pts[4][0] != 3 || pts[4][1] != 1 {
		t.Errorf("Points = %v", pts)
	}
}

func TestECDFProperties(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		var xs []float64
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		e := NewECDF(xs)
		// F is monotone in [0,1] and hits 1 at the max.
		prev := 0.0
		lo, hi := e.Min(), e.Max()
		for i := 0; i <= 10; i++ {
			x := lo + (hi-lo)*float64(i)/10
			v := e.At(x)
			if v < prev-1e-12 || v < 0 || v > 1 {
				return false
			}
			prev = v
		}
		return almostEqual(e.At(hi), 1, 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestKSTestIdenticalSamples(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	res, err := KSTest(xs, xs)
	if err != nil {
		t.Fatal(err)
	}
	if res.D != 0 {
		t.Errorf("D for identical samples = %v, want 0", res.D)
	}
	if res.P < 0.99 {
		t.Errorf("p for identical samples = %v, want ~1", res.P)
	}
}

func TestKSTestSeparatesDistributions(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := make([]float64, 400)
	b := make([]float64, 400)
	for i := range a {
		a[i] = rng.NormFloat64()
		b[i] = rng.NormFloat64() + 1.5
	}
	res, err := KSTest(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if res.P > 1e-6 {
		t.Errorf("p for shifted normals = %v, want << 1e-6", res.P)
	}
	if res.D < 0.3 {
		t.Errorf("D for shifted normals = %v, want > 0.3", res.D)
	}
}

func TestKSTestSameDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	rejections := 0
	const trials = 40
	for trial := 0; trial < trials; trial++ {
		a := make([]float64, 200)
		b := make([]float64, 200)
		for i := range a {
			a[i] = rng.NormFloat64()
			b[i] = rng.NormFloat64()
		}
		res, err := KSTest(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if res.P < 0.05 {
			rejections++
		}
	}
	// ~5% expected; allow generous slack.
	if rejections > trials/4 {
		t.Errorf("same-distribution rejections %d/%d, want ~5%%", rejections, trials)
	}
}

func TestKSTestEmpty(t *testing.T) {
	if _, err := KSTest(nil, []float64{1}); err == nil {
		t.Error("want error for empty sample")
	}
}

func TestBinnedMedians(t *testing.T) {
	ranks := []int{1, 2, 3, 101, 102, 250}
	vals := []float64{1, 2, 3, 10, 20, 99}
	bins := BinnedMedians(ranks, vals, 100)
	if len(bins) != 3 {
		t.Fatalf("bins = %d, want 3", len(bins))
	}
	if bins[0].Median != 2 || bins[0].N != 3 {
		t.Errorf("bin0 = %+v", bins[0])
	}
	if bins[1].Median != 15 || bins[1].N != 2 {
		t.Errorf("bin1 = %+v", bins[1])
	}
	if bins[2].Median != 99 || bins[2].N != 1 {
		t.Errorf("bin2 = %+v", bins[2])
	}
	if bins[0].Lo != 1 || bins[0].Hi != 100 {
		t.Errorf("bin0 range = %d-%d", bins[0].Lo, bins[0].Hi)
	}
	if BinnedMedians(nil, nil, 100) != nil {
		t.Error("empty input should yield nil")
	}
	if BinnedMedians(ranks, vals, 0) != nil {
		t.Error("zero bin size should yield nil")
	}
}

func TestSums(t *testing.T) {
	if Sum([]float64{1.5, 2.5}) != 4 {
		t.Error("Sum wrong")
	}
	if SumInt([]int{1, 2, 3}) != 6 {
		t.Error("SumInt wrong")
	}
	if MedianInt([]int{1, 3, 5}) != 3 {
		t.Error("MedianInt wrong")
	}
}
