package stats

import (
	"math"
	"math/rand"
	"testing"
)

// sketchSample draws a deterministic mixed-sign heavy-tailed sample.
func sketchSample(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	xs := make([]float64, n)
	for i := range xs {
		v := math.Exp(rng.NormFloat64()*2) * 1e3 // log-normal, ~6 decades
		if rng.Intn(4) == 0 {
			v = -v
		}
		if rng.Intn(50) == 0 {
			v = 0
		}
		xs[i] = v
	}
	return xs
}

func TestSketchQuantileAccuracy(t *testing.T) {
	xs := sketchSample(20000, 1)
	sk := NewDefaultSketch()
	for _, v := range xs {
		sk.Insert(v)
	}
	sorted := NewSorted(xs)
	for _, q := range []float64{0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99} {
		got := sk.Quantile(q)
		want := sorted.Quantile(q)
		// The sketch guarantees relative error alpha against a true
		// sample value; the interpolated reference adds a little slack.
		tol := 3*DefaultSketchAlpha*math.Abs(want) + sketchZeroEps
		if math.Abs(got-want) > tol {
			t.Errorf("q=%.2f: sketch %v, sample %v (tol %v)", q, got, want, tol)
		}
	}
	if got, want := sk.Quantile(0), sorted.Quantile(0); got != want {
		t.Errorf("q=0 must be exact min: %v vs %v", got, want)
	}
	if got, want := sk.Quantile(1), sorted.Quantile(1); got != want {
		t.Errorf("q=1 must be exact max: %v vs %v", got, want)
	}
	if sk.Count() != uint64(len(xs)) {
		t.Errorf("count %d, want %d", sk.Count(), len(xs))
	}
	if got, want := sk.Mean(), Mean(xs); math.Abs(got-want) > 1e-9*math.Abs(want) {
		t.Errorf("mean %v, want %v", got, want)
	}
}

// TestSketchOrderInvariance is the property the sharded study engine
// rests on: the same multiset of values must produce an identical
// sketch no matter the insertion order or how it was partitioned into
// shards before merging.
func TestSketchOrderInvariance(t *testing.T) {
	xs := sketchSample(5000, 2)

	forward := NewDefaultSketch()
	for _, v := range xs {
		forward.Insert(v)
	}
	backward := NewDefaultSketch()
	for i := len(xs) - 1; i >= 0; i-- {
		backward.Insert(xs[i])
	}

	// Partition into ragged shards and merge them out of order.
	shards := make([]*Sketch, 7)
	for i := range shards {
		shards[i] = NewDefaultSketch()
	}
	for i, v := range xs {
		shards[(i*i)%len(shards)].Insert(v)
	}
	merged := NewDefaultSketch()
	for _, i := range []int{3, 0, 6, 1, 5, 2, 4} {
		if err := merged.Merge(shards[i]); err != nil {
			t.Fatal(err)
		}
	}

	for _, q := range []float64{0, 0.1, 0.5, 0.9, 0.99, 1} {
		f, b, m := forward.Quantile(q), backward.Quantile(q), merged.Quantile(q)
		if f != b || f != m {
			t.Errorf("q=%v differs across orders: forward %v backward %v merged %v", q, f, b, m)
		}
	}
	if forward.Count() != merged.Count() || forward.Bins() != merged.Bins() {
		t.Errorf("structure differs: count %d/%d bins %d/%d",
			forward.Count(), merged.Count(), forward.Bins(), merged.Bins())
	}
	// Sums agree to float tolerance (addition order legitimately differs).
	if math.Abs(forward.Sum()-merged.Sum()) > 1e-6*math.Abs(forward.Sum()) {
		t.Errorf("sum diverged: %v vs %v", forward.Sum(), merged.Sum())
	}
}

func TestSketchDeterministicAcrossRuns(t *testing.T) {
	build := func() *Sketch {
		sk := NewDefaultSketch()
		for _, v := range sketchSample(3000, 3) {
			sk.Insert(v)
		}
		return sk
	}
	a, b := build(), build()
	for q := 0.0; q <= 1.0; q += 0.05 {
		if a.Quantile(q) != b.Quantile(q) {
			t.Fatalf("q=%v: %v vs %v", q, a.Quantile(q), b.Quantile(q))
		}
	}
	for _, x := range []float64{-100, 0, 1, 1e3, 1e6} {
		if a.At(x) != b.At(x) || a.FractionBelow(x) != b.FractionBelow(x) {
			t.Fatalf("CDF at %v differs across identical builds", x)
		}
	}
}

func TestSketchBinsBoundedByRange(t *testing.T) {
	sk := NewDefaultSketch()
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 200000; i++ {
		sk.Insert(1 + rng.Float64()*1e9) // 9 decades
	}
	// Bins track dynamic range, not sample count: log_gamma(1e9) ≈ 1036.
	if sk.Bins() > 1200 {
		t.Errorf("bins %d for 9 decades at alpha=1%%; want ~1040", sk.Bins())
	}
	if sk.Alpha() != DefaultSketchAlpha {
		t.Errorf("alpha degraded to %v without cause", sk.Alpha())
	}
}

func TestSketchCoarsensPastMaxBins(t *testing.T) {
	sk := NewSketch(0.01, 64)
	for i := -200; i <= 200; i++ {
		sk.Insert(math.Exp(float64(i) / 10)) // ~17 decades
	}
	if sk.Bins() > 64 {
		t.Errorf("bins %d exceed cap 64", sk.Bins())
	}
	if sk.Alpha() <= 0.01 {
		t.Errorf("coarsening must degrade alpha, still %v", sk.Alpha())
	}
	// Quantiles still honor the (degraded) error bound.
	med := sk.Median()
	if math.Abs(med-1) > sk.Alpha()*2+0.1 {
		t.Errorf("median %v, want ~1 within alpha %v", med, sk.Alpha())
	}
}

func TestSketchFractionBelowAndAt(t *testing.T) {
	sk := NewDefaultSketch()
	for i := 1; i <= 1000; i++ {
		sk.Insert(float64(i))
	}
	if got := sk.FractionBelow(500); math.Abs(got-0.5) > 0.02 {
		t.Errorf("FractionBelow(500) = %v, want ~0.5", got)
	}
	if got := sk.At(1000); got != 1 {
		t.Errorf("At(max) = %v, want 1", got)
	}
	if got := sk.At(0); got != 0 {
		t.Errorf("At(0) = %v, want 0", got)
	}
	pts := sk.Points(11)
	if len(pts) != 11 {
		t.Fatalf("points: %d", len(pts))
	}
	if pts[len(pts)-1][1] != 1 {
		t.Errorf("last CDF point %v, want 1", pts[len(pts)-1][1])
	}
	for i := 1; i < len(pts); i++ {
		if pts[i][1] < pts[i-1][1] {
			t.Errorf("CDF not monotone at %d: %v < %v", i, pts[i][1], pts[i-1][1])
		}
	}
}

func TestSketchNegativeAndZero(t *testing.T) {
	sk := NewDefaultSketch()
	vals := []float64{-1000, -10, -0.5, 0, 0, 0.5, 10, 1000}
	for _, v := range vals {
		sk.Insert(v)
	}
	if sk.Min() != -1000 || sk.Max() != 1000 {
		t.Errorf("min/max %v/%v", sk.Min(), sk.Max())
	}
	if got := sk.Median(); math.Abs(got) > 0.01 {
		t.Errorf("median %v, want ~0", got)
	}
	if got := sk.FractionBelow(0); got != 0.375 {
		t.Errorf("FractionBelow(0) = %v, want 3/8", got)
	}
}

func TestSketchEmptyAndNaN(t *testing.T) {
	sk := NewDefaultSketch()
	if sk.Quantile(0.5) != 0 || sk.Mean() != 0 || sk.At(1) != 0 || sk.Points(5) != nil {
		t.Error("empty sketch must read as zeros")
	}
	sk.Insert(math.NaN())
	if sk.Count() != 0 {
		t.Errorf("NaN must be ignored, count %d", sk.Count())
	}
	sk.Insert(math.Inf(1))
	if sk.Count() != 1 || sk.Max() != math.MaxFloat64 {
		t.Errorf("+Inf must clamp: count %d max %v", sk.Count(), sk.Max())
	}
}

func TestSketchMergeMismatchedAlpha(t *testing.T) {
	a := NewSketch(0.01, 0)
	b := NewSketch(0.02, 0)
	b.Insert(1)
	if err := a.Merge(b); err == nil {
		t.Error("merging misaligned bucket lines must fail")
	}
	// Same-origin coarsened sketches realign: 0.01 coarsened once has
	// gamma², which a fresh 0.01 sketch reaches by coarsening too.
	c := NewSketch(0.01, 0)
	c.coarsen()
	c.Insert(5)
	d := NewSketch(0.01, 0)
	d.Insert(7)
	if err := d.Merge(c); err != nil {
		t.Errorf("same-origin coarsened merge: %v", err)
	}
	if d.Count() != 2 {
		t.Errorf("count %d", d.Count())
	}
}

func TestSortedQuantiles(t *testing.T) {
	xs := []float64{9, 1, 5, 3, 7}
	s := NewSorted(xs)
	if xs[0] != 9 {
		t.Error("NewSorted must not mutate its input")
	}
	for _, q := range []float64{0, 0.25, 0.5, 0.9, 1} {
		if got, want := s.Quantile(q), Quantile(xs, q); got != want {
			t.Errorf("q=%v: %v vs %v", q, got, want)
		}
	}
	got := Quantiles(xs, 0.5, 1)
	if got[0] != 5 || got[1] != 9 {
		t.Errorf("Quantiles = %v", got)
	}
	own := []float64{4, 2, 8}
	ip := SortedInPlace(own)
	if own[0] != 2 {
		t.Error("SortedInPlace must sort in place")
	}
	if ip.Median() != 4 || ip.Len() != 3 {
		t.Errorf("in-place median %v len %d", ip.Median(), ip.Len())
	}
}
