package stats

import (
	"fmt"
	"math"
	"sort"
)

// Sketch is a mergeable quantile sketch: a log-bucketed histogram in the
// style of DDSketch, tuned for the streaming study engine. Every value v
// with |v| >= sketchZeroEps lands in the bucket whose index is
// ceil(log_gamma |v|) (gamma = (1+alpha)/(1-alpha)), so any quantile it
// reports is within a relative error of alpha of a true sample value.
// Values smaller than sketchZeroEps in magnitude share an exact zero
// bucket, and negative values mirror the positive bucket line.
//
// Properties the engine depends on:
//
//   - Insertion-order invariance: the sketch state is a pure function of
//     the multiset of inserted values (bucket counts are integer sums),
//     so shard accumulators filled by racing workers merge to the same
//     sketch no matter how sites were scheduled. The only caveat is Sum:
//     float addition is not associative, so Sum-derived outputs are
//     bit-stable only when values are folded in a fixed order (the
//     streaming engine folds in site-rank order for exactly this
//     reason).
//   - Bounded size: the bucket count grows with the dynamic range of the
//     data, not the sample count — ceil(log_gamma(max/min)) buckets per
//     sign, about 1,160 for values spanning 12 decades at alpha = 1%.
//     If a pathological range exceeds MaxBins, the sketch coarsens
//     deterministically (alpha doubles, buckets pairwise collapse) and
//     Alpha() reports the degraded accuracy.
//   - Deterministic reads: quantile and CDF queries walk buckets in
//     ascending value order (sorted keys, never map order).
//
// The zero value is unusable; construct with NewSketch.
type Sketch struct {
	alpha   float64
	gamma   float64
	lgGamma float64
	maxBins int

	pos  map[int]uint64 // bucket index -> count, positive values
	neg  map[int]uint64 // bucket index -> count, negative values (by |v|)
	zero uint64

	count    uint64
	sum      float64
	min, max float64
}

// sketchZeroEps is the magnitude below which values are counted as exact
// zeros. Study metrics are milliseconds, bytes, and counts; anything
// below this is zero for every question the paper asks.
const sketchZeroEps = 1e-9

// DefaultSketchAlpha is the relative accuracy used by NewDefaultSketch:
// reported quantiles are within 1% of a true sample value.
const DefaultSketchAlpha = 0.01

// DefaultSketchMaxBins bounds the bucket count (per sketch, both signs
// combined) before deterministic coarsening kicks in. At alpha = 1% this
// accommodates roughly 35 decades of dynamic range — far beyond any
// study metric — so coarsening is a safety valve, not a working mode.
const DefaultSketchMaxBins = 4096

// NewSketch builds a sketch with the given relative accuracy alpha
// (0 < alpha < 1) and bucket bound maxBins (<= 0 means
// DefaultSketchMaxBins).
func NewSketch(alpha float64, maxBins int) *Sketch {
	if !(alpha > 0 && alpha < 1) {
		alpha = DefaultSketchAlpha
	}
	if maxBins <= 0 {
		maxBins = DefaultSketchMaxBins
	}
	s := &Sketch{alpha: alpha, maxBins: maxBins, pos: make(map[int]uint64), neg: make(map[int]uint64)}
	s.setAlpha(alpha)
	return s
}

// NewDefaultSketch builds a sketch with the default accuracy and bounds.
func NewDefaultSketch() *Sketch { return NewSketch(DefaultSketchAlpha, DefaultSketchMaxBins) }

func (s *Sketch) setAlpha(alpha float64) {
	s.alpha = alpha
	s.gamma = (1 + alpha) / (1 - alpha)
	s.lgGamma = math.Log(s.gamma)
}

// Alpha returns the current relative accuracy (it degrades only if the
// sketch ever coarsened past MaxBins).
func (s *Sketch) Alpha() float64 { return s.alpha }

// Count returns the number of inserted values.
func (s *Sketch) Count() uint64 { return s.count }

// Sum returns the exact running sum of inserted values. It is the one
// read whose low bits depend on insertion order; fold in a fixed order
// when bit-stability matters.
func (s *Sketch) Sum() float64 { return s.sum }

// Mean returns the arithmetic mean, or 0 when empty.
func (s *Sketch) Mean() float64 {
	if s.count == 0 {
		return 0
	}
	return s.sum / float64(s.count)
}

// Min returns the smallest inserted value, or 0 when empty.
func (s *Sketch) Min() float64 {
	if s.count == 0 {
		return 0
	}
	return s.min
}

// Max returns the largest inserted value, or 0 when empty.
func (s *Sketch) Max() float64 {
	if s.count == 0 {
		return 0
	}
	return s.max
}

// Bins returns the live bucket count (diagnostics and tests).
func (s *Sketch) Bins() int { return len(s.pos) + len(s.neg) }

// key maps a magnitude (>= sketchZeroEps) to its bucket index.
func (s *Sketch) key(mag float64) int {
	return int(math.Ceil(math.Log(mag) / s.lgGamma))
}

// rep returns the representative value of bucket k: the midpoint of
// (gamma^(k-1), gamma^k] in relative terms, within alpha of any member.
func (s *Sketch) rep(k int) float64 {
	return 2 * math.Exp(float64(k)*s.lgGamma) / (s.gamma + 1)
}

// Insert adds one value. NaN is ignored (it has no rank); infinities are
// clamped into the extreme buckets via math.MaxFloat64.
func (s *Sketch) Insert(v float64) {
	if math.IsNaN(v) {
		return
	}
	if math.IsInf(v, 1) {
		v = math.MaxFloat64
	}
	if math.IsInf(v, -1) {
		v = -math.MaxFloat64
	}
	if s.count == 0 || v < s.min {
		s.min = v
	}
	if s.count == 0 || v > s.max {
		s.max = v
	}
	s.count++
	s.sum += v
	switch {
	case math.Abs(v) < sketchZeroEps:
		s.zero++
	case v > 0:
		s.pos[s.key(v)]++
	default:
		s.neg[s.key(-v)]++
	}
	s.coarsenIfNeeded()
}

// InsertN adds the same value n times (used when folding pre-counted
// shards).
func (s *Sketch) InsertN(v float64, n uint64) {
	for i := uint64(0); i < n; i++ {
		s.Insert(v)
	}
}

// Merge folds other into s. Bucket counts are integer sums, so merging
// is commutative and associative up to Sum's float rounding; the
// streaming engine merges shards in rank order to pin even that down.
// The receiver and argument may use different accuracies: the merged
// sketch coarsens to the coarser of the two first.
func (s *Sketch) Merge(other *Sketch) error {
	if other == nil || other.count == 0 {
		return nil
	}
	for other.alpha > s.alpha+1e-15 {
		s.coarsen()
	}
	if math.Abs(other.alpha-s.alpha) > 1e-15 {
		// Bucket lines only align when gammas match (we only ever coarsen
		// by squaring gamma, so same-origin sketches always realign).
		return fmt.Errorf("stats: cannot merge sketches with misaligned accuracies %g and %g", s.alpha, other.alpha)
	}
	if other.min < s.min || s.count == 0 {
		s.min = other.min
	}
	if other.max > s.max || s.count == 0 {
		s.max = other.max
	}
	s.count += other.count
	s.sum += other.sum
	s.zero += other.zero
	for k, c := range other.pos {
		s.pos[k] += c
	}
	for k, c := range other.neg {
		s.neg[k] += c
	}
	s.coarsenIfNeeded()
	return nil
}

// coarsenIfNeeded halves resolution until the bucket bound holds.
func (s *Sketch) coarsenIfNeeded() {
	for s.Bins() > s.maxBins {
		s.coarsen()
	}
}

// coarsen squares gamma (doubling alpha to first order) and collapses
// buckets pairwise: bucket k at gamma maps to ceil(k/2) at gamma². The
// mapping depends only on bucket indices, never on contents or order.
func (s *Sketch) coarsen() {
	fold := func(m map[int]uint64) map[int]uint64 {
		out := make(map[int]uint64, (len(m)+1)/2)
		for k, c := range m {
			nk := k / 2
			if k%2 != 0 { // ceil for positives, matching ceil(log) keying
				nk = (k + 1) / 2
			}
			out[nk] += c
		}
		return out
	}
	s.pos = fold(s.pos)
	s.neg = fold(s.neg)
	gamma2 := s.gamma * s.gamma
	s.alpha = (gamma2 - 1) / (gamma2 + 1)
	s.gamma = gamma2
	s.lgGamma = math.Log(gamma2)
}

// sortedKeys returns m's bucket indices in ascending order.
func sortedKeys(m map[int]uint64) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// Quantile returns the q-quantile (0 <= q <= 1), or 0 when empty. The
// result is within Alpha() relative error of the true sample quantile,
// except at the extremes: q=0 and q=1 return the exact Min and Max.
func (s *Sketch) Quantile(q float64) float64 {
	if s.count == 0 {
		return 0
	}
	if q <= 0 {
		return s.min
	}
	if q >= 1 {
		return s.max
	}
	// Target the same closest-rank convention as stats.Quantile; the
	// bucket holding that rank answers within relative error alpha.
	rank := uint64(math.Round(q * float64(s.count-1)))
	var seen uint64
	// Ascending value order: most-negative buckets first (descending
	// index over neg), then zero, then positives ascending.
	negKeys := sortedKeys(s.neg)
	for i := len(negKeys) - 1; i >= 0; i-- {
		seen += s.neg[negKeys[i]]
		if seen > rank {
			return -s.rep(negKeys[i])
		}
	}
	seen += s.zero
	if seen > rank {
		return 0
	}
	for _, k := range sortedKeys(s.pos) {
		seen += s.pos[k]
		if seen > rank {
			return s.rep(k)
		}
	}
	return s.max
}

// Median returns the 0.5-quantile.
func (s *Sketch) Median() float64 { return s.Quantile(0.5) }

// FractionBelow returns the fraction of inserted values whose bucket
// representative is strictly less than t — the streaming analogue of
// stats.FractionBelow, exact up to bucket granularity at t.
func (s *Sketch) FractionBelow(t float64) float64 {
	if s.count == 0 {
		return 0
	}
	// Exact outside the observed range, whatever the bucket boundaries.
	if t <= s.min {
		return 0
	}
	if t > s.max {
		return 1
	}
	var below uint64
	for k, c := range s.neg {
		if -s.rep(k) < t {
			below += c
		}
	}
	if 0 < t {
		below += s.zero
	}
	for k, c := range s.pos {
		if s.rep(k) < t {
			below += c
		}
	}
	return float64(below) / float64(s.count)
}

// At returns the empirical CDF at x, F(x) = P[X <= x], up to bucket
// granularity — the streaming analogue of ECDF.At.
func (s *Sketch) At(x float64) float64 {
	if s.count == 0 {
		return 0
	}
	// Exact outside the observed range, whatever the bucket boundaries.
	if x >= s.max {
		return 1
	}
	if x < s.min {
		return 0
	}
	var atOrBelow uint64
	for k, c := range s.neg {
		if -s.rep(k) <= x {
			atOrBelow += c
		}
	}
	if 0 <= x {
		atOrBelow += s.zero
	}
	for k, c := range s.pos {
		if s.rep(k) <= x {
			atOrBelow += c
		}
	}
	return float64(atOrBelow) / float64(s.count)
}

// Points returns up to n evenly spaced (x, F(x)) pairs — the streaming
// analogue of ECDF.Points, for rendering CDF series without holding the
// sample.
func (s *Sketch) Points(n int) [][2]float64 {
	if s.count == 0 {
		return nil
	}
	if n < 2 {
		return [][2]float64{{s.max, 1}}
	}
	lo, hi := s.min, s.max
	pts := make([][2]float64, 0, n)
	for i := 0; i < n; i++ {
		x := lo + (hi-lo)*float64(i)/float64(n-1)
		pts = append(pts, [2]float64{x, s.At(x)})
	}
	return pts
}
