package hispar

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/search"
	"repro/internal/toplist"
	"repro/internal/webgen"
)

func buildFixture(t *testing.T, week int, sites, perSite int) (*List, BuildStats, *webgen.Web) {
	t.Helper()
	u := toplist.NewUniverse(toplist.Config{Seed: 21, Size: 1000})
	u.Step(week * 7)
	entries := u.Top(sites * 2)
	seeds := make([]webgen.SiteSeed, len(entries))
	for i, e := range entries {
		seeds[i] = webgen.SiteSeed{Domain: e.Domain, Rank: e.Rank}
	}
	web := webgen.Generate(webgen.Config{Seed: 21, Week: week, Sites: seeds})
	eng := search.New(web, search.Config{EnglishOnly: true})
	list, stats, err := Build(eng, entries, BuildConfig{
		Sites: sites, URLsPerSite: perSite, MinResults: 5, Name: "Htest", Week: week,
	})
	if err != nil {
		t.Fatal(err)
	}
	return list, stats, web
}

func TestBuildShape(t *testing.T) {
	list, stats, _ := buildFixture(t, 0, 50, 20)
	if len(list.Sets) != 50 {
		t.Fatalf("sets = %d", len(list.Sets))
	}
	for _, set := range list.Sets {
		if set.Landing == "" || !strings.Contains(set.Landing, set.Domain) {
			t.Fatalf("bad landing %q for %s", set.Landing, set.Domain)
		}
		if !strings.HasSuffix(strings.SplitN(set.Landing, "?", 2)[0], "/") {
			t.Errorf("landing %q is not a root document", set.Landing)
		}
		if len(set.Internal) == 0 || len(set.Internal) > 19 {
			t.Errorf("%s: %d internal URLs", set.Domain, len(set.Internal))
		}
		seen := map[string]bool{set.Landing: true}
		for _, u := range set.Internal {
			if seen[u] {
				t.Errorf("%s: duplicate URL %s", set.Domain, u)
			}
			seen[u] = true
		}
	}
	if stats.Queries == 0 || stats.CostUSD <= 0 {
		t.Errorf("stats = %+v", stats)
	}
	// Ranks ascend.
	for i := 1; i < len(list.Sets); i++ {
		if list.Sets[i].Rank < list.Sets[i-1].Rank {
			t.Fatal("sets not in rank order")
		}
	}
}

func TestBuildDropsFewEnglishSites(t *testing.T) {
	// Use the H2K threshold (10 results), below which every FewEnglish
	// site (3–8 English pages) must be dropped.
	u := toplist.NewUniverse(toplist.Config{Seed: 21, Size: 1000})
	entries := u.Top(120)
	seeds := make([]webgen.SiteSeed, len(entries))
	for i, e := range entries {
		seeds[i] = webgen.SiteSeed{Domain: e.Domain, Rank: e.Rank}
	}
	web := webgen.Generate(webgen.Config{Seed: 21, Sites: seeds})
	few := 0
	for _, s := range web.Sites {
		if s.Profile.FewEnglish {
			few++
		}
	}
	if few == 0 {
		t.Skip("no FewEnglish sites drawn at this seed")
	}
	eng := search.New(web, search.Config{EnglishOnly: true})
	_, stats, err := Build(eng, entries, BuildConfig{Sites: 60, URLsPerSite: 20, MinResults: 10})
	if err != nil {
		t.Fatal(err)
	}
	if stats.SitesDropped == 0 {
		t.Errorf("no sites dropped although %d of 120 are FewEnglish", few)
	}
}

func TestTopBottomSlices(t *testing.T) {
	list, _, _ := buildFixture(t, 0, 40, 10)
	top := list.Top(10)
	bottom := list.Bottom(10)
	if len(top.Sets) != 10 || len(bottom.Sets) != 10 {
		t.Fatal("slice sizes wrong")
	}
	if top.Sets[0].Domain != list.Sets[0].Domain {
		t.Error("Top should start at rank 1")
	}
	if bottom.Sets[9].Domain != list.Sets[39].Domain {
		t.Error("Bottom should end at the last site")
	}
	if _, ok := list.Set(top.Sets[0].Domain); !ok {
		t.Error("Set lookup failed")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	list, _, _ := buildFixture(t, 0, 20, 10)
	var buf bytes.Buffer
	if err := list.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != list.Name || got.Week != list.Week {
		t.Errorf("header lost: %s/%d", got.Name, got.Week)
	}
	if len(got.Sets) != len(list.Sets) {
		t.Fatalf("sets = %d, want %d", len(got.Sets), len(list.Sets))
	}
	for i := range got.Sets {
		if got.Sets[i].Domain != list.Sets[i].Domain ||
			got.Sets[i].Landing != list.Sets[i].Landing ||
			len(got.Sets[i].Internal) != len(list.Sets[i].Internal) {
			t.Fatalf("set %d mismatch", i)
		}
	}
	if got.Pages() != list.Pages() {
		t.Errorf("pages = %d, want %d", got.Pages(), list.Pages())
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("not,a\n")); err == nil {
		t.Error("want error for malformed row")
	}
	if _, err := ReadCSV(strings.NewReader("x,dom,url\n")); err == nil {
		t.Error("want error for bad rank")
	}
}

func TestChurnMetrics(t *testing.T) {
	a := &List{Sets: []URLSet{
		{Domain: "a.com", Landing: "https://a.com/", Internal: []string{"https://a.com/1", "https://a.com/2"}},
		{Domain: "b.com", Landing: "https://b.com/", Internal: []string{"https://b.com/1"}},
	}}
	b := &List{Sets: []URLSet{
		{Domain: "a.com", Landing: "https://a.com/", Internal: []string{"http://a.com/1", "https://a.com/3"}},
		{Domain: "c.com", Landing: "https://c.com/", Internal: []string{"https://c.com/1"}},
	}}
	if got := SiteChurn(a, b); got != 0.5 {
		t.Errorf("SiteChurn = %v, want 0.5 (b.com gone)", got)
	}
	// a.com: /1 persists (scheme change ignored), /2 gone → churn 1/2;
	// b.com excluded (site churned out).
	if got := InternalChurn(a, b); got != 0.5 {
		t.Errorf("InternalChurn = %v, want 0.5", got)
	}
	if got := SiteChurn(&List{}, b); got != 0 {
		t.Errorf("empty churn = %v", got)
	}
}

func TestWeeklyChurnEndToEnd(t *testing.T) {
	l0, _, _ := buildFixture(t, 0, 40, 20)
	l1, _, _ := buildFixture(t, 1, 40, 20)
	urlChurn := InternalChurn(l0, l1)
	if urlChurn <= 0.03 {
		t.Errorf("weekly internal churn %.3f suspiciously low", urlChurn)
	}
	if urlChurn > 0.8 {
		t.Errorf("weekly internal churn %.3f suspiciously high", urlChurn)
	}
}
