// Package hispar builds and maintains the Hispar top list (§3): a
// two-level "top list" whose entries are URL sets — one per web site,
// containing the landing page plus up to N−1 frequently visited internal
// pages discovered through search-engine "site:" queries.
//
// The builder walks an Alexa-style top list from rank 1, queries the
// search engine for each site, drops sites with too few (English)
// results, and stops when enough sites are collected. It meters the
// search-API cost, supports weekly refreshes, and computes the
// two-level stability metrics the paper reports: top-level site churn
// (inherited from the bootstrap list) and bottom-level internal-URL
// churn.
package hispar

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/search"
	"repro/internal/toplist"
)

// URLSet is one site's entry: the landing page plus internal pages.
type URLSet struct {
	Domain   string
	Rank     int // rank in the bootstrap top list
	Landing  string
	Internal []string
}

// PageCount returns the number of URLs in the set.
func (u *URLSet) PageCount() int { return 1 + len(u.Internal) }

// List is one Hispar snapshot.
type List struct {
	Name string
	Week int
	Sets []URLSet
}

// Pages returns the total number of URLs in the list.
func (l *List) Pages() int {
	n := 0
	for i := range l.Sets {
		n += l.Sets[i].PageCount()
	}
	return n
}

// Top returns a new list containing the k highest-ranked sites (the
// paper's Ht30/Ht100 slices).
func (l *List) Top(k int) *List {
	if k > len(l.Sets) {
		k = len(l.Sets)
	}
	return &List{Name: fmt.Sprintf("%s-top%d", l.Name, k), Week: l.Week, Sets: l.Sets[:k]}
}

// Bottom returns a new list with the k lowest-ranked sites (Hb100).
func (l *List) Bottom(k int) *List {
	if k > len(l.Sets) {
		k = len(l.Sets)
	}
	return &List{Name: fmt.Sprintf("%s-bottom%d", l.Name, k), Week: l.Week, Sets: l.Sets[len(l.Sets)-k:]}
}

// Set returns the URL set for domain.
func (l *List) Set(domain string) (URLSet, bool) {
	for _, s := range l.Sets {
		if s.Domain == domain {
			return s, true
		}
	}
	return URLSet{}, false
}

// BuildConfig parameterizes one list build.
type BuildConfig struct {
	// Sites is the number of web sites to include (1000 for H1K, 2000
	// for H2K).
	Sites int
	// URLsPerSite is N: the URL-set size including the landing page
	// (20 for H1K, 50 for H2K).
	URLsPerSite int
	// MinResults drops a site when the search yields fewer results
	// (5 for H1K, 10 for H2K, per §3/§3.1).
	MinResults int
	// Name labels the list ("H1K", "H2K", ...).
	Name string
	// Week stamps the snapshot week.
	Week int
}

func (c BuildConfig) withDefaults() BuildConfig {
	if c.Sites <= 0 {
		c.Sites = 2000
	}
	if c.URLsPerSite <= 0 {
		c.URLsPerSite = 50
	}
	if c.MinResults <= 0 {
		c.MinResults = 10
	}
	if c.Name == "" {
		if c.Sites >= 1000 {
			c.Name = fmt.Sprintf("H%dK", (c.Sites+500)/1000)
		} else {
			c.Name = fmt.Sprintf("H%d", c.Sites)
		}
	}
	return c
}

// BuildStats reports what a build consumed.
type BuildStats struct {
	SitesExamined int
	SitesDropped  int
	Queries       int
	CostUSD       float64
}

// Build assembles a Hispar list: walk the bootstrap top list from the
// most popular site down, fetch each site's URL set from the search
// engine, and stop once cfg.Sites sets are collected.
func Build(engine *search.Engine, bootstrap []toplist.Entry, cfg BuildConfig) (*List, BuildStats, error) {
	cfg = cfg.withDefaults()
	var stats BuildStats
	startQueries := engine.Queries()
	list := &List{Name: cfg.Name, Week: cfg.Week}
	for _, entry := range bootstrap {
		if len(list.Sets) >= cfg.Sites {
			break
		}
		stats.SitesExamined++
		results, err := engine.Site(entry.Domain, cfg.URLsPerSite)
		if err != nil || len(results) < cfg.MinResults {
			stats.SitesDropped++
			continue
		}
		set := URLSet{Domain: entry.Domain, Rank: entry.Rank, Landing: results[0].URL}
		for _, r := range results[1:] {
			set.Internal = append(set.Internal, r.URL)
		}
		list.Sets = append(list.Sets, set)
	}
	stats.Queries = engine.Queries() - startQueries
	stats.CostUSD = float64(stats.Queries) / 1000 * 5
	if len(list.Sets) < cfg.Sites {
		return list, stats, fmt.Errorf("hispar: bootstrap exhausted with %d/%d sites", len(list.Sets), cfg.Sites)
	}
	return list, stats, nil
}

// SiteChurn returns the top-level weekly churn: the fraction of sites in
// prev absent from next (inherited from the bootstrap list, §3).
func SiteChurn(prev, next *List) float64 {
	if len(prev.Sets) == 0 {
		return 0
	}
	in := make(map[string]bool, len(next.Sets))
	for _, s := range next.Sets {
		in[s.Domain] = true
	}
	gone := 0
	for _, s := range prev.Sets {
		if !in[s.Domain] {
			gone++
		}
	}
	return float64(gone) / float64(len(prev.Sets))
}

// InternalChurn returns the bottom-level weekly churn: over sites present
// in both snapshots, the fraction of internal URLs on week i that are
// absent on week i+1. No ordering among a set's URLs is assumed (§3).
func InternalChurn(prev, next *List) float64 {
	nextSets := make(map[string]map[string]bool, len(next.Sets))
	for _, s := range next.Sets {
		urls := make(map[string]bool, len(s.Internal))
		for _, u := range s.Internal {
			urls[normKey(u)] = true
		}
		nextSets[s.Domain] = urls
	}
	total, gone := 0, 0
	for _, s := range prev.Sets {
		urls, ok := nextSets[s.Domain]
		if !ok {
			continue // site churned out at the top level
		}
		for _, u := range s.Internal {
			total++
			if !urls[normKey(u)] {
				gone++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(gone) / float64(total)
}

// normKey strips the scheme so that an http→https migration does not
// count as churn.
func normKey(u string) string {
	if i := strings.Index(u, "://"); i >= 0 {
		return u[i+3:]
	}
	return u
}

// WriteCSV serializes the list in the public Hispar release format:
// rank,domain,url with one row per URL (the landing page first).
func (l *List) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# %s week=%d sites=%d pages=%d\n", l.Name, l.Week, len(l.Sets), l.Pages())
	for _, s := range l.Sets {
		if _, err := fmt.Fprintf(bw, "%d,%s,%s\n", s.Rank, s.Domain, s.Landing); err != nil {
			return err
		}
		for _, u := range s.Internal {
			if _, err := fmt.Fprintf(bw, "%d,%s,%s\n", s.Rank, s.Domain, u); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadCSV parses a list written by WriteCSV.
func ReadCSV(r io.Reader) (*List, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	list := &List{Name: "unnamed"}
	byDomain := make(map[string]int)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			var week, sites, pages int
			var name string
			if n, _ := fmt.Sscanf(line, "# %s week=%d sites=%d pages=%d", &name, &week, &sites, &pages); n >= 2 {
				list.Name, list.Week = name, week
			}
			continue
		}
		parts := strings.SplitN(line, ",", 3)
		if len(parts) != 3 {
			return nil, fmt.Errorf("hispar: malformed row %q", line)
		}
		var rank int
		if _, err := fmt.Sscanf(parts[0], "%d", &rank); err != nil {
			return nil, fmt.Errorf("hispar: bad rank in %q: %w", line, err)
		}
		domain, u := parts[1], parts[2]
		idx, ok := byDomain[domain]
		if !ok {
			byDomain[domain] = len(list.Sets)
			list.Sets = append(list.Sets, URLSet{Domain: domain, Rank: rank, Landing: u})
			continue
		}
		list.Sets[idx].Internal = append(list.Sets[idx].Internal, u)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	sort.SliceStable(list.Sets, func(i, j int) bool { return list.Sets[i].Rank < list.Sets[j].Rank })
	return list, nil
}
