// Package webserve serves a generated web over real HTTP using net/http,
// with name-based virtual hosting: every synthetic host (site hosts,
// static subdomains, third-party and CDN hosts) is multiplexed onto one
// listener and selected by the Host header. It exists so that integration
// tests and examples exercise genuine HTTP parsing, header semantics, and
// the htmlx scanner against served markup — the page-load *timing* engine
// (internal/browser) stays in virtual time.
package webserve

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"

	"repro/internal/httpsem"
	"repro/internal/webgen"
)

// Server serves one web snapshot.
type Server struct {
	web *webgen.Web
	// MaxBodyFill caps generated filler per object body (default 64 KiB).
	MaxBodyFill int
	// Wrap, when set before Start, wraps the virtual-hosting handler —
	// the attachment point for middleware (request logging, test gates).
	Wrap func(http.Handler) http.Handler

	mu     sync.Mutex
	models map[string]*webgen.PageModel // page URL (host+path) -> model
	httpd  *http.Server
	ln     net.Listener
}

// New creates a server over web.
func New(web *webgen.Web) *Server {
	return &Server{web: web, MaxBodyFill: 64 << 10, models: make(map[string]*webgen.PageModel)}
}

// Start begins listening on addr ("127.0.0.1:0" for an ephemeral port)
// and returns the bound address.
func (s *Server) Start(addr string) (string, error) {
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("webserve: listen: %w", err)
	}
	s.ln = ln
	handler := http.Handler(s)
	if s.Wrap != nil {
		handler = s.Wrap(handler)
	}
	s.httpd = &http.Server{Handler: handler}
	go func() { _ = s.httpd.Serve(ln) }() //detlint:allow gorleak -- accept-loop daemon: Serve returns when Close shuts the listener
	return ln.Addr().String(), nil
}

// Close stops the server immediately, cutting in-flight requests.
func (s *Server) Close() error {
	if s.httpd != nil {
		return s.httpd.Close()
	}
	return nil
}

// Shutdown stops the server gracefully: the listener closes at once (new
// connections are refused) while in-flight requests run to completion.
// If ctx expires before the drain finishes, the remaining connections
// are cut and ctx's error is returned.
func (s *Server) Shutdown(ctx context.Context) error {
	if s.httpd == nil {
		return nil
	}
	if err := s.httpd.Shutdown(ctx); err != nil {
		_ = s.httpd.Close() // drain deadline hit: cut the stragglers
		return err
	}
	return nil
}

// Addr returns the bound address ("" before Start).
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// model returns (building if needed) the page model that owns the given
// URL — either as its root document or as one of its objects. Object
// URLs embed no page pointer, so the server keeps an index of every
// object URL it has served a document for; fetching a page's document
// registers its objects.
func (s *Server) pageModel(host, path string) (*webgen.PageModel, bool) {
	page, ok := s.web.PageByURL("http://" + host + path)
	if !ok {
		return nil, false
	}
	key := strings.TrimPrefix(host, "www.") + "|" + path
	s.mu.Lock()
	defer s.mu.Unlock()
	if m, ok := s.models[key]; ok {
		return m, true
	}
	m := page.Build()
	s.models[key] = m
	return m, true
}

// findObject looks up an object URL in any already-served page model.
func (s *Server) findObject(host, uri string) (*webgen.PageModel, int, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, m := range s.models {
		for i, o := range m.Objects {
			if i == 0 {
				continue
			}
			if o.Host == host && strings.HasSuffix(o.URL, uri) {
				return m, i, true
			}
		}
	}
	return nil, 0, false
}

// ServeHTTP implements http.Handler with virtual hosting.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	host := r.Host
	if i := strings.IndexByte(host, ':'); i >= 0 {
		host = host[:i]
	}
	uri := r.URL.RequestURI()

	if r.URL.Path == "/robots.txt" {
		if site, ok := s.web.SiteByDomain(strings.TrimPrefix(host, "www.")); ok {
			w.Header().Set("Content-Type", "text/plain")
			_, _ = w.Write([]byte(site.RobotsTxt()))
			return
		}
		http.NotFound(w, r)
		return
	}

	// Publisher-provided representative pages (§7), served at a
	// Well-Known URI.
	if r.URL.Path == "/.well-known/hispar.json" {
		if site, ok := s.web.SiteByDomain(strings.TrimPrefix(host, "www.")); ok {
			body, err := site.WellKnownManifest(10)
			if err == nil {
				w.Header().Set("Content-Type", "application/json")
				w.Header().Set("Cache-Control", "max-age=86400")
				_, _ = w.Write(body)
				return
			}
		}
		http.NotFound(w, r)
		return
	}

	// Root documents first.
	if m, ok := s.pageModel(host, r.URL.Path); ok {
		body := m.RenderHTML()
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		w.Header().Set("Cache-Control", "no-cache")
		w.Header().Set("Server", "webgen-origin")
		w.Header().Set("Content-Length", strconv.Itoa(len(body)))
		_, _ = w.Write([]byte(body))
		return
	}

	// Sub-resources of previously served documents.
	if m, idx, ok := s.findObject(host, uri); ok {
		o := m.Objects[idx]
		w.Header().Set("Content-Type", o.MIME)
		if cc := o.CacheControl(idx); cc != "" {
			w.Header().Set("Cache-Control", cc)
		}
		if o.Cacheable {
			if o.ETag != "" {
				w.Header().Set("ETag", o.ETag)
			}
			if o.LastModified != "" {
				w.Header().Set("Last-Modified", o.LastModified)
			}
		}
		if o.ViaCDN != "" {
			w.Header().Set("Server", o.ViaCDN)
			w.Header().Set("X-Cache", "MISS")
		} else {
			w.Header().Set("Server", "webgen-origin")
		}
		// Conditional revalidation: generated objects are immutable, so
		// any validator match answers 304 (If-None-Match takes
		// precedence over If-Modified-Since, RFC 7232 §6).
		if notModified(r, o) {
			w.WriteHeader(http.StatusNotModified)
			return
		}
		body := m.RenderBody(idx, s.MaxBodyFill)
		w.Header().Set("Content-Length", strconv.Itoa(len(body)))
		_, _ = w.Write([]byte(body))
		return
	}

	http.NotFound(w, r)
}

// notModified evaluates the request's conditional headers against the
// object's validators via the shared RFC 7232 evaluation in httpsem.
func notModified(r *http.Request, o *webgen.Object) bool {
	return httpsem.CheckNotModified(
		r.Header.Get("If-None-Match"), r.Header.Get("If-Modified-Since"),
		o.ETag, o.LastModified)
}

// Client returns an http.Client that routes every request to the server
// regardless of the URL's host, preserving the Host header — the
// loopback analogue of wide-area virtual hosting.
func (s *Server) Client() *http.Client {
	addr := s.Addr()
	transport := &http.Transport{
		Proxy: nil,
		DialContext: func(ctx context.Context, network, _ string) (net.Conn, error) {
			var d net.Dialer
			return d.DialContext(ctx, "tcp", addr)
		},
	}
	return &http.Client{Transport: transport}
}
