package webserve

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/htmlx"
	"repro/internal/toplist"
	"repro/internal/urlx"
	"repro/internal/webgen"
)

func startServer(t *testing.T) (*Server, *webgen.Web, *http.Client) {
	t.Helper()
	u := toplist.NewUniverse(toplist.Config{Seed: 61, Size: 300})
	entries := u.Top(5)
	seeds := make([]webgen.SiteSeed, len(entries))
	for i, e := range entries {
		seeds[i] = webgen.SiteSeed{Domain: e.Domain, Rank: e.Rank}
	}
	web := webgen.Generate(webgen.Config{Seed: 61, Sites: seeds})
	srv := New(web)
	if _, err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	return srv, web, srv.Client()
}

// get fetches a URL through the loopback virtual-hosting client, with
// the scheme forced to http (the test server speaks plain HTTP).
func get(t *testing.T, client *http.Client, rawURL string) (*http.Response, string) {
	t.Helper()
	resp, err := client.Get(urlx.WithScheme(rawURL, "http"))
	if err != nil {
		t.Fatalf("GET %s: %v", rawURL, err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("read %s: %v", rawURL, err)
	}
	return resp, string(body)
}

func TestServeLandingPageOverRealHTTP(t *testing.T) {
	_, web, client := startServer(t)
	site := web.Sites[0]
	resp, body := get(t, client, site.Landing().URL())
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		t.Errorf("Content-Type = %q", ct)
	}
	doc := htmlx.Parse(body)
	if doc.Title == "" {
		t.Error("served page has no title")
	}
	m := site.Landing().Build()
	if len(doc.Links) != len(m.Links) {
		t.Errorf("links served %d, model %d", len(doc.Links), len(m.Links))
	}
}

func TestFetchSubresourcesEndToEnd(t *testing.T) {
	_, web, client := startServer(t)
	site := web.Sites[1]
	// Fetch the document first (registers the page's objects), then walk
	// discovered sub-resources like a crawler-browser would.
	_, body := get(t, client, site.Landing().URL())
	doc := htmlx.Parse(body)
	if len(doc.Resources) == 0 {
		t.Fatal("no sub-resources discovered")
	}
	fetched := 0
	for _, r := range doc.Resources {
		if fetched >= 10 {
			break
		}
		resp, _ := get(t, client, r.URL)
		if resp.StatusCode != 200 {
			t.Errorf("%s: status %d", r.URL, resp.StatusCode)
			continue
		}
		if resp.Header.Get("Cache-Control") == "" {
			t.Errorf("%s: no Cache-Control", r.URL)
		}
		fetched++
	}
	if fetched == 0 {
		t.Fatal("no sub-resources fetched")
	}
}

func TestCSSBodiesCarryChildRefs(t *testing.T) {
	_, web, client := startServer(t)
	site := web.Sites[0]
	m := site.PageAt(1).Build()
	_, _ = get(t, client, m.URL) // register page
	for i, o := range m.Objects {
		if o.Role != webgen.RoleCSS || len(m.ChildRefs(i)) == 0 {
			continue
		}
		resp, body := get(t, client, o.URL)
		if resp.StatusCode != 200 {
			t.Fatalf("css fetch status %d", resp.StatusCode)
		}
		for _, ref := range m.ChildRefs(i) {
			if !strings.Contains(body, ref) {
				t.Errorf("served CSS missing child ref %s", ref)
			}
		}
		return
	}
	t.Skip("no CSS with children on this page")
}

// TestConditionalRequestsAnswer304 walks served sub-resources with the
// validators they advertised and checks the revalidation contract:
// matching If-None-Match or If-Modified-Since answers 304 with an empty
// body; a non-matching validator replays the full 200.
func TestConditionalRequestsAnswer304(t *testing.T) {
	_, web, client := startServer(t)
	site := web.Sites[0]
	m := site.Landing().Build()
	_, _ = get(t, client, m.URL) // register page

	checked := 0
	for i, o := range m.Objects {
		if i == 0 || !o.Cacheable || o.ETag == "" {
			continue
		}
		cond := func(name, value string) *http.Response {
			t.Helper()
			req, err := http.NewRequest("GET", urlx.WithScheme(o.URL, "http"), nil)
			if err != nil {
				t.Fatal(err)
			}
			req.Header.Set(name, value)
			resp, err := client.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusNotModified && len(body) != 0 {
				t.Errorf("%s: 304 carried a %d-byte body", o.URL, len(body))
			}
			return resp
		}
		if resp := cond("If-None-Match", o.ETag); resp.StatusCode != http.StatusNotModified {
			t.Errorf("%s: If-None-Match %s answered %d, want 304", o.URL, o.ETag, resp.StatusCode)
		}
		if resp := cond("If-None-Match", `"mismatched-etag"`); resp.StatusCode != 200 {
			t.Errorf("%s: stale validator answered %d, want 200", o.URL, resp.StatusCode)
		}
		if o.LastModified != "" {
			if resp := cond("If-Modified-Since", o.LastModified); resp.StatusCode != http.StatusNotModified {
				t.Errorf("%s: If-Modified-Since %s answered %d, want 304", o.URL, o.LastModified, resp.StatusCode)
			}
			if resp := cond("If-Modified-Since", "Mon, 02 Jan 2006 15:04:05 GMT"); resp.StatusCode != 200 {
				t.Errorf("%s: ancient If-Modified-Since answered %d, want 200", o.URL, resp.StatusCode)
			}
		}
		checked++
		if checked >= 5 {
			break
		}
	}
	if checked == 0 {
		t.Fatal("no cacheable objects with validators on the landing page")
	}
}

func TestUnknownURLs404(t *testing.T) {
	_, web, client := startServer(t)
	resp, _ := get(t, client, "http://"+web.Sites[0].Host()+"/definitely-not-a-page")
	if resp.StatusCode != 404 {
		t.Errorf("status = %d, want 404", resp.StatusCode)
	}
	resp, _ = get(t, client, "http://unknown-host.example/")
	if resp.StatusCode != 404 {
		t.Errorf("unknown host status = %d, want 404", resp.StatusCode)
	}
}

func TestRobotsAndWellKnownEndpoints(t *testing.T) {
	_, web, client := startServer(t)
	site := web.Sites[0]
	resp, body := get(t, client, "http://"+site.Host()+"/robots.txt")
	if resp.StatusCode != 200 || !strings.Contains(body, "User-agent:") {
		t.Errorf("robots.txt: status %d body %.60q", resp.StatusCode, body)
	}
	resp, body = get(t, client, "http://"+site.Host()+"/.well-known/hispar.json")
	if resp.StatusCode != 200 {
		t.Fatalf("well-known status %d", resp.StatusCode)
	}
	if !strings.Contains(body, `"pages"`) || !strings.Contains(body, site.Domain) {
		t.Errorf("well-known manifest = %.80q", body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("well-known Content-Type = %q", ct)
	}
}

func TestVirtualHostingSeparatesSites(t *testing.T) {
	_, web, client := startServer(t)
	_, bodyA := get(t, client, web.Sites[0].Landing().URL())
	_, bodyB := get(t, client, web.Sites[1].Landing().URL())
	if bodyA == bodyB {
		t.Error("different hosts served identical documents")
	}
}

// TestGracefulShutdownDrainsInFlight pins the Shutdown contract: a
// request already inside a handler runs to completion while the closed
// listener refuses new connections, and Shutdown only returns once the
// in-flight response has been written.
func TestGracefulShutdownDrainsInFlight(t *testing.T) {
	u := toplist.NewUniverse(toplist.Config{Seed: 61, Size: 300})
	entries := u.Top(3)
	seeds := make([]webgen.SiteSeed, len(entries))
	for i, e := range entries {
		seeds[i] = webgen.SiteSeed{Domain: e.Domain, Rank: e.Rank}
	}
	web := webgen.Generate(webgen.Config{Seed: 61, Sites: seeds})
	srv := New(web)

	entered := make(chan struct{}) // handler reached
	release := make(chan struct{}) // test lets the handler finish
	srv.Wrap = func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			close(entered)
			<-release
			next.ServeHTTP(w, r)
		})
	}
	if _, err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	client := srv.Client()

	inflight := make(chan error, 1)
	go func() {
		resp, err := client.Get(urlx.WithScheme(web.Sites[0].Landing().URL(), "http"))
		if err != nil {
			inflight <- err
			return
		}
		_, err = io.ReadAll(resp.Body)
		resp.Body.Close()
		if err == nil && resp.StatusCode != 200 {
			err = fmt.Errorf("in-flight request answered %d", resp.StatusCode)
		}
		inflight <- err
	}()
	<-entered // the request is inside the handler

	shutdown := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdown <- srv.Shutdown(ctx)
	}()

	// New connections are refused as soon as the listener closes. Poll:
	// Shutdown closes the listener before it starts draining, but we may
	// race its first instruction.
	refused := false
	for i := 0; i < 200; i++ {
		conn, err := net.DialTimeout("tcp", srv.Addr(), time.Second)
		if err != nil {
			refused = true
			break
		}
		conn.Close()
		time.Sleep(5 * time.Millisecond)
	}
	if !refused {
		t.Error("listener still accepting connections after Shutdown began")
	}

	// Shutdown must still be draining: the handler is parked on release.
	select {
	case err := <-shutdown:
		t.Fatalf("Shutdown returned (%v) while a request was in flight", err)
	case <-time.After(50 * time.Millisecond):
	}

	close(release)
	if err := <-inflight; err != nil {
		t.Errorf("in-flight request failed during graceful shutdown: %v", err)
	}
	select {
	case err := <-shutdown:
		if err != nil {
			t.Errorf("Shutdown = %v, want nil after drain", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Shutdown did not return after the in-flight request completed")
	}
}
