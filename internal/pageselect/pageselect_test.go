package pageselect

import (
	"testing"

	"repro/internal/search"
	"repro/internal/toplist"
	"repro/internal/webgen"
)

func fixture(t *testing.T) (*webgen.Web, *search.Engine) {
	t.Helper()
	u := toplist.NewUniverse(toplist.Config{Seed: 91, Size: 400})
	entries := u.Top(12)
	seeds := make([]webgen.SiteSeed, len(entries))
	for i, e := range entries {
		seeds[i] = webgen.SiteSeed{Domain: e.Domain, Rank: e.Rank}
	}
	web := webgen.Generate(webgen.Config{Seed: 91, Sites: seeds})
	return web, search.New(web, search.Config{})
}

func TestAllStrategiesSelectInternalPages(t *testing.T) {
	web, engine := fixture(t)
	site := web.Sites[0]
	for _, strat := range All(engine, 91) {
		sample, err := strat.Select(web, site, 8)
		if err != nil {
			t.Fatalf("%s: %v", strat.Name(), err)
		}
		if len(sample) == 0 {
			t.Fatalf("%s: empty sample", strat.Name())
		}
		if len(sample) > 8 {
			t.Fatalf("%s: %d pages, want <= 8", strat.Name(), len(sample))
		}
		seen := map[int]bool{}
		for _, p := range sample {
			if p.IsLanding() {
				t.Fatalf("%s selected the landing page", strat.Name())
			}
			if p.Site != site {
				t.Fatalf("%s escaped the site", strat.Name())
			}
			if seen[p.Index] {
				t.Fatalf("%s returned duplicates", strat.Name())
			}
			seen[p.Index] = true
		}
	}
}

func TestSearchIsPopularityBiased(t *testing.T) {
	web, engine := fixture(t)
	var scores []Score
	for _, site := range web.Sites[:6] {
		for _, strat := range All(engine, 91) {
			sample, err := strat.Select(web, site, 8)
			if err != nil || len(sample) == 0 {
				continue
			}
			scores = append(scores, Evaluate(strat.Name(), site, sample))
		}
	}
	sums := Summarize(scores)
	byName := map[string]Summary{}
	for _, s := range sums {
		byName[s.Strategy] = s
	}
	if byName["search"].MeanPopulShare <= byName["crawl"].MeanPopulShare {
		t.Errorf("search popularity share (%.3f) should exceed uniform crawl (%.3f) — the §3 bias Hispar wants",
			byName["search"].MeanPopulShare, byName["crawl"].MeanPopulShare)
	}
	for _, s := range sums {
		if s.MeanObjectsErr > 0.5 || s.MeanBytesErr > 0.6 {
			t.Errorf("%s sample unrepresentative: objErr=%.3f bytesErr=%.3f", s.Strategy, s.MeanObjectsErr, s.MeanBytesErr)
		}
	}
}

func TestPublisherSampleStratified(t *testing.T) {
	web, _ := fixture(t)
	site := web.Sites[1]
	sample := site.PublisherSample(10)
	if len(sample) == 0 {
		t.Fatal("empty publisher sample")
	}
	// Must span head and tail of the popularity ordering, not just hits.
	pool := site.InternalPages()
	var minW, maxW float64
	for i, p := range pool {
		w := p.VisitWeight()
		if i == 0 || w < minW {
			minW = w
		}
		if w > maxW {
			maxW = w
		}
	}
	var sMin, sMax float64
	for i, p := range sample {
		w := p.VisitWeight()
		if i == 0 || w < sMin {
			sMin = w
		}
		if w > sMax {
			sMax = w
		}
	}
	if sMax < maxW*0.99 {
		t.Error("publisher sample misses the head of the popularity distribution")
	}
	if sMin > minW*50 && len(pool) > 20 {
		t.Errorf("publisher sample misses the tail: min %g vs pool min %g", sMin, minW)
	}
}

func TestWellKnownManifestJSON(t *testing.T) {
	web, _ := fixture(t)
	body, err := web.Sites[0].WellKnownManifest(5)
	if err != nil {
		t.Fatal(err)
	}
	for _, needle := range []string{`"site"`, `"pages"`, web.Sites[0].Domain} {
		if !contains(string(body), needle) {
			t.Errorf("manifest missing %q: %s", needle, body)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
