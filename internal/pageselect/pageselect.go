// Package pageselect implements the internal-page selection strategies
// the paper discusses: search-engine results (Hispar's choice, §3),
// recursive crawling and monkey testing (what the few internal-page-aware
// studies in the §2 survey did), and publisher-provided Well-Known
// manifests (§7). It also scores how *representative* each strategy's
// sample is — how closely the sample's medians track the site's full page
// pool.
package pageselect

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/crawler"
	"repro/internal/search"
	"repro/internal/stats"
	"repro/internal/webgen"
)

// Strategy selects up to n internal pages of a site.
type Strategy interface {
	Name() string
	Select(web *webgen.Web, site *webgen.Site, n int) ([]*webgen.Page, error)
}

// SearchTopN is Hispar's strategy: the most-visited pages according to a
// search engine.
type SearchTopN struct {
	Engine *search.Engine
}

// Name implements Strategy.
func (SearchTopN) Name() string { return "search" }

// Select implements Strategy.
func (s SearchTopN) Select(web *webgen.Web, site *webgen.Site, n int) ([]*webgen.Page, error) {
	results, err := s.Engine.Site(site.Domain, n+1)
	if err != nil {
		return nil, err
	}
	var out []*webgen.Page
	for _, r := range results {
		p, ok := web.PageByURL(r.URL)
		if !ok || p.IsLanding() {
			continue
		}
		out = append(out, p)
		if len(out) == n {
			break
		}
	}
	return out, nil
}

// RandomCrawl crawls the site and samples uniformly — the "recursively
// crawl a web site" approach of §2's internal-page-aware studies.
type RandomCrawl struct {
	Seed     int64
	MaxPages int
}

// Name implements Strategy.
func (RandomCrawl) Name() string { return "crawl" }

// Select implements Strategy.
func (c RandomCrawl) Select(web *webgen.Web, site *webgen.Site, n int) ([]*webgen.Page, error) {
	maxPages := c.MaxPages
	if maxPages <= 0 {
		maxPages = 400
	}
	res, err := crawler.Crawl(web, site.Landing(), crawler.Config{MaxPages: maxPages})
	if err != nil {
		return nil, err
	}
	pool := res.InternalPages()
	rng := rand.New(rand.NewSource(c.Seed ^ int64(len(site.Domain))))
	rng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
	if n > len(pool) {
		n = len(pool)
	}
	return pool[:n], nil
}

// Monkey performs random click sessions from the landing page — "monkey
// testing (e.g., randomly clicking buttons and links)" per §2.
type Monkey struct {
	Seed int64
	// ClicksPerSession bounds one session's walk (default 6).
	ClicksPerSession int
}

// Name implements Strategy.
func (Monkey) Name() string { return "monkey" }

// Select implements Strategy.
func (m Monkey) Select(web *webgen.Web, site *webgen.Site, n int) ([]*webgen.Page, error) {
	clicks := m.ClicksPerSession
	if clicks <= 0 {
		clicks = 6
	}
	rng := rand.New(rand.NewSource(m.Seed ^ int64(len(site.Domain))*977))
	seen := make(map[int]bool)
	var out []*webgen.Page
	// Repeated sessions until enough distinct pages are visited. Each
	// session starts at the landing page and clicks random links.
	for session := 0; len(out) < n && session < n*6; session++ {
		cur := site.Landing()
		for c := 0; c < clicks; c++ {
			model := cur.Build()
			if len(model.Links) == 0 {
				break
			}
			link := model.Links[rng.Intn(len(model.Links))]
			next, ok := web.PageByURL(link)
			if !ok || next.Site != site {
				continue
			}
			cur = next
			if !cur.IsLanding() && !seen[cur.Index] {
				seen[cur.Index] = true
				out = append(out, cur)
				if len(out) == n {
					break
				}
			}
		}
	}
	return out, nil
}

// WellKnown fetches the publisher's self-declared benchmark pages (§7).
type WellKnown struct{}

// Name implements Strategy.
func (WellKnown) Name() string { return "well-known" }

// Select implements Strategy.
func (WellKnown) Select(web *webgen.Web, site *webgen.Site, n int) ([]*webgen.Page, error) {
	pages := site.PublisherSample(n)
	if len(pages) == 0 {
		return nil, fmt.Errorf("pageselect: %s publishes no manifest", site.Domain)
	}
	return pages, nil
}

// All returns the four strategies with shared defaults.
func All(engine *search.Engine, seed int64) []Strategy {
	return []Strategy{
		SearchTopN{Engine: engine},
		RandomCrawl{Seed: seed},
		Monkey{Seed: seed},
		WellKnown{},
	}
}

// Score measures a strategy sample's representativeness for one site.
type Score struct {
	Strategy string
	Site     string
	Selected int
	// ObjectsErr and BytesErr are |median(sample)/median(pool) − 1| for
	// object count and page size over the site's full internal pool.
	ObjectsErr float64
	BytesErr   float64
	// PopularityShare is the sample's share of the pool's total visit
	// weight: high for popularity-biased strategies (search), low for
	// uniform ones.
	PopularityShare float64
}

// Evaluate scores a sample against the site's full internal-page pool
// (the pool is subsampled to cap cost on huge sites).
func Evaluate(strategyName string, site *webgen.Site, sample []*webgen.Page) Score {
	pool := site.InternalPages()
	poolStats := pool
	if len(poolStats) > 300 {
		poolStats = poolStats[:300]
	}
	poolObjs, poolBytes := pageStats(poolStats)
	sampObjs, sampBytes := pageStats(sample)

	var totalW, sampW float64
	for _, p := range pool {
		totalW += p.VisitWeight()
	}
	for _, p := range sample {
		sampW += p.VisitWeight()
	}
	share := 0.0
	if totalW > 0 {
		share = sampW / totalW
	}
	return Score{
		Strategy:        strategyName,
		Site:            site.Domain,
		Selected:        len(sample),
		ObjectsErr:      relErr(stats.Median(sampObjs), stats.Median(poolObjs)),
		BytesErr:        relErr(stats.Median(sampBytes), stats.Median(poolBytes)),
		PopularityShare: share,
	}
}

func pageStats(pages []*webgen.Page) (objs, bytes []float64) {
	for _, p := range pages {
		m := p.Build()
		objs = append(objs, float64(len(m.Objects)))
		var b int64
		for _, o := range m.Objects {
			b += o.Size
		}
		bytes = append(bytes, float64(b))
	}
	return objs, bytes
}

func relErr(got, want float64) float64 {
	if want == 0 {
		return 0
	}
	return math.Abs(got/want - 1)
}

// Summary aggregates scores per strategy.
type Summary struct {
	Strategy        string
	Sites           int
	MeanObjectsErr  float64
	MeanBytesErr    float64
	MeanPopulShare  float64
	MedianSelection float64
}

// Summarize groups scores by strategy.
func Summarize(scores []Score) []Summary {
	byStrat := make(map[string][]Score)
	for _, s := range scores {
		byStrat[s.Strategy] = append(byStrat[s.Strategy], s)
	}
	names := make([]string, 0, len(byStrat))
	for n := range byStrat {
		names = append(names, n)
	}
	sort.Strings(names)
	var out []Summary
	for _, n := range names {
		ss := byStrat[n]
		var objs, bytes, share, sel []float64
		for _, s := range ss {
			objs = append(objs, s.ObjectsErr)
			bytes = append(bytes, s.BytesErr)
			share = append(share, s.PopularityShare)
			sel = append(sel, float64(s.Selected))
		}
		out = append(out, Summary{
			Strategy:        n,
			Sites:           len(ss),
			MeanObjectsErr:  stats.Mean(objs),
			MeanBytesErr:    stats.Mean(bytes),
			MeanPopulShare:  stats.Mean(share),
			MedianSelection: stats.Median(sel),
		})
	}
	return out
}
