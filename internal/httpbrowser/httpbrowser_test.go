package httpbrowser

import (
	"testing"

	"repro/internal/cdndetect"
	"repro/internal/core"
	"repro/internal/psl"
	"repro/internal/toplist"
	"repro/internal/urlx"
	"repro/internal/webgen"
	"repro/internal/webserve"
)

func loopbackWeb(t *testing.T) (*webgen.Web, *Browser) {
	t.Helper()
	u := toplist.NewUniverse(toplist.Config{Seed: 101, Size: 300})
	entries := u.Top(4)
	seeds := make([]webgen.SiteSeed, len(entries))
	for i, e := range entries {
		seeds[i] = webgen.SiteSeed{Domain: e.Domain, Rank: e.Rank}
	}
	web := webgen.Generate(webgen.Config{Seed: 101, Sites: seeds})
	srv := webserve.New(web)
	if _, err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	return web, New(Config{Client: srv.Client(), MaxObjects: 400, ForceScheme: "http"})
}

// TestLoadDiscoversWholeTree drives the full real-HTTP path: serve the
// generated web over loopback, parse delivered HTML/CSS/JS, and check
// the recovered object tree against the generator's ground truth.
func TestLoadDiscoversWholeTree(t *testing.T) {
	web, b := loopbackWeb(t)
	site := web.Sites[0]
	m := site.Landing().Build()
	pageURL := urlx.WithScheme(m.URL, "http") // loopback server speaks plain HTTP

	log, err := b.Load(pageURL)
	if err != nil {
		t.Fatal(err)
	}
	if log.Entries[0].Request.URL != pageURL {
		t.Fatalf("root entry = %s", log.Entries[0].Request.URL)
	}
	// Ground truth: every generated object is reachable by parsing
	// delivered bodies (schemes are forced to http for the loopback).
	want := len(m.Objects) - 1
	got := len(log.Entries) - 1
	if got < want*8/10 {
		t.Errorf("discovered %d objects, model has %d", got, want)
	}
	// Depths from initiators must be consistent.
	for i := range log.Entries {
		if log.Entries[i].Depth < 0 || log.Entries[i].Depth > 6 {
			t.Fatalf("entry %d depth %d", i, log.Entries[i].Depth)
		}
	}
}

// TestMeasureHAROverRealFetch closes the loop: real fetch → HAR →
// model-independent analysis.
func TestMeasureHAROverRealFetch(t *testing.T) {
	web, b := loopbackWeb(t)
	site := web.Sites[1]
	m := site.Landing().Build()
	log, err := b.Load(urlx.WithScheme(m.URL, "http"))
	if err != nil {
		t.Fatal(err)
	}
	az := core.Analyzers{PSL: psl.Default(), CDN: cdndetect.New(nil)}
	meas := core.MeasureHAR(log, az)
	if !meas.IsLanding {
		t.Error("landing page not recognized")
	}
	if meas.Objects != len(log.Entries) {
		t.Error("object count mismatch")
	}
	if meas.Bytes <= 0 || meas.UniqueDomains < 2 {
		t.Errorf("bytes=%d domains=%d", meas.Bytes, meas.UniqueDomains)
	}
	if meas.ContentBytes == nil || len(meas.DepthCounts) == 0 {
		t.Error("analysis fields missing")
	}
}

func TestLoadErrors(t *testing.T) {
	_, b := loopbackWeb(t)
	if _, err := b.Load("::bad::"); err == nil {
		t.Error("want error for malformed URL")
	}
	if _, err := b.Load("http://unknown-host.example/"); err == nil {
		t.Error("want error for a 404 root? (server returns 404, load should still error or produce a 404 root)")
	}
}

func TestObjectCap(t *testing.T) {
	web, b := loopbackWeb(t)
	b.cfg.MaxObjects = 10
	m := web.Sites[0].Landing().Build()
	log, err := b.Load(urlx.WithScheme(m.URL, "http"))
	if err != nil {
		t.Fatal(err)
	}
	if len(log.Entries) > 10 {
		t.Errorf("cap violated: %d entries", len(log.Entries))
	}
}
