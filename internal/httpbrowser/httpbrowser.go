// Package httpbrowser is a real-HTTP page loader: it GETs a document
// with net/http, discovers sub-resources by parsing the delivered bodies
// (internal/htmlx + internal/bodyscan), fetches the whole dependency
// tree with initiator tracking, and emits a HAR log — the same artifact
// the virtual-time engine produces, but measured on the wire.
//
// This is the repository's chromedp analogue: everything the analysis
// stack consumes can be produced against any HTTP server, in particular
// internal/webserve's loopback web. Timings are wall-clock and therefore
// not deterministic; use internal/browser for calibrated experiments.
//
//detlint:allow walltime -- live-web measurement: the wall clock IS the instrument here, by design
package httpbrowser

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/bodyscan"
	"repro/internal/har"
	"repro/internal/urlx"
)

// Config parameterizes a Browser.
type Config struct {
	// Client issues the requests (default http.DefaultClient). Use
	// webserve.Server.Client() for the loopback web.
	Client *http.Client
	// MaxObjects bounds a page load (default 500).
	MaxObjects int
	// MaxDepth bounds dependency recursion (default 6).
	MaxDepth int
	// Parallelism bounds concurrent fetches (default 6).
	Parallelism int
	// UserAgent is sent with every request; like the paper's crawler it
	// should identify the project (§3 ethics).
	UserAgent string
	// ForceScheme rewrites every discovered URL's scheme before
	// fetching. The loopback test web speaks plain HTTP while generated
	// markup mixes schemes; set "http" there. "" leaves URLs alone.
	ForceScheme string
}

func (c Config) withDefaults() Config {
	if c.Client == nil {
		c.Client = http.DefaultClient
	}
	if c.MaxObjects <= 0 {
		c.MaxObjects = 500
	}
	if c.MaxDepth <= 0 {
		c.MaxDepth = 6
	}
	if c.Parallelism <= 0 {
		c.Parallelism = 6
	}
	if c.UserAgent == "" {
		c.UserAgent = "hispar-repro/1.0 (+https://example.org/hispar-repro)"
	}
	return c
}

// Browser loads pages over real HTTP.
type Browser struct {
	cfg Config
}

// New creates a Browser.
func New(cfg Config) *Browser {
	return &Browser{cfg: cfg.withDefaults()}
}

// fetchResult carries one completed request.
type fetchResult struct {
	entry har.Entry
	refs  []string
	url   string
	depth int
	err   error
}

// Load fetches pageURL and its dependency tree, returning a HAR log.
func (b *Browser) Load(pageURL string) (*har.Log, error) {
	norm, ok := urlx.Normalize(pageURL)
	if !ok {
		return nil, fmt.Errorf("httpbrowser: bad URL %q", pageURL)
	}
	nav := time.Now()
	log := &har.Log{Page: har.Page{ID: norm, URL: norm, NavigationStart: nav}}

	type task struct {
		url       string
		initiator string
		depth     int
	}
	seen := map[string]bool{norm: true}
	queue := []task{{url: norm}}
	results := make(map[string]*fetchResult)

	sem := make(chan struct{}, b.cfg.Parallelism)
	scheduled := 0
	for len(queue) > 0 && scheduled < b.cfg.MaxObjects {
		batch := queue
		queue = nil
		var wg sync.WaitGroup
		var mu sync.Mutex
		for _, t := range batch {
			if scheduled >= b.cfg.MaxObjects {
				break
			}
			scheduled++
			wg.Add(1)
			sem <- struct{}{}
			go func(t task) {
				defer wg.Done()
				defer func() { <-sem }()
				fr := b.fetch(t.url, t.initiator, t.depth, nav)
				mu.Lock()
				results[t.url] = fr
				mu.Unlock()
			}(t)
		}
		wg.Wait()
		// Expand the frontier from this wave's bodies.
		for _, t := range batch {
			fr := results[t.url]
			if fr == nil || fr.err != nil || t.depth >= b.cfg.MaxDepth {
				continue
			}
			for _, ref := range fr.refs {
				abs, ok := urlx.Resolve(t.url, ref)
				if !ok {
					continue
				}
				if b.cfg.ForceScheme != "" {
					abs = urlx.WithScheme(abs, b.cfg.ForceScheme)
				}
				if seen[abs] {
					continue
				}
				seen[abs] = true
				queue = append(queue, task{url: abs, initiator: t.url, depth: t.depth + 1})
			}
		}
	}

	root, ok := results[norm]
	if !ok || root.err != nil {
		if root != nil && root.err != nil {
			return nil, fmt.Errorf("httpbrowser: root fetch failed: %w", root.err)
		}
		return nil, fmt.Errorf("httpbrowser: root never fetched")
	}
	if root.entry.Response.Status >= 400 {
		return nil, fmt.Errorf("httpbrowser: root returned %d", root.entry.Response.Status)
	}
	// Entries in BFS order: root first, then by depth then URL stability
	// is unnecessary — keep insertion order via re-walk.
	appendEntries(log, results, norm, seen)
	// Navigation timing: approximate first paint as the root document's
	// completion (wall-clock loads have no render model) and onLoad as
	// the last entry's end.
	var onLoad time.Duration
	for i := range log.Entries {
		end := log.Entries[i].StartedAt.Add(log.Entries[i].Time).Sub(nav)
		if end > onLoad {
			onLoad = end
		}
	}
	log.Page.Timings = har.PageTimings{
		FirstPaint: root.entry.Time,
		OnLoad:     onLoad,
		SpeedIndex: root.entry.Time,
	}
	return log, nil
}

// appendEntries walks results depth-first from the root so initiators
// precede their children (what depgraph expects of a HAR).
func appendEntries(log *har.Log, results map[string]*fetchResult, rootURL string, seen map[string]bool) {
	children := make(map[string][]string)
	var order []string
	for u, fr := range results {
		if fr.err != nil {
			continue
		}
		if u == rootURL {
			continue
		}
		children[fr.entry.Initiator] = append(children[fr.entry.Initiator], u)
	}
	var walk func(u string)
	walk = func(u string) {
		order = append(order, u)
		kids := children[u]
		// Stable order: sort by URL.
		for i := 1; i < len(kids); i++ {
			for j := i; j > 0 && kids[j] < kids[j-1]; j-- {
				kids[j], kids[j-1] = kids[j-1], kids[j]
			}
		}
		for _, k := range kids {
			walk(k)
		}
	}
	walk(rootURL)
	for _, u := range order {
		if fr := results[u]; fr != nil && fr.err == nil {
			log.Entries = append(log.Entries, fr.entry)
		}
	}
}

// fetch performs one GET and scans the body for references.
func (b *Browser) fetch(url, initiator string, depth int, nav time.Time) *fetchResult {
	fr := &fetchResult{url: url, depth: depth}
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		fr.err = err
		return fr
	}
	req.Header.Set("User-Agent", b.cfg.UserAgent)
	start := time.Now()
	resp, err := b.cfg.Client.Do(req)
	if err != nil {
		fr.err = err
		return fr
	}
	body, err := io.ReadAll(resp.Body)
	// The body was drained above; a Close error here carries no signal.
	_ = resp.Body.Close()
	if err != nil {
		fr.err = err
		return fr
	}
	elapsed := time.Since(start)

	// http.Header is a map: emit headers in sorted order so the HAR
	// artifact is stable for a given server response.
	names := make([]string, 0, len(resp.Header))
	for name := range resp.Header {
		names = append(names, name)
	}
	sort.Strings(names)
	var headers []har.Header
	for _, name := range names {
		for _, v := range resp.Header[name] {
			headers = append(headers, har.Header{Name: name, Value: v})
		}
	}
	mime := resp.Header.Get("Content-Type")
	fr.entry = har.Entry{
		StartedAt: start,
		Time:      elapsed,
		Request:   har.Request{Method: "GET", URL: url},
		Response: har.Response{
			Status:   resp.StatusCode,
			Headers:  headers,
			MIMEType: mime,
			BodySize: int64(len(body)),
		},
		Timings:   har.Timings{Send: time.Millisecond, Wait: elapsed / 2, Receive: elapsed / 2, DNS: har.NotApplicable, Connect: har.NotApplicable, SSL: har.NotApplicable},
		Initiator: initiator,
		Depth:     depth,
	}
	if resp.StatusCode == 200 {
		fr.refs = bodyscan.Refs(mime, string(body))
	}
	return fr
}
