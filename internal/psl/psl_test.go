package psl

import (
	"testing"
	"testing/quick"
)

func TestPublicSuffix(t *testing.T) {
	l := Default()
	cases := []struct{ host, want string }{
		{"example.com", "com"},
		{"www.example.com", "com"},
		{"bbc.co.uk", "co.uk"},
		{"news.bbc.co.uk", "co.uk"},
		{"foo.bar.ck", "bar.ck"}, // wildcard *.ck
		{"weird.tldthatisnotlisted", "tldthatisnotlisted"},
		{"com", "com"},
		{"Example.COM.", "com"},
	}
	for _, c := range cases {
		if got := l.PublicSuffix(c.host); got != c.want {
			t.Errorf("PublicSuffix(%q) = %q, want %q", c.host, got, c.want)
		}
	}
}

func TestETLDPlusOne(t *testing.T) {
	l := Default()
	cases := []struct{ host, want string }{
		{"example.com", "example.com"},
		{"www.example.com", "example.com"},
		{"a.b.c.example.co.uk", "example.co.uk"},
		{"co.uk", ""}, // bare public suffix
		{"com", ""},   // bare public suffix
		{"", ""},      // empty
		{"x.y.bar.ck", "y.bar.ck"},
	}
	for _, c := range cases {
		if got := l.ETLDPlusOne(c.host); got != c.want {
			t.Errorf("ETLDPlusOne(%q) = %q, want %q", c.host, got, c.want)
		}
	}
}

func TestThirdParty(t *testing.T) {
	l := Default()
	cases := []struct {
		page, res string
		third     bool
	}{
		{"www.guardian.com", "images.guardian.com", false},
		{"www.guardian.com", "cdn.akamai.com", true},
		{"bbc.co.uk", "tesco.co.uk", true}, // PSL-aware: co.uk is a suffix
		{"www.bbc.co.uk", "news.bbc.co.uk", false},
		{"site.com", "site.org", true},
	}
	for _, c := range cases {
		if got := l.IsThirdParty(c.page, c.res); got != c.third {
			t.Errorf("IsThirdParty(%q, %q) = %v, want %v", c.page, c.res, got, c.third)
		}
	}
}

func TestSameSiteSymmetric(t *testing.T) {
	l := Default()
	hosts := []string{"a.example.com", "b.example.com", "example.org", "x.co.uk", "y.x.co.uk"}
	for _, a := range hosts {
		for _, b := range hosts {
			if l.SameSite(a, b) != l.SameSite(b, a) {
				t.Errorf("SameSite(%q,%q) not symmetric", a, b)
			}
		}
	}
}

func TestETLDPlusOneIsSuffixProperty(t *testing.T) {
	l := Default()
	// For any host, ETLD+1 (when non-empty) must be a dot-suffix of the
	// host and contain exactly one more label than the public suffix.
	f := func(a, b uint8) bool {
		labels := []string{"alpha", "beta", "gamma", "delta"}
		host := labels[a%4] + "." + labels[b%4] + ".example.co.uk"
		e := l.ETLDPlusOne(host)
		if e != "example.co.uk" {
			return false
		}
		return len(host) > len(e) && host[len(host)-len(e):] == e
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCustomList(t *testing.T) {
	l := New([]string{"internal", "*.dyn.internal", "// comment", ""})
	if got := l.PublicSuffix("svc.internal"); got != "internal" {
		t.Errorf("custom suffix = %q", got)
	}
	if got := l.PublicSuffix("a.b.dyn.internal"); got != "b.dyn.internal" {
		t.Errorf("wildcard suffix = %q", got)
	}
	if got := l.ETLDPlusOne("a.b.dyn.internal"); got != "a.b.dyn.internal" {
		t.Errorf("wildcard etld+1 = %q", got)
	}
}
