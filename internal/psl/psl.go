// Package psl implements a small public-suffix list and the eTLD+1
// ("second-level domain" in the paper's terminology) logic used to decide
// whether a resource is third-party relative to the page that loads it.
//
// The paper (§6.2) takes public suffixes into account so that, e.g.,
// tesco.co.uk is third-party for bbc.co.uk even though both end in "co.uk".
// The embedded list covers the suffixes produced by the synthetic web
// generator plus the common real-world ones exercised in tests.
package psl

import (
	"strings"
	"sync"
)

// defaultSuffixes is the embedded public-suffix set. Entries use the
// publicsuffix.org format: plain rules and wildcard rules ("*.ck").
var defaultSuffixes = []string{
	"com", "org", "net", "edu", "gov", "mil", "int",
	"io", "co", "ai", "dev", "app", "info", "biz", "tv", "me", "news",
	"shop", "store", "blog", "site", "online", "cloud", "xyz",
	"us", "uk", "de", "fr", "jp", "cn", "ru", "in", "br", "au", "ca",
	"nl", "it", "es", "se", "no", "ch", "kr", "pl", "tr", "mx", "id",
	"co.uk", "org.uk", "ac.uk", "gov.uk", "me.uk", "net.uk",
	"com.au", "net.au", "org.au", "edu.au",
	"co.jp", "or.jp", "ne.jp", "ac.jp", "go.jp",
	"com.cn", "net.cn", "org.cn", "gov.cn",
	"com.br", "net.br", "org.br",
	"co.in", "net.in", "org.in", "ac.in",
	"co.kr", "or.kr", "com.mx", "com.tr", "com.ru",
	"co.id", "or.id", "web.id",
	"*.ck",
}

// List is a compiled public-suffix list. The zero value is empty; use
// Default or New.
type List struct {
	exact    map[string]bool
	wildcard map[string]bool // parent of "*.x" rules
}

// New compiles a list from suffix rules in publicsuffix.org format
// (lowercase, no leading dots; "*." prefix for wildcard rules).
func New(rules []string) *List {
	l := &List{exact: make(map[string]bool), wildcard: make(map[string]bool)}
	for _, r := range rules {
		r = strings.ToLower(strings.TrimSpace(r))
		if r == "" || strings.HasPrefix(r, "//") {
			continue
		}
		if rest, ok := strings.CutPrefix(r, "*."); ok {
			l.wildcard[rest] = true
			continue
		}
		l.exact[r] = true
	}
	return l
}

var (
	defaultOnce sync.Once
	defaultList *List
)

// Default returns the embedded list shared by the whole program.
func Default() *List {
	defaultOnce.Do(func() { defaultList = New(defaultSuffixes) })
	return defaultList
}

// normalizeHost lowercases host and strips a trailing dot and any port.
func normalizeHost(host string) string {
	host = strings.ToLower(host)
	if i := strings.LastIndexByte(host, ':'); i >= 0 && !strings.Contains(host, "]") {
		// Keep it simple: hosts here are names, not IPv6 literals.
		if i > 0 && strings.IndexByte(host[i+1:], '.') < 0 {
			host = host[:i]
		}
	}
	return strings.TrimSuffix(host, ".")
}

// PublicSuffix returns the public suffix of host. If no rule matches, the
// last label is the suffix (the implicit "*" rule).
func (l *List) PublicSuffix(host string) string {
	host = normalizeHost(host)
	if host == "" {
		return ""
	}
	labels := strings.Split(host, ".")
	// Try longest match first.
	for i := 0; i < len(labels); i++ {
		candidate := strings.Join(labels[i:], ".")
		if l.exact[candidate] {
			return candidate
		}
		// A wildcard rule "*.x" matches "y.x".
		if i+1 < len(labels) {
			parent := strings.Join(labels[i+1:], ".")
			if l.wildcard[parent] {
				return candidate
			}
		}
	}
	return labels[len(labels)-1]
}

// ETLDPlusOne returns the registrable domain (eTLD+1) for host, or "" if
// host is itself a public suffix or empty.
func (l *List) ETLDPlusOne(host string) string {
	host = normalizeHost(host)
	if host == "" {
		return ""
	}
	suffix := l.PublicSuffix(host)
	if host == suffix {
		return ""
	}
	rest := strings.TrimSuffix(host, "."+suffix)
	if rest == host { // suffix was not a proper suffix; defensive
		return ""
	}
	if i := strings.LastIndexByte(rest, '.'); i >= 0 {
		rest = rest[i+1:]
	}
	return rest + "." + suffix
}

// SameSite reports whether two hosts share a registrable domain. Hosts
// that are bare public suffixes are never same-site with anything.
func (l *List) SameSite(a, b string) bool {
	ea, eb := l.ETLDPlusOne(a), l.ETLDPlusOne(b)
	return ea != "" && ea == eb
}

// IsThirdParty reports whether resourceHost is third-party with respect to
// pageHost: it is third-party when the two hosts do not share an eTLD+1.
func (l *List) IsThirdParty(pageHost, resourceHost string) bool {
	return !l.SameSite(pageHost, resourceHost)
}
