// Package webgen generates a deterministic synthetic web: ranked sites
// with one landing page and a pool of internal pages, each page a full
// object tree (sizes, MIME mixes, dependency depths, third parties,
// trackers, resource hints, cacheability, CDN placement, security
// posture).
//
// The generator substitutes for the live web the paper measured. Site
// *structure* is sampled from per-site profiles calibrated to the paper's
// site-level statistics (see profile.go for every knob and its source
// figure); page *performance* is never sampled — it emerges downstream
// from the simulated network, DNS, and CDN mechanics when the page-load
// engine fetches these pages.
package webgen

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
	"time"

	"repro/internal/dnssim"
	"repro/internal/simnet"
)

// SiteSeed names one site to generate.
type SiteSeed struct {
	Domain string
	// Rank is the site's Alexa-style rank; 0 means unranked (treated as
	// very unpopular).
	Rank int
	// PoolSize overrides the number of internal pages the site has at
	// week 0 (0 = category default). The exhaustive-crawl experiment
	// (§4, Fig 3b/3c) needs sites with thousands of pages.
	PoolSize int
	// Category forces the site's category ("" = drawn from rank).
	Category Category
}

// Config parameterizes web generation.
type Config struct {
	Seed int64
	// Week is the snapshot week; page pools grow and visit weights drift
	// week over week, which drives Hispar's bottom-level churn (§3).
	Week int
	// Sites to generate. Typically the top of a toplist.Universe snapshot.
	Sites []SiteSeed
	// DefaultPoolSize is the week-0 internal page pool per site
	// (default 120).
	DefaultPoolSize int
	// TrackerDomains and BenignDomains size the global third-party
	// directory (defaults 80 and 320).
	TrackerDomains, BenignDomains int
}

func (c Config) withDefaults() Config {
	if c.DefaultPoolSize <= 0 {
		c.DefaultPoolSize = 120
	}
	if c.TrackerDomains <= 0 {
		c.TrackerDomains = 80
	}
	if c.BenignDomains <= 0 {
		c.BenignDomains = 320
	}
	return c
}

// Web is one weekly snapshot of the synthetic web.
type Web struct {
	Seed  int64
	Week  int
	Sites []*Site

	cfg          Config
	siteByDomain map[string]*Site
	thirdParties []ThirdParty
	tpByKind     map[string][]int // indexes into thirdParties
	tpIndex      map[string]int   // domain -> directory position (popularity order)
}

// Generate builds the web snapshot for cfg.
func Generate(cfg Config) *Web {
	cfg = cfg.withDefaults()
	w := &Web{
		Seed:         cfg.Seed,
		Week:         cfg.Week,
		cfg:          cfg,
		siteByDomain: make(map[string]*Site, len(cfg.Sites)),
		thirdParties: ThirdPartyDirectory(cfg.Seed, cfg.TrackerDomains, cfg.BenignDomains),
		tpByKind:     make(map[string][]int),
	}
	w.tpIndex = make(map[string]int, len(w.thirdParties))
	for i, tp := range w.thirdParties {
		w.tpByKind[tp.Kind] = append(w.tpByKind[tp.Kind], i)
		w.tpIndex[tp.Domain] = i
	}
	for _, seed := range cfg.Sites {
		s := newSite(w, seed)
		w.Sites = append(w.Sites, s)
		w.siteByDomain[s.Domain] = s
	}
	return w
}

// ThirdParties returns the global third-party directory.
func (w *Web) ThirdParties() []ThirdParty { return w.thirdParties }

// TrackerDomains returns the tracker third-party domains (the ground
// truth the synthetic Easylist covers).
func (w *Web) TrackerDomains() []string {
	var out []string
	for _, tp := range w.thirdParties {
		if tp.Tracker {
			out = append(out, tp.Domain)
		}
	}
	return out
}

// SiteByDomain returns the site registered for domain.
func (w *Web) SiteByDomain(domain string) (*Site, bool) {
	s, ok := w.siteByDomain[domain]
	return s, ok
}

// PageByURL maps a normalized page URL back to its Page. Scheme
// differences are ignored: the page identity is host+path.
func (w *Web) PageByURL(raw string) (*Page, bool) {
	host, path := splitURL(raw)
	www := strings.TrimPrefix(host, "www.")
	s, ok := w.siteByDomain[www]
	if !ok {
		return nil, false
	}
	if path == "/" || path == "" {
		return s.Landing(), true
	}
	idx, ok := s.pathIndex()[path]
	if !ok {
		return nil, false
	}
	return s.PageAt(idx), true
}

func splitURL(raw string) (host, path string) {
	s := raw
	if i := strings.Index(s, "://"); i >= 0 {
		s = s[i+3:]
	}
	if i := strings.IndexByte(s, '/'); i >= 0 {
		host, path = s[:i], s[i:]
	} else {
		host, path = s, "/"
	}
	if i := strings.IndexByte(path, '#'); i >= 0 {
		path = path[:i]
	}
	return strings.ToLower(host), path
}

// Site is one web site: a domain, its rank and category, a calibrated
// profile, a landing page, and a pool of internal pages.
type Site struct {
	Domain   string
	Rank     int
	Category Category
	Origin   simnet.Loc
	Profile  Profile

	web      *Web
	seed     int64
	landing  *Page
	pathIdx  map[string]int
	poolSize int
}

func newSite(w *Web, seed SiteSeed) *Site {
	s := &Site{
		Domain: strings.ToLower(seed.Domain),
		Rank:   seed.Rank,
		web:    w,
		seed:   subSeed(w.Seed, "site", strings.ToLower(seed.Domain)),
	}
	rng := rand.New(rand.NewSource(s.seed))
	rank := seed.Rank
	if rank <= 0 {
		rank = 100000
	}
	s.Category = seed.Category
	if s.Category == "" {
		s.Category = categoryFor(rng, rank)
	}
	s.Origin = originLoc(rng, s.Category)
	s.Profile = sampleProfile(rng, rank, s.Category)
	s.poolSize = seed.PoolSize
	if s.poolSize <= 0 {
		// Site sizes are heavy-tailed: some sites have only a couple of
		// dozen pages (their site: queries return fewer than N URLs and
		// cost extra per URL — the §7 cost overhead), others thousands.
		s.poolSize = int(logNormal(rng, float64(w.cfg.DefaultPoolSize), 0.8))
		if s.poolSize < 12 {
			s.poolSize = 12
		}
	}
	return s
}

// Popularity returns the site's global request popularity in (0,1],
// Zipf-like in rank.
func (s *Site) Popularity() float64 {
	rank := s.Rank
	if rank <= 0 {
		rank = 100000
	}
	return math.Pow(float64(rank), -0.85)
}

// Host returns the site's canonical web host (www.<domain>).
func (s *Site) Host() string { return "www." + s.Domain }

// freshPerWeek is how many new internal pages the site publishes weekly.
func (s *Site) freshPerWeek() int {
	switch s.Category {
	case CatNews, CatSports:
		return 12
	case CatSocial:
		return 8
	case CatEntertainment:
		return 4
	default:
		return 1
	}
}

// PoolSize returns the number of internal pages existing at the web's
// snapshot week.
func (s *Site) PoolSize() int {
	return s.poolSize + s.freshPerWeek()*s.web.Week
}

// Landing returns the site's landing page.
func (s *Site) Landing() *Page {
	if s.landing == nil {
		s.landing = &Page{Site: s, Index: 0}
	}
	return s.landing
}

// PageAt returns the internal page with 1-based index idx (idx 0 is the
// landing page). Pages are cheap value-ish objects created on demand.
func (s *Site) PageAt(idx int) *Page {
	if idx == 0 {
		return s.Landing()
	}
	return &Page{Site: s, Index: idx}
}

// pathIndex maps internal page paths to indices, built lazily over the
// current pool.
func (s *Site) pathIndex() map[string]int {
	if s.pathIdx != nil {
		return s.pathIdx
	}
	s.pathIdx = make(map[string]int, s.PoolSize())
	for i := 1; i <= s.PoolSize(); i++ {
		s.pathIdx[s.PageAt(i).Path()] = i
	}
	return s.pathIdx
}

// InternalPages returns the site's full internal page pool at the
// snapshot week.
func (s *Site) InternalPages() []*Page {
	n := s.PoolSize()
	out := make([]*Page, 0, n)
	for i := 1; i <= n; i++ {
		out = append(out, s.PageAt(i))
	}
	return out
}

// TopInternal returns the site's n most-visited internal pages at the
// snapshot week, most popular first — what a search engine surfaces for
// a "site:" query.
func (s *Site) TopInternal(n int) []*Page {
	pages := s.InternalPages()
	sort.Slice(pages, func(a, b int) bool {
		wa, wb := pages[a].VisitWeight(), pages[b].VisitWeight()
		if wa != wb {
			return wa > wb
		}
		return pages[a].Index < pages[b].Index
	})
	if n < len(pages) {
		pages = pages[:n]
	}
	return pages
}

// TopIndexable returns the site's n most-visited internal pages that a
// search engine may index (robots.txt exclusions removed).
func (s *Site) TopIndexable(n int) []*Page {
	// Over-fetch, then filter: disallowed pages are a small fraction.
	candidates := s.TopInternal(n + n/2 + 8)
	out := make([]*Page, 0, n)
	for _, p := range candidates {
		if p.Disallowed() {
			continue
		}
		out = append(out, p)
		if len(out) == n {
			break
		}
	}
	return out
}

// Page is one web page of a site. Index 0 is the landing page.
type Page struct {
	Site  *Site
	Index int
}

// IsLanding reports whether p is the site's landing page.
func (p *Page) IsLanding() bool { return p.Index == 0 }

// BornWeek returns the week the page was published (0 for the base pool).
func (p *Page) BornWeek() int {
	base := p.Site.poolSize
	if p.Index <= base {
		return 0
	}
	return 1 + (p.Index-base-1)/maxInt(1, p.Site.freshPerWeek())
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Path returns the page's URL path, stable across weeks.
func (p *Page) Path() string {
	if p.IsLanding() {
		return "/"
	}
	rng := rngForKeyIdx(p.Site.seed, "path", p.Index)
	return pathFor(rng, p.Site.Category, p.Index)
}

// baseScheme is the scheme the URL itself is served under, before any
// redirect is considered.
func (p *Page) baseScheme() string {
	prof := &p.Site.Profile
	if p.IsLanding() {
		if prof.HTTPLanding {
			return "http"
		}
		return "https"
	}
	if prof.HTTPLanding {
		// Sites that have not migrated the landing page serve everything
		// over HTTP.
		return "http"
	}
	if prof.HTTPInternalProb > 0 &&
		noise01KeyIdx(p.Site.seed, "scheme", p.Index) < prof.HTTPInternalProb {
		return "http"
	}
	return "https"
}

// Scheme returns the scheme of the page a user finally lands on: "http"
// for plain-HTTP URLs and for HTTPS URLs that redirect to plain-HTTP
// content elsewhere (§6.1 security posture).
func (p *Page) Scheme() string {
	if _, ok := p.RedirectsToInsecure(); ok {
		return "http"
	}
	return p.baseScheme()
}

// URL returns the page's full normalized URL — the address a search
// engine or list carries, i.e. before any redirect is followed.
func (p *Page) URL() string {
	return p.baseScheme() + "://" + p.Site.Host() + p.Path()
}

// Title returns a short page title used by search indexing.
func (p *Page) Title() string {
	if p.IsLanding() {
		return p.Site.Domain + " — home"
	}
	rng := rngForKeyIdx(p.Site.seed, "title", p.Index)
	w := slugWords[rng.Intn(len(slugWords))]
	return fmt.Sprintf("%s %s — %s",
		strings.ToUpper(w[:1])+w[1:],
		slugWords[rng.Intn(len(slugWords))],
		p.Site.Domain)
}

// VisitWeight returns the page's user-visit popularity at the web's
// snapshot week. Weights drift weekly (more for fresh-content
// categories), and recent pages on news-like sites get a recency boost —
// together these produce Hispar's ~30% weekly internal-URL churn (§3).
func (p *Page) VisitWeight() float64 {
	if p.IsLanding() {
		return 1e9 // the landing page is always the most visited
	}
	s := p.Site
	week := s.web.Week
	// Base Zipf over the page pool, keyed to a stable per-page draw so
	// the "intrinsically popular" pages persist.
	base := math.Pow(1+noise01KeyIdx(s.seed, "basepop", p.Index)*float64(s.PoolSize()), -0.9)
	sigma := 0.5
	switch s.Category {
	case CatNews, CatSports:
		sigma = 1.3
	case CatSocial:
		sigma = 1.1
	case CatEntertainment:
		sigma = 0.8
	}
	drift := math.Exp(normNoise(s.seed, "drift", p.Index, week) * sigma)
	recency := 1.0
	if f := s.freshPerWeek(); f > 3 {
		age := float64(week - p.BornWeek())
		if age < 0 {
			age = 0
		}
		recency = math.Exp(-0.5*age) + 0.05
	}
	return base * drift * recency
}

// Popularity returns the page's global request popularity used for cache
// warmth: site popularity shaped by within-site visit share, boosted for
// the landing page (landing pages are requested far more often — the
// root of the paper's CDN-hit asymmetry, §5.1).
func (p *Page) Popularity() float64 {
	s := p.Site
	pop := math.Pow(s.Popularity(), 0.3)
	if p.IsLanding() {
		return pop * s.Profile.LandingPopBoost
	}
	// Within-site share, compressed: internal pages vary less in global
	// popularity than raw visit weights suggest.
	w := p.VisitWeight()
	share := math.Pow(clamp01(w), 0.25)
	if share < 0.68 {
		share = 0.68
	}
	return pop * share
}

// Authority returns a DNS authority over the synthetic web: site hosts
// (with CNAME chains to CDN edges for CDN-fronted subdomains),
// third-party hosts, and raw CDN hosts. TTLs are short for
// request-routed (CDN) names and long otherwise, which drives the low
// resolver hit rates of §5.3.
func (w *Web) Authority() dnssim.Authority {
	return dnssim.AuthorityFunc(func(host string) (dnssim.Record, bool) {
		host = strings.ToLower(host)
		ttl := time.Hour
		var chain []string
		switch {
		case strings.Contains(host, "-edge.net"), isCDNHost(host):
			ttl = 30 * time.Second
		case strings.HasPrefix(host, "static."):
			// The static.<domain> subdomain is CNAMEd to the site's CDN
			// when it has a contract; everything served from it rides the
			// CDN (host-consistent delivery).
			if s, ok := w.siteByDomain[trimFirstLabel(host)]; ok && s.Profile.CDNProvider != "" {
				edge := "static." + s.Domain + "." + s.Profile.CDNProvider + "-edge.net"
				chain = []string{edge}
				ttl = 60 * time.Second
			}
		}
		return dnssim.Record{
			Host:  host,
			Chain: chain,
			Addr:  dnssim.SyntheticAddr(host),
			TTL:   ttl,
		}, true
	})
}

func trimFirstLabel(host string) string {
	if i := strings.IndexByte(host, '.'); i >= 0 {
		return host[i+1:]
	}
	return host
}

func isCDNHost(host string) bool {
	for _, p := range cdnProviderNames {
		if strings.HasSuffix(host, "."+p+".net") {
			return true
		}
	}
	return false
}
