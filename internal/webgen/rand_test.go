package webgen

import "testing"

// TestSubSeedFastPaths pins the typed sub-seed fast paths bit-identical
// to the variadic originals: every generated corpus depends on these
// streams, so a divergence here silently rewrites the whole web.
func TestSubSeedFastPaths(t *testing.T) {
	bases := []int64{0, 1, -1, 42, 1 << 40, -(1 << 52)}
	keys := []string{"", "page-model", "trackers", "mixed", "a:b/c"}
	idxs := []int{0, 1, 7, 1000, -3}
	for _, base := range bases {
		for _, key := range keys {
			if got, want := subSeedKey(base, key), subSeed(base, key); got != want {
				t.Errorf("subSeedKey(%d, %q) = %d, want %d", base, key, got, want)
			}
			for _, idx := range idxs {
				if got, want := subSeedKeyIdx(base, key, idx), subSeed(base, key, idx); got != want {
					t.Errorf("subSeedKeyIdx(%d, %q, %d) = %d, want %d", base, key, idx, got, want)
				}
				if got, want := noise01KeyIdx(base, key, idx), noise01(base, key, idx); got != want {
					t.Errorf("noise01KeyIdx(%d, %q, %d) = %v, want %v", base, key, idx, got, want)
				}
			}
		}
	}

	// The RNG constructors wrap the same seeds: first draws must agree.
	for _, base := range bases {
		a, b := rngForKey(base, "trackers"), rngFor(base, "trackers")
		if a.Int63() != b.Int63() {
			t.Errorf("rngForKey(%d) draw diverged from rngFor", base)
		}
		c, d := rngForKeyIdx(base, "page-model", 3), rngFor(base, "page-model", 3)
		if c.Int63() != d.Int63() {
			t.Errorf("rngForKeyIdx(%d) draw diverged from rngFor", base)
		}
	}
}
