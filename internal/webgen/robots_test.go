package webgen

import (
	"strings"
	"testing"
)

func robotsWeb(t *testing.T) *Web {
	t.Helper()
	seeds := make([]SiteSeed, 0, 60)
	for i := 0; i < 60; i++ {
		seeds = append(seeds, SiteSeed{Domain: DomainNameForTest(i), Rank: i*16 + 1})
	}
	return Generate(Config{Seed: 17, Sites: seeds})
}

func TestDisallowedStableAndExcluded(t *testing.T) {
	w := robotsWeb(t)
	var site *Site
	for _, s := range w.Sites {
		if s.Profile.DisallowFrac > 0 {
			site = s
			break
		}
	}
	if site == nil {
		t.Skip("no robots-using site at this seed")
	}
	// Deterministic.
	found := 0
	for i := 1; i <= site.PoolSize(); i++ {
		p := site.PageAt(i)
		if p.Disallowed() != p.Disallowed() {
			t.Fatal("Disallowed not stable")
		}
		if p.Disallowed() {
			found++
		}
	}
	if found == 0 {
		t.Skip("no disallowed pages drawn")
	}
	if site.Landing().Disallowed() {
		t.Error("landing page must never be disallowed")
	}
	// robots.txt lists exactly the disallowed paths.
	robots := site.RobotsTxt()
	if strings.Count(robots, "Disallow: /") != found {
		t.Errorf("robots.txt rules = %d, disallowed pages = %d\n%s",
			strings.Count(robots, "Disallow: /"), found, robots)
	}
	// Search-indexable pages exclude them.
	for _, p := range site.TopIndexable(site.PoolSize()) {
		if p.Disallowed() {
			t.Errorf("TopIndexable returned a disallowed page: %s", p.URL())
		}
	}
}

func TestInsecureRedirectModel(t *testing.T) {
	w := robotsWeb(t)
	var page *Page
	var target string
	for _, s := range w.Sites {
		if s.Profile.InsecureRedirectProb <= 0 {
			continue
		}
		for i := 1; i <= s.PoolSize(); i++ {
			if tgt, ok := s.PageAt(i).RedirectsToInsecure(); ok {
				page, target = s.PageAt(i), tgt
				break
			}
		}
		if page != nil {
			break
		}
	}
	if page == nil {
		t.Skip("no insecure-redirect page at this seed")
	}
	if !strings.HasPrefix(target, "http://") {
		t.Fatalf("redirect target %q is not plain HTTP", target)
	}
	if !strings.HasPrefix(page.URL(), "https://") {
		t.Errorf("the list URL must stay HTTPS, got %s", page.URL())
	}
	if page.Scheme() != "http" {
		t.Errorf("effective scheme = %s, want http after redirect", page.Scheme())
	}

	m := page.Build()
	if m.RedirectedFrom != page.URL() {
		t.Errorf("RedirectedFrom = %q, want %q", m.RedirectedFrom, page.URL())
	}
	if m.Objects[0].Role != RoleRedirect || m.Objects[0].Depth != 0 {
		t.Fatalf("Objects[0] = %+v, want the redirect", m.Objects[0])
	}
	doc := m.Objects[m.DocIndex()]
	if doc.URL != target || doc.Depth != 1 || doc.Parent != 0 {
		t.Fatalf("document node wrong: %+v", doc)
	}
	for i, o := range m.Objects[2:] {
		if o.Parent <= 0 || o.Depth < 2 {
			t.Fatalf("object %d not shifted below the document: %+v", i+2, o)
		}
	}
	// Markup still lists the document's direct children.
	html := m.RenderHTML()
	refs := 0
	for _, o := range m.Objects {
		if o.Parent == m.DocIndex() && strings.Contains(html, o.URL) {
			refs++
		}
	}
	if refs == 0 {
		t.Error("rendered markup references none of the document's children")
	}
}

func TestNormalPagesUnchangedByRedirectLogic(t *testing.T) {
	w := robotsWeb(t)
	s := w.Sites[0]
	m := s.Landing().Build()
	if m.RedirectedFrom != "" || m.Objects[0].Role != RoleDoc {
		t.Error("landing pages must never carry a redirect hop")
	}
	if m.DocIndex() != 0 {
		t.Error("DocIndex should be 0 for normal pages")
	}
}
