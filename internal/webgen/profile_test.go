package webgen

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/stats"
)

// sampleProfiles draws n profiles spread over the H1K rank range.
func sampleProfiles(n int) []Profile {
	rng := rand.New(rand.NewSource(123))
	out := make([]Profile, 0, n)
	for i := 0; i < n; i++ {
		rank := 1 + i*999/(n-1)
		out = append(out, sampleProfile(rng, rank, CatNews))
	}
	return out
}

// TestProfileCalibrationAnchors checks that the sampled site-level
// parameters land near the paper's aggregate targets in expectation.
// Bands are generous: the realized study statistics (the real
// calibration check) live in internal/experiments tests.
func TestProfileCalibrationAnchors(t *testing.T) {
	profiles := sampleProfiles(4000)

	var objRatios, sizeRatios, domRatios []float64
	objAbove, sizeAbove := 0, 0
	hintsL, noHintsI := 0, 0
	httpLanding := 0
	for i := range profiles {
		p := &profiles[i]
		objRatios = append(objRatios, p.ObjRatio)
		sizeRatios = append(sizeRatios, p.SizeRatio)
		domRatios = append(domRatios, p.DomainsRatio)
		if p.ObjRatio > 1 {
			objAbove++
		}
		if p.SizeRatio > 1 {
			sizeAbove++
		}
		if p.HintsLanding > 0 {
			hintsL++
		}
		if p.HintsInternal == 0 {
			noHintsI++
		}
		if p.HTTPLanding {
			httpLanding++
		}
	}
	n := float64(len(profiles))

	if f := float64(sizeAbove) / n; f < 0.58 || f > 0.72 {
		t.Errorf("P(size ratio > 1) = %.3f, want ~0.65 (Fig 2a)", f)
	}
	if f := float64(objAbove) / n; f < 0.60 || f > 0.76 {
		t.Errorf("P(obj ratio > 1) = %.3f, want ~0.68 (Fig 2b)", f)
	}
	if g := stats.GeometricMean(sizeRatios); g < 1.2 || g > 1.55 {
		t.Errorf("geomean size ratio = %.3f, want ~1.34", g)
	}
	if g := stats.GeometricMean(objRatios); g < 1.1 || g > 1.4 {
		t.Errorf("geomean obj ratio = %.3f, want ~1.24", g)
	}
	if g := stats.GeometricMean(domRatios); g < 1.2 || g > 1.8 {
		t.Errorf("geomean domain target ratio = %.3f (pre-dilution, sits above the measured 1.29)", g)
	}
	if f := float64(hintsL) / n; f < 0.6 || f > 0.85 {
		t.Errorf("P(landing has hints) = %.3f, want ~0.72 pre-measurement (Fig 6b)", f)
	}
	if f := float64(noHintsI) / n; f < 0.35 || f > 0.60 {
		t.Errorf("P(internal no hints) = %.3f, want ~0.47 (Fig 6b)", f)
	}
	if f := float64(httpLanding) / n; f < 0.02 || f > 0.06 {
		t.Errorf("P(HTTP landing) = %.3f, want ~0.036 (Fig 8a)", f)
	}
}

// TestProfileRankGradients checks the rank-dependent knobs move the right
// way (the Figs 9/10 trends).
func TestProfileRankGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(321))
	const n = 1500
	meanAt := func(rank int, f func(*Profile) float64) float64 {
		var xs []float64
		for i := 0; i < n; i++ {
			p := sampleProfile(rng, rank, CatNews)
			xs = append(xs, f(&p))
		}
		return stats.Mean(xs)
	}
	ncTop := meanAt(150, func(p *Profile) float64 { return math.Log(p.NCCountRatio) })
	ncBottom := meanAt(950, func(p *Profile) float64 { return math.Log(p.NCCountRatio) })
	if ncTop <= ncBottom {
		t.Errorf("NC ratio must decline with rank: top %.2f vs bottom %.2f (Fig 10a)", ncTop, ncBottom)
	}
	if ncBottom >= 0 {
		t.Errorf("NC log-ratio at the bottom = %.2f, want negative (the Fig 10a reversal)", ncBottom)
	}
	domTop := meanAt(150, func(p *Profile) float64 { return math.Log(p.DomainsRatio) })
	domBottom := meanAt(950, func(p *Profile) float64 { return math.Log(p.DomainsRatio) })
	if domTop <= domBottom {
		t.Errorf("domain ratio must decline with rank (Fig 10b)")
	}
	blockTop := meanAt(50, func(p *Profile) float64 { return p.BlockingCSSLanding })
	blockBottom := meanAt(950, func(p *Profile) float64 { return p.BlockingCSSLanding })
	if blockTop >= blockBottom {
		t.Error("landing CSS inlining must be strongest at the top (Fig 2c gradient)")
	}
}

// TestWorldProfileOverrides checks the Fig 10c mechanism.
func TestWorldProfileOverrides(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	worldDoc, usDoc := 0, 0
	var worldObj, usObj []float64
	for i := 0; i < 800; i++ {
		w := sampleProfile(rng, 500, CatWorld)
		u := sampleProfile(rng, 500, CatShopping)
		if w.DocViaCDN {
			worldDoc++
		}
		if u.DocViaCDN {
			usDoc++
		}
		worldObj = append(worldObj, math.Log(w.ObjRatio))
		usObj = append(usObj, math.Log(u.ObjRatio))
	}
	if worldDoc != 0 {
		t.Errorf("World sites must not front HTML through US-visible CDNs (%d did)", worldDoc)
	}
	if usDoc == 0 {
		t.Error("Shopping sites should often front HTML through CDNs")
	}
	if stats.Mean(worldObj) <= stats.Mean(usObj) {
		t.Error("World landing pages should be relatively heavier (portal effect)")
	}
}

func TestContentMixNormalized(t *testing.T) {
	for _, p := range sampleProfiles(500) {
		for _, m := range []ContentMix{p.MixLanding, p.MixInternal} {
			sum := m.JS + m.Image + m.HTMLCSS + m.Other
			if math.Abs(sum-1) > 1e-9 {
				t.Fatalf("mix not normalized: %v (sum %f)", m, sum)
			}
		}
		if p.MixInternal.JS <= 0 || p.MixLanding.Image <= 0 {
			t.Fatal("degenerate mix")
		}
	}
}
