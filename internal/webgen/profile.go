package webgen

import (
	"math"
	"math/rand"

	"repro/internal/cdn"
)

// cdnProviderNames caches the provider roster for host classification.
var cdnProviderNames = func() []string {
	ps := cdn.Providers()
	names := make([]string, len(ps))
	for i, p := range ps {
		names[i] = p.Name
	}
	return names
}()

// ContentMix is the byte share of the paper's coarse content groups
// (§5.2, Fig 4c). Other covers the six minor categories combined
// (audio, data, font, JSON, video, unknown).
type ContentMix struct {
	JS      float64
	Image   float64
	HTMLCSS float64
	Other   float64
}

func (m ContentMix) normalize() ContentMix {
	s := m.JS + m.Image + m.HTMLCSS + m.Other
	if s <= 0 {
		return ContentMix{JS: 0.45, Image: 0.3, HTMLCSS: 0.16, Other: 0.09}
	}
	return ContentMix{JS: m.JS / s, Image: m.Image / s, HTMLCSS: m.HTMLCSS / s, Other: m.Other / s}
}

// DepthMix is the fraction of a page's objects at each dependency depth
// beyond 1 (the remainder sits at depth 1). §5.4, Fig 6a.
type DepthMix struct {
	D2, D3, D4, D5 float64
}

// Profile holds every sampled structural parameter for one site. Each
// field's calibration target cites the paper figure it reproduces.
// Performance (PLT, SpeedIndex, wait, handshake time, CDN hit rates) is
// intentionally absent: it emerges from the simulators.
type Profile struct {
	// ObjInternal is the site's median internal-page object count;
	// ObjRatio is landing/internal. Fig 2b: geo-mean ratio ≈1.24;
	// landing has more objects for 57% of Ht30 and ~68% of H1K sites.
	ObjInternal float64
	ObjRatio    float64

	// BytesInternal is the median internal-page total size; SizeRatio is
	// landing/internal. Fig 2a: geo-mean ≈1.34; landing larger for 54%
	// (Ht30) to ~65% (H1K) of sites. Correlated with ObjRatio so that
	// only ~5% of sites have fewer-but-heavier landing pages.
	BytesInternal float64
	SizeRatio     float64

	// Content mixes. Fig 4c: internal pages have relatively +10% JS,
	// +22% HTML/CSS, and landing +36% image bytes.
	MixLanding  ContentMix
	MixInternal ContentMix

	// Non-cacheable objects. Fig 4a: landing has ~40% more non-cacheable
	// objects in the median (66% of sites more), with the rank-trend
	// reversal of Fig 10a; cacheable *bytes* fractions stay similar.
	NCFracInternal float64 // fraction of internal-page objects that are non-cacheable
	NCCountRatio   float64 // landing/internal non-cacheable count ratio

	// Unique origins. Fig 5: landing contacts ~29% more unique domains
	// in the median (67% of sites), reversing at the bottom (Fig 10b).
	DomainsInternal float64
	DomainsRatio    float64

	// CDN placement. Fig 4b: landing pages have ~13% higher CDN-byte
	// fraction (57% of sites). CDNProvider is the provider fronting the
	// site's static subdomains ("" = no CDN contract).
	CDNFracInternal float64
	CDNFracRatio    float64
	CDNProvider     string
	// DocViaCDN marks sites that front their HTML through the CDN
	// (common at the top of the list: think news sites behind Fastly).
	// The landing document is then usually edge-cached while per-article
	// documents miss — a major PLT lever (§5.1/§5.6).
	DocViaCDN bool

	// Resource hints. Fig 6b: 69% of landing pages use ≥1 hint; 45%
	// (52% in Ht100) of internal pages use none.
	HintsLanding  int
	HintsInternal int

	// Dependency depths (Fig 6a): landing pages have ~38% more objects
	// at depth 2 in the median and fatter depth-4/5 tails.
	DepthLanding  DepthMix
	DepthInternal DepthMix

	// Third parties (Fig 8b): internal pages collectively contact a
	// median of 18 third-party domains never seen on the landing page,
	// with a 10% tail ≥80. TPPoolSize is the site's full third-party
	// roster; landing pages use the head of the roster.
	TPPoolSize int

	// Trackers (Fig 8c): landing 80th-pct ≈28 tracking requests vs ≈20
	// for internal; ~10% of sites track only on the landing page.
	TrackersLanding  float64 // per-page mean
	TrackersInternal float64

	// Security (§6.1, Fig 8a): 36/1000 sites serve the landing page over
	// HTTP; 170 HTTPS-landing sites have ≥1 HTTP internal page among 19
	// measured; mixed content on 35 landing pages vs 194 sites with ≥1
	// mixed internal page.
	HTTPLanding       bool
	HTTPInternalProb  float64 // per-internal-page probability of plain HTTP
	MixedLanding      bool
	MixedInternalProb float64 // per-internal-HTTPS-page probability of passive mixed content

	// Header bidding (§6.3): of 200 sites, 17 had HB ads on the landing
	// page and 12 more only on internal pages; ad slots 80th-pct 9
	// (landing) vs 7 (internal).
	HBLanding      bool
	HBInternalOnly bool
	AdSlotsLanding int
	AdSlotsIntern  int

	// FewEnglish marks sites whose site: query yields <10 English
	// results; the Hispar builder drops them (§3).
	FewEnglish bool

	// DisallowFrac is the fraction of internal pages under robots.txt
	// Disallow rules: search engines never surface them and polite
	// crawlers skip them (§3's "except pages disallowed via robots.txt").
	DisallowFrac float64

	// InsecureRedirectProb is the per-internal-page probability that an
	// HTTPS URL redirects to a plain-HTTP page on a *different* domain —
	// the paper's amazon.com/birminghamjobs → amazon.jobs case (§6.1).
	InsecureRedirectProb float64

	// LandingPopBoost multiplies the landing page's global request
	// popularity; it is the mechanism behind the §5.1 CDN-hit asymmetry.
	LandingPopBoost float64

	// Landing-page hand-optimization (§4: "web developers optimize the
	// landing-page design more meticulously"): critical CSS is inlined so
	// only BlockingCSSLanding of the landing page's stylesheets block
	// first paint, and a larger share of landing scripts load async.
	// Internal pages get template defaults (all CSS blocks).
	BlockingCSSLanding float64
	AsyncJSLanding     float64
	AsyncJSInternal    float64

	// TLS13 marks sites whose servers negotiate TLS 1.3 (1-RTT
	// handshakes); the 2020 web was mid-migration.
	TLS13 bool
}

// sampleProfile draws a site profile. rank is the Alexa-style rank
// (1-based; large = unpopular); cat the site category. The rank
// interpolation parameter t runs 0 at the top of H1K to 1 at rank 1000+,
// matching the paper's rank-bin trends (Figs 9–10).
func sampleProfile(rng *rand.Rand, rank int, cat Category) Profile {
	t := clamp01(float64(rank) / 1000.0)
	var p Profile

	// --- Structure: object count and size (Figs 2a/2b/9b/9c) ---
	p.ObjInternal = logNormal(rng, 72, 0.45)
	if p.ObjInternal < 15 {
		p.ObjInternal = 15
	}
	// Correlated landing/internal ratios: shared factor keeps
	// "fewer objects but larger" sites to ~5% (Fig 2a vs 2b discussion).
	zc := rng.NormFloat64()
	zObj := 0.92*zc + 0.39*rng.NormFloat64()
	zSize := 0.92*zc + 0.39*rng.NormFloat64()
	pObj := lerp(0.57, 0.70, math.Pow(t, 0.15))
	pSize := lerp(0.54, 0.68, math.Pow(t, 0.3))
	// Mild rank bumpiness so the per-bin medians wiggle as in Fig 9.
	bump := 0.06 * math.Sin(6.0*t)
	if cat == CatWorld {
		// World landing pages skew portal-style heavy, which — combined
		// with far origins and cold US edges — is why their landing
		// pages are generally slower (Fig 10c).
		bump += 0.38
	}
	p.ObjRatio = math.Exp(0.45*invPhi(pObj) + 0.45*zObj + bump)
	p.SizeRatio = math.Exp(0.76*invPhi(pSize) + 0.76*zSize + bump)
	p.BytesInternal = p.ObjInternal / 72 * logNormal(rng, 1.6e6, 0.5)
	if p.BytesInternal < 1.2e5 {
		p.BytesInternal = 1.2e5
	}

	// --- Content mix (Fig 4c) ---
	jitter := func(v float64) float64 { return v * math.Exp(rng.NormFloat64()*0.22) }
	p.MixLanding = ContentMix{JS: jitter(0.45), Image: jitter(0.30), HTMLCSS: jitter(0.16), Other: jitter(0.09)}.normalize()
	p.MixInternal = ContentMix{JS: jitter(0.50), Image: jitter(0.22), HTMLCSS: jitter(0.195), Other: jitter(0.085)}.normalize()

	// --- Cacheability (Figs 4a/10a) ---
	p.NCFracInternal = clamp01(logNormal(rng, 0.32, 0.35))
	if p.NCFracInternal > 0.8 {
		p.NCFracInternal = 0.8
	}
	muNC := 1.15 - 1.45*t
	p.NCCountRatio = math.Exp(muNC + rng.NormFloat64()*0.55)

	// --- Origins (Figs 5/10b) ---
	p.DomainsInternal = logNormal(rng, 19, 0.40)
	if p.DomainsInternal < 4 {
		p.DomainsInternal = 4
	}
	muDom := 0.80 - 0.80*t
	p.DomainsRatio = math.Exp(muDom + rng.NormFloat64()*0.40)

	// --- CDN (Fig 4b) ---
	adoption := clamp01(lerp(0.62, 0.40, t) * math.Exp(rng.NormFloat64()*0.28))
	if cat == CatWorld {
		// Sites popular outside the US contract CDNs less (and their
		// CDNs have little presence near the vantage point anyway).
		adoption *= 0.55
	}
	p.CDNFracInternal = clamp01(adoption * 0.85)
	// The 1.35 median compensates for landing pages' larger third-party
	// share (mostly origin-served), which dilutes the realized CDN byte
	// fraction; the measured median ratio lands near the paper's 1.13.
	p.CDNFracRatio = math.Exp(math.Log(1.35) + rng.NormFloat64()*0.45)
	if adoption > 0.15 {
		p.CDNProvider = cdnProviderNames[rng.Intn(len(cdnProviderNames))]
		docP := lerp(0.68, 0.46, t)
		if cat == CatShopping {
			// Conversion-sensitive storefronts front their HTML
			// aggressively (the Fig 10c Shopping tail).
			docP = lerp(0.92, 0.55, t)
		}
		p.DocViaCDN = cat != CatWorld && rng.Float64() < docP
	}

	// --- Resource hints (Fig 6b) ---
	if rng.Float64() < lerp(0.80, 0.64, t) {
		p.HintsLanding = 1 + geometric(rng, 0.24) // mean ≈ 4.2, tail to ~30
		if p.HintsLanding > 32 {
			p.HintsLanding = 32
		}
	}
	pNoIntHints := lerp(0.52, 0.42, t)
	if rng.Float64() >= pNoIntHints {
		p.HintsInternal = 1 + geometric(rng, 0.45)
		if p.HintsInternal > p.HintsLanding && p.HintsLanding > 0 {
			p.HintsInternal = p.HintsLanding
		}
	}

	// --- Depths (Fig 6a) ---
	// Internal pages carry proportionally more telemetry fetches, which
	// always fire from scripts at depth >= 2; the landing mix is set
	// higher so the *realized* depth-2 asymmetry matches Fig 6a.
	dj := func(v float64) float64 { return v * math.Exp(rng.NormFloat64()*0.3) }
	p.DepthLanding = DepthMix{D2: dj(0.30), D3: dj(0.09), D4: dj(0.022), D5: dj(0.009)}
	p.DepthInternal = DepthMix{D2: dj(0.165), D3: dj(0.05), D4: dj(0.011), D5: dj(0.004)}

	// --- Third parties (Fig 8b) ---
	p.TPPoolSize = int(logNormal(rng, 50, 1.0))
	if p.TPPoolSize < 8 {
		p.TPPoolSize = 8
	}
	if p.TPPoolSize > 380 {
		p.TPPoolSize = 380
	}

	// --- Trackers (Fig 8c) ---
	p.TrackersLanding = logNormal(rng, 15, 0.95)
	if p.TrackersLanding > 90 {
		p.TrackersLanding = 90
	}
	if rng.Float64() < 0.10 {
		p.TrackersInternal = 0 // ~10% of sites track only on the landing page
	} else {
		p.TrackersInternal = p.TrackersLanding * math.Exp(math.Log(0.72)+rng.NormFloat64()*0.3)
	}

	// --- Security (Fig 8a) ---
	p.HTTPLanding = rng.Float64() < 0.036
	if !p.HTTPLanding && rng.Float64() < 0.185 {
		// Sites with a lingering plain-HTTP section: mostly small, with a
		// cluster of badly migrated sites (36/170 had ≥10 insecure pages).
		if rng.Float64() < 0.22 {
			p.HTTPInternalProb = 0.5 + rng.Float64()*0.45
		} else {
			p.HTTPInternalProb = 0.03 + rng.Float64()*0.17
		}
	}
	p.MixedLanding = !p.HTTPLanding && rng.Float64() < 0.037
	if rng.Float64() < 0.235 {
		p.MixedInternalProb = 0.05 + rng.Float64()*0.45
	}

	// --- Header bidding (§6.3) ---
	p.HBLanding = rng.Float64() < 0.08
	if !p.HBLanding {
		p.HBInternalOnly = rng.Float64() < 0.066
	}
	if p.HBLanding || p.HBInternalOnly {
		p.AdSlotsLanding = 3 + geometric(rng, 0.30) // 80th pct ≈ 9
		p.AdSlotsIntern = 2 + geometric(rng, 0.30)  // 80th pct ≈ 7
	}

	// --- List building (§3) ---
	few := 0.02
	if cat == CatWorld {
		few = 0.45
	}
	p.FewEnglish = rng.Float64() < few
	if rng.Float64() < 0.5 {
		p.DisallowFrac = 0.02 + rng.Float64()*0.12
	}
	if rng.Float64() < 0.03 {
		p.InsecureRedirectProb = 0.02 + rng.Float64()*0.08
	}

	// --- Popularity & TLS ---
	p.LandingPopBoost = 1.7 * math.Exp(rng.NormFloat64()*0.15)
	p.TLS13 = rng.Float64() < 0.4

	// --- Landing-page optimization (strongest at the top of the list,
	// where the Fig 2c landing-faster fraction peaks at 77%) ---
	p.BlockingCSSLanding = clamp01(lerp(0.28, 0.50, t) * math.Exp(rng.NormFloat64()*0.3))
	p.AsyncJSLanding = clamp01(lerp(0.74, 0.50, t) * math.Exp(rng.NormFloat64()*0.2))
	// Internal templates at the bottom of the list lag further behind on
	// script-loading best practice.
	p.AsyncJSInternal = clamp01(lerp(0.38, 0.15, t) * math.Exp(rng.NormFloat64()*0.25))
	switch cat {
	case CatWorld:
		// The hand-optimization asymmetry the paper hypothesises for US
		// landing pages does not show from a US vantage for World sites.
		p.BlockingCSSLanding = clamp01(0.85 * math.Exp(rng.NormFloat64()*0.15))
		p.AsyncJSLanding = p.AsyncJSInternal
	case CatShopping:
		p.BlockingCSSLanding *= 0.45
		p.AsyncJSLanding = clamp01(p.AsyncJSLanding * 1.15)
	}
	return p
}

// geometric draws a geometric variate with success probability p
// (support 0,1,2,... with mean (1-p)/p).
func geometric(rng *rand.Rand, p float64) int {
	if p <= 0 || p >= 1 {
		return 0
	}
	return int(math.Log(1-rng.Float64()) / math.Log(1-p))
}
