package webgen

// Cache validators and freshness lifetimes for the warm-revisit study
// (the consequence of the §5.1 cacheability asymmetry). Everything here
// is derived from an FNV hash of the object's final URL rather than the
// page RNG: Build's draw sequence — and with it every seeded result the
// cold-load experiments pin down — is byte-identical to the engine
// before revisits existed.

import (
	"strconv"
	"time"
)

// httpTimeFormat is http.TimeFormat (RFC 1123 with the literal GMT zone
// HTTP requires); duplicated here so webgen does not depend on net/http.
const httpTimeFormat = "Mon, 02 Jan 2006 15:04:05 GMT"

// validatorEpoch anchors Last-Modified times just before the simulated
// measurement window (which starts 2020-03-12).
var validatorEpoch = time.Date(2020, 3, 1, 0, 0, 0, 0, time.UTC)

func fnv64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// assignValidators stamps ETag, Last-Modified, and a freshness lifetime
// on every cacheable object. Dynamic (non-cacheable) responses get
// nothing: they cannot validate, so a revisit refetches them in full —
// which is exactly the asymmetry the warm study measures.
func assignValidators(m *PageModel) {
	for _, o := range m.Objects {
		if !o.Cacheable {
			continue
		}
		h := fnv64(o.URL)
		o.MaxAgeSecs = maxAgeFor(o.Role, h)
		// strconv renders what the old %q-of-%08x-%x pair produced, with
		// no format-verb boxing; ETags are minted per cacheable object
		// on every page build.
		o.ETag = strconv.Quote(hex8(uint32(h)) + "-" + strconv.FormatInt(o.Size, 16))
		// Last modified up to ~90 days before the study window.
		age := time.Duration(1+h%(90*24*3600)) * time.Second
		o.LastModified = validatorEpoch.Add(-age).UTC().Format(httpTimeFormat)
		if o.ViaCDN != "" && o.MaxAgeSecs > 0 {
			// The edge copy has already aged: popular assets sit at
			// edges for a while before our fetch observes them.
			o.EdgeAgeSecs = int((h >> 17) % uint64(o.MaxAgeSecs/4+1))
		}
	}
}

// maxAgeFor buckets explicit freshness lifetimes by role, mirroring the
// wild: long-lived fingerprinted static assets, mid-lived images, and
// short-lived data endpoints. About one cacheable object in seven
// carries validators but no explicit lifetime — the heuristic-freshness
// population.
func maxAgeFor(r Role, h uint64) int {
	if h%7 == 0 {
		return 0
	}
	pick := (h >> 3) % 4
	switch r {
	case RoleCSS, RoleJS, RoleFont:
		return [...]int{300, 3600, 86400, 31536000}[pick]
	case RoleImage, RoleMedia:
		return [...]int{3600, 86400, 604800, 31536000}[pick]
	case RoleJSON, RoleData:
		return [...]int{60, 300, 600, 3600}[pick]
	default:
		return 86400
	}
}

// CacheControl returns the Cache-Control header the origin serves for
// this object; idx is the object's index in the page (it rotates the
// non-cacheable flavors seen in the wild). An empty return means no
// Cache-Control header at all: the heuristic-freshness case.
func (o *Object) CacheControl(idx int) string {
	if !o.Cacheable {
		return [...]string{"no-store", "no-cache", "private, max-age=0"}[idx%3]
	}
	switch {
	case o.MaxAgeSecs <= 0:
		return ""
	case o.MaxAgeSecs >= 31536000:
		return "public, max-age=" + strconv.Itoa(o.MaxAgeSecs) + ", immutable"
	default:
		return "public, max-age=" + strconv.Itoa(o.MaxAgeSecs)
	}
}

// hex8 renders v like the %08x verb: zero-padded 8-digit lowercase hex.
func hex8(v uint32) string {
	s := strconv.FormatUint(uint64(v), 16)
	for len(s) < 8 {
		s = "0" + s
	}
	return s
}
