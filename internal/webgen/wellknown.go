package webgen

import (
	"encoding/json"
	"sort"
)

// PublisherSample returns the site's self-curated representative internal
// pages — the §7 "Involve publishers" proposal: each publisher exposes a
// benchmark set spanning its content (implemented as a weight-stratified
// sample of the page pool), to be published at a Well-Known URI.
func (s *Site) PublisherSample(n int) []*Page {
	pool := s.InternalPages()
	if n <= 0 || len(pool) == 0 {
		return nil
	}
	sort.Slice(pool, func(a, b int) bool {
		wa, wb := pool[a].VisitWeight(), pool[b].VisitWeight()
		if wa != wb {
			return wa > wb
		}
		return pool[a].Index < pool[b].Index
	})
	if n > len(pool) {
		n = len(pool)
	}
	// Quantile-spaced picks over the popularity ordering: the benchmark
	// covers head, torso, and tail content rather than only hits.
	out := make([]*Page, 0, n)
	for i := 0; i < n; i++ {
		idx := i * (len(pool) - 1) / maxInt(1, n-1)
		out = append(out, pool[idx])
	}
	return dedupePages(out)
}

func dedupePages(pages []*Page) []*Page {
	seen := make(map[int]bool, len(pages))
	out := pages[:0]
	for _, p := range pages {
		if !seen[p.Index] {
			seen[p.Index] = true
			out = append(out, p)
		}
	}
	return out
}

// WellKnownManifest renders the site's /.well-known/hispar.json payload.
func (s *Site) WellKnownManifest(n int) ([]byte, error) {
	type manifest struct {
		Site    string   `json:"site"`
		Purpose string   `json:"purpose"`
		Pages   []string `json:"pages"`
	}
	m := manifest{
		Site:    s.Domain,
		Purpose: "representative internal pages for web performance measurement",
	}
	for _, p := range s.PublisherSample(n) {
		m.Pages = append(m.Pages, p.URL())
	}
	return json.MarshalIndent(m, "", "  ")
}
