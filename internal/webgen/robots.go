package webgen

import (
	"fmt"
	"strings"
)

// Disallowed reports whether the page is excluded by the site's
// robots.txt (§3: search engines index sites exhaustively *except* pages
// disallowed via robots.txt; the paper's crawler follows the same
// convention). The landing page is never disallowed.
func (p *Page) Disallowed() bool {
	if p.IsLanding() {
		return false
	}
	frac := p.Site.Profile.DisallowFrac
	if frac <= 0 {
		return false
	}
	return noise01KeyIdx(p.Site.seed, "robots", p.Index) < frac
}

// RobotsTxt renders the site's robots.txt: a generic politeness preamble
// plus one Disallow rule per excluded page path. (Real sites disallow
// prefixes; enumerating exact paths keeps the synthetic file exact and
// the matcher trivial without changing any behaviour under test.)
func (s *Site) RobotsTxt() string {
	var b strings.Builder
	b.WriteString("User-agent: *\n")
	if s.Profile.DisallowFrac <= 0 {
		b.WriteString("Disallow:\n")
		return b.String()
	}
	n := s.PoolSize()
	for i := 1; i <= n; i++ {
		p := s.PageAt(i)
		if p.Disallowed() {
			fmt.Fprintf(&b, "Disallow: %s\n", p.Path())
		}
	}
	b.WriteString("Crawl-delay: 5\n")
	return b.String()
}

// RedirectsToInsecure reports whether this HTTPS page's URL answers with
// a redirect to a plain-HTTP page on a different domain (§6.1), and the
// target URL if so.
func (p *Page) RedirectsToInsecure() (string, bool) {
	if p.IsLanding() || p.baseScheme() != "https" {
		return "", false
	}
	prob := p.Site.Profile.InsecureRedirectProb
	if prob <= 0 || noise01KeyIdx(p.Site.seed, "insecure-redirect", p.Index) >= prob {
		return "", false
	}
	// The careers-site pattern: a different registrable domain, HTTP.
	target := "http://" + shortLabel(p.Site.Domain) + "-jobs.net" + p.Path()
	return target, true
}
