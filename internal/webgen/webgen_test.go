package webgen

import (
	"strings"
	"testing"

	"repro/internal/adblock"
	"repro/internal/htmlx"
)

func testWeb(t *testing.T, week int) *Web {
	t.Helper()
	seeds := []SiteSeed{
		{Domain: "alphanews1.com", Rank: 1},
		{Domain: "megashop2.co.uk", Rank: 120},
		{Domain: "worldportal3.co.jp", Rank: 450, Category: CatWorld},
		{Domain: "smallsite4.net", Rank: 980},
		{Domain: "bigcrawl5.org", Rank: 50, PoolSize: 800},
	}
	return Generate(Config{Seed: 11, Week: week, Sites: seeds})
}

func TestGenerateBasics(t *testing.T) {
	w := testWeb(t, 0)
	if len(w.Sites) != 5 {
		t.Fatalf("sites = %d", len(w.Sites))
	}
	s, ok := w.SiteByDomain("alphanews1.com")
	if !ok || s.Rank != 1 {
		t.Fatal("site lookup failed")
	}
	if got := w.Sites[2].Category; got != CatWorld {
		t.Errorf("forced category = %v", got)
	}
	if w.Sites[4].PoolSize() != 800+w.Sites[4].freshPerWeek()*0 {
		t.Errorf("pool size override = %d", w.Sites[4].PoolSize())
	}
	if len(w.TrackerDomains()) == 0 {
		t.Error("no tracker domains")
	}
}

func TestBuildDeterministic(t *testing.T) {
	w1 := testWeb(t, 0)
	w2 := testWeb(t, 3) // different week must not change page structure
	p1 := w1.Sites[0].PageAt(7).Build()
	p2 := w2.Sites[0].PageAt(7).Build()
	if len(p1.Objects) != len(p2.Objects) {
		t.Fatalf("object counts differ across weeks: %d vs %d", len(p1.Objects), len(p2.Objects))
	}
	for i := range p1.Objects {
		if p1.Objects[i].URL != p2.Objects[i].URL || p1.Objects[i].Size != p2.Objects[i].Size {
			t.Fatalf("object %d differs across weeks", i)
		}
	}
}

func TestObjectTreeInvariants(t *testing.T) {
	w := testWeb(t, 0)
	for _, s := range w.Sites {
		for _, page := range []*Page{s.Landing(), s.PageAt(1), s.PageAt(2)} {
			m := page.Build()
			if len(m.Objects) < 8 {
				t.Fatalf("%s: too few objects (%d)", page.URL(), len(m.Objects))
			}
			root := m.Objects[0]
			if root.Role != RoleDoc || root.Depth != 0 || root.Parent != -1 {
				t.Fatalf("%s: bad root %+v", page.URL(), root)
			}
			for i, o := range m.Objects[1:] {
				idx := i + 1
				if o.URL == "" || o.Host == "" || o.MIME == "" {
					t.Fatalf("%s obj %d: incomplete %+v", page.URL(), idx, o)
				}
				if o.Size <= 0 {
					t.Fatalf("%s obj %d: size %d", page.URL(), idx, o.Size)
				}
				if o.Depth < 1 || o.Depth > 5 {
					t.Fatalf("%s obj %d: depth %d", page.URL(), idx, o.Depth)
				}
				if o.Parent < 0 || o.Parent >= len(m.Objects) {
					t.Fatalf("%s obj %d: parent %d out of range", page.URL(), idx, o.Parent)
				}
				parent := m.Objects[o.Parent]
				if parent.Depth != o.Depth-1 {
					t.Fatalf("%s obj %d: depth %d but parent depth %d", page.URL(), idx, o.Depth, parent.Depth)
				}
				if parent.Role == RoleCSS && o.Role != RoleImage && o.Role != RoleFont {
					t.Fatalf("%s obj %d: CSS parent with role %v child", page.URL(), idx, o.Role)
				}
				if o.Tracker && !o.ThirdParty {
					t.Fatalf("%s obj %d: tracker must be third-party", page.URL(), idx)
				}
			}
		}
	}
}

func TestTrackersCoveredByEasylist(t *testing.T) {
	w := testWeb(t, 0)
	engine, _ := adblock.Compile(EasylistFor(w.ThirdParties()))
	for _, s := range w.Sites[:3] {
		m := s.Landing().Build()
		for _, o := range m.Objects {
			blocked := engine.Blocked(o.URL)
			if o.Tracker && !blocked {
				t.Errorf("tracker object %s not blocked by synthetic Easylist", o.URL)
			}
			if !o.Tracker && blocked {
				t.Errorf("benign object %s wrongly blocked", o.URL)
			}
		}
	}
}

func TestHTMLRoundTrip(t *testing.T) {
	w := testWeb(t, 0)
	m := w.Sites[0].Landing().Build()
	doc := htmlx.Parse(m.RenderHTML())

	if doc.HintCount() != len(m.Hints) {
		t.Errorf("hints: parsed %d, model %d", doc.HintCount(), len(m.Hints))
	}
	if doc.AdSlots != m.AdSlots {
		t.Errorf("ad slots: parsed %d, model %d", doc.AdSlots, m.AdSlots)
	}
	// Every depth-1 fetchable object must be discoverable from markup
	// (scripts/css/img/iframe/media tags, preload links, or loadResource
	// markers scanned from inline bootstrap code).
	parsed := make(map[string]bool)
	for _, r := range doc.Resources {
		parsed[r.URL] = true
	}
	html := m.RenderHTML()
	missing := 0
	for i, o := range m.Objects {
		if i == 0 || o.Depth != 1 {
			continue
		}
		if !parsed[o.URL] && !strings.Contains(html, o.URL) {
			missing++
			t.Errorf("depth-1 object %s (%v) absent from markup", o.URL, o.Role)
		}
	}
	if len(doc.Links) != len(m.Links) {
		t.Errorf("links: parsed %d, model %d", len(doc.Links), len(m.Links))
	}
}

func TestChildRefsMatchBodies(t *testing.T) {
	w := testWeb(t, 0)
	m := w.Sites[1].PageAt(3).Build()
	for i, o := range m.Objects {
		if i == 0 {
			continue
		}
		refs := m.ChildRefs(i)
		if len(refs) == 0 {
			continue
		}
		body := m.RenderBody(i, 1<<20)
		for _, r := range refs {
			if !strings.Contains(body, r) {
				t.Errorf("object %d (%v) body missing child ref %s", i, o.Role, r)
			}
		}
	}
}

func TestSchemeLogic(t *testing.T) {
	w := testWeb(t, 0)
	for _, s := range w.Sites {
		landingScheme := s.Landing().Scheme()
		if s.Profile.HTTPLanding && landingScheme != "http" {
			t.Errorf("%s: HTTPLanding but scheme %s", s.Domain, landingScheme)
		}
		if !s.Profile.HTTPLanding && landingScheme != "https" {
			t.Errorf("%s: scheme %s", s.Domain, landingScheme)
		}
		// Mixed content only on HTTPS pages.
		for i := 0; i <= 5; i++ {
			m := s.PageAt(i).Build()
			if m.Objects[0].Scheme == "http" {
				for _, o := range m.Objects {
					if o.Scheme != "http" {
						t.Fatalf("%s: https object on http page", s.Domain)
					}
				}
			}
		}
	}
}

func TestURLsStableAcrossWeeks(t *testing.T) {
	w0 := testWeb(t, 0)
	w4 := testWeb(t, 4)
	for i := 1; i <= 20; i++ {
		u0 := w0.Sites[0].PageAt(i).URL()
		u4 := w4.Sites[0].PageAt(i).URL()
		if u0 != u4 {
			t.Fatalf("page %d URL changed across weeks: %s vs %s", i, u0, u4)
		}
	}
}

func TestVisitWeightsDriftAcrossWeeks(t *testing.T) {
	w0 := testWeb(t, 0)
	w1 := testWeb(t, 1)
	s0, _ := w0.SiteByDomain("alphanews1.com")
	s1, _ := w1.SiteByDomain("alphanews1.com")
	changed := false
	for i := 1; i <= 30; i++ {
		if s0.PageAt(i).VisitWeight() != s1.PageAt(i).VisitWeight() {
			changed = true
			break
		}
	}
	if !changed {
		t.Error("visit weights identical across weeks; churn would be zero")
	}
}

func TestTopInternalSortedAndPoolGrows(t *testing.T) {
	w := testWeb(t, 2)
	s := w.Sites[0]
	top := s.TopInternal(10)
	if len(top) != 10 {
		t.Fatalf("TopInternal = %d", len(top))
	}
	for i := 1; i < len(top); i++ {
		if top[i-1].VisitWeight() < top[i].VisitWeight() {
			t.Fatal("TopInternal not sorted by weight")
		}
	}
	w0 := testWeb(t, 0)
	if w.Sites[0].PoolSize() <= w0.Sites[0].PoolSize() {
		t.Error("news site pool should grow over weeks")
	}
}

func TestPageByURL(t *testing.T) {
	w := testWeb(t, 0)
	s := w.Sites[0]
	p := s.PageAt(5)
	got, ok := w.PageByURL(p.URL())
	if !ok || got.Index != 5 || got.Site != s {
		t.Fatalf("PageByURL failed for %s", p.URL())
	}
	landing, ok := w.PageByURL("https://" + s.Host() + "/")
	if !ok || !landing.IsLanding() {
		t.Fatal("landing lookup failed")
	}
	if _, ok := w.PageByURL("https://unknown.example/"); ok {
		t.Error("unknown site resolved")
	}
	if _, ok := w.PageByURL("https://" + s.Host() + "/not-a-real-path"); ok {
		t.Error("unknown path resolved")
	}
}

func TestAuthorityRecords(t *testing.T) {
	w := testWeb(t, 0)
	auth := w.Authority()
	var cdnSite *Site
	for _, s := range w.Sites {
		if s.Profile.CDNProvider != "" {
			cdnSite = s
			break
		}
	}
	if cdnSite == nil {
		t.Skip("no CDN site in small web")
	}
	rec, ok := auth.Lookup("static." + cdnSite.Domain)
	if !ok {
		t.Fatal("static host missing")
	}
	if len(rec.Chain) == 0 || !strings.Contains(rec.Chain[0], cdnSite.Profile.CDNProvider) {
		t.Errorf("static host should CNAME to the CDN: %+v", rec)
	}
	if rec.TTL > 5*60*1e9 {
		t.Errorf("request-routed TTL too long: %v", rec.TTL)
	}
	plain, ok := auth.Lookup("www." + cdnSite.Domain)
	if !ok || len(plain.Chain) != 0 {
		t.Errorf("www host should be a plain A record: %+v", plain)
	}
}

func TestLandingHeavierOnAverage(t *testing.T) {
	// Aggregate direction check over a slightly larger web.
	u := make([]SiteSeed, 0, 60)
	for i := 0; i < 60; i++ {
		u = append(u, SiteSeed{Domain: DomainNameForTest(i), Rank: i*15 + 1})
	}
	w := Generate(Config{Seed: 5, Sites: u})
	heavier, moreObjs := 0, 0
	for _, s := range w.Sites {
		lm := s.Landing().Build()
		im := s.PageAt(1).Build()
		var lb, ib int64
		for _, o := range lm.Objects {
			lb += o.Size
		}
		for _, o := range im.Objects {
			ib += o.Size
		}
		if lb > ib {
			heavier++
		}
		if len(lm.Objects) > len(im.Objects) {
			moreObjs++
		}
	}
	if heavier < 30 {
		t.Errorf("landing heavier for only %d/60 sites", heavier)
	}
	if moreObjs < 30 {
		t.Errorf("landing more objects for only %d/60 sites", moreObjs)
	}
}

// DomainNameForTest makes unique test domains.
func DomainNameForTest(i int) string {
	letters := "abcdefghijklmnopqrstuvwxyz"
	return "site-" + string(letters[i%26]) + string(letters[(i/26)%26]) + ".com"
}
