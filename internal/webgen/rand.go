package webgen

import (
	"hash/fnv"
	"math"
	"math/rand"
)

// subSeed derives a stable sub-seed from a base seed and string/int parts,
// so every site, page, and week gets an independent deterministic RNG.
func subSeed(base int64, parts ...interface{}) int64 {
	h := fnv.New64a()
	var buf [8]byte
	put := func(v uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	put(uint64(base))
	for _, p := range parts {
		switch v := p.(type) {
		case string:
			h.Write([]byte(v))
			h.Write([]byte{0})
		case int:
			put(uint64(v))
		case int64:
			put(uint64(v))
		case uint64:
			put(v)
		default:
			panic("webgen: unsupported seed part type")
		}
	}
	return int64(h.Sum64())
}

// rngFor returns a fresh deterministic RNG for the given key parts.
func rngFor(base int64, parts ...interface{}) *rand.Rand {
	return rand.New(rand.NewSource(subSeed(base, parts...)))
}

// FNV-1a 64-bit constants, inlined so the typed sub-seed fast paths
// below hash without the hash.Hash64 interface or boxed variadic parts.
// TestSubSeedFastPaths pins them bit-identical to subSeed.
const (
	fnvOffset64 uint64 = 14695981039346656037
	fnvPrime64  uint64 = 1099511628211
)

// fnv64aU64 folds v's 8 little-endian bytes into h, matching subSeed's
// put().
func fnv64aU64(h, v uint64) uint64 {
	for i := 0; i < 64; i += 8 {
		h ^= (v >> i) & 0xff
		h *= fnvPrime64
	}
	return h
}

// fnv64aString folds s and subSeed's {0} terminator into h.
func fnv64aString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	// Terminator byte 0: the XOR is a no-op, the multiply is not.
	h *= fnvPrime64
	return h
}

// subSeedKey is subSeed(base, key) without the variadic boxing —
// bit-identical result, zero allocations.
func subSeedKey(base int64, key string) int64 {
	return int64(fnv64aString(fnv64aU64(fnvOffset64, uint64(base)), key))
}

// subSeedKeyIdx is subSeed(base, key, idx) without the variadic boxing.
func subSeedKeyIdx(base int64, key string, idx int) int64 {
	return int64(fnv64aU64(fnv64aString(fnv64aU64(fnvOffset64, uint64(base)), key), uint64(idx)))
}

// rngForKey is rngFor(base, key) on the typed fast path.
func rngForKey(base int64, key string) *rand.Rand {
	return rand.New(rand.NewSource(subSeedKey(base, key)))
}

// rngForKeyIdx is rngFor(base, key, idx) on the typed fast path.
func rngForKeyIdx(base int64, key string, idx int) *rand.Rand {
	return rand.New(rand.NewSource(subSeedKeyIdx(base, key, idx)))
}

// logNormal draws a lognormal sample with the given median and sigma of
// the underlying normal.
func logNormal(rng *rand.Rand, median, sigma float64) float64 {
	return median * math.Exp(rng.NormFloat64()*sigma)
}

// clamp01 limits x to [0,1].
func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// lerp linearly interpolates a→b by t in [0,1].
func lerp(a, b, t float64) float64 { return a + (b-a)*clamp01(t) }

// invPhi is the inverse standard normal CDF (Acklam's approximation),
// used to convert "fraction of sites where landing exceeds internal"
// targets into lognormal-ratio means.
func invPhi(p float64) float64 {
	if p <= 0 {
		return -8
	}
	if p >= 1 {
		return 8
	}
	// Coefficients for Acklam's rational approximation.
	a := []float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02, 1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
	b := []float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02, 6.680131188771972e+01, -1.328068155288572e+01}
	c := []float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00, -2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
	d := []float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00, 3.754408661907416e+00}
	const plow, phigh = 0.02425, 1 - 0.02425
	var q, r float64
	switch {
	case p < plow:
		q = math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= phigh:
		q = p - 0.5
		r = q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q = math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
}

// ratioSample draws a lognormal ratio whose P(ratio > 1) equals pAbove
// and whose log-sd is sigma. The geometric mean is exp(sigma·Φ⁻¹(pAbove)).
func ratioSample(rng *rand.Rand, pAbove, sigma float64) float64 {
	mu := sigma * invPhi(pAbove)
	return math.Exp(mu + rng.NormFloat64()*sigma)
}

// noise01 returns a deterministic pseudo-random float in [0,1) keyed by
// the parts, without allocating an RNG. Used for per-week weight jitter.
func noise01(base int64, parts ...interface{}) float64 {
	return finalize01(uint64(subSeed(base, parts...)))
}

// noise01KeyIdx is noise01(base, key, idx) on the typed fast path.
func noise01KeyIdx(base int64, key string, idx int) float64 {
	return finalize01(uint64(subSeedKeyIdx(base, key, idx)))
}

// finalize01 maps a sub-seed to [0,1) with an xorshift finalizer.
func finalize01(s uint64) float64 {
	s ^= s >> 33
	s *= 0xff51afd7ed558ccd
	s ^= s >> 33
	return float64(s>>11) / float64(1<<53)
}

// normNoise returns a deterministic standard-normal-ish value keyed by
// the parts (sum of 4 uniforms, Irwin-Hall approximation).
func normNoise(base int64, parts ...interface{}) float64 {
	u := 0.0
	for i := 0; i < 4; i++ {
		u += noise01(base+int64(i)*1_000_003, parts...)
	}
	// Irwin–Hall(4): mean 2, var 1/3 → standardize.
	return (u - 2) / math.Sqrt(1.0/3.0)
}
