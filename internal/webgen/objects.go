package webgen

import (
	"math"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"repro/internal/htmlx"
)

// Role is an object's function on the page; it determines MIME type,
// typical size, dependency behaviour, and cacheability defaults.
type Role int

// Object roles.
const (
	RoleDoc Role = iota
	RoleCSS
	RoleJS
	RoleImage
	RoleFont
	RoleJSON
	RoleMedia
	RoleData
	RoleIframe
	RoleBeacon   // tiny pixel/telemetry request
	RoleAdJS     // ad/tracking script
	RoleAdImage  // ad creative
	RoleBid      // header-bidding auction request
	RoleRedirect // 3xx answer forwarding to another URL
)

// String returns the role name.
func (r Role) String() string {
	switch r {
	case RoleDoc:
		return "doc"
	case RoleCSS:
		return "css"
	case RoleJS:
		return "js"
	case RoleImage:
		return "image"
	case RoleFont:
		return "font"
	case RoleJSON:
		return "json"
	case RoleMedia:
		return "media"
	case RoleData:
		return "data"
	case RoleIframe:
		return "iframe"
	case RoleBeacon:
		return "beacon"
	case RoleAdJS:
		return "adjs"
	case RoleAdImage:
		return "adimage"
	case RoleBid:
		return "bid"
	case RoleRedirect:
		return "redirect"
	default:
		return "unknown"
	}
}

// MIME returns the MIME type emitted for the role (mediaAudio selects
// audio/mpeg for media objects).
func (r Role) MIME(variant int) string {
	switch r {
	case RoleDoc, RoleIframe, RoleRedirect:
		return "text/html"
	case RoleCSS:
		return "text/css"
	case RoleJS, RoleAdJS:
		return "application/javascript"
	case RoleImage, RoleAdImage:
		return [...]string{"image/jpeg", "image/png", "image/webp", "image/gif"}[variant%4]
	case RoleFont:
		return "font/woff2"
	case RoleJSON, RoleBid:
		return "application/json"
	case RoleMedia:
		if variant%3 == 0 {
			return "audio/mpeg"
		}
		return "video/mp4"
	case RoleData:
		return "text/plain"
	case RoleBeacon:
		return "image/gif"
	default:
		return "application/octet-stream"
	}
}

// Object is one fetchable resource of a page.
type Object struct {
	URL            string
	Host           string
	Scheme         string
	Role           Role
	MIME           string
	Size           int64
	Depth          int // 0 = root document
	Parent         int // index of the initiator object (-1 for the root)
	Cacheable      bool
	RenderBlocking bool
	Async          bool
	Preloaded      bool   // referenced by a preload/prefetch hint
	ViaCDN         string // CDN provider name, "" = origin-served
	Tracker        bool   // ad/tracking request (ground truth)
	ThirdParty     bool
	Popularity     float64 // global request popularity, drives CDN/DNS warmth
	VisualWeight   float64 // contribution to visual completeness (Speed Index)

	// Cache validators and freshness, set for cacheable objects only
	// (dynamic responses never validate). Hash-derived from the final
	// URL — no RNG — so the generator's draw sequence is identical to
	// the cold-only engine's. MaxAgeSecs 0 on a cacheable object means
	// "validators but no explicit freshness": the heuristic-freshness
	// population of RFC 7234 §4.2.2.
	ETag         string
	LastModified string // pre-formatted HTTP date
	MaxAgeSecs   int
	// EdgeAgeSecs is the Age header a CDN edge hit reports (time the
	// copy already spent at the edge); 0 for origin-served objects.
	EdgeAgeSecs int
}

// Hint is one resource hint emitted in the page head.
type Hint struct {
	Type htmlx.HintType
	// Target is a URL for preload/prefetch/prerender or an origin
	// ("https://host") for dns-prefetch/preconnect.
	Target string
	// ObjectIndex is the index of the hinted object for preload/prefetch
	// (-1 otherwise).
	ObjectIndex int
}

// PageModel is the fully generated page: the object tree plus the page
// markup metadata needed by crawler, browser, and analyses.
type PageModel struct {
	Page    *Page
	URL     string
	Objects []*Object // Objects[0] is the root (a redirect on §6.1 pages)
	Hints   []Hint
	Links   []string // outgoing page links (same site, plus a few external)
	AdSlots int
	HasHB   bool // header-bidding active on this page
	// RedirectedFrom is the original HTTPS URL when the page's address
	// 301s to plain-HTTP content on another domain (§6.1); "" otherwise.
	RedirectedFrom string
}

// DocIndex returns the index of the page's root document (after any
// leading redirect).
func (m *PageModel) DocIndex() int {
	for i, o := range m.Objects {
		if o.Role == RoleDoc {
			return i
		}
	}
	return 0
}

// RootHost returns the host serving the root document.
func (m *PageModel) RootHost() string { return m.Objects[0].Host }

// ObjectByURL returns the object with the given URL.
func (m *PageModel) ObjectByURL(u string) (*Object, bool) {
	for _, o := range m.Objects {
		if o.URL == u {
			return o, true
		}
	}
	return nil, false
}

// Role mixes: fraction of non-tracker, non-root objects per role.
// Landing pages are gallery-like (many images); internal pages are
// application-like (more API/JSON and telemetry fetches) — the count
// analogue of the Fig 4c byte mix, and the breadth behind the Fig 7
// wait-time asymmetry (dynamic responses wait on origin work).
type roleFrac struct {
	role Role
	frac float64
}

var roleMixLanding = []roleFrac{
	{RoleImage, 0.465},
	{RoleJS, 0.25},
	{RoleCSS, 0.055},
	{RoleFont, 0.04},
	{RoleJSON, 0.05},
	{RoleData, 0.04},
	{RoleMedia, 0.02},
	{RoleIframe, 0.03},
	{RoleBeacon, 0.05},
}

var roleMixInternal = []roleFrac{
	{RoleImage, 0.285},
	{RoleJS, 0.25},
	{RoleCSS, 0.055},
	{RoleFont, 0.04},
	{RoleJSON, 0.135},
	{RoleData, 0.065},
	{RoleMedia, 0.02},
	{RoleIframe, 0.02},
	{RoleBeacon, 0.13},
}

// Build generates the page's object tree. Deterministic per page: the
// same page always yields the same model, regardless of snapshot week.
func (p *Page) Build() *PageModel {
	s := p.Site
	prof := &s.Profile
	rng := rngForKeyIdx(s.seed, "page-model", p.Index)
	m := &PageModel{Page: p, URL: p.URL()}

	landing := p.IsLanding()

	// --- Page-level targets ---
	objMedian := prof.ObjInternal
	bytesMedian := prof.BytesInternal
	mix := prof.MixInternal
	depths := prof.DepthInternal
	trackerMean := prof.TrackersInternal
	domTarget := prof.DomainsInternal
	cdnFrac := prof.CDNFracInternal
	if landing {
		objMedian *= prof.ObjRatio
		bytesMedian *= prof.SizeRatio
		mix = prof.MixLanding
		depths = prof.DepthLanding
		trackerMean = prof.TrackersLanding
		domTarget = prof.DomainsInternal * prof.DomainsRatio
		cdnFrac = clamp01(prof.CDNFracInternal * prof.CDNFracRatio)
	}
	n := int(logNormal(rng, objMedian, 0.32))
	if n < 8 {
		n = 8
	}
	total := logNormal(rng, bytesMedian, 0.38)
	if total < 6e4 {
		total = 6e4
	}
	trackerCount := poisson(rng, trackerMean)
	if trackerCount > n/2 {
		trackerCount = n / 2
	}

	pageScheme := p.Scheme()
	host := s.Host()

	// Size the object slice up front: root + regular + ad-tech roughly
	// tracks n, and the paper-scale pages make append regrowth visible
	// in the study benchmarks.
	m.Objects = make([]*Object, 0, n+16)

	// --- Root document ---
	root := &Object{
		URL:          pageScheme + "://" + host + p.Path(),
		Host:         host,
		Scheme:       pageScheme,
		Role:         RoleDoc,
		MIME:         "text/html",
		Depth:        0,
		Parent:       -1,
		Cacheable:    false, // dynamic HTML (CDNs may still micro-cache it)
		VisualWeight: 15,
	}
	if prof.CDNProvider != "" && prof.DocViaCDN {
		root.ViaCDN = prof.CDNProvider
	}
	m.Objects = append(m.Objects, root)

	// --- Regular objects ---
	regular := n - 1 - trackerCount
	if regular < 5 {
		regular = 5
	}
	for i := 0; i < regular; i++ {
		role := drawRole(rng, landing)
		m.Objects = append(m.Objects, &Object{Role: role, Scheme: pageScheme})
	}

	// --- Header bidding & ad slots (§6.3) ---
	hb := (landing && prof.HBLanding) || (!landing && (prof.HBLanding || prof.HBInternalOnly))
	if hb {
		m.HasHB = true
		if landing {
			m.AdSlots = prof.AdSlotsLanding
		} else {
			m.AdSlots = maxInt(1, prof.AdSlotsIntern+rng.Intn(3)-1)
		}
		// One prebid-style wrapper script plus ~2 bid requests per slot.
		m.Objects = append(m.Objects, &Object{Role: RoleAdJS, Scheme: pageScheme, Tracker: true})
		for i := 0; i < m.AdSlots*2; i++ {
			m.Objects = append(m.Objects, &Object{Role: RoleBid, Scheme: pageScheme, Tracker: true})
		}
	}

	// --- Tracking requests (§6.3) ---
	for i := 0; i < trackerCount; i++ {
		role := RoleBeacon
		switch rng.Intn(3) {
		case 1:
			role = RoleAdJS
		case 2:
			role = RoleAdImage
		}
		m.Objects = append(m.Objects, &Object{Role: role, Scheme: pageScheme, Tracker: true})
	}

	p.assignHosts(rng, m, domTarget, cdnFrac, landing)
	p.assignDepths(rng, m, depths)
	p.assignSizes(rng, m, total, mix)
	p.assignCacheability(rng, m, landing)
	p.assignMixedContent(rng, m, landing)
	p.assignURLs(rng, m) // schemes and hosts are final here
	p.assignHints(rng, m, landing)
	p.assignPopularity(rng, m)
	p.buildLinks(rng, m, landing)
	p.wrapInsecureRedirect(m)
	assignValidators(m) // after wrapInsecureRedirect: URLs are final here
	return m
}

// wrapInsecureRedirect prepends the §6.1 redirect hop for HTTPS URLs
// that forward to plain-HTTP content on a foreign domain: the original
// URL answers 301 and the whole document tree shifts one dependency
// level deeper, now served over HTTP from the target host.
func (p *Page) wrapInsecureRedirect(m *PageModel) {
	target, ok := p.RedirectsToInsecure()
	if !ok {
		return
	}
	m.RedirectedFrom = m.URL
	doc := m.Objects[0]
	doc.URL = target
	doc.Host = hostOfURL(target)
	doc.Scheme = "http"
	for _, o := range m.Objects {
		o.Depth++
		o.Parent++
	}
	doc.Parent = 0
	redirect := &Object{
		URL:        m.RedirectedFrom,
		Host:       p.Site.Host(),
		Scheme:     "https",
		Role:       RoleRedirect,
		MIME:       "text/html",
		Size:       320,
		Depth:      0,
		Parent:     -1,
		Cacheable:  false,
		Popularity: doc.Popularity,
	}
	m.Objects = append([]*Object{redirect}, m.Objects...)
	for i := range m.Hints {
		if m.Hints[i].ObjectIndex >= 0 {
			m.Hints[i].ObjectIndex++
		}
	}
}

func hostOfURL(raw string) string {
	s := raw
	if i := strings.Index(s, "://"); i >= 0 {
		s = s[i+3:]
	}
	if i := strings.IndexByte(s, '/'); i >= 0 {
		s = s[:i]
	}
	return s
}

// assignURLs renders the final URL of every non-root object.
func (p *Page) assignURLs(rng *rand.Rand, m *PageModel) {
	for i, o := range m.Objects {
		if i == 0 {
			continue
		}
		o.URL = o.Scheme + "://" + o.Host + objectPath(rng, o, p.Index, i)
	}
}

func drawRole(rng *rand.Rand, landing bool) Role {
	mix := roleMixInternal
	if landing {
		mix = roleMixLanding
	}
	x := rng.Float64()
	acc := 0.0
	for _, rm := range mix {
		acc += rm.frac
		if x < acc {
			return rm.role
		}
	}
	return RoleImage
}

// assignHosts distributes objects over first-party hosts, CDN hosts,
// third-party domains (drawn from the site's roster), and tracker
// domains, aiming for the page's unique-origin target (Fig 5).
func (p *Page) assignHosts(rng *rand.Rand, m *PageModel, domTarget, cdnFrac float64, landing bool) {
	s := p.Site
	prof := &s.Profile
	staticHost := "static." + s.Domain
	imgHost := "img." + s.Domain

	// Tracker hosts first: the site embeds a handful of ad/analytics
	// vendors; every tracking request goes to one of them.
	trackerPool := s.trackerPool()
	trackerDomains := make(map[string]bool)
	for _, o := range m.Objects {
		if o.Tracker {
			d := trackerPool[rng.Intn(len(trackerPool))]
			o.Host = d
			o.ThirdParty = true
			trackerDomains[d] = true
		}
	}

	// Benign third parties: enough distinct domains to reach the origin
	// target after the first-party hosts (www/assets/img/static/CDN) and
	// trackers are counted.
	tpBudget := int(domTarget*math.Exp(rng.NormFloat64()*0.12)) - 6 - len(trackerDomains)
	if tpBudget < 0 {
		tpBudget = 0
	}
	roster := s.tpRoster()
	var tpDomains []string
	if landing {
		// Landing pages use the head of the roster: the site's core,
		// ubiquitous third parties.
		for i := 0; i < tpBudget && i < len(roster); i++ {
			tpDomains = append(tpDomains, roster[i])
		}
	} else {
		// Internal pages mix core and long-tail roster entries; the tail
		// accumulates into "third parties never seen on the landing
		// page" (Fig 8b).
		for _, idx := range sampleDistinct(rng, len(roster), tpBudget, 0.55) {
			tpDomains = append(tpDomains, roster[idx])
		}
	}

	// Candidate objects for third-party hosting. Third parties may absorb
	// at most ~60% of the eligible objects so that small pages retain
	// their first-party (and CDN-served) assets.
	var tpEligible []*Object
	for _, o := range m.Objects[1:] {
		if o.Tracker {
			continue
		}
		switch o.Role {
		case RoleJS, RoleImage, RoleFont, RoleJSON, RoleIframe, RoleMedia, RoleBeacon:
			tpEligible = append(tpEligible, o)
		}
	}
	rng.Shuffle(len(tpEligible), func(i, j int) { tpEligible[i], tpEligible[j] = tpEligible[j], tpEligible[i] })
	tpCap := len(tpEligible) * 7 / 10
	if len(tpDomains) > tpCap {
		tpDomains = tpDomains[:tpCap]
	}
	// Every third party contributes at least one request (the page's
	// origin count is the point); extras are distributed afterwards.
	ei := 0
	for _, d := range tpDomains {
		tpEligible[ei].Host = d
		tpEligible[ei].ThirdParty = true
		ei++
	}
	for _, d := range tpDomains {
		if ei >= tpCap {
			break
		}
		for j := geometric(rng, 0.55); j > 0 && ei < tpCap; j-- {
			tpEligible[ei].Host = d
			tpEligible[ei].ThirdParty = true
			ei++
		}
	}

	// Remaining objects are first-party. Delivery is host-consistent:
	// everything on static.<domain> rides the CDN contract (the paper's
	// CNAME-based attribution then agrees with ground truth), while
	// assets.<domain> and img.<domain> stay on the origin.
	eligibleByteFrac := 0.85
	pCDN := clamp01(cdnFrac / eligibleByteFrac)
	for _, o := range m.Objects[1:] {
		if o.Host != "" {
			continue
		}
		cdnEligible := o.Role == RoleCSS || o.Role == RoleJS || o.Role == RoleImage ||
			o.Role == RoleFont || o.Role == RoleMedia
		if cdnEligible && prof.CDNProvider != "" && rng.Float64() < pCDN {
			o.ViaCDN = prof.CDNProvider
			if rng.Float64() < 0.3 {
				// Served from the provider's own hostname rather than the
				// CNAMEd first-party subdomain.
				o.Host = "assets-" + shortLabel(s.Domain) + "." + prof.CDNProvider + ".net"
			} else {
				o.Host = staticHost
			}
			continue
		}
		switch o.Role {
		case RoleCSS, RoleJS, RoleFont:
			o.Host = "assets." + s.Domain
		case RoleImage, RoleMedia:
			o.Host = imgHost
		default:
			o.Host = s.Host()
		}
	}

	// Third-party static infrastructure (fonts, JS libraries, video) is
	// itself CDN-delivered.
	for _, o := range m.Objects[1:] {
		if o.ThirdParty && !o.Tracker && (o.Role == RoleFont || o.Role == RoleJS || o.Role == RoleMedia) && rng.Float64() < 0.6 {
			o.ViaCDN = cdnProviderNames[rng.Intn(len(cdnProviderNames))]
		}
	}
}

// shortLabel compresses a domain into a DNS label.
func shortLabel(domain string) string {
	out := make([]byte, 0, len(domain))
	for i := 0; i < len(domain); i++ {
		c := domain[i]
		if c == '.' {
			c = '-'
		}
		out = append(out, c)
	}
	return string(out)
}

// trackerPool returns the site's ad/analytics vendor roster.
func (s *Site) trackerPool() []string {
	rng := rngForKey(s.seed, "trackers")
	trackers := make([]string, 0, len(s.web.thirdParties))
	for _, tp := range s.web.thirdParties {
		if tp.Tracker {
			trackers = append(trackers, tp.Domain)
		}
	}
	k := 3 + rng.Intn(8)
	pool := make([]string, 0, k)
	for _, idx := range sampleDistinct(rng, len(trackers), k, 1.0) {
		pool = append(pool, trackers[idx])
	}
	return pool
}

// tpRoster returns the site's benign third-party roster, head = core.
func (s *Site) tpRoster() []string {
	rng := rngForKey(s.seed, "tproster")
	benign := make([]string, 0, len(s.web.thirdParties))
	for _, tp := range s.web.thirdParties {
		if !tp.Tracker {
			benign = append(benign, tp.Domain)
		}
	}
	size := s.Profile.TPPoolSize
	if size > len(benign) {
		size = len(benign)
	}
	roster := make([]string, 0, size)
	for _, idx := range sampleDistinct(rng, len(benign), size, 0.7) {
		roster = append(roster, benign[idx])
	}
	return roster
}

// zipfIndex draws an index in [0,n) with P(i) ∝ 1/(i+1)^s, via inverse
// CDF on the continuous approximation (with the s→1 limit handled).
func zipfIndex(rng *rand.Rand, n int, s float64) int {
	if n <= 1 {
		return 0
	}
	u := rng.Float64()
	var x float64
	if math.Abs(s-1) < 1e-9 {
		// CDF(x) = ln(x)/ln(n) on [1, n].
		x = math.Exp(u * math.Log(float64(n)))
	} else {
		t := math.Pow(float64(n), 1-s)
		x = math.Pow(u*(t-1)+1, 1/(1-s))
	}
	idx := int(x) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	return idx
}

// sampleDistinct draws k distinct zipf-weighted indices from [0,n),
// falling back to sequential fill if rejection sampling stalls.
func sampleDistinct(rng *rand.Rand, n, k int, s float64) []int {
	if k > n {
		k = n
	}
	seen := make(map[int]bool, k)
	out := make([]int, 0, k)
	for attempts := 0; len(out) < k && attempts < 40*k+100; attempts++ {
		idx := zipfIndex(rng, n, s)
		if !seen[idx] {
			seen[idx] = true
			out = append(out, idx)
		}
	}
	for i := 0; len(out) < k && i < n; i++ {
		if !seen[i] {
			seen[i] = true
			out = append(out, i)
		}
	}
	return out
}

// assignDepths places objects in the dependency tree (§5.4): CSS loads at
// depth 1; deeper objects hang off stylesheet/script/iframe containers.
func (p *Page) assignDepths(rng *rand.Rand, m *PageModel, mix DepthMix) {
	containersAt := map[int][]int{0: {0}} // depth -> object indexes able to trigger fetches
	// First pass: target depths.
	for i, o := range m.Objects {
		if i == 0 {
			continue
		}
		var d int
		switch o.Role {
		case RoleCSS:
			d = 1
		case RoleBeacon, RoleAdJS, RoleAdImage, RoleBid:
			// Tracking fires from scripts: depth ≥ 2.
			if rng.Float64() < 0.7 {
				d = 2
			} else {
				d = 3
			}
		default:
			x := rng.Float64()
			switch {
			case x < mix.D5:
				d = 5
			case x < mix.D5+mix.D4:
				d = 4
			case x < mix.D5+mix.D4+mix.D3:
				d = 3
			case x < mix.D5+mix.D4+mix.D3+mix.D2:
				d = 2
			default:
				d = 1
			}
		}
		o.Depth = d
	}
	// Second pass, in depth order: wire parents; demote when no
	// container exists one level up.
	order := make([]int, len(m.Objects)-1)
	for i := range order {
		order[i] = i + 1
	}
	sort.SliceStable(order, func(a, b int) bool { return m.Objects[order[a]].Depth < m.Objects[order[b]].Depth })
	for _, i := range order {
		o := m.Objects[i]
		for o.Depth > 1 {
			parents := containersAt[o.Depth-1]
			// CSS children can only be images and fonts.
			var ok []int
			for _, pi := range parents {
				pr := m.Objects[pi].Role
				if pr == RoleCSS && o.Role != RoleImage && o.Role != RoleFont {
					continue
				}
				ok = append(ok, pi)
			}
			if len(ok) > 0 {
				o.Parent = ok[rng.Intn(len(ok))]
				break
			}
			o.Depth--
		}
		if o.Depth <= 1 {
			o.Depth = 1
			o.Parent = 0
		}
		if o.Role == RoleCSS || o.Role == RoleJS || o.Role == RoleIframe || o.Role == RoleAdJS {
			containersAt[o.Depth] = append(containersAt[o.Depth], i)
		}
	}
	// Render blocking & async flags. Landing pages are hand-optimized
	// more aggressively (§4: developers polish the landing page): their
	// critical CSS is inlined (so fewer stylesheets block first paint)
	// and more of their scripts load async.
	prof := &p.Site.Profile
	asyncP := prof.AsyncJSInternal
	blockingCSS := 1.0
	if p.IsLanding() {
		asyncP = prof.AsyncJSLanding
		blockingCSS = prof.BlockingCSSLanding
	}
	for i, o := range m.Objects {
		if i == 0 {
			continue
		}
		if o.Depth == 1 {
			switch o.Role {
			case RoleCSS:
				o.RenderBlocking = rng.Float64() < blockingCSS
			case RoleJS:
				o.Async = rng.Float64() < asyncP
				o.RenderBlocking = !o.Async
			}
		} else if o.Role == RoleJS || o.Role == RoleAdJS {
			o.Async = true
		}
	}
}

// assignSizes draws object sizes to honour the page's total size and
// byte-level content mix (Fig 4c).
func (p *Page) assignSizes(rng *rand.Rand, m *PageModel, total float64, mix ContentMix) {
	mix = mix.normalize()
	type bucket struct {
		objs  []*Object
		share float64
	}
	buckets := map[string]*bucket{
		"js":      {share: mix.JS},
		"image":   {share: mix.Image},
		"htmlcss": {share: mix.HTMLCSS},
		"other":   {share: mix.Other},
	}
	fixed := 0.0
	for i, o := range m.Objects {
		switch o.Role {
		case RoleDoc:
			// Root documents are tens to a few hundreds of KB; they must
			// not soak up the page's whole HTML/CSS byte budget or the
			// root fetch dominates every load.
			o.Size = int64(logNormal(rng, 65e3, 0.7))
			if o.Size < 15e3 {
				o.Size = 15e3
			}
			if o.Size > 350e3 {
				o.Size = 350e3
			}
			fixed += float64(o.Size)
		case RoleBeacon, RoleBid:
			o.Size = int64(120 + rng.Intn(1800))
			fixed += float64(o.Size)
		case RoleAdImage:
			o.Size = int64(2000 + rng.Intn(30000))
			fixed += float64(o.Size)
		case RoleJS, RoleAdJS:
			buckets["js"].objs = append(buckets["js"].objs, o)
		case RoleImage:
			buckets["image"].objs = append(buckets["image"].objs, o)
		case RoleCSS, RoleIframe:
			buckets["htmlcss"].objs = append(buckets["htmlcss"].objs, o)
		default:
			buckets["other"].objs = append(buckets["other"].objs, o)
		}
		_ = i
	}
	budget := total - fixed
	if budget < 5e4 {
		budget = 5e4
	}
	variant := 0
	for _, name := range [...]string{"js", "image", "htmlcss", "other"} {
		b := buckets[name]
		if len(b.objs) == 0 {
			continue
		}
		weights := make([]float64, len(b.objs))
		sum := 0.0
		for i, o := range b.objs {
			w := math.Exp(rng.NormFloat64() * 0.9)
			switch o.Role {
			case RoleMedia:
				w *= 6
			case RoleFont:
				w *= 1.5
			}
			weights[i] = w
			sum += w
		}
		for i, o := range b.objs {
			size := budget * b.share * weights[i] / sum
			if size < 250 {
				size = 250
			}
			o.Size = int64(size)
			o.MIME = o.Role.MIME(variant)
			variant++
		}
	}
	// MIME for fixed-size roles.
	for i, o := range m.Objects {
		if o.MIME == "" {
			o.MIME = o.Role.MIME(i)
		}
	}
	// Visual weights: images and media paint; everything else barely.
	for _, o := range m.Objects {
		switch o.Role {
		case RoleImage, RoleAdImage:
			o.VisualWeight = math.Min(20, float64(o.Size)/20000)
		case RoleMedia:
			o.VisualWeight = 8
		case RoleIframe:
			o.VisualWeight = 3
		}
	}
}

// assignCacheability marks non-cacheable objects to hit the page-type
// target (Fig 4a), skewing the choice toward small dynamic responses so
// the cacheable-bytes fraction stays similar between page types.
func (p *Page) assignCacheability(rng *rand.Rand, m *PageModel, landing bool) {
	prof := &p.Site.Profile
	frac := prof.NCFracInternal
	if landing {
		frac = clamp01(prof.NCFracInternal * prof.NCCountRatio / prof.ObjRatio)
		// Bounded so cacheable *bytes* stay comparable between page
		// types, as the paper observes (§5.1).
		if frac > 0.62 {
			frac = 0.62
		}
	}
	target := int(frac * float64(len(m.Objects)))
	count := 0
	// Always-dynamic objects first.
	for _, o := range m.Objects {
		switch o.Role {
		case RoleDoc, RoleBeacon, RoleBid, RoleAdJS, RoleAdImage:
			o.Cacheable = false
			count++
		case RoleJSON, RoleData:
			if rng.Float64() < 0.7 {
				o.Cacheable = false
				count++
			} else {
				o.Cacheable = true
			}
		default:
			o.Cacheable = true
		}
	}
	// Converge on the target: mark small static objects non-cacheable
	// when short, or re-mark dynamic-but-cacheable responses (API
	// results with max-age) when over.
	idx := rng.Perm(len(m.Objects) - 1)
	for _, j := range idx {
		if count >= target {
			break
		}
		o := m.Objects[j+1]
		if o.Cacheable && (o.Role == RoleJS || o.Role == RoleImage) && o.Size < 60000 {
			o.Cacheable = false
			count++
		}
	}
	for _, j := range idx {
		if count <= target {
			break
		}
		o := m.Objects[j+1]
		if !o.Cacheable && (o.Role == RoleJSON || o.Role == RoleData) {
			o.Cacheable = true
			count--
		}
	}
}

// assignMixedContent downgrades a few image fetches to plain HTTP on
// pages flagged for passive mixed content (§6.1).
func (p *Page) assignMixedContent(rng *rand.Rand, m *PageModel, landing bool) {
	if m.Objects[0].Scheme != "https" {
		return
	}
	prof := &p.Site.Profile
	mixed := false
	if landing {
		mixed = prof.MixedLanding
	} else {
		mixed = prof.MixedInternalProb > 0 &&
			noise01KeyIdx(p.Site.seed, "mixed", p.Index) < prof.MixedInternalProb
	}
	if !mixed {
		return
	}
	downgraded := 0
	want := 1 + rng.Intn(4)
	for _, o := range m.Objects[1:] {
		if downgraded >= want {
			break
		}
		if o.Role == RoleImage || o.Role == RoleBeacon || o.Role == RoleAdImage {
			o.Scheme = "http"
			downgraded++
		}
	}
}

// assignHints emits resource hints (§5.5) and marks preloaded objects.
func (p *Page) assignHints(rng *rand.Rand, m *PageModel, landing bool) {
	prof := &p.Site.Profile
	count := prof.HintsInternal
	if landing {
		count = prof.HintsLanding
	}
	if count <= 0 {
		return
	}
	// Collect distinct non-root origins and deep objects worth preloading.
	originSet := make(map[string]bool)
	var origins []string
	var preloadable []int
	for i, o := range m.Objects {
		if i == 0 {
			continue
		}
		key := o.Scheme + "://" + o.Host
		if !originSet[key] && o.Host != m.Objects[0].Host {
			originSet[key] = true
			origins = append(origins, key)
		}
		if o.Depth >= 2 && (o.Role == RoleCSS || o.Role == RoleJS || o.Role == RoleFont || o.Role == RoleImage) {
			preloadable = append(preloadable, i)
		}
	}
	for h := 0; h < count; h++ {
		x := rng.Float64()
		switch {
		case x < 0.45 && len(origins) > 0:
			m.Hints = append(m.Hints, Hint{Type: htmlx.HintDNSPrefetch, Target: origins[rng.Intn(len(origins))], ObjectIndex: -1})
		case x < 0.75 && len(origins) > 0:
			m.Hints = append(m.Hints, Hint{Type: htmlx.HintPreconnect, Target: origins[rng.Intn(len(origins))], ObjectIndex: -1})
		case x < 0.95 && len(preloadable) > 0:
			oi := preloadable[rng.Intn(len(preloadable))]
			m.Objects[oi].Preloaded = true
			m.Hints = append(m.Hints, Hint{Type: htmlx.HintPreload, Target: m.Objects[oi].URL, ObjectIndex: oi})
		default:
			if len(preloadable) > 0 {
				oi := preloadable[rng.Intn(len(preloadable))]
				m.Hints = append(m.Hints, Hint{Type: htmlx.HintPrefetch, Target: m.Objects[oi].URL, ObjectIndex: oi})
			} else if len(origins) > 0 {
				m.Hints = append(m.Hints, Hint{Type: htmlx.HintDNSPrefetch, Target: origins[rng.Intn(len(origins))], ObjectIndex: -1})
			}
		}
	}
}

// assignPopularity sets the global request popularity per object.
//
// Three tiers matter for cache warmth: site-wide shared assets (app
// bundles, stylesheets, fonts — requested on every page view of the
// site, identical for landing and internal pages), page-specific content
// (the document itself, article images, API responses — requested only
// when *this* page is viewed, so landing-page URLs are far hotter than
// any single internal page's), and global third-party infrastructure.
// World sites' content is rarely requested from the US vantage region,
// so their warmth collapses there (the Fig 9a / Fig 10c reversal).
func (p *Page) assignPopularity(rng *rand.Rand, m *PageModel) {
	s := p.Site
	sitePop := math.Pow(s.Popularity(), 0.3)
	world := 1.0
	if s.Category == CatWorld {
		world = 0.12
	}
	landing := p.IsLanding()
	boost := s.Profile.LandingPopBoost
	jitter := func() float64 { return 0.85 + rng.Float64()*0.3 }
	for _, o := range m.Objects {
		switch {
		case o.Tracker:
			// Ad/analytics endpoints are globally hot (but they are
			// dynamic responses, so this mostly affects DNS warmth).
			o.Popularity = 0.8 * jitter()
		case o.ThirdParty:
			// Third-party popularity follows the global directory order:
			// the ubiquitous head (fonts, big JS libraries) is hot
			// everywhere; the long tail — which internal pages lean on
			// (Fig 8b) — is cold and slower to serve (Fig 7).
			idx := s.web.tpIndex[o.Host]
			o.Popularity = 0.85 / (1 + float64(idx)/45) * world * jitter()
		case o.Role == RoleCSS || o.Role == RoleJS || o.Role == RoleFont:
			// Site-wide shared assets: equally hot for both page types.
			o.Popularity = sitePop * world * jitter()
		case o.Role == RoleDoc:
			if landing {
				o.Popularity = sitePop * boost * world * jitter()
			} else {
				o.Popularity = sitePop * 0.38 * world * jitter()
			}
		default:
			// Page-specific media and data.
			if landing {
				o.Popularity = sitePop * 1.2 * world * jitter()
			} else {
				o.Popularity = sitePop * 0.45 * world * jitter()
			}
		}
	}
}

// buildLinks fills the page's outgoing links: landing pages link broadly
// into the site; internal pages link to a handful of related pages and
// home.
func (p *Page) buildLinks(rng *rand.Rand, m *PageModel, landing bool) {
	s := p.Site
	pool := s.PoolSize()
	var linkCount int
	if landing {
		linkCount = 30 + rng.Intn(50)
	} else {
		linkCount = 8 + rng.Intn(22)
	}
	m.Links = make([]string, 0, linkCount+1)
	for _, ix := range sampleDistinct(rng, pool, linkCount+1, 0.6) {
		idx := 1 + ix
		if idx == p.Index || len(m.Links) >= linkCount {
			continue
		}
		m.Links = append(m.Links, s.PageAt(idx).URL())
	}
	if !landing {
		m.Links = append(m.Links, s.Landing().URL())
	}
}

// objectPath renders a role-appropriate URL path.
func objectPath(rng *rand.Rand, o *Object, pageIdx, i int) string {
	u := pageIdx*1000 + i // unique-per-page identifier
	switch o.Role {
	case RoleCSS:
		return "/assets/css/style-" + strconv.Itoa(u) + ".css"
	case RoleJS:
		return "/assets/js/app-" + strconv.Itoa(u) + ".js"
	case RoleImage:
		ext := [...]string{"jpg", "png", "webp", "gif"}[rng.Intn(4)]
		return "/img/photo-" + strconv.Itoa(u) + "." + ext
	case RoleFont:
		return "/fonts/face-" + strconv.Itoa(u) + ".woff2"
	case RoleJSON:
		return "/api/data-" + strconv.Itoa(u) + ".json"
	case RoleMedia:
		return "/media/clip-" + strconv.Itoa(u) + ".mp4"
	case RoleData:
		return "/static/blob-" + strconv.Itoa(u) + ".txt"
	case RoleIframe:
		return "/embed/frame-" + strconv.Itoa(u)
	case RoleBeacon:
		if o.Tracker {
			return "/pixel?id=" + strconv.Itoa(u)
		}
		// First-party or benign telemetry: not on filter lists.
		return "/telemetry/collect?v=" + strconv.Itoa(u)
	case RoleAdJS:
		return "/ads/tag-" + strconv.Itoa(u) + ".js"
	case RoleAdImage:
		return "/ads/creative-" + strconv.Itoa(u) + ".jpg"
	case RoleBid:
		return "/track?bid=" + strconv.Itoa(u)
	default:
		return "/static/obj-" + strconv.Itoa(u)
	}
}

// poisson draws a Poisson variate (Knuth's method; fine for small means).
func poisson(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 60 {
		// Normal approximation for large means.
		v := int(mean + rng.NormFloat64()*math.Sqrt(mean))
		if v < 0 {
			v = 0
		}
		return v
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}
