package webgen

import (
	"math/rand"
	"strconv"

	"repro/internal/simnet"
)

// Category is a site's Alexa-style top-level category. The World category
// groups sites that are popular internationally but not in the US; the
// paper shows (Fig 10c) that their landing pages are generally *slower*
// than their internal pages when measured from a US vantage point.
type Category string

// Site categories.
const (
	CatNews          Category = "News"
	CatShopping      Category = "Shopping"
	CatSocial        Category = "Social"
	CatTech          Category = "Tech"
	CatReference     Category = "Reference"
	CatEntertainment Category = "Entertainment"
	CatBusiness      Category = "Business"
	CatSports        Category = "Sports"
	CatWorld         Category = "World"
)

// Categories lists all site categories in a stable order.
func Categories() []Category {
	return []Category{CatNews, CatShopping, CatSocial, CatTech, CatReference,
		CatEntertainment, CatBusiness, CatSports, CatWorld}
}

// categoryFor draws a category for a site given its rank. The World
// category concentrates in the rank-400..600 band, which produces the
// paper's rank-localized PLT trend reversal (Fig 9a) mechanically: World
// sites are served far from the US vantage and their objects are rarely
// warm in nearby CDN edges.
func categoryFor(rng *rand.Rand, rank int) Category {
	worldP := 0.06
	if rank >= 400 && rank < 600 {
		worldP = 0.42
	} else if rank >= 300 && rank < 700 {
		worldP = 0.18
	}
	if rng.Float64() < worldP {
		return CatWorld
	}
	others := []Category{CatNews, CatShopping, CatSocial, CatTech, CatReference,
		CatEntertainment, CatBusiness, CatSports}
	weights := []float64{0.20, 0.17, 0.10, 0.14, 0.12, 0.12, 0.09, 0.06}
	x := rng.Float64()
	acc := 0.0
	total := 0.0
	for _, w := range weights {
		total += w
	}
	for i, w := range weights {
		acc += w / total
		if x < acc {
			return others[i]
		}
	}
	return others[len(others)-1]
}

// originLoc returns the site's origin server location. World sites live
// far from the US vantage point.
func originLoc(rng *rand.Rand, cat Category) simnet.Loc {
	if cat == CatWorld {
		locs := []simnet.Loc{simnet.LocAsia, simnet.LocEurope, simnet.LocSouthAmerica, simnet.LocOceania}
		return locs[rng.Intn(len(locs))]
	}
	x := rng.Float64()
	switch {
	case x < 0.55:
		return simnet.LocUSEast
	case x < 0.85:
		return simnet.LocUSWest
	case x < 0.95:
		return simnet.LocEurope
	default:
		return simnet.LocAsia
	}
}

// ThirdParty is an external service domain that pages embed content from.
type ThirdParty struct {
	Domain  string
	Kind    string // "ads", "analytics", "social", "fonts", "jslib", "video", "widget", "misc"
	Tracker bool   // matched by ad-blocking filter lists
}

var (
	trackerFirst = []string{"ad", "ads", "track", "trk", "pixel", "beacon",
		"metric", "stat", "tag", "sync", "bid", "dsp", "ssp", "retarget",
		"audience", "click", "impression", "visit", "prof", "target"}
	trackerSecond = []string{"serve", "hub", "grid", "flow", "press", "works",
		"nexus", "link", "path", "zone", "layer", "cast"}
	benignFirst = []string{"static", "assets", "fonts", "lib", "api", "media",
		"embed", "widget", "player", "img", "script", "content", "share", "social"}
	benignSecond = []string{"host", "box", "store", "depot", "stack", "base",
		"dock", "well", "yard", "farm"}
	tpTLDs = []string{"com", "net", "io", "co"}
)

// ThirdPartyDirectory generates the deterministic global pool of
// third-party domains for a web seeded with seed: nTrackers ad/tracking
// domains (which the synthetic Easylist covers) and nBenign benign ones.
func ThirdPartyDirectory(seed int64, nTrackers, nBenign int) []ThirdParty {
	rng := rngForKey(seed, "third-parties")
	out := make([]ThirdParty, 0, nTrackers+nBenign)
	seen := make(map[string]bool)
	adKinds := []string{"ads", "analytics"}
	for len(out) < nTrackers {
		// Concatenation instead of Sprintf: this runs per generated
		// domain on the snapshot-rebuild path, and boxing the int arm
		// was a recurring allocation. Operand order preserves the RNG
		// draw sequence.
		d := trackerFirst[rng.Intn(len(trackerFirst))] +
			trackerSecond[rng.Intn(len(trackerSecond))] +
			strconv.Itoa(rng.Intn(90)+10) + "." +
			tpTLDs[rng.Intn(len(tpTLDs))]
		if seen[d] {
			continue
		}
		seen[d] = true
		out = append(out, ThirdParty{Domain: d, Kind: adKinds[rng.Intn(len(adKinds))], Tracker: true})
	}
	benignKinds := []string{"social", "fonts", "jslib", "video", "widget", "misc"}
	for len(out) < nTrackers+nBenign {
		d := benignFirst[rng.Intn(len(benignFirst))] +
			benignSecond[rng.Intn(len(benignSecond))] +
			strconv.Itoa(rng.Intn(900)+100) + "." +
			tpTLDs[rng.Intn(len(tpTLDs))]
		if seen[d] {
			continue
		}
		seen[d] = true
		out = append(out, ThirdParty{Domain: d, Kind: benignKinds[rng.Intn(len(benignKinds))], Tracker: false})
	}
	return out
}

// EasylistFor renders Easylist-syntax filter rules covering the tracker
// domains in the directory, plus a few generic path rules — the synthetic
// analogue of downloading Easylist (§6.3).
func EasylistFor(dir []ThirdParty) []string {
	rules := []string{
		"! Synthetic Easylist for the simulated web",
		"/ads/*",
		"/pixel?",
		"/beacon?",
		"/track?",
		"&utm_tracker=",
	}
	for _, tp := range dir {
		if tp.Tracker {
			rules = append(rules, "||"+tp.Domain+"^")
		}
	}
	return rules
}

// slugWords feed page paths and titles.
var slugWords = []string{
	"election", "market", "climate", "review", "launch", "season", "update",
	"guide", "report", "analysis", "profile", "history", "science", "travel",
	"health", "economy", "culture", "design", "energy", "finance", "future",
	"gadget", "garden", "justice", "kitchen", "language", "medicine", "nature",
	"opinion", "policy", "privacy", "recipe", "startup", "storage", "stream",
	"summit", "theater", "traffic", "weather", "wildlife", "workout", "archive",
}

// pathFor returns a category-flavoured internal page path for page index
// idx, stable across weeks.
func pathFor(rng *rand.Rand, cat Category, idx int) string {
	// Built by concatenation rather than Sprintf: pathFor runs once per
	// page per build and the format-verb boxing showed up on the
	// streaming hot path. Every branch is byte-for-byte what the old
	// format string produced, with RNG draws in the same order.
	w1 := slugWords[rng.Intn(len(slugWords))]
	w2 := slugWords[rng.Intn(len(slugWords))]
	switch cat {
	case CatNews, CatSports:
		return "/" + strconv.Itoa(2019+rng.Intn(2)) + "/" + pad2(1+rng.Intn(12)) +
			"/" + w1 + "-" + w2 + "-" + strconv.Itoa(idx)
	case CatShopping:
		return "/product/" + strconv.Itoa(10000+idx) + "/" + w1 + "-" + w2
	case CatReference:
		return "/wiki/" + w1 + "_" + w2 + "_" + strconv.Itoa(idx)
	case CatSocial:
		return "/user" + strconv.Itoa(rng.Intn(5000)) + "/post/" + strconv.Itoa(100000+idx)
	case CatEntertainment:
		return "/watch/" + w1 + "-" + w2 + "-" + strconv.Itoa(idx)
	default:
		return "/" + w1 + "/" + w2 + "-" + strconv.Itoa(idx)
	}
}

// pad2 renders n like the %02d verb: zero-padded to two digits.
func pad2(n int) string {
	if n >= 0 && n < 10 {
		return "0" + strconv.Itoa(n)
	}
	return strconv.Itoa(n)
}
