package webgen

import (
	"fmt"
	"strings"
)

// RenderHTML renders the page's root document markup from the model. The
// markup round-trips through the htmlx scanner: every depth-1 object,
// hint, and link is discoverable by parsing, so the real-HTTP integration
// path (webserve + browser) exercises genuine HTML parsing.
func (m *PageModel) RenderHTML() string {
	var b strings.Builder
	b.Grow(4096)
	b.WriteString("<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n")
	fmt.Fprintf(&b, "<meta charset=\"utf-8\">\n<title>%s</title>\n", m.Page.Title())
	fmt.Fprintf(&b, "<meta name=\"generator\" content=\"webgen\">\n")

	for _, h := range m.Hints {
		if h.Type == "preload" && h.ObjectIndex >= 0 {
			as := "image"
			switch m.Objects[h.ObjectIndex].Role {
			case RoleCSS:
				as = "style"
			case RoleJS:
				as = "script"
			case RoleFont:
				as = "font"
			}
			fmt.Fprintf(&b, "<link rel=\"preload\" as=\"%s\" href=\"%s\">\n", as, h.Target)
			continue
		}
		fmt.Fprintf(&b, "<link rel=\"%s\" href=\"%s\">\n", h.Type, h.Target)
	}
	docIdx := m.DocIndex()
	var fontFaces []string
	for i, o := range m.Objects {
		if i == docIdx || o.Parent != docIdx {
			continue
		}
		switch o.Role {
		case RoleCSS:
			fmt.Fprintf(&b, "<link rel=\"stylesheet\" href=\"%s\">\n", o.URL)
		case RoleJS:
			if o.Async {
				fmt.Fprintf(&b, "<script src=\"%s\" async></script>\n", o.URL)
			} else {
				fmt.Fprintf(&b, "<script src=\"%s\"></script>\n", o.URL)
			}
		case RoleFont:
			fontFaces = append(fontFaces, o.URL)
		}
	}
	if len(fontFaces) > 0 {
		// Depth-1 fonts load through inline critical CSS, not preload
		// hints (hint counts must reflect the model's Hints exactly).
		b.WriteString("<style>\n")
		for i, u := range fontFaces {
			fmt.Fprintf(&b, "@font-face { font-family: f%d; src: url(\"%s\"); }\n", i, u)
		}
		b.WriteString("</style>\n")
	}
	b.WriteString("</head>\n<body>\n")
	fmt.Fprintf(&b, "<h1>%s</h1>\n", m.Page.Title())
	for i := 0; i < m.AdSlots; i++ {
		fmt.Fprintf(&b, "<div class=\"ad-slot hb-slot\" id=\"slot-%d\"></div>\n", i)
	}
	for i, o := range m.Objects {
		if i == docIdx || o.Parent != docIdx {
			continue
		}
		switch o.Role {
		case RoleImage, RoleAdImage, RoleBeacon:
			fmt.Fprintf(&b, "<img src=\"%s\" alt=\"\">\n", o.URL)
		case RoleIframe:
			fmt.Fprintf(&b, "<iframe src=\"%s\"></iframe>\n", o.URL)
		case RoleMedia:
			fmt.Fprintf(&b, "<video src=\"%s\"></video>\n", o.URL)
		case RoleJSON, RoleData, RoleAdJS, RoleBid:
			// Fetched by inline bootstrap code; emit a marker the
			// body-scanner recognizes.
			fmt.Fprintf(&b, "<script>loadResource(\"%s\");</script>\n", o.URL)
		}
	}
	for _, l := range m.Links {
		fmt.Fprintf(&b, "<p><a href=\"%s\">%s</a></p>\n", l, l)
	}
	b.WriteString("</body>\n</html>\n")
	return b.String()
}

// ChildRefs returns the URLs an object's body references (its dependency
// children, §5.4). For the root document this is every depth-1 object.
func (m *PageModel) ChildRefs(parentIdx int) []string {
	var out []string
	for i, o := range m.Objects {
		if i == 0 {
			continue
		}
		if o.Parent == parentIdx {
			out = append(out, o.URL)
		}
	}
	return out
}

// RenderBody renders a synthetic body for a non-document object: real
// child references embedded in role-appropriate syntax, padded toward the
// declared size (capped at maxFill bytes so huge objects do not
// materialize in memory; the declared Content-Length still reflects
// Object.Size only when the cap is not hit).
func (m *PageModel) RenderBody(idx int, maxFill int) string {
	if maxFill <= 0 {
		maxFill = 64 << 10
	}
	o := m.Objects[idx]
	var b strings.Builder
	children := m.ChildRefs(idx)
	switch o.Role {
	case RoleCSS:
		for i, c := range children {
			fmt.Fprintf(&b, ".c%d { background: url(\"%s\"); }\n", i, c)
		}
		b.WriteString("body { margin: 0; }\n")
		padTo(&b, o.Size, maxFill, "/* pad */\n")
	case RoleJS, RoleAdJS:
		for _, c := range children {
			fmt.Fprintf(&b, "loadResource(\"%s\");\n", c)
		}
		b.WriteString("console.log(\"ready\");\n")
		padTo(&b, o.Size, maxFill, "// pad\n")
	case RoleIframe:
		b.WriteString("<!DOCTYPE html><html><body>\n")
		for _, c := range children {
			fmt.Fprintf(&b, "<img src=\"%s\">\n", c)
		}
		b.WriteString("</body></html>\n")
		padTo(&b, o.Size, maxFill, "<!-- pad -->\n")
	case RoleJSON, RoleBid:
		fmt.Fprintf(&b, "{\"id\": %d, \"children\": [", idx)
		for i, c := range children {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%q", c)
		}
		b.WriteString("]}")
	default:
		padTo(&b, o.Size, maxFill, "x")
	}
	return b.String()
}

func padTo(b *strings.Builder, size int64, maxFill int, unit string) {
	target := int(size)
	if target > maxFill {
		target = maxFill
	}
	for b.Len() < target {
		b.WriteString(unit)
	}
}
