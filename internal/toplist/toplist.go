// Package toplist models an Alexa-style ranked list of web sites and its
// churn over time.
//
// Real top lists rank sites by an estimate of user traffic, and the
// estimate is noisy: the paper (§3) relies on prior measurements that the
// Alexa Top 5K changes about 10% per day and the Top 100K about 41% per
// week, and shows that Hispar's top level inherits about 20% weekly churn
// from the Alexa Top 5K. This package reproduces those dynamics with a
// universe of domains whose latent log-popularity follows a heteroskedastic
// random walk; a ranked snapshot at any virtual day is a top list.
package toplist

import (
	"math"
	"math/rand"
	"sort"
	"strconv"
)

// Entry is one row of a ranked top list.
type Entry struct {
	Rank   int // 1-based
	Domain string
}

// Config parameterizes the universe.
//
// Each domain's log-popularity is anchor + deviation: the deviation is a
// mean-reverting daily noise term (sites bounce in and out of a list and
// come back — why the Alexa top 5K changes ~10% per day yet only ~20%
// per week), while the anchor itself drifts slowly, faster in the long
// tail (why the top 100K changes ~41% per week).
type Config struct {
	Seed int64
	// Size is the number of domains in the universe. It must exceed the
	// largest list you plan to take a snapshot of. Default 150_000.
	Size int
	// BaseVolatility is the daily noise s.d. for the most stable sites.
	// Default 0.07.
	BaseVolatility float64
	// TailVolatility is the extra daily noise toward the bottom of the
	// universe (deep ranks are estimated from sparse samples and are
	// extremely noisy). Default 1.7.
	TailVolatility float64
	// Reversion is the daily mean-reversion rate of the noise term in
	// (0,1]. Default 0.45.
	Reversion float64
	// AnchorDrift is the daily s.d. of the slow anchor walk at the very
	// universe; it scales as frac^1.2 toward the top, capped at 0.38/day.
	// Default 0.25.
	AnchorDrift float64
}

func (c Config) withDefaults() Config {
	if c.Size <= 0 {
		c.Size = 150_000
	}
	if c.BaseVolatility <= 0 {
		c.BaseVolatility = 0.07
	}
	if c.TailVolatility <= 0 {
		c.TailVolatility = 1.7
	}
	if c.Reversion <= 0 || c.Reversion > 1 {
		c.Reversion = 0.45
	}
	if c.AnchorDrift <= 0 {
		c.AnchorDrift = 0.25
	}
	return c
}

// Universe is a population of domains with evolving popularity.
// Create with NewUniverse; not safe for concurrent use.
type Universe struct {
	cfg     Config
	rng     *rand.Rand
	domains []domain
	day     int
}

type domain struct {
	name      string
	anchor    float64 // slow-moving intrinsic popularity
	dev       float64 // mean-reverting daily deviation
	vol       float64 // daily sd of the deviation noise
	anchorVol float64 // daily sd of the anchor walk
}

func (d *domain) logpop() float64 { return d.anchor + d.dev }

// NewUniverse creates a universe at day 0. Initial popularity is Zipfian
// with multiplicative noise, so initial rank roughly matches creation
// order.
func NewUniverse(cfg Config) *Universe {
	cfg = cfg.withDefaults()
	u := &Universe{
		cfg:     cfg,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		domains: make([]domain, cfg.Size),
	}
	for i := range u.domains {
		frac := float64(i) / float64(cfg.Size)
		vol := cfg.BaseVolatility + cfg.TailVolatility*frac
		// Heterogeneous per-site volatility: some sites are bursty.
		vol *= math.Exp(u.rng.NormFloat64() * 0.5)
		u.domains[i] = domain{
			name:      DomainName(cfg.Seed, i),
			anchor:    -math.Log(float64(i)+1) + u.rng.NormFloat64()*0.05,
			vol:       vol,
			anchorVol: 0.045 + math.Min(0.38, cfg.AnchorDrift*math.Pow(frac, 1.2)),
		}
	}
	return u
}

// Day returns the current simulation day.
func (u *Universe) Day() int { return u.day }

// Size returns the number of domains in the universe.
func (u *Universe) Size() int { return len(u.domains) }

// Step advances the universe by days days of popularity drift.
func (u *Universe) Step(days int) {
	theta := u.cfg.Reversion
	for d := 0; d < days; d++ {
		for i := range u.domains {
			dom := &u.domains[i]
			dom.dev = dom.dev*(1-theta) + u.rng.NormFloat64()*dom.vol
			// Traffic-estimation noise can bury a site but can only
			// inflate it so far: a tail site never spuriously reaches the
			// very top of the list.
			if dom.dev > 1.2 {
				dom.dev = 1.2
			} else if dom.dev < -2.5 {
				dom.dev = -2.5
			}
			if dom.anchorVol > 0 {
				dom.anchor += u.rng.NormFloat64() * dom.anchorVol
			}
		}
		u.day++
	}
}

// Top returns the current top-k list, rank 1 first.
func (u *Universe) Top(k int) []Entry {
	if k > len(u.domains) {
		k = len(u.domains)
	}
	idx := make([]int, len(u.domains))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		da, db := &u.domains[idx[a]], &u.domains[idx[b]]
		pa, pb := da.logpop(), db.logpop()
		if pa != pb {
			return pa > pb
		}
		return da.name < db.name
	})
	out := make([]Entry, k)
	for r := 0; r < k; r++ {
		out[r] = Entry{Rank: r + 1, Domain: u.domains[idx[r]].name}
	}
	return out
}

// Churn computes the fraction of domains present in prev but absent from
// next. Both lists are treated as sets; ranks are ignored. It returns 0
// for an empty prev.
func Churn(prev, next []Entry) float64 {
	if len(prev) == 0 {
		return 0
	}
	in := make(map[string]bool, len(next))
	for _, e := range next {
		in[e.Domain] = true
	}
	gone := 0
	for _, e := range prev {
		if !in[e.Domain] {
			gone++
		}
	}
	return float64(gone) / float64(len(prev))
}

// Overlap returns the Jaccard overlap of the two lists' domain sets.
func Overlap(a, b []Entry) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	seen := make(map[string]bool, len(a))
	for _, e := range a {
		seen[e.Domain] = true
	}
	inter := 0
	union := len(seen)
	for _, e := range b {
		if seen[e.Domain] {
			inter++
		} else {
			union++
		}
	}
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}

// Word pools for synthetic domain names. Kept deliberately generic; no
// resemblance to real registered domains is intended.
var (
	nameAdjectives = []string{
		"alpha", "bright", "civic", "daily", "eager", "fleet", "global", "happy",
		"iron", "jade", "keen", "lunar", "mega", "nova", "open", "prime",
		"quick", "rapid", "solar", "true", "ultra", "vivid", "wide", "xen",
		"young", "zesty", "amber", "bold", "clear", "deep", "east", "fresh",
		"grand", "high", "inner", "joint", "kind", "local", "main", "north",
	}
	nameNouns = []string{
		"news", "shop", "press", "media", "cart", "forum", "wiki", "blog",
		"games", "tech", "bank", "travel", "video", "music", "sport", "mail",
		"search", "social", "photo", "cloud", "market", "store", "times",
		"journal", "daily", "post", "world", "life", "hub", "zone", "spot",
		"base", "port", "link", "net", "page", "site", "web", "data", "stream",
	}
	nameTLDs = []string{
		"com", "com", "com", "com", "org", "net", "io", "co",
		"co.uk", "de", "fr", "co.jp", "com.br", "co.in", "ru", "info",
	}
)

// DomainName returns the deterministic synthetic domain name for index i
// in a universe created with the given seed.
func DomainName(seed int64, i int) string {
	// Mix the index so adjacent ranks do not share prefixes.
	h := uint64(i)*0x9e3779b97f4a7c15 + uint64(seed)
	adj := nameAdjectives[h%uint64(len(nameAdjectives))]
	noun := nameNouns[(h>>8)%uint64(len(nameNouns))]
	tld := nameTLDs[(h>>16)%uint64(len(nameTLDs))]
	// Concatenation, not Sprintf: DomainName runs for every universe
	// entry on each snapshot rebuild and the boxed int was hot.
	return adj + noun + strconv.Itoa(i) + "." + tld
}
