package toplist

import (
	"testing"
)

func TestTopRanksOrdered(t *testing.T) {
	u := NewUniverse(Config{Seed: 1, Size: 2000})
	top := u.Top(100)
	if len(top) != 100 {
		t.Fatalf("Top(100) = %d entries", len(top))
	}
	seen := map[string]bool{}
	for i, e := range top {
		if e.Rank != i+1 {
			t.Fatalf("rank %d at position %d", e.Rank, i)
		}
		if seen[e.Domain] {
			t.Fatalf("duplicate domain %s", e.Domain)
		}
		seen[e.Domain] = true
	}
	if got := u.Top(5000); len(got) != 2000 {
		t.Errorf("Top beyond universe = %d, want clamp to 2000", len(got))
	}
}

func TestDeterminism(t *testing.T) {
	a := NewUniverse(Config{Seed: 7, Size: 500})
	b := NewUniverse(Config{Seed: 7, Size: 500})
	a.Step(10)
	b.Step(10)
	ta, tb := a.Top(50), b.Top(50)
	for i := range ta {
		if ta[i] != tb[i] {
			t.Fatalf("universes diverged at %d: %v vs %v", i, ta[i], tb[i])
		}
	}
}

func TestChurnGrowsWithTime(t *testing.T) {
	u := NewUniverse(Config{Seed: 2, Size: 20000})
	base := u.Top(1000)
	u.Step(1)
	day1 := Churn(base, u.Top(1000))
	u.Step(13)
	day14 := Churn(base, u.Top(1000))
	if day1 <= 0 {
		t.Error("expected nonzero daily churn")
	}
	if day14 <= day1 {
		t.Errorf("churn should grow with horizon: day1=%.3f day14=%.3f", day1, day14)
	}
	if day1 > 0.5 {
		t.Errorf("daily churn unrealistically high: %.3f", day1)
	}
}

func TestChurnDeeperListsChurnMore(t *testing.T) {
	// A deep list churns more than the head — provided the universe is
	// much larger than the list (as with Alexa's 1M universe vs its
	// 100K slice, §3).
	u := NewUniverse(Config{Seed: 3, Size: 120000})
	top2k := u.Top(2000)
	top30k := u.Top(30000)
	u.Step(7)
	c2 := Churn(top2k, u.Top(2000))
	c30 := Churn(top30k, u.Top(30000))
	if c30 <= c2 {
		t.Errorf("deep-list churn %.3f should exceed top churn %.3f", c30, c2)
	}
}

func TestChurnAndOverlapEdgeCases(t *testing.T) {
	if Churn(nil, nil) != 0 {
		t.Error("empty churn should be 0")
	}
	a := []Entry{{1, "a"}, {2, "b"}}
	if got := Churn(a, a); got != 0 {
		t.Errorf("identical churn = %v", got)
	}
	if got := Churn(a, nil); got != 1 {
		t.Errorf("total churn = %v", got)
	}
	if got := Overlap(a, a); got != 1 {
		t.Errorf("self overlap = %v", got)
	}
	b := []Entry{{1, "a"}, {2, "c"}}
	if got := Overlap(a, b); got != 1.0/3.0 {
		t.Errorf("overlap = %v, want 1/3", got)
	}
}

func TestDomainNameStable(t *testing.T) {
	if DomainName(1, 5) != DomainName(1, 5) {
		t.Error("domain name not deterministic")
	}
	if DomainName(1, 5) == DomainName(1, 6) {
		t.Error("adjacent indexes should differ")
	}
}
