package urlx

import "testing"

func TestNormalize(t *testing.T) {
	cases := []struct {
		in   string
		want string
		ok   bool
	}{
		{"HTTP://Example.COM", "http://example.com/", true},
		{"https://example.com:443/a", "https://example.com/a", true},
		{"http://example.com:80/a?q=1#frag", "http://example.com/a?q=1", true},
		{"http://example.com:8080/", "http://example.com:8080/", true},
		{"ftp://example.com/", "ftp://example.com/", false},
		{"/relative", "/relative", false},
		{"://bad", "://bad", false},
	}
	for _, c := range cases {
		got, ok := Normalize(c.in)
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("Normalize(%q) = %q,%v want %q,%v", c.in, got, ok, c.want, c.ok)
		}
	}
}

func TestResolve(t *testing.T) {
	got, ok := Resolve("https://example.com/a/b", "../c")
	if !ok || got != "https://example.com/c" {
		t.Errorf("Resolve = %q, %v", got, ok)
	}
	got, ok = Resolve("https://example.com/a", "//other.com/x")
	if !ok || got != "https://other.com/x" {
		t.Errorf("protocol-relative Resolve = %q, %v", got, ok)
	}
	if _, ok := Resolve("https://example.com/", "javascript:void(0)"); ok {
		t.Error("javascript: URL should not resolve")
	}
}

func TestHostAndScheme(t *testing.T) {
	if Host("https://WWW.Example.com:8443/x") != "www.example.com" {
		t.Error("Host wrong")
	}
	if !IsHTTPS("https://x.com/") || IsHTTPS("http://x.com/") {
		t.Error("IsHTTPS wrong")
	}
	if WithScheme("https://x.com/a", "http") != "http://x.com/a" {
		t.Error("WithScheme wrong")
	}
}

func TestIsLandingPage(t *testing.T) {
	cases := []struct {
		url  string
		want bool
	}{
		{"https://example.com/", true},
		{"https://example.com", true},
		{"https://example.com/article", false},
		{"https://example.com/?utm=1", false},
	}
	for _, c := range cases {
		if got := IsLandingPage(c.url); got != c.want {
			t.Errorf("IsLandingPage(%q) = %v, want %v", c.url, got, c.want)
		}
	}
}
