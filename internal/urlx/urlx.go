// Package urlx contains small URL helpers shared by the crawler, browser,
// search engine, and Hispar list builder.
package urlx

import (
	"net/url"
	"strings"
)

// Normalize canonicalizes raw for use as a page identity: lowercases the
// scheme and host, strips default ports, drops fragments, and ensures a
// non-empty path ("/" for the root). It returns the input unchanged (and
// false) when it cannot be parsed as an absolute http(s) URL.
func Normalize(raw string) (string, bool) {
	u, err := url.Parse(raw)
	if err != nil || !u.IsAbs() {
		return raw, false
	}
	scheme := strings.ToLower(u.Scheme)
	if scheme != "http" && scheme != "https" {
		return raw, false
	}
	u.Scheme = scheme
	u.Host = strings.ToLower(u.Host)
	switch {
	case scheme == "http" && strings.HasSuffix(u.Host, ":80"):
		u.Host = strings.TrimSuffix(u.Host, ":80")
	case scheme == "https" && strings.HasSuffix(u.Host, ":443"):
		u.Host = strings.TrimSuffix(u.Host, ":443")
	}
	u.Fragment = ""
	if u.Path == "" {
		u.Path = "/"
	}
	return u.String(), true
}

// Resolve resolves ref against base and normalizes the result. It returns
// false for unparsable or non-http(s) results.
func Resolve(base, ref string) (string, bool) {
	b, err := url.Parse(base)
	if err != nil {
		return "", false
	}
	r, err := url.Parse(strings.TrimSpace(ref))
	if err != nil {
		return "", false
	}
	return Normalize(b.ResolveReference(r).String())
}

// Host returns the lowercase hostname (without port) of raw, or "".
func Host(raw string) string {
	u, err := url.Parse(raw)
	if err != nil {
		return ""
	}
	return strings.ToLower(u.Hostname())
}

// IsLandingPage reports whether raw is a landing page: the root document
// ("/", possibly with an empty query) of its host.
func IsLandingPage(raw string) bool {
	u, err := url.Parse(raw)
	if err != nil {
		return false
	}
	return (u.Path == "/" || u.Path == "") && u.RawQuery == ""
}

// IsHTTPS reports whether raw uses the https scheme.
func IsHTTPS(raw string) bool {
	u, err := url.Parse(raw)
	if err != nil {
		return false
	}
	return strings.EqualFold(u.Scheme, "https")
}

// WithScheme returns raw with its scheme replaced.
func WithScheme(raw, scheme string) string {
	u, err := url.Parse(raw)
	if err != nil {
		return raw
	}
	u.Scheme = scheme
	return u.String()
}
