package robots

import (
	"testing"
	"time"

	"repro/internal/toplist"
	"repro/internal/webgen"
)

const sample = `
# example robots file
User-agent: *
Disallow: /private/
Disallow: /tmp/
Allow: /private/press/
Crawl-delay: 5

User-agent: hispar-repro
Disallow: /no-repro/
`

func TestParseAndAllowed(t *testing.T) {
	f := Parse(sample)
	if len(f.Groups) != 2 {
		t.Fatalf("groups = %d", len(f.Groups))
	}
	cases := []struct {
		agent, path string
		want        bool
	}{
		{"SomeBot/1.0", "/", true},
		{"SomeBot/1.0", "/private/x", false},
		{"SomeBot/1.0", "/private/press/release", true}, // Allow beats Disallow by length
		{"SomeBot/1.0", "/tmp/a", false},
		{"SomeBot/1.0", "/public", true},
		{"hispar-repro/1.0", "/no-repro/x", false},
		{"hispar-repro/1.0", "/private/x", true}, // specific group replaces wildcard
	}
	for _, c := range cases {
		if got := f.Allowed(c.agent, c.path); got != c.want {
			t.Errorf("Allowed(%q, %q) = %v, want %v", c.agent, c.path, got, c.want)
		}
	}
	if got := f.CrawlDelay("SomeBot"); got != 5*time.Second {
		t.Errorf("CrawlDelay = %v", got)
	}
	if got := f.CrawlDelay("hispar-repro"); got != 0 {
		t.Errorf("specific-group CrawlDelay = %v", got)
	}
}

func TestEmptyAndMalformed(t *testing.T) {
	f := Parse("")
	if !f.Allowed("any", "/x") {
		t.Error("empty file must allow everything")
	}
	f = Parse("Disallow: /orphan-rule-without-agent\nnonsense line\nUser-agent *\n")
	if !f.Allowed("any", "/orphan-rule-without-agent") {
		t.Error("rules before any user-agent must be ignored")
	}
}

func TestEmptyDisallowMeansAllowAll(t *testing.T) {
	f := Parse("User-agent: *\nDisallow:\n")
	if !f.Allowed("bot", "/anything") {
		t.Error("empty Disallow allows everything")
	}
}

// TestRoundTripWithGenerator parses generated robots.txt files and
// checks agreement with the generator's ground-truth exclusions.
func TestRoundTripWithGenerator(t *testing.T) {
	u := toplist.NewUniverse(toplist.Config{Seed: 121, Size: 400})
	entries := u.Top(30)
	seeds := make([]webgen.SiteSeed, len(entries))
	for i, e := range entries {
		seeds[i] = webgen.SiteSeed{Domain: e.Domain, Rank: e.Rank}
	}
	web := webgen.Generate(webgen.Config{Seed: 121, Sites: seeds})
	checkedDisallowed := 0
	for _, s := range web.Sites {
		f := Parse(s.RobotsTxt())
		for i := 1; i <= s.PoolSize(); i++ {
			p := s.PageAt(i)
			allowed := f.Allowed("hispar-repro", p.Path())
			if allowed == p.Disallowed() {
				t.Fatalf("%s%s: parser says allowed=%v, ground truth disallowed=%v",
					s.Domain, p.Path(), allowed, p.Disallowed())
			}
			if p.Disallowed() {
				checkedDisallowed++
			}
		}
	}
	if checkedDisallowed == 0 {
		t.Skip("no disallowed pages at this seed")
	}
}
