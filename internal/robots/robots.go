// Package robots parses robots.txt files (the original 1994 exclusion
// standard the paper cites) and answers allow/deny queries for a user
// agent. Search engines and the polite crawler consult it before
// fetching (§3).
package robots

import (
	"strings"
	"time"
)

// Group is the rule set for one set of user agents.
type Group struct {
	Agents     []string // lowercase User-agent values ("*" for any)
	Disallows  []string // path prefixes
	Allows     []string // path prefixes (more specific wins)
	CrawlDelay time.Duration
}

// File is a parsed robots.txt.
type File struct {
	Groups []Group
}

// Parse reads robots.txt content. Unknown directives are ignored, as the
// standard requires.
func Parse(content string) *File {
	f := &File{}
	var cur *Group
	sawRule := false
	for _, line := range strings.Split(content, "\n") {
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		key, val, ok := strings.Cut(line, ":")
		if !ok {
			continue
		}
		key = strings.ToLower(strings.TrimSpace(key))
		val = strings.TrimSpace(val)
		switch key {
		case "user-agent":
			if cur == nil || sawRule {
				f.Groups = append(f.Groups, Group{})
				cur = &f.Groups[len(f.Groups)-1]
				sawRule = false
			}
			cur.Agents = append(cur.Agents, strings.ToLower(val))
		case "disallow":
			if cur == nil {
				continue
			}
			sawRule = true
			if val != "" {
				cur.Disallows = append(cur.Disallows, val)
			}
		case "allow":
			if cur == nil {
				continue
			}
			sawRule = true
			if val != "" {
				cur.Allows = append(cur.Allows, val)
			}
		case "crawl-delay":
			if cur == nil {
				continue
			}
			sawRule = true
			if d, err := time.ParseDuration(val + "s"); err == nil {
				cur.CrawlDelay = d
			}
		}
	}
	return f
}

// group returns the most specific group for the agent: an exact (prefix)
// agent match beats the wildcard group.
func (f *File) group(agent string) *Group {
	agent = strings.ToLower(agent)
	var wildcard *Group
	for i := range f.Groups {
		for _, a := range f.Groups[i].Agents {
			if a == "*" {
				if wildcard == nil {
					wildcard = &f.Groups[i]
				}
				continue
			}
			if strings.Contains(agent, a) {
				return &f.Groups[i]
			}
		}
	}
	return wildcard
}

// Allowed reports whether the agent may fetch path. Longest-match wins
// between Allow and Disallow, per the de-facto standard.
func (f *File) Allowed(agent, path string) bool {
	g := f.group(agent)
	if g == nil {
		return true
	}
	if path == "" {
		path = "/"
	}
	bestAllow, bestDis := -1, -1
	for _, a := range g.Allows {
		if strings.HasPrefix(path, a) && len(a) > bestAllow {
			bestAllow = len(a)
		}
	}
	for _, d := range g.Disallows {
		if strings.HasPrefix(path, d) && len(d) > bestDis {
			bestDis = len(d)
		}
	}
	if bestDis < 0 {
		return true
	}
	return bestAllow >= bestDis
}

// CrawlDelay returns the crawl delay for the agent (0 if unspecified).
func (f *File) CrawlDelay(agent string) time.Duration {
	if g := f.group(agent); g != nil {
		return g.CrawlDelay
	}
	return 0
}
