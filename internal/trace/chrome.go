// Chrome trace-event JSON export. The writer is hand-rolled rather than
// encoding/json so the byte stream is fully deterministic: fixed field
// order, integer microsecond timestamps, attrs emitted in recorded
// order, and a JSON string escaper (strconv.Quote produces Go escapes
// like \x1f that JSON parsers reject). The output loads in Perfetto and
// chrome://tracing.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"time"
)

// WriteChromeJSON writes spans as a Chrome trace-event document:
// complete ("X") events, pid 1, tid from the span, ts/dur in integer
// microseconds offset from the earliest span start. Identical span
// slices produce identical bytes.
func WriteChromeJSON(w io.Writer, spans []Span) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	epoch := earliestStart(spans)
	if _, err := bw.WriteString("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"); err != nil {
		return err
	}
	buf := make([]byte, 0, 256)
	for i, s := range spans {
		buf = buf[:0]
		if i > 0 {
			buf = append(buf, ',', '\n')
		}
		buf = appendEvent(buf, epoch, s)
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	if _, err := bw.WriteString("\n]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// WriteChromeJSON exports the tracer's merged spans.
func (t *Tracer) WriteChromeJSON(w io.Writer) error {
	return WriteChromeJSON(w, t.Spans())
}

func earliestStart(spans []Span) time.Time {
	var epoch time.Time
	for i, s := range spans {
		if i == 0 || s.Start.Before(epoch) {
			epoch = s.Start
		}
	}
	return epoch
}

func appendEvent(b []byte, epoch time.Time, s Span) []byte {
	b = append(b, `{"ph":"X","pid":1,"tid":`...)
	b = strconv.AppendInt(b, s.TID, 10)
	b = append(b, `,"ts":`...)
	b = strconv.AppendInt(b, s.Start.Sub(epoch).Microseconds(), 10)
	b = append(b, `,"dur":`...)
	dur := s.Dur.Microseconds()
	if dur < 0 {
		dur = 0
	}
	b = strconv.AppendInt(b, dur, 10)
	b = append(b, `,"cat":`...)
	b = appendJSONString(b, s.Cat)
	b = append(b, `,"name":`...)
	b = appendJSONString(b, s.Name)
	b = append(b, `,"args":{"span_id":`...)
	b = appendJSONString(b, fmt.Sprintf("%016x", uint64(s.ID)))
	if s.Parent != 0 {
		b = append(b, `,"parent_id":`...)
		b = appendJSONString(b, fmt.Sprintf("%016x", uint64(s.Parent)))
	}
	for _, a := range s.Attrs {
		b = append(b, ',')
		b = appendJSONString(b, a.Key)
		b = append(b, ':')
		b = appendJSONString(b, a.Val)
	}
	b = append(b, '}', '}')
	return b
}

const hexDigits = "0123456789abcdef"

// appendJSONString appends s as a JSON string literal. Quotes,
// backslashes, and control characters are escaped; everything else
// (including non-ASCII UTF-8) passes through byte-for-byte, which is
// valid JSON and keeps the output stable.
func appendJSONString(b []byte, s string) []byte {
	b = append(b, '"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"' || c == '\\':
			b = append(b, '\\', c)
		case c == '\n':
			b = append(b, '\\', 'n')
		case c == '\t':
			b = append(b, '\\', 't')
		case c == '\r':
			b = append(b, '\\', 'r')
		case c < 0x20:
			b = append(b, '\\', 'u', '0', '0', hexDigits[c>>4], hexDigits[c&0xf])
		default:
			b = append(b, c)
		}
	}
	return append(b, '"')
}

// catStat accumulates the per-category rollup for Summary.
type catStat struct {
	n       int
	total   time.Duration
	max     time.Duration
	maxName string
}

// Summary writes a compact per-category rollup of the span stream:
// span count, total/mean/max virtual duration, and the name of the
// longest span. Deterministic for a deterministic span stream (ties on
// max keep the first span in merge order).
func Summary(w io.Writer, spans []Span) {
	cats := make(map[string]*catStat)
	for _, s := range spans {
		c := cats[s.Cat]
		if c == nil {
			c = &catStat{}
			cats[s.Cat] = c
		}
		c.n++
		c.total += s.Dur
		if s.Dur > c.max {
			c.max = s.Dur
			c.maxName = s.Name
		}
	}
	names := make([]string, 0, len(cats))
	for k := range cats {
		names = append(names, k)
	}
	sort.Strings(names)
	fmt.Fprintf(w, "trace: %d spans, %d categories\n", len(spans), len(names))
	for _, k := range names {
		c := cats[k]
		mean := c.total / time.Duration(c.n)
		fmt.Fprintf(w, "  %-8s n=%-6d total=%-12s mean=%-10s max=%-10s %s\n",
			k, c.n, c.total.Round(time.Microsecond), mean.Round(time.Microsecond),
			c.max.Round(time.Microsecond), c.maxName)
	}
}

// Summary writes the tracer's per-category rollup.
func (t *Tracer) Summary(w io.Writer) {
	Summary(w, t.Spans())
}
