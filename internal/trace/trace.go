// Package trace is a zero-dependency, deterministic span tracer for the
// study pipeline. Spans carry *virtual* timestamps from the per-site
// vclock timelines, and span IDs are derived purely from stable
// coordinates — (site rank, fetch, attempt, exchange index) — so the
// exported trace is byte-identical at any worker count, matching the
// pipeline's determinism invariant. Wall-clock time never enters a span
// on the study path; the only wall-clocked spans are hisparserve's
// request spans, which are operational telemetry recorded through the
// bounded Ring and never part of a study artifact.
//
// The model is deliberately small: complete spans only (Chrome "X"
// phase events), string-valued attributes, and a three-level object
// graph — per-site Recorders filled concurrently without locks, merged
// into the shared Tracer by core's fold goroutine in site-rank order.
package trace

import (
	"fmt"
	"hash/fnv"
	"sync"
	"time"
)

// SpanID is a stable 64-bit span identifier derived from the span's
// logical coordinates, never from allocation order or time.
type SpanID uint64

// DeriveID hashes the given coordinate parts (FNV-1a, unit-separator
// joined) into a SpanID. Equal parts always yield the same ID, on any
// machine, in any run.
func DeriveID(parts ...string) SpanID {
	h := fnv.New64a()
	for i, p := range parts {
		if i > 0 {
			h.Write(idSep)
		}
		h.Write([]byte(p))
	}
	return SpanID(h.Sum64())
}

var idSep = []byte{0x1f}

// SiteSpanID is the ID of the root span for one site, keyed by its
// Hispar rank. core creates the span; browser parents under it.
func SiteSpanID(rank int) SpanID {
	return DeriveID("site", fmt.Sprintf("%d", rank))
}

// Attr is one key/value annotation on a span. Values are strings so the
// Chrome exporter stays trivially deterministic; callers format numbers
// themselves (strconv, never %v on floats they did not round).
type Attr struct {
	Key, Val string
}

// Span is one completed interval on a timeline. Start is virtual time;
// Dur is its virtual duration. TID selects the Chrome trace row (core
// uses site-index+1, fold metadata uses 0).
type Span struct {
	ID     SpanID
	Parent SpanID
	Name   string
	Cat    string
	TID    int64
	Start  time.Time
	Dur    time.Duration
	Attrs  []Attr
}

// Detail selects how deep the instrumentation records. Each level
// includes the ones above it.
type Detail int

const (
	// DetailSites records study, shard, and per-site spans only.
	DetailSites Detail = iota
	// DetailLoads adds one span per page-load attempt and retry backoff.
	DetailLoads
	// DetailFetches adds one span per HTTP exchange (HAR entry).
	DetailFetches
	// DetailPhases adds DNS/connect/TLS/send/wait/receive sub-spans
	// inside every exchange.
	DetailPhases
)

// ParseDetail maps the -trace-detail flag spelling to a Detail level.
func ParseDetail(s string) (Detail, error) {
	switch s {
	case "sites":
		return DetailSites, nil
	case "loads":
		return DetailLoads, nil
	case "fetches":
		return DetailFetches, nil
	case "phases":
		return DetailPhases, nil
	}
	return 0, fmt.Errorf("trace: unknown detail %q (want sites|loads|fetches|phases)", s)
}

func (d Detail) String() string {
	switch d {
	case DetailSites:
		return "sites"
	case DetailLoads:
		return "loads"
	case DetailFetches:
		return "fetches"
	case DetailPhases:
		return "phases"
	}
	return fmt.Sprintf("detail(%d)", int(d))
}

// Recorder collects the spans of one site (one worker's current job).
// It is not safe for concurrent use and never needs to be: exactly one
// worker owns it until the fold merges it. A nil Recorder is a valid
// no-op sink, so un-traced runs pay only nil checks.
type Recorder struct {
	detail Detail
	tid    int64
	site   int
	parent SpanID
	base   time.Time
	spans  []Span
}

// Detail reports the recording depth (DetailSites for a nil Recorder).
func (r *Recorder) Detail() Detail {
	if r == nil {
		return DetailSites
	}
	return r.detail
}

// Site returns the site rank this recorder is scoped to.
func (r *Recorder) Site() int {
	if r == nil {
		return 0
	}
	return r.site
}

// SetParent sets the span ID new spans should default-parent under.
func (r *Recorder) SetParent(id SpanID) {
	if r != nil {
		r.parent = id
	}
}

// Parent returns the current default parent span ID.
func (r *Recorder) Parent() SpanID {
	if r == nil {
		return 0
	}
	return r.parent
}

// SetBase anchors the recorder's timeline: instrumentation that only
// knows offsets (browser HAR entries are relative to navStart) adds
// them to Base. core sets it to the site clock's virtual now before
// each load attempt.
func (r *Recorder) SetBase(t time.Time) {
	if r != nil {
		r.base = t
	}
}

// Base returns the timeline anchor set by SetBase.
func (r *Recorder) Base() time.Time {
	if r == nil {
		return time.Time{}
	}
	return r.base
}

// Record appends a span, stamping the recorder's TID.
func (r *Recorder) Record(s Span) {
	if r == nil {
		return
	}
	s.TID = r.tid
	r.spans = append(r.spans, s)
}

// Len reports how many spans have been recorded.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	return len(r.spans)
}

// Tracer owns the merged span stream of one run. Merge order is the
// caller's responsibility: core's fold merges site recorders in rank
// order, which is what makes the export byte-identical at any worker
// count.
type Tracer struct {
	mu     sync.Mutex
	detail Detail
	spans  []Span
}

// New returns a Tracer recording at the given detail level.
func New(detail Detail) *Tracer {
	return &Tracer{detail: detail}
}

// Recorder hands out a per-site recorder, or nil when the tracer itself
// is nil (tracing disabled).
func (t *Tracer) Recorder(tid int64, site int) *Recorder {
	if t == nil {
		return nil
	}
	return &Recorder{detail: t.detail, tid: tid, site: site}
}

// Merge appends a recorder's spans to the tracer. Safe for a nil tracer
// or nil recorder.
func (t *Tracer) Merge(r *Recorder) {
	if t == nil || r == nil || len(r.spans) == 0 {
		return
	}
	t.mu.Lock()
	t.spans = append(t.spans, r.spans...)
	t.mu.Unlock()
}

// Len reports the number of merged spans.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// Spans returns a copy of the merged span stream in merge order.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, len(t.spans))
	copy(out, t.spans)
	return out
}

// Ring is a bounded, concurrency-safe span buffer for long-running
// servers: the newest n spans win. hisparserve records request spans
// here and serves them at /debug/tracez.
type Ring struct {
	mu    sync.Mutex
	buf   []Span
	next  int
	total uint64
}

// NewRing returns a ring holding at most n spans (n < 1 is clamped
// to 1).
func NewRing(n int) *Ring {
	if n < 1 {
		n = 1
	}
	return &Ring{buf: make([]Span, 0, n)}
}

// Record appends a span, evicting the oldest when full, and returns the
// span's sequence number (total spans ever recorded, 1-based). Safe for
// a nil ring, which reports 0.
func (r *Ring) Record(s Span) uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.total++
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, s)
	} else {
		r.buf[r.next] = s
		r.next = (r.next + 1) % cap(r.buf)
	}
	return r.total
}

// Total reports how many spans were ever recorded (including evicted).
func (r *Ring) Total() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Snapshot returns the retained spans, oldest first.
func (r *Ring) Snapshot() []Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Span, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}
