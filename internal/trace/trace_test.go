package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

var t0 = time.Date(2020, 3, 12, 0, 0, 0, 0, time.UTC)

func sampleSpans() []Span {
	return []Span{
		{ID: SiteSpanID(1), Name: "site a.com", Cat: "site", TID: 1,
			Start: t0, Dur: 3 * time.Second,
			Attrs: []Attr{{"rank", "1"}, {"domain", "a.com"}}},
		{ID: DeriveID("load", "1", "http://a.com/", "0", "1"), Parent: SiteSpanID(1),
			Name: "load http://a.com/", Cat: "load", TID: 1,
			Start: t0.Add(time.Second), Dur: 800 * time.Millisecond,
			Attrs: []Attr{{"url", "http://a.com/\"x\"\n"}}},
	}
}

func TestDeriveIDStable(t *testing.T) {
	a := DeriveID("site", "42")
	b := DeriveID("site", "42")
	if a != b {
		t.Fatalf("DeriveID not stable: %x vs %x", a, b)
	}
	if a == DeriveID("site", "43") {
		t.Fatalf("distinct coordinates collided")
	}
	// The separator must keep ("ab","c") and ("a","bc") apart.
	if DeriveID("ab", "c") == DeriveID("a", "bc") {
		t.Fatalf("part boundaries not separated")
	}
	if SiteSpanID(7) != DeriveID("site", "7") {
		t.Fatalf("SiteSpanID disagrees with DeriveID")
	}
}

func TestNilSafety(t *testing.T) {
	var tr *Tracer
	rec := tr.Recorder(1, 0)
	if rec != nil {
		t.Fatalf("nil tracer must hand out nil recorders")
	}
	rec.Record(Span{Name: "x"}) // must not panic
	rec.SetParent(1)
	rec.SetBase(t0)
	if rec.Len() != 0 || rec.Detail() != DetailSites {
		t.Fatalf("nil recorder not a no-op")
	}
	tr.Merge(rec)
	if tr.Len() != 0 {
		t.Fatalf("nil tracer Len = %d", tr.Len())
	}
	var ring *Ring
	if seq := ring.Record(Span{}); seq != 0 {
		t.Fatalf("nil ring Record = %d", seq)
	}
}

func TestRecorderStampsTID(t *testing.T) {
	tr := New(DetailPhases)
	rec := tr.Recorder(7, 3)
	rec.Record(Span{Name: "x"})
	tr.Merge(rec)
	spans := tr.Spans()
	if len(spans) != 1 || spans[0].TID != 7 {
		t.Fatalf("want 1 span with tid 7, got %+v", spans)
	}
	if rec.Detail() != DetailPhases || rec.Site() != 3 {
		t.Fatalf("recorder did not inherit detail/site")
	}
}

// TestChromeJSONValid round-trips the export through encoding/json and
// checks the trace-event fields Perfetto requires.
func TestChromeJSONValid(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeJSON(&buf, sampleSpans()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Ph   string            `json:"ph"`
			Pid  int               `json:"pid"`
			Tid  int64             `json:"tid"`
			Ts   *int64            `json:"ts"`
			Dur  *int64            `json:"dur"`
			Name string            `json:"name"`
			Cat  string            `json:"cat"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, buf.String())
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	if len(doc.TraceEvents) != 2 {
		t.Fatalf("want 2 events, got %d", len(doc.TraceEvents))
	}
	ev := doc.TraceEvents[1]
	if ev.Ph != "X" || ev.Pid != 1 || ev.Tid != 1 {
		t.Fatalf("bad event header: %+v", ev)
	}
	if ev.Ts == nil || *ev.Ts != 1_000_000 {
		t.Fatalf("ts = %v, want 1000000", ev.Ts)
	}
	if ev.Dur == nil || *ev.Dur != 800_000 {
		t.Fatalf("dur = %v, want 800000", ev.Dur)
	}
	if ev.Args["url"] != "http://a.com/\"x\"\n" {
		t.Fatalf("escaped attr did not round-trip: %q", ev.Args["url"])
	}
	if ev.Args["span_id"] == "" || ev.Args["parent_id"] == "" {
		t.Fatalf("missing span ids: %v", ev.Args)
	}
}

// TestChromeJSONDeterministic: identical span streams must export
// byte-identical documents.
func TestChromeJSONDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := WriteChromeJSON(&a, sampleSpans()); err != nil {
		t.Fatal(err)
	}
	if err := WriteChromeJSON(&b, sampleSpans()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("export not deterministic")
	}
}

func TestJSONStringEscaping(t *testing.T) {
	for in, want := range map[string]string{
		"plain":       `"plain"`,
		`q"b\`:        `"q\"b\\"`,
		"n\nt\tr\r":   `"n\nt\tr\r"`,
		"\x00\x1f":    "\"\\u0000\\u001f\"",
		"unicode é ✓": "\"unicode é ✓\"",
	} {
		if got := string(appendJSONString(nil, in)); got != want {
			t.Errorf("escape(%q) = %s, want %s", in, got, want)
		}
	}
}

func TestSummary(t *testing.T) {
	tr := New(DetailFetches)
	rec := tr.Recorder(1, 0)
	for _, s := range sampleSpans() {
		rec.Record(s)
	}
	tr.Merge(rec)
	var buf bytes.Buffer
	tr.Summary(&buf)
	out := buf.String()
	if !strings.Contains(out, "2 spans, 2 categories") {
		t.Fatalf("summary header wrong:\n%s", out)
	}
	if !strings.Contains(out, "site") || !strings.Contains(out, "load http://a.com/") {
		t.Fatalf("summary missing categories or max-span name:\n%s", out)
	}
	var again bytes.Buffer
	tr.Summary(&again)
	if again.String() != out {
		t.Fatalf("summary not deterministic")
	}
}

func TestRingEviction(t *testing.T) {
	r := NewRing(3)
	for i := 0; i < 5; i++ {
		seq := r.Record(Span{Name: string(rune('a' + i))})
		if seq != uint64(i+1) {
			t.Fatalf("seq = %d, want %d", seq, i+1)
		}
	}
	if r.Total() != 5 {
		t.Fatalf("total = %d", r.Total())
	}
	got := r.Snapshot()
	if len(got) != 3 || got[0].Name != "c" || got[2].Name != "e" {
		t.Fatalf("snapshot = %+v", got)
	}
}

func TestParseDetail(t *testing.T) {
	for _, d := range []Detail{DetailSites, DetailLoads, DetailFetches, DetailPhases} {
		got, err := ParseDetail(d.String())
		if err != nil || got != d {
			t.Fatalf("ParseDetail(%q) = %v, %v", d.String(), got, err)
		}
	}
	if _, err := ParseDetail("bogus"); err == nil {
		t.Fatalf("ParseDetail accepted bogus")
	}
}
