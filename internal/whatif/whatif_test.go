package whatif

import (
	"testing"
	"time"

	"repro/internal/hispar"
	"repro/internal/search"
	"repro/internal/toplist"
	"repro/internal/webgen"
)

func fixture(t *testing.T) (*Evaluator, *hispar.List) {
	t.Helper()
	u := toplist.NewUniverse(toplist.Config{Seed: 71, Size: 500})
	entries := u.Top(30)
	seeds := make([]webgen.SiteSeed, len(entries))
	for i, e := range entries {
		seeds[i] = webgen.SiteSeed{Domain: e.Domain, Rank: e.Rank}
	}
	web := webgen.Generate(webgen.Config{Seed: 71, Sites: seeds})
	eng := search.New(web, search.Config{EnglishOnly: true})
	list, _, err := hispar.Build(eng, entries, hispar.BuildConfig{
		Sites: 16, URLsPerSite: 5, MinResults: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	return New(web, Config{Seed: 71, Fetches: 2}), list
}

func TestScenarioRegistry(t *testing.T) {
	if len(Scenarios()) < 6 {
		t.Fatalf("scenarios = %d", len(Scenarios()))
	}
	for _, s := range Scenarios() {
		if s.Name == "" || s.Description == "" {
			t.Errorf("incomplete scenario %+v", s)
		}
		got, ok := ScenarioByName(s.Name)
		if !ok || got.Name != s.Name {
			t.Errorf("lookup failed for %s", s.Name)
		}
	}
	if _, ok := ScenarioByName("nope"); ok {
		t.Error("bogus scenario resolved")
	}
}

func TestQUICSpeedsUpEveryPage(t *testing.T) {
	ev, list := fixture(t)
	sc, _ := ScenarioByName("quic")
	res, err := ev.Evaluate(list, sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pages) == 0 {
		t.Fatal("no pages evaluated")
	}
	faster := 0
	for _, p := range res.Pages {
		if p.Baseline <= 0 || p.Scenario <= 0 {
			t.Fatalf("bad timings %+v", p)
		}
		if p.Scenario <= p.Baseline {
			faster++
		}
	}
	if faster < len(res.Pages)*3/4 {
		t.Errorf("QUIC sped up only %d/%d pages", faster, len(res.Pages))
	}
	if res.MedianImprovement(true) <= 0 || res.MedianImprovement(false) <= 0 {
		t.Error("QUIC should improve both page types")
	}
}

func TestPerfectCDNFavorsLanding(t *testing.T) {
	ev, list := fixture(t)
	sc, _ := ScenarioByName("perfect-cdn")
	res, err := ev.Evaluate(list, sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.MedianImprovement(false) < -0.02 {
		t.Errorf("perfect CDN should not slow internal pages: %.3f", res.MedianImprovement(false))
	}
	// The Vesuna-style asymmetry: landing pages, already warm, gain more
	// headroom... actually landing pages gain more because more of their
	// bytes ride the CDN. The asymmetry must not be strongly negative.
	if res.Asymmetry() < -0.05 {
		t.Errorf("perfect-CDN asymmetry strongly favours internal pages: %+.3f", res.Asymmetry())
	}
}

func TestNoCDNHurtsLandingMore(t *testing.T) {
	ev, list := fixture(t)
	sc, _ := ScenarioByName("no-cdn")
	res, err := ev.Evaluate(list, sc)
	if err != nil {
		t.Fatal(err)
	}
	// Landing pages lean on warm edges; losing them must hurt landing
	// pages at least as much as internal pages (§5.1).
	if res.Asymmetry() > 0.02 {
		t.Errorf("no-cdn asymmetry %+.3f; landing should lose more", res.Asymmetry())
	}
}

func TestServerPushImprovesOnLoad(t *testing.T) {
	ev, list := fixture(t)
	sc, _ := ScenarioByName("push")
	res, err := ev.Evaluate(list, sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.MedianLoadImprovement(true) <= 0 {
		t.Errorf("push should cut landing onLoad: %.3f", res.MedianLoadImprovement(true))
	}
	if res.MedianLoadImprovement(false) <= 0 {
		t.Errorf("push should cut internal onLoad: %.3f", res.MedianLoadImprovement(false))
	}
}

func TestPageDeltaMath(t *testing.T) {
	p := PageDelta{Baseline: 2 * time.Second, Scenario: time.Second,
		BaselineLoad: 4 * time.Second, ScenarioLoad: 3 * time.Second}
	if p.Improvement() != 0.5 {
		t.Errorf("Improvement = %v", p.Improvement())
	}
	if p.LoadImprovement() != 0.25 {
		t.Errorf("LoadImprovement = %v", p.LoadImprovement())
	}
	if (PageDelta{}).Improvement() != 0 {
		t.Error("zero baseline should yield 0")
	}
}
