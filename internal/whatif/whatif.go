// Package whatif evaluates the paper's implications (§5.1–§5.6) as
// counterfactuals: re-run the same page loads under a proposed
// optimization — TLS 1.3, QUIC, HTTP/2 multiplexing, server push,
// perfect preconnect hints, a perfect CDN hit ratio, or no CDN at all —
// and compare how much landing pages and internal pages each improve.
//
// The paper's warning is that optimizations designed and evaluated on
// landing pages overstate their benefit for the rest of the web:
// handshake-reducing transports help the page type with more origins and
// handshakes (landing, §5.6); cache improvements help the page type
// whose objects are popular (landing, §5.1); dependency-aware delivery
// helps the page type with the deeper graph (landing, §5.4). This
// package measures exactly those asymmetries.
package whatif

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/browser"
	"repro/internal/cdn"
	"repro/internal/dnssim"
	"repro/internal/hispar"
	"repro/internal/stats"
	"repro/internal/webgen"
)

// Scenario is one counterfactual configuration.
type Scenario struct {
	Name        string
	Description string
	// Protocol toggles browser-level optimizations.
	Protocol browser.Protocol
	// WarmthRate/WarmthCeiling override the CDN warmth curve; zero means
	// the baseline values.
	WarmthRate    float64
	WarmthCeiling float64
}

// Scenarios returns the §5/§6-motivated set.
func Scenarios() []Scenario {
	return []Scenario{
		{
			Name:        "tls13",
			Description: "TLS 1.3 everywhere: 1-RTT cryptographic handshakes (§5.6)",
			Protocol:    browser.Protocol{ForceTLS13: true},
		},
		{
			Name:        "quic",
			Description: "QUIC: transport+crypto in one round trip (§5.6)",
			Protocol:    browser.Protocol{QUIC: true},
		},
		{
			Name:        "h2",
			Description: "HTTP/2: one multiplexed connection per origin",
			Protocol:    browser.Protocol{H2Multiplex: true},
		},
		{
			Name:        "push",
			Description: "Server push / dependency-aware delivery (Polaris/Vroom family, §5.4)",
			Protocol:    browser.Protocol{ServerPush: true},
		},
		{
			Name:        "preconnect",
			Description: "Perfect preconnect hints for every origin (§5.5)",
			Protocol:    browser.Protocol{PreconnectAll: true},
		},
		{
			Name:        "perfect-cdn",
			Description: "Every CDN request is an edge hit (§5.1, the Vesuna-style caching bound)",
			WarmthRate:  1e9,
		},
		{
			Name:          "no-cdn",
			Description:   "CDN edges always miss (cold caches everywhere)",
			WarmthRate:    1e-9,
			WarmthCeiling: 1e-9,
		},
	}
}

// ScenarioByName returns the named scenario.
func ScenarioByName(name string) (Scenario, bool) {
	for _, s := range Scenarios() {
		if s.Name == name {
			return s, true
		}
	}
	return Scenario{}, false
}

// Config parameterizes an evaluation.
type Config struct {
	Seed int64
	// Fetches per page per configuration (median taken). Default 3.
	Fetches int
	// BaselineWarmthRate/Ceiling are the study defaults (2.2, 0.97).
	BaselineWarmthRate    float64
	BaselineWarmthCeiling float64
}

func (c Config) withDefaults() Config {
	if c.Fetches <= 0 {
		c.Fetches = 3
	}
	if c.BaselineWarmthRate <= 0 {
		c.BaselineWarmthRate = 2.2
	}
	if c.BaselineWarmthCeiling <= 0 {
		c.BaselineWarmthCeiling = 0.97
	}
	return c
}

// PageDelta is one page's baseline-vs-scenario timing pairs.
type PageDelta struct {
	URL       string
	IsLanding bool
	// First paint (the paper's PLT) and onLoad (all objects done): some
	// optimizations act on the critical rendering path, others — server
	// push especially — on the deep dependency tail that only onLoad
	// sees.
	Baseline     time.Duration
	Scenario     time.Duration
	BaselineLoad time.Duration
	ScenarioLoad time.Duration
}

// Improvement returns the relative PLT (first paint) reduction
// (positive = faster).
func (p PageDelta) Improvement() float64 {
	if p.Baseline <= 0 {
		return 0
	}
	return 1 - float64(p.Scenario)/float64(p.Baseline)
}

// LoadImprovement returns the relative onLoad reduction.
func (p PageDelta) LoadImprovement() float64 {
	if p.BaselineLoad <= 0 {
		return 0
	}
	return 1 - float64(p.ScenarioLoad)/float64(p.BaselineLoad)
}

// Result summarizes one scenario over a page set.
type Result struct {
	Scenario Scenario
	Pages    []PageDelta
}

// MedianImprovement returns the median relative PLT reduction for one
// page type.
func (r *Result) MedianImprovement(landing bool) float64 {
	var xs []float64
	for _, p := range r.Pages {
		if p.IsLanding == landing {
			xs = append(xs, p.Improvement())
		}
	}
	return stats.Median(xs)
}

// MedianLoadImprovement returns the median relative onLoad reduction for
// one page type.
func (r *Result) MedianLoadImprovement(landing bool) float64 {
	var xs []float64
	for _, p := range r.Pages {
		if p.IsLanding == landing {
			xs = append(xs, p.LoadImprovement())
		}
	}
	return stats.Median(xs)
}

// LoadAsymmetry returns the landing-minus-internal onLoad gain.
func (r *Result) LoadAsymmetry() float64 {
	return r.MedianLoadImprovement(true) - r.MedianLoadImprovement(false)
}

// Asymmetry returns landing improvement minus internal improvement (the
// evaluation bias a landing-page-only study would never see).
func (r *Result) Asymmetry() float64 {
	return r.MedianImprovement(true) - r.MedianImprovement(false)
}

// Evaluator re-runs page loads under scenarios.
type Evaluator struct {
	cfg Config
	web *webgen.Web
}

// New creates an evaluator over a web snapshot.
func New(web *webgen.Web, cfg Config) *Evaluator {
	return &Evaluator{cfg: cfg.withDefaults(), web: web}
}

// browserFor builds a browser for a scenario ("" warmth = baseline).
func (e *Evaluator) browserFor(p browser.Protocol, rate, ceiling float64) (*browser.Browser, error) {
	if rate == 0 {
		rate = e.cfg.BaselineWarmthRate
	}
	if ceiling == 0 {
		ceiling = e.cfg.BaselineWarmthCeiling
	}
	resolver := dnssim.NewResolver(dnssim.ResolverConfig{
		Name: "isp", Seed: e.cfg.Seed, WarmQueryRate: 0.8,
	}, e.web.Authority(), nil)
	warm := cdn.PopularityWarmth(rate, ceiling)
	seed := e.cfg.Seed
	return browser.New(browser.Config{
		Seed:     seed,
		Resolver: resolver,
		Protocol: p,
		CDNFactory: func() *cdn.Network {
			return cdn.NewNetwork(1<<14, warm, seed)
		},
	})
}

// medianTimings loads the model cfg.Fetches times and returns the median
// first paint and onLoad.
func medianTimings(b *browser.Browser, m *webgen.PageModel, fetches int) (fp, onload time.Duration, err error) {
	fps := make([]time.Duration, 0, fetches)
	loads := make([]time.Duration, 0, fetches)
	for f := 0; f < fetches; f++ {
		log, err := b.Load(m, f)
		if err != nil {
			return 0, 0, err
		}
		fps = append(fps, log.Page.Timings.FirstPaint)
		loads = append(loads, log.Page.Timings.OnLoad)
	}
	sort.Slice(fps, func(i, j int) bool { return fps[i] < fps[j] })
	sort.Slice(loads, func(i, j int) bool { return loads[i] < loads[j] })
	return fps[len(fps)/2], loads[len(loads)/2], nil
}

// Evaluate runs one scenario over the list's pages (landing + internal)
// against the baseline configuration.
func (e *Evaluator) Evaluate(list *hispar.List, sc Scenario) (*Result, error) {
	base, err := e.browserFor(browser.Protocol{}, 0, 0)
	if err != nil {
		return nil, err
	}
	variant, err := e.browserFor(sc.Protocol, sc.WarmthRate, sc.WarmthCeiling)
	if err != nil {
		return nil, err
	}
	res := &Result{Scenario: sc}
	for _, set := range list.Sets {
		urls := append([]string{set.Landing}, set.Internal...)
		for i, u := range urls {
			page, ok := e.web.PageByURL(u)
			if !ok {
				return nil, fmt.Errorf("whatif: %s not in web snapshot", u)
			}
			m := page.Build()
			fp0, ol0, err := medianTimings(base, m, e.cfg.Fetches)
			if err != nil {
				return nil, err
			}
			fp1, ol1, err := medianTimings(variant, m, e.cfg.Fetches)
			if err != nil {
				return nil, err
			}
			res.Pages = append(res.Pages, PageDelta{
				URL:          u,
				IsLanding:    i == 0,
				Baseline:     fp0,
				Scenario:     fp1,
				BaselineLoad: ol0,
				ScenarioLoad: ol1,
			})
		}
	}
	return res, nil
}

// EvaluateAll runs every scenario.
func (e *Evaluator) EvaluateAll(list *hispar.List) ([]*Result, error) {
	var out []*Result
	for _, sc := range Scenarios() {
		r, err := e.Evaluate(list, sc)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}
