package simnet

import (
	"testing"
	"time"
)

func TestRTTOrdering(t *testing.T) {
	m := New(Config{Seed: 1, JitterFrac: 0.001})
	edge := m.RTT(LocEdge)
	east := m.RTT(LocUSEast)
	asia := m.RTT(LocAsia)
	if !(edge < east && east < asia) {
		t.Errorf("RTT ordering violated: edge=%v east=%v asia=%v", edge, east, asia)
	}
	if unknown := m.RTT(Loc(99)); unknown <= 0 {
		t.Errorf("unknown loc RTT = %v", unknown)
	}
}

func TestHandshakeCosts(t *testing.T) {
	m := New(Config{Seed: 2, JitterFrac: 0.001})
	rtt := 100 * time.Millisecond
	c := m.ConnectTime(rtt)
	if c < 90*time.Millisecond || c > 110*time.Millisecond {
		t.Errorf("ConnectTime = %v, want ~1 RTT", c)
	}
	tls12 := m.TLSTime(rtt, false)
	tls13 := m.TLSTime(rtt, true)
	if tls12 < 200*time.Millisecond {
		t.Errorf("TLS 1.2 = %v, want ~2 RTT", tls12)
	}
	if tls13 >= tls12 {
		t.Errorf("TLS 1.3 (%v) must be cheaper than 1.2 (%v)", tls13, tls12)
	}
}

func TestReceiveTimeSlowStartVsBandwidth(t *testing.T) {
	m := New(Config{Seed: 3, ConnBandwidth: 10e6})
	rtt := 80 * time.Millisecond
	small := m.ReceiveTime(5_000, rtt)
	big := m.ReceiveTime(5_000_000, rtt)
	if small >= big {
		t.Errorf("small %v >= big %v", small, big)
	}
	// A 5 MB object at 10 Mb/s is bandwidth-bound: ~4 s.
	if big < 3*time.Second || big > 6*time.Second {
		t.Errorf("big transfer = %v, want ~4s", big)
	}
	// A tiny object is RTT-bound, not instantaneous.
	if small <= 0 {
		t.Errorf("small transfer = %v", small)
	}
	if m.ReceiveTime(0, rtt) != 0 {
		t.Error("zero size should cost nothing")
	}
}

func TestReceiveTimeMonotonicInSize(t *testing.T) {
	m := New(Config{Seed: 4})
	rtt := 50 * time.Millisecond
	prev := time.Duration(0)
	for _, size := range []int64{1_000, 20_000, 200_000, 2_000_000, 20_000_000} {
		got := m.ReceiveTime(size, rtt)
		if got < prev {
			t.Errorf("ReceiveTime(%d) = %v < previous %v", size, got, prev)
		}
		prev = got
	}
}

func TestThinkTimesPositive(t *testing.T) {
	m := New(Config{Seed: 5})
	for i := 0; i < 100; i++ {
		if m.OriginThink() <= 0 || m.StaticThink() <= 0 || m.SendTime() <= 0 {
			t.Fatal("non-positive think/send time")
		}
	}
}

func TestWaitTimeComposition(t *testing.T) {
	m := New(Config{Seed: 6, JitterFrac: 0.001})
	w := m.WaitTime(50*time.Millisecond, 30*time.Millisecond, 100*time.Millisecond)
	if w < 150*time.Millisecond || w > 220*time.Millisecond {
		t.Errorf("WaitTime = %v, want ~180ms", w)
	}
}

func TestLocString(t *testing.T) {
	if LocAsia.String() != "asia" || Loc(99).String() != "unknown" {
		t.Error("Loc names wrong")
	}
}
