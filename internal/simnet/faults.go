// Fault injection: the failure model layered on top of the transport
// timing model. Real measurement platforms treat per-page failure as the
// normal case — loads hang, transfers die mid-flight, lossy paths
// retransmit — so the simulator can inject those events with configurable
// per-origin probabilities. All draws come from a dedicated RNG so that a
// zero-rate configuration consumes no entropy and stays byte-identical to
// a fault-free run.
package simnet

import (
	"time"
)

// Fault classifies an injected transport failure for one request.
type Fault int

// Fault kinds.
const (
	// FaultNone: the request proceeds normally.
	FaultNone Fault = iota
	// FaultTimeout: the request is sent but no response ever arrives; the
	// client gives up after FaultConfig.Timeout of virtual time.
	FaultTimeout
	// FaultTruncated: the response dies partway through the body transfer
	// (connection reset mid-download).
	FaultTruncated
)

// String returns a short fault-class name.
func (f Fault) String() string {
	switch f {
	case FaultNone:
		return "none"
	case FaultTimeout:
		return "timeout"
	case FaultTruncated:
		return "truncated"
	default:
		return "unknown"
	}
}

// FaultRates is a set of per-request failure probabilities.
type FaultRates struct {
	// Timeout is the probability a request hangs until the fault timeout.
	Timeout float64
	// Truncate is the probability the body transfer is cut short.
	Truncate float64
	// Loss is the probability a request observes packet loss and pays a
	// retransmission delay (a slowdown, not a failure).
	Loss float64
}

func (r FaultRates) zero() bool { return r.Timeout <= 0 && r.Truncate <= 0 && r.Loss <= 0 }

// FaultConfig parameterizes fault injection for a Model.
type FaultConfig struct {
	// Rates is the base per-request probability set.
	Rates FaultRates
	// PerOrigin overrides Rates for specific origins, keyed by
	// "scheme://host". An entry fully replaces the base rates for that
	// origin (zero-valued fields disable that fault there).
	PerOrigin map[string]FaultRates
	// Timeout is how long, in virtual time, a hung request wastes before
	// the client abandons it. Default 30s (browser-era request timeout).
	Timeout time.Duration
}

// Enabled reports whether any fault can ever fire.
func (c FaultConfig) Enabled() bool {
	if !c.Rates.zero() {
		return true
	}
	for _, r := range c.PerOrigin {
		if !r.zero() {
			return true
		}
	}
	return false
}

func (c FaultConfig) withDefaults() FaultConfig {
	if c.Timeout <= 0 {
		c.Timeout = 30 * time.Second
	}
	return c
}

// ratesFor returns the effective rates for an origin.
func (m *Model) ratesFor(origin string) FaultRates {
	if r, ok := m.cfg.Faults.PerOrigin[origin]; ok {
		return r
	}
	return m.cfg.Faults.Rates
}

// DrawFault decides whether the next request to origin fails, and how.
// It consumes exactly one draw per call when fault injection is enabled
// (and none otherwise), keeping fault-free timing byte-identical and
// faulted runs deterministic under a fixed seed.
func (m *Model) DrawFault(origin string) Fault {
	if m.frng == nil {
		return FaultNone
	}
	r := m.ratesFor(origin)
	u := m.frng.Float64()
	switch {
	case u < r.Timeout:
		return FaultTimeout
	case u < r.Timeout+r.Truncate:
		return FaultTruncated
	default:
		return FaultNone
	}
}

// FaultTimeout returns the virtual time a hung request wastes before the
// client gives up.
func (m *Model) FaultTimeout() time.Duration { return m.cfg.Faults.Timeout }

// TruncateFrac returns the fraction of the body that arrived before a
// truncated transfer died: uniform in [0.1, 0.9).
func (m *Model) TruncateFrac() float64 {
	if m.frng == nil {
		return 1
	}
	return 0.1 + 0.8*m.frng.Float64()
}

// RetransmitDelay returns the extra wait a lossy path adds to a request:
// with probability Loss the request loses a packet and pays one
// retransmission timeout (RTO = max(1s, 2·RTT), RFC 6298's floor).
func (m *Model) RetransmitDelay(origin string, rtt time.Duration) time.Duration {
	if m.frng == nil {
		return 0
	}
	r := m.ratesFor(origin)
	if r.Loss <= 0 {
		return 0
	}
	if m.frng.Float64() >= r.Loss {
		return 0
	}
	rto := 2 * rtt
	if rto < time.Second {
		rto = time.Second
	}
	return rto
}
