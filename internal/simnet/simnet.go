// Package simnet models transport-level timing: round-trip times between
// the measurement vantage point and server locations, TCP and TLS
// handshake costs, request/response latency, and transfer times with a
// simplified TCP slow-start. The page-load engine composes these into HAR
// timing phases (blocked/dns/connect/ssl/send/wait/receive).
//
// Everything is expressed in virtual time; nothing here sleeps.
package simnet

import (
	"math"
	"math/rand"
	"time"
)

// Loc is a coarse server location used by the RTT model.
type Loc int

// Locations. The vantage point of the study is the US (the paper fixes
// the search locale and measures from a single US vantage, §3/§A).
const (
	LocUSEast Loc = iota
	LocUSWest
	LocEurope
	LocAsia
	LocSouthAmerica
	LocOceania
	LocEdge // a CDN edge near the vantage point
)

// String returns a short location name.
func (l Loc) String() string {
	switch l {
	case LocUSEast:
		return "us-east"
	case LocUSWest:
		return "us-west"
	case LocEurope:
		return "europe"
	case LocAsia:
		return "asia"
	case LocSouthAmerica:
		return "south-america"
	case LocOceania:
		return "oceania"
	case LocEdge:
		return "edge"
	default:
		return "unknown"
	}
}

// baseRTT is the round-trip time from the US-East vantage point.
var baseRTT = map[Loc]time.Duration{
	LocUSEast:       18 * time.Millisecond,
	LocUSWest:       62 * time.Millisecond,
	LocEurope:       95 * time.Millisecond,
	LocAsia:         190 * time.Millisecond,
	LocSouthAmerica: 135 * time.Millisecond,
	LocOceania:      210 * time.Millisecond,
	LocEdge:         8 * time.Millisecond,
}

// Config parameterizes the network model.
type Config struct {
	Seed int64
	// ConnBandwidth is per-connection application throughput.
	// Default 12 Mbit/s (a share of a typical residential downlink when
	// several connections are active).
	ConnBandwidth float64 // bits per second
	// MSS is the TCP segment size used by the slow-start model.
	MSS int
	// InitCwnd is the initial congestion window in segments (RFC 6928).
	InitCwnd int
	// JitterFrac is the relative standard deviation applied to RTTs.
	JitterFrac float64
	// Faults configures failure injection (see faults.go). The zero value
	// injects nothing and leaves timings byte-identical to a fault-free
	// model.
	Faults FaultConfig
}

func (c Config) withDefaults() Config {
	if c.ConnBandwidth <= 0 {
		c.ConnBandwidth = 12e6
	}
	if c.MSS <= 0 {
		c.MSS = 1460
	}
	if c.InitCwnd <= 0 {
		c.InitCwnd = 10
	}
	if c.JitterFrac <= 0 {
		c.JitterFrac = 0.10
	}
	c.Faults = c.Faults.withDefaults()
	return c
}

// Model computes transport timings. Not safe for concurrent use; create
// one per page load (they are cheap) or guard externally.
type Model struct {
	cfg Config
	rng *rand.Rand
	// frng feeds fault draws only; it is nil when fault injection is off
	// so the timing stream above never shifts.
	frng *rand.Rand
}

// New creates a Model.
func New(cfg Config) *Model {
	m := &Model{}
	m.Reset(cfg)
	return m
}

// Reset reseeds the model in place for a new page load. Rand.Seed
// reinitializes the generator state exactly as rand.NewSource does, so
// a reset model's draw streams are byte-identical to a freshly
// constructed one's — which lets the browser keep one Model per Browser
// instead of paying two ~5 KB generator allocations per load. The fault
// generator is dropped when injection is off, preserving New's
// invariant that the timing stream never shifts.
func (m *Model) Reset(cfg Config) {
	cfg = cfg.withDefaults()
	m.cfg = cfg
	if m.rng == nil {
		m.rng = rand.New(rand.NewSource(cfg.Seed ^ 0x51a7))
	} else {
		m.rng.Seed(cfg.Seed ^ 0x51a7)
	}
	switch {
	case !cfg.Faults.Enabled():
		m.frng = nil
	case m.frng == nil:
		m.frng = rand.New(rand.NewSource(cfg.Seed ^ 0xfa17))
	default:
		m.frng.Seed(cfg.Seed ^ 0xfa17)
	}
}

// RTT returns a jittered round-trip time to loc from the vantage point.
func (m *Model) RTT(loc Loc) time.Duration {
	base, ok := baseRTT[loc]
	if !ok {
		base = 100 * time.Millisecond
	}
	j := 1 + m.rng.NormFloat64()*m.cfg.JitterFrac
	if j < 0.5 {
		j = 0.5
	}
	return time.Duration(float64(base) * j)
}

// ConnectTime returns the TCP handshake cost for a connection with the
// given RTT: one round trip (SYN, SYN-ACK).
func (m *Model) ConnectTime(rtt time.Duration) time.Duration {
	return rtt + time.Duration(m.rng.NormFloat64()*float64(rtt)*0.05)
}

// TLSTime returns the TLS handshake cost: two round trips for TLS 1.2,
// one for TLS 1.3. The 2020-era web the paper measured was mid-migration;
// the caller decides per-site.
func (m *Model) TLSTime(rtt time.Duration, tls13 bool) time.Duration {
	n := 2.0
	if tls13 {
		n = 1.0
	}
	// Handshake crypto adds a little server/client compute.
	compute := time.Duration(2+m.rng.Intn(4)) * time.Millisecond
	return time.Duration(n*float64(rtt)) + compute
}

// SendTime returns the time to put the request on the wire.
func (m *Model) SendTime() time.Duration {
	return time.Duration(300+m.rng.Intn(700)) * time.Microsecond
}

// WaitTime returns the HAR wait phase: request propagation plus
// time-to-first-byte at the server (think) plus any backhaul fetch the
// server performs before it can answer (e.g. a CDN cache miss).
func (m *Model) WaitTime(rtt, think, backhaul time.Duration) time.Duration {
	w := rtt + think + backhaul
	return w + time.Duration(m.rng.NormFloat64()*float64(w)*0.08)
}

// ReceiveTime returns the body transfer time for size bytes over a
// connection with the given RTT, modelling TCP slow start: early windows
// are RTT-bound, later ones bandwidth-bound.
func (m *Model) ReceiveTime(size int64, rtt time.Duration) time.Duration {
	if size <= 0 {
		return 0
	}
	segments := float64(size) / float64(m.cfg.MSS)
	cwnd := float64(m.cfg.InitCwnd)
	rounds := 0.0
	sent := 0.0
	for sent < segments && rounds < 30 {
		sent += cwnd
		cwnd *= 2
		rounds++
	}
	slowStart := time.Duration(rounds * float64(rtt) * 0.5)
	bandwidth := time.Duration(float64(size*8) / m.cfg.ConnBandwidth * float64(time.Second))
	if bandwidth > slowStart {
		return bandwidth
	}
	return slowStart
}

// OriginThink returns a server processing time for a dynamically
// generated response (e.g. the root HTML): tens of milliseconds with a
// heavy-ish tail.
func (m *Model) OriginThink() time.Duration {
	base := 22 * time.Millisecond
	tail := time.Duration(math.Abs(m.rng.NormFloat64()) * 22 * float64(time.Millisecond))
	return base + tail
}

// StaticThink returns a server processing time for a static asset
// (web-server work plus disk/page-cache variance).
func (m *Model) StaticThink() time.Duration {
	return time.Duration(4+m.rng.Intn(15)) * time.Millisecond
}
