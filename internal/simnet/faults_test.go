package simnet

import (
	"testing"
	"time"
)

func TestFaultRatesRespected(t *testing.T) {
	m := New(Config{Seed: 9, Faults: FaultConfig{
		Rates: FaultRates{Timeout: 0.2, Truncate: 0.1},
	}})
	counts := map[Fault]int{}
	const n = 20000
	for i := 0; i < n; i++ {
		counts[m.DrawFault("https://example.com")]++
	}
	to := float64(counts[FaultTimeout]) / n
	tr := float64(counts[FaultTruncated]) / n
	if to < 0.17 || to > 0.23 {
		t.Errorf("timeout rate = %.3f, want ~0.2", to)
	}
	if tr < 0.08 || tr > 0.12 {
		t.Errorf("truncate rate = %.3f, want ~0.1", tr)
	}
}

func TestPerOriginOverride(t *testing.T) {
	m := New(Config{Seed: 9, Faults: FaultConfig{
		Rates:     FaultRates{},
		PerOrigin: map[string]FaultRates{"https://bad.example": {Timeout: 1}},
	}})
	for i := 0; i < 50; i++ {
		if f := m.DrawFault("https://bad.example"); f != FaultTimeout {
			t.Fatalf("override origin draw %d = %v, want timeout", i, f)
		}
	}
	for i := 0; i < 50; i++ {
		if f := m.DrawFault("https://good.example"); f != FaultNone {
			t.Fatalf("base-rate origin draw %d = %v, want none", i, f)
		}
	}
}

// TestZeroRatesLeaveTimingsUntouched locks the byte-identical guarantee:
// a model with the zero FaultConfig must produce the same timing stream
// as one that never heard of faults, and DrawFault must not consume
// entropy.
func TestZeroRatesLeaveTimingsUntouched(t *testing.T) {
	a := New(Config{Seed: 4})
	b := New(Config{Seed: 4, Faults: FaultConfig{Timeout: time.Minute}})
	for i := 0; i < 200; i++ {
		if b.DrawFault("https://x.example") != FaultNone {
			t.Fatal("zero-rate model injected a fault")
		}
		if b.RetransmitDelay("https://x.example", 50*time.Millisecond) != 0 {
			t.Fatal("zero-rate model injected loss delay")
		}
		if a.RTT(LocEurope) != b.RTT(LocEurope) {
			t.Fatalf("RTT stream diverged at draw %d", i)
		}
		if a.ReceiveTime(100_000, 40*time.Millisecond) != b.ReceiveTime(100_000, 40*time.Millisecond) {
			t.Fatalf("receive stream diverged at draw %d", i)
		}
	}
}

func TestFaultDefaultsAndHelpers(t *testing.T) {
	m := New(Config{Seed: 1, Faults: FaultConfig{Rates: FaultRates{Truncate: 1}}})
	if got := m.FaultTimeout(); got != 30*time.Second {
		t.Errorf("default fault timeout = %v, want 30s", got)
	}
	for i := 0; i < 100; i++ {
		f := m.TruncateFrac()
		if f < 0.1 || f >= 0.9 {
			t.Fatalf("truncate fraction %f out of [0.1, 0.9)", f)
		}
	}
	lossy := New(Config{Seed: 1, Faults: FaultConfig{Rates: FaultRates{Loss: 1}}})
	if d := lossy.RetransmitDelay("https://x", 30*time.Millisecond); d != time.Second {
		t.Errorf("RTO floor = %v, want 1s", d)
	}
	if d := lossy.RetransmitDelay("https://x", 700*time.Millisecond); d != 1400*time.Millisecond {
		t.Errorf("RTO = %v, want 2·RTT", d)
	}
}
