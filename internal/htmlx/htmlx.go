// Package htmlx is a minimal HTML tokenizer and document scanner. It
// extracts exactly what the measurement pipeline needs from a page's root
// document: sub-resource references (scripts, stylesheets, images, iframes,
// media), anchor links, and HTML5 resource hints.
//
// It is not a general-purpose HTML5 parser; it is a forgiving tag scanner
// in the spirit of how measurement crawlers treat markup: unclosed tags,
// odd quoting, and comments are tolerated, and anything unrecognized is
// skipped.
package htmlx

import (
	"strings"
)

// ResourceKind classifies a sub-resource reference found in markup.
type ResourceKind int

// Resource kinds, ordered roughly by how browsers prioritize them.
const (
	KindOther ResourceKind = iota
	KindStylesheet
	KindScript
	KindImage
	KindIframe
	KindMedia // audio/video/source
	KindFont
)

var kindNames = map[ResourceKind]string{
	KindOther:      "other",
	KindStylesheet: "stylesheet",
	KindScript:     "script",
	KindImage:      "image",
	KindIframe:     "iframe",
	KindMedia:      "media",
	KindFont:       "font",
}

// String returns a short lowercase name for the kind.
func (k ResourceKind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return "other"
}

// Resource is a sub-resource reference in the document.
type Resource struct {
	URL   string // raw attribute value, unresolved
	Kind  ResourceKind
	Tag   string // element name, lowercase
	Async bool   // script with async/defer
}

// HintType enumerates the HTML5 resource hints (W3C Resource Hints +
// preload).
type HintType string

// The resource hints tracked by the study (§5.5).
const (
	HintDNSPrefetch HintType = "dns-prefetch"
	HintPreconnect  HintType = "preconnect"
	HintPrefetch    HintType = "prefetch"
	HintPreload     HintType = "preload"
	HintPrerender   HintType = "prerender"
)

// Hint is one <link rel=...> resource hint.
type Hint struct {
	Type HintType
	Href string
	As   string // as= attribute for preload
}

// Document is the scan result for one HTML document.
type Document struct {
	Title         string
	Resources     []Resource
	Links         []string // <a href> values, raw
	Hints         []Hint
	InlineScripts int
	Metas         map[string]string // name -> content
	AdSlots       int               // elements carrying an ad-slot marker class/id
}

// hintRels maps rel values to hint types.
var hintRels = map[string]HintType{
	"dns-prefetch": HintDNSPrefetch,
	"preconnect":   HintPreconnect,
	"prefetch":     HintPrefetch,
	"preload":      HintPreload,
	"prerender":    HintPrerender,
}

// Parse scans an HTML document and returns its extracted references.
func Parse(htmlSrc string) *Document {
	d := &Document{Metas: make(map[string]string)}
	z := newTokenizer(htmlSrc)
	for {
		tok, ok := z.next()
		if !ok {
			break
		}
		switch tok.name {
		case "title":
			d.Title = strings.TrimSpace(z.rawTextUntil("</title"))
		case "script":
			if src := tok.attrs["src"]; src != "" {
				_, async := tok.attrs["async"]
				_, deferred := tok.attrs["defer"]
				d.Resources = append(d.Resources, Resource{URL: src, Kind: KindScript, Tag: "script", Async: async || deferred})
			} else if !tok.selfClosing {
				d.InlineScripts++
			}
			if !tok.selfClosing {
				z.rawTextUntil("</script")
			}
		case "link":
			rel := strings.ToLower(tok.attrs["rel"])
			href := tok.attrs["href"]
			if href == "" {
				continue
			}
			if ht, ok := hintRels[rel]; ok {
				d.Hints = append(d.Hints, Hint{Type: ht, Href: href, As: strings.ToLower(tok.attrs["as"])})
				if ht == HintPreload && strings.ToLower(tok.attrs["as"]) == "font" {
					d.Resources = append(d.Resources, Resource{URL: href, Kind: KindFont, Tag: "link"})
				}
				continue
			}
			if strings.Contains(rel, "stylesheet") {
				d.Resources = append(d.Resources, Resource{URL: href, Kind: KindStylesheet, Tag: "link"})
			}
		case "img":
			if src := tok.attrs["src"]; src != "" {
				d.Resources = append(d.Resources, Resource{URL: src, Kind: KindImage, Tag: "img"})
			}
		case "iframe":
			if src := tok.attrs["src"]; src != "" {
				d.Resources = append(d.Resources, Resource{URL: src, Kind: KindIframe, Tag: "iframe"})
			}
		case "source", "video", "audio", "track", "embed":
			if src := tok.attrs["src"]; src != "" {
				d.Resources = append(d.Resources, Resource{URL: src, Kind: KindMedia, Tag: tok.name})
			}
		case "a":
			if href := tok.attrs["href"]; href != "" {
				d.Links = append(d.Links, href)
			}
		case "meta":
			if name := strings.ToLower(tok.attrs["name"]); name != "" {
				d.Metas[name] = tok.attrs["content"]
			}
		case "div", "section", "aside", "ins":
			cls := tok.attrs["class"] + " " + tok.attrs["id"]
			if strings.Contains(cls, "ad-slot") || strings.Contains(cls, "adsbygoogle") || strings.Contains(cls, "hb-slot") {
				d.AdSlots++
			}
		}
	}
	return d
}

// HintCount returns the number of resource hints in the document.
func (d *Document) HintCount() int { return len(d.Hints) }

// tag is one parsed start tag with its attributes.
type tag struct {
	name        string
	attrs       map[string]string
	selfClosing bool
}

// tokenizer walks HTML source emitting start tags only.
type tokenizer struct {
	src string
	pos int
}

func newTokenizer(src string) *tokenizer { return &tokenizer{src: src} }

// next returns the next start tag, skipping text, comments, end tags, and
// declarations. ok is false at end of input.
func (z *tokenizer) next() (tag, bool) {
	for {
		i := strings.IndexByte(z.src[z.pos:], '<')
		if i < 0 {
			z.pos = len(z.src)
			return tag{}, false
		}
		z.pos += i
		rest := z.src[z.pos:]
		switch {
		case strings.HasPrefix(rest, "<!--"):
			end := strings.Index(rest, "-->")
			if end < 0 {
				z.pos = len(z.src)
				return tag{}, false
			}
			z.pos += end + 3
		case strings.HasPrefix(rest, "</"), strings.HasPrefix(rest, "<!"), strings.HasPrefix(rest, "<?"):
			end := strings.IndexByte(rest, '>')
			if end < 0 {
				z.pos = len(z.src)
				return tag{}, false
			}
			z.pos += end + 1
		default:
			t, n, ok := parseStartTag(rest)
			if !ok {
				z.pos++ // stray '<'
				continue
			}
			z.pos += n
			return t, true
		}
	}
}

// rawTextUntil consumes raw text up to (and including the close of) the
// given case-insensitive end-tag prefix, returning the text. Used for
// <script> and <title> content, which must not be tag-scanned.
func (z *tokenizer) rawTextUntil(endPrefix string) string {
	lower := strings.ToLower(z.src[z.pos:])
	i := strings.Index(lower, endPrefix)
	if i < 0 {
		text := z.src[z.pos:]
		z.pos = len(z.src)
		return text
	}
	text := z.src[z.pos : z.pos+i]
	rest := z.src[z.pos+i:]
	if gt := strings.IndexByte(rest, '>'); gt >= 0 {
		z.pos += i + gt + 1
	} else {
		z.pos = len(z.src)
	}
	return text
}

// parseStartTag parses "<name attr=val ...>" at the start of s, returning
// the tag and the number of bytes consumed.
func parseStartTag(s string) (tag, int, bool) {
	if len(s) < 2 || s[0] != '<' || !isNameStart(s[1]) {
		return tag{}, 0, false
	}
	i := 1
	for i < len(s) && isNameChar(s[i]) {
		i++
	}
	t := tag{name: strings.ToLower(s[1:i]), attrs: make(map[string]string)}
	for i < len(s) {
		// Skip whitespace.
		for i < len(s) && isSpace(s[i]) {
			i++
		}
		if i >= len(s) {
			return t, i, true
		}
		if s[i] == '>' {
			return t, i + 1, true
		}
		if s[i] == '/' {
			t.selfClosing = true
			i++
			continue
		}
		// Attribute name.
		start := i
		for i < len(s) && !isSpace(s[i]) && s[i] != '=' && s[i] != '>' && s[i] != '/' {
			i++
		}
		name := strings.ToLower(s[start:i])
		if name == "" {
			i++
			continue
		}
		for i < len(s) && isSpace(s[i]) {
			i++
		}
		if i < len(s) && s[i] == '=' {
			i++
			for i < len(s) && isSpace(s[i]) {
				i++
			}
			var val string
			if i < len(s) && (s[i] == '"' || s[i] == '\'') {
				q := s[i]
				i++
				end := strings.IndexByte(s[i:], q)
				if end < 0 {
					val = s[i:]
					i = len(s)
				} else {
					val = s[i : i+end]
					i += end + 1
				}
			} else {
				start := i
				for i < len(s) && !isSpace(s[i]) && s[i] != '>' {
					i++
				}
				val = s[start:i]
			}
			t.attrs[name] = val
		} else {
			t.attrs[name] = "" // boolean attribute
		}
	}
	return t, i, true
}

func isSpace(c byte) bool { return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' }
func isNameStart(c byte) bool {
	return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}
func isNameChar(c byte) bool {
	return isNameStart(c) || (c >= '0' && c <= '9') || c == '-' || c == ':'
}
