package htmlx

import (
	"strings"
	"testing"
)

const sampleDoc = `<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="generator" content="webgen">
<title>The Title</title>
<link rel="dns-prefetch" href="https://cdn.example.net">
<link rel="preconnect" href="https://fonts.example.net">
<link rel="preload" as="style" href="https://x.com/a.css">
<link rel="preload" as="font" href="https://fonts.example.net/f.woff2">
<link rel="prefetch" href="/next.js">
<link rel="prerender" href="/next-page">
<link rel="stylesheet" href="/style.css">
<script src="/app.js"></script>
<script src="/lazy.js" async></script>
<script>var inline = 1;</script>
</head>
<body>
<div class="ad-slot" id="slot-0"></div>
<div class="hb-slot"></div>
<img src="/img/a.jpg" alt="x">
<IMG SRC='/img/b.png'>
<iframe src="https://ads.example.com/frame"></iframe>
<video src="/clip.mp4"></video>
<a href="/page1">one</a>
<a href='https://other.com/page2'>two</a>
<!-- <img src="/commented-out.gif"> -->
<p>text with < stray bracket</p>
</body>
</html>`

func TestParseExtractsEverything(t *testing.T) {
	d := Parse(sampleDoc)
	if d.Title != "The Title" {
		t.Errorf("Title = %q", d.Title)
	}
	if d.InlineScripts != 1 {
		t.Errorf("InlineScripts = %d, want 1", d.InlineScripts)
	}
	if d.AdSlots != 2 {
		t.Errorf("AdSlots = %d, want 2", d.AdSlots)
	}
	if got := d.Metas["generator"]; got != "webgen" {
		t.Errorf("meta generator = %q", got)
	}
	if len(d.Hints) != 6 {
		t.Fatalf("hints = %d, want 6: %+v", len(d.Hints), d.Hints)
	}
	types := map[HintType]int{}
	for _, h := range d.Hints {
		types[h.Type]++
	}
	if types[HintDNSPrefetch] != 1 || types[HintPreconnect] != 1 ||
		types[HintPreload] != 2 || types[HintPrefetch] != 1 || types[HintPrerender] != 1 {
		t.Errorf("hint type counts = %v", types)
	}

	kinds := map[ResourceKind][]string{}
	for _, r := range d.Resources {
		kinds[r.Kind] = append(kinds[r.Kind], r.URL)
	}
	if len(kinds[KindStylesheet]) != 1 || kinds[KindStylesheet][0] != "/style.css" {
		t.Errorf("stylesheets = %v", kinds[KindStylesheet])
	}
	if len(kinds[KindScript]) != 2 {
		t.Errorf("scripts = %v", kinds[KindScript])
	}
	if len(kinds[KindImage]) != 2 {
		t.Errorf("images = %v (commented-out image must be skipped)", kinds[KindImage])
	}
	if len(kinds[KindIframe]) != 1 || len(kinds[KindMedia]) != 1 {
		t.Errorf("iframes=%v media=%v", kinds[KindIframe], kinds[KindMedia])
	}
	if len(kinds[KindFont]) != 1 {
		t.Errorf("fonts = %v (preload as=font)", kinds[KindFont])
	}
	if len(d.Links) != 2 {
		t.Errorf("links = %v", d.Links)
	}
}

func TestAsyncFlag(t *testing.T) {
	d := Parse(`<script src="/a.js"></script><script src="/b.js" async></script><script src="/c.js" defer></script>`)
	if len(d.Resources) != 3 {
		t.Fatalf("resources = %d", len(d.Resources))
	}
	if d.Resources[0].Async || !d.Resources[1].Async || !d.Resources[2].Async {
		t.Errorf("async flags = %v %v %v", d.Resources[0].Async, d.Resources[1].Async, d.Resources[2].Async)
	}
}

func TestScriptBodyNotScanned(t *testing.T) {
	d := Parse(`<script>document.write('<img src="/fake.png">');</script><img src="/real.png">`)
	if len(d.Resources) != 1 || d.Resources[0].URL != "/real.png" {
		t.Errorf("resources = %+v, want only /real.png", d.Resources)
	}
	if d.InlineScripts != 1 {
		t.Errorf("InlineScripts = %d", d.InlineScripts)
	}
}

func TestMalformedInput(t *testing.T) {
	cases := []string{
		"",
		"<",
		"<<<>>>",
		"<img src=",
		`<img src="unterminated`,
		"<!-- unterminated comment <img src=x>",
		"<a href=/bare>link</a>",
		"<script src=/x.js>never closed",
		strings.Repeat("<div>", 1000),
	}
	for _, c := range cases {
		d := Parse(c) // must not panic or hang
		if d == nil {
			t.Errorf("Parse(%.20q) returned nil", c)
		}
	}
	// Unquoted attribute value.
	d := Parse("<a href=/bare>link</a>")
	if len(d.Links) != 1 || d.Links[0] != "/bare" {
		t.Errorf("unquoted href links = %v", d.Links)
	}
}

func TestSelfClosingScript(t *testing.T) {
	d := Parse(`<script src="/a.js"/><img src="/b.png">`)
	if len(d.Resources) != 2 {
		t.Errorf("self-closing script swallowed following content: %+v", d.Resources)
	}
}

func TestKindString(t *testing.T) {
	if KindScript.String() != "script" || ResourceKind(99).String() != "other" {
		t.Error("kind names wrong")
	}
}
