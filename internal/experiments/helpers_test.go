package experiments

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/stats"
)

func fakeSites() []core.SiteResult {
	mk := func(objs int, plt time.Duration) core.PageMeasurement {
		return core.PageMeasurement{Objects: objs, PLT: plt, Bytes: int64(objs) * 10000}
	}
	return []core.SiteResult{
		{
			Landing:  mk(100, 900*time.Millisecond),
			Internal: []core.PageMeasurement{mk(60, time.Second), mk(80, 2*time.Second), mk(70, 1500*time.Millisecond)},
		},
		{
			Landing:  mk(50, 2*time.Second),
			Internal: []core.PageMeasurement{mk(90, time.Second), mk(110, time.Second)},
		},
	}
}

func TestDeltasAndRatios(t *testing.T) {
	sites := fakeSites()
	d := deltas(sites, mObjects)
	if len(d) != 2 || d[0] != 30 || d[1] != -50 {
		t.Errorf("deltas = %v", d)
	}
	r := ratios(sites, mObjects)
	if len(r) != 2 || r[0] != 100.0/70 || r[1] != 0.5 {
		t.Errorf("ratios = %v", r)
	}
	if got := fracPositive(d); got != 0.5 {
		t.Errorf("fracPositive = %v", got)
	}
	if got := fracPositive(nil); got != 0 {
		t.Errorf("fracPositive(nil) = %v", got)
	}
}

func TestValueFlattening(t *testing.T) {
	sites := fakeSites()
	l := landingValues(sites, mPLT)
	if len(l) != 2 || l[0] != 0.9 {
		t.Errorf("landingValues = %v", l)
	}
	in := internalValues(sites, mPLT)
	if len(in) != 5 {
		t.Errorf("internalValues = %v", in)
	}
	if got := stats.Median(in); got != 1 {
		t.Errorf("median internal PLT = %v", got)
	}
}

func TestSampleThinning(t *testing.T) {
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = float64(i)
	}
	s := sample(xs, 100)
	if len(s) != 100 {
		t.Fatalf("sample = %d", len(s))
	}
	if s[0] != 0 || s[99] < 900 {
		t.Errorf("sample not evenly spaced: first=%v last=%v", s[0], s[99])
	}
	if got := sample(xs[:50], 100); len(got) != 50 {
		t.Error("short input should pass through")
	}
}

func TestCDFPoints(t *testing.T) {
	pts := cdfPoints([]float64{1, 2, 3, 4}, 5)
	if len(pts) != 5 {
		t.Fatalf("points = %d", len(pts))
	}
	if pts[0][0] != 1 || pts[4][0] != 4 || pts[4][1] != 1 {
		t.Errorf("points = %v", pts)
	}
}

func TestKsPDegenerate(t *testing.T) {
	if got := ksP(nil, []float64{1}); got != 1 {
		t.Errorf("ksP on empty = %v, want 1", got)
	}
}

func TestTopBottomSites(t *testing.T) {
	res := &core.StudyResult{Sites: fakeSites()}
	if got := TopSites(res, 1); len(got) != 1 || got[0].Landing.Objects != 100 {
		t.Error("TopSites wrong")
	}
	if got := BottomSites(res, 1); len(got) != 1 || got[0].Landing.Objects != 50 {
		t.Error("BottomSites wrong")
	}
	if got := TopSites(res, 99); len(got) != 2 {
		t.Error("TopSites should clamp")
	}
}
