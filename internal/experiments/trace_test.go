package experiments

import (
	"bytes"
	"testing"

	"repro/internal/trace"
)

// TestStreamStudyRecordsTrace: a Config.Trace tracer must come back
// from the streamed H1K study populated with the full span hierarchy
// and export valid, non-empty Chrome JSON — the papereval -trace path.
func TestStreamStudyRecordsTrace(t *testing.T) {
	tr := trace.New(trace.DetailLoads)
	ctx := NewContext(Config{
		Seed: 11, Sites: 40, PerSite: 8, LandingFetches: 2,
		Stream: true, Trace: tr,
	})
	sres, err := ctx.StreamStudy()
	if err != nil {
		t.Fatal(err)
	}
	byCat := map[string]int{}
	for _, s := range tr.Spans() {
		byCat[s.Cat]++
	}
	if byCat["study"] != 1 || byCat["site"] != len(sres.Outcomes) || byCat["load"] == 0 {
		t.Fatalf("span counts off (outcomes=%d): %v", len(sres.Outcomes), byCat)
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("empty trace export")
	}

	// Single-flight: a second StreamStudy returns the cached result and
	// must not double-record spans.
	n := tr.Len()
	if _, err := ctx.StreamStudy(); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != n {
		t.Fatalf("cached StreamStudy re-recorded spans: %d -> %d", n, tr.Len())
	}
}
