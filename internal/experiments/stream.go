package experiments

import (
	"repro/internal/core"
)

// This file holds the streaming variants of the overview experiments
// (Fig 2a/b/c). When Config.Stream is set, the fig2 runners delegate
// here: the same report rows are produced from the streaming engine's
// constant-size aggregates instead of the in-memory site slice.
//
// Parity contract (asserted by TestStreamReportsMatchInMemory):
//   - sign-fraction rows, tail (Ht30/Hb100) rows, the fewer-but-larger
//     row, and geometric means are exact — bit-identical to the
//     in-memory rows, because they come from integer counters and a
//     rank-ordered log-sum;
//   - quantile- and CDF-backed rows carry the sketch's relative error
//     (DefaultSketchAlpha) against the closest-rank sample quantile.

// runFig2aStream is RunFig2a over streaming aggregates.
func runFig2aStream(ctx *Context) (*Report, error) {
	sres, err := ctx.StreamStudy()
	if err != nil {
		return nil, err
	}
	agg := sres.Agg
	r := &Report{ID: "fig2a", Title: "Landing vs internal page size (Fig 2a)"}
	r.addRow("frac sites landing larger (H1K)", "0.65", agg.FracDeltaPositive(core.MetricBytes), "%.2f")
	r.addRow("frac sites landing larger (Ht30)", "0.54", sres.Top.FracPositive(core.MetricBytes), "%.2f")
	r.addRow("geomean size ratio L/I", "1.34", agg.GeomeanRatio(core.MetricBytes), "%.2f")
	r.addRow("frac internal >=2MB larger", "0.05", agg.Delta(core.MetricBytes).FractionBelow(-2e6), "%.2f")
	r.addRow("frac internal >=2MB smaller", "0.20", 1-agg.Delta(core.MetricBytes).FractionBelow(2e6), "%.2f")
	pts := agg.Delta(core.MetricBytes).Points(33)
	for i := range pts {
		pts[i][0] /= 1e6
	}
	r.addSeries("H1K L.size-I.size (MB)", pts)
	return r, nil
}

// runFig2bStream is RunFig2b over streaming aggregates.
func runFig2bStream(ctx *Context) (*Report, error) {
	sres, err := ctx.StreamStudy()
	if err != nil {
		return nil, err
	}
	agg := sres.Agg
	r := &Report{ID: "fig2b", Title: "Landing vs internal object count (Fig 2b)"}
	r.addRow("frac sites landing more objects (H1K)", "0.68", agg.FracDeltaPositive(core.MetricObjects), "%.2f")
	r.addRow("frac sites landing more objects (Ht30)", "0.57", sres.Top.FracPositive(core.MetricObjects), "%.2f")
	r.addRow("frac sites landing more objects (Hb100)", "0.68", sres.Bottom.FracPositive(core.MetricObjects), "%.2f")
	r.addRow("geomean object ratio L/I", "1.24", agg.GeomeanRatio(core.MetricObjects), "%.2f")
	fewer := 0.0
	if agg.Sites > 0 {
		fewer = float64(agg.FewerObjectsButLarger) / float64(agg.Sites)
	}
	r.addRow("frac fewer objects but larger", "0.05", fewer, "%.2f")
	r.addSeries("H1K L.#obj-I.#obj", agg.Delta(core.MetricObjects).Points(33))
	return r, nil
}

// runFig2cStream is RunFig2c over streaming aggregates.
func runFig2cStream(ctx *Context) (*Report, error) {
	sres, err := ctx.StreamStudy()
	if err != nil {
		return nil, err
	}
	agg := sres.Agg
	r := &Report{ID: "fig2c", Title: "Landing vs internal PLT (Fig 2c)"}
	r.addRow("frac sites landing faster (H1K)", "0.56", agg.FracDeltaNegative(core.MetricPLT), "%.2f")
	r.addRow("frac sites landing faster (Ht30)", "0.77", sres.Top.FracNegative(core.MetricPLT), "%.2f")
	r.addRow("frac sites landing faster (Hb100)", "0.59", sres.Bottom.FracNegative(core.MetricPLT), "%.2f")
	r.addRow("median L.PLT (s)", "~2 (typical)", agg.Landing(core.MetricPLT).Median(), "%.2f")
	r.addSeries("H1K L.PLT-I.PLT (s)", agg.Delta(core.MetricPLT).Points(33))
	return r, nil
}
