package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/webgen"
)

// binnedDeltaSeries computes the per-rank-bin median of the per-site
// landing−internal delta of f (the appendix's Δμ plots).
func binnedDeltaSeries(sites []core.SiteResult, f func(*core.PageMeasurement) float64, binSize int) []stats.Bin {
	ranks := make([]int, len(sites))
	vals := make([]float64, len(sites))
	for i := range sites {
		ranks[i] = i + 1 // position in the list, as in the paper's bins
		vals[i] = sites[i].Delta(f)
	}
	return stats.BinnedMedians(ranks, vals, binSize)
}

func seriesFromBins(bins []stats.Bin) [][2]float64 {
	out := make([][2]float64, 0, len(bins))
	for i, b := range bins {
		out = append(out, [2]float64{float64(i + 1), b.Median})
	}
	return out
}

// RunFig9 reproduces Fig 9: rank-bin medians of ΔPLT, Δsize, and
// Δobjects over H1K in bins of 100 ranks. Paper: ΔPLT is negative
// (landing faster) for most bins but flips positive (up to ~+100ms)
// around ranks 400–600; Δsize and Δobjects stay positive but their
// magnitude varies substantially with rank.
func RunFig9(ctx *Context) (*Report, error) {
	res, err := ctx.Study()
	if err != nil {
		return nil, err
	}
	binSize := len(res.Sites) / 10
	if binSize < 1 {
		binSize = 1
	}
	r := &Report{ID: "fig9", Title: "Rank trends: ΔPLT, Δsize, Δobjects (Fig 9)"}

	plt := binnedDeltaSeries(res.Sites, mPLT, binSize)
	size := binnedDeltaSeries(res.Sites, mBytes, binSize)
	objs := binnedDeltaSeries(res.Sites, mObjects, binSize)

	negBins, posBins, midPos := 0, 0, false
	for i, b := range plt {
		if b.Median < 0 {
			negBins++
		} else if b.Median > 0 {
			posBins++
			if i >= 3 && i <= 6 {
				midPos = true
			}
		}
	}
	r.addRow("ΔPLT bins negative (landing faster)", "most", float64(negBins), "%.0f")
	r.addRow("ΔPLT bins positive", "few, mid-rank", float64(posBins), "%.0f")
	r.addRow("ΔPLT mid-rank (bins 4-7) reversal present", "yes (ranks 400-600)", boolVal(midPos), "%.0f")
	allPosSize := 0
	for _, b := range size {
		if b.Median > 0 {
			allPosSize++
		}
	}
	r.addRow("Δsize bins positive", "all/nearly all", float64(allPosSize), "%.0f")
	r.addRow("Δobjects median range", "varies 10-30 (fig)", objs[len(objs)/2].Median, "%.0f (mid bin)")

	r.addSeries("ΔPLT (s) by rank bin", seriesFromBins(plt))
	sizeMB := make([]stats.Bin, len(size))
	copy(sizeMB, size)
	for i := range sizeMB {
		sizeMB[i].Median /= 1e6
	}
	r.addSeries("Δsize (MB) by rank bin", seriesFromBins(sizeMB))
	r.addSeries("Δobjects by rank bin", seriesFromBins(objs))
	return r, nil
}

func boolVal(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// RunFig10ab reproduces Figs 10a/10b: rank-trend reversals for
// non-cacheable objects and unique domains. Paper: around ranks 200–300
// landing pages have ~24 more non-cacheable objects and ~11 more unique
// domains than internal pages; by ranks 900–1000 the differences turn
// negative (≈−8 and −2).
func RunFig10ab(ctx *Context) (*Report, error) {
	res, err := ctx.Study()
	if err != nil {
		return nil, err
	}
	binSize := len(res.Sites) / 10
	if binSize < 1 {
		binSize = 1
	}
	r := &Report{ID: "fig10ab", Title: "Trend reversals: Δnoncacheables, Δdomains (Fig 10a/b)"}
	nc := binnedDeltaSeries(res.Sites, mNonCache, binSize)
	dom := binnedDeltaSeries(res.Sites, mDomains, binSize)

	early := func(bins []stats.Bin) float64 {
		if len(bins) >= 3 {
			return bins[2].Median
		}
		return bins[0].Median
	}
	late := func(bins []stats.Bin) float64 { return bins[len(bins)-1].Median }
	r.addRow("Δnoncacheables bin 3 (ranks 200-300)", "+24", early(nc), "%.0f")
	r.addRow("Δnoncacheables last bin (ranks 900-1000)", "-8", late(nc), "%.0f")
	r.addRow("Δdomains bin 3 (ranks 200-300)", "+11", early(dom), "%.0f")
	r.addRow("Δdomains last bin (ranks 900-1000)", "-2", late(dom), "%.0f")
	r.addSeries("Δnoncacheables by rank bin", seriesFromBins(nc))
	r.addSeries("Δdomains by rank bin", seriesFromBins(dom))
	return r, nil
}

// RunFig10c reproduces Fig 10c: the PLT delta split by Alexa category.
// Paper: in the Shopping category ~77% of sites have landing pages
// faster than internal pages; in the World category the trend reverses —
// ~70% of sites have landing pages *slower* than internal pages, because
// those sites are served far from the US vantage point and their objects
// rarely hit nearby CDN caches.
func RunFig10c(ctx *Context) (*Report, error) {
	res, err := ctx.Study()
	if err != nil {
		return nil, err
	}
	r := &Report{ID: "fig10c", Title: "PLT delta by category (Fig 10c)"}
	byCat := func(cat webgen.Category) []float64 {
		var out []float64
		for i := range res.Sites {
			if res.Sites[i].Category == string(cat) {
				out = append(out, res.Sites[i].Delta(mPLT))
			}
		}
		return out
	}
	world := byCat(webgen.CatWorld)
	shopping := byCat(webgen.CatShopping)
	if len(world) == 0 || len(shopping) == 0 {
		return nil, fmt.Errorf("experiments: study too small for category split (world=%d shopping=%d)", len(world), len(shopping))
	}
	r.addRow("frac World landing slower", "0.70", fracPositive(world), "%.2f")
	r.addRow("frac Shopping landing faster", "0.77", 1-fracPositive(shopping), "%.2f")
	r.addRow("World sites measured", "n/a", float64(len(world)), "%.0f")
	r.addRow("Shopping sites measured", "n/a", float64(len(shopping)), "%.0f")
	r.addSeries("World ΔPLT (s)", cdfPoints(world, 25))
	r.addSeries("Shopping ΔPLT (s)", cdfPoints(shopping, 25))
	return r, nil
}
