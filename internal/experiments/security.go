package experiments

import (
	"repro/internal/core"
	"repro/internal/stats"
)

// RunFig8a reproduces Fig 8a and the §6.1 security counts. Paper (per
// 1000 sites): 36 serve the landing page over HTTP; 170 HTTPS-landing
// sites have ≥1 plain-HTTP internal page among the 19 measured (36 of
// them have ≥10); mixed content appears on 35 landing pages but on ≥1
// internal page of 194 sites.
func RunFig8a(ctx *Context) (*Report, error) {
	res, err := ctx.Study()
	if err != nil {
		return nil, err
	}
	scale := 1000 / float64(len(res.Sites))
	r := &Report{ID: "fig8a", Title: "HTTP and mixed content (Fig 8a)"}

	httpLanding, insecureSites, insecure10, mixedLanding, mixedSites := 0, 0, 0, 0, 0
	var insecureCounts []float64
	for i := range res.Sites {
		s := &res.Sites[i]
		if s.Landing.Scheme == "http" {
			httpLanding++
			continue
		}
		if n := s.InsecureInternal(); n > 0 {
			insecureSites++
			insecureCounts = append(insecureCounts, float64(n))
			if n >= 10 {
				insecure10++
			}
		}
	}
	for i := range res.Sites {
		s := &res.Sites[i]
		if s.Landing.MixedContent {
			mixedLanding++
		}
		if s.MixedInternal() > 0 {
			mixedSites++
		}
	}
	r.addRow("sites with HTTP landing (per 1000)", "36", float64(httpLanding)*scale, "%.0f")
	r.addRow("HTTPS-landing sites with >=1 HTTP internal (per 1000)", "170", float64(insecureSites)*scale, "%.0f")
	r.addRow("...of which >=10 insecure internal (per 1000)", "36", float64(insecure10)*scale, "%.0f")
	r.addRow("sites with mixed-content landing (per 1000)", "35", float64(mixedLanding)*scale, "%.0f")
	r.addRow("sites with >=1 mixed-content internal (per 1000)", "194", float64(mixedSites)*scale, "%.0f")
	// HTTPS URLs that 301 to plain-HTTP pages on other domains — the
	// paper observed these (amazon.com/birminghamjobs → amazon.jobs) and
	// noted no prior work measured their prevalence.
	redirectSites := 0
	for i := range res.Sites {
		for j := range res.Sites[i].Internal {
			if res.Sites[i].Internal[j].InsecureRedirect {
				redirectSites++
				break
			}
		}
	}
	r.addRow("sites with HTTPS->HTTP redirects (per 1000)", "observed, unquantified", float64(redirectSites)*scale, "%.0f")
	if len(insecureCounts) > 0 {
		r.addSeries("insecure internal pages per affected site", cdfPoints(insecureCounts, 20))
	}
	return r, nil
}

// RunFig8b reproduces Fig 8b: third parties never seen on the landing
// page. Paper: internal pages collectively contact a median of 18
// third-party domains absent from the landing page; for 10% of sites
// that number is ≥80.
func RunFig8b(ctx *Context) (*Report, error) {
	res, err := ctx.Study()
	if err != nil {
		return nil, err
	}
	r := &Report{ID: "fig8b", Title: "Unseen third parties (Fig 8b)"}
	var unseen []float64
	for i := range res.Sites {
		unseen = append(unseen, float64(res.Sites[i].UnseenThirdParties()))
	}
	r.addRow("median unseen third parties", "18", stats.Median(unseen), "%.0f")
	r.addRow("p90 unseen third parties", ">=80", stats.Quantile(unseen, 0.9), "%.0f")
	r.addRow("frac sites >=80 unseen", "0.10", 1-stats.FractionBelow(unseen, 80), "%.2f")
	r.addSeries("unseen third parties", cdfPoints(unseen, 25))
	return r, nil
}

// RunFig8c reproduces Fig 8c plus the header-bidding measurements of
// §6.3. Paper: at the 80th percentile, landing pages make 28 tracking
// requests vs 20 for internal pages; for ~10% of sites internal pages
// have no trackers while the landing page does; of 200 sites (Ht100 ∪
// Hb100), 17 have header-bidding ads on the landing page, 12 more only
// on internal pages; HB sites show 9 ad slots on landing vs 7 on
// internal pages at the 80th percentile.
func RunFig8c(ctx *Context) (*Report, error) {
	res, err := ctx.Study()
	if err != nil {
		return nil, err
	}
	r := &Report{ID: "fig8c", Title: "Trackers and header bidding (Fig 8c)"}
	trackers := func(p *core.PageMeasurement) float64 { return float64(p.TrackerRequests) }
	l := landingValues(res.Sites, trackers)
	in := internalValues(res.Sites, trackers)
	r.addRow("p80 tracking requests landing", "28", stats.Quantile(l, 0.8), "%.0f")
	r.addRow("p80 tracking requests internal", "20", stats.Quantile(in, 0.8), "%.0f")

	noneInternal := 0
	for i := range res.Sites {
		s := &res.Sites[i]
		maxI := 0.0
		for j := range s.Internal {
			if v := trackers(&s.Internal[j]); v > maxI {
				maxI = v
			}
		}
		if maxI == 0 && trackers(&s.Landing) > 0 {
			noneInternal++
		}
	}
	r.addRow("frac sites trackers only on landing", "0.10", float64(noneInternal)/float64(len(res.Sites)), "%.2f")

	// Header bidding over the 200-site Ht100 ∪ Hb100 subset.
	sub := append(append([]core.SiteResult{}, TopSites(res, 100)...), BottomSites(res, 100)...)
	hbLanding, hbInternalOnly := 0, 0
	var slotsL, slotsI []float64
	for i := range sub {
		s := &sub[i]
		onLanding := s.Landing.HasHB
		onInternal := false
		for j := range s.Internal {
			if s.Internal[j].HasHB {
				onInternal = true
				if v := float64(s.Internal[j].AdSlots); v > 0 {
					slotsI = append(slotsI, v)
				}
			}
		}
		if onLanding {
			hbLanding++
			slotsL = append(slotsL, float64(s.Landing.AdSlots))
		} else if onInternal {
			hbInternalOnly++
		}
	}
	scale := 200 / float64(len(sub))
	r.addRow("HB sites on landing (per 200)", "17", float64(hbLanding)*scale, "%.0f")
	r.addRow("HB sites internal only (per 200)", "12", float64(hbInternalOnly)*scale, "%.0f")
	r.addRow("p80 ad slots landing", "9", stats.Quantile(slotsL, 0.8), "%.0f")
	r.addRow("p80 ad slots internal", "7", stats.Quantile(slotsI, 0.8), "%.0f")
	r.addRow("KS p trackers", "<<1e-5", ksP(l, sample(in, 4000)), "%.2g")
	r.addSeries("landing trackers", cdfPoints(l, 25))
	r.addSeries("internal trackers", cdfPoints(sample(in, 4000), 25))
	return r, nil
}
