package experiments

import (
	"fmt"

	"repro/internal/pageselect"
)

// RunSelection compares internal-page selection strategies (§7): the
// search-based choice Hispar makes, recursive crawling with uniform
// sampling, monkey testing, and publisher-provided Well-Known manifests.
// For each strategy it reports how far the sample's medians sit from the
// site's full page pool (representativeness) and how much of the site's
// user attention the sample covers (the popularity bias the paper
// *wants*, since measurements should reflect what users actually visit).
func RunSelection(ctx *Context) (*Report, error) {
	web := ctx.Web()
	engine := ctx.SearchEngine()
	list, _, err := ctx.List()
	if err != nil {
		return nil, err
	}
	// A modest site subset: selection itself is cheap, but monkey testing
	// and crawling build many page models.
	k := 40
	if k > len(list.Sets) {
		k = len(list.Sets)
	}
	perSite := ctx.Cfg.PerSite - 1
	if perSite < 5 {
		perSite = 5
	}

	var scores []pageselect.Score
	for _, strat := range pageselect.All(engine, ctx.Cfg.Seed) {
		for i := 0; i < k; i++ {
			site, ok := web.SiteByDomain(list.Sets[i].Domain)
			if !ok {
				continue
			}
			sample, err := strat.Select(web, site, perSite)
			if err != nil || len(sample) == 0 {
				continue
			}
			scores = append(scores, pageselect.Evaluate(strat.Name(), site, sample))
		}
	}
	if len(scores) == 0 {
		return nil, fmt.Errorf("experiments: no selection scores produced")
	}

	r := &Report{ID: "selection", Title: "Internal-page selection strategies (§7)"}
	for _, s := range pageselect.Summarize(scores) {
		r.addRow(fmt.Sprintf("%s sites covered", s.Strategy), "n/a", float64(s.Sites), "%.0f")
		r.addRow(fmt.Sprintf("%s median-objects error", s.Strategy), "small for all", s.MeanObjectsErr, "%.3f")
		r.addRow(fmt.Sprintf("%s median-size error", s.Strategy), "small for all", s.MeanBytesErr, "%.3f")
		r.addRow(fmt.Sprintf("%s popularity share", s.Strategy), "highest for search", s.MeanPopulShare, "%.3f")
	}
	return r, nil
}
