package experiments

import (
	"repro/internal/core"
	"repro/internal/stats"
)

// RunWarmCache runs the cold→warm repeat-view study, the consequence of
// the Fig 4a cacheability asymmetry: every page is loaded cold into a
// fresh browser cache and again RevisitDelay later. Internal pages,
// whose byte mix is more cacheable than landing pages', save strictly
// more transfer bytes on the revisit — so any crawl that measures only
// cold landing pages misstates what repeat visitors experience.
func RunWarmCache(ctx *Context) (*Report, error) {
	res, err := ctx.WarmStudy()
	if err != nil {
		return nil, err
	}
	r := &Report{ID: "warm", Title: "Warm-cache revisit savings (§5.1 implication)"}

	byteSav := func(p *core.PagePair) float64 { return p.ByteSavings() }
	reqSav := func(p *core.PagePair) float64 { return p.RequestSavings() }
	speedup := func(p *core.PagePair) float64 { return p.OnLoadSpeedup() }

	landing := func(f func(*core.PagePair) float64) []float64 {
		vals := make([]float64, 0, len(res.Sites))
		for i := range res.Sites {
			vals = append(vals, f(&res.Sites[i].Landing))
		}
		return vals
	}
	internal := func(f func(*core.PagePair) float64) []float64 {
		vals := make([]float64, 0, len(res.Sites))
		for i := range res.Sites {
			if len(res.Sites[i].Internal) > 0 {
				vals = append(vals, res.Sites[i].InternalMedian(f))
			}
		}
		return vals
	}
	// Per-site internal-minus-landing deltas (positive = internal pages
	// save more on the revisit).
	var d []float64
	for i := range res.Sites {
		s := &res.Sites[i]
		if len(s.Internal) == 0 {
			continue
		}
		d = append(d, s.InternalMedian(byteSav)-s.Landing.ByteSavings())
	}

	lb, ib := stats.Median(landing(byteSav)), stats.Median(internal(byteSav))
	r.addRow("median warm byte savings landing", "lower (more non-cacheable)", lb, "%.2f")
	r.addRow("median warm byte savings internal", "higher (Fig 4a)", ib, "%.2f")
	r.addRow("internal minus landing byte savings", ">0", ib-lb, "%.3f")
	r.addRow("frac sites internal saves more bytes", ">0.5", fracPositive(d), "%.2f")
	r.addRow("median warm request savings landing", "cache hits only", stats.Median(landing(reqSav)), "%.2f")
	r.addRow("median warm request savings internal", "cache hits only", stats.Median(internal(reqSav)), "%.2f")
	r.addRow("median onLoad speedup landing", ">1", stats.Median(landing(speedup)), "%.2f")
	r.addRow("median onLoad speedup internal", ">1", stats.Median(internal(speedup)), "%.2f")
	r.addSeries("H1K I.sav-L.sav", cdfPoints(d, 33))
	r.addSeries("landing byte savings", cdfPoints(landing(byteSav), 25))
	r.addSeries("internal byte savings", cdfPoints(internal(byteSav), 25))
	return r, nil
}
