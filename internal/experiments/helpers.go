package experiments

import (
	"time"

	"repro/internal/core"
	"repro/internal/stats"
)

// metric accessors shared by several experiments.
func mBytes(p *core.PageMeasurement) float64    { return float64(p.Bytes) }
func mObjects(p *core.PageMeasurement) float64  { return float64(p.Objects) }
func mPLT(p *core.PageMeasurement) float64      { return p.PLT.Seconds() }
func mSI(p *core.PageMeasurement) float64       { return p.SpeedIndex.Seconds() }
func mNonCache(p *core.PageMeasurement) float64 { return float64(p.NonCacheable) }
func mDomains(p *core.PageMeasurement) float64  { return float64(p.UniqueDomains) }
func mCDNFrac(p *core.PageMeasurement) float64  { return p.CDNByteFraction() }
func mHandshakes(p *core.PageMeasurement) float64 {
	return float64(p.Handshakes)
}
func mHandshakeTime(p *core.PageMeasurement) float64 {
	return p.HandshakeTime.Seconds()
}

// deltas computes the per-site landing−internal-median difference of f.
func deltas(sites []core.SiteResult, f func(*core.PageMeasurement) float64) []float64 {
	out := make([]float64, 0, len(sites))
	for i := range sites {
		out = append(out, sites[i].Delta(f))
	}
	return out
}

// ratios computes the per-site landing/internal-median ratio of f,
// dropping undefined entries.
func ratios(sites []core.SiteResult, f func(*core.PageMeasurement) float64) []float64 {
	out := make([]float64, 0, len(sites))
	for i := range sites {
		if r := sites[i].Ratio(f); r > 0 {
			out = append(out, r)
		}
	}
	return out
}

// fracPositive returns the fraction of xs strictly above zero.
func fracPositive(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	n := 0
	for _, x := range xs {
		if x > 0 {
			n++
		}
	}
	return float64(n) / float64(len(xs))
}

// landingValues and internalValues flatten a per-page metric over all
// sites' landing (resp. internal) pages — the paper's two-sample CDFs.
func landingValues(sites []core.SiteResult, f func(*core.PageMeasurement) float64) []float64 {
	out := make([]float64, 0, len(sites))
	for i := range sites {
		out = append(out, f(&sites[i].Landing))
	}
	return out
}

func internalValues(sites []core.SiteResult, f func(*core.PageMeasurement) float64) []float64 {
	var out []float64
	for i := range sites {
		for j := range sites[i].Internal {
			out = append(out, f(&sites[i].Internal[j]))
		}
	}
	return out
}

// cdfPoints renders an ECDF as plot points.
func cdfPoints(xs []float64, n int) [][2]float64 {
	return stats.NewECDF(xs).Points(n)
}

// waitSamples flattens per-object wait times (in milliseconds) for one
// page type across the study.
func waitSamples(sites []core.SiteResult, landing bool) []float64 {
	var out []float64
	for i := range sites {
		if landing {
			for _, w := range sites[i].Landing.WaitTimes {
				out = append(out, float64(w)/float64(time.Millisecond))
			}
			continue
		}
		for j := range sites[i].Internal {
			for _, w := range sites[i].Internal[j].WaitTimes {
				out = append(out, float64(w)/float64(time.Millisecond))
			}
		}
	}
	return out
}

// ksP runs the KS test, returning 1 on degenerate input.
func ksP(a, b []float64) float64 {
	res, err := stats.KSTest(a, b)
	if err != nil {
		return 1
	}
	return res.P
}
