package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/perfmodel"
)

// RunLearning executes the §7 "Learn web page characteristics" proposal
// and uses it as a fourth lens on the paper's thesis: a PLT predictor
// trained only on landing pages transfers poorly to internal pages,
// while the same model trained on a mixed corpus predicts both types
// well. A landing-only training set is exactly what a top-list-driven
// study would collect.
func RunLearning(ctx *Context) (*Report, error) {
	res, err := ctx.Study()
	if err != nil {
		return nil, err
	}
	var landing, internal []*core.PageMeasurement
	for i := range res.Sites {
		landing = append(landing, &res.Sites[i].Landing)
		for j := range res.Sites[i].Internal {
			internal = append(internal, &res.Sites[i].Internal[j])
		}
	}
	if len(landing) < perfmodel.NumFeatures+2 || len(internal) < 2*(perfmodel.NumFeatures+2) {
		return nil, fmt.Errorf("experiments: corpus too small for the learning experiment")
	}

	// Split internal pages into train/test halves, deterministically.
	rng := rand.New(rand.NewSource(ctx.Cfg.Seed + 1009))
	shuffled := append([]*core.PageMeasurement(nil), internal...)
	rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	half := len(shuffled) / 2
	internalTrain, internalTest := shuffled[:half], shuffled[half:]

	landingModel, err := perfmodel.Train(landing, 1)
	if err != nil {
		return nil, err
	}
	mixed := append(append([]*core.PageMeasurement(nil), landing...), internalTrain...)
	mixedModel, err := perfmodel.Train(mixed, 1)
	if err != nil {
		return nil, err
	}

	onLanding := landingModel.Evaluate(landing)
	onInternal := landingModel.Evaluate(internalTest)
	mixedOnInternal := mixedModel.Evaluate(internalTest)
	mixedOnLanding := mixedModel.Evaluate(landing)

	// The headline statistic is the *systematic bias*: per-fetch jitter
	// puts a floor under MAPE for both models, but only the
	// landing-trained model is consistently wrong in one direction on
	// internal pages — it learned the landing page's favourable
	// feature→latency mapping (warm caches, optimized critical paths)
	// and assumes it holds for pages it has never seen.
	r := &Report{ID: "learning", Title: "Learned PLT model: landing-only vs mixed training (§7)"}
	// Comparing the two models on the same test set cancels the shared
	// log-retransformation bias; what remains is the pure training-set
	// effect: the landing-only model systematically *under*-predicts
	// internal-page latency (it learned Dr. Jekyll's physics).
	r.addRow("bias shift: landing-model vs mixed-model on internal pages", "<0 (underprediction)", onInternal.Bias-mixedOnInternal.Bias, "%+.3f")
	r.addRow("landing-model bias on internal pages", "negative", onInternal.Bias, "%+.3f")
	r.addRow("mixed-model bias on internal pages", "reference", mixedOnInternal.Bias, "%+.3f")
	r.addRow("landing-model MAPE on landing pages", "noise floor", onLanding.MAPE, "%.3f")
	r.addRow("landing-model MAPE on internal pages", "transfer", onInternal.MAPE, "%.3f")
	r.addRow("mixed-model MAPE on internal pages", "in-domain", mixedOnInternal.MAPE, "%.3f")
	r.addRow("mixed-model MAPE on landing pages", "context", mixedOnLanding.MAPE, "%.3f")
	return r, nil
}
