package experiments

import (
	"time"

	"repro/internal/core"
	"repro/internal/dnssim"
	"repro/internal/stats"
)

// RunFig4a reproduces Fig 4a: non-cacheable objects per page type.
// Paper: 66% of H1K sites have landing pages with more non-cacheable
// objects (40% more in the median), while the cacheable-bytes fraction
// is similar for both page types.
func RunFig4a(ctx *Context) (*Report, error) {
	res, err := ctx.Study()
	if err != nil {
		return nil, err
	}
	r := &Report{ID: "fig4a", Title: "Non-cacheable objects (Fig 4a)"}
	d := deltas(res.Sites, mNonCache)
	r.addRow("frac sites landing more non-cacheable", "0.66", fracPositive(d), "%.2f")
	r.addRow("median ratio non-cacheable L/I", "1.40", stats.Median(ratios(res.Sites, mNonCache)), "%.2f")
	lFrac := stats.Median(landingValues(res.Sites, func(p *core.PageMeasurement) float64 { return p.CacheableByteFraction() }))
	iFrac := stats.Median(internalValues(res.Sites, func(p *core.PageMeasurement) float64 { return p.CacheableByteFraction() }))
	r.addRow("median cacheable-bytes frac landing", "similar to internal", lFrac, "%.2f")
	r.addRow("median cacheable-bytes frac internal", "similar to landing", iFrac, "%.2f")
	r.addSeries("H1K L.#nc-I.#nc", cdfPoints(d, 33))
	return r, nil
}

// RunFig4b reproduces Fig 4b: the fraction of bytes delivered via CDNs,
// plus the CDN cache-hit differential. Paper: for 57% of sites the
// landing page has a higher CDN-byte fraction (13% more in the median);
// cache hits for landing-page objects are ~16% higher than for
// internal-page objects.
func RunFig4b(ctx *Context) (*Report, error) {
	res, err := ctx.Study()
	if err != nil {
		return nil, err
	}
	r := &Report{ID: "fig4b", Title: "CDN bytes and cache hits (Fig 4b)"}
	d := deltas(res.Sites, mCDNFrac)
	r.addRow("frac sites landing higher CDN frac", "0.57", fracPositive(d), "%.2f")
	r.addRow("median ratio CDN frac L/I", "1.13", stats.Median(ratios(res.Sites, mCDNFrac)), "%.2f")

	hitRate := func(landing bool) float64 {
		hits, total := 0, 0
		for i := range res.Sites {
			pages := res.Sites[i].Internal
			if landing {
				pages = []core.PageMeasurement{res.Sites[i].Landing}
			}
			for j := range pages {
				hits += pages[j].CDNHits
				total += pages[j].CDNHits + pages[j].CDNMisses
			}
		}
		if total == 0 {
			return 0
		}
		return float64(hits) / float64(total)
	}
	lHit, iHit := hitRate(true), hitRate(false)
	rel := 0.0
	if iHit > 0 {
		rel = lHit/iHit - 1
	}
	r.addRow("X-Cache hit rate landing", "higher", lHit, "%.2f")
	r.addRow("X-Cache hit rate internal", "lower", iHit, "%.2f")
	r.addRow("landing hits higher by", "0.16", rel, "%.2f")
	r.addSeries("H1K L.CDNfrac-I.CDNfrac", cdfPoints(d, 33))
	return r, nil
}

// RunFig4c reproduces Fig 4c: the byte-level content mix. Paper
// (medians): JS is 45% of landing bytes vs 50% of internal (a 10%
// relative increase); internal pages carry 22% more HTML/CSS bytes;
// landing pages carry 36% more image bytes; KS p ≪ 1e−5 for all three.
func RunFig4c(ctx *Context) (*Report, error) {
	res, err := ctx.Study()
	if err != nil {
		return nil, err
	}
	r := &Report{ID: "fig4c", Title: "Content mix (Fig 4c)"}
	js := func(p *core.PageMeasurement) float64 { return p.JSFraction() }
	img := func(p *core.PageMeasurement) float64 { return p.ImageFraction() }
	hc := func(p *core.PageMeasurement) float64 { return p.HTMLCSSFraction() }

	ljs, ijs := landingValues(res.Sites, js), internalValues(res.Sites, js)
	limg, iimg := landingValues(res.Sites, img), internalValues(res.Sites, img)
	lhc, ihc := landingValues(res.Sites, hc), internalValues(res.Sites, hc)

	r.addRow("median JS frac landing", "0.45", stats.Median(ljs), "%.2f")
	r.addRow("median JS frac internal", "0.50", stats.Median(ijs), "%.2f")
	r.addRow("internal HTML/CSS higher by", "0.22", stats.Median(ihc)/stats.Median(lhc)-1, "%.2f")
	r.addRow("landing image higher by", "0.36", stats.Median(limg)/stats.Median(iimg)-1, "%.2f")
	r.addRow("KS p JS", "<<1e-5", ksP(ljs, ijs), "%.2g")
	r.addRow("KS p image", "<<1e-5", ksP(limg, iimg), "%.2g")
	r.addRow("KS p HTML/CSS", "<<1e-5", ksP(lhc, ihc), "%.2g")
	r.addSeries("landing JS frac", cdfPoints(ljs, 25))
	r.addSeries("internal JS frac", cdfPoints(ijs, 25))
	r.addSeries("landing IMG frac", cdfPoints(limg, 25))
	r.addSeries("internal IMG frac", cdfPoints(iimg, 25))
	return r, nil
}

// RunFig5 reproduces Fig 5: multi-origin content. Paper: 67% of H1K
// sites have landing pages fetching content from more unique domains
// (29% more in the median).
func RunFig5(ctx *Context) (*Report, error) {
	res, err := ctx.Study()
	if err != nil {
		return nil, err
	}
	r := &Report{ID: "fig5", Title: "Multi-origin content (Fig 5)"}
	d := deltas(res.Sites, mDomains)
	r.addRow("frac sites landing more domains", "0.67", fracPositive(d), "%.2f")
	r.addRow("median ratio domains L/I", "1.29", stats.Median(ratios(res.Sites, mDomains)), "%.2f")
	r.addRow("median landing domains", "~20-30 (fig)", stats.Median(landingValues(res.Sites, mDomains)), "%.0f")
	r.addSeries("H1K L.#domains-I.#domains", cdfPoints(d, 33))
	return r, nil
}

// RunDNSHitRate reproduces the §5.3 resolver experiment: two consecutive
// queries per domain for the 5K most popular domains, first-query hit
// labelled by latency comparison. Paper: ~30% hits at the local (ISP)
// resolver, ~20% at the fragmented public resolver — low because of
// short request-routing TTLs and public-resolver cache fragmentation.
func RunDNSHitRate(ctx *Context) (*Report, error) {
	u := ctx.Universe()
	entries := u.Top(ctx.Cfg.DNSProbeTop)
	hosts := make([]string, len(entries))
	for i, e := range entries {
		hosts[i] = "www." + e.Domain
	}
	pop := dnssim.ZipfPopularity(hosts, 0.9)

	// Authority with CDN-era TTLs (§5.3): most popular hostnames are
	// request-routed with short TTLs; the rest use conventional ones.
	// Short TTLs are what keep resolver hit rates low despite Zipf
	// popularity.
	auth := dnssim.AuthorityFunc(func(host string) (dnssim.Record, bool) {
		var h uint32 = 2166136261
		for i := 0; i < len(host); i++ {
			h = (h ^ uint32(host[i])) * 16777619
		}
		ttl := 60 * time.Second
		switch h % 10 {
		case 0:
			ttl = time.Hour
		case 1, 2:
			ttl = 5 * time.Minute
		case 3:
			ttl = 30 * time.Second
		}
		return dnssim.Record{Host: host, Addr: dnssim.SyntheticAddr(host), TTL: ttl}, true
	})
	mk := func(name string, shards int, clientRTT time.Duration, rate float64, seed int64) *dnssim.Resolver {
		return dnssim.NewResolver(dnssim.ResolverConfig{
			Name:          name,
			Seed:          seed,
			ClientRTT:     clientRTT,
			UpstreamTime:  80 * time.Millisecond,
			Shards:        shards,
			WarmQueryRate: rate,
		}, auth, nil)
	}
	// The public resolver serves a larger population (≈4× the ISP's
	// query stream here) but fragments its cache across 8 backends, so
	// each backend sees only half the ISP's per-name rate.
	local := mk("isp", 1, 3*time.Millisecond, 3, ctx.Cfg.Seed+1)
	public := mk("public", 8, 18*time.Millisecond, 12, ctx.Cfg.Seed+2)

	r := &Report{ID: "dns", Title: "Resolver cache hit rates (§5.3)"}
	lh := dnssim.HitRateProbe(local, hosts, pop, 25*time.Millisecond)
	ph := dnssim.HitRateProbe(public, hosts, pop, 25*time.Millisecond)
	r.addRow("local resolver hit rate", "~0.30", lh, "%.2f")
	r.addRow("public resolver hit rate", "~0.20", ph, "%.2f")
	return r, nil
}
