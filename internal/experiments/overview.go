package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/browser"
	"repro/internal/cdn"
	"repro/internal/core"
	"repro/internal/crawler"
	"repro/internal/dnssim"
	"repro/internal/stats"
)

// RunFig2a reproduces Fig 2a: the CDF of L.size − I.size per site.
// Paper: 65% of H1K (54% of Ht30) sites have landing pages larger than
// the median of their internal pages; geometric-mean size ratio ≈ 1.34.
func RunFig2a(ctx *Context) (*Report, error) {
	if ctx.Cfg.Stream {
		return runFig2aStream(ctx)
	}
	res, err := ctx.Study()
	if err != nil {
		return nil, err
	}
	r := &Report{ID: "fig2a", Title: "Landing vs internal page size (Fig 2a)"}
	d := deltas(res.Sites, mBytes)
	dTop := deltas(TopSites(res, 30), mBytes)
	r.addRow("frac sites landing larger (H1K)", "0.65", fracPositive(d), "%.2f")
	r.addRow("frac sites landing larger (Ht30)", "0.54", fracPositive(dTop), "%.2f")
	r.addRow("geomean size ratio L/I", "1.34", stats.GeometricMean(ratios(res.Sites, mBytes)), "%.2f")
	r.addRow("frac internal >=2MB larger", "0.05", stats.FractionBelow(d, -2e6), "%.2f")
	r.addRow("frac internal >=2MB smaller", "0.20", 1-stats.FractionBelow(d, 2e6), "%.2f")
	mb := make([]float64, len(d))
	for i, v := range d {
		mb[i] = v / 1e6
	}
	r.addSeries("H1K L.size-I.size (MB)", cdfPoints(mb, 33))
	return r, nil
}

// RunFig2b reproduces Fig 2b: the CDF of L.#objects − I.#objects.
// Paper: 68% (H1K) / 57% (Ht30) of sites have more objects on the
// landing page; geometric-mean object ratio ≈ 1.24; 5% of sites have
// landing pages with fewer objects yet larger size.
func RunFig2b(ctx *Context) (*Report, error) {
	if ctx.Cfg.Stream {
		return runFig2bStream(ctx)
	}
	res, err := ctx.Study()
	if err != nil {
		return nil, err
	}
	r := &Report{ID: "fig2b", Title: "Landing vs internal object count (Fig 2b)"}
	d := deltas(res.Sites, mObjects)
	r.addRow("frac sites landing more objects (H1K)", "0.68", fracPositive(d), "%.2f")
	r.addRow("frac sites landing more objects (Ht30)", "0.57", fracPositive(deltas(TopSites(res, 30), mObjects)), "%.2f")
	r.addRow("frac sites landing more objects (Hb100)", "0.68", fracPositive(deltas(BottomSites(res, 100), mObjects)), "%.2f")
	r.addRow("geomean object ratio L/I", "1.24", stats.GeometricMean(ratios(res.Sites, mObjects)), "%.2f")
	fewerButLarger := 0
	for i := range res.Sites {
		if res.Sites[i].Delta(mObjects) < 0 && res.Sites[i].Delta(mBytes) > 0 {
			fewerButLarger++
		}
	}
	r.addRow("frac fewer objects but larger", "0.05", float64(fewerButLarger)/float64(len(res.Sites)), "%.2f")
	r.addSeries("H1K L.#obj-I.#obj", cdfPoints(d, 33))
	return r, nil
}

// RunFig2c reproduces Fig 2c: the CDF of L.PLT − I.PLT. Paper: landing
// pages load faster for 56% of H1K, 77% of Ht30, and 59% of Hb100 —
// despite being larger and having more objects.
func RunFig2c(ctx *Context) (*Report, error) {
	if ctx.Cfg.Stream {
		return runFig2cStream(ctx)
	}
	res, err := ctx.Study()
	if err != nil {
		return nil, err
	}
	r := &Report{ID: "fig2c", Title: "Landing vs internal PLT (Fig 2c)"}
	d := deltas(res.Sites, mPLT) // negative = landing faster
	fasterFrac := func(sites []core.SiteResult) float64 {
		n := 0
		for i := range sites {
			if sites[i].Delta(mPLT) < 0 {
				n++
			}
		}
		if len(sites) == 0 {
			return 0
		}
		return float64(n) / float64(len(sites))
	}
	r.addRow("frac sites landing faster (H1K)", "0.56", fasterFrac(res.Sites), "%.2f")
	r.addRow("frac sites landing faster (Ht30)", "0.77", fasterFrac(TopSites(res, 30)), "%.2f")
	r.addRow("frac sites landing faster (Hb100)", "0.59", fasterFrac(BottomSites(res, 100)), "%.2f")
	r.addRow("median L.PLT (s)", "~2 (typical)", stats.Median(landingValues(res.Sites, mPLT)), "%.2f")
	r.addSeries("H1K L.PLT-I.PLT (s)", cdfPoints(d, 33))
	return r, nil
}

// RunFig3a reproduces Fig 3a: Speed Index CDFs over Ht30. Paper: content
// on internal pages displays 14% more slowly than on landing pages in
// the median (KS p = 0.01).
func RunFig3a(ctx *Context) (*Report, error) {
	res, err := ctx.Study()
	if err != nil {
		return nil, err
	}
	top := TopSites(res, 30)
	r := &Report{ID: "fig3a", Title: "Speed Index, Ht30 (Fig 3a)"}
	l := landingValues(top, mSI)
	in := internalValues(top, mSI)
	ml, mi := stats.Median(l), stats.Median(in)
	slower := 0.0
	if ml > 0 {
		slower = mi/ml - 1
	}
	r.addRow("median internal SI slower by", "0.14", slower, "%.2f")
	r.addRow("median landing SI (s)", "~1-2 (fig)", ml, "%.2f")
	r.addRow("KS p-value", "0.01", ksP(l, in), "%.3f")
	r.addSeries("landing SI (s)", cdfPoints(l, 25))
	r.addSeries("internal SI (s)", cdfPoints(in, 25))
	return r, nil
}

// RunFig3bc reproduces Figs 3b/3c: the limited exhaustive crawl of five
// sites (Wikipedia, Twitter, NYTimes, HowStuffWorks, an academic site):
// recursively crawl ≥5000 unique URLs per site, sample 500 internal
// pages, fetch each once (landing 10×), and report the spread of object
// counts and page sizes. Paper: internal pages differ substantially both
// from landing pages and from one another; a random subset of 19 pages
// would not change the medians much.
func RunFig3bc(ctx *Context) (*Report, error) {
	web := ctx.Web()
	r := &Report{ID: "fig3bc", Title: "Limited exhaustive crawl (Figs 3b/3c)"}
	st, err := core.NewStudy(web, core.StudyConfig{Seed: ctx.Cfg.Seed, LandingFetches: ctx.Cfg.LandingFetches})
	if err != nil {
		return nil, err
	}
	warm := cdn.PopularityWarmth(4.5, 0.97)
	resolver := dnssim.NewResolver(dnssim.ResolverConfig{
		Name: "isp", Seed: ctx.Cfg.Seed, WarmQueryRate: 0.8,
	}, web.Authority(), nil)
	b, err := browser.New(browser.Config{
		Seed:     ctx.Cfg.Seed,
		Resolver: resolver,
		CDNFactory: func() *cdn.Network {
			return cdn.NewNetwork(1<<14, warm, ctx.Cfg.Seed)
		},
	})
	if err != nil {
		return nil, err
	}
	labels := []string{"WP", "TW", "NY", "HS", "AC"}
	for i, domain := range CrawlDomains() {
		site, ok := web.SiteByDomain(domain)
		if !ok {
			return nil, fmt.Errorf("experiments: crawl site %s missing", domain)
		}
		cres, err := crawler.Crawl(web, site.Landing(), crawler.Config{MaxPages: ctx.Cfg.CrawlPages})
		if err != nil {
			return nil, err
		}
		internal := cres.InternalPages()
		rng := rand.New(rand.NewSource(ctx.Cfg.Seed + int64(i)))
		rng.Shuffle(len(internal), func(a, b int) { internal[a], internal[b] = internal[b], internal[a] })
		sample := internal
		if len(sample) > ctx.Cfg.CrawlSample {
			sample = sample[:ctx.Cfg.CrawlSample]
		}
		var objs, sizes []float64
		for _, p := range sample {
			model := p.Build()
			log, err := b.Load(model, 0)
			if err != nil {
				return nil, err
			}
			m := core.MeasurePage(log, model, st.Analyzers())
			objs = append(objs, float64(m.Objects))
			sizes = append(sizes, float64(m.Bytes)/1e6)
		}
		// Landing reference (median of repeated fetches is structural
		// here; a single measure suffices for counts/bytes).
		lm := site.Landing().Build()
		llog, err := b.Load(lm, 0)
		if err != nil {
			return nil, err
		}
		lMeas := core.MeasurePage(llog, lm, st.Analyzers())

		label := labels[i]
		r.addRow(label+" pages crawled", ">=5000 URLs", float64(len(cres.Pages)), "%.0f")
		r.addRow(label+" internal #objects p25/p50/p75", "wide spread (fig)", stats.Median(objs), "%.0f (median)")
		r.addRow(label+" internal size p50 (MB)", "wide spread (fig)", stats.Median(sizes), "%.2f")
		r.addRow(label+" landing #objects", "differs from internal", float64(lMeas.Objects), "%.0f")
		r.addSeries(label+" #objects quartiles", quartileSeries(objs))
		r.addSeries(label+" size quartiles (MB)", quartileSeries(sizes))
	}
	return r, nil
}

// quartileSeries encodes (q, value) points for a box-plot-like summary.
// One sort serves all five quantiles (stats.Quantile would re-copy and
// re-sort the sample per call).
func quartileSeries(xs []float64) [][2]float64 {
	if len(xs) == 0 {
		return nil
	}
	s := stats.NewSorted(xs)
	qs := []float64{0.05, 0.25, 0.5, 0.75, 0.95}
	out := make([][2]float64, 0, len(qs))
	for _, q := range qs {
		out = append(out, [2]float64{q, s.Quantile(q)})
	}
	return out
}
