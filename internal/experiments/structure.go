package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/stats"
)

// RunFig6a reproduces Fig 6a: objects per dependency depth over Ht100 ∪
// Hb100. Paper: landing pages have more objects than internal pages at
// depths 2 and 3 in the 50th/75th/90th percentiles (38% more at depth 2
// in the median) and fatter tails at depths 4 and 5+.
func RunFig6a(ctx *Context) (*Report, error) {
	res, err := ctx.Study()
	if err != nil {
		return nil, err
	}
	sites := append(append([]core.SiteResult{}, TopSites(res, 100)...), BottomSites(res, 100)...)
	r := &Report{ID: "fig6a", Title: "Objects by dependency depth (Fig 6a)"}

	depthVals := func(landing bool, depth int) []float64 {
		var out []float64
		for i := range sites {
			pages := sites[i].Internal
			if landing {
				pages = []core.PageMeasurement{sites[i].Landing}
			}
			for j := range pages {
				dc := pages[j].DepthCounts
				if depth < len(dc) {
					out = append(out, float64(dc[depth]))
				}
			}
		}
		return out
	}
	var l2med, i2med float64
	for d := 2; d <= 5; d++ {
		l := depthVals(true, d)
		in := depthVals(false, d)
		lm, im := stats.Median(l), stats.Median(in)
		if d == 2 {
			l2med, i2med = lm, im
		}
		r.addRow(fmt.Sprintf("median objects depth %d landing", d), "higher", lm, "%.0f")
		r.addRow(fmt.Sprintf("median objects depth %d internal", d), "lower", im, "%.0f")
		r.addRow(fmt.Sprintf("p90 objects depth %d landing", d), "higher tail", stats.Quantile(l, 0.9), "%.0f")
		r.addRow(fmt.Sprintf("p90 objects depth %d internal", d), "lower tail", stats.Quantile(in, 0.9), "%.0f")
	}
	extra := 0.0
	if i2med > 0 {
		extra = l2med/i2med - 1
	}
	r.addRow("landing depth-2 objects higher by (median)", "0.38", extra, "%.2f")
	return r, nil
}

// RunFig6b reproduces Fig 6b: resource-hint usage over Ht100 ∪ Hb100.
// Paper: 69% of landing pages use at least one hint; 45% of internal
// pages use none; in Ht100 alone, 52% of internal pages use none
// (KS p ≪ 1e−5).
func RunFig6b(ctx *Context) (*Report, error) {
	res, err := ctx.Study()
	if err != nil {
		return nil, err
	}
	sites := append(append([]core.SiteResult{}, TopSites(res, 100)...), BottomSites(res, 100)...)
	hints := func(p *core.PageMeasurement) float64 { return float64(p.Hints) }
	l := landingValues(sites, hints)
	in := internalValues(sites, hints)
	inTop := internalValues(TopSites(res, 100), hints)

	r := &Report{ID: "fig6b", Title: "Resource hints (Fig 6b)"}
	r.addRow("frac landing pages with >=1 hint", "0.69", 1-stats.FractionBelow(l, 1), "%.2f")
	r.addRow("frac internal pages with no hints", "0.45", stats.FractionBelow(in, 1), "%.2f")
	r.addRow("frac internal pages no hints (Ht100)", "0.52", stats.FractionBelow(inTop, 1), "%.2f")
	r.addRow("KS p", "<<1e-5", ksP(l, in), "%.2g")
	r.addSeries("landing hint count", cdfPoints(l, 25))
	r.addSeries("internal hint count", cdfPoints(in, 25))
	return r, nil
}

// RunFig6c reproduces Fig 6c plus the handshake-time statistic of §5.6.
// Paper: landing pages perform 25% more handshakes and spend 28% more
// time in handshakes than internal pages, in the median (KS p ≪ 1e−5);
// per-object handshake time and the fraction of objects needing a new
// connection are similar across page types.
func RunFig6c(ctx *Context) (*Report, error) {
	res, err := ctx.Study()
	if err != nil {
		return nil, err
	}
	r := &Report{ID: "fig6c", Title: "Handshakes (Fig 6c)"}
	l := landingValues(res.Sites, mHandshakes)
	in := internalValues(res.Sites, mHandshakes)
	lm, im := stats.Median(l), stats.Median(in)
	moreCount := 0.0
	if im > 0 {
		moreCount = lm/im - 1
	}
	lt := landingValues(res.Sites, mHandshakeTime)
	it := internalValues(res.Sites, mHandshakeTime)
	moreTime := 0.0
	if m := stats.Median(it); m > 0 {
		moreTime = stats.Median(lt)/m - 1
	}
	r.addRow("landing handshakes more by (median)", "0.25", moreCount, "%.2f")
	r.addRow("landing handshake time more by (median)", "0.28", moreTime, "%.2f")
	r.addRow("median handshakes landing", "~40 (fig)", lm, "%.0f")
	r.addRow("median handshakes internal", "~30 (fig)", im, "%.0f")
	r.addRow("KS p", "<<1e-5", ksP(l, in), "%.2g")
	r.addSeries("landing #handshakes", cdfPoints(l, 25))
	r.addSeries("internal #handshakes", cdfPoints(in, 25))
	return r, nil
}

// RunFig7 reproduces Fig 7: the per-object wait-time CDF. Paper: objects
// on internal pages spend 20% more time in the wait phase than objects
// on landing pages, in the median (KS p ≪ 1e−5) — consistent with more
// CDN cache misses and back-office fetches for internal-page objects.
func RunFig7(ctx *Context) (*Report, error) {
	res, err := ctx.Study()
	if err != nil {
		return nil, err
	}
	r := &Report{ID: "fig7", Title: "Per-object wait time (Fig 7)"}
	l := waitSamples(res.Sites, true)
	in := waitSamples(res.Sites, false)
	lm, im := stats.Median(l), stats.Median(in)
	more := 0.0
	if lm > 0 {
		more = im/lm - 1
	}
	r.addRow("internal wait more by (median)", "0.20", more, "%.2f")
	r.addRow("median wait landing (ms)", "~40-80 (fig)", lm, "%.0f")
	r.addRow("median wait internal (ms)", "~50-100 (fig)", im, "%.0f")
	r.addRow("KS p", "<<1e-5", ksP(sample(l, 4000), sample(in, 4000)), "%.2g")
	r.addSeries("landing wait (ms)", cdfPoints(sample(l, 4000), 25))
	r.addSeries("internal wait (ms)", cdfPoints(sample(in, 4000), 25))
	return r, nil
}

// sample thins a large slice to at most n evenly spaced elements (the KS
// p-value is otherwise driven to zero by millions of samples).
func sample(xs []float64, n int) []float64 {
	if len(xs) <= n {
		return xs
	}
	out := make([]float64, 0, n)
	step := float64(len(xs)) / float64(n)
	for i := 0; i < n; i++ {
		out = append(out, xs[int(float64(i)*step)])
	}
	return out
}
