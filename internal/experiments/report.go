// Package experiments contains one runner per table and figure of the
// paper's evaluation. Each runner regenerates the corresponding result —
// the same rows or series the paper reports — from the simulated
// substrates, and returns it as a structured Report that cmd/papereval
// prints and the test suite checks against the paper's direction and
// rough magnitude.
package experiments

import (
	"fmt"
	"sort"
	"strings"
)

// Row is one reported quantity: the paper's value and ours.
type Row struct {
	Metric   string
	Paper    string
	Measured string
	// Value carries the measured number for programmatic checks.
	Value float64
}

// Report is one experiment's regenerated result.
type Report struct {
	ID    string
	Title string
	Rows  []Row
	// Series holds printable line series (e.g. CDF points or rank-bin
	// medians), keyed by series name; each point is (x, y).
	Series map[string][][2]float64
}

func (r *Report) addRow(metric, paper string, value float64, format string) {
	r.Rows = append(r.Rows, Row{
		Metric:   metric,
		Paper:    paper,
		Measured: fmt.Sprintf(format, value),
		Value:    value,
	})
}

func (r *Report) addSeries(name string, pts [][2]float64) {
	if r.Series == nil {
		r.Series = make(map[string][][2]float64)
	}
	r.Series[name] = pts
}

// Row returns the row with the given metric name.
func (r *Report) Row(metric string) (Row, bool) {
	for _, row := range r.Rows {
		if row.Metric == metric {
			return row, true
		}
	}
	return Row{}, false
}

// MustValue returns the measured value for metric, panicking if absent —
// convenience for tests.
func (r *Report) MustValue(metric string) float64 {
	row, ok := r.Row(metric)
	if !ok {
		panic(fmt.Sprintf("experiments: report %s has no row %q", r.ID, metric))
	}
	return row.Value
}

// String renders the report as an aligned text table.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	w1, w2 := len("metric"), len("paper")
	for _, row := range r.Rows {
		if len(row.Metric) > w1 {
			w1 = len(row.Metric)
		}
		if len(row.Paper) > w2 {
			w2 = len(row.Paper)
		}
	}
	fmt.Fprintf(&b, "%-*s  %-*s  %s\n", w1, "metric", w2, "paper", "measured")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-*s  %-*s  %s\n", w1, row.Metric, w2, row.Paper, row.Measured)
	}
	if len(r.Series) > 0 {
		names := make([]string, 0, len(r.Series))
		for n := range r.Series {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			pts := r.Series[n]
			fmt.Fprintf(&b, "series %s (%d pts):", n, len(pts))
			step := 1
			if len(pts) > 8 {
				step = len(pts) / 8
			}
			for i := 0; i < len(pts); i += step {
				fmt.Fprintf(&b, " (%.3g, %.3g)", pts[i][0], pts[i][1])
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// Experiment names one table/figure reproduction.
type Experiment struct {
	ID    string
	Title string
	Run   func(ctx *Context) (*Report, error)
}

// All returns every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{"table1", "Survey of 2015–2019 web-perf. studies (Fig 1 / Table 1)", RunTable1},
		{"fig2a", "Landing vs internal page size", RunFig2a},
		{"fig2b", "Landing vs internal object count", RunFig2b},
		{"fig2c", "Landing vs internal page-load time", RunFig2c},
		{"fig3a", "Speed Index (Ht30)", RunFig3a},
		{"fig3bc", "Limited exhaustive crawl of five sites", RunFig3bc},
		{"fig4a", "Non-cacheable objects", RunFig4a},
		{"warm", "Warm-cache revisit savings (§5.1 implication)", RunWarmCache},
		{"fig4b", "CDN-delivered bytes and cache hits", RunFig4b},
		{"fig4c", "Content mix by category", RunFig4c},
		{"fig5", "Multi-origin content (unique domains)", RunFig5},
		{"dns", "Resolver cache hit rates (§5.3)", RunDNSHitRate},
		{"fig6a", "Objects by dependency depth", RunFig6a},
		{"fig6b", "Resource hints", RunFig6b},
		{"fig6c", "Handshakes", RunFig6c},
		{"fig7", "Per-object wait time", RunFig7},
		{"fig8a", "HTTP landing/internal pages and mixed content", RunFig8a},
		{"fig8b", "Third parties unseen on landing pages", RunFig8b},
		{"fig8c", "Trackers and header bidding", RunFig8c},
		{"fig9", "Rank trends: PLT, size, objects (Fig 9)", RunFig9},
		{"fig10ab", "Rank trend reversals: non-cacheables, domains (Fig 10a/b)", RunFig10ab},
		{"fig10c", "PLT delta by category: World vs Shopping (Fig 10c)", RunFig10c},
		{"ablation", "What-if optimization asymmetry (§5 implications)", RunAblation},
		{"selection", "Internal-page selection strategies (§7)", RunSelection},
		{"learning", "Learned PLT model: landing-only training bias (§7)", RunLearning},
		{"stability", "Hispar two-level stability (§3)", RunStability},
		{"cost", "List building cost (§7)", RunCost},
	}
}

// ByID returns the experiment with the given ID.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}
