package experiments

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/hispar"
	"repro/internal/search"
	"repro/internal/toplist"
	"repro/internal/trace"
	"repro/internal/webgen"
)

// Config scales the experiment harness. The defaults reproduce the
// paper's H1K setup (1000 sites × 20 URLs, landing pages fetched 10
// times); tests and benchmarks use smaller values.
type Config struct {
	Seed int64
	// Sites and PerSite shape the H1K-style list.
	Sites   int // default 1000
	PerSite int // default 20 (1 landing + 19 internal)
	// LandingFetches is the per-landing-page fetch count (default 10).
	LandingFetches int
	// Workers bounds study parallelism (default GOMAXPROCS).
	Workers int
	// CrawlPages bounds the exhaustive crawl per site (default 5000) and
	// CrawlSample the measured sample (default 500).
	CrawlPages  int
	CrawlSample int
	// StabilityUniverse and StabilityWeeks configure the churn
	// experiment (defaults 130_000 domains, 10 weeks).
	StabilityUniverse int
	StabilityWeeks    int
	// H2KSites/H2KPerSite configure the churn/cost list (2000 × 50).
	H2KSites    int
	H2KPerSite  int
	DNSProbeTop int // §5.3 probe set size (default 5000)
	// RevisitDelay is the cold→warm gap of the repeat-view study
	// (default 30m).
	RevisitDelay time.Duration
	// Stream routes the overview experiments (fig2a/b/c) through the
	// constant-memory streaming engine instead of the in-memory study:
	// counter- and geomean-backed rows are identical, quantile-backed
	// rows within the sketch's relative error (see DESIGN.md).
	Stream bool
	// StreamWindow and StreamShardSize tune the streaming engine when
	// Stream is set (0 = core defaults).
	StreamWindow    int
	StreamShardSize int
	// Trace collects deterministic spans from the streaming study when
	// Stream is set (nil = tracing off).
	Trace *trace.Tracer
}

func (c Config) withDefaults() Config {
	if c.Sites <= 0 {
		c.Sites = 1000
	}
	if c.PerSite <= 0 {
		c.PerSite = 20
	}
	if c.LandingFetches <= 0 {
		c.LandingFetches = 10
	}
	if c.CrawlPages <= 0 {
		c.CrawlPages = 5000
	}
	if c.CrawlSample <= 0 {
		c.CrawlSample = 500
	}
	if c.StabilityUniverse <= 0 {
		c.StabilityUniverse = 400_000
	}
	if c.StabilityWeeks <= 0 {
		c.StabilityWeeks = 10
	}
	if c.H2KSites <= 0 {
		c.H2KSites = 2000
	}
	if c.H2KPerSite <= 0 {
		c.H2KPerSite = 50
	}
	if c.DNSProbeTop <= 0 {
		c.DNSProbeTop = 5000
	}
	if c.RevisitDelay <= 0 {
		c.RevisitDelay = 30 * time.Minute
	}
	return c
}

// Context lazily builds and caches the shared corpus: the top-list
// universe, the week-0 web snapshot, the Hispar list, and the full H1K
// study. Experiments pull what they need; expensive pieces are built
// once.
type Context struct {
	Cfg Config

	mu         sync.Mutex
	universe   *toplist.Universe
	bootstrap  []toplist.Entry
	web        *webgen.Web
	engine     *search.Engine
	list       *hispar.List
	buildStats hispar.BuildStats
	study      *core.StudyResult
	studyErr   error
	stream     *core.StreamResult
	streamErr  error
	warm       *core.WarmStudyResult
	warmErr    error
}

// NewContext creates a context with the given scale.
func NewContext(cfg Config) *Context {
	return &Context{Cfg: cfg.withDefaults()}
}

// crawlSiteSeeds are the five §4 exhaustive-crawl sites: analogues of
// Wikipedia (rank 13), Twitter (36), the New York Times (67),
// HowStuffWorks (2014), and an unranked academic site.
func crawlSiteSeeds(poolSize int) []webgen.SiteSeed {
	return []webgen.SiteSeed{
		{Domain: "encyclomedia-wp.org", Rank: 13, PoolSize: poolSize, Category: webgen.CatReference},
		{Domain: "chirpfeed-tw.com", Rank: 36, PoolSize: poolSize, Category: webgen.CatSocial},
		{Domain: "metrotimes-ny.com", Rank: 67, PoolSize: poolSize, Category: webgen.CatNews},
		{Domain: "howthingswork-hs.com", Rank: 2014, PoolSize: poolSize, Category: webgen.CatReference},
		{Domain: "campuslab-ac.edu", Rank: 0, PoolSize: poolSize, Category: webgen.CatTech},
	}
}

// CrawlDomains returns the five crawl-site domains in paper order
// (WP, TW, NY, HS, AC).
func CrawlDomains() []string {
	seeds := crawlSiteSeeds(0)
	out := make([]string, len(seeds))
	for i, s := range seeds {
		out[i] = s.Domain
	}
	return out
}

// Universe returns the bootstrap top-list universe (small: just enough
// to bootstrap the lists; the stability experiment builds its own).
func (c *Context) Universe() *toplist.Universe {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.universeLocked()
}

func (c *Context) universeLocked() *toplist.Universe {
	if c.universe == nil {
		size := c.Cfg.Sites * 3
		if size < 4000 {
			size = 4000
		}
		c.universe = toplist.NewUniverse(toplist.Config{Seed: c.Cfg.Seed, Size: size})
	}
	return c.universe
}

// Web returns the week-0 web snapshot: the bootstrap top of the universe
// plus the five exhaustive-crawl sites.
func (c *Context) Web() *webgen.Web {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.webLocked()
}

func (c *Context) webLocked() *webgen.Web {
	if c.web != nil {
		return c.web
	}
	u := c.universeLocked()
	// Walk ~40% past the target so FewEnglish drops do not exhaust the
	// bootstrap.
	c.bootstrap = u.Top(c.Cfg.Sites * 7 / 5)
	seeds := make([]webgen.SiteSeed, 0, len(c.bootstrap)+5)
	for _, e := range c.bootstrap {
		seeds = append(seeds, webgen.SiteSeed{Domain: e.Domain, Rank: e.Rank})
	}
	crawlPool := c.Cfg.CrawlPages * 6 / 5
	seeds = append(seeds, crawlSiteSeeds(crawlPool)...)
	c.web = webgen.Generate(webgen.Config{Seed: c.Cfg.Seed, Week: 0, Sites: seeds})
	return c.web
}

// SearchEngine returns the metered search engine over the week-0 web.
func (c *Context) SearchEngine() *search.Engine {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.searchLocked()
}

func (c *Context) searchLocked() *search.Engine {
	if c.engine == nil {
		c.engine = search.New(c.webLocked(), search.Config{EnglishOnly: true})
	}
	return c.engine
}

// listLocked builds the H1K-style list once; callers hold c.mu.
func (c *Context) listLocked() (*hispar.List, hispar.BuildStats, error) {
	if c.list != nil {
		return c.list, c.buildStats, nil
	}
	c.webLocked() // ensures bootstrap is populated
	list, stats, err := hispar.Build(c.searchLocked(), c.bootstrap, hispar.BuildConfig{
		Sites:       c.Cfg.Sites,
		URLsPerSite: c.Cfg.PerSite,
		MinResults:  5,
		Name:        fmt.Sprintf("H%d", c.Cfg.Sites),
	})
	if err != nil {
		return nil, stats, err
	}
	c.list, c.buildStats = list, stats
	return c.list, c.buildStats, nil
}

// List returns the H1K-style Hispar list (built once) and its build
// stats.
func (c *Context) List() (*hispar.List, hispar.BuildStats, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.listLocked()
}

// Study returns the full H1K study result, running it on first use.
func (c *Context) Study() (*core.StudyResult, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.study != nil || c.studyErr != nil {
		return c.study, c.studyErr
	}
	list, _, err := c.listLocked()
	if err != nil {
		c.studyErr = err
		return nil, err
	}
	st, err := core.NewStudy(c.webLocked(), core.StudyConfig{
		Seed:           c.Cfg.Seed,
		LandingFetches: c.Cfg.LandingFetches,
		Workers:        c.Cfg.Workers,
	})
	if err != nil {
		c.studyErr = err
		return nil, err
	}
	c.study, c.studyErr = st.Run(list) //detlint:allow lockheld -- single-flight by design: concurrent callers must wait for the one study run
	return c.study, c.studyErr
}

// StreamStudy returns the H1K study's streaming aggregates, running the
// constant-memory engine on first use. It never materializes the site
// results: only sketches, counters, and shard summaries survive.
func (c *Context) StreamStudy() (*core.StreamResult, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.stream != nil || c.streamErr != nil {
		return c.stream, c.streamErr
	}
	list, _, err := c.listLocked()
	if err != nil {
		c.streamErr = err
		return nil, err
	}
	st, err := core.NewStudy(c.webLocked(), core.StudyConfig{
		Seed:           c.Cfg.Seed,
		LandingFetches: c.Cfg.LandingFetches,
		Workers:        c.Cfg.Workers,
	})
	if err != nil {
		c.streamErr = err
		return nil, err
	}
	c.stream, c.streamErr = st.RunStream(list, core.StreamConfig{ //detlint:allow lockheld -- single-flight by design: concurrent callers must wait for the one streaming run
		Window:    c.Cfg.StreamWindow,
		ShardSize: c.Cfg.StreamShardSize,
		Trace:     c.Cfg.Trace,
	})
	return c.stream, c.streamErr
}

// WarmStudy returns the cold→warm repeat-view study, running it on
// first use.
func (c *Context) WarmStudy() (*core.WarmStudyResult, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.warm != nil || c.warmErr != nil {
		return c.warm, c.warmErr
	}
	list, _, err := c.listLocked()
	if err != nil {
		c.warmErr = err
		return nil, err
	}
	st, err := core.NewStudy(c.webLocked(), core.StudyConfig{
		Seed:           c.Cfg.Seed,
		LandingFetches: c.Cfg.LandingFetches,
		Workers:        c.Cfg.Workers,
	})
	if err != nil {
		c.warmErr = err
		return nil, err
	}
	c.warm, c.warmErr = st.RunWarm(list, core.WarmConfig{RevisitDelay: c.Cfg.RevisitDelay}) //detlint:allow lockheld -- single-flight by design: concurrent callers must wait for the one warm run
	return c.warm, c.warmErr
}

// TopSites returns the study results for the k highest-ranked sites
// (Ht30/Ht100); BottomSites the k lowest (Hb100).
func TopSites(res *core.StudyResult, k int) []core.SiteResult {
	if k > len(res.Sites) {
		k = len(res.Sites)
	}
	return res.Sites[:k]
}

// BottomSites returns the study results for the k lowest-ranked sites.
func BottomSites(res *core.StudyResult, k int) []core.SiteResult {
	if k > len(res.Sites) {
		k = len(res.Sites)
	}
	return res.Sites[len(res.Sites)-k:]
}
